//go:build !race

package repro_test

const raceEnabled = false
