#!/usr/bin/env bash
# coverage_check.sh <coverage.out> [COVERAGE.txt]
#
# Enforces the committed coverage floors with a per-package delta
# report. COVERAGE.txt format:
#
#   <global floor percent>            (first line)
#   pkg <import/path> <floor percent> (zero or more lines)
#
# The job fails when total coverage drops below the global floor or
# any listed package drops below its own — including to 0% because the
# package gained code but no tests, or stopped being tested at all.
set -euo pipefail

profile=${1:-coverage.out}
floors=${2:-COVERAGE.txt}

[ -f "$profile" ] || { echo "::error::missing coverage profile $profile"; exit 1; }
[ -f "$floors" ] || { echo "::error::missing floors file $floors"; exit 1; }

global_floor=$(head -1 "$floors")

# Per-package statement coverage from the merged profile: lines are
# "<file>:<start>,<end> <stmts> <hits>"; a package's coverage is
# covered-statements / statements over its files.
pkg_report=$(awk '
  NR > 1 {
    split($0, parts, ":"); file = parts[1]
    pkg = file; sub(/\/[^\/]+$/, "", pkg)
    n = split($0, f, " ")
    stmts = f[n-1] + 0; hits = f[n] + 0
    total[pkg] += stmts
    if (hits > 0) covered[pkg] += stmts
    g_total += stmts
    if (hits > 0) g_covered += stmts
  }
  END {
    for (p in total)
      printf "%s %.1f\n", p, (total[p] ? 100 * covered[p] / total[p] : 0)
    printf "TOTAL %.1f\n", (g_total ? 100 * g_covered / g_total : 0)
  }' "$profile" | sort)

total=$(echo "$pkg_report" | awk '$1 == "TOTAL" { print $2 }')

fail=0
echo "package coverage (floor deltas):"
printf "  %-40s %8s %8s %8s\n" "package" "cover%" "floor%" "delta"
while read -r kw pkg floor; do
  [ "$kw" = "pkg" ] || continue
  cover=$(echo "$pkg_report" | awk -v p="$pkg" '$1 == p { print $2 }')
  cover=${cover:-0.0}
  delta=$(awk -v c="$cover" -v f="$floor" 'BEGIN { printf "%+.1f", c - f }')
  printf "  %-40s %8s %8s %8s\n" "$pkg" "$cover" "$floor" "$delta"
  if awk -v c="$cover" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
    echo "::error::package $pkg coverage ${cover}% fell below its floor ${floor}% ($floors)"
    fail=1
  fi
done < "$floors"

echo "total coverage: ${total}% (floor: ${global_floor}%)"
if awk -v t="$total" -v f="$global_floor" 'BEGIN { exit !(t < f) }'; then
  echo "::error::total coverage ${total}% fell below the committed floor ${global_floor}% ($floors)"
  fail=1
fi
exit $fail
