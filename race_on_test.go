//go:build race

package repro_test

// raceEnabled reports whether the race detector is instrumenting this
// build; the wall-clock regression guards skip themselves under it
// because the ~20x instrumentation slowdown swamps the guard floors.
const raceEnabled = true
