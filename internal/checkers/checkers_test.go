package checkers

import (
	"testing"

	"repro/internal/indus/ast"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
)

func TestCorpusParsesAndChecks(t *testing.T) {
	for _, p := range All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			info, err := p.Parse()
			if err != nil {
				t.Fatalf("%v", err)
			}
			if info.Prog.Init == nil || info.Prog.Telemetry == nil || info.Prog.Checker == nil {
				t.Fatal("program missing a block")
			}
		})
	}
}

func TestCorpusKeysUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All {
		if seen[p.Key] {
			t.Errorf("duplicate key %q", p.Key)
		}
		seen[p.Key] = true
	}
	if len(All) != 12 {
		t.Errorf("corpus has %d entries, want 12 (11 Table 1 rows + valley-free)", len(All))
	}
}

func TestByKey(t *testing.T) {
	p, ok := ByKey("multi-tenancy")
	if !ok || p.Name != "Multi-Tenancy" {
		t.Fatalf("ByKey failed: %+v %v", p, ok)
	}
	if _, ok := ByKey("no-such"); ok {
		t.Fatal("ByKey should miss")
	}
}

func TestMustParsePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("no-such-property")
}

func TestCountLoC(t *testing.T) {
	tests := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"a;\nb;\n", 2},
		{"// comment only\na;\n", 1},
		{"/* block */\na;\n", 1},
		{"a; /* trailing */\n", 1},
		{"/* multi\nline\ncomment */\na;\n", 1},
		{"a; // eol comment\n\n\nb;\n", 2},
		{"x /* inline */ = 1;\n", 1},
	}
	for _, tt := range tests {
		if got := CountLoC(tt.src); got != tt.want {
			t.Errorf("CountLoC(%q) = %d, want %d", tt.src, got, tt.want)
		}
	}
}

// TestIndusLoCNearPaper checks the conciseness claim of Table 1: our
// transcriptions should be within a factor of 2 of the paper's Indus
// line counts (exact counts differ with formatting and with the
// optimizations §6.1 mentions; the paper's point is the order of
// magnitude vs P4, which TestP4LoCNearPaper checks).
func TestIndusLoCNearPaper(t *testing.T) {
	for _, p := range All {
		if p.PaperIndusLoC == 0 {
			continue
		}
		got := p.IndusLoC()
		lo, hi := p.PaperIndusLoC/2, p.PaperIndusLoC*2
		if got < lo || got > hi {
			t.Errorf("%s: Indus LoC %d is far from paper's %d (allowed %d..%d)", p.Key, got, p.PaperIndusLoC, lo, hi)
		}
	}
}

func TestHeaderVars(t *testing.T) {
	info := MustParse("multi-tenancy")
	hs := HeaderVars(info)
	if len(hs) != 2 || hs[0].Name != "in_port" || hs[1].Name != "eg_port" {
		t.Fatalf("HeaderVars = %+v", hs)
	}
	for _, h := range hs {
		if h.Kind != ast.KindHeader {
			t.Errorf("%s is not a header decl", h.Name)
		}
	}
}

func TestCorpusReportArity(t *testing.T) {
	info := MustParse("app-filtering")
	if info.MaxReportArity != 5 {
		t.Fatalf("app-filtering report arity = %d, want 5", info.MaxReportArity)
	}
}

func TestFigure2VariantParses(t *testing.T) {
	// The pedagogical Figure 2 program (telemetry arrays + lockstep for
	// loop) must remain a valid Indus program even though Table 1
	// measures the optimized variant.
	prog, err := parser.Parse("fig2.indus", LoadBalanceFig2Src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := types.Check(prog); err != nil {
		t.Fatalf("types: %v", err)
	}
}
