// Package checkers is the corpus of Indus programs from the Hydra paper:
// the three worked examples of §2 (Figures 1–3), the two case studies of
// §5 (Figures 7 and 9), and the remaining Table 1 properties, which the
// paper describes but does not print; those are written here from their
// Table 1 descriptions.
//
// Each entry carries the paper's reported numbers (Indus LoC, generated
// P4 LoC, Tofino stages, PHV %) so the benchmark harness can print
// paper-vs-measured rows for Table 1.
package checkers

import (
	"fmt"
	"strings"

	"repro/internal/indus/ast"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
)

// Property is one corpus entry.
type Property struct {
	Key         string // stable identifier, e.g. "multi-tenancy"
	Name        string // Table 1 property name
	Description string // Table 1 description
	Source      string // Indus source text

	// Paper-reported numbers from Table 1 (zero when not applicable).
	PaperIndusLoC int
	PaperP4LoC    int
	PaperStages   int
	PaperPHVPct   float64
}

// Baseline numbers from Table 1: the Aether P4 program compiled in the
// fabric-upf profile, to which every checker is linked.
const (
	BaselineStages = 12
	BaselinePHVPct = 44.53
)

// Parse parses and type-checks the property source.
func (p Property) Parse() (*types.Info, error) {
	prog, err := parser.Parse(p.Key+".indus", p.Source)
	if err != nil {
		return nil, fmt.Errorf("checkers: parsing %s: %w", p.Key, err)
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("checkers: checking %s: %w", p.Key, err)
	}
	return info, nil
}

// IndusLoC counts the non-blank, non-comment source lines, the measure
// Table 1 reports.
func (p Property) IndusLoC() int { return CountLoC(p.Source) }

// CountLoC counts non-blank lines that are not pure comments.
func CountLoC(src string) int {
	n := 0
	inBlockComment := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if inBlockComment {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				t = strings.TrimSpace(t[idx+2:])
				inBlockComment = false
			} else {
				continue
			}
		}
		for {
			start := strings.Index(t, "/*")
			if start < 0 {
				break
			}
			end := strings.Index(t[start:], "*/")
			if end < 0 {
				t = strings.TrimSpace(t[:start])
				inBlockComment = true
				break
			}
			t = strings.TrimSpace(t[:start] + t[start+end+2:])
		}
		if idx := strings.Index(t, "//"); idx >= 0 {
			t = strings.TrimSpace(t[:idx])
		}
		if t != "" {
			n++
		}
	}
	return n
}

// ByKey returns the property with the given key.
func ByKey(key string) (Property, bool) {
	for _, p := range All {
		if p.Key == key {
			return p, true
		}
	}
	return Property{}, false
}

// MustParse parses and checks the property with the given key, panicking
// on failure; the corpus is tested, so failure is a programming error.
func MustParse(key string) *types.Info {
	p, ok := ByKey(key)
	if !ok {
		panic("checkers: unknown property " + key)
	}
	info, err := p.Parse()
	if err != nil {
		panic(err)
	}
	return info
}

// HeaderVars returns the header variables a forwarding substrate must
// bind for the property, in declaration order.
func HeaderVars(info *types.Info) []ast.Decl {
	return info.Prog.DeclsOfKind(ast.KindHeader)
}

// All is the corpus, in Table 1 order.
var All = []Property{
	{
		Key:         "multi-tenancy",
		Name:        "Multi-Tenancy",
		Description: "All traffic through a given ToR switch port, facing a bare-metal server should belong to the same tenant",
		Source:      MultiTenancySrc,

		PaperIndusLoC: 14, PaperP4LoC: 102, PaperStages: 11, PaperPHVPct: 48.44,
	},
	{
		Key:         "load-balance",
		Name:        "Datacenter uplink load balance",
		Description: "Uplink ports in data center switches should load balance, to exact equivalence, between specified ports",
		Source:      LoadBalanceSrc,

		PaperIndusLoC: 37, PaperP4LoC: 194, PaperStages: 12, PaperPHVPct: 48.83,
	},
	{
		Key:         "stateful-firewall",
		Name:        "Stateful firewall",
		Description: "Flows can only enter the network if a device inside initiated the communication",
		Source:      StatefulFirewallSrc,

		PaperIndusLoC: 23, PaperP4LoC: 164, PaperStages: 12, PaperPHVPct: 49.21,
	},
	{
		Key:         "app-filtering",
		Name:        "Application filtering",
		Description: "Clients should only be able to communicate with designated applications (as identified by layer 4 ports)",
		Source:      AppFilteringSrc,

		PaperIndusLoC: 64, PaperP4LoC: 126, PaperStages: 12, PaperPHVPct: 52.14,
	},
	{
		Key:         "vlan-isolation",
		Name:        "VLAN isolation",
		Description: "Packets should traverse switches in the same VLAN",
		Source:      VLANIsolationSrc,

		PaperIndusLoC: 21, PaperP4LoC: 119, PaperStages: 11, PaperPHVPct: 47.85,
	},
	{
		Key:         "egress-validity",
		Name:        "Egress port validity",
		Description: "Packets should only egress a switch at allowed ports",
		Source:      EgressValiditySrc,

		PaperIndusLoC: 18, PaperP4LoC: 132, PaperStages: 12, PaperPHVPct: 46.09,
	},
	{
		Key:         "routing-validity",
		Name:        "Routing validity",
		Description: "The first and last hop of any packet should be a leaf switch, while the rest of the hops are spine switches",
		Source:      RoutingValiditySrc,

		PaperIndusLoC: 21, PaperP4LoC: 122, PaperStages: 12, PaperPHVPct: 46.09,
	},
	{
		Key:         "loop-freedom",
		Name:        "Loops (4 hops)",
		Description: "Packets should not visit the same switch twice",
		Source:      LoopFreedomSrc,

		PaperIndusLoC: 20, PaperP4LoC: 156, PaperStages: 12, PaperPHVPct: 48.24,
	},
	{
		Key:         "waypointing",
		Name:        "Waypointing",
		Description: "All packets should pass through a choke point",
		Source:      WaypointingSrc,

		PaperIndusLoC: 22, PaperP4LoC: 154, PaperStages: 12, PaperPHVPct: 47.85,
	},
	{
		Key:         "service-chain",
		Name:        "Service chains",
		Description: "Packets from switch s to switch t should pass through switches (w1, w2, ..., wn) in that order on the way",
		Source:      ServiceChainSrc,

		PaperIndusLoC: 26, PaperP4LoC: 121, PaperStages: 12, PaperPHVPct: 47.26,
	},
	{
		Key:         "source-routing",
		Name:        "Source routing with path validation",
		Description: "A packet that is source routed through switches (s, s1, ..., t) should pass them in order",
		Source:      SourceRoutingSrc,

		PaperIndusLoC: 34, PaperP4LoC: 211, PaperStages: 12, PaperPHVPct: 51.56,
	},
	{
		Key:         "valley-free",
		Name:        "Valley-free source routing",
		Description: "Packets may not traverse an up link after a down link: a spine switch is visited at most once (Figure 7)",
		Source:      ValleyFreeSrc,
		// Not a Table 1 row; §5.1 case study.
	},
}
