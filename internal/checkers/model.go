package checkers

// SymModel bounds a checker for symbolic exploration: a canonical
// control-plane configuration, the switch IDs traces may visit, and the
// maximum trace length. The installs are chosen so that both verdicts
// (conform and violate) are reachable within the bounds — the symbolic
// equivalence claim is "equal over this modeled space", and the frontier
// corpus requires at least one verdict flip inside it.
type SymModel struct {
	// MaxHops bounds trace length; every switch sequence of length
	// 1..MaxHops over Switches is explored.
	MaxHops int
	// Switches are the switch IDs of the model topology.
	Switches []uint32
	// Installs is the canonical control-plane state.
	Installs []SymInstall
}

// SymInstall is one control-plane entry of the model.
type SymInstall struct {
	// Name is the Indus control variable.
	Name string
	// Switch restricts the install to one switch ID; zero installs on
	// every model switch (the common switch-agnostic case).
	Switch uint32
	// Key holds the dict/set key columns; nil for scalar controls.
	Key []uint64
	// Val is the dict value or scalar value; ignored for sets.
	Val uint64
	// Set marks a set-membership install (no value).
	Set bool
}

// symModels holds the per-checker models. Checkers absent here get
// DefaultSymModel. Switch-dependent installs (routing-validity's leaf
// flags, valley-free's spine flag) pin a small leaf-spine-leaf topology;
// everything else is switch-agnostic, so the switch set only has to be
// large enough to exercise path-shape conditions (revisits, waypoint
// presence, chain order).
var symModels = map[string]SymModel{
	"multi-tenancy": {
		MaxHops:  2,
		Switches: []uint32{1, 2},
		Installs: []SymInstall{
			{Name: "tenants", Key: []uint64{1}, Val: 10},
			{Name: "tenants", Key: []uint64{2}, Val: 10},
			{Name: "tenants", Key: []uint64{3}, Val: 20},
		},
	},
	"load-balance": {
		MaxHops:  2,
		Switches: []uint32{1},
		Installs: []SymInstall{
			{Name: "left_port", Val: 1},
			{Name: "right_port", Val: 2},
			{Name: "thresh", Val: 1000},
			{Name: "is_uplink", Key: []uint64{1}, Val: 1},
			{Name: "is_uplink", Key: []uint64{2}, Val: 1},
		},
	},
	"stateful-firewall": {
		MaxHops:  2,
		Switches: []uint32{1},
		Installs: []SymInstall{
			{Name: "allowed", Key: []uint64{100, 200}, Val: 1},
			{Name: "allowed", Key: []uint64{200, 100}, Val: 1},
		},
	},
	"app-filtering": {
		MaxHops:  2,
		Switches: []uint32{1},
		Installs: []SymInstall{
			{Name: "filtering_actions", Key: []uint64{10, 6, 20, 80}, Val: 1},
			{Name: "filtering_actions", Key: []uint64{11, 6, 21, 443}, Val: 2},
		},
	},
	"vlan-isolation": {
		MaxHops:  2,
		Switches: []uint32{1},
		Installs: []SymInstall{
			{Name: "vlan_members", Key: []uint64{5}, Val: 1},
			{Name: "vlan_members", Key: []uint64{7}, Val: 1},
		},
	},
	"egress-validity": {
		MaxHops:  2,
		Switches: []uint32{1},
		Installs: []SymInstall{
			{Name: "allowed_eg_ports", Key: []uint64{1}, Set: true},
			{Name: "allowed_eg_ports", Key: []uint64{2}, Set: true},
		},
	},
	"routing-validity": {
		MaxHops:  3,
		Switches: []uint32{1, 2, 3},
		Installs: []SymInstall{
			{Name: "is_leaf", Switch: 1, Val: 1},
			{Name: "is_leaf", Switch: 2, Val: 0},
			{Name: "is_leaf", Switch: 3, Val: 1},
		},
	},
	"loop-freedom": {
		MaxHops:  3,
		Switches: []uint32{1, 2, 3},
	},
	"waypointing": {
		MaxHops:  2,
		Switches: []uint32{1, 2},
		Installs: []SymInstall{
			{Name: "waypoint_id", Val: 2},
		},
	},
	"service-chain": {
		MaxHops:  3,
		Switches: []uint32{1, 2, 3},
		Installs: []SymInstall{
			{Name: "src_switch", Val: 1},
			{Name: "dst_switch", Val: 3},
			{Name: "chain_len", Val: 1},
			{Name: "chain_index", Key: []uint64{2}, Val: 1},
		},
	},
	"source-routing": {
		MaxHops:  2,
		Switches: []uint32{1, 2},
	},
	"valley-free": {
		MaxHops:  2,
		Switches: []uint32{1, 2},
		Installs: []SymInstall{
			{Name: "is_spine_switch", Switch: 1, Val: 0},
			{Name: "is_spine_switch", Switch: 2, Val: 1},
		},
	},
}

// DefaultSymModel is used for checkers without an explicit model.
var DefaultSymModel = SymModel{MaxHops: 3, Switches: []uint32{1, 2, 3}}

// SymModelFor returns the checker's exploration model.
func SymModelFor(key string) SymModel {
	if m, ok := symModels[key]; ok {
		return m
	}
	return DefaultSymModel
}
