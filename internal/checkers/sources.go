package checkers

// MultiTenancySrc is the bare-metal multi-tenancy program of Figure 1.
// All traffic through a ToR port facing a bare-metal server belongs to a
// single tenant; the packet must exit at a port of the same tenant.
const MultiTenancySrc = `
/* Variable declarations */
control dict<bit<8>,bit<8>> tenants;
tele bit<8> tenant;
header bit<8> in_port @ "standard_metadata.ingress_port";
header bit<8> eg_port @ "standard_metadata.egress_port";

/* Code blocks */
{ /* Executes at first hop */
  tenant = tenants[in_port];
}
{ /* Executes at every hop */ }
{ /* Executes at the last hop */
  if (tenant != tenants[eg_port]) { reject; }
}
`

// LoadBalanceSrc is the data center load-balancing checker as measured
// in Table 1. Per §6.1, the measured program is an optimized variant of
// Figure 2: instead of carrying per-hop load arrays and iterating over
// them in the checker, it maintains a boolean that records whether an
// imbalance was detected on any switch along the path ("which eliminates
// the need to iterate over multiple arrays in the block").
const LoadBalanceSrc = `
sensor bit<32> left_load = 0;
sensor bit<32> right_load = 0;
control bit<8> left_port;
control bit<8> right_port;
control bit<32> thresh;
control dict<bit<8>,bool> is_uplink;
tele bool imbalanced = false;
header bit<8> eg_port @ "standard_metadata.egress_port";

{ }
{
  if (is_uplink[eg_port]) {
    if (eg_port == left_port) {
      left_load += packet_length;
    }
    elsif (eg_port == right_port) {
      right_load += packet_length;
    }
  }
  if (abs(left_load - right_load) > thresh) {
    imbalanced = true;
  }
}
{
  if (imbalanced) {
    report;
  }
}
`

// LoadBalanceFig2Src is the load-balancing program exactly as printed in
// Figure 2 of the paper: telemetry arrays record the cumulative load of
// each uplink at every hop and the checker iterates over both arrays in
// lockstep.
const LoadBalanceFig2Src = `
sensor bit<32> left_load = 0;
sensor bit<32> right_load = 0;
control bit<8> left_port;
control bit<8> right_port;
control bit<32> thresh;
control dict<bit<8>,bool> is_uplink;
tele bit<32>[15] left_loads;
tele bit<32>[15] right_loads;
header bit<8> eg_port @ "standard_metadata.egress_port";

{ }
{
  if (is_uplink[eg_port]) {
    if (eg_port == left_port) {
      left_load += packet_length;
    }
    elsif (eg_port == right_port) {
      right_load += packet_length;
    }
  }
  left_loads.push(left_load);
  right_loads.push(right_load);
}
{
  for (left_load_t, right_load_t in left_loads, right_loads) {
    if (abs(left_load_t - right_load_t) > thresh) {
      report;
    }
  }
}
`

// StatefulFirewallSrc is the stateful firewall of Figure 3: flows may
// only enter the network if a device inside initiated the communication;
// the control plane installs reverse-direction rules in response to
// reports raised in the telemetry block.
const StatefulFirewallSrc = `
control dict<(bit<32>,bit<32>),bool> allowed;
tele bool violated = false;
header bit<32> ipv4_src @ "hdr.ipv4.src_addr";
header bit<32> ipv4_dst @ "hdr.ipv4.dst_addr";

{ /* Checks if packet is allowed to enter */
  if (!allowed[(ipv4_src,ipv4_dst)]) {
    violated = true;
  }
}
{ /* Checks if packet on reverse direction has been seen */
  if (last_hop && !allowed[(ipv4_dst, ipv4_src)]) {
    report((ipv4_dst,ipv4_src));
  }
}
{
  if (violated) { reject; }
}
`

// AppFilteringSrc is the Aether application-filtering checker of
// Figure 9: a client (UE) may only exchange traffic with the
// applications its slice's filtering rules allow. The filtering action
// is resolved at the first hop and carried in telemetry; the checker
// compares it against the forwarding program's drop decision.
const AppFilteringSrc = `
tele bit<32> ue_ipv4_addr;
tele bit<32> app_ipv4_addr;
tele bit<8> app_ip_proto;
tele bit<16> app_l4_port;
tele bit<8> filtering_action = 0; // 1=deny,2=allow

control dict<(bit<32>,bit<8>,bit<32>,bit<16>),bit<8>> filtering_actions;

header bool inner_ipv4_is_valid @ "hdr.inner_ipv4.$valid$";
header bool inner_tcp_is_valid @ "hdr.inner_tcp.$valid$";
header bool inner_udp_is_valid @ "hdr.inner_udp.$valid$";
header bool ipv4_is_valid @ "hdr.ipv4.$valid$";
header bool tcp_is_valid @ "hdr.tcp.$valid$";
header bool udp_is_valid @ "hdr.udp.$valid$";
header bit<32> inner_ipv4_src @ "hdr.inner_ipv4.src_addr";
header bit<32> inner_ipv4_dst @ "hdr.inner_ipv4.dst_addr";
header bit<8> inner_ipv4_proto @ "hdr.inner_ipv4.protocol";
header bit<16> inner_tcp_dport @ "hdr.inner_tcp.dport";
header bit<16> inner_udp_dport @ "hdr.inner_udp.dport";
header bit<32> outer_ipv4_src @ "hdr.ipv4.src_addr";
header bit<32> outer_ipv4_dst @ "hdr.ipv4.dst_addr";
header bit<8> outer_ipv4_proto @ "hdr.ipv4.protocol";
header bit<16> outer_tcp_sport @ "hdr.tcp.sport";
header bit<16> outer_udp_sport @ "hdr.udp.sport";
header bool to_be_dropped @ "fabric_metadata.skip_forwarding";

{
  if (inner_ipv4_is_valid) {
    // this is an uplink packet
    ue_ipv4_addr = inner_ipv4_src;
    app_ip_proto = inner_ipv4_proto;
    app_ipv4_addr = inner_ipv4_dst;
    if (inner_tcp_is_valid) {
      app_l4_port = inner_tcp_dport;
    } elsif (inner_udp_is_valid) {
      app_l4_port = inner_udp_dport;
    }
  } elsif (ipv4_is_valid) {
    // this is a downlink packet
    ue_ipv4_addr = outer_ipv4_dst;
    app_ip_proto = outer_ipv4_proto;
    app_ipv4_addr = outer_ipv4_src;
    if (tcp_is_valid) {
      app_l4_port = outer_tcp_sport;
    } elsif (udp_is_valid) {
      app_l4_port = outer_udp_sport;
    }
  }
  filtering_action = filtering_actions[(
    ue_ipv4_addr, app_ip_proto, app_ipv4_addr, app_l4_port)];
}
{ }
{
  if (filtering_action == 1 && !to_be_dropped) {
    reject;
    report((ue_ipv4_addr, app_ip_proto, app_ipv4_addr, app_l4_port,
            filtering_action));
  }
  if (filtering_action == 2 && to_be_dropped) {
    report((ue_ipv4_addr, app_ip_proto, app_ipv4_addr, app_l4_port,
            filtering_action));
  }
}
`

// VLANIsolationSrc checks that a packet only traverses switches that are
// members of its VLAN: the VLAN observed at the first hop must match the
// packet's VLAN at every later hop.
const VLANIsolationSrc = `
control dict<bit<16>,bool> vlan_members;
header bit<16> vlan_id @ "hdr.vlan_tag.vlan_id";
tele bit<16> entry_vlan;
tele bool vlan_mismatch = false;

{
  entry_vlan = vlan_id;
}
{
  if (vlan_id != entry_vlan) {
    vlan_mismatch = true;
  }
  if (!vlan_members[vlan_id]) {
    vlan_mismatch = true;
  }
}
{
  if (vlan_mismatch) {
    reject;
    report(entry_vlan);
  }
}
`

// EgressValiditySrc checks that at every hop the packet egresses at a
// port the control plane has allow-listed for that switch.
const EgressValiditySrc = `
control set<bit<8>> allowed_eg_ports;
header bit<8> eg_port @ "standard_metadata.egress_port";
tele bool invalid_egress = false;
tele bit<8> bad_port;
tele bit<32> bad_switch;

{ }
{
  if (!(eg_port in allowed_eg_ports)) {
    invalid_egress = true;
    bad_port = eg_port;
    bad_switch = switch_id;
  }
}
{
  if (invalid_egress) {
    reject;
    report((bad_switch, bad_port));
  }
}
`

// RoutingValiditySrc checks the leaf-spine routing invariant: the first
// and last hop of any packet are leaf switches and every intermediate
// hop is a spine switch.
const RoutingValiditySrc = `
control bool is_leaf;
tele bool first_is_leaf = false;
tele bool middle_ok = true;
tele bool started = false;

{ }
{
  if (!started) {
    started = true;
    first_is_leaf = is_leaf;
  } elsif (!last_hop) {
    if (is_leaf) {
      middle_ok = false;
    }
  }
}
{
  if (!first_is_leaf || !middle_ok || !is_leaf) {
    reject;
    report(switch_id);
  }
}
`

// LoopFreedomSrc checks that a packet never visits the same switch
// twice, keeping a 4-entry path trace as Table 1's "Loops (4 hops)" row.
const LoopFreedomSrc = `
tele bit<32>[4] path;
tele bool revisited = false;
tele bit<32> dup_switch;

{ }
{
  if (switch_id in path) {
    revisited = true;
    dup_switch = switch_id;
  }
  path.push(switch_id);
}
{
  if (revisited) {
    reject;
    report(dup_switch);
  }
}
`

// WaypointingSrc checks that every packet passes through the configured
// choke point (e.g. a firewall switch) on its way across the network.
const WaypointingSrc = `
control bit<32> waypoint_id;
tele bool visited_waypoint = false;

{ }
{
  if (switch_id == waypoint_id) {
    visited_waypoint = true;
  }
}
{
  if (!visited_waypoint) {
    reject;
    report(switch_id);
  }
}
`

// ServiceChainSrc checks that packets from switch s to switch t traverse
// the configured chain of waypoints (w1, ..., wn) in order. chain_index
// maps each waypoint's switch id to its 1-based position in the chain.
const ServiceChainSrc = `
control bit<32> src_switch;
control bit<32> dst_switch;
control bit<8> chain_len;
control dict<bit<32>,bit<8>> chain_index;
tele bit<8> next_index = 1;
tele bool out_of_order = false;
tele bool chain_applies = false;

{
  if (switch_id == src_switch) {
    chain_applies = true;
  }
}
{
  if (chain_applies) {
    if (chain_index[switch_id] != 0) {
      if (chain_index[switch_id] == next_index) {
        next_index += 1;
      } else {
        out_of_order = true;
      }
    }
  }
}
{
  if (chain_applies && switch_id == dst_switch) {
    if (out_of_order || next_index != chain_len + 1) {
      reject;
      report((next_index, switch_id));
    }
  }
}
`

// SourceRoutingSrc validates source-routed paths. Each source-route
// stack entry names the switch that should process it, so on arrival the
// top of the stack must equal the current switch; any divergence marks
// the packet, and the packet also carries the actual path taken so the
// checker's report can tell the operator where it really went.
const SourceRoutingSrc = `
tele bit<32>[8] actual_path;
tele bool mismatch = false;
tele bit<32> diverged_at;
header bit<32> sr_next @ "hdr.srcRoutes[0].switch_id";
header bool sr_valid @ "hdr.srcRoutes[0].$valid$";

{ }
{
  if (sr_valid && sr_next != switch_id) {
    mismatch = true;
    diverged_at = switch_id;
  }
  actual_path.push(switch_id);
}
{
  if (mismatch) {
    reject;
    report((diverged_at, hop_count));
  }
}
`

// ValleyFreeSrc is the valley-free routing checker of Figure 7: in a
// leaf-spine fabric a valley-free path visits a spine switch at most
// once, so visiting a second spine means the packet went down and then
// up again.
const ValleyFreeSrc = `
control bool is_spine_switch;
tele bool visited_spine;
tele bool to_reject;

{
  visited_spine = false;
  to_reject = false;
}
{
  if (is_spine_switch) {
    if (visited_spine) {
      to_reject = true;
    }
    visited_spine = true;
  }
}
{
  if (to_reject) {
    reject;
  }
}
`
