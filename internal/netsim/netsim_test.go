package netsim

import (
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

func TestSimulatorOrdering(t *testing.T) {
	sim := NewSimulator()
	var order []int
	sim.At(30, func() { order = append(order, 3) })
	sim.At(10, func() { order = append(order, 1) })
	sim.At(20, func() { order = append(order, 2) })
	sim.At(10, func() { order = append(order, 11) }) // same time: FIFO
	sim.RunAll()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Now() != 30 {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestRunUntil(t *testing.T) {
	sim := NewSimulator()
	ran := 0
	sim.At(10, func() { ran++ })
	sim.At(100, func() { ran++ })
	sim.Run(50)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if sim.Now() != 50 {
		t.Fatalf("clock must advance to the horizon, got %v", sim.Now())
	}
	sim.RunAll()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	sim := NewSimulator()
	a := NewHost(sim, "a", dataplane.MACFromUint64(1), dataplane.MustIP4("10.0.0.1"))
	b := NewHost(sim, "b", dataplane.MACFromUint64(2), dataplane.MustIP4("10.0.0.2"))
	// 1 Gb/s, 10 µs propagation.
	lk := Connect(sim, a, 0, b, 0, 1_000_000_000, 10*Microsecond)
	a.AttachLink(lk)
	b.AttachLink(lk)

	var arrival Time
	b.OnPacket = func(*dataplane.Decoded) { arrival = sim.Now() }
	// 1000-byte frame: 8 µs serialization + 10 µs propagation = 18 µs.
	a.SendUDP(b.IP, 1, 2, 1000-dataplane.EthernetLen-dataplane.IPv4Len-dataplane.UDPLen)
	sim.RunAll()
	want := Time(18 * Microsecond)
	if arrival != want {
		t.Fatalf("arrival at %v, want %v", arrival, want)
	}
	if b.RxUDP != 1 {
		t.Fatalf("b got %d udp packets", b.RxUDP)
	}
}

func TestLinkBackToBackQueueing(t *testing.T) {
	sim := NewSimulator()
	a := NewHost(sim, "a", dataplane.MACFromUint64(1), dataplane.MustIP4("10.0.0.1"))
	b := NewHost(sim, "b", dataplane.MACFromUint64(2), dataplane.MustIP4("10.0.0.2"))
	lk := Connect(sim, a, 0, b, 0, 1_000_000_000, 0)
	a.AttachLink(lk)
	b.AttachLink(lk)

	var arrivals []Time
	b.OnPacket = func(*dataplane.Decoded) { arrivals = append(arrivals, sim.Now()) }
	payload := 1000 - dataplane.EthernetLen - dataplane.IPv4Len - dataplane.UDPLen
	a.SendUDP(b.IP, 1, 2, payload) // both sent at t=0
	a.SendUDP(b.IP, 1, 2, payload)
	sim.RunAll()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Second frame serializes after the first: 8 µs later.
	if arrivals[1]-arrivals[0] != 8*Microsecond {
		t.Fatalf("spacing = %v, want 8µs", arrivals[1]-arrivals[0])
	}
}

func TestLinkDropTail(t *testing.T) {
	sim := NewSimulator()
	a := NewHost(sim, "a", dataplane.MACFromUint64(1), dataplane.MustIP4("10.0.0.1"))
	b := NewHost(sim, "b", dataplane.MACFromUint64(2), dataplane.MustIP4("10.0.0.2"))
	lk := Connect(sim, a, 0, b, 0, 1_000_000, 0) // 1 Mb/s: easy to saturate
	lk.QueueBytes = 2000
	a.AttachLink(lk)
	b.AttachLink(lk)

	for i := 0; i < 50; i++ {
		a.SendUDP(b.IP, 1, 2, 958)
	}
	sim.RunAll()
	if lk.DropsAB == 0 {
		t.Fatal("saturated link must drop")
	}
	if b.RxUDP == 0 {
		t.Fatal("some packets must still arrive")
	}
	if uint64(b.RxUDP)+lk.DropsAB != 50 {
		t.Fatalf("conservation: rx %d + drops %d != 50", b.RxUDP, lk.DropsAB)
	}
}

func TestLeafSpinePing(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true})
	h1 := ls.Host(0, 0)
	h3 := ls.Host(1, 0)

	for seq := uint16(1); seq <= 5; seq++ {
		s := seq
		sim.At(Time(s)*Millisecond, func() { h1.Ping(h3.IP, s) })
	}
	sim.RunAll()

	if len(h1.RTTs) != 5 {
		t.Fatalf("got %d RTT samples, want 5 (pending=%d)", len(h1.RTTs), h1.PendingPings())
	}
	for _, s := range h1.RTTs {
		// 3 switches each way (leaf, spine, leaf), 4 links each way.
		if s.RTT <= 0 || s.RTT > Millisecond {
			t.Fatalf("implausible RTT %v", s.RTT)
		}
	}
	// Same-leaf traffic must not cross a spine.
	h2 := ls.Host(0, 1)
	spineRx := ls.Spines[0].RxFrames + ls.Spines[1].RxFrames
	h1.Ping(h2.IP, 99)
	sim.RunAll()
	if len(h1.RTTs) != 6 {
		t.Fatal("same-leaf ping failed")
	}
	if ls.Spines[0].RxFrames+ls.Spines[1].RxFrames != spineRx {
		t.Fatal("same-leaf traffic crossed a spine")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	// Many distinct flows: both spines should see traffic.
	for p := uint16(0); p < 64; p++ {
		h1.SendUDP(h2.IP, 10000+p, 80, 100)
	}
	sim.RunAll()
	if ls.Spines[0].RxFrames == 0 || ls.Spines[1].RxFrames == 0 {
		t.Fatalf("ECMP did not spread: spine1=%d spine2=%d", ls.Spines[0].RxFrames, ls.Spines[1].RxFrames)
	}
	if h2.RxUDP != 64 {
		t.Fatalf("delivered %d/64", h2.RxUDP)
	}
}

// attachCorpusChecker compiles a corpus checker and attaches it to every
// switch in the fabric, returning the per-switch attachments.
func attachCorpusChecker(t *testing.T, ls *LeafSpine, key string) map[uint32]*HydraAttachment {
	t.Helper()
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog}
	out := map[uint32]*HydraAttachment{}
	for _, sw := range ls.AllSwitches() {
		out[sw.ID] = sw.AttachChecker(rt, nil)
	}
	return out
}

func TestHydraEndToEndLoopChecker(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	attachCorpusChecker(t, ls, "loop-freedom")

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	h2.RecordAll = true
	h1.SendUDP(h2.IP, 1234, 80, 64)
	sim.RunAll()

	if h2.RxUDP != 1 {
		t.Fatalf("packet lost: rx=%d", h2.RxUDP)
	}
	// §4.1: end hosts never see Hydra headers.
	for _, r := range h2.Received {
		if r.Pkt.HasHydra {
			t.Fatal("telemetry header leaked to the host")
		}
	}
	// The last-hop leaf ran the check.
	if got := ls.Leaves[1].Checker().Checked; got != 1 {
		t.Fatalf("last-hop checked = %d, want 1", got)
	}
	// Middle switches did not.
	if ls.Spines[0].Checker().Checked+ls.Spines[1].Checker().Checked != 0 {
		t.Fatal("spines must not run the checker in last-hop mode")
	}
}

func TestHydraWaypointingRejectsInFabric(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	atts := attachCorpusChecker(t, ls, "waypointing")

	// Configure spine1 (ID 101) as the waypoint on every switch.
	for _, att := range atts {
		if err := att.State.Tables["waypoint_id"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(32, 101)},
		}); err != nil {
			t.Fatal(err)
		}
	}

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	// Find one flow that hashes through spine1 and one through spine2.
	var viaSpine1, viaSpine2 uint16
	for p := uint16(1); p < 200 && (viaSpine1 == 0 || viaSpine2 == 0); p++ {
		pkt := &dataplane.Decoded{
			HasIPv4: true,
			IPv4:    dataplane.IPv4{Src: h1.IP, Dst: h2.IP, Protocol: dataplane.ProtoUDP},
			HasUDP:  true,
			UDP:     dataplane.UDP{SrcPort: 10000 + p, DstPort: 80},
		}
		if FlowHash(pkt)%2 == 0 {
			viaSpine1 = 10000 + p
		} else {
			viaSpine2 = 10000 + p
		}
	}

	h1.SendUDP(h2.IP, viaSpine1, 80, 64)
	h1.SendUDP(h2.IP, viaSpine2, 80, 64)
	sim.RunAll()

	if h2.RxUDP != 1 {
		t.Fatalf("exactly the waypointed flow must arrive, rx=%d", h2.RxUDP)
	}
	if ls.Leaves[1].Checker().Rejected != 1 {
		t.Fatalf("bypass flow must be rejected at the edge, rejected=%d", ls.Leaves[1].Checker().Rejected)
	}
}

func TestHydraReportsReachController(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})

	info := checkers.MustParse("stateful-firewall")
	prog, err := compiler.Compile(info, compiler.Options{Name: "fw"})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog}
	var reports []pipeline.Report
	for _, sw := range ls.AllSwitches() {
		att := sw.AttachChecker(rt, func(_ *Switch, rep pipeline.Report) {
			reports = append(reports, rep)
		})
		// Allow the forward direction h1->h2 everywhere so the packet
		// passes; the reverse rule is missing, so a report must fire.
		if err := att.State.Tables["allowed"].Insert(pipeline.Entry{
			Keys: []pipeline.KeyMatch{
				pipeline.ExactKey(uint64(ls.Host(0, 0).IP)),
				pipeline.ExactKey(uint64(ls.Host(1, 0).IP)),
			},
			Action: []pipeline.Value{pipeline.BoolV(true)},
		}); err != nil {
			t.Fatal(err)
		}
	}

	ls.Host(0, 0).SendUDP(ls.Host(1, 0).IP, 555, 80, 64)
	sim.RunAll()

	if ls.Host(1, 0).RxUDP != 1 {
		t.Fatal("allowed packet must be delivered")
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	if got := reports[0].Args[0].V; got != uint64(ls.Host(1, 0).IP) {
		t.Fatalf("report dst = %x", got)
	}
}

func TestTTLExpiryDrops(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 1, HostsPerLeaf: 1, WithRouting: true})
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)

	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: h1.GatewayMAC, Src: h1.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{TTL: 2, Protocol: dataplane.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: 1, DstPort: 2},
	}
	ls.Leaves[0].Receive(pkt.Serialize(), 2) // port 2 = host port (1 spine)
	sim.RunAll()
	// TTL 2: leaf1 (->1), spine (->0 at leaf2... actually dropped at leaf2).
	if h2.RxUDP != 0 {
		t.Fatal("TTL-expired packet must not be delivered")
	}
}

func TestMulticastClonesTelemetry(t *testing.T) {
	// A forwarding program that floods to two hosts; each copy must
	// carry independent telemetry and both must be checked and stripped.
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 1, Spines: 1, HostsPerLeaf: 2})
	leaf := ls.Leaves[0]
	leaf.Forwarding = floodProgram{ports: []int{2, 3}}
	attachCorpusChecker(t, ls, "loop-freedom")

	src := ls.Host(0, 0)
	src.RecordAll = true
	ls.Host(0, 1).RecordAll = true
	// Inject a packet directly into the leaf on the spine-facing port so
	// both host ports are egresses.
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{TTL: 4, Protocol: dataplane.ProtoUDP, Src: dataplane.MustIP4("10.9.9.9"), Dst: dataplane.MustIP4("10.0.1.255")},
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: 7, DstPort: 7},
	}
	leaf.Receive(pkt.Serialize(), 1)
	sim.RunAll()

	if src.RxUDP != 1 || ls.Host(0, 1).RxUDP != 1 {
		t.Fatalf("flood delivery: %d %d", src.RxUDP, ls.Host(0, 1).RxUDP)
	}
	for _, h := range []*Host{src, ls.Host(0, 1)} {
		for _, r := range h.Received {
			if r.Pkt.HasHydra {
				t.Fatal("multicast copy leaked telemetry")
			}
		}
	}
}

type floodProgram struct{ ports []int }

func (f floodProgram) Process(_ *Switch, _ *dataplane.Decoded, meta *PacketMeta) []Egress {
	var out []Egress
	for _, p := range f.ports {
		if p != meta.InPort {
			out = append(out, Egress{Port: p})
		}
	}
	return out
}

func TestHostStackLatency(t *testing.T) {
	sim := NewSimulator()
	a := NewHost(sim, "a", dataplane.MACFromUint64(1), dataplane.MustIP4("10.0.0.1"))
	b := NewHost(sim, "b", dataplane.MACFromUint64(2), dataplane.MustIP4("10.0.0.2"))
	lk := Connect(sim, a, 0, b, 0, 0 /* infinite rate */, 0)
	a.AttachLink(lk)
	b.AttachLink(lk)

	// Deterministic component only: base 50µs on each side, no jitter.
	a.StackBase, b.StackBase = 50*Microsecond, 50*Microsecond

	var arrival Time
	b.OnPacket = func(*dataplane.Decoded) { arrival = sim.Now() }
	a.SendUDP(b.IP, 1, 2, 10)
	sim.RunAll()
	// send-side 50µs + receive-side 50µs.
	if arrival != 100*Microsecond {
		t.Fatalf("arrival at %v, want 100µs", arrival)
	}

	// With jitter, repeated pings give varying RTTs.
	a.StackJitter = 20 * Microsecond
	b.StackJitter = 20 * Microsecond
	for i := uint16(0); i < 20; i++ {
		a.Ping(b.IP, i)
	}
	sim.RunAll()
	seen := map[Time]bool{}
	for _, s := range a.RTTs {
		seen[s.RTT] = true
	}
	if len(seen) < 5 {
		t.Fatalf("stack jitter produced only %d distinct RTTs", len(seen))
	}
}

func TestCaptureTapsLink(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	attachCorpusChecker(t, ls, "loop-freedom")

	// Tap the first leaf1->spine1 link: frames there carry telemetry.
	cap := &Capture{Max: 100}
	cap.Tap(sim, ls.Up[0][0])

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	for p := uint16(0); p < 16; p++ { // several flows so some cross spine1
		h1.SendUDP(h2.IP, 40000+p, 80, 64)
	}
	sim.RunAll()

	if len(cap.Records) == 0 {
		t.Fatal("tap saw nothing")
	}
	for _, r := range cap.Records {
		if !r.HasHydra {
			t.Fatalf("fabric-internal frame without telemetry: %s", r.Summary)
		}
		if r.Dir != "rx" || r.Len == 0 || r.Summary == "" {
			t.Fatalf("malformed record: %+v", r)
		}
	}
	if !strings.Contains(cap.String(), "HYDRA[") {
		t.Fatalf("capture transcript missing telemetry marker:\n%s", cap.String())
	}
	// Delivery is unaffected by the tap.
	if h2.RxUDP != 16 {
		t.Fatalf("tap broke forwarding: rx=%d", h2.RxUDP)
	}
}

func TestCaptureMaxBound(t *testing.T) {
	sim := NewSimulator()
	a := NewHost(sim, "a", dataplane.MACFromUint64(1), dataplane.MustIP4("10.0.0.1"))
	b := NewHost(sim, "b", dataplane.MACFromUint64(2), dataplane.MustIP4("10.0.0.2"))
	lk := Connect(sim, a, 0, b, 0, 0, 0)
	a.AttachLink(lk)
	b.AttachLink(lk)
	cap := &Capture{Max: 3}
	cap.Tap(sim, lk)
	for i := 0; i < 10; i++ {
		a.SendUDP(b.IP, 1, 2, 10)
	}
	sim.RunAll()
	if len(cap.Records) != 3 || cap.Dropped != 7 {
		t.Fatalf("records=%d dropped=%d", len(cap.Records), cap.Dropped)
	}
}

// TestPerHopCheckingInFabric exercises the §4.3 variant end to end: with
// CheckEveryHop, a waypoint violation is rejected at the spine (inside
// the network) rather than at the edge.
func TestPerHopCheckingInFabric(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})

	info := checkers.MustParse("routing-validity")
	prog, err := compiler.Compile(info, compiler.Options{Name: "routing-validity"})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog, CheckEveryHop: true}
	for i, sw := range ls.AllSwitches() {
		att := sw.AttachChecker(rt, nil)
		leaf := uint64(0)
		if i < len(ls.Leaves) {
			leaf = 1
		}
		if err := att.State.Tables["is_leaf"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(1, leaf)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Misconfigure leaf1 so cross-leaf traffic bounces leaf1 -> leaf2 via
	// a spine and then BACK to a spine (leaf in the middle): install a
	// route on leaf2 that sends the destination back up.
	bad := &L3Program{}
	bad.AddRoute(HostIP(1, 0), 32, 1) // back up to spine1 instead of the host
	ls.Leaves[1].Forwarding = bad
	spineBad := &L3Program{}
	spineBad.AddRoute(HostIP(1, 0), 32, 2) // spine bounces it down again
	ls.Spines[0].Forwarding = spineBad

	h1 := ls.Host(0, 0)
	h1.SendUDP(HostIP(1, 0), 1111, 80, 64)
	sim.RunAll()

	// The "leaf in the middle" violation (leaf2 mid-path) is caught by a
	// per-hop check at a core switch, not at an edge port.
	var rejectedAt []string
	for _, sw := range ls.AllSwitches() {
		if sw.Checker().Rejected > 0 {
			rejectedAt = append(rejectedAt, sw.Name)
		}
	}
	if len(rejectedAt) != 1 {
		t.Fatalf("rejected at %v, want exactly one switch", rejectedAt)
	}
	if rejectedAt[0] != "spine1" {
		t.Fatalf("per-hop check should catch the violation at spine1, got %s", rejectedAt[0])
	}
	if ls.Host(1, 0).RxUDP != 0 {
		t.Fatal("violating packet must not be delivered")
	}
}
