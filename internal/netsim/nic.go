package netsim

import (
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

// HydraNIC implements the extension §4.1 leaves to future work: "In
// principle, we could delegate these 'last-hop' and 'first-hop' tasks
// to the NIC at end hosts." The sending host's NIC injects the
// telemetry header and runs the init block; the receiving host's NIC
// runs the checker block, enforces reject, and strips the header before
// the packet reaches the host stack. Fabric switches then only run the
// telemetry block (set Switch.NICOffload), which §4.3 notes makes Hydra
// deployable on cores that "are not fully programmable but can run
// telemetry".
type HydraNIC struct {
	Runtime *compiler.Runtime
	State   *pipeline.State
	// OnReport receives digests raised at this NIC.
	OnReport func(h *Host, rep pipeline.Report)

	Injected uint64
	Checked  uint64
	Rejected uint64

	// plan is the packet-only header bind plan (no forwarding
	// metadata); blob is the reused injection buffer.
	plan *bindPlan
	blob []byte
}

// AttachNIC wires a Hydra NIC to the host, with fresh per-NIC state.
func (h *Host) AttachNIC(rt *compiler.Runtime, onReport func(*Host, pipeline.Report)) *HydraNIC {
	h.nic = &HydraNIC{Runtime: rt, State: rt.Prog.NewState(), OnReport: onReport, plan: newBindPlan(rt, true)}
	return h.nic
}

func (nic *HydraNIC) bindPlan() *bindPlan {
	if nic.plan == nil {
		nic.plan = newBindPlan(nic.Runtime, true)
	}
	return nic.plan
}

// NIC returns the attached Hydra NIC, or nil.
func (h *Host) NIC() *HydraNIC { return h.nic }

// nicEgress runs first-hop injection + init on an outgoing packet.
func (h *Host) nicEgress(pkt *dataplane.Decoded) {
	nic := h.nic
	if nic == nil || pkt.HasHydra {
		return
	}
	pkt.InsertHydra(nil)
	env := compiler.HopEnv{
		State:       nic.State,
		SwitchID:    uint32(h.MAC.Uint64()), // NICs identify as their MAC
		SlotHeaders: nic.bindPlan().bind(pkt, nil, 0, 0),
		PacketLen:   uint32(pkt.WireLen()),
		ReuseBlob:   true,
	}
	if n := (nic.Runtime.Prog.TeleWireBits() + 7) / 8; cap(nic.blob) < n {
		nic.blob = make([]byte, 0, n)
	}
	hr, err := nic.Runtime.RunBlocks(nic.blob[:0], env, compiler.BlockSet{Init: true}, true, false)
	if err != nil {
		h.ParseErrs++
		return
	}
	nic.blob = hr.Blob[:0]
	nic.Injected++
	pkt.Hydra.Blob = hr.Blob
	for _, rep := range hr.Reports {
		if nic.OnReport != nil {
			nic.OnReport(h, rep)
		}
	}
}

// nicIngress runs the last-hop checker + strip on an incoming packet;
// it reports whether the packet survives.
func (h *Host) nicIngress(pkt *dataplane.Decoded) bool {
	nic := h.nic
	if nic == nil || !pkt.HasHydra {
		return true
	}
	env := compiler.HopEnv{
		State:       nic.State,
		SwitchID:    uint32(h.MAC.Uint64()),
		SlotHeaders: nic.bindPlan().bind(pkt, nil, 0, 0),
		PacketLen:   uint32(pkt.WireLen()),
		// The blob aliases the received frame, which the host owns
		// until delivery completes — encoding into it is safe, but only
		// when the blob is exactly one telemetry record wide (encode
		// always writes TeleWireBytes; a shorter foreign blob would
		// spill into the frame bytes that follow it).
		ReuseBlob: len(pkt.Hydra.Blob) == (nic.Runtime.Prog.TeleWireBits()+7)/8,
	}
	hr, err := nic.Runtime.RunBlocks(pkt.Hydra.Blob, env, compiler.BlockSet{Checker: true}, false, true)
	if err != nil {
		h.ParseErrs++
		pkt.StripHydra()
		return true
	}
	nic.Checked++
	for _, rep := range hr.Reports {
		if nic.OnReport != nil {
			nic.OnReport(h, rep)
		}
	}
	if hr.Reject {
		nic.Rejected++
		return false
	}
	pkt.StripHydra()
	return true
}
