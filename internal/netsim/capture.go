package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataplane"
)

// CaptureRecord is one captured frame: where and when it was seen plus
// a decoded summary (pcap-style, but structured).
type CaptureRecord struct {
	At   Time
	Node string
	Port int
	// Dir is "rx" or "tx" relative to the node.
	Dir string
	Len int
	// Summary is a one-line human-readable rendering.
	Summary string
	// HasHydra reports whether the frame carried a telemetry header.
	HasHydra bool

	// key is the delivery event's deterministic sort key: under
	// partitioning records arrive in shard-interleaved order and are
	// sorted back into key order — the sequential execution order — at
	// end of run.
	key evKey
}

// Capture collects frames from the links it is attached to, like a
// network TAP (Figure 13's vantage points). Attach with Tap. Records
// are in canonical (sequential-execution) order once the run returns,
// at every shard count.
type Capture struct {
	// Max bounds the number of retained records (0 = unbounded). The
	// bound keeps the first Max records in canonical order — identical
	// at every shard count, though a parallel run buffers the overflow
	// until the end-of-run sort.
	Max     int
	Records []CaptureRecord
	// Dropped counts records discarded past Max.
	Dropped uint64

	// mu serializes record appends: with a partitioned simulator taps
	// fire concurrently from shard goroutines.
	mu sync.Mutex
	// dec is reused across records. Tap callbacks borrow the frame for
	// the duration of the call (it may be a pooled buffer that is
	// recycled afterwards), so a record keeps only derived strings —
	// never the frame or slices into it.
	dec dataplane.Decoded
}

// Tap mirrors every frame delivered over the link into the capture,
// recorded at the receiving side. sim must be the root simulator.
func (c *Capture) Tap(sim *Simulator, l *Link) {
	registered := false
	for _, existing := range sim.caps {
		if existing == c {
			registered = true
			break
		}
	}
	if !registered {
		sim.caps = append(sim.caps, c)
	}
	l.taps = append(l.taps, func(k evKey, node string, port int, frame []byte) {
		c.record(k, node, port, "rx", frame, sim.par == nil)
	})
}

func (c *Capture) record(k evKey, node string, port int, dir string, frame []byte, ordered bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Sequential runs append in canonical order, so the Max bound can
	// drop eagerly. Parallel runs must retain everything until the
	// end-of-run sort decides which records are the canonical first Max.
	if ordered && c.Max > 0 && len(c.Records) >= c.Max {
		c.Dropped++
		return
	}
	rec := CaptureRecord{At: k.at, Node: node, Port: port, Dir: dir, Len: len(frame), key: k}
	if err := dataplane.ParseInto(&c.dec, frame); err == nil {
		rec.Summary = Summarize(&c.dec)
		rec.HasHydra = c.dec.HasHydra
	} else {
		rec.Summary = fmt.Sprintf("undecodable (%v)", err)
	}
	c.Records = append(c.Records, rec)
}

// finalize restores canonical record order and applies the Max bound;
// called by the simulator at end of run. Idempotent.
func (c *Capture) finalize() {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.Records
	sorted := true
	for i := 1; i < len(rs); i++ {
		if keyLess(&rs[i], &rs[i-1]) {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(rs, func(i, j int) bool { return keyLess(&rs[i], &rs[j]) })
	}
	if c.Max > 0 && len(rs) > c.Max {
		c.Dropped += uint64(len(rs) - c.Max)
		c.Records = rs[:c.Max]
	}
}

func keyLess(a, b *CaptureRecord) bool { return a.key.less(b.key) }

// Summarize renders a packet as a one-line tcpdump-style summary.
func Summarize(pkt *dataplane.Decoded) string {
	var parts []string
	if pkt.HasHydra {
		parts = append(parts, fmt.Sprintf("HYDRA[%dB]", len(pkt.Hydra.Blob)))
	}
	if pkt.HasVLAN {
		parts = append(parts, fmt.Sprintf("VLAN %d", pkt.VLAN.VID))
	}
	if pkt.HasSourceRoute {
		hops := make([]string, len(pkt.SourceRoute))
		for i, h := range pkt.SourceRoute {
			hops[i] = fmt.Sprintf("%d", h.Port)
		}
		parts = append(parts, "SR["+strings.Join(hops, ",")+"]")
	}
	switch {
	case pkt.HasGTPU:
		parts = append(parts, fmt.Sprintf("GTP teid=%d", pkt.GTPU.TEID))
		if pkt.HasInnerIPv4 {
			parts = append(parts, fmt.Sprintf("| %s > %s", pkt.InnerIPv4.Src, pkt.InnerIPv4.Dst))
			switch {
			case pkt.HasInnerUDP:
				parts = append(parts, fmt.Sprintf("udp %d>%d", pkt.InnerUDP.SrcPort, pkt.InnerUDP.DstPort))
			case pkt.HasInnerTCP:
				parts = append(parts, fmt.Sprintf("tcp %d>%d", pkt.InnerTCP.SrcPort, pkt.InnerTCP.DstPort))
			}
		}
	case pkt.HasIPv4:
		parts = append(parts, fmt.Sprintf("%s > %s", pkt.IPv4.Src, pkt.IPv4.Dst))
		switch {
		case pkt.HasUDP:
			parts = append(parts, fmt.Sprintf("udp %d>%d", pkt.UDP.SrcPort, pkt.UDP.DstPort))
		case pkt.HasTCP:
			parts = append(parts, fmt.Sprintf("tcp %d>%d", pkt.TCP.SrcPort, pkt.TCP.DstPort))
		case pkt.HasICMP:
			kind := "echo-reply"
			if pkt.ICMP.Type == dataplane.ICMPEchoRequest {
				kind = "echo-request"
			}
			parts = append(parts, fmt.Sprintf("icmp %s seq=%d", kind, pkt.ICMP.Seq))
		}
	default:
		parts = append(parts, pkt.Eth.Type.String())
	}
	return strings.Join(parts, " ")
}

// String renders the capture like a terse tcpdump transcript.
func (c *Capture) String() string {
	var b strings.Builder
	for _, r := range c.Records {
		fmt.Fprintf(&b, "%12s %s:%d %s %4dB %s\n", r.At, r.Node, r.Port, r.Dir, r.Len, r.Summary)
	}
	return b.String()
}
