package netsim

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
)

// mustCompileChecker compiles one corpus checker into a runtime.
func mustCompileChecker(t *testing.T, key string) *compiler.Runtime {
	t.Helper()
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatal(err)
	}
	return &compiler.Runtime{Prog: prog}
}

// nullNode terminates a link and immediately recycles every frame, so
// steady-state traffic through the switch under test keeps the frame
// pool warm.
type nullNode struct {
	sim *Simulator
	rx  uint64
}

func (n *nullNode) NodeName() string { return "null" }
func (n *nullNode) Receive(frame []byte, port int) {
	n.rx++
	n.sim.ReleaseFrame(frame)
}

// onePortProgram forwards everything to a fixed port without touching
// the packet, using the allocation-free egress scratch.
type onePortProgram struct{ port int }

func (p onePortProgram) Process(_ *Switch, _ *dataplane.Decoded, meta *PacketMeta) []Egress {
	return meta.OneEgress(p.port)
}

// TestWireFastPathCounters pins down which hops take the in-place
// rewrite fast path: telemetry-only mid-fabric hops do, inject and
// strip hops do not.
func TestWireFastPathCounters(t *testing.T) {
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	attachCorpusChecker(t, ls, "loop-freedom")

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	for p := uint16(0); p < 32; p++ {
		h1.SendUDP(h2.IP, 41000+p, 80, 64)
	}
	sim.RunAll()

	if h2.RxUDP != 32 {
		t.Fatalf("delivered %d/32", h2.RxUDP)
	}
	// Spines only rewrite telemetry: the wire shape never changes there,
	// so every spine transmission must be in place.
	for _, sp := range ls.Spines {
		if sp.TxFrames > 0 && sp.SlowTxFrames != 0 {
			t.Fatalf("%s re-serialized %d/%d frames on a telemetry-only hop",
				sp.Name, sp.SlowTxFrames, sp.TxFrames)
		}
	}
	if ls.Spines[0].FastTxFrames+ls.Spines[1].FastTxFrames != 32 {
		t.Fatalf("spine fast-path frames = %d+%d, want 32 total",
			ls.Spines[0].FastTxFrames, ls.Spines[1].FastTxFrames)
	}
	// Leaves inject (first hop) or strip (last hop): both change the
	// wire shape, so the fast path must never fire there.
	for _, lf := range ls.Leaves {
		if lf.FastTxFrames != 0 {
			t.Fatalf("%s used the fast path on a shape-changing hop", lf.Name)
		}
	}
}

// TestWireAllocs is the tentpole acceptance check: a telemetry-only hop
// (parse, bind, telemetry block, in-place blob rewrite, send) must stay
// within one heap allocation per packet.
func TestWireAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	sim := NewSimulator()
	sw := NewSwitch(sim, 7, "mid")
	sw.Forwarding = onePortProgram{port: 1}
	sink := &nullNode{sim: sim}
	lk := Connect(sim, sw, 1, sink, 0, 0, 0)
	sw.AttachLink(1, lk)
	// No edge ports: the switch is mid-fabric and only runs telemetry.

	info := mustCompileChecker(t, "loop-freedom")
	sw.AttachChecker(info, nil)

	// Template frame: a Hydra header is already present with a zeroed
	// blob of exactly this switch's telemetry width, as a first-hop
	// switch would have injected.
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: dataplane.MACFromUint64(2), Src: dataplane.MACFromUint64(1), Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{TTL: 8, Protocol: dataplane.ProtoUDP, Src: dataplane.MustIP4("10.0.0.1"), Dst: dataplane.MustIP4("10.0.0.2")},
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: 1234, DstPort: 80},
		Payload: make([]byte, 64),
	}
	pkt.InsertHydra(make([]byte, sw.totalBlobSize()))
	template := pkt.Serialize()

	hop := func() {
		frame := sim.AcquireFrame(len(template))
		copy(frame, template)
		sw.Receive(frame, 2)
		sim.RunAll()
	}
	for i := 0; i < 32; i++ {
		hop() // warm the frame pool, event heap, and checker scratch
	}
	fastBefore, slowBefore := sw.FastTxFrames, sw.SlowTxFrames

	const rounds = 200
	allocs := testing.AllocsPerRun(rounds, hop)

	if sw.SlowTxFrames != slowBefore {
		t.Fatalf("telemetry-only hop fell off the fast path %d times", sw.SlowTxFrames-slowBefore)
	}
	if sw.FastTxFrames-fastBefore < rounds {
		t.Fatalf("fast path ran %d times, want >= %d", sw.FastTxFrames-fastBefore, rounds)
	}
	if sink.rx == 0 {
		t.Fatal("sink saw no frames")
	}
	if allocs > 1 {
		t.Fatalf("telemetry-only hop costs %.1f allocs, budget 1", allocs)
	}
}
