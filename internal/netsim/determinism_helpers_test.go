package netsim

import "testing"

func partitionForTest(t *testing.T, sim *Simulator, shards int) {
	t.Helper()
	if err := sim.Partition(shards); err != nil {
		t.Fatalf("Partition(%d): %v", shards, err)
	}
}

func scheduleAtNode(sim *Simulator, n Node, at Time, fn func()) {
	sim.AtNode(n, at, fn)
}
