package netsim

// Node is anything that can terminate a link: a host NIC or a switch
// port. Receive is called by the simulator when the last bit of a frame
// arrives.
type Node interface {
	// Receive delivers a frame on the node's port. Ownership of the
	// frame buffer transfers to the receiver (see the package comment's
	// frame-ownership contract): the receiver may scribble on it, must
	// copy anything it retains past the callback, and should return it
	// with Simulator.ReleaseFrame when done.
	Receive(frame []byte, port int)
	// NodeName identifies the node in traces and errors.
	NodeName() string
}

// endpoint is one side of a link.
type endpoint struct {
	node Node
	port int
}

// linkSink delivers frames arriving at one endpoint of a link; one per
// direction, allocated with the Link, so frame-arrival events carry a
// pre-existing sink instead of a fresh closure. Under partitioning the
// sink is the receiver-side anchor: sim is the shard loop that owns the
// receiving endpoint, origin its stable node ID, and frames/bytes the
// delivered-traffic counters for this direction — written only by the
// receiving shard, folded into the Link totals at end of run.
type linkSink struct {
	l      *Link
	sim    *Simulator
	to     endpoint
	origin int32
	frames uint64
	bytes  uint64
}

func (s *linkSink) deliverFrame(frame []byte, port int) {
	s.frames++
	s.bytes += uint64(len(frame))
	for _, tap := range s.l.taps {
		tap(s.sim.curEvKey, s.to.node.NodeName(), port, frame)
	}
	s.to.node.Receive(frame, port)
}

// direction carries the transmit state for one direction of a link.
// It is owned by the sending endpoint's shard.
type direction struct {
	busyUntil Time
}

// FaultAction is a link fault's verdict for one transmitted frame.
// The zero value means "deliver normally".
type FaultAction struct {
	// Drop loses the frame on the wire (after serialization: the sender
	// still paid the transmission time, as with real physical loss).
	Drop bool
	// ExtraDelay is added to the frame's arrival time; a jittered delay
	// reorders the frame relative to later traffic.
	ExtraDelay Time
	// Duplicate delivers a second copy of the frame DupDelay after the
	// original arrival.
	Duplicate bool
	DupDelay  Time
}

// LinkFault intercepts frames on the wire — the hook the deterministic
// fault-injection layer (internal/faults) attaches to. Apply runs once
// per transmitted frame, after the link has copied it into a pooled
// buffer: the fault may corrupt buf in place, and the returned action
// drops, delays, or duplicates the delivery. fromA reports the
// direction (true for frames sent by the link's a-side endpoint).
//
// The hook is a single nil check when unset: links without faults keep
// the zero-allocation wire path untouched.
//
// Under partitioning Apply runs on the sending endpoint's shard, in
// that sender's deterministic execution order. An injector shared by
// several links stays deterministic as long as every frame it sees is
// sent from nodes on one shard (in practice: one sending switch) —
// see internal/faults for the contract.
type LinkFault interface {
	Apply(now Time, fromA bool, buf []byte) FaultAction
}

// Link is a full-duplex point-to-point link with serialization delay
// (bandwidth), propagation delay, and a drop-tail queue bounded in
// bytes.
type Link struct {
	sim *Simulator

	a, b endpoint
	// simA and simB are the event loops owning each endpoint — both the
	// root before Partition, per-shard loops after. Sends execute on
	// the sender's loop; the cross-shard case routes through its sink.
	simA, simB *Simulator
	// BitsPerSec is the line rate; zero means infinite.
	BitsPerSec int64
	// PropDelay is the one-way propagation delay. For a link whose
	// endpoints land on different shards it must be positive: it bounds
	// the parallel lookahead window.
	PropDelay Time
	// QueueBytes bounds the transmit backlog per direction; zero means
	// unbounded.
	QueueBytes int

	ab, ba direction
	// toA and toB are the per-direction delivery sinks (toB receives
	// frames sent by a, and vice versa).
	toA, toB linkSink

	// Drops counts frames lost to queue overflow, per direction a->b
	// and b->a.
	DropsAB, DropsBA uint64
	// FaultDrops counts frames lost to an attached LinkFault (wire loss,
	// distinct from queue overflow), per direction.
	FaultDropsAB, FaultDropsBA uint64
	// Frames and Bytes count delivered traffic in both directions.
	// Under partitioning they are folded from the per-direction sinks
	// at end of run; read them after Run/RunAll returns.
	Frames uint64
	Bytes  uint64

	// Fault, when non-nil, intercepts every transmitted frame (see
	// LinkFault). nil — the default — costs one pointer test per send.
	Fault LinkFault

	// taps are capture hooks invoked on every delivered frame, with the
	// delivery event's deterministic key for canonical ordering across
	// shard counts.
	taps []func(k evKey, node string, port int, frame []byte)
}

// Connect wires two nodes with a new link and returns it. The same port
// number may be reused on different nodes; each (node, port) pair must
// be wired at most once (the caller owns that invariant). Both nodes
// are registered with the simulator, fixing their deterministic event
// order and shard placement.
func Connect(sim *Simulator, a Node, aPort int, b Node, bPort int, bitsPerSec int64, prop Time) *Link {
	l := &Link{
		sim:        sim,
		a:          endpoint{a, aPort},
		b:          endpoint{b, bPort},
		simA:       sim,
		simB:       sim,
		BitsPerSec: bitsPerSec,
		PropDelay:  prop,
	}
	aID := sim.registerNode(a)
	bID := sim.registerNode(b)
	l.toA = linkSink{l: l, sim: sim, to: l.a, origin: aID}
	l.toB = linkSink{l: l, sim: sim, to: l.b, origin: bID}
	sim.links = append(sim.links, l)
	return l
}

// Send transmits a frame from the given node (which must be one of the
// link's endpoints) toward the other side. It models serialization at
// the line rate, a bounded transmit queue, and propagation delay.
//
// Send copies the frame into a pooled buffer: the caller keeps
// ownership of frame and may reuse it as soon as Send returns. Send
// must run on the sender's event loop — inside one of the sending
// node's callbacks, or (partitioned) from coordinator control context.
func (l *Link) Send(from Node, frame []byte) {
	var dir *direction
	var drops, faultDrops *uint64
	var sink *linkSink
	var sim *Simulator
	fromA := false
	switch from {
	case l.a.node:
		dir, drops, faultDrops, sink, sim, fromA = &l.ab, &l.DropsAB, &l.FaultDropsAB, &l.toB, l.simA, true
	case l.b.node:
		dir, drops, faultDrops, sink, sim = &l.ba, &l.DropsBA, &l.FaultDropsBA, &l.toA, l.simB
	default:
		panic("netsim: Send from a node not on this link")
	}

	now := sim.now
	start := dir.busyUntil
	if start < now {
		start = now
	}

	// Drop-tail: if the backlog (in bytes at line rate) exceeds the
	// queue bound, the frame is lost.
	if l.QueueBytes > 0 && l.BitsPerSec > 0 {
		backlogBytes := int64(start-now) * l.BitsPerSec / (8 * int64(Second))
		if backlogBytes > int64(l.QueueBytes) {
			*drops++
			return
		}
	}

	var txTime Time
	if l.BitsPerSec > 0 {
		txTime = Time(int64(len(frame)) * 8 * int64(Second) / l.BitsPerSec)
	}
	dir.busyUntil = start + txTime

	arrive := dir.busyUntil + l.PropDelay
	buf := sim.AcquireFrame(len(frame))
	copy(buf, frame)
	if l.Fault != nil {
		act := l.Fault.Apply(now, fromA, buf)
		if act.Drop {
			*faultDrops++
			sim.ReleaseFrame(buf)
			return
		}
		if act.Duplicate {
			dup := sim.AcquireFrame(len(buf))
			copy(dup, buf)
			sim.sendFrame(arrive+act.DupDelay, sink, dup)
		}
		arrive += act.ExtraDelay
	}
	sim.sendFrame(arrive, sink, buf)
}

// Peer returns the node and port on the opposite side from `from`.
func (l *Link) Peer(from Node) (Node, int) {
	if from == l.a.node {
		return l.b.node, l.b.port
	}
	return l.a.node, l.a.port
}

// QueueDelay returns the current transmit backlog (as time) in the
// direction away from `from`. Like Send, it reads sender-shard state.
func (l *Link) QueueDelay(from Node) Time {
	var dir *direction
	var sim *Simulator
	if from == l.a.node {
		dir, sim = &l.ab, l.simA
	} else {
		dir, sim = &l.ba, l.simB
	}
	if dir.busyUntil <= sim.now {
		return 0
	}
	return dir.busyUntil - sim.now
}
