package netsim

import (
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

// headerBinder extracts one standard header binding from a parsed
// packet and the per-hop forwarding context. A zero (width-0) Value
// means the header is absent at this hop, matching the SlotHeaders
// convention.
type headerBinder func(pkt *dataplane.Decoded, meta *PacketMeta, inPort, outPort int) pipeline.Value

// bindPlan is the allocation-free replacement for the old per-hop
// map[string]pipeline.Value header environment: at attach time the
// checker's sorted header bindings (Runtime.Bindings) are resolved to
// one binder function per slot, and at each hop bind() scatters the
// packet fields straight into a reused SlotHeaders array — the same
// scheme the engine's shards use, now reading the switch's pooled
// Decoded.
type bindPlan struct {
	funcs []headerBinder
	slots []pipeline.Value
	// extraIdx maps annotation paths to slot indices for the
	// meta.Extra overlay (program-specific bindings override the
	// standard ones, as the old map merge order guaranteed).
	extraIdx map[string]int
}

// newBindPlan resolves a runtime's bindings. packetOnly plans (Hydra
// NICs) have no forwarding context: standard_metadata/fabric_metadata
// paths stay unbound, exactly as the old BindPacketHeaders(pkt, nil)
// environment left them.
func newBindPlan(rt *compiler.Runtime, packetOnly bool) *bindPlan {
	bindings := rt.Bindings()
	p := &bindPlan{
		funcs:    make([]headerBinder, len(bindings)),
		slots:    make([]pipeline.Value, len(bindings)),
		extraIdx: make(map[string]int, len(bindings)),
	}
	for i, path := range bindings {
		p.extraIdx[path] = i
		if packetOnly && binderNeedsMeta(path) {
			continue
		}
		p.funcs[i] = binderFor(path)
	}
	return p
}

// bind fills the plan's slot array for one hop and returns it. The
// returned slice is the plan's own scratch: it is valid until the next
// bind call on the same plan, which is safe because the simulator is
// single-threaded and each attachment binds once per RunBlocks call.
func (p *bindPlan) bind(pkt *dataplane.Decoded, meta *PacketMeta, inPort, outPort int) []pipeline.Value {
	for i, fn := range p.funcs {
		if fn != nil {
			p.slots[i] = fn(pkt, meta, inPort, outPort)
		} else {
			p.slots[i] = pipeline.Value{}
		}
	}
	if meta != nil && len(meta.Extra) > 0 {
		for k, v := range meta.Extra {
			if i, ok := p.extraIdx[k]; ok {
				p.slots[i] = v
			}
		}
	}
	return p.slots
}

// binderNeedsMeta reports whether a path binds forwarding metadata
// rather than packet contents.
func binderNeedsMeta(path string) bool {
	switch path {
	case "standard_metadata.ingress_port",
		"standard_metadata.egress_port",
		"fabric_metadata.skip_forwarding":
		return true
	}
	return false
}

// binderFor returns the extractor for a standard annotation path, or
// nil for program-specific paths (those are only ever bound through
// meta.Extra). The set and the per-field presence rules mirror the old
// bindHeaders/BindPacketHeaders maps exactly.
func binderFor(path string) headerBinder {
	switch path {
	case "standard_metadata.ingress_port":
		return func(_ *dataplane.Decoded, _ *PacketMeta, inPort, _ int) pipeline.Value {
			return pipeline.B(8, uint64(inPort))
		}
	case "standard_metadata.egress_port":
		return func(_ *dataplane.Decoded, _ *PacketMeta, _, outPort int) pipeline.Value {
			return pipeline.B(8, uint64(maxInt(outPort, 0)))
		}
	case "fabric_metadata.skip_forwarding":
		return func(_ *dataplane.Decoded, meta *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(meta.Drop)
		}
	case "hdr.vlan_tag.vlan_id":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasVLAN {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.VLAN.VID))
		}
	case "hdr.ipv4.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasIPv4)
		}
	case "hdr.ipv4.src_addr":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(32, uint64(pkt.IPv4.Src))
		}
	case "hdr.ipv4.dst_addr":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(32, uint64(pkt.IPv4.Dst))
		}
	case "hdr.ipv4.protocol":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(8, uint64(pkt.IPv4.Protocol))
		}
	case "hdr.tcp.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasTCP)
		}
	case "hdr.tcp.sport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasTCP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.TCP.SrcPort))
		}
	case "hdr.tcp.dport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasTCP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.TCP.DstPort))
		}
	case "hdr.udp.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasUDP && !pkt.HasGTPU)
		}
	case "hdr.udp.sport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasUDP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.UDP.SrcPort))
		}
	case "hdr.udp.dport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasUDP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.UDP.DstPort))
		}
	case "hdr.inner_ipv4.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasInnerIPv4)
		}
	case "hdr.inner_ipv4.src_addr":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasInnerIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(32, uint64(pkt.InnerIPv4.Src))
		}
	case "hdr.inner_ipv4.dst_addr":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasInnerIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(32, uint64(pkt.InnerIPv4.Dst))
		}
	case "hdr.inner_ipv4.protocol":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasInnerIPv4 {
				return pipeline.Value{}
			}
			return pipeline.B(8, uint64(pkt.InnerIPv4.Protocol))
		}
	case "hdr.inner_tcp.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasInnerTCP)
		}
	case "hdr.inner_tcp.dport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasInnerTCP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.InnerTCP.DstPort))
		}
	case "hdr.inner_udp.$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasInnerUDP)
		}
	case "hdr.inner_udp.dport":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasInnerUDP {
				return pipeline.Value{}
			}
			return pipeline.B(16, uint64(pkt.InnerUDP.DstPort))
		}
	case "hdr.srcRoutes[0].$valid$":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			return pipeline.BoolV(pkt.HasSourceRoute && len(pkt.SourceRoute) > 0)
		}
	case "hdr.srcRoutes[0].switch_id":
		return func(pkt *dataplane.Decoded, _ *PacketMeta, _, _ int) pipeline.Value {
			if !pkt.HasSourceRoute || len(pkt.SourceRoute) == 0 {
				return pipeline.Value{}
			}
			return pipeline.B(32, uint64(pkt.SourceRoute[0].SwitchID))
		}
	}
	return nil
}
