// Package netsim is a deterministic discrete-event network simulator:
// hosts, programmable switches, and links with bandwidth, propagation
// delay, and drop-tail queues. It is the testbed substrate for the
// paper's case studies (§5) and performance experiments (§6.2): Mininet
// and the Aether hardware pods are replaced by this simulator, with the
// Hydra checker attached to switches exactly where the compiler's
// linking rules place it (init at first-hop ingress, telemetry at every
// egress, checker at last-hop egress).
//
// # Frame ownership
//
// The wire path recycles frame buffers through the simulator's free
// list (AcquireFrame/ReleaseFrame). The contract, enforced by every
// built-in node and expected of custom ones:
//
//   - Link.Send copies the frame: the caller keeps ownership of what it
//     passed in and may reuse it immediately.
//   - Node.Receive transfers ownership of the frame to the receiver.
//     The frame is borrowed storage — a receiver that retains packet
//     data past its callback must copy it (Decoded.Clone), and should
//     hand the buffer back with ReleaseFrame when done. Releasing is
//     optional (an unreleased frame is just garbage-collected), but a
//     released frame must not be referenced again.
//
// Under partitioning (see below) each shard owns its own free list;
// a frame sent across a shard boundary is acquired from the sender's
// pool and released into the receiver's. Buffers therefore migrate
// between pools, which is harmless: both pools are bounded and a
// buffer belongs to exactly one owner at a time — the ownership
// contract above is unchanged.
//
// # Parallel execution
//
// Partition splits the topology into P shards (switches striped in
// registration order, every other node co-located with its first
// switch peer) and runs them as a conservative-lookahead parallel
// discrete-event simulation: links are the only cross-shard edges, so
// the minimum propagation delay of any cross-shard link bounds how far
// one shard's present can influence another's future. Each window the
// coordinator computes the global minimum pending event time `low`,
// runs any control events (root At/After callbacks) scheduled at it,
// and releases every shard to execute events in [low, low+lookahead)
// in parallel; cross-shard Link.Send calls are buffered in per-(src,
// dst) outboxes that the coordinator drains into the destination heaps
// at the next barrier, which the lookahead guarantees is early enough.
//
// Determinism is the hard contract. Every event is keyed
// (at, schedAt, origin, seq): the execution time, the time it was
// scheduled, the stable registration ID of the node whose callback
// scheduled it (0 for external/control context), and a per-origin FIFO
// counter (see evKey). Each component is independent of the shard
// count, a node's events execute in key order on its shard regardless
// of P, so the per-origin counters advance identically at every shard
// count and the induced total order — and with it captures, counters,
// fault RNG draws, and verdicts — is byte-identical from P=1 to P=8.
// The sequential loop (no Partition call) uses the same keys and
// remains the fast path.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Time is simulation time in nanoseconds since simulation start.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// maxTime is the +infinity sentinel for window arithmetic.
const maxTime = Time(math.MaxInt64)

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return t.Duration().String() }

// Seconds returns the time in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// frameSink is the closure-free form of a frame-delivery event: the
// wire path schedules (sink, frame, port) triples instead of capturing
// them in a func, so steady-state forwarding allocates nothing per hop.
type frameSink interface {
	deliverFrame(frame []byte, port int)
}

// evKey is an event's deterministic sort key, every component of which
// is independent of the shard count:
//
//   - at is the event's execution time;
//   - schedAt is the simulation time at which it was scheduled — the
//     sequential simulator pushes events in execution order, so for
//     same-timestamp events "scheduled earlier" reproduces the
//     sequential loop's push-order tie-break;
//   - origin is the stable node ID of the scheduling context (0 for
//     external/control code), breaking the remaining ties between
//     events scheduled at the same instant by different nodes;
//   - seq is a per-origin FIFO counter, the final total-order tie-break.
type evKey struct {
	at      Time
	schedAt Time
	origin  int32
	seq     uint64
}

func (a evKey) less(b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// event is one scheduled callback or frame delivery. dest is the stable
// ID of the node whose state the event touches — the shard routing
// address, and the origin inherited by anything the event schedules in
// turn; dest 0 is a control event, handled by the root loop.
type event struct {
	k    evKey
	fn   func()
	dest int32
	// Frame-delivery form: when sink is non-nil, fn is nil and the
	// event runs sink.deliverFrame(frame, port).
	sink  frameSink
	frame []byte
	port  int
}

// eventHeap is a hand-rolled binary min-heap. container/heap would box
// every event into an interface on Push — one allocation per scheduled
// event — which is exactly what the zero-allocation wire path removes.
type eventHeap []event

// less orders by time, then control events (dest 0) ahead of node
// events — the partitioned coordinator runs a timestamp's control
// events before releasing the parallel window, so the sequential
// comparator must agree — then by the deterministic key.
func (h eventHeap) less(i, j int) bool {
	if h[i].k.at != h[j].k.at {
		return h[i].k.at < h[j].k.at
	}
	ci, cj := h[i].dest == 0, h[j].dest == 0
	if ci != cj {
		return ci
	}
	return h[i].k.less(h[j].k)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Simulator owns an event loop. Unpartitioned it is single-threaded:
// all node callbacks run inside Run, so nodes need no locking of their
// own — and the frame free list below needs no synchronization either.
// After Partition the root Simulator becomes the coordinator of P
// child shard loops (see the package comment); node callbacks then run
// on their shard's goroutine, still one at a time per node.
type Simulator struct {
	now    Time
	events eventHeap

	// frames is the free list backing AcquireFrame/ReleaseFrame.
	frames [][]byte

	// Node registry (root simulator only): stable IDs in registration
	// order drive both event ordering and shard assignment. ID 0 is
	// reserved for external/control context.
	nodes   []Node
	nodeIDs map[Node]int32
	links   []*Link
	caps    []*Capture

	// seqs holds the per-origin FIFO counters, indexed by stable node
	// ID. The backing array is shared with every shard: entry i is only
	// ever touched while an event destined to node i executes, which
	// happens on exactly one shard.
	seqs []uint64

	// curOrigin is the dest of the executing event: the origin stamped
	// on everything the current callback schedules. curEvKey is the
	// executing event's own sort key (captures canonicalize records
	// on it).
	curOrigin int32
	curEvKey  evKey

	// EventCap bounds RunAll as a runaway-loop backstop; zero means the
	// 50M default.
	EventCap uint64

	// EventsRun counts executed events. On a partitioned root it is
	// refreshed at every Run/RunAll return to include all shards.
	EventsRun uint64
	localRun  uint64

	// par is non-nil on a partitioned root; shard/root identify a child.
	par    *partition
	root   *Simulator
	shard  int
	outbox [][]event // child only: cross-shard sends per destination shard
}

// partition is the coordinator state of a partitioned root simulator.
type partition struct {
	children  []*Simulator
	gates     []gate
	shardOf   []int32 // stable node ID -> shard
	lookahead Time
	barriers  uint64
	// nowLow mirrors the coordinator clock for concurrent Now() readers
	// (e.g. a report-bus clock sampled from shard goroutines).
	nowLow atomic.Int64
}

// gate synchronizes the coordinator with one shard worker: windows are
// granted over work and acknowledged over done. Channel send/receive
// pairs give the happens-before edges that make the coordinator's
// between-window access to shard heaps race-free.
type gate struct {
	work chan Time
	done chan struct{}
}

// framePoolMax bounds the free list; frames released beyond it fall to
// the garbage collector.
const framePoolMax = 4096

// frameMinCap is the minimum capacity of a freshly allocated frame
// buffer, so buffers recycle across frame sizes instead of churning.
const frameMinCap = 2048

// defaultEventCap is the RunAll backstop when EventCap is zero.
const defaultEventCap = 50_000_000

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator {
	return &Simulator{seqs: make([]uint64, 1, 64)}
}

// Now returns the current simulation time. Inside a node callback this
// is the executing event's time on that node's shard; on a partitioned
// root observed from another goroutine it is the coordinator's window
// base, which trails every shard by at most the lookahead.
func (s *Simulator) Now() Time {
	if s.par != nil {
		return Time(s.par.nowLow.Load())
	}
	return s.now
}

// registerNode assigns the next stable ID. Registration order must be
// a pure function of topology construction — it is both the event
// tie-break order and the shard striping order.
func (s *Simulator) registerNode(n Node) int32 {
	if s.root != nil {
		return s.root.registerNode(n)
	}
	if s.par != nil {
		panic("netsim: cannot add nodes after Partition")
	}
	if id, ok := s.nodeIDs[n]; ok {
		return id
	}
	if s.nodeIDs == nil {
		s.nodeIDs = make(map[Node]int32, 64)
	}
	s.nodes = append(s.nodes, n)
	id := int32(len(s.nodes)) // IDs start at 1; 0 is external/control
	s.nodeIDs[n] = id
	s.seqs = append(s.seqs, 0)
	// Pre-size the event heap and frame free list from the topology:
	// large fabrics otherwise pay repeated append/sift growth in the
	// first busy window. Heuristic: a handful of in-flight events and
	// pooled frames per node.
	if c := 8 * len(s.nodes); cap(s.events) < c {
		grown := make(eventHeap, len(s.events), c)
		copy(grown, s.events)
		s.events = grown
	}
	if c := min(4*len(s.nodes), framePoolMax); cap(s.frames) < c {
		grown := make([][]byte, len(s.frames), c)
		copy(grown, s.frames)
		s.frames = grown
	}
	return id
}

// originOf returns the stable ID of a registered node (0 if unknown).
func (s *Simulator) originOf(n Node) int32 {
	return s.nodeIDs[n]
}

// AcquireFrame returns a frame buffer of length n, reusing the free
// list when possible. The buffer contents are arbitrary: callers are
// expected to overwrite all n bytes.
func (s *Simulator) AcquireFrame(n int) []byte {
	if k := len(s.frames); k > 0 {
		b := s.frames[k-1]
		s.frames[k-1] = nil
		s.frames = s.frames[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this frame: let it go and allocate fresh.
	}
	c := n
	if c < frameMinCap {
		c = frameMinCap
	}
	return make([]byte, n, c)
}

// ReleaseFrame returns a frame buffer to the free list. The caller must
// not touch the buffer afterwards.
func (s *Simulator) ReleaseFrame(b []byte) {
	if cap(b) == 0 || len(s.frames) >= framePoolMax {
		return
	}
	s.frames = append(s.frames, b[:0])
}

// nextSeq advances the FIFO counter of one origin. Safe by ownership:
// origin o's counter is only touched while an event destined to o (or,
// for o == 0, coordinator/external code) executes.
func (s *Simulator) nextSeq(origin int32) uint64 {
	s.seqs[origin]++
	return s.seqs[origin]
}

// push keys and enqueues an event on this loop's own heap.
func (s *Simulator) push(e event) {
	if e.k.at < s.now {
		e.k.at = s.now
	}
	e.k.schedAt = s.now
	e.k.seq = s.nextSeq(e.k.origin)
	s.pushRaw(e)
}

// pushRaw enqueues an already-keyed event (cross-shard migration and
// outbox draining must preserve the sender-assigned key).
func (s *Simulator) pushRaw(e event) {
	s.events = append(s.events, e)
	s.events.up(len(s.events) - 1)
}

func (s *Simulator) pop() event {
	h := s.events
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop frame/closure references
	s.events = h[:n]
	if n > 0 {
		s.events.down(0)
	}
	return e
}

func (s *Simulator) runEvent(e event) {
	s.now = e.k.at
	s.curOrigin = e.dest
	s.curEvKey = e.k
	if e.sink != nil {
		e.sink.deliverFrame(e.frame, e.port)
	} else {
		e.fn()
	}
	s.localRun++
}

// At schedules fn to run at absolute time t (clamped to now). Called
// from outside any node callback this is external/control context: on
// a partitioned root such events run on the coordinator between
// windows, so fn may safely mutate controller or checker state — but
// it must not send packets or touch node state; schedule through
// AtNode for that.
func (s *Simulator) At(t Time, fn func()) {
	s.push(event{k: evKey{at: t, origin: s.curOrigin}, fn: fn, dest: s.curOrigin})
}

// After schedules fn to run delay from now.
func (s *Simulator) After(delay Time, fn func()) { s.At(s.now+delay, fn) }

// AtNode schedules fn at absolute time t in node n's execution context:
// it runs on n's shard, ordered with n's other events, and anything it
// schedules inherits n's origin. This is the injection path for
// partitioned runs — a root At callback that touched a node would force
// the coordinator to serialize every window around it, while AtNode
// events flow through the shard loops at full lookahead. Only valid on
// the root simulator, from external or control context.
func (s *Simulator) AtNode(n Node, t Time, fn func()) {
	if s.root != nil {
		panic("netsim: AtNode on a shard loop")
	}
	id := s.originOf(n)
	if id == 0 {
		s.At(t, fn)
		return
	}
	e := event{k: evKey{at: t, origin: s.curOrigin}, fn: fn, dest: id}
	if s.par == nil {
		s.push(e)
		return
	}
	if e.k.at < s.now {
		e.k.at = s.now
	}
	e.k.schedAt = s.now
	e.k.seq = s.nextSeq(e.k.origin)
	s.par.children[s.par.shardOf[id]].pushRaw(e)
}

// atFrame schedules a closure-free frame delivery: at time t, the sink
// receives (frame, port). Ownership of frame passes to the sink. dest
// is the stable ID of the receiving node.
func (s *Simulator) atFrame(t Time, sink frameSink, frame []byte, port int, dest int32) {
	s.push(event{k: evKey{at: t, origin: s.curOrigin}, sink: sink, frame: frame, port: port, dest: dest})
}

// sendFrame schedules a link delivery, routing across shards when the
// receiving endpoint lives elsewhere: a worker buffers the keyed event
// in its outbox for the coordinator to drain at the next barrier; the
// coordinator itself (control context, workers parked) inserts
// directly into the destination heap.
func (s *Simulator) sendFrame(t Time, sink *linkSink, frame []byte) {
	e := event{k: evKey{at: t, origin: s.curOrigin}, sink: sink, frame: frame, port: sink.to.port, dest: sink.origin}
	if sink.sim == s {
		s.push(e)
		return
	}
	if e.k.at < s.now {
		e.k.at = s.now
	}
	e.k.schedAt = s.now
	e.k.seq = s.nextSeq(e.k.origin)
	if s.root == nil {
		// Coordinator context: workers are parked between windows.
		sink.sim.pushRaw(e)
		return
	}
	s.outbox[sink.sim.shard] = append(s.outbox[sink.sim.shard], e)
}

// Run processes events until the queue empties or the clock passes
// until; it returns the number of events processed.
func (s *Simulator) Run(until Time) uint64 {
	if s.par != nil {
		return s.runParallel(until, true)
	}
	var n uint64
	for len(s.events) > 0 {
		if s.events[0].k.at > until {
			break
		}
		s.runEvent(s.pop())
		n++
	}
	if s.now < until {
		s.now = until
	}
	s.finish()
	return n
}

// RunAll drains every pending event, bounded by EventCap as a backstop
// against runaway packet loops.
func (s *Simulator) RunAll() uint64 {
	if s.par != nil {
		return s.runParallel(0, false)
	}
	limit := s.EventCap
	if limit == 0 {
		limit = defaultEventCap
	}
	var n uint64
	for len(s.events) > 0 {
		s.runEvent(s.pop())
		n++
		if n > limit {
			panic(fmt.Sprintf("netsim: event cap exceeded at t=%s — forwarding loop?", s.now))
		}
	}
	s.finish()
	return n
}

// finish runs end-of-run canonicalization on the root: external
// context is restored, per-direction link counters fold into the
// public totals, and captures sort into key order. All steps are
// idempotent, so repeated Run calls stay correct.
func (s *Simulator) finish() {
	s.curOrigin = 0
	s.EventsRun = s.localRun
	if s.par != nil {
		for _, c := range s.par.children {
			s.EventsRun += c.localRun
		}
	}
	for _, l := range s.links {
		l.Frames = l.toA.frames + l.toB.frames
		l.Bytes = l.toA.bytes + l.toB.bytes
	}
	for _, c := range s.caps {
		c.finalize()
	}
}

// Pending reports the number of queued events across all shards.
func (s *Simulator) Pending() int {
	n := len(s.events)
	if s.par != nil {
		for _, c := range s.par.children {
			n += len(c.events)
			for _, box := range c.outbox {
				n += len(box)
			}
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Partitioning

// Partition splits the simulator into p parallel shard loops. It must
// be called on the root after the topology is built (nodes registered,
// links connected) and before — or between — runs; pending events
// migrate to their owning shards. p <= 1 is a no-op: the sequential
// loop is the 1-shard fast path.
//
// Switches are striped round-robin over the shards in registration
// order; every other node joins the shard of the first switch it
// shares a link with (shard 0 if none). Links are then the only
// cross-shard edges, and the minimum PropDelay among cross-shard links
// becomes the lookahead window. A cross-shard link with zero
// propagation delay is an error: it would leave no safe window.
func (s *Simulator) Partition(p int) error {
	if s.root != nil {
		return fmt.Errorf("netsim: Partition on a shard loop")
	}
	if s.par != nil {
		return fmt.Errorf("netsim: already partitioned")
	}
	if p <= 1 {
		return nil
	}

	// Shard assignment: switches striped, everything else co-located.
	shardOf := make([]int32, len(s.nodes)+1)
	for i := range shardOf {
		shardOf[i] = -1
	}
	swIdx := 0
	for _, n := range s.nodes {
		if _, ok := n.(*Switch); ok {
			shardOf[s.nodeIDs[n]] = int32(swIdx % p)
			swIdx++
		}
	}
	if swIdx == 0 {
		return fmt.Errorf("netsim: Partition needs at least one switch to stripe")
	}
	for _, l := range s.links {
		ai, bi := s.nodeIDs[l.a.node], s.nodeIDs[l.b.node]
		if shardOf[ai] >= 0 && shardOf[bi] < 0 {
			shardOf[bi] = shardOf[ai]
		}
		if shardOf[bi] >= 0 && shardOf[ai] < 0 {
			shardOf[ai] = shardOf[bi]
		}
	}
	for i := range shardOf {
		if shardOf[i] < 0 {
			shardOf[i] = 0
		}
	}

	// Lookahead: the tightest cross-shard propagation delay.
	lookahead := maxTime
	for _, l := range s.links {
		if shardOf[s.nodeIDs[l.a.node]] == shardOf[s.nodeIDs[l.b.node]] {
			continue
		}
		if l.PropDelay <= 0 {
			return fmt.Errorf("netsim: cross-shard link %s-%s has no propagation delay (zero lookahead)",
				l.a.node.NodeName(), l.b.node.NodeName())
		}
		if l.PropDelay < lookahead {
			lookahead = l.PropDelay
		}
	}

	par := &partition{
		children:  make([]*Simulator, p),
		gates:     make([]gate, p),
		shardOf:   shardOf,
		lookahead: lookahead,
	}
	perShard := make([]int, p)
	for _, id := range shardOf[1:] {
		perShard[id]++
	}
	for i := range par.children {
		c := &Simulator{
			root:   s,
			shard:  i,
			seqs:   s.seqs, // shared backing; entries are shard-owned
			now:    s.now,
			events: make(eventHeap, 0, max(64, 8*perShard[i])),
			frames: make([][]byte, 0, min(framePoolMax, max(16, 4*perShard[i]))),
			outbox: make([][]event, p),
		}
		par.children[i] = c
		par.gates[i] = gate{work: make(chan Time), done: make(chan struct{})}
	}

	// Re-point every shard-aware component at its owning loop.
	for _, n := range s.nodes {
		c := par.children[shardOf[s.nodeIDs[n]]]
		switch v := n.(type) {
		case *Switch:
			v.sim = c
		case *Host:
			v.sim = c
		}
	}
	for _, l := range s.links {
		sa := par.children[shardOf[s.nodeIDs[l.a.node]]]
		sb := par.children[shardOf[s.nodeIDs[l.b.node]]]
		l.simA, l.simB = sa, sb
		l.toA.sim, l.toB.sim = sa, sb
	}

	// Migrate pending node events (scheduled via AtNode or direct
	// Receive calls before Partition) to their shards, keys intact;
	// control events stay on the coordinator.
	if len(s.events) > 0 {
		keep := s.events[:0:cap(s.events)]
		rest := make([]event, 0, len(s.events))
		for _, e := range s.events {
			if e.dest == 0 {
				rest = append(rest, e)
			} else {
				par.children[shardOf[e.dest]].pushRaw(e)
			}
		}
		s.events = keep
		for _, e := range rest {
			s.pushRaw(e)
		}
	}

	s.par = par
	par.nowLow.Store(int64(s.now))
	return nil
}

// stopWindow is the worker-shutdown sentinel.
const stopWindow = Time(math.MinInt64)

// runWindow executes every local event strictly before we.
func (s *Simulator) runWindow(we Time) {
	for len(s.events) > 0 && s.events[0].k.at < we {
		s.runEvent(s.pop())
	}
	// Leave the loop in external context: anything the coordinator
	// routes through this shard between windows keys as control.
	s.curOrigin = 0
}

// runParallel is the coordinator loop (see the package comment).
func (s *Simulator) runParallel(until Time, bounded bool) uint64 {
	par := s.par
	limit := s.EventCap
	if limit == 0 {
		limit = defaultEventCap
	}
	before := s.localRun
	for _, c := range par.children {
		before += c.localRun
	}

	var wg sync.WaitGroup
	for i, c := range par.children {
		wg.Add(1)
		go func(c *Simulator, g *gate) {
			defer wg.Done()
			for we := range g.work {
				if we == stopWindow {
					g.done <- struct{}{}
					return
				}
				c.runWindow(we)
				g.done <- struct{}{}
			}
		}(c, &par.gates[i])
	}
	stop := func() {
		for i := range par.gates {
			par.gates[i].work <- stopWindow
		}
		for i := range par.gates {
			<-par.gates[i].done
		}
		wg.Wait()
	}

	total := before
	for {
		// Drain the outboxes filled in the previous window into the
		// destination heaps. Workers are parked, so the coordinator owns
		// every heap here.
		for _, c := range par.children {
			for dst, box := range c.outbox {
				for j, e := range box {
					par.children[dst].pushRaw(e)
					box[j] = event{}
				}
				c.outbox[dst] = box[:0]
			}
		}

		// Global minimum pending event time.
		low := maxTime
		for _, c := range par.children {
			if len(c.events) > 0 && c.events[0].k.at < low {
				low = c.events[0].k.at
			}
		}
		if len(s.events) > 0 && s.events[0].k.at < low {
			low = s.events[0].k.at
		}
		if low == maxTime || (bounded && low > until) {
			break
		}

		// Advance every clock to the window base so control callbacks
		// (and the sends they make) observe the same now as the
		// sequential loop would.
		s.now = low
		par.nowLow.Store(int64(low))
		for _, c := range par.children {
			if c.now < low {
				c.now = low
			}
		}

		// Control events at low run first — origin 0 sorts ahead of
		// every node event at the same timestamp, exactly as in the
		// sequential order.
		for len(s.events) > 0 && s.events[0].k.at == low {
			s.runEvent(s.pop())
		}

		// The safe window: lookahead ahead of low, but never past the
		// next control event or the bounded horizon.
		we := low + par.lookahead
		if we < low {
			we = maxTime // overflow
		}
		if len(s.events) > 0 && s.events[0].k.at < we {
			we = s.events[0].k.at
		}
		if bounded && until+1 < we {
			we = until + 1
		}

		for i := range par.gates {
			par.gates[i].work <- we
		}
		for i := range par.gates {
			<-par.gates[i].done
		}
		par.barriers++

		total = s.localRun
		for _, c := range par.children {
			total += c.localRun
		}
		if total-before > limit {
			stop()
			panic(fmt.Sprintf("netsim: event cap exceeded at t=%s — forwarding loop?", s.now))
		}
	}
	stop()

	end := s.now
	for _, c := range par.children {
		if c.now > end {
			end = c.now
		}
	}
	if bounded && end < until {
		end = until
	}
	s.now = end
	par.nowLow.Store(int64(end))
	s.finish()
	return total - before
}

// SimStats describes one run of the (possibly partitioned) simulator.
type SimStats struct {
	// Shards is the partition width (1 = sequential loop).
	Shards int
	// Lookahead is the safe window, in simulated time (0 when
	// sequential, maximum when no link crosses shards).
	Lookahead Time
	// Barriers counts coordinator windows executed so far.
	Barriers uint64
	// EventsRun is the total executed event count.
	EventsRun uint64
	// ShardEvents is the per-shard event balance (nil when sequential).
	ShardEvents []uint64
}

// Stats snapshots the execution counters. Call between runs.
func (s *Simulator) Stats() SimStats {
	st := SimStats{Shards: 1, EventsRun: s.EventsRun}
	if s.par == nil {
		return st
	}
	st.Shards = len(s.par.children)
	if s.par.lookahead != maxTime {
		st.Lookahead = s.par.lookahead
	}
	st.Barriers = s.par.barriers
	st.ShardEvents = make([]uint64, len(s.par.children))
	for i, c := range s.par.children {
		st.ShardEvents[i] = c.localRun
	}
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
