// Package netsim is a deterministic discrete-event network simulator:
// hosts, programmable switches, and links with bandwidth, propagation
// delay, and drop-tail queues. It is the testbed substrate for the
// paper's case studies (§5) and performance experiments (§6.2): Mininet
// and the Aether hardware pods are replaced by this simulator, with the
// Hydra checker attached to switches exactly where the compiler's
// linking rules place it (init at first-hop ingress, telemetry at every
// egress, checker at last-hop egress).
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is simulation time in nanoseconds since simulation start.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return t.Duration().String() }

// Seconds returns the time in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for same-timestamp events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulator owns the event loop. It is single-threaded: all node
// callbacks run inside Run, so nodes need no locking of their own.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64

	// Stats.
	EventsRun uint64
}

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// At schedules fn to run at absolute time t (clamped to now).
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run delay from now.
func (s *Simulator) After(delay Time, fn func()) { s.At(s.now+delay, fn) }

// Run processes events until the queue empties or the clock passes
// until; it returns the number of events processed.
func (s *Simulator) Run(until Time) uint64 {
	var n uint64
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		n++
		s.EventsRun++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll drains every pending event (with a safety cap to catch
// runaway packet loops).
func (s *Simulator) RunAll() uint64 {
	const cap = 50_000_000
	var n uint64
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		n++
		s.EventsRun++
		if n > cap {
			panic(fmt.Sprintf("netsim: event cap exceeded at t=%s — forwarding loop?", s.now))
		}
	}
	return n
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
