// Package netsim is a deterministic discrete-event network simulator:
// hosts, programmable switches, and links with bandwidth, propagation
// delay, and drop-tail queues. It is the testbed substrate for the
// paper's case studies (§5) and performance experiments (§6.2): Mininet
// and the Aether hardware pods are replaced by this simulator, with the
// Hydra checker attached to switches exactly where the compiler's
// linking rules place it (init at first-hop ingress, telemetry at every
// egress, checker at last-hop egress).
//
// # Frame ownership
//
// The wire path recycles frame buffers through the simulator's free
// list (AcquireFrame/ReleaseFrame). The contract, enforced by every
// built-in node and expected of custom ones:
//
//   - Link.Send copies the frame: the caller keeps ownership of what it
//     passed in and may reuse it immediately.
//   - Node.Receive transfers ownership of the frame to the receiver.
//     The frame is borrowed storage — a receiver that retains packet
//     data past its callback must copy it (Decoded.Clone), and should
//     hand the buffer back with ReleaseFrame when done. Releasing is
//     optional (an unreleased frame is just garbage-collected), but a
//     released frame must not be referenced again.
package netsim

import (
	"fmt"
	"time"
)

// Time is simulation time in nanoseconds since simulation start.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Duration converts to a time.Duration for printing.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return t.Duration().String() }

// Seconds returns the time in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// frameSink is the closure-free form of a frame-delivery event: the
// wire path schedules (sink, frame, port) triples instead of capturing
// them in a func, so steady-state forwarding allocates nothing per hop.
type frameSink interface {
	deliverFrame(frame []byte, port int)
}

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for same-timestamp events
	fn  func()
	// Frame-delivery form: when sink is non-nil, fn is nil and the
	// event runs sink.deliverFrame(frame, port).
	sink  frameSink
	frame []byte
	port  int
}

// eventHeap is a hand-rolled binary min-heap. container/heap would box
// every event into an interface on Push — one allocation per scheduled
// event — which is exactly what the zero-allocation wire path removes.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Simulator owns the event loop. It is single-threaded: all node
// callbacks run inside Run, so nodes need no locking of their own —
// and the frame free list below needs no synchronization either.
type Simulator struct {
	now    Time
	events eventHeap
	seq    uint64

	// frames is the free list backing AcquireFrame/ReleaseFrame.
	frames [][]byte

	// Stats.
	EventsRun uint64
}

// framePoolMax bounds the free list; frames released beyond it fall to
// the garbage collector.
const framePoolMax = 4096

// frameMinCap is the minimum capacity of a freshly allocated frame
// buffer, so buffers recycle across frame sizes instead of churning.
const frameMinCap = 2048

// NewSimulator returns an empty simulator at time zero.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// AcquireFrame returns a frame buffer of length n, reusing the free
// list when possible. The buffer contents are arbitrary: callers are
// expected to overwrite all n bytes.
func (s *Simulator) AcquireFrame(n int) []byte {
	if k := len(s.frames); k > 0 {
		b := s.frames[k-1]
		s.frames[k-1] = nil
		s.frames = s.frames[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this frame: let it go and allocate fresh.
	}
	c := n
	if c < frameMinCap {
		c = frameMinCap
	}
	return make([]byte, n, c)
}

// ReleaseFrame returns a frame buffer to the free list. The caller must
// not touch the buffer afterwards.
func (s *Simulator) ReleaseFrame(b []byte) {
	if cap(b) == 0 || len(s.frames) >= framePoolMax {
		return
	}
	s.frames = append(s.frames, b[:0])
}

func (s *Simulator) push(e event) {
	if e.at < s.now {
		e.at = s.now
	}
	s.seq++
	e.seq = s.seq
	s.events = append(s.events, e)
	s.events.up(len(s.events) - 1)
}

func (s *Simulator) pop() event {
	h := s.events
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop frame/closure references
	s.events = h[:n]
	if n > 0 {
		s.events.down(0)
	}
	return e
}

func (s *Simulator) runEvent(e event) {
	s.now = e.at
	if e.sink != nil {
		e.sink.deliverFrame(e.frame, e.port)
	} else {
		e.fn()
	}
	s.EventsRun++
}

// At schedules fn to run at absolute time t (clamped to now).
func (s *Simulator) At(t Time, fn func()) {
	s.push(event{at: t, fn: fn})
}

// After schedules fn to run delay from now.
func (s *Simulator) After(delay Time, fn func()) { s.At(s.now+delay, fn) }

// atFrame schedules a closure-free frame delivery: at time t, the sink
// receives (frame, port). Ownership of frame passes to the sink.
func (s *Simulator) atFrame(t Time, sink frameSink, frame []byte, port int) {
	s.push(event{at: t, sink: sink, frame: frame, port: port})
}

// Run processes events until the queue empties or the clock passes
// until; it returns the number of events processed.
func (s *Simulator) Run(until Time) uint64 {
	var n uint64
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		s.runEvent(s.pop())
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunAll drains every pending event (with a safety cap to catch
// runaway packet loops).
func (s *Simulator) RunAll() uint64 {
	const cap = 50_000_000
	var n uint64
	for len(s.events) > 0 {
		s.runEvent(s.pop())
		n++
		if n > cap {
			panic(fmt.Sprintf("netsim: event cap exceeded at t=%s — forwarding loop?", s.now))
		}
	}
	return n
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }
