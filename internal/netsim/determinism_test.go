package netsim

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The cross-shard determinism suite. The partitioned simulator's hard
// contract is that observable behavior — capture transcripts, counters,
// verdicts — is a pure function of the seed and topology, independent
// of the shard count. Two layers of pinning:
//
//  1. testdata/campus_capture.golden holds the transcript produced by
//     the pre-parallelism sequential simulator (generated before the
//     conservative-lookahead engine landed, with
//     NETSIM_GOLDEN_UPDATE=1). Every shard count must still reproduce
//     it byte-for-byte.
//  2. The fat-tree scenario (no golden: the topology generator postdates
//     the sequential-only simulator) is run at P=1 and compared against
//     P=2,4,8 in-process.

const campusCaptureGolden = "testdata/campus_capture.golden"

// campusCaptureScenario builds the 2×2 campus fabric with taps on every
// link, replays a deterministic multi-host traffic mix, and returns the
// full capture transcript plus the counter summary. shards=1 runs the
// sequential fast path.
func campusCaptureScenario(t *testing.T, shards int) string {
	t.Helper()
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true,
	})
	cap := &Capture{}
	for _, row := range ls.Up {
		for _, lk := range row {
			cap.Tap(sim, lk)
		}
	}
	for _, row := range ls.Down {
		for _, lk := range row {
			cap.Tap(sim, lk)
		}
	}

	partitionForTest(t, sim, shards)

	// A deterministic mix: every host talks across the fabric with
	// irregular spacing, varied sizes, and a few pings for the reverse
	// path.
	hosts := []*Host{ls.Host(0, 0), ls.Host(0, 1), ls.Host(1, 0), ls.Host(1, 1)}
	var at Time
	for i := 0; i < 160; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+2)%len(hosts)] // always the opposite leaf
		at += Time(3100 + 977*(i%7))
		i, plen := i, 64+(i%9)*100
		scheduleAtNode(sim, src, at, func() {
			switch i % 3 {
			case 0:
				src.SendUDP(dst.IP, uint16(4000+i), 80, plen)
			case 1:
				src.SendTCP(dst.IP, uint16(5000+i), 443, 0x18, plen)
			default:
				src.Ping(dst.IP, uint16(i))
			}
		})
	}
	sim.RunAll()

	out := cap.String()
	for _, sw := range ls.AllSwitches() {
		out += fmt.Sprintf("switch %s rx=%d tx=%d drop=%d err=%d\n",
			sw.Name, sw.RxFrames, sw.TxFrames, sw.Dropped, sw.ParseErrors)
	}
	for _, h := range hosts {
		out += fmt.Sprintf("host %s rx=%d udp=%d tcp=%d rtts=%d err=%d\n",
			h.Name, h.RxFrames, h.RxUDP, h.RxTCP, len(h.RTTs), h.ParseErrs)
	}
	for li, row := range ls.Up {
		for si, lk := range row {
			out += fmt.Sprintf("up[%d][%d] frames=%d bytes=%d drops=%d/%d\n",
				li, si, lk.Frames, lk.Bytes, lk.DropsAB, lk.DropsBA)
		}
	}
	return out
}

func TestCampusCaptureMatchesSequentialGolden(t *testing.T) {
	got := campusCaptureScenario(t, 1)
	if os.Getenv("NETSIM_GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(campusCaptureGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(campusCaptureGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", campusCaptureGolden, len(got))
		return
	}
	want, err := os.ReadFile(campusCaptureGolden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with NETSIM_GOLDEN_UPDATE=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("campus capture diverged from the sequential-simulator golden\ngot %d bytes, want %d\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestCampusCaptureShardInvariant re-runs the campus scenario at shard
// counts 2/4/8 and holds every transcript to the byte-identical
// sequential golden — the tentpole determinism contract.
func TestCampusCaptureShardInvariant(t *testing.T) {
	want, err := os.ReadFile(campusCaptureGolden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with NETSIM_GOLDEN_UPDATE=1): %v", err)
	}
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := campusCaptureScenario(t, shards)
			if got != string(want) {
				t.Errorf("P=%d capture diverged from the sequential transcript\n%s",
					shards, firstDiff(got, string(want)))
			}
		})
	}
}

// fatTreeScenario drives all-to-all-ish traffic across a generated
// fat-tree and returns a transcript of per-switch/host/link counters
// plus a capture over the pod-0 aggregation uplinks.
func fatTreeScenario(t *testing.T, k, shards int) string {
	t.Helper()
	sim := NewSimulator()
	ft := BuildFatTree(sim, FatTreeConfig{K: k, WithRouting: true})
	cap := &Capture{}
	for _, row := range ft.AggCore[0] {
		for _, lk := range row {
			cap.Tap(sim, lk)
		}
	}
	partitionForTest(t, sim, shards)

	// Cross-pod flows: every (pod, edge) pair sources traffic to a host
	// in a rotated pod, with varied sizes and irregular spacing.
	half := k / 2
	var at Time
	n := 0
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				src := ft.Host(p, e, h)
				dst := ft.Host((p+1+h)%k, (e+1)%half, (h+1)%half)
				at += Time(1700 + 613*(n%11))
				n, plen := n, 64+(n%7)*150
				scheduleAtNode(sim, src, at, func() {
					if n%4 == 3 {
						src.Ping(dst.IP, uint16(n))
					} else {
						src.SendUDP(dst.IP, uint16(7000+n), 80, plen)
					}
				})
				n++
			}
		}
	}
	sim.RunAll()

	out := cap.String()
	for _, sw := range ft.AllSwitches() {
		out += fmt.Sprintf("switch %s rx=%d tx=%d drop=%d err=%d\n",
			sw.Name, sw.RxFrames, sw.TxFrames, sw.Dropped, sw.ParseErrors)
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				hh := ft.Host(p, e, h)
				out += fmt.Sprintf("host %s rx=%d udp=%d rtts=%d err=%d\n",
					hh.Name, hh.RxFrames, hh.RxUDP, len(hh.RTTs), hh.ParseErrs)
			}
		}
	}
	for p, pod := range ft.AggCore {
		for a, row := range pod {
			for j, lk := range row {
				out += fmt.Sprintf("aggcore[%d][%d][%d] frames=%d bytes=%d\n",
					p, a, j, lk.Frames, lk.Bytes)
			}
		}
	}
	return out
}

// TestFatTreeShardInvariant compares a k=8 fat-tree run (80 switches,
// 128 hosts) at shard counts 2/4/8 against the sequential (P=1) run of
// the same build — the large-fabric leg of the determinism suite.
func TestFatTreeShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("k=8 fat-tree campaign")
	}
	const k = 8
	want := fatTreeScenario(t, k, 1)
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if got := fatTreeScenario(t, k, shards); got != want {
				t.Errorf("P=%d fat-tree run diverged from sequential\n%s",
					shards, firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first differing line between two transcripts.
func firstDiff(a, b string) string {
	la, lb := 0, 0
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			start := i - 80
			if start < 0 {
				start = 0
			}
			end := i + 80
			ea, eb := end, end
			if ea > len(a) {
				ea = len(a)
			}
			if eb > len(b) {
				eb = len(b)
			}
			return fmt.Sprintf("first diff at byte %d:\n got: %q\nwant: %q", i, a[start:ea], b[start:eb])
		}
		if a[i] == '\n' {
			la++
			lb++
		}
	}
	return fmt.Sprintf("transcripts are prefix-equal; lengths %d vs %d", len(a), len(b))
}
