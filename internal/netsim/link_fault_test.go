package netsim

import (
	"bytes"
	"testing"
)

// scriptedFault is a deterministic LinkFault stub driving the hook's
// four behaviors one frame at a time.
type scriptedFault struct {
	actions []FaultAction
	// corrupt, when set, XORs the first payload byte in place.
	corrupt bool
	applied int
}

func (f *scriptedFault) Apply(now Time, fromA bool, buf []byte) FaultAction {
	i := f.applied
	f.applied++
	if f.corrupt && len(buf) > 0 {
		buf[0] ^= 0xFF
	}
	if i < len(f.actions) {
		return f.actions[i]
	}
	return FaultAction{}
}

// orderNode records the first payload byte of each frame in arrival
// order.
type orderNode struct {
	sim  *Simulator
	seen []byte
}

func (n *orderNode) NodeName() string { return "order" }
func (n *orderNode) Receive(frame []byte, port int) {
	if len(frame) > 0 {
		n.seen = append(n.seen, frame[0])
	}
	n.sim.ReleaseFrame(frame)
}

// TestLinkFaultActions drives every FaultAction through the wire path:
// drop releases the frame and counts per direction, duplicate delivers
// a second copy after DupDelay, ExtraDelay reorders against later
// traffic, and in-place corruption reaches the receiver.
func TestLinkFaultActions(t *testing.T) {
	sim := NewSimulator()
	a := &orderNode{sim: sim}
	b := &orderNode{sim: sim}
	lk := Connect(sim, a, 0, b, 0, 0, 0)

	frame := func(tag byte) []byte { return []byte{tag, 1, 2, 3} }

	// Frame 1 dropped, frame 2 delayed past frame 3, frame 4 duplicated.
	lk.Fault = &scriptedFault{actions: []FaultAction{
		{Drop: true},
		{ExtraDelay: 10 * Microsecond},
		{},
		{Duplicate: true, DupDelay: 20 * Microsecond},
	}}
	lk.Send(a, frame(1))
	lk.Send(a, frame(2))
	lk.Send(a, frame(3))
	lk.Send(a, frame(4))
	sim.RunAll()

	if lk.FaultDropsAB != 1 || lk.FaultDropsBA != 0 {
		t.Errorf("fault drops = %d/%d, want 1/0", lk.FaultDropsAB, lk.FaultDropsBA)
	}
	// Arrivals: 3 (immediate), 4 (immediate), 2 (delayed 10us), then 4's
	// duplicate at 20us.
	if want := []byte{3, 4, 2, 4}; !bytes.Equal(b.seen, want) {
		t.Errorf("arrival order = %v, want %v", b.seen, want)
	}

	// Corruption happens after the link's copy, in the pooled buffer:
	// the receiver sees the flipped byte, the caller's frame is intact.
	b.seen = nil
	lk.Fault = &scriptedFault{corrupt: true}
	orig := frame(5)
	lk.Send(a, orig)
	sim.RunAll()
	if want := []byte{5 ^ 0xFF}; !bytes.Equal(b.seen, want) {
		t.Errorf("corrupted arrival = %v, want %v", b.seen, want)
	}
	if orig[0] != 5 {
		t.Errorf("fault corrupted the caller's buffer (ownership violation)")
	}

	// The b-side direction counts independently.
	lk.Fault = &scriptedFault{actions: []FaultAction{{Drop: true}}}
	lk.Send(b, frame(6))
	sim.RunAll()
	if lk.FaultDropsBA != 1 {
		t.Errorf("FaultDropsBA = %d, want 1", lk.FaultDropsBA)
	}
	if len(a.seen) != 0 {
		t.Errorf("a received %v after a dropped frame", a.seen)
	}
}

// TestLinkQueueOverflowBidirectional pins the drop-tail accounting the
// fault hook shares a code path with: simultaneous bursts in both
// directions overflow both queues independently, and per direction
// delivered + dropped equals sent.
func TestLinkQueueOverflowBidirectional(t *testing.T) {
	sim := NewSimulator()
	a := &orderNode{sim: sim}
	b := &orderNode{sim: sim}
	// 8 Mbit/s, 1000-byte frames: 1ms serialization each. A 2000-byte
	// queue bound admits a backlog of two frames beyond the one in
	// flight.
	lk := Connect(sim, a, 0, b, 0, 8_000_000, 0)
	lk.QueueBytes = 2000

	const burst = 10
	frame := make([]byte, 1000)
	for i := 0; i < burst; i++ {
		lk.Send(a, frame)
		lk.Send(b, frame)
	}
	sim.RunAll()

	if lk.DropsAB != 7 || lk.DropsBA != 7 {
		t.Errorf("queue drops = %d/%d, want 7/7", lk.DropsAB, lk.DropsBA)
	}
	if got := uint64(len(b.seen)); got+lk.DropsAB != burst {
		t.Errorf("a->b: delivered %d + dropped %d != sent %d", got, lk.DropsAB, burst)
	}
	if got := uint64(len(a.seen)); got+lk.DropsBA != burst {
		t.Errorf("b->a: delivered %d + dropped %d != sent %d", got, lk.DropsBA, burst)
	}
	if lk.Frames != 6 {
		t.Errorf("delivered frames = %d, want 6", lk.Frames)
	}
	if lk.FaultDropsAB != 0 || lk.FaultDropsBA != 0 {
		t.Errorf("fault drops %d/%d on a fault-free link", lk.FaultDropsAB, lk.FaultDropsBA)
	}
}
