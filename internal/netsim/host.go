package netsim

import (
	"math/rand"

	"repro/internal/dataplane"
)

// RTTSample is one completed ping measurement.
type RTTSample struct {
	Seq    uint16
	SentAt Time
	RTT    Time
}

// ReceivedPacket records a packet delivered to a host, for assertions.
type ReceivedPacket struct {
	At  Time
	Pkt *dataplane.Decoded
}

// Host is an end host with a single NIC. It answers ICMP echo requests
// automatically, records everything it receives, and offers UDP/TCP/
// ping senders for the experiment harnesses.
type Host struct {
	Name string
	MAC  dataplane.MAC
	IP   dataplane.IP4

	sim  *Simulator
	link *Link

	// GatewayMAC is the destination MAC for outbound frames (the
	// attached switch port); the fabric routes on IP.
	GatewayMAC dataplane.MAC

	// RTTs collects completed ping samples.
	RTTs []RTTSample
	// Received records delivered packets when RecordAll is set; UDP/TCP
	// counters are always maintained.
	RecordAll bool
	Received  []ReceivedPacket

	RxFrames  uint64
	RxUDP     uint64
	RxTCP     uint64
	RxBytes   uint64
	ParseErrs uint64

	pingSent map[uint16]Time
	// OnPacket, when set, sees every delivered packet.
	OnPacket func(*dataplane.Decoded)

	// nic is the optional Hydra NIC offload (see nic.go).
	nic *HydraNIC

	// rxDec and txBuf are per-host scratch: all of a host's callbacks
	// run on one event loop (the simulator, or its shard after
	// Partition), so one decode target and one serialize buffer
	// suffice.
	rxDec dataplane.Decoded
	txBuf []byte

	// StackBase and StackJitter model end-host networking-stack latency
	// (kernel + NIC): each send and receive is delayed by
	// StackBase + Exp(StackJitter). Zero (the default) disables the
	// model; the Figure 12 harness enables it because host-stack noise,
	// not switch queueing, dominates the paper's 0.1-0.3 ms RTT spread.
	StackBase   Time
	StackJitter Time
	rng         *rand.Rand

	ipID uint16
}

// NewHost creates a host; wire it with netsim.Connect and AttachLink.
func NewHost(sim *Simulator, name string, mac dataplane.MAC, ip dataplane.IP4) *Host {
	seed := int64(0)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	h := &Host{Name: name, MAC: mac, IP: ip, sim: sim, pingSent: map[uint16]Time{}, rng: rand.New(rand.NewSource(seed))}
	sim.registerNode(h)
	return h
}

// ReseedStack reseeds the host's stack-noise generator, so experiment
// harnesses can give each configuration independent noise.
func (h *Host) ReseedStack(seed int64) { h.rng = rand.New(rand.NewSource(seed)) }

// stackDelay draws one end-host processing delay.
func (h *Host) stackDelay() Time {
	if h.StackBase == 0 && h.StackJitter == 0 {
		return 0
	}
	d := h.StackBase
	if h.StackJitter > 0 {
		d += Time(h.rng.ExpFloat64() * float64(h.StackJitter))
	}
	return d
}

// NodeName implements Node.
func (h *Host) NodeName() string { return h.Name }

// AttachLink wires the host's single NIC.
func (h *Host) AttachLink(l *Link) { h.link = l }

// Receive implements Node. The host takes ownership of the frame and
// releases it once the packet is delivered; anything retained
// (Received) is a deep copy.
func (h *Host) Receive(frame []byte, port int) {
	if d := h.stackDelay(); d > 0 {
		h.sim.After(d, func() {
			h.deliver(frame)
			h.sim.ReleaseFrame(frame)
		})
		return
	}
	h.deliver(frame)
	h.sim.ReleaseFrame(frame)
}

func (h *Host) deliver(frame []byte) {
	h.RxFrames++
	pkt := &h.rxDec
	if err := dataplane.ParseInto(pkt, frame); err != nil {
		h.ParseErrs++
		return
	}
	if !h.nicIngress(pkt) {
		return // rejected by the Hydra NIC
	}
	h.RxBytes += uint64(len(frame))
	if h.RecordAll {
		// pkt borrows the pooled frame; retained records get a copy.
		h.Received = append(h.Received, ReceivedPacket{At: h.sim.Now(), Pkt: pkt.Clone()})
	}
	if h.OnPacket != nil {
		// OnPacket borrows pkt for the duration of the callback only.
		h.OnPacket(pkt)
	}

	switch {
	case pkt.HasICMP && pkt.ICMP.Type == dataplane.ICMPEchoRequest:
		h.replyEcho(pkt)
	case pkt.HasICMP && pkt.ICMP.Type == dataplane.ICMPEchoReply:
		if sent, ok := h.pingSent[pkt.ICMP.Seq]; ok {
			h.RTTs = append(h.RTTs, RTTSample{Seq: pkt.ICMP.Seq, SentAt: sent, RTT: h.sim.Now() - sent})
			delete(h.pingSent, pkt.ICMP.Seq)
		}
	case pkt.HasUDP:
		h.RxUDP++
	case pkt.HasTCP:
		h.RxTCP++
	}
}

func (h *Host) send(pkt *dataplane.Decoded) {
	if h.link == nil {
		panic("netsim: host " + h.Name + " has no link")
	}
	h.nicEgress(pkt)
	if d := h.stackDelay(); d > 0 {
		wire := pkt.AppendTo(h.sim.AcquireFrame(pkt.WireLen())[:0])
		h.sim.After(d, func() {
			h.link.Send(h, wire)
			h.sim.ReleaseFrame(wire)
		})
		return
	}
	// Serialize into per-host scratch; Link.Send copies before returning.
	h.txBuf = pkt.AppendTo(h.txBuf[:0])
	h.link.Send(h, h.txBuf)
}

// SendPacket transmits an arbitrary pre-built packet, for substrates
// (like the Aether base station) that craft their own encapsulations.
func (h *Host) SendPacket(pkt *dataplane.Decoded) { h.send(pkt) }

func (h *Host) newIPv4(dst dataplane.IP4, proto uint8) dataplane.IPv4 {
	h.ipID++
	return dataplane.IPv4{
		ID: h.ipID, TTL: 64, Protocol: proto, Src: h.IP, Dst: dst,
	}
}

// SendUDP emits a UDP datagram with a payload of payloadLen zero bytes.
func (h *Host) SendUDP(dst dataplane.IP4, sport, dport uint16, payloadLen int) {
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: h.GatewayMAC, Src: h.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    h.newIPv4(dst, dataplane.ProtoUDP),
		HasUDP:  true,
		UDP:     dataplane.UDP{SrcPort: sport, DstPort: dport},
		Payload: make([]byte, payloadLen),
	}
	h.send(pkt)
}

// SendTCP emits a single TCP segment (no connection state; the substrate
// exercises header paths, not transport semantics).
func (h *Host) SendTCP(dst dataplane.IP4, sport, dport uint16, flags uint8, payloadLen int) {
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: h.GatewayMAC, Src: h.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    h.newIPv4(dst, dataplane.ProtoTCP),
		HasTCP:  true,
		TCP:     dataplane.TCP{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535},
		Payload: make([]byte, payloadLen),
	}
	h.send(pkt)
}

// Ping sends an ICMP echo request; the RTT is recorded when the reply
// arrives.
func (h *Host) Ping(dst dataplane.IP4, seq uint16) {
	h.pingSent[seq] = h.sim.Now()
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: h.GatewayMAC, Src: h.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    h.newIPv4(dst, dataplane.ProtoICMP),
		HasICMP: true,
		ICMP:    dataplane.ICMPEcho{Type: dataplane.ICMPEchoRequest, ID: 1, Seq: seq},
		Payload: make([]byte, 56),
	}
	h.send(pkt)
}

// SendSourceRouted emits a source-routed UDP packet carrying the given
// hop stack (§5.1).
func (h *Host) SendSourceRouted(dst dataplane.IP4, hops []dataplane.SourceRouteHop, payloadLen int) {
	pkt := &dataplane.Decoded{
		Eth:            dataplane.Ethernet{Dst: h.GatewayMAC, Src: h.MAC, Type: dataplane.EtherTypeSourceRoute},
		HasSourceRoute: true,
		SourceRoute:    hops,
		HasIPv4:        true,
		IPv4:           h.newIPv4(dst, dataplane.ProtoUDP),
		HasUDP:         true,
		UDP:            dataplane.UDP{SrcPort: 4000, DstPort: 4000},
		Payload:        make([]byte, payloadLen),
	}
	h.send(pkt)
}

func (h *Host) replyEcho(req *dataplane.Decoded) {
	rep := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: h.GatewayMAC, Src: h.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    h.newIPv4(req.IPv4.Src, dataplane.ProtoICMP),
		HasICMP: true,
		ICMP:    dataplane.ICMPEcho{Type: dataplane.ICMPEchoReply, ID: req.ICMP.ID, Seq: req.ICMP.Seq},
		Payload: req.Payload,
	}
	h.send(rep)
}

// PendingPings reports pings that have not been answered yet.
func (h *Host) PendingPings() int { return len(h.pingSent) }
