package netsim

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

// buildNICFabric builds a leaf-spine where the hosts' NICs own the
// first/last-hop duties and the switches only run telemetry.
func buildNICFabric(t *testing.T, key string) (*Simulator, *LeafSpine, *compiler.Runtime) {
	t.Helper()
	sim := NewSimulator()
	ls := BuildLeafSpine(sim, LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog}
	for _, sw := range ls.AllSwitches() {
		sw.NICOffload = true
		sw.AttachChecker(rt, nil)
	}
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			h.AttachNIC(rt, nil)
		}
	}
	return sim, ls, rt
}

func TestNICOffloadLoopChecker(t *testing.T) {
	sim, ls, _ := buildNICFabric(t, "loop-freedom")
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	h2.RecordAll = true

	// Tap the last link: with NIC offload the telemetry header must
	// still be on the wire right up to the host.
	cap := &Capture{}
	cap.Tap(sim, ls.Down[1][0])

	h1.SendUDP(h2.IP, 777, 80, 64)
	sim.RunAll()

	if h2.RxUDP != 1 {
		t.Fatalf("delivery failed: rx=%d", h2.RxUDP)
	}
	// The sending NIC injected, the receiving NIC checked and stripped.
	if h1.NIC().Injected != 1 {
		t.Fatalf("sender NIC injected = %d", h1.NIC().Injected)
	}
	if h2.NIC().Checked != 1 || h2.NIC().Rejected != 0 {
		t.Fatalf("receiver NIC checked=%d rejected=%d", h2.NIC().Checked, h2.NIC().Rejected)
	}
	// Switches ran telemetry only: no switch checked or stripped.
	for _, sw := range ls.AllSwitches() {
		if sw.Checker().Checked != 0 {
			t.Fatalf("%s ran the checker despite NIC offload", sw.Name)
		}
	}
	// The wire to the host still carried telemetry; the host stack saw none.
	foundHydraOnWire := false
	for _, r := range cap.Records {
		if r.HasHydra {
			foundHydraOnWire = true
		}
	}
	if !foundHydraOnWire {
		t.Fatal("telemetry should remain on the wire up to the NIC")
	}
	for _, r := range h2.Received {
		if r.Pkt.HasHydra {
			t.Fatal("NIC failed to strip telemetry before the host stack")
		}
	}
}

func TestNICOffloadEnforcesWaypointing(t *testing.T) {
	sim, ls, rt := buildNICFabric(t, "waypointing")
	// Configure the waypoint on every switch attachment AND both NICs
	// (the checker's control state lives wherever a block runs).
	install := func(st *pipeline.State) {
		if err := st.Tables["waypoint_id"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(32, 101)}, // spine1
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, sw := range ls.AllSwitches() {
		install(sw.Checker().State)
	}
	for _, hosts := range ls.Hosts {
		for _, h := range hosts {
			install(h.NIC().State)
		}
	}
	_ = rt

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	// One flow per spine (as in the switch-based waypointing test).
	var viaSpine1, viaSpine2 uint16
	for p := uint16(1); viaSpine1 == 0 || viaSpine2 == 0; p++ {
		probe := &dataplane.Decoded{
			HasIPv4: true,
			IPv4:    dataplane.IPv4{Src: h1.IP, Dst: h2.IP, Protocol: dataplane.ProtoUDP},
			HasUDP:  true,
			UDP:     dataplane.UDP{SrcPort: 10000 + p, DstPort: 80},
		}
		if FlowHash(probe)%2 == 0 {
			viaSpine1 = 10000 + p
		} else {
			viaSpine2 = 10000 + p
		}
	}
	h1.SendUDP(h2.IP, viaSpine1, 80, 64)
	h1.SendUDP(h2.IP, viaSpine2, 80, 64)
	sim.RunAll()

	if h2.RxUDP != 1 {
		t.Fatalf("exactly the waypointed flow must be delivered, rx=%d", h2.RxUDP)
	}
	if h2.NIC().Rejected != 1 {
		t.Fatalf("receiver NIC rejected = %d, want 1", h2.NIC().Rejected)
	}
	// No switch dropped it — enforcement moved to the edge of the edge.
	for _, sw := range ls.AllSwitches() {
		if sw.Checker().Rejected != 0 {
			t.Fatalf("%s rejected despite NIC offload", sw.Name)
		}
	}
}
