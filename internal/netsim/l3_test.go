package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataplane"
)

func l3Packet(dst dataplane.IP4) *dataplane.Decoded {
	return &dataplane.Decoded{
		HasIPv4: true,
		IPv4: dataplane.IPv4{
			TTL: 64, Protocol: dataplane.ProtoUDP,
			Src: dataplane.MustIP4("10.9.9.9"), Dst: dst,
		},
		HasUDP: true,
		UDP:    dataplane.UDP{SrcPort: 1234, DstPort: 80},
	}
}

func l3Egress(t *testing.T, p *L3Program, dst dataplane.IP4) int {
	t.Helper()
	var meta PacketMeta
	meta.reset(0)
	eg := p.Process(nil, l3Packet(dst), &meta)
	if len(eg) == 0 {
		return -1
	}
	return eg[0].Port
}

// TestAddRouteReplacesEqual pins the duplicate-shadowing fix: re-adding
// an equal (prefix, bits) entry must replace the port set, not append a
// dead route behind the first match.
func TestAddRouteReplacesEqual(t *testing.T) {
	p := &L3Program{}
	dst := dataplane.MustIP4("10.0.1.1")
	p.AddRoute(dst, 32, 1)
	p.AddRoute(0, 0, 9)
	p.AddRoute(dst, 32, 2)
	if len(p.Routes) != 2 {
		t.Fatalf("re-adding an equal route appended: %d routes, want 2", len(p.Routes))
	}
	if got := l3Egress(t, p, dst); got != 2 {
		t.Errorf("egress after replacement = port %d, want 2 (replacement ignored)", got)
	}
}

func TestRemoveRoute(t *testing.T) {
	p := &L3Program{}
	dst := dataplane.MustIP4("10.0.1.1")
	p.AddRoute(dataplane.MustIP4("10.0.1.0"), 24, 7)
	p.AddRoute(dst, 32, 1)

	if got := l3Egress(t, p, dst); got != 1 {
		t.Fatalf("pre-removal egress = port %d, want 1", got)
	}
	if !p.RemoveRoute(dst, 32) {
		t.Fatal("RemoveRoute reported the installed route absent")
	}
	if got := l3Egress(t, p, dst); got != 7 {
		t.Errorf("post-removal egress = port %d, want 7 (fallback to the covering /24)", got)
	}
	if p.RemoveRoute(dst, 32) {
		t.Error("second RemoveRoute of the same entry reported success")
	}
	if got := len(p.Routes); got != 1 {
		t.Errorf("%d routes after removal, want 1", got)
	}
}

// lpmLinear is the pre-sorting reference: scan every route and keep the
// longest match, first entry winning among equal lengths.
func lpmLinear(routes []Route, dst dataplane.IP4) int {
	best, bestBits := -1, -1
	for i, r := range routes {
		if r.Bits > bestBits && dst.InPrefix(r.Prefix, r.Bits) {
			best, bestBits = i, r.Bits
		}
	}
	return best
}

// TestLPMSortedMatchesLinear inserts fat-tree-style tables in shuffled
// order and checks the sorted early-exit lookup agrees with the full
// linear scan on every egress decision.
func TestLPMSortedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type entry struct {
		prefix dataplane.IP4
		bits   int
		port   int
	}
	var entries []entry
	for h := 0; h < 8; h++ {
		entries = append(entries, entry{dataplane.MustIP4(fmt.Sprintf("10.1.2.%d", h+2)), 32, h + 1})
	}
	for e := 0; e < 4; e++ {
		entries = append(entries, entry{dataplane.MustIP4(fmt.Sprintf("10.1.%d.0", e)), 24, 20 + e})
	}
	for pd := 0; pd < 4; pd++ {
		entries = append(entries, entry{dataplane.MustIP4(fmt.Sprintf("10.%d.0.0", pd)), 16, 30 + pd})
	}
	entries = append(entries, entry{0, 0, 40})

	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
		p := &L3Program{}
		var linear []Route // insertion order, as the old implementation stored it
		for _, e := range entries {
			p.AddRoute(e.prefix, e.bits, e.port)
			linear = append(linear, Route{Prefix: e.prefix, Bits: e.bits, Ports: []int{e.port}})
		}
		for i := 1; i < len(p.Routes); i++ {
			if p.Routes[i-1].Bits < p.Routes[i].Bits {
				t.Fatalf("routes not sorted by descending bits: %d before %d",
					p.Routes[i-1].Bits, p.Routes[i].Bits)
			}
		}
		for probe := 0; probe < 200; probe++ {
			dst := dataplane.IP4(rng.Uint32())
			if probe%2 == 0 { // bias probes into the routed space
				dst = dataplane.IP4(uint32(dataplane.MustIP4("10.0.0.0")) | rng.Uint32()&0x03FFFFFF)
			}
			want := -1
			if i := lpmLinear(linear, dst); i >= 0 {
				want = linear[i].Ports[0]
			}
			if got := l3Egress(t, p, dst); got != want {
				t.Fatalf("trial %d dst %s: sorted lookup -> port %d, linear reference -> port %d",
					trial, dst, got, want)
			}
		}
	}
}

type recordWatcher struct{ events []RouteEvent }

func (w *recordWatcher) RouteChanged(ev RouteEvent) { w.events = append(w.events, ev) }

func TestRouteWatcher(t *testing.T) {
	p := &L3Program{}
	a := dataplane.MustIP4("10.0.1.1")
	p.AddRoute(a, 32, 1)
	p.AddRoute(0, 0, 2, 3)

	w := &recordWatcher{}
	p.Watch(42, w)
	if len(w.events) != 2 {
		t.Fatalf("Watch replayed %d events, want 2 (the existing table)", len(w.events))
	}
	want := RouteEvent{Switch: 42, Op: RouteAdd, Prefix: a, Bits: 32, Ports: []int{1}}
	if !reflect.DeepEqual(w.events[0], want) {
		t.Errorf("replayed event = %+v, want %+v", w.events[0], want)
	}

	p.AddRoute(a, 32, 5) // replacement
	p.RemoveRoute(0, 0)
	if len(w.events) != 4 {
		t.Fatalf("%d events after mutations, want 4", len(w.events))
	}
	if ev := w.events[2]; ev.Op != RouteAdd || len(ev.Ports) != 1 || ev.Ports[0] != 5 {
		t.Errorf("replacement event = %+v, want RouteAdd ports [5]", ev)
	}
	if ev := w.events[3]; ev.Op != RouteRemove || ev.Bits != 0 || ev.Ports != nil {
		t.Errorf("removal event = %+v, want RouteRemove /0 with nil ports", ev)
	}

	// The event's port slice must be a copy: mutating the table's slice
	// afterwards may not reach the watcher's view.
	ports := w.events[2].Ports
	p.AddRoute(a, 32, 9)
	if ports[0] != 5 {
		t.Errorf("event port slice aliased the table: %v", ports)
	}
}

// BenchmarkL3Lookup times the LPM hot path on a fat-tree edge table
// (the largest per-switch table InstallRouting builds: host /32s plus
// the default) for both the sorted early-exit lookup and the linear
// full-scan reference it replaced. The win comes from default-route
// traffic no longer scanning every /32 first.
func BenchmarkL3Lookup(b *testing.B) {
	prog := &L3Program{}
	var linear []Route
	add := func(prefix dataplane.IP4, bits, port int) {
		prog.AddRoute(prefix, bits, port)
		linear = append(linear, Route{Prefix: prefix, Bits: bits, Ports: []int{port}})
	}
	// A k=16 edge switch: 8 local /32s, then the default — plus the pod
	// /24s a k=16 agg would hold, for a realistically mixed table.
	for h := 0; h < 8; h++ {
		add(dataplane.MustIP4(fmt.Sprintf("10.1.2.%d", h+2)), 32, h+1)
	}
	for e := 0; e < 8; e++ {
		add(dataplane.MustIP4(fmt.Sprintf("10.1.%d.0", e)), 24, 20+e)
	}
	add(0, 0, 40)

	pkt := l3Packet(dataplane.MustIP4("10.7.7.7")) // default-route traffic
	var meta PacketMeta

	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pkt.IPv4.TTL = 64
			meta.reset(0)
			if eg := prog.Process(nil, pkt, &meta); len(eg) == 0 {
				b.Fatal("no egress")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pkt.IPv4.TTL = 64
			if i := lpmLinear(linear, pkt.IPv4.Dst); i < 0 {
				b.Fatal("no match")
			}
		}
	})
}
