package netsim

import (
	"fmt"

	"repro/internal/dataplane"
)

// LeafSpine is a built leaf-spine fabric: the topology of Figure 8 (2
// leaves × 2 spines, used for the source-routing case study) and of the
// Aether edge deployment's SDN fabric (Figure 10).
//
// Port conventions: on a leaf, ports 1..S connect to spines 1..S and
// ports S+1..S+H connect hosts; on a spine, port i connects leaf i.
type LeafSpine struct {
	Sim    *Simulator
	Leaves []*Switch
	Spines []*Switch
	// Hosts[l][h] is host h on leaf l.
	Hosts [][]*Host
	// Links for inspection: Up[l][s] is leaf l to spine s; Down[l][h]
	// is leaf l to its h'th host.
	Up   [][]*Link
	Down [][]*Link

	nSpine int
}

// LeafSpineConfig sizes the fabric.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int
	// LinkBps is the line rate of every link (default 10 Gb/s).
	LinkBps int64
	// PropDelay is per-link propagation (default 1 µs).
	PropDelay Time
	// QueueBytes bounds each link queue (default 512 KiB).
	QueueBytes int
	// WithRouting installs L3 ECMP forwarding on all switches; leave
	// false when a custom forwarding program will be attached (e.g.
	// source routing).
	WithRouting bool
}

// HostIP returns the address of host h (0-based) on leaf l (0-based):
// 10.0.<l+1>.<h+1>, matching Figure 8's addressing.
func HostIP(l, h int) dataplane.IP4 {
	return dataplane.MustIP4(fmt.Sprintf("10.0.%d.%d", l+1, h+1))
}

// LeafPrefix returns leaf l's /24.
func LeafPrefix(l int) dataplane.IP4 {
	return dataplane.MustIP4(fmt.Sprintf("10.0.%d.0", l+1))
}

// BuildLeafSpine constructs the fabric.
func BuildLeafSpine(sim *Simulator, cfg LeafSpineConfig) *LeafSpine {
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 10_000_000_000
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = Microsecond
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 512 << 10
	}

	ls := &LeafSpine{Sim: sim, nSpine: cfg.Spines}

	for s := 0; s < cfg.Spines; s++ {
		sw := NewSwitch(sim, uint32(100+s+1), fmt.Sprintf("spine%d", s+1))
		ls.Spines = append(ls.Spines, sw)
	}
	for l := 0; l < cfg.Leaves; l++ {
		sw := NewSwitch(sim, uint32(l+1), fmt.Sprintf("leaf%d", l+1))
		ls.Leaves = append(ls.Leaves, sw)
	}

	// Leaf-spine mesh.
	ls.Up = make([][]*Link, cfg.Leaves)
	for l, leaf := range ls.Leaves {
		ls.Up[l] = make([]*Link, cfg.Spines)
		for s, spine := range ls.Spines {
			lk := Connect(sim, leaf, s+1, spine, l+1, cfg.LinkBps, cfg.PropDelay)
			lk.QueueBytes = cfg.QueueBytes
			leaf.AttachLink(s+1, lk)
			spine.AttachLink(l+1, lk)
			ls.Up[l][s] = lk
		}
	}

	// Hosts.
	ls.Hosts = make([][]*Host, cfg.Leaves)
	ls.Down = make([][]*Link, cfg.Leaves)
	for l, leaf := range ls.Leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			port := cfg.Spines + 1 + h
			mac := dataplane.MACFromUint64(uint64(l+1)<<8 | uint64(h+1))
			host := NewHost(sim, fmt.Sprintf("h%d_%d", l+1, h+1), mac, HostIP(l, h))
			host.GatewayMAC = dataplane.MACFromUint64(uint64(0xF0 + l))
			lk := Connect(sim, leaf, port, host, 0, cfg.LinkBps, cfg.PropDelay)
			lk.QueueBytes = cfg.QueueBytes
			leaf.AttachLink(port, lk)
			host.AttachLink(lk)
			leaf.EdgePorts[port] = true
			ls.Hosts[l] = append(ls.Hosts[l], host)
			ls.Down[l] = append(ls.Down[l], lk)
		}
	}

	if cfg.WithRouting {
		ls.InstallRouting()
	}
	return ls
}

// InstallRouting programs plain L3 ECMP forwarding: leaves route local
// hosts to their ports and remote leaf prefixes across all spines;
// spines route each leaf prefix to that leaf's port.
func (ls *LeafSpine) InstallRouting() {
	spinePorts := make([]int, len(ls.Spines))
	for s := range ls.Spines {
		spinePorts[s] = s + 1
	}
	for l, leaf := range ls.Leaves {
		prog := &L3Program{}
		for h := range ls.Hosts[l] {
			prog.AddRoute(HostIP(l, h), 32, ls.nSpine+1+h)
		}
		for other := range ls.Leaves {
			if other != l {
				prog.AddRoute(LeafPrefix(other), 24, spinePorts...)
			}
		}
		leaf.Forwarding = prog
	}
	for _, spine := range ls.Spines {
		prog := &L3Program{}
		for l := range ls.Leaves {
			prog.AddRoute(LeafPrefix(l), 24, l+1)
		}
		spine.Forwarding = prog
	}
}

// AllSwitches returns leaves then spines.
func (ls *LeafSpine) AllSwitches() []*Switch {
	out := make([]*Switch, 0, len(ls.Leaves)+len(ls.Spines))
	out = append(out, ls.Leaves...)
	out = append(out, ls.Spines...)
	return out
}

// Host returns host h on leaf l (0-based).
func (ls *LeafSpine) Host(l, h int) *Host { return ls.Hosts[l][h] }
