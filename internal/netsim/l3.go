package netsim

import (
	"hash/fnv"

	"repro/internal/dataplane"
)

// Route is one L3 forwarding entry: longest-prefix match on the
// destination, ECMP across Ports.
type Route struct {
	Prefix dataplane.IP4
	Bits   int
	Ports  []int
}

// L3Program is a plain IPv4 router with ECMP, the fabric forwarding the
// Aether deployment uses between leaves and spines ("routing IPv4
// packets over the spine switches using ECMP", §5.2).
type L3Program struct {
	Routes []Route
}

// AddRoute appends a route.
func (p *L3Program) AddRoute(prefix dataplane.IP4, bits int, ports ...int) {
	p.Routes = append(p.Routes, Route{Prefix: prefix, Bits: bits, Ports: ports})
}

// Process implements ForwardingProgram.
func (p *L3Program) Process(sw *Switch, pkt *dataplane.Decoded, meta *PacketMeta) []Egress {
	if !pkt.HasIPv4 {
		return nil
	}
	if pkt.IPv4.TTL <= 1 {
		return nil
	}
	pkt.IPv4.TTL--

	best := -1
	bestBits := -1
	for i, r := range p.Routes {
		if r.Bits > bestBits && pkt.IPv4.Dst.InPrefix(r.Prefix, r.Bits) {
			best, bestBits = i, r.Bits
		}
	}
	if best < 0 {
		return nil
	}
	ports := p.Routes[best].Ports
	if len(ports) == 1 {
		return meta.OneEgress(ports[0])
	}
	// ECMP: hash the flow 5-tuple so a flow sticks to one path.
	return meta.OneEgress(ports[FlowHash(pkt)%uint32(len(ports))])
}

// FlowHash computes a deterministic 5-tuple hash (FNV-1a) used for ECMP
// path selection and flowlet experiments.
func FlowHash(pkt *dataplane.Decoded) uint32 {
	h := fnv.New32a()
	var b [13]byte
	be32 := func(off int, v uint32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	be32(0, uint32(pkt.IPv4.Src))
	be32(4, uint32(pkt.IPv4.Dst))
	b[8] = pkt.IPv4.Protocol
	var sp, dp uint16
	switch {
	case pkt.HasUDP:
		sp, dp = pkt.UDP.SrcPort, pkt.UDP.DstPort
	case pkt.HasTCP:
		sp, dp = pkt.TCP.SrcPort, pkt.TCP.DstPort
	}
	b[9], b[10] = byte(sp>>8), byte(sp)
	b[11], b[12] = byte(dp>>8), byte(dp)
	h.Write(b[:])
	return h.Sum32()
}
