package netsim

import (
	"hash/fnv"
	"sort"

	"repro/internal/dataplane"
)

// Route is one L3 forwarding entry: longest-prefix match on the
// destination, ECMP across Ports.
type Route struct {
	Prefix dataplane.IP4
	Bits   int
	Ports  []int
}

// RouteOp distinguishes route-table mutations for RouteEvent.
type RouteOp uint8

const (
	// RouteAdd is an install or an in-place replacement of an equal
	// (prefix, bits) entry.
	RouteAdd RouteOp = iota
	// RouteRemove deletes an entry.
	RouteRemove
)

// RouteEvent is one route-table mutation on a switch, as seen by a
// RouteWatcher: the control-plane-visible stream of FIB changes that
// static verifiers (internal/atoms) recheck incrementally.
type RouteEvent struct {
	Switch uint32
	Op     RouteOp
	Prefix dataplane.IP4
	Bits   int
	// Ports is the installed ECMP port set (nil for RouteRemove). The
	// slice is a copy: the watcher may retain it.
	Ports []int
}

// RouteWatcher observes route mutations on a watched L3Program.
type RouteWatcher interface {
	RouteChanged(RouteEvent)
}

// L3Program is a plain IPv4 router with ECMP, the fabric forwarding the
// Aether deployment uses between leaves and spines ("routing IPv4
// packets over the spine switches using ECMP", §5.2).
//
// Routes is kept sorted by descending prefix length (stable within one
// length), so Process can stop at the first matching entry: the
// longest-prefix match is always the earliest match. Mutate the table
// through AddRoute/RemoveRoute, which maintain the ordering and notify
// the attached RouteWatcher.
type L3Program struct {
	Routes []Route

	swID    uint32
	watcher RouteWatcher
}

// Watch subscribes w to this program's route mutations, tagging events
// with the given switch ID. Existing routes are replayed as RouteAdd
// events in table order, so a watcher attached after InstallRouting
// still sees the complete FIB.
func (p *L3Program) Watch(switchID uint32, w RouteWatcher) {
	p.swID, p.watcher = switchID, w
	if w == nil {
		return
	}
	for _, r := range p.Routes {
		p.notify(RouteAdd, r.Prefix, r.Bits, r.Ports)
	}
}

func (p *L3Program) notify(op RouteOp, prefix dataplane.IP4, bits int, ports []int) {
	if p.watcher == nil {
		return
	}
	ev := RouteEvent{Switch: p.swID, Op: op, Prefix: prefix, Bits: bits}
	if op == RouteAdd {
		ev.Ports = append([]int(nil), ports...)
	}
	p.watcher.RouteChanged(ev)
}

// AddRoute installs a route. Re-adding an equal (prefix, bits) entry
// replaces its port set in place instead of appending a shadowed
// duplicate (Process matches the first entry of a given length, so an
// appended duplicate would be dead). New entries are inserted in
// descending-prefix-length position.
func (p *L3Program) AddRoute(prefix dataplane.IP4, bits int, ports ...int) {
	for i := range p.Routes {
		if p.Routes[i].Prefix == prefix && p.Routes[i].Bits == bits {
			p.Routes[i].Ports = ports
			p.notify(RouteAdd, prefix, bits, ports)
			return
		}
	}
	// Stable descending insert: after every existing entry of >= length.
	i := sort.Search(len(p.Routes), func(i int) bool { return p.Routes[i].Bits < bits })
	p.Routes = append(p.Routes, Route{})
	copy(p.Routes[i+1:], p.Routes[i:])
	p.Routes[i] = Route{Prefix: prefix, Bits: bits, Ports: ports}
	p.notify(RouteAdd, prefix, bits, ports)
}

// RemoveRoute deletes the (prefix, bits) entry, reporting whether it
// was present. Shorter covering prefixes (if any) take over matching.
func (p *L3Program) RemoveRoute(prefix dataplane.IP4, bits int) bool {
	for i := range p.Routes {
		if p.Routes[i].Prefix == prefix && p.Routes[i].Bits == bits {
			p.Routes = append(p.Routes[:i], p.Routes[i+1:]...)
			p.notify(RouteRemove, prefix, bits, nil)
			return true
		}
	}
	return false
}

// Process implements ForwardingProgram.
func (p *L3Program) Process(sw *Switch, pkt *dataplane.Decoded, meta *PacketMeta) []Egress {
	if !pkt.HasIPv4 {
		return nil
	}
	if pkt.IPv4.TTL <= 1 {
		return nil
	}
	pkt.IPv4.TTL--

	// Routes are sorted by descending prefix length: the first match is
	// the longest-prefix match (equal-length prefixes that both match
	// one address are impossible — their ranges are disjoint).
	for i := range p.Routes {
		r := &p.Routes[i]
		if !pkt.IPv4.Dst.InPrefix(r.Prefix, r.Bits) {
			continue
		}
		ports := r.Ports
		if len(ports) == 0 {
			// Null route: matched traffic is discarded (the BGP-style
			// discard entry routers install for their own aggregates).
			return nil
		}
		if len(ports) == 1 {
			return meta.OneEgress(ports[0])
		}
		// ECMP: hash the flow 5-tuple so a flow sticks to one path.
		return meta.OneEgress(ports[FlowHash(pkt)%uint32(len(ports))])
	}
	return nil
}

// FlowHash computes a deterministic 5-tuple hash (FNV-1a) used for ECMP
// path selection and flowlet experiments.
func FlowHash(pkt *dataplane.Decoded) uint32 {
	h := fnv.New32a()
	var b [13]byte
	be32 := func(off int, v uint32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	be32(0, uint32(pkt.IPv4.Src))
	be32(4, uint32(pkt.IPv4.Dst))
	b[8] = pkt.IPv4.Protocol
	var sp, dp uint16
	switch {
	case pkt.HasUDP:
		sp, dp = pkt.UDP.SrcPort, pkt.UDP.DstPort
	case pkt.HasTCP:
		sp, dp = pkt.TCP.SrcPort, pkt.TCP.DstPort
	}
	b[9], b[10] = byte(sp>>8), byte(sp)
	b[11], b[12] = byte(dp>>8), byte(dp)
	h.Write(b[:])
	return h.Sum32()
}
