package netsim

import (
	"fmt"

	"repro/internal/dataplane"
)

// FatTree is a built k-ary fat-tree (Al-Fahad style): (k/2)² core
// switches, k pods of k/2 aggregation and k/2 edge switches, and k/2
// hosts per edge switch — the standard large-fabric stress topology for
// the parallel simulator (a k=8 tree is 80 switches and 128 hosts).
//
// Port conventions: on an edge switch, ports 1..k/2 connect hosts
// (edge ports) and ports k/2+1..k connect the pod's aggregation
// switches; on an aggregation switch, ports 1..k/2 connect the pod's
// edge switches and ports k/2+1..k connect its core group; core switch
// port p+1 connects pod p.
type FatTree struct {
	Sim *Simulator
	K   int

	// Core[g][j] is core switch j of group g (group g attaches to every
	// pod's g'th aggregation switch). Agg[p][a] and Edge[p][e] are the
	// pod switches; Hosts[p][e][h] is host h on edge e of pod p.
	Core  [][]*Switch
	Agg   [][]*Switch
	Edge  [][]*Switch
	Hosts [][][]*Host

	// Links for inspection and fault attachment: HostLinks mirrors
	// Hosts; EdgeAgg[p][e][a] is edge e to agg a in pod p;
	// AggCore[p][a][j] is agg a of pod p to core j of group a.
	HostLinks [][][]*Link
	EdgeAgg   [][][]*Link
	AggCore   [][][]*Link
}

// FatTreeConfig sizes the fabric.
type FatTreeConfig struct {
	// K is the arity; must be even (default 4).
	K int
	// LinkBps is the line rate of every link (default 10 Gb/s).
	LinkBps int64
	// PropDelay is per-link propagation (default 1 µs).
	PropDelay Time
	// QueueBytes bounds each link queue (default 512 KiB).
	QueueBytes int
	// WithRouting installs two-level LPM + ECMP forwarding on every
	// switch.
	WithRouting bool
}

// FatTreeHostIP returns the address of host h (0-based) on edge switch
// e of pod p: 10.<p>.<e>.<h+2>, the classic fat-tree addressing.
func FatTreeHostIP(p, e, h int) dataplane.IP4 {
	return dataplane.MustIP4(fmt.Sprintf("10.%d.%d.%d", p, e, h+2))
}

// BuildFatTree constructs the fabric. Construction order (cores, then
// per-pod aggs and edges, then hosts) fixes the deterministic node
// registration order and therefore the shard striping.
func BuildFatTree(sim *Simulator, cfg FatTreeConfig) *FatTree {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K%2 != 0 || cfg.K < 2 {
		panic(fmt.Sprintf("netsim: fat-tree arity %d is not even", cfg.K))
	}
	if cfg.LinkBps == 0 {
		cfg.LinkBps = 10_000_000_000
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = Microsecond
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 512 << 10
	}
	k := cfg.K
	half := k / 2

	ft := &FatTree{Sim: sim, K: k}

	for g := 0; g < half; g++ {
		var group []*Switch
		for j := 0; j < half; j++ {
			sw := NewSwitch(sim, uint32(0x4000+g*half+j), fmt.Sprintf("core%d_%d", g, j))
			group = append(group, sw)
		}
		ft.Core = append(ft.Core, group)
	}
	for p := 0; p < k; p++ {
		var aggs, edges []*Switch
		for a := 0; a < half; a++ {
			aggs = append(aggs, NewSwitch(sim, uint32(0x2000+p*half+a), fmt.Sprintf("agg%d_%d", p, a)))
		}
		for e := 0; e < half; e++ {
			edges = append(edges, NewSwitch(sim, uint32(0x1000+p*half+e), fmt.Sprintf("edge%d_%d", p, e)))
		}
		ft.Agg = append(ft.Agg, aggs)
		ft.Edge = append(ft.Edge, edges)
	}

	connect := func(a *Switch, ap int, b *Switch, bp int) *Link {
		lk := Connect(sim, a, ap, b, bp, cfg.LinkBps, cfg.PropDelay)
		lk.QueueBytes = cfg.QueueBytes
		a.AttachLink(ap, lk)
		b.AttachLink(bp, lk)
		return lk
	}

	// Agg <-> core: agg a of every pod connects to core group a.
	ft.AggCore = make([][][]*Link, k)
	for p := 0; p < k; p++ {
		ft.AggCore[p] = make([][]*Link, half)
		for a := 0; a < half; a++ {
			ft.AggCore[p][a] = make([]*Link, half)
			for j := 0; j < half; j++ {
				ft.AggCore[p][a][j] = connect(ft.Agg[p][a], half+1+j, ft.Core[a][j], p+1)
			}
		}
	}

	// Edge <-> agg mesh inside each pod.
	ft.EdgeAgg = make([][][]*Link, k)
	for p := 0; p < k; p++ {
		ft.EdgeAgg[p] = make([][]*Link, half)
		for e := 0; e < half; e++ {
			ft.EdgeAgg[p][e] = make([]*Link, half)
			for a := 0; a < half; a++ {
				ft.EdgeAgg[p][e][a] = connect(ft.Edge[p][e], half+1+a, ft.Agg[p][a], e+1)
			}
		}
	}

	// Hosts.
	ft.Hosts = make([][][]*Host, k)
	ft.HostLinks = make([][][]*Link, k)
	for p := 0; p < k; p++ {
		ft.Hosts[p] = make([][]*Host, half)
		ft.HostLinks[p] = make([][]*Link, half)
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				mac := dataplane.MACFromUint64(uint64(p+1)<<16 | uint64(e+1)<<8 | uint64(h+1))
				host := NewHost(sim, fmt.Sprintf("h%d_%d_%d", p, e, h), mac, FatTreeHostIP(p, e, h))
				host.GatewayMAC = dataplane.MACFromUint64(0xE0_0000 | uint64(p)<<8 | uint64(e))
				lk := Connect(sim, ft.Edge[p][e], h+1, host, 0, cfg.LinkBps, cfg.PropDelay)
				lk.QueueBytes = cfg.QueueBytes
				ft.Edge[p][e].AttachLink(h+1, lk)
				host.AttachLink(lk)
				ft.Edge[p][e].EdgePorts[h+1] = true
				ft.Hosts[p][e] = append(ft.Hosts[p][e], host)
				ft.HostLinks[p][e] = append(ft.HostLinks[p][e], lk)
			}
		}
	}

	if cfg.WithRouting {
		ft.InstallRouting()
	}
	return ft
}

// InstallRouting programs the standard two-level fat-tree forwarding:
// edges route local /32s down and default-ECMP up to the pod aggs;
// aggs route the pod's edge /24s down and default-ECMP up to their
// core group; cores route each pod /16 to that pod's port.
//
// Each switch also installs a null (discard) route for its own
// aggregate — the edge its /24, the agg its pod /16 — the standard
// discard-aggregate practice: without it, traffic for nonexistent
// addresses inside an aggregate bounces between the aggregate's
// down-route and the default up-route until TTL death, a genuine
// forwarding loop the static verifier (internal/atoms) would flag.
func (ft *FatTree) InstallRouting() {
	k := ft.K
	half := k / 2
	upPorts := make([]int, half)
	for i := range upPorts {
		upPorts[i] = half + 1 + i
	}
	def := dataplane.IP4(0)
	for p := 0; p < k; p++ {
		for e, edge := range ft.Edge[p] {
			prog := &L3Program{}
			for h := 0; h < half; h++ {
				prog.AddRoute(FatTreeHostIP(p, e, h), 32, h+1)
			}
			prog.AddRoute(dataplane.MustIP4(fmt.Sprintf("10.%d.%d.0", p, e)), 24) // discard own aggregate
			prog.AddRoute(def, 0, upPorts...)
			edge.Forwarding = prog
		}
		for _, agg := range ft.Agg[p] {
			prog := &L3Program{}
			for e := 0; e < half; e++ {
				prog.AddRoute(dataplane.MustIP4(fmt.Sprintf("10.%d.%d.0", p, e)), 24, e+1)
			}
			prog.AddRoute(dataplane.MustIP4(fmt.Sprintf("10.%d.0.0", p)), 16) // discard own aggregate
			prog.AddRoute(def, 0, upPorts...)
			agg.Forwarding = prog
		}
	}
	for _, group := range ft.Core {
		for _, core := range group {
			prog := &L3Program{}
			for p := 0; p < k; p++ {
				prog.AddRoute(dataplane.MustIP4(fmt.Sprintf("10.%d.0.0", p)), 16, p+1)
			}
			core.Forwarding = prog
		}
	}
}

// AllSwitches returns every switch in registration order: cores, then
// per-pod aggregations and edges.
func (ft *FatTree) AllSwitches() []*Switch {
	var out []*Switch
	for _, g := range ft.Core {
		out = append(out, g...)
	}
	for p := range ft.Agg {
		out = append(out, ft.Agg[p]...)
		out = append(out, ft.Edge[p]...)
	}
	return out
}

// Host returns host h on edge switch e of pod p (0-based).
func (ft *FatTree) Host(p, e, h int) *Host { return ft.Hosts[p][e][h] }
