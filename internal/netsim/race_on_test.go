//go:build race

package netsim

import "testing"

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count tests skip themselves under it because the
// detector's shadow allocations break testing.AllocsPerRun.
const raceEnabled = true

// TestParallelLoopRace drives the partitioned event loop hard under the
// race detector: a k=4 fat-tree at P=4 with cross-pod traffic dense
// enough that every window has several shards executing concurrently,
// exercising the mailbox hand-off, barrier protocol, capture mutex,
// and per-sink counters.
func TestParallelLoopRace(t *testing.T) {
	for round := 0; round < 3; round++ {
		fatTreeScenario(t, 4, 4)
	}
}
