package netsim

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

// Egress is one forwarding decision: send the (possibly rewritten)
// packet out of Port.
type Egress struct {
	Port int
}

// PacketMeta is the per-packet metadata a forwarding program can read
// and set; the Hydra attachment also exposes parts of it as header
// variables (e.g. fabric_metadata.skip_forwarding for the to_be_dropped
// variable of Figure 9).
type PacketMeta struct {
	InPort int
	// Drop set by the forwarding program: the packet is dropped after
	// the egress pipeline (the checker still observes it, as the UPF
	// checker of Figure 9 requires).
	Drop bool
	// Extra carries program-specific header bindings for the checker,
	// keyed by annotation path.
	Extra map[string]pipeline.Value

	// egr backs OneEgress.
	egr [1]Egress
}

// OneEgress returns a single-entry egress slice backed by per-packet
// scratch, letting unicast forwarding programs return their decision
// without a per-hop allocation. The slice is valid until the switch
// finishes processing the packet.
func (m *PacketMeta) OneEgress(port int) []Egress {
	m.egr[0] = Egress{Port: port}
	return m.egr[:1]
}

// reset prepares the meta for a new packet.
func (m *PacketMeta) reset(inPort int) {
	m.InPort = inPort
	m.Drop = false
	m.Extra = nil
}

// ForwardingProgram is the switch's forwarding behavior — the analogue
// of the P4 program Hydra links with, and deliberately independent of
// the checker (§2: "This independence between forwarding and checking
// is key").
type ForwardingProgram interface {
	// Process inspects (and may rewrite) the packet and returns egress
	// decisions; returning nil drops the packet. The packet and meta are
	// borrowed from the switch: they must not be retained past the call.
	Process(sw *Switch, pkt *dataplane.Decoded, meta *PacketMeta) []Egress
}

// HydraAttachment links a compiled checker to a switch.
type HydraAttachment struct {
	Runtime *compiler.Runtime
	// State is this switch's tables and registers for the checker
	// program; the control plane installs entries into it.
	State *pipeline.State
	// OnReport receives report digests raised at this switch.
	OnReport func(sw *Switch, rep pipeline.Report)
	// Rejected counts packets dropped by the checker at this switch.
	Rejected uint64
	// Checked counts packets that ran the checker block here.
	Checked uint64

	// plan is the precompiled header bind plan (built lazily for
	// attachments constructed without AttachChecker).
	plan *bindPlan
}

func (at *HydraAttachment) bindPlan() *bindPlan {
	if at.plan == nil {
		at.plan = newBindPlan(at.Runtime, false)
	}
	return at.plan
}

// wireShape is a snapshot of everything that determines a packet's
// serialized layout: the layer validity flags and the lengths of the
// variable-size pieces. If the shape at egress equals the shape at
// parse, every byte offset in the frame is unchanged — telemetry and
// field rewrites can be serialized in place over the received frame.
type wireShape struct {
	hasHydra, hasVLAN, hasSourceRoute      bool
	hasIPv4, hasUDP, hasTCP, hasICMP       bool
	hasGTPU                                bool
	hasInnerIPv4, hasInnerUDP, hasInnerTCP bool
	hasInnerICMP                           bool
	blobLen, srHops, payloadLen            int
}

func shapeOf(pkt *dataplane.Decoded) wireShape {
	return wireShape{
		hasHydra:       pkt.HasHydra,
		hasVLAN:        pkt.HasVLAN,
		hasSourceRoute: pkt.HasSourceRoute,
		hasIPv4:        pkt.HasIPv4,
		hasUDP:         pkt.HasUDP,
		hasTCP:         pkt.HasTCP,
		hasICMP:        pkt.HasICMP,
		hasGTPU:        pkt.HasGTPU,
		hasInnerIPv4:   pkt.HasInnerIPv4,
		hasInnerUDP:    pkt.HasInnerUDP,
		hasInnerTCP:    pkt.HasInnerTCP,
		hasInnerICMP:   pkt.HasInnerICMP,
		blobLen:        len(pkt.Hydra.Blob),
		srHops:         len(pkt.SourceRoute),
		payloadLen:     len(pkt.Payload),
	}
}

// Switch is a programmable switch: a forwarding program, an optional
// Hydra checker, ports wired to links, and a fixed pipeline latency.
type Switch struct {
	ID   uint32
	Name string

	sim   *Simulator
	links map[int]*Link
	// EdgePorts marks host-facing ports: Hydra injects telemetry when a
	// packet enters on an edge port and strips + checks when it leaves
	// through one (§4.1).
	EdgePorts map[int]bool

	Forwarding ForwardingProgram
	// Checkers are the attached Hydra programs; several can be linked to
	// one switch (the §6.2 "all checkers" configuration), each with its
	// own fixed-size slice of the telemetry blob.
	Checkers []*HydraAttachment

	// NICOffload marks a fabric whose first/last-hop duties live on the
	// end hosts' NICs (the §4.1 future-work extension): the switch never
	// injects, strips, or checks — it only runs telemetry blocks.
	NICOffload bool

	// PipelineLatency models the fixed ingress+egress pipeline delay of
	// a hardware switch. It is constant by construction — a Tofino
	// pipeline takes the same time regardless of program — which is why
	// the paper finds no latency difference with checkers on (§6.2).
	PipelineLatency Time

	// Counters.
	RxFrames, TxFrames, Dropped uint64
	// ParseErrors counts undecodable frames.
	ParseErrors uint64
	// FastTxFrames counts frames sent via the in-place rewrite fast
	// path; SlowTxFrames counts full re-serializations (inject, strip,
	// encap/decap, source-route edits, multicast clones).
	FastTxFrames, SlowTxFrames uint64

	// origin is the stable simulator-assigned node ID: the switch's
	// deterministic event-ordering key and shard routing address.
	origin int32

	// Per-packet scratch. All of a switch's callbacks run on one event
	// loop (its shard, after Partition) and frame processing never
	// nests (Link.Send defers delivery through the event queue), so one
	// of each suffices per switch.
	dec       dataplane.Decoded
	meta      PacketMeta
	parts     [][]byte
	txBuf     []byte
	injectBuf []byte
}

// NewSwitch creates a switch with the given identifier.
func NewSwitch(sim *Simulator, id uint32, name string) *Switch {
	sw := &Switch{
		ID:              id,
		Name:            name,
		sim:             sim,
		links:           map[int]*Link{},
		EdgePorts:       map[int]bool{},
		PipelineLatency: 500 * Nanosecond,
	}
	sw.origin = sim.registerNode(sw)
	return sw
}

// NodeName implements Node.
func (sw *Switch) NodeName() string { return sw.Name }

// AttachLink wires a link to a port.
func (sw *Switch) AttachLink(port int, l *Link) {
	if _, dup := sw.links[port]; dup {
		panic(fmt.Sprintf("netsim: %s port %d wired twice", sw.Name, port))
	}
	sw.links[port] = l
}

// Link returns the link on a port, or nil.
func (sw *Switch) Link(port int) *Link { return sw.links[port] }

// Ports returns the switch's wired ports in ascending order — the
// deterministic iteration companion to Link for topology discovery.
func (sw *Switch) Ports() []int {
	out := make([]int, 0, len(sw.links))
	for p := range sw.links {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Sim returns the simulator the switch runs in.
func (sw *Switch) Sim() *Simulator { return sw.sim }

// Receive implements Node: a frame arrived on `port`. The switch takes
// ownership of the frame and releases it after the pipeline runs.
func (sw *Switch) Receive(frame []byte, port int) {
	sw.RxFrames++
	sw.sim.atFrame(sw.sim.now+sw.PipelineLatency, (*switchPipe)(sw), frame, port, sw.origin)
}

// switchPipe is the frame sink running the switch pipeline; a separate
// type so Switch.Receive (link-side entry) and pipeline entry (after
// PipelineLatency) both exist without an extra object.
type switchPipe Switch

func (p *switchPipe) deliverFrame(frame []byte, port int) {
	(*Switch)(p).process(frame, port)
}

func (sw *Switch) process(frame []byte, inPort int) {
	defer sw.sim.ReleaseFrame(frame)
	pkt := &sw.dec
	if err := dataplane.ParseInto(pkt, frame); err != nil {
		sw.ParseErrors++
		return
	}
	meta := &sw.meta
	meta.reset(inPort)
	// Shape snapshot for the egress fast path: taken before forwarding
	// so any layer the program adds/removes forces re-serialization.
	shape := shapeOf(pkt)

	// --- Hydra first-hop injection + init blocks. §4.2: "the init block
	// must be placed at the beginning of the ingress pipeline on
	// first-hop switches" — it therefore observes the packet before the
	// forwarding tables rewrite it (e.g. before the UPF decapsulates a
	// GTP tunnel, which the Figure 9 checker's init block relies on).
	firstHop := false
	if len(sw.Checkers) > 0 && !sw.NICOffload && !pkt.HasHydra && sw.EdgePorts[inPort] {
		sw.inject(pkt, meta, inPort)
		firstHop = true
	}

	// --- Forwarding (independent of checking).
	var egresses []Egress
	if sw.Forwarding != nil {
		egresses = sw.Forwarding.Process(sw, pkt, meta)
	}
	if len(egresses) == 0 && !meta.Drop {
		sw.Dropped++
		return
	}

	// --- Egress pipeline per output port: telemetry at every hop,
	// checker + strip at the last hop (edge egress port).
	for _, eg := range egresses {
		out, f := pkt, frame
		if len(egresses) > 1 {
			// Multicast: each copy carries independent telemetry, so it
			// gets its own storage (and no in-place frame).
			out, f = pkt.Clone(), nil
		}
		sw.egress(out, f, shape, meta, inPort, eg.Port, firstHop)
	}
	if meta.Drop && len(sw.Checkers) > 0 && len(egresses) == 0 {
		// The forwarding program dropped the packet outright with no
		// egress decision: the checker still observes it at this hop so
		// properties like Figure 9's can fire (modelled as an egress to
		// a drop port).
		sw.egress(pkt, nil, shape, meta, inPort, -1, firstHop)
	}
}

// inject runs first-hop injection: an empty Hydra header is inserted
// and every checker's init block encodes its telemetry slot directly
// into the switch's reused inject buffer.
func (sw *Switch) inject(pkt *dataplane.Decoded, meta *PacketMeta, inPort int) {
	pkt.InsertHydra(nil)
	pktLen := uint32(pkt.WireLen())
	total := sw.totalBlobSize()
	if cap(sw.injectBuf) < total {
		sw.injectBuf = make([]byte, total)
	}
	blob := sw.injectBuf[:total]
	off := 0
	for _, at := range sw.Checkers {
		n := blobSize(at)
		slot := blob[off : off+n : off+n]
		off += n
		env := compiler.HopEnv{
			State:       at.State,
			SwitchID:    sw.ID,
			SlotHeaders: at.bindPlan().bind(pkt, meta, inPort, -1),
			PacketLen:   pktLen,
			ReuseBlob:   true,
			// Reports are delivered to OnReport below, before the next
			// RunBlocks — the event loop is single-threaded, so the
			// zero-alloc arena path is safe.
			EphemeralReports: true,
		}
		// slot[:0] as the incoming blob: DecodeTele zero-fills on an
		// empty blob, and ReuseBlob encodes back into the slot.
		hr, err := at.Runtime.RunBlocks(slot[:0], env, compiler.BlockSet{Init: true}, true, false)
		if err != nil {
			sw.ParseErrors++
			zeroFill(slot)
			continue
		}
		if !sameStorage(hr.Blob, slot) {
			copy(slot, hr.Blob) // map-path executor returned fresh storage
		}
		for _, rep := range hr.Reports {
			if at.OnReport != nil {
				at.OnReport(sw, rep)
			}
		}
	}
	pkt.Hydra.Blob = blob
}

// egress runs the per-hop egress pipeline for one output port. frame,
// when non-nil, is the received frame backing pkt's blob and payload;
// if the wire shape is unchanged the rewritten packet is serialized in
// place over it and sent without allocating.
func (sw *Switch) egress(pkt *dataplane.Decoded, frame []byte, shape wireShape, meta *PacketMeta, inPort, outPort int, firstHop bool) {
	// A packet leaving through a host-facing port — or being dropped by
	// the forwarding program — is at its last hop: the checker must run
	// now or never (the Figure 9 property explicitly inspects packets
	// the data plane decided to drop).
	lastHop := (outPort >= 0 && sw.EdgePorts[outPort]) || meta.Drop
	if sw.NICOffload {
		// The receiving NIC is the last hop; the switch only remains
		// responsible for packets it drops itself (they never reach a
		// NIC, so the violation must surface here or never).
		lastHop = meta.Drop
	}

	if len(sw.Checkers) > 0 && pkt.HasHydra {
		pktLen := uint32(pkt.WireLen())
		parts, inPlace := sw.splitBlob(pkt.Hydra.Blob)
		rejected := false
		for i, at := range sw.Checkers {
			check := lastHop || at.Runtime.CheckEveryHop
			env := compiler.HopEnv{
				State:       at.State,
				SwitchID:    sw.ID,
				SlotHeaders: at.bindPlan().bind(pkt, meta, inPort, outPort),
				PacketLen:   pktLen,
				// The split slots are disjoint capped subslices of the
				// blob, so each checker may encode into its own slot.
				ReuseBlob: inPlace,
				// Reports are consumed synchronously below.
				EphemeralReports: true,
			}
			hr, err := at.Runtime.RunBlocks(parts[i], env, compiler.BlockSet{
				Telemetry: true,
				Checker:   check,
			}, firstHop, lastHop)
			if err != nil {
				// A checker execution error must never take down
				// forwarding; count it and forward unchecked.
				sw.ParseErrors++
				if inPlace {
					zeroFill(parts[i])
				} else if parts[i] == nil {
					parts[i] = make([]byte, blobSize(at))
				}
				continue
			}
			if inPlace {
				if !sameStorage(hr.Blob, parts[i]) {
					copy(parts[i], hr.Blob) // map-path executor: copy back
				}
			} else {
				parts[i] = hr.Blob
			}
			for _, rep := range hr.Reports {
				if at.OnReport != nil {
					at.OnReport(sw, rep)
				}
			}
			if check {
				at.Checked++
			}
			if hr.Reject {
				at.Rejected++
				rejected = true
			}
		}
		if !inPlace {
			pkt.Hydra.Blob = joinBlobs(parts)
		}
		if rejected {
			return // a checker halts the packet (reject, §2)
		}
		if lastHop {
			pkt.StripHydra()
		}
	}

	if meta.Drop || outPort < 0 {
		sw.Dropped++
		return
	}
	link := sw.links[outPort]
	if link == nil {
		sw.Dropped++
		return
	}
	sw.TxFrames++
	// Fast path: same wire shape as at parse means every offset is
	// unchanged — rewrite the received frame in place (header field and
	// telemetry updates land at their old offsets; blob and payload
	// copies are identity memmoves). Inject, strip, encap/decap, and
	// source-route edits all change the shape and take the slow path.
	if frame != nil && pkt.WireLen() == len(frame) && shapeOf(pkt) == shape {
		sw.FastTxFrames++
		link.Send(sw, pkt.AppendTo(frame[:0]))
		return
	}
	sw.SlowTxFrames++
	sw.txBuf = pkt.AppendTo(sw.txBuf[:0])
	link.Send(sw, sw.txBuf)
}

// bindHeaders builds the checker's header-variable environment from the
// packet and metadata, using the standard annotation paths plus any
// program-specific extras.
//
// It survives as the map-based reference used by tests; the hot path
// binds through each attachment's bindPlan instead.
func (sw *Switch) bindHeaders(pkt *dataplane.Decoded, meta *PacketMeta, inPort, outPort int) map[string]pipeline.Value {
	h := BindPacketHeaders(pkt, map[string]pipeline.Value{
		"standard_metadata.ingress_port":  pipeline.B(8, uint64(inPort)),
		"standard_metadata.egress_port":   pipeline.B(8, uint64(maxInt(outPort, 0))),
		"fabric_metadata.skip_forwarding": pipeline.BoolV(meta.Drop),
	})
	for k, v := range meta.Extra {
		h[k] = v
	}
	return h
}

// BindPacketHeaders builds the packet-derived header bindings shared by
// switches and Hydra NICs; extra entries (may be nil) are merged in.
func BindPacketHeaders(pkt *dataplane.Decoded, extra map[string]pipeline.Value) map[string]pipeline.Value {
	h := map[string]pipeline.Value{}
	for k, v := range extra {
		h[k] = v
	}
	if pkt.HasVLAN {
		h["hdr.vlan_tag.vlan_id"] = pipeline.B(16, uint64(pkt.VLAN.VID))
	}
	if pkt.HasIPv4 {
		h["hdr.ipv4.$valid$"] = pipeline.BoolV(true)
		h["hdr.ipv4.src_addr"] = pipeline.B(32, uint64(pkt.IPv4.Src))
		h["hdr.ipv4.dst_addr"] = pipeline.B(32, uint64(pkt.IPv4.Dst))
		h["hdr.ipv4.protocol"] = pipeline.B(8, uint64(pkt.IPv4.Protocol))
	} else {
		h["hdr.ipv4.$valid$"] = pipeline.BoolV(false)
	}
	h["hdr.tcp.$valid$"] = pipeline.BoolV(pkt.HasTCP)
	if pkt.HasTCP {
		h["hdr.tcp.sport"] = pipeline.B(16, uint64(pkt.TCP.SrcPort))
		h["hdr.tcp.dport"] = pipeline.B(16, uint64(pkt.TCP.DstPort))
	}
	h["hdr.udp.$valid$"] = pipeline.BoolV(pkt.HasUDP && !pkt.HasGTPU)
	if pkt.HasUDP {
		h["hdr.udp.sport"] = pipeline.B(16, uint64(pkt.UDP.SrcPort))
		h["hdr.udp.dport"] = pipeline.B(16, uint64(pkt.UDP.DstPort))
	}
	h["hdr.inner_ipv4.$valid$"] = pipeline.BoolV(pkt.HasInnerIPv4)
	if pkt.HasInnerIPv4 {
		h["hdr.inner_ipv4.src_addr"] = pipeline.B(32, uint64(pkt.InnerIPv4.Src))
		h["hdr.inner_ipv4.dst_addr"] = pipeline.B(32, uint64(pkt.InnerIPv4.Dst))
		h["hdr.inner_ipv4.protocol"] = pipeline.B(8, uint64(pkt.InnerIPv4.Protocol))
	}
	h["hdr.inner_tcp.$valid$"] = pipeline.BoolV(pkt.HasInnerTCP)
	if pkt.HasInnerTCP {
		h["hdr.inner_tcp.dport"] = pipeline.B(16, uint64(pkt.InnerTCP.DstPort))
	}
	h["hdr.inner_udp.$valid$"] = pipeline.BoolV(pkt.HasInnerUDP)
	if pkt.HasInnerUDP {
		h["hdr.inner_udp.dport"] = pipeline.B(16, uint64(pkt.InnerUDP.DstPort))
	}
	h["hdr.srcRoutes[0].$valid$"] = pipeline.BoolV(pkt.HasSourceRoute && len(pkt.SourceRoute) > 0)
	if pkt.HasSourceRoute && len(pkt.SourceRoute) > 0 {
		h["hdr.srcRoutes[0].switch_id"] = pipeline.B(32, uint64(pkt.SourceRoute[0].SwitchID))
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AttachChecker wires an already-compiled runtime plus fresh per-switch
// state to the switch and returns the attachment for control-plane use.
// Multiple checkers may be attached; their telemetry shares the Hydra
// header, each in a statically-sized slot.
func (sw *Switch) AttachChecker(rt *compiler.Runtime, onReport func(*Switch, pipeline.Report)) *HydraAttachment {
	at := &HydraAttachment{Runtime: rt, State: rt.Prog.NewState(), OnReport: onReport, plan: newBindPlan(rt, false)}
	sw.Checkers = append(sw.Checkers, at)
	sw.parts = nil // checker set changed: rebuild split scratch
	return at
}

// Checker returns the first attached checker, or nil.
func (sw *Switch) Checker() *HydraAttachment {
	if len(sw.Checkers) == 0 {
		return nil
	}
	return sw.Checkers[0]
}

// blobSize returns the fixed wire size of one checker's telemetry slot.
func blobSize(at *HydraAttachment) int {
	return (at.Runtime.Prog.TeleWireBits() + 7) / 8
}

// totalBlobSize is the wire size of the shared telemetry blob.
func (sw *Switch) totalBlobSize() int {
	total := 0
	for _, at := range sw.Checkers {
		total += blobSize(at)
	}
	return total
}

// splitBlob slices the shared telemetry blob into per-checker slots,
// reusing the switch's scratch slice. When the blob length matches the
// attached checkers exactly, the slots are disjoint capped subslices of
// the blob and inPlace is true: checkers may encode telemetry back into
// them without reassembly. Otherwise (fresh empty blob, or a malformed
// length) the slots are detached and the caller must joinBlobs.
func (sw *Switch) splitBlob(blob []byte) (parts [][]byte, inPlace bool) {
	if cap(sw.parts) < len(sw.Checkers) {
		sw.parts = make([][]byte, len(sw.Checkers))
	}
	parts = sw.parts[:len(sw.Checkers)]
	if len(blob) == sw.totalBlobSize() && len(blob) > 0 {
		off := 0
		for i, at := range sw.Checkers {
			n := blobSize(at)
			parts[i] = blob[off : off+n : off+n]
			off += n
		}
		return parts, true
	}
	for i := range parts {
		parts[i] = nil
	}
	if len(blob) == 0 {
		return parts, false
	}
	off := 0
	for i, at := range sw.Checkers {
		n := blobSize(at)
		if off+n > len(blob) {
			// Malformed: reset every slot so DecodeTele zero-fills.
			for j := range parts {
				parts[j] = nil
			}
			return parts, false
		}
		parts[i] = blob[off : off+n]
		off += n
	}
	return parts, false
}

func joinBlobs(parts [][]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// sameStorage reports whether two equal-length slices share a backing
// array (first byte at the same address).
func sameStorage(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func zeroFill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
