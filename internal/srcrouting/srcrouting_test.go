package srcrouting

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// attachValleyFree compiles the Figure 7 checker, attaches it to every
// switch, and installs the is_spine_switch control variable.
func attachValleyFree(t *testing.T, f *Figure8) {
	t.Helper()
	info := checkers.MustParse("valley-free")
	prog, err := compiler.Compile(info, compiler.Options{Name: "valley-free"})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog}
	for _, sw := range f.Switches() {
		att := sw.AttachChecker(rt, nil)
		spine := uint64(0)
		if f.IsSpine(sw) {
			spine = 1
		}
		if err := att.State.Tables["is_spine_switch"].Insert(pipeline.Entry{
			Action: []pipeline.Value{pipeline.B(1, spine)},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// attachPathValidation attaches the Table 1 source-routing checker.
func attachPathValidation(t *testing.T, f *Figure8) {
	t.Helper()
	info := checkers.MustParse("source-routing")
	prog, err := compiler.Compile(info, compiler.Options{Name: "source-routing"})
	if err != nil {
		t.Fatal(err)
	}
	rt := &compiler.Runtime{Prog: prog}
	for _, sw := range f.Switches() {
		sw.AttachChecker(rt, nil)
	}
}

func TestForwardingFollowsRoute(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)

	route, err := f.Route([]*netsim.Switch{f.S1, f.S3, f.S2}, f.H3)
	if err != nil {
		t.Fatal(err)
	}
	f.H1.SendSourceRouted(f.H3.IP, route, 64)
	sim.RunAll()
	if f.H3.RxUDP != 1 {
		t.Fatalf("h3 rx = %d", f.H3.RxUDP)
	}
	// Path went through s3, not s4.
	if f.S3.RxFrames == 0 || f.S4.RxFrames != 0 {
		t.Fatalf("path: s3=%d s4=%d", f.S3.RxFrames, f.S4.RxFrames)
	}
}

func TestSameLeafRoute(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)
	route, err := f.Route([]*netsim.Switch{f.S1}, f.H2)
	if err != nil {
		t.Fatal(err)
	}
	f.H1.SendSourceRouted(f.H2.IP, route, 64)
	sim.RunAll()
	if f.H2.RxUDP != 1 {
		t.Fatalf("h2 rx = %d", f.H2.RxUDP)
	}
}

// TestAllValleyFreePathsDelivered reproduces the positive half of the
// §5.1 experiment: "Hydra allowed all possible valley free paths
// between hosts".
func TestAllValleyFreePathsDelivered(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)
	attachValleyFree(t, f)

	hosts := f.Hosts()
	var sent int
	want := map[*netsim.Host]uint64{}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			for _, path := range f.ValleyFreePaths(src, dst) {
				route, err := f.Route(path, dst)
				if err != nil {
					t.Fatal(err)
				}
				src.SendSourceRouted(dst.IP, route, 64)
				want[dst]++
				sent++
			}
		}
	}
	sim.RunAll()

	if sent == 0 {
		t.Fatal("no paths enumerated")
	}
	for _, h := range hosts {
		if h.RxUDP != want[h] {
			t.Errorf("%s received %d/%d valley-free packets", h.Name, h.RxUDP, want[h])
		}
	}
	for _, sw := range f.Switches() {
		if sw.Checker().Rejected != 0 {
			t.Errorf("%s rejected %d legal packets", sw.Name, sw.Checker().Rejected)
		}
	}
}

// TestBuggySenderDropped reproduces the negative half: packets whose
// source routes include "extra invalid hops" (a valley) are dropped by
// the checker, at the edge, before reaching the destination host.
func TestBuggySenderDropped(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)
	attachValleyFree(t, f)

	var sent int
	for _, src := range f.Hosts() {
		for _, dst := range f.Hosts() {
			if src == dst || f.Leaf(src) == f.Leaf(dst) {
				continue
			}
			for _, path := range f.ValleyPaths(src, dst) {
				route, err := f.Route(path, dst)
				if err != nil {
					t.Fatal(err)
				}
				src.SendSourceRouted(dst.IP, route, 64)
				sent++
			}
		}
	}
	sim.RunAll()

	if sent != 16 { // 8 cross-leaf ordered pairs × 2 valley paths
		t.Fatalf("sent = %d, want 16", sent)
	}
	for _, h := range f.Hosts() {
		if h.RxUDP != 0 {
			t.Errorf("%s received %d errant packets (checker failed)", h.Name, h.RxUDP)
		}
	}
	rejected := uint64(0)
	for _, sw := range f.Switches() {
		rejected += sw.Checker().Rejected
	}
	if rejected != uint64(sent) {
		t.Errorf("rejected %d/%d errant packets", rejected, sent)
	}
	// Rejection happens at the last hop, which is a leaf.
	if f.S3.Checker().Rejected+f.S4.Checker().Rejected != 0 {
		t.Error("spines must not reject in last-hop checking mode")
	}
}

// TestBuggySenderWithoutCheckerIsDelivered shows why runtime
// verification is needed at all: forwarding alone happily follows the
// errant route.
func TestBuggySenderWithoutCheckerIsDelivered(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)

	route, err := f.BuggySender(f.H1, f.H3)
	if err != nil {
		t.Fatal(err)
	}
	f.H1.SendSourceRouted(f.H3.IP, route, 64)
	sim.RunAll()
	if f.H3.RxUDP != 1 {
		t.Fatal("without Hydra the valley path is silently followed")
	}
	// Both spines were traversed: the valley really happened.
	if f.S3.RxFrames == 0 || f.S4.RxFrames == 0 {
		t.Fatal("valley path did not traverse both spines")
	}
}

// TestPathValidationChecker exercises the Table 1 source-routing
// property on the same substrate: a forwarding fault (not a sender bug)
// diverts the packet, and the checker catches the divergence between
// the route's switch IDs and the switches actually traversed.
func TestPathValidationChecker(t *testing.T) {
	sim := netsim.NewSimulator()
	f := Build(sim)
	attachPathValidation(t, f)

	// Clean route: delivered.
	route, err := f.Route([]*netsim.Switch{f.S1, f.S3, f.S2}, f.H3)
	if err != nil {
		t.Fatal(err)
	}
	f.H1.SendSourceRouted(f.H3.IP, route, 64)
	sim.RunAll()
	if f.H3.RxUDP != 1 {
		t.Fatalf("clean route: rx=%d", f.H3.RxUDP)
	}

	// Faulty route: the sender *intends* s1→s3→s2 but a corrupted entry
	// sends the packet via s4; the stack still claims s3 should have
	// been visited, so the checker rejects at the edge.
	route2, err := f.Route([]*netsim.Switch{f.S1, f.S3, f.S2}, f.H3)
	if err != nil {
		t.Fatal(err)
	}
	route2[0].Port = 2 // corrupt: forward to s4 instead of s3
	f.H1.SendSourceRouted(f.H3.IP, route2, 64)
	sim.RunAll()
	if f.H3.RxUDP != 1 {
		t.Fatalf("diverted packet must be dropped, rx=%d", f.H3.RxUDP)
	}
	if f.S2.Checker().Rejected != 1 {
		t.Fatalf("edge leaf rejected = %d, want 1", f.S2.Checker().Rejected)
	}
}
