// Package srcrouting implements the §5.1 case study: a source-routing
// forwarding program (generalizing the P4 tutorial's), the Figure 8
// leaf-spine topology, a path computer for valley-free routes, and the
// deliberately buggy sender whose packets Hydra must drop.
package srcrouting

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// Program forwards packets by popping the source-route stack: each entry
// names the egress port at the switch expected to process it. Packets
// without a source route are dropped (the case-study network runs pure
// source routing).
type Program struct{}

// Process implements netsim.ForwardingProgram. The consumed stack entry
// is exposed to the checker through bridged metadata (the egress-side
// telemetry block runs after the pop, so it could not otherwise observe
// which entry this switch acted on).
func (Program) Process(_ *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	if !pkt.HasSourceRoute || len(pkt.SourceRoute) == 0 {
		return nil
	}
	hop := pkt.SourceRoute[0]
	pkt.SourceRoute = pkt.SourceRoute[1:]
	if len(pkt.SourceRoute) == 0 {
		pkt.HasSourceRoute = false
	}
	if meta.Extra == nil {
		meta.Extra = map[string]pipeline.Value{}
	}
	meta.Extra["hdr.srcRoutes[0].$valid$"] = pipeline.BoolV(true)
	meta.Extra["hdr.srcRoutes[0].switch_id"] = pipeline.B(32, uint64(hop.SwitchID))
	return meta.OneEgress(int(hop.Port))
}

// Figure8 is the topology of Figure 8: leaves s1, s2 and spines s3, s4,
// with hosts h1 (10.0.1.1), h2 (10.0.2.2) on s1 and h3 (10.0.3.3), h4
// (10.0.4.4) on s2.
//
// Port map: on each leaf, port 1 → s3, port 2 → s4, ports 3 and 4 → its
// two hosts. On each spine, port 1 → s1, port 2 → s2.
type Figure8 struct {
	Sim *netsim.Simulator

	S1, S2, S3, S4 *netsim.Switch
	H1, H2, H3, H4 *netsim.Host

	// portTo[a][b] is the port on switch a that leads to switch b.
	portTo map[*netsim.Switch]map[*netsim.Switch]int
	// hostPort[h] is the (leaf, port) a host hangs off.
	hostLeaf map[*netsim.Host]*netsim.Switch
	hostPort map[*netsim.Host]int
}

// Build constructs the Figure 8 network with the source-routing program
// on every switch.
func Build(sim *netsim.Simulator) *Figure8 {
	f := &Figure8{
		Sim:      sim,
		portTo:   map[*netsim.Switch]map[*netsim.Switch]int{},
		hostLeaf: map[*netsim.Host]*netsim.Switch{},
		hostPort: map[*netsim.Host]int{},
	}
	mkSwitch := func(id uint32, name string) *netsim.Switch {
		sw := netsim.NewSwitch(sim, id, name)
		sw.Forwarding = Program{}
		f.portTo[sw] = map[*netsim.Switch]int{}
		return sw
	}
	f.S1 = mkSwitch(1, "s1")
	f.S2 = mkSwitch(2, "s2")
	f.S3 = mkSwitch(3, "s3")
	f.S4 = mkSwitch(4, "s4")

	const bps = 10_000_000_000
	wire := func(a *netsim.Switch, ap int, b *netsim.Switch, bp int) {
		lk := netsim.Connect(sim, a, ap, b, bp, bps, netsim.Microsecond)
		a.AttachLink(ap, lk)
		b.AttachLink(bp, lk)
		f.portTo[a][b] = ap
		f.portTo[b][a] = bp
	}
	wire(f.S1, 1, f.S3, 1)
	wire(f.S1, 2, f.S4, 1)
	wire(f.S2, 1, f.S3, 2)
	wire(f.S2, 2, f.S4, 2)

	mkHost := func(name, ip string, leaf *netsim.Switch, port int, mac uint64) *netsim.Host {
		h := netsim.NewHost(sim, name, dataplane.MACFromUint64(mac), dataplane.MustIP4(ip))
		lk := netsim.Connect(sim, leaf, port, h, 0, bps, netsim.Microsecond)
		leaf.AttachLink(port, lk)
		h.AttachLink(lk)
		leaf.EdgePorts[port] = true
		f.hostLeaf[h] = leaf
		f.hostPort[h] = port
		return h
	}
	f.H1 = mkHost("h1", "10.0.1.1", f.S1, 3, 0x11)
	f.H2 = mkHost("h2", "10.0.2.2", f.S1, 4, 0x12)
	f.H3 = mkHost("h3", "10.0.3.3", f.S2, 3, 0x21)
	f.H4 = mkHost("h4", "10.0.4.4", f.S2, 4, 0x22)
	return f
}

// Switches returns all four switches.
func (f *Figure8) Switches() []*netsim.Switch {
	return []*netsim.Switch{f.S1, f.S2, f.S3, f.S4}
}

// Hosts returns all four hosts.
func (f *Figure8) Hosts() []*netsim.Host {
	return []*netsim.Host{f.H1, f.H2, f.H3, f.H4}
}

// IsSpine reports whether sw is a spine switch.
func (f *Figure8) IsSpine(sw *netsim.Switch) bool { return sw == f.S3 || sw == f.S4 }

// Leaf returns the leaf a host attaches to.
func (f *Figure8) Leaf(h *netsim.Host) *netsim.Switch { return f.hostLeaf[h] }

// Route builds the source-route stack for a switch path ending at dst's
// leaf: one entry per switch giving the egress port toward the next
// element, with the final entry pointing at the host port. Every entry
// carries the ID of the switch expected to process it, which the Hydra
// path-validation checker verifies.
func (f *Figure8) Route(path []*netsim.Switch, dst *netsim.Host) ([]dataplane.SourceRouteHop, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("srcrouting: empty path")
	}
	if path[len(path)-1] != f.hostLeaf[dst] {
		return nil, fmt.Errorf("srcrouting: path does not end at %s's leaf", dst.Name)
	}
	hops := make([]dataplane.SourceRouteHop, len(path))
	for i, sw := range path {
		var port int
		if i == len(path)-1 {
			port = f.hostPort[dst]
		} else {
			p, ok := f.portTo[sw][path[i+1]]
			if !ok {
				return nil, fmt.Errorf("srcrouting: no link %s -> %s", sw.Name, path[i+1].Name)
			}
			port = p
		}
		hops[i] = dataplane.SourceRouteHop{Port: uint16(port), SwitchID: sw.ID, BOS: i == len(path)-1}
	}
	return hops, nil
}

// ValleyFreePaths enumerates every valley-free switch path from src to
// dst: the direct leaf for same-leaf pairs, and leaf→spine→leaf for
// cross-leaf pairs (one path per spine).
func (f *Figure8) ValleyFreePaths(src, dst *netsim.Host) [][]*netsim.Switch {
	sl, dl := f.hostLeaf[src], f.hostLeaf[dst]
	if sl == dl {
		return [][]*netsim.Switch{{sl}}
	}
	return [][]*netsim.Switch{
		{sl, f.S3, dl},
		{sl, f.S4, dl},
	}
}

// ValleyPaths enumerates paths that violate valley-freeness (they visit
// two spines, going up after coming down); these are the routes the §5.1
// buggy sender emits.
func (f *Figure8) ValleyPaths(src, dst *netsim.Host) [][]*netsim.Switch {
	sl, dl := f.hostLeaf[src], f.hostLeaf[dst]
	other := func(l *netsim.Switch) *netsim.Switch {
		if l == f.S1 {
			return f.S2
		}
		return f.S1
	}
	return [][]*netsim.Switch{
		{sl, f.S3, other(dl), f.S4, dl},
		{sl, f.S4, other(dl), f.S3, dl},
	}
}

// BuggySender mimics the §5.1 fault injection: given a correct
// valley-free route it appends "extra invalid hops", turning the path
// into a valley. The resulting stack is still well-formed — only the
// path is illegal — so forwarding happily follows it and only runtime
// verification can catch it.
func (f *Figure8) BuggySender(src, dst *netsim.Host) ([]dataplane.SourceRouteHop, error) {
	paths := f.ValleyPaths(src, dst)
	return f.Route(paths[0], dst)
}
