package experiments

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/resources"
)

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Table 1 has %d rows, want 11", len(rows))
	}
	ratios := 0.0
	for _, r := range rows {
		// The conciseness claim: generated P4 is always larger than the
		// Indus source (the paper's own app-filtering row is only ~2x,
		// so the per-row bound is loose and the average is checked below).
		if r.P4LoC < r.IndusLoC*3/2 {
			t.Errorf("%s: P4 %d vs Indus %d — conciseness ratio too small", r.Key, r.P4LoC, r.IndusLoC)
		}
		ratios += float64(r.P4LoC) / float64(r.IndusLoC)
		// Stage result: checkers do not grow the baseline's 12 stages.
		if r.Stages != resources.BaselineStages {
			t.Errorf("%s: stages %d, want %d", r.Key, r.Stages, resources.BaselineStages)
		}
		// PHV is above baseline and bounded.
		if r.PHVPct <= resources.BaselinePHVPct || r.PHVPct > resources.BaselinePHVPct+12 {
			t.Errorf("%s: PHV %.2f%% out of band", r.Key, r.PHVPct)
		}
	}
	if avg := ratios / float64(len(rows)); avg < 4 {
		t.Errorf("average P4/Indus ratio %.1f, want the order-of-magnitude shape (>= 4)", avg)
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Multi-Tenancy", "Application filtering", "Baseline", "44.53"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestFig12NoSignificantDifference(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r, err := RunFig12(Fig12Config{
		Duration:      1 * netsim.Second,
		PingInterval:  4 * netsim.Millisecond,
		BackgroundBps: 400_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline.RTT) < 100 || len(r.Checkers.RTT) < 100 {
		t.Fatalf("too few samples: %d / %d", len(r.Baseline.RTT), len(r.Checkers.RTT))
	}
	// The paper's result: no statistically significant latency
	// difference between baseline and all checkers.
	if r.TTest.Significant(0.01) {
		t.Fatalf("unexpected significant RTT difference: %v", r.TTest)
	}
	// Sanity: RTTs are sub-millisecond on this fabric (Figure 12 shows
	// 0.1–0.3 ms).
	for _, v := range r.Baseline.RTT {
		if v <= 0 || v > 5 {
			t.Fatalf("implausible baseline RTT %v ms", v)
		}
	}
	if !strings.Contains(FormatFig12b(r), "welch t-test") {
		t.Error("formatting lost the t-test")
	}
	if !strings.Contains(FormatFig12a(r), "time_s") {
		t.Error("formatting lost the series header")
	}
}

func TestThroughputParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	base, chk, err := RunThroughput(ThroughputConfig{Packets: 20_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: throughput with and without Hydra is almost identical.
	if base.DeliveredRatio < 0.99 {
		t.Fatalf("baseline delivered only %.1f%%", base.DeliveredRatio*100)
	}
	if chk.DeliveredRatio < 0.99 {
		t.Fatalf("all-checkers delivered only %.1f%%", chk.DeliveredRatio*100)
	}
	rel := chk.DeliveredPps / base.DeliveredPps
	if rel < 0.98 || rel > 1.02 {
		t.Fatalf("delivered rate diverged: baseline %.0f pps vs checkers %.0f pps", base.DeliveredPps, chk.DeliveredPps)
	}
	if base.OfferedPps < 300_000 || base.OfferedPps > 400_000 {
		t.Fatalf("offered load %.0f pps, want ≈350K", base.OfferedPps)
	}
}

func TestAttachAllConfiguresEveryChecker(t *testing.T) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true})
	atts, err := AttachAllCheckers(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(atts) != 12 {
		t.Fatalf("attached %d checkers, want 12", len(atts))
	}
	for key, list := range atts {
		if len(list) != 4 {
			t.Errorf("%s attached to %d switches, want 4", key, len(list))
		}
	}
	// With benign config, a ping and a UDP flow must pass unharmed.
	if err := AllowFlows(atts, [][2]uint32{{uint32(ls.Host(0, 0).IP), uint32(ls.Host(1, 0).IP)}}); err != nil {
		t.Fatal(err)
	}
	ls.Host(0, 0).Ping(ls.Host(1, 0).IP, 1)
	ls.Host(0, 0).SendUDP(ls.Host(1, 0).IP, 999, 80, 100)
	sim.RunAll()
	if len(ls.Host(0, 0).RTTs) != 1 {
		rej := map[string]uint64{}
		for key, list := range atts {
			for _, a := range list {
				rej[key] += a.Rejected
			}
		}
		t.Fatalf("ping lost under all-checkers config; rejections: %v", rej)
	}
	if ls.Host(1, 0).RxUDP != 1 {
		t.Fatal("udp flow lost under all-checkers config")
	}
}

func TestWireReplayBenign(t *testing.T) {
	res, err := RunWireReplay(WireReplayConfig{Packets: 2_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredRatio != 1 {
		t.Fatalf("benign wire replay delivered %.1f%%, want 100%%", res.DeliveredRatio*100)
	}
	if res.Rejected != 0 || res.ParseErrors != 0 {
		t.Fatalf("benign wire replay: rejected=%d errors=%d", res.Rejected, res.ParseErrors)
	}
	// Every packet crosses two spines-worth of telemetry-only hops; the
	// in-place fast path must dominate mid-fabric transmissions.
	if res.FastTxFrames == 0 {
		t.Fatal("wire replay never used the in-place fast path")
	}
	if res.Checked == 0 {
		t.Fatal("no checker verdicts recorded")
	}
}
