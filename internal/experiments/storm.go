package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checkers"
	"repro/internal/controlplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
	"repro/internal/trafficgen"
)

// StormCheckerSrc is the storm probe: an Indus checker whose only job
// is to raise a digest at every hop of every packet when armed. The
// armed scalar is the experiment's switch — baseline (armed=0) and
// storm (armed=1) run the identical program, so the throughput delta
// isolates the report path: digest construction, bus publish, windowed
// aggregation, and storm control.
const StormCheckerSrc = `
control bit<8> armed;
header bit<32> ipv4_src @ "hdr.ipv4.src_addr";
header bit<32> ipv4_dst @ "hdr.ipv4.dst_addr";

{ }
{
  if (armed == 1) {
    report((ipv4_src, ipv4_dst));
  }
}
{ }
`

// StormConfig parameterizes the report-storm replay.
type StormConfig struct {
	// Packets per pass (default 30,000).
	Packets int
	Seed    int64
	// Window is the bus aggregation window in virtual nanoseconds
	// (default 1ms of simulated time).
	Window time.Duration
	// Rate is the per-checker storm budget in aggregate emissions per
	// virtual second (default 1000); Burst is the token-bucket depth
	// (default 8).
	Rate  float64
	Burst int
	// MaxKeys caps the collector's live aggregate table (default 512 —
	// deliberately far below the campus flow count, so the storm pass
	// exercises the overflow buckets and the memory ceiling).
	MaxKeys int
	// Repeats runs each pass this many times and keeps the fastest
	// (default 3) — the usual wall-clock discipline: the first pass
	// pays cache and allocator warmup for the whole process.
	Repeats int
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Packets == 0 {
		c.Packets = 30_000
	}
	if c.Window <= 0 {
		c.Window = time.Duration(netsim.Millisecond)
	}
	if c.Rate == 0 {
		c.Rate = 1000
	}
	if c.Burst == 0 {
		c.Burst = 8
	}
	if c.MaxKeys == 0 {
		c.MaxKeys = 512
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// StormPass is one replay pass (baseline or storm) with its bus
// accounting.
type StormPass struct {
	WallPktsPerSec float64
	Delivered      uint64
	// Raised is every digest published into the bus; ExportedDigests
	// sums the counts of the aggregates the exporters received. With
	// inline producers nothing can drop, so after the final flush the
	// two must be exactly equal — the conservation check.
	Raised            uint64
	Dropped           uint64
	ExportedDigests   uint64
	EmittedAggregates uint64
	Suppressed        uint64
	OverflowDigests   uint64
	// MaxLiveAggregates is the collector's memory ceiling in records —
	// bounded by MaxKeys plus the per-(checker, switch) overflow
	// buckets, regardless of how many digests the storm raises.
	MaxLiveAggregates int
	Unaccounted       int64
}

// StormResult pairs the two passes.
type StormResult struct {
	Config   StormConfig
	Baseline StormPass
	Storm    StormPass
	// PPSRatio is storm throughput over baseline throughput — the cost
	// of a worst-case report storm on the wire path.
	PPSRatio float64
}

// RunStorm measures report-storm behavior end to end: the campus trace
// replayed through the leaf-spine fabric with every corpus checker
// deployed through the control plane onto a shared report bus, plus the
// storm probe. The baseline pass keeps the probe disarmed; the storm
// pass arms it, so every packet raises a digest at every hop at full
// replay rate. Reported: sustained pps for both passes, and the bus's
// drop/suppression/overflow accounting for the storm.
func RunStorm(cfg StormConfig) (StormResult, error) {
	cfg = cfg.withDefaults()
	// Passes alternate (base, storm, base, storm, ...) and each side
	// keeps its fastest run, so warmup and scheduler noise hit both
	// sides evenly. The bus accounting is virtual-time deterministic —
	// identical on every repeat — so keeping the fastest loses nothing.
	var base, storm StormPass
	for i := 0; i < cfg.Repeats; i++ {
		b, err := runStormPass(cfg, false)
		if err != nil {
			return StormResult{}, fmt.Errorf("experiments: storm baseline pass: %w", err)
		}
		if i == 0 || b.WallPktsPerSec > base.WallPktsPerSec {
			base = b
		}
		s, err := runStormPass(cfg, true)
		if err != nil {
			return StormResult{}, fmt.Errorf("experiments: storm pass: %w", err)
		}
		if i == 0 || s.WallPktsPerSec > storm.WallPktsPerSec {
			storm = s
		}
	}
	res := StormResult{Config: cfg, Baseline: base, Storm: storm}
	if base.WallPktsPerSec > 0 {
		res.PPSRatio = storm.WallPktsPerSec / base.WallPktsPerSec
	}
	return res, nil
}

func runStormPass(cfg StormConfig, armed bool) (StormPass, error) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		LinkBps: 100_000_000_000,
	})
	replayHost, sink := ls.Host(0, 0), ls.Host(1, 0)
	for l, leaf := range ls.Leaves {
		p := &netsim.L3Program{}
		if l == 0 {
			p.AddRoute(0, 0, 1, 2)
		} else {
			p.AddRoute(0, 0, 3)
		}
		leaf.Forwarding = p
	}
	for _, spine := range ls.Spines {
		p := &netsim.L3Program{}
		p.AddRoute(0, 0, 2)
		spine.Forwarding = p
	}

	// The bus runs on virtual time: windows close and token buckets
	// refill as the simulation advances, so the pass is deterministic
	// for a given seed.
	collect := &reportbus.CollectExporter{}
	bus := reportbus.New(reportbus.Config{
		Window:    cfg.Window,
		Clock:     func() int64 { return int64(sim.Now()) },
		Rate:      cfg.Rate,
		Burst:     cfg.Burst,
		MaxKeys:   cfg.MaxKeys,
		Exporters: []reportbus.Exporter{collect},
	})
	// Retention off: the experiment measures the bus pipeline, and its
	// lossless record is the aggregate stream — keeping a per-checker
	// sample of 90k identical storm digests would only add a per-digest
	// allocation to the measured path.
	ctl := controlplane.NewControllerWith(controlplane.Config{Bus: bus, RetainPerChecker: -1})

	all := ls.AllSwitches()
	for _, p := range checkers.All {
		info, err := p.Parse()
		if err != nil {
			return StormPass{}, err
		}
		if err := ctl.Deploy(p.Key, info, all...); err != nil {
			return StormPass{}, err
		}
	}
	probe := checkers.Property{Key: "storm-probe", Source: StormCheckerSrc}
	info, err := probe.Parse()
	if err != nil {
		return StormPass{}, err
	}
	if err := ctl.Deploy(probe.Key, info, all...); err != nil {
		return StormPass{}, err
	}

	sws := make([]SwitchInfo, len(all))
	for i, sw := range all {
		sws[i] = SwitchInfo{ID: sw.ID, IsLeaf: i < len(ls.Leaves)}
	}
	err = ConfigureBenign(sws, func(checker string, swIdx int, fn func(*pipeline.State) error) error {
		att, err := ctl.Attachment(checker, sws[swIdx].ID)
		if err != nil {
			return err
		}
		return fn(att.State)
	})
	if err != nil {
		return StormPass{}, err
	}

	var armedVal uint64
	if armed {
		armedVal = 1
	}
	if err := ctl.SetScalar(probe.Key, 0, "armed", armedVal); err != nil {
		return StormPass{}, err
	}

	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: cfg.Seed})
	pkts := make([]trafficgen.Packet, cfg.Packets)
	seen := map[[2]uint32]bool{}
	var pairs [][2]uint32
	for i := range pkts {
		pkts[i] = gen.Next()
		key := [2]uint32{uint32(pkts[i].Src), uint32(pkts[i].Dst)}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}
	seed := FirewallSeed(pairs)
	for _, sw := range all {
		att, err := ctl.Attachment("stateful-firewall", sw.ID)
		if err != nil {
			return StormPass{}, err
		}
		if err := seed(att.State); err != nil {
			return StormPass{}, err
		}
	}

	var at netsim.Time
	for i := range pkts {
		p := pkts[i]
		at += p.Gap
		sim.At(at, func() { replayHost.SendPacket(p.Decode()) })
	}

	start := time.Now()
	sim.RunAll()
	wall := time.Since(start)
	if wall <= 0 {
		return StormPass{}, fmt.Errorf("empty replay")
	}
	ctl.Close() // final flush: every live aggregate reaches the exporter

	m := bus.Metrics()
	pass := StormPass{
		WallPktsPerSec:    float64(cfg.Packets) / wall.Seconds(),
		Delivered:         sink.RxUDP + sink.RxTCP,
		Raised:            m.Published,
		Dropped:           m.Dropped,
		MaxLiveAggregates: m.MaxLiveAggregates,
		Unaccounted:       m.Unaccounted(),
	}
	for _, cm := range m.Checkers {
		pass.EmittedAggregates += cm.EmittedAggregates
		pass.Suppressed += cm.Suppressed
		pass.OverflowDigests += cm.OverflowDigests
	}
	for _, c := range collect.CountsByKey() {
		pass.ExportedDigests += c
	}
	return pass, nil
}

// FormatStorm renders the storm replay result.
func FormatStorm(r StormResult) string {
	var b strings.Builder
	b.WriteString("Storm: campus replay with an always-violating probe on the report bus\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %10s %10s %9s %9s\n",
		"pass", "pps", "raised", "exported", "aggs", "suppressed", "overflow", "max_live")
	row := func(name string, p StormPass) {
		fmt.Fprintf(&b, "%-10s %12.0f %10d %10d %10d %10d %9d %9d\n",
			name, p.WallPktsPerSec, p.Raised, p.ExportedDigests,
			p.EmittedAggregates, p.Suppressed, p.OverflowDigests, p.MaxLiveAggregates)
	}
	row("baseline", r.Baseline)
	row("storm", r.Storm)
	fmt.Fprintf(&b, "storm/baseline pps ratio: %.3f; storm digests unaccounted: %d\n",
		r.PPSRatio, r.Storm.Unaccounted)
	return b.String()
}
