package experiments

import (
	"fmt"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// SwitchInfo describes one switch of a fabric for control-plane
// configuration: its identifier and whether it is a leaf (ToR) switch.
type SwitchInfo struct {
	ID     uint32
	IsLeaf bool
}

// ConfigureBenign installs the benign §6.2 "all checkers" control state
// through the install callback, so the same configuration can target
// netsim switch attachments and engine shard replicas alike:
// install(checker, swIdx, fn) must apply fn to every replica of that
// checker's state on switch sws[swIdx]. The state makes legal traffic
// never reject: tenants and VLANs are uniform, all egress ports are
// allowed, the waypoint is the first leaf (every host pair's path
// crosses it in a 2-leaf fabric), the load-balance threshold is
// effectively infinite, and the stateful firewall is seeded separately
// via FirewallSeed / AllowFlows.
func ConfigureBenign(sws []SwitchInfo, install func(checker string, swIdx int, fn func(*pipeline.State) error) error) error {
	scalar := func(key string, sw int, name string, w int, v uint64) error {
		return install(key, sw, func(st *pipeline.State) error {
			return st.Tables[name].Insert(pipeline.Entry{
				Action: []pipeline.Value{pipeline.B(w, v)},
			})
		})
	}
	dict := func(key string, sw int, name string, k []uint64, w int, v uint64) error {
		return install(key, sw, func(st *pipeline.State) error {
			keys := make([]pipeline.KeyMatch, len(k))
			for i, kv := range k {
				keys[i] = pipeline.ExactKey(kv)
			}
			return st.Tables[name].Insert(pipeline.Entry{
				Keys:   keys,
				Action: []pipeline.Value{pipeline.B(w, v)},
			})
		})
	}
	set := func(key string, sw int, name string, k uint64) error {
		return install(key, sw, func(st *pipeline.State) error {
			return st.Tables[name].Insert(pipeline.Entry{
				Keys: []pipeline.KeyMatch{pipeline.ExactKey(k)},
			})
		})
	}

	var leafIDs []uint32
	for _, sw := range sws {
		if sw.IsLeaf {
			leafIDs = append(leafIDs, sw.ID)
		}
	}
	if len(leafIDs) == 0 {
		return fmt.Errorf("experiments: benign config needs at least one leaf switch")
	}

	for i, sw := range sws {
		var err error
		for port := uint64(0); port <= 12 && err == nil; port++ {
			if e := dict("multi-tenancy", i, "tenants", []uint64{port}, 8, 1); e != nil {
				err = e
			}
			if e := set("egress-validity", i, "allowed_eg_ports", port); e != nil {
				err = e
			}
		}
		if err == nil {
			err = scalar("load-balance", i, "left_port", 8, 1)
		}
		if err == nil {
			err = scalar("load-balance", i, "right_port", 8, 2)
		}
		if err == nil {
			err = scalar("load-balance", i, "thresh", 32, 1<<31)
		}
		if sw.IsLeaf {
			// Uplink ports are a leaf concept; a spine concentrates each
			// destination's traffic on one port by design.
			if err == nil {
				err = dict("load-balance", i, "is_uplink", []uint64{1}, 1, 1)
			}
			if err == nil {
				err = dict("load-balance", i, "is_uplink", []uint64{2}, 1, 1)
			}
		}
		if err == nil {
			// Untagged traffic reads VLAN 0; make it a member everywhere.
			err = dict("vlan-isolation", i, "vlan_members", []uint64{0}, 1, 1)
		}
		if err == nil {
			leaf := uint64(0)
			if sw.IsLeaf {
				leaf = 1
			}
			err = scalar("routing-validity", i, "is_leaf", 1, leaf)
		}
		if err == nil {
			err = scalar("waypointing", i, "waypoint_id", 32, uint64(leafIDs[0]))
		}
		if err == nil {
			err = scalar("service-chain", i, "src_switch", 32, uint64(leafIDs[0]))
		}
		if err == nil && len(leafIDs) > 1 {
			err = scalar("service-chain", i, "dst_switch", 32, uint64(leafIDs[1]))
		}
		if err == nil {
			err = scalar("service-chain", i, "chain_len", 8, 0)
		}
		if err == nil {
			spine := uint64(0)
			if !sw.IsLeaf {
				spine = 1
			}
			err = scalar("valley-free", i, "is_spine_switch", 1, spine)
		}
		if err != nil {
			return fmt.Errorf("experiments: configuring switch %d: %w", sw.ID, err)
		}
	}
	return nil
}

// AttachAllCheckers compiles every corpus checker, attaches all of them
// to every switch of the fabric (the §6.2 "All Checkers" configuration),
// and installs the benign control-plane state of ConfigureBenign; the
// stateful firewall is pre-seeded for the experiment's flows via
// AllowFlows.
func AttachAllCheckers(ls *netsim.LeafSpine) (map[string][]*netsim.HydraAttachment, error) {
	atts := map[string][]*netsim.HydraAttachment{}
	for _, p := range checkers.All {
		info, err := p.Parse()
		if err != nil {
			return nil, err
		}
		prog, err := compiler.Compile(info, compiler.Options{Name: p.Key})
		if err != nil {
			return nil, err
		}
		rt := &compiler.Runtime{Prog: prog}
		for _, sw := range ls.AllSwitches() {
			atts[p.Key] = append(atts[p.Key], sw.AttachChecker(rt, nil))
		}
	}

	all := ls.AllSwitches()
	sws := make([]SwitchInfo, len(all))
	for i, sw := range all {
		sws[i] = SwitchInfo{ID: sw.ID, IsLeaf: i < len(ls.Leaves)}
	}
	err := ConfigureBenign(sws, func(checker string, swIdx int, fn func(*pipeline.State) error) error {
		return fn(atts[checker][swIdx].State)
	})
	if err != nil {
		return nil, err
	}
	return atts, nil
}

// FirewallSeed returns an installer that seeds the stateful firewall's
// allowed dictionary (both directions) for the given (src, dst) address
// pairs.
func FirewallSeed(pairs [][2]uint32) func(*pipeline.State) error {
	return func(st *pipeline.State) error {
		tbl := st.Tables["allowed"]
		for _, p := range pairs {
			for _, k := range [][]pipeline.KeyMatch{
				{pipeline.ExactKey(uint64(p[0])), pipeline.ExactKey(uint64(p[1]))},
				{pipeline.ExactKey(uint64(p[1])), pipeline.ExactKey(uint64(p[0]))},
			} {
				if err := tbl.Insert(pipeline.Entry{Keys: k, Action: []pipeline.Value{pipeline.BoolV(true)}}); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// AllowFlows seeds the stateful firewall's allowed dictionary (both
// directions) for the given (src, dst) address pairs on every switch.
func AllowFlows(atts map[string][]*netsim.HydraAttachment, pairs [][2]uint32) error {
	seed := FirewallSeed(pairs)
	for _, att := range atts["stateful-firewall"] {
		if err := seed(att.State); err != nil {
			return err
		}
	}
	return nil
}
