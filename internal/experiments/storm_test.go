package experiments

import (
	"testing"
	"time"
)

// TestStormAccounting runs a small storm replay and checks the bus's
// conservation and memory-bound guarantees — the exact-arithmetic side
// of the experiment, independent of wall-clock throughput.
func TestStormAccounting(t *testing.T) {
	cfg := StormConfig{
		Packets: 4000,
		Seed:    5,
		Window:  time.Millisecond, // virtual ms
		Rate:    1000,
		Burst:   8,
		MaxKeys: 128,
		Repeats: 1,
	}
	r, err := RunStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: probe disarmed, benign configuration — nothing reports.
	if r.Baseline.Raised != 0 || r.Baseline.ExportedDigests != 0 {
		t.Fatalf("baseline pass raised %d digests (exported %d), want 0",
			r.Baseline.Raised, r.Baseline.ExportedDigests)
	}
	if r.Baseline.Unaccounted != 0 {
		t.Fatalf("baseline unaccounted = %d", r.Baseline.Unaccounted)
	}
	if r.Baseline.Delivered == 0 {
		t.Fatal("baseline delivered no packets")
	}

	// Storm: the probe reports at every egress hop of every packet. The
	// leaf-spine path is leaf -> spine -> leaf = 3 hops.
	wantRaised := uint64(3 * cfg.Packets)
	if r.Storm.Raised != wantRaised {
		t.Fatalf("storm raised %d digests, want %d (3 hops x %d packets)",
			r.Storm.Raised, wantRaised, cfg.Packets)
	}

	// Conservation: inline producers never drop, so after the final
	// flush the exporter must have seen every raised digest, exactly.
	if r.Storm.Dropped != 0 {
		t.Fatalf("inline producers dropped %d digests", r.Storm.Dropped)
	}
	if r.Storm.ExportedDigests != r.Storm.Raised {
		t.Fatalf("exported %d digests != raised %d — the storm lost or invented reports",
			r.Storm.ExportedDigests, r.Storm.Raised)
	}
	if r.Storm.Unaccounted != 0 {
		t.Fatalf("storm unaccounted = %d", r.Storm.Unaccounted)
	}

	// Storm control actually engaged, and the overflow buckets absorbed
	// the key-space beyond MaxKeys.
	if r.Storm.Suppressed == 0 {
		t.Fatal("storm pass saw no storm-control suppression — rate budget never engaged")
	}
	if r.Storm.OverflowDigests == 0 {
		t.Fatal("storm pass saw no overflow digests — MaxKeys never engaged")
	}

	// Memory bound: live aggregates can never exceed MaxKeys plus one
	// overflow bucket per (checker, switch) pair. 4 switches, corpus
	// checkers + probe — bound generously by MaxKeys + 64.
	if max := cfg.MaxKeys + 64; r.Storm.MaxLiveAggregates > max {
		t.Fatalf("collector held %d live aggregates, memory bound is %d",
			r.Storm.MaxLiveAggregates, max)
	}

	// Both passes moved packets; the ratio is wall-clock and therefore
	// only sanity-checked here (the bench guard owns the real floor).
	if r.PPSRatio <= 0.2 {
		t.Fatalf("storm/baseline pps ratio %.3f — report path collapsed", r.PPSRatio)
	}
}
