package experiments

import (
	"strings"
	"testing"
)

// TestSymcheckCorpus is the tentpole gate: the symbolic equivalence run
// must prove all twelve corpus checkers identical across the three
// backends over the modeled space, with a non-empty violation frontier
// each.
func TestSymcheckCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("symcheck sweep skipped in -short")
	}
	res, err := RunSymcheck(SymcheckConfig{})
	if err != nil {
		t.Fatalf("RunSymcheck: %v", err)
	}
	out := FormatSymcheck(res)
	t.Log("\n" + out)
	if !res.Passed {
		t.Fatalf("symcheck failed:\n%s", out)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("expected 12 corpus checkers, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Replayed == 0 {
			t.Errorf("%s: nothing replayed", row.Checker)
		}
		if row.Counterexample != nil {
			t.Errorf("%s: unexpected counterexample: %s", row.Checker, row.Counterexample.Detail)
		}
	}
	if !strings.Contains(out, "PROVEN") {
		t.Errorf("formatted report missing PROVEN status:\n%s", out)
	}
}
