package experiments

import (
	"bytes"
	"testing"

	"repro/internal/faults"
)

// chaosTestConfig keeps the campaign small enough for CI while leaving
// every fault class enough packets to fire: ~6k packets spread over
// ~200 flows, fault rate high enough that each probabilistic class
// injects dozens of events.
func chaosTestConfig() ChaosConfig {
	return ChaosConfig{Packets: 6000, Seed: 3, FaultRate: 0.05}
}

// TestChaosDeterministic pins the reproducibility contract: the same
// seed and fault config produce a byte-identical detection matrix.
func TestChaosDeterministic(t *testing.T) {
	cfg := chaosTestConfig()
	r1, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("first chaos run: %v", err)
	}
	r2, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("second chaos run: %v", err)
	}
	j1, err := r1.Matrix.JSON()
	if err != nil {
		t.Fatalf("marshal first matrix: %v", err)
	}
	j2, err := r2.Matrix.JSON()
	if err != nil {
		t.Fatalf("marshal second matrix: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("detection matrix not byte-reproducible across runs\nfirst:\n%s\nsecond:\n%s", j1, j2)
	}
	s1, err := r1.Static.JSON()
	if err != nil {
		t.Fatalf("marshal first static matrix: %v", err)
	}
	s2, err := r2.Static.JSON()
	if err != nil {
		t.Fatalf("marshal second static matrix: %v", err)
	}
	if !bytes.Equal(s1, s2) {
		t.Errorf("static matrix not byte-reproducible across runs\nfirst:\n%s\nsecond:\n%s", s1, s2)
	}
}

// TestChaosStaticVerdicts asserts the static layer's contract on the
// chaos campaign: the healthy baseline is statically silent (zero
// false positives), every control-plane fault class — misroute,
// partial-install, delayed-install — is flagged before a single packet
// flows, and the runtime-only classes stay statically silent (they
// never pass through the observed control plane).
func TestChaosStaticVerdicts(t *testing.T) {
	r, err := RunChaos(chaosTestConfig())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	sm := r.Static
	if j, err := sm.JSON(); err == nil {
		t.Logf("static matrix:\n%s", j)
	}

	if sm.Baseline.Detected || len(sm.Baseline.Violations) != 0 || sm.Baseline.MissingInstalls != 0 {
		t.Errorf("healthy baseline flagged statically: %+v", sm.Baseline)
	}
	if sm.Baseline.RouteUpdates == 0 || sm.Baseline.Atoms == 0 {
		t.Errorf("verifier saw no routes on the baseline: %+v", sm.Baseline)
	}

	byClass := map[string]StaticScenario{}
	for _, s := range sm.Scenarios {
		byClass[s.Class] = s
		if s.Detected != s.Expected {
			t.Errorf("class %s: static detected=%v, expected=%v (%+v)", s.Class, s.Detected, s.Expected, s)
		}
		if !s.Expected && (len(s.Violations) != 0 || s.MissingInstalls != 0) {
			t.Errorf("runtime-only class %s flagged statically: %+v", s.Class, s)
		}
	}

	// Misroute surfaces as a forwarding loop in the mirrored route
	// state, published as at least one atoms digest.
	mis := byClass[string(faults.Misroute)]
	if len(mis.Violations) == 0 || mis.Digests == 0 {
		t.Errorf("misroute raised no static violations/digests: %+v", mis)
	}
	// The install faults surface through the audit, not the route
	// verifier: partial-install misses the withheld pairs, delayed
	// misses everything at snapshot time.
	part := byClass[string(faults.PartialInstall)]
	if part.MissingInstalls == 0 || len(part.Violations) != 0 {
		t.Errorf("partial-install: want missing installs only, got %+v", part)
	}
	del := byClass[string(faults.DelayedInstall)]
	if del.MissingInstalls <= part.MissingInstalls {
		t.Errorf("delayed-install missing %d installs, want more than partial-install's %d",
			del.MissingInstalls, part.MissingInstalls)
	}
}

// TestChaosDetectionMatrix asserts the campaign's detection guarantees:
// a clean healthy baseline (zero false positives, zero rejects), every
// expected detector firing for its fault class (no misses), and at
// least three fault classes each detected by at least one corpus
// checker.
func TestChaosDetectionMatrix(t *testing.T) {
	r, err := RunChaos(chaosTestConfig())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	m := r.Matrix
	if j, err := m.JSON(); err == nil {
		t.Logf("detection matrix:\n%s", j)
	}

	if len(m.Baseline.Digests) != 0 {
		t.Errorf("healthy baseline raised digests (false positives): %v", m.Baseline.Digests)
	}
	if len(m.Baseline.Rejected) != 0 {
		t.Errorf("healthy baseline rejected packets: %v", m.Baseline.Rejected)
	}
	if m.Baseline.Delivered == 0 {
		t.Fatalf("baseline delivered no packets")
	}
	for name, s := range m.Checkers {
		if s.FP != 0 {
			t.Errorf("checker %s: %d false positives on healthy baseline", name, s.FP)
		}
	}

	detectedClasses := 0
	byClass := map[string]ScenarioResult{}
	for _, sc := range m.Scenarios {
		byClass[sc.Class] = sc
		if len(sc.Detected) > 0 {
			detectedClasses++
		}
		if len(sc.Missed) > 0 {
			t.Errorf("class %s: expected detectors stayed silent: %v (digests %v)",
				sc.Class, sc.Missed, sc.Digests)
		}
	}
	if detectedClasses < 3 {
		t.Errorf("only %d fault classes detected by at least one checker, want >= 3", detectedClasses)
	}

	// Spot-check the fault injectors actually injected.
	for class, key := range map[faults.Class]string{
		faults.Drop:           "drops",
		faults.Corrupt:        "corrupted",
		faults.Duplicate:      "duplicated",
		faults.Reorder:        "reordered",
		faults.Flap:           "flap_drops",
		faults.Misroute:       "misroutes",
		faults.TeleRewrite:    "tele_rewrites",
		faults.Crash:          "crash_drops",
		faults.StaleTable:     "stale_cleared_entries",
		faults.PartialInstall: "withheld_pairs",
		faults.DelayedInstall: "delayed_pairs",
	} {
		sc, ok := byClass[string(class)]
		if !ok {
			t.Errorf("class %s missing from matrix", class)
			continue
		}
		if sc.Injected[key] == 0 {
			t.Errorf("class %s injected no %s events: %v", class, key, sc.Injected)
		}
	}
	// The crash restart must have wiped every deployed checker on the
	// victim switch.
	if got := byClass[string(faults.Crash)].Injected["wiped_attachments"]; got == 0 {
		t.Errorf("crash scenario wiped no attachments")
	}
	// Fault scenarios drop traffic; the baseline must deliver at least
	// as much as any faulted run.
	for _, sc := range m.Scenarios {
		if sc.Delivered > m.Baseline.Delivered+uint64(m.Packets)/10 {
			t.Errorf("class %s delivered %d, implausibly above baseline %d",
				sc.Class, sc.Delivered, m.Baseline.Delivered)
		}
	}
}
