package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/trafficgen"
)

// EngineReplayConfig parameterizes the sharded-engine campus replay:
// the same synthetic trace as RunThroughput, executed by the
// internal/engine worker pool instead of the event-driven simulator, to
// measure how fast the software substrate can check packets.
type EngineReplayConfig struct {
	// Packets to replay (default 50,000).
	Packets int
	// Shards is the engine worker count; <= 0 means GOMAXPROCS.
	Shards int
	// BatchSize overrides the engine's dispatch batch size when > 0.
	BatchSize int
	Seed      int64
	// KeepVerdicts records every packet's individual verdict (used by
	// the differential tests; costs one slice slot per packet).
	KeepVerdicts bool
	// NoLink pins every checker runtime to the map-based reference
	// interpreter instead of the linked executor (used by the linked
	// conformance tests as the ground truth).
	NoLink bool
	// NoBatch disables the bytecode-VM batched path, measuring the
	// per-packet linked executor instead (the pre-batching baseline).
	NoBatch bool
}

// EngineReplayResult is the outcome of one engine replay.
type EngineReplayResult struct {
	Counts engine.Counts
	// Verdicts is per-packet, in submission order (nil unless
	// KeepVerdicts).
	Verdicts []engine.Verdict
	// WallPktsPerSec is packets checked per wall-clock second across all
	// shards — the engine's headline throughput number.
	WallPktsPerSec float64
	Shards         int
}

// CorpusCheckers compiles every corpus checker into an engine checker
// list (the §6.2 "All Checkers" configuration).
func CorpusCheckers() ([]engine.Checker, error) {
	return CorpusCheckersOpt(false)
}

// CorpusCheckersOpt is CorpusCheckers with an executor choice: noLink
// pins the runtimes to the map-based reference interpreter.
func CorpusCheckersOpt(noLink bool) ([]engine.Checker, error) {
	var out []engine.Checker
	for _, p := range checkers.All {
		info, err := p.Parse()
		if err != nil {
			return nil, err
		}
		prog, err := compiler.Compile(info, compiler.Options{Name: p.Key})
		if err != nil {
			return nil, err
		}
		out = append(out, engine.Checker{Name: p.Key, RT: &compiler.Runtime{Prog: prog, NoLink: noLink}})
	}
	return out, nil
}

// The replay fabric mirrors runThroughput's 2x2 leaf-spine: leaves 1-2,
// spines 3-4. Hosts hang off port 3 of each leaf; ports 1 and 2 are the
// leaf uplinks.
var replaySwitches = []SwitchInfo{
	{ID: 1, IsLeaf: true},
	{ID: 2, IsLeaf: true},
	{ID: 3, IsLeaf: false},
	{ID: 4, IsLeaf: false},
}

// replayPaths are the two ECMP paths from the replay host (leaf1 port
// 3) to the sink (leaf2 port 3), via spine 3 or spine 4. Hop slices are
// shared across packets; the engine never mutates them.
var replayPaths = [2][]engine.Hop{
	{{SwitchID: 1, InPort: 3, OutPort: 1}, {SwitchID: 3, InPort: 1, OutPort: 2}, {SwitchID: 2, InPort: 1, OutPort: 3}},
	{{SwitchID: 1, InPort: 3, OutPort: 2}, {SwitchID: 4, InPort: 1, OutPort: 2}, {SwitchID: 2, InPort: 2, OutPort: 3}},
}

// ReplayPathFor is the replay fabric's ECMP model: the flow's RSS hash
// pins it to one of the two spine paths. Exported so the fleet's
// ingest daemon routes packets exactly like CampusEnginePackets does.
func ReplayPathFor(key dataplane.FlowKey) []engine.Hop {
	return replayPaths[key.RSSHash()>>16&1]
}

// ReplaySwitchInfos returns the replay fabric's switch inventory.
func ReplaySwitchInfos() []SwitchInfo {
	return append([]SwitchInfo(nil), replaySwitches...)
}

// CampusEnginePackets pre-generates n campus-trace packets as engine
// work units (ECMP-pinned per flow, like a real fabric hashing the
// 5-tuple) together with the unique (src, dst) address pairs the
// stateful firewall must be seeded with.
func CampusEnginePackets(n int, seed int64) ([]engine.Packet, [][2]uint32) {
	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: seed})
	pkts := make([]engine.Packet, n)
	seen := map[[2]uint32]bool{}
	var pairs [][2]uint32
	for i := range pkts {
		tp := gen.Next()
		key := tp.FlowKey()
		// Pin the flow to one spine by hash — decorrelated from the
		// engine's shard choice (hash % shards uses the low bits).
		pkts[i] = engine.Packet{
			Key:   key,
			Len:   uint32(tp.Size),
			Hops:  replayPaths[key.RSSHash()>>16&1],
			Index: int32(i),
		}
		pair := [2]uint32{uint32(tp.Src), uint32(tp.Dst)}
		if !seen[pair] {
			seen[pair] = true
			pairs = append(pairs, pair)
		}
	}
	return pkts, pairs
}

// ConfigureReplayEngine installs the benign control state plus the
// firewall seed through an engine Install function (either
// engine.Engine.Install or engine.Sequential.Install).
func ConfigureReplayEngine(install func(checker string, switchID uint32, fn func(*pipeline.State) error) error, pairs [][2]uint32) error {
	err := ConfigureBenign(replaySwitches, func(checker string, swIdx int, fn func(*pipeline.State) error) error {
		return install(checker, replaySwitches[swIdx].ID, fn)
	})
	if err != nil {
		return err
	}
	seed := FirewallSeed(pairs)
	for _, sw := range replaySwitches {
		if err := install("stateful-firewall", sw.ID, seed); err != nil {
			return err
		}
	}
	return nil
}

// RunEngineReplay replays the campus trace through the sharded engine
// with all corpus checkers attached and benignly configured.
func RunEngineReplay(cfg EngineReplayConfig) (EngineReplayResult, error) {
	if cfg.Packets == 0 {
		cfg.Packets = 50_000
	}
	chks, err := CorpusCheckersOpt(cfg.NoLink)
	if err != nil {
		return EngineReplayResult{}, err
	}
	pkts, pairs := CampusEnginePackets(cfg.Packets, cfg.Seed)
	var verdicts []engine.Verdict
	if cfg.KeepVerdicts {
		verdicts = make([]engine.Verdict, len(pkts))
	}
	eng := engine.New(engine.Config{
		Shards:    cfg.Shards,
		BatchSize: cfg.BatchSize,
		Checkers:  chks,
		Verdicts:  verdicts,
		NoBatch:   cfg.NoBatch,
	})
	if err := ConfigureReplayEngine(eng.Install, pairs); err != nil {
		return EngineReplayResult{}, err
	}
	eng.Warm()
	// Collect the install-phase garbage now so the replay's first GC
	// cycle doesn't land mid-measurement (steady state is ~alloc-free).
	runtime.GC()
	start := time.Now()
	for i := range pkts {
		eng.Submit(pkts[i])
	}
	counts := eng.Drain()
	wall := time.Since(start)
	if wall <= 0 {
		return EngineReplayResult{}, fmt.Errorf("experiments: empty engine replay")
	}
	return EngineReplayResult{
		Counts:         counts,
		Verdicts:       verdicts,
		WallPktsPerSec: float64(cfg.Packets) / wall.Seconds(),
		Shards:         eng.Shards(),
	}, nil
}

// RunSequentialReplay runs the identical workload through the
// single-state reference executor — the ground truth the sharded runs
// are compared against.
func RunSequentialReplay(cfg EngineReplayConfig) (EngineReplayResult, error) {
	if cfg.Packets == 0 {
		cfg.Packets = 50_000
	}
	chks, err := CorpusCheckersOpt(cfg.NoLink)
	if err != nil {
		return EngineReplayResult{}, err
	}
	pkts, pairs := CampusEnginePackets(cfg.Packets, cfg.Seed)
	var verdicts []engine.Verdict
	if cfg.KeepVerdicts {
		verdicts = make([]engine.Verdict, len(pkts))
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks, Verdicts: verdicts, NoBatch: cfg.NoBatch})
	if err := ConfigureReplayEngine(seq.Install, pairs); err != nil {
		return EngineReplayResult{}, err
	}
	seq.Warm()
	runtime.GC()
	start := time.Now()
	for i := range pkts {
		seq.Process(pkts[i])
	}
	wall := time.Since(start)
	if wall <= 0 {
		return EngineReplayResult{}, fmt.Errorf("experiments: empty sequential replay")
	}
	return EngineReplayResult{
		Counts:         seq.Counts(),
		Verdicts:       verdicts,
		WallPktsPerSec: float64(cfg.Packets) / wall.Seconds(),
		Shards:         1,
	}, nil
}

// RunBatchReplay measures the steady-state batched checking rate: the
// identical workload to RunSequentialReplay, driven through
// Sequential.ProcessBatch in BatchSize slices. This is the per-packet
// cost of the bytecode-VM batched hot path itself, without the sharded
// engine's dispatch queues around it — the number the
// BenchmarkEngineBatch* benchmarks track and BENCH_baseline.json pins
// as batch_pps.
func RunBatchReplay(cfg EngineReplayConfig) (EngineReplayResult, error) {
	if cfg.Packets == 0 {
		cfg.Packets = 50_000
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	chks, err := CorpusCheckersOpt(cfg.NoLink)
	if err != nil {
		return EngineReplayResult{}, err
	}
	pkts, pairs := CampusEnginePackets(cfg.Packets, cfg.Seed)
	var verdicts []engine.Verdict
	if cfg.KeepVerdicts {
		verdicts = make([]engine.Verdict, len(pkts))
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks, Verdicts: verdicts, NoBatch: cfg.NoBatch})
	if err := ConfigureReplayEngine(seq.Install, pairs); err != nil {
		return EngineReplayResult{}, err
	}
	seq.Warm()
	runtime.GC()
	start := time.Now()
	for lo := 0; lo < len(pkts); lo += batch {
		hi := lo + batch
		if hi > len(pkts) {
			hi = len(pkts)
		}
		seq.ProcessBatch(pkts[lo:hi])
	}
	wall := time.Since(start)
	if wall <= 0 {
		return EngineReplayResult{}, fmt.Errorf("experiments: empty batch replay")
	}
	return EngineReplayResult{
		Counts:         seq.Counts(),
		Verdicts:       verdicts,
		WallPktsPerSec: float64(cfg.Packets) / wall.Seconds(),
		Shards:         1,
	}, nil
}

// FormatEngineReplay renders one or more engine-replay results.
func FormatEngineReplay(results []EngineReplayResult) string {
	var b strings.Builder
	b.WriteString("Engine: sharded campus-trace replay, all checkers benign\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %10s %10s %8s\n",
		"shards", "pkts_per_s", "packets", "forwarded", "rejected", "reports", "errors")
	for _, r := range results {
		fmt.Fprintf(&b, "%-8d %12.0f %12d %10d %10d %10d %8d\n",
			r.Shards, r.WallPktsPerSec, r.Counts.Packets, r.Counts.Forwarded,
			r.Counts.Rejected, r.Counts.Reports, r.Counts.Errors)
	}
	return b.String()
}
