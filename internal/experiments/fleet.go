package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/pcapio"
	"repro/internal/reportbus"
	"repro/internal/trafficgen"
)

// WriteCampusPcap renders n campus-trace packets as Ethernet frames
// into a classic pcap file — the capture the fleet harness replays.
// The rendering is the exact wire form CampusEnginePackets models, so
// a fleet run over the file and an in-process replay of the same
// (n, seed) check identical work.
func WriteCampusPcap(path string, n int, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w, err := pcapio.NewWriter(bw)
	if err != nil {
		return err
	}
	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: seed})
	var ts int64
	for i := 0; i < n; i++ {
		tp := gen.Next()
		ts += int64(tp.Gap)
		frame := tp.Decode().AppendTo(nil)
		if len(frame) != tp.Size {
			return fmt.Errorf("experiments: frame %d renders to %d bytes, trace says %d", i, len(frame), tp.Size)
		}
		if err := w.WriteFrame(ts, frame); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// FleetReference is the in-process ground truth a fleet run is
// compared against: the same packets through the same batched engine
// path, single process, with the same seed filtering.
type FleetReference struct {
	Counts   engine.Counts
	Verdicts []fleet.VerdictCount
	// DigestKeys maps the content key of every emitted aggregate to its
	// digest count (reportbus hashes are process-local, so content keys
	// are the only identity that survives the process boundary).
	DigestKeys map[string]uint64
	// Unaccounted is the reference bus residual (must be 0).
	Unaccounted int64
}

// RunFleetReference replays the campus trace loops times through the
// batched engine with every skipSeedEvery-th firewall pair left
// unseeded, mirroring what the fleet daemons collectively compute.
func RunFleetReference(packets, loops, skipSeedEvery, batchSize int, seed int64) (FleetReference, error) {
	if packets <= 0 {
		packets = 20_000
	}
	if loops <= 0 {
		loops = 1
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	chks, err := CorpusCheckers()
	if err != nil {
		return FleetReference{}, err
	}
	pkts, pairs := CampusEnginePackets(packets, seed)
	seedPairs, _ := fleet.FilterSeedPairs(pairs, skipSeedEvery)
	verdicts := make([]engine.Verdict, len(pkts))
	collect := &reportbus.CollectExporter{}
	bus := reportbus.New(reportbus.Config{
		Window:    5 * time.Millisecond,
		Exporters: []reportbus.Exporter{collect},
	})
	seq := engine.NewSequential(engine.Config{Checkers: chks, Verdicts: verdicts, ReportBus: bus})
	if err := ConfigureReplayEngine(seq.Install, seedPairs); err != nil {
		return FleetReference{}, err
	}
	seq.Warm()
	bus.Start()
	multiset := map[engine.Verdict]uint64{}
	for loop := 0; loop < loops; loop++ {
		for lo := 0; lo < len(pkts); lo += batchSize {
			hi := lo + batchSize
			if hi > len(pkts) {
				hi = len(pkts)
			}
			seq.ProcessBatch(pkts[lo:hi])
		}
		for i := range verdicts {
			multiset[verdicts[i]]++
		}
	}
	bus.Close()
	ref := FleetReference{
		Counts:     seq.Counts(),
		Verdicts:   nil,
		DigestKeys: map[string]uint64{},
	}
	vcs := make([]fleet.VerdictCount, 0, len(multiset))
	for v, c := range multiset {
		vcs = append(vcs, fleet.VerdictCount{Reject: v.Reject, Reports: v.Reports, Count: c})
	}
	ref.Verdicts = fleet.MergeVerdictCounts(vcs)
	aggs := collect.Aggregates()
	for i := range aggs {
		ref.DigestKeys[fleet.AggKeyOf(&aggs[i])] += aggs[i].Count
	}
	ref.Unaccounted = bus.Metrics().Unaccounted()
	return ref, nil
}

// DigestKeyCounts folds a fleet report's merged aggregates into the
// same content-keyed view FleetReference exposes.
func DigestKeyCounts(aggs []reportbus.Aggregate) map[string]uint64 {
	out := make(map[string]uint64, len(aggs))
	for i := range aggs {
		out[fleet.AggKeyOf(&aggs[i])] += aggs[i].Count
	}
	return out
}

// ---------------------------------------------------------------------------
// Exec harness

// FleetConfig parameterizes one fleet harness run: spawn the three
// daemons, replay a campus pcap through them, and compare the
// aggregator's fleet-wide report to the in-process reference.
type FleetConfig struct {
	// Packets in the capture (default 20,000); Seed feeds trafficgen.
	Packets int
	Seed    int64
	// Workers is the engine worker process count (default 2).
	Workers int
	// Loops replays the capture this many times (default 1).
	Loops int
	// SkipSeedEvery injects deterministic violations (default 16).
	SkipSeedEvery int
	// BatchSize is the ingest wire batch (default 256).
	BatchSize int
	// Kill, when set, SIGKILLs worker 0 mid-stream and restarts it on
	// the same address — the soak scenario. Verdict parity is not
	// asserted (in-flight packets die with the worker, by design);
	// conservation of every summarized session still is.
	Kill bool
	// MaxRSSKB, when > 0, bounds every daemon's peak resident set; a
	// process exceeding it fails the run (the soak job's leak check).
	MaxRSSKB uint64
	// BinDir holds prebuilt hydra-{ingestd,workerd,aggd}; empty builds
	// them with `go build` into the scratch dir.
	BinDir string
	// Dir is the scratch directory (empty: a fresh temp dir, removed
	// afterwards).
	Dir string
	// Timeout bounds the whole run (default 3 minutes).
	Timeout time.Duration
	// Logf, when set, receives harness progress lines.
	Logf func(format string, args ...any)
}

// FleetResult is the harness outcome: the fleet's own report, the
// reference, and the parity verdicts between them.
type FleetResult struct {
	Report fleet.FleetReport
	Ingest fleet.IngestStats
	Ref    FleetReference

	// VerdictParity: the fleet's merged verdict multiset equals the
	// reference's (asserted only on clean runs). CountsParity: engine
	// counts match. DigestParity: the merged violation table matches
	// the reference's content-keyed digest counts. Conserved: every
	// summarized session balanced its digest ledger exactly.
	VerdictParity bool
	CountsParity  bool
	DigestParity  bool
	Conserved     bool
	IngestClean   bool
	// RSSBounded is false when a daemon's peak resident set exceeded
	// FleetConfig.MaxRSSKB (always true when no bound was set).
	RSSBounded bool

	Kills     int
	Wall      time.Duration
	PeakRSSKB map[string]uint64
	Notes     []string
}

// OK reports whether the run met its acceptance bar: conservation and
// ingest accounting always; full parity additionally on clean runs.
func (r FleetResult) OK() bool {
	if !r.Conserved || !r.RSSBounded {
		return false
	}
	if r.Kills == 0 {
		return r.VerdictParity && r.CountsParity && r.DigestParity && r.IngestClean
	}
	return true
}

// FleetBinaries ensures the three daemon binaries exist in dir,
// building them with the local go toolchain when missing.
func FleetBinaries(binDir string) (map[string]string, error) {
	names := []string{"hydra-ingestd", "hydra-workerd", "hydra-aggd"}
	bins := map[string]string{}
	var missing []string
	for _, n := range names {
		p := filepath.Join(binDir, n)
		if _, err := os.Stat(p); err != nil {
			missing = append(missing, n)
		}
		bins[n] = p
	}
	if len(missing) == 0 {
		return bins, nil
	}
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	for _, n := range missing {
		cmd := exec.Command("go", "build", "-o", bins[n], "./cmd/"+n)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("experiments: building %s: %v\n%s", n, err, out)
		}
	}
	return bins, nil
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("experiments: no go.mod above working directory")
		}
		dir = parent
	}
}

// RunFleet executes one full fleet harness run.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Packets <= 0 {
		cfg.Packets = 20_000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Loops <= 0 {
		cfg.Loops = 1
	}
	if cfg.SkipSeedEvery == 0 {
		cfg.SkipSeedEvery = 16
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	var res FleetResult
	start := time.Now()

	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "hydra-fleet-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	binDir := cfg.BinDir
	if binDir == "" {
		binDir = dir
	}
	bins, err := FleetBinaries(binDir)
	if err != nil {
		return res, err
	}
	pcapPath := filepath.Join(dir, "campus.pcap")
	if err := WriteCampusPcap(pcapPath, cfg.Packets, cfg.Seed); err != nil {
		return res, err
	}

	deadline := time.Now().Add(cfg.Timeout)
	sampler := newRSSSampler()
	defer sampler.stop()

	// Aggregator first: workers dial it at startup.
	reportPath := filepath.Join(dir, "fleet-report.json")
	agg, err := startProc(cfg.Logf, "aggd", bins["hydra-aggd"],
		"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0",
		"-expect", strconv.Itoa(cfg.Workers), "-timeout", cfg.Timeout.String(),
		"-out", reportPath)
	if err != nil {
		return res, err
	}
	defer agg.kill()
	aggAddr, err := agg.awaitPrefixed("LISTEN ", deadline)
	if err != nil {
		return res, fmt.Errorf("experiments: aggd did not report its address: %w", err)
	}
	aggMetrics, _ := agg.awaitPrefixed("METRICS ", deadline)
	sampler.watch("aggd", agg.cmd.Process.Pid)
	// Scrape the aggregator now, while it is guaranteed alive (it exits
	// on its own once the expected summaries arrive): registration is
	// eager, so the series exist before any traffic flows.
	if aggMetrics != "" {
		body, err := scrape(aggMetrics)
		if err != nil || !strings.Contains(body, "hydra_agg_digests_total") {
			return res, fmt.Errorf("experiments: aggd metrics incomplete (err %v)", err)
		}
	}

	workers := make([]*proc, cfg.Workers)
	workerAddrs := make([]string, cfg.Workers)
	startWorker := func(i int, listen string) (*proc, error) {
		p, err := startProc(cfg.Logf, fmt.Sprintf("workerd-%d", i), bins["hydra-workerd"],
			"-listen", listen, "-metrics", "127.0.0.1:0",
			"-agg", aggAddr, "-node", fmt.Sprintf("worker-%d", i))
		if err != nil {
			return nil, err
		}
		if _, err := p.awaitPrefixed("LISTEN ", deadline); err != nil {
			p.kill()
			return nil, fmt.Errorf("experiments: worker %d did not report its address: %w", i, err)
		}
		return p, nil
	}
	for i := range workers {
		p, err := startWorker(i, "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		defer p.kill()
		workers[i] = p
		workerAddrs[i] = p.prefixed["LISTEN "]
		sampler.watch(fmt.Sprintf("workerd-%d", i), p.cmd.Process.Pid)
	}

	statsPath := filepath.Join(dir, "ingest-stats.json")
	ingest, err := startProc(cfg.Logf, "ingestd", bins["hydra-ingestd"],
		"-pcap", pcapPath, "-workers", strings.Join(workerAddrs, ","),
		"-loops", strconv.Itoa(cfg.Loops),
		"-skip-seed-every", strconv.Itoa(cfg.SkipSeedEvery),
		"-batch", strconv.Itoa(cfg.BatchSize),
		"-metrics", "127.0.0.1:0", "-out", statsPath)
	if err != nil {
		return res, err
	}
	defer ingest.kill()
	sampler.watch("ingestd", ingest.cmd.Process.Pid)

	if cfg.Kill {
		// Wait until worker 0 is provably mid-stream (its packet counter
		// moved), then SIGKILL it and restart on the same address.
		target := workers[0]
		wm := target.prefixed["METRICS "]
		if err := awaitCounter(wm, "hydra_worker_packets_total", 1, deadline); err != nil {
			return res, fmt.Errorf("experiments: worker 0 never started processing: %w", err)
		}
		cfg.Logf("fleet: killing worker 0 (pid %d) mid-stream", target.cmd.Process.Pid)
		target.kill()
		res.Kills++
		replacement, err := startWorker(0, workerAddrs[0])
		if err != nil {
			return res, fmt.Errorf("experiments: restarting worker 0: %w", err)
		}
		defer replacement.kill()
		workers[0] = replacement
		sampler.watch("workerd-0r", replacement.cmd.Process.Pid)
	}

	if err := ingest.wait(deadline); err != nil {
		return res, fmt.Errorf("experiments: ingestd: %w", err)
	}
	if err := readJSONFile(statsPath, &res.Ingest); err != nil {
		return res, fmt.Errorf("experiments: ingest stats: %w", err)
	}

	// The workers' /metrics endpoints must expose the pipeline counters
	// — the fleet's observability contract.
	for i, p := range workers {
		body, err := scrape(p.prefixed["METRICS "])
		if err != nil {
			return res, fmt.Errorf("experiments: scraping worker %d: %w", i, err)
		}
		for _, series := range []string{"hydra_worker_packets_total", "hydra_worker_batch_seconds_count", "hydra_worker_sessions_total"} {
			if !strings.Contains(body, series) {
				return res, fmt.Errorf("experiments: worker %d metrics missing %s", i, series)
			}
		}
	}
	if err := agg.wait(deadline); err != nil {
		// The aggregator exits on its own after -expect summaries; nudge
		// it if that somehow did not happen.
		agg.terminate()
		if werr := agg.wait(time.Now().Add(10 * time.Second)); werr != nil {
			return res, fmt.Errorf("experiments: aggd: %w", err)
		}
	}
	if err := readJSONFile(reportPath, &res.Report); err != nil {
		return res, fmt.Errorf("experiments: fleet report: %w", err)
	}
	res.Wall = time.Since(start)
	res.PeakRSSKB = sampler.peaks()
	res.RSSBounded = true
	if cfg.MaxRSSKB > 0 {
		for name, kb := range res.PeakRSSKB {
			if kb > cfg.MaxRSSKB {
				res.RSSBounded = false
				res.Notes = append(res.Notes,
					fmt.Sprintf("%s peaked at %d KB, above the %d KB bound", name, kb, cfg.MaxRSSKB))
			}
		}
	}

	ref, err := RunFleetReference(cfg.Packets, cfg.Loops, cfg.SkipSeedEvery, cfg.BatchSize, cfg.Seed)
	if err != nil {
		return res, err
	}
	res.Ref = ref
	res.Conserved = res.Report.Conserved && res.Report.Summarized == cfg.Workers
	res.IngestClean = res.Ingest.Reconnects == 0 && len(res.Ingest.Dropped) == 0 &&
		res.Ingest.Packets == res.Ingest.Acked
	res.VerdictParity = reflect.DeepEqual(res.Report.Verdicts, ref.Verdicts)
	res.CountsParity = res.Report.Counts.Packets == ref.Counts.Packets &&
		res.Report.Counts.Forwarded == ref.Counts.Forwarded &&
		res.Report.Counts.Rejected == ref.Counts.Rejected &&
		res.Report.Counts.Reports == ref.Counts.Reports &&
		res.Report.Counts.Errors == ref.Counts.Errors
	res.DigestParity = reflect.DeepEqual(DigestKeyCounts(res.Report.Aggregates), ref.DigestKeys)
	if ref.Unaccounted != 0 {
		res.Conserved = false
		res.Notes = append(res.Notes, fmt.Sprintf("reference bus unaccounted: %d", ref.Unaccounted))
	}
	if res.Kills > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("soak: %d kill(s); parity not asserted, conservation covers %d summarized sessions",
				res.Kills, res.Report.Summarized))
	}
	return res, nil
}

// FormatFleet renders a fleet result for the bench report.
func FormatFleet(r FleetResult) string {
	var b strings.Builder
	b.WriteString("Fleet: ingestd -> workerd xN -> aggd over the campus pcap\n")
	fmt.Fprintf(&b, "%-24s %12d\n", "packets (fleet)", r.Report.Counts.Packets)
	fmt.Fprintf(&b, "%-24s %12d\n", "packets (reference)", r.Ref.Counts.Packets)
	fmt.Fprintf(&b, "%-24s %12d\n", "digests received", r.Report.ReceivedDigests)
	fmt.Fprintf(&b, "%-24s %9d/%2d\n", "sessions (clean/total)", r.Report.CleanSessions, r.Report.Sessions)
	fmt.Fprintf(&b, "%-24s %12d\n", "kills", r.Kills)
	fmt.Fprintf(&b, "%-24s %12v\n", "verdict parity", r.VerdictParity)
	fmt.Fprintf(&b, "%-24s %12v\n", "counts parity", r.CountsParity)
	fmt.Fprintf(&b, "%-24s %12v\n", "digest parity", r.DigestParity)
	fmt.Fprintf(&b, "%-24s %12v\n", "conserved", r.Conserved)
	fmt.Fprintf(&b, "%-24s %12s\n", "wall", r.Wall.Round(time.Millisecond))
	for name, kb := range r.PeakRSSKB {
		fmt.Fprintf(&b, "peak rss %-15s %9d KB\n", name, kb)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Process plumbing

// proc wraps one spawned daemon: stdout line routing (LISTEN/METRICS
// handshake lines are captured, everything else is logged) and
// lifecycle helpers.
type proc struct {
	name string
	cmd  *exec.Cmd

	mu       sync.Mutex
	prefixed map[string]string
	done     chan error
	linec    chan string
}

func startProc(logf func(string, ...any), name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout // interleave; daemons log little
	p := &proc{
		name:     name,
		cmd:      cmd,
		prefixed: map[string]string{},
		done:     make(chan error, 1),
		linec:    make(chan string, 64),
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("experiments: starting %s: %w", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			matched := false
			for _, pre := range []string{"LISTEN ", "METRICS "} {
				if strings.HasPrefix(line, pre) {
					p.mu.Lock()
					p.prefixed[pre] = strings.TrimSpace(strings.TrimPrefix(line, pre))
					p.mu.Unlock()
					matched = true
					select {
					case p.linec <- pre:
					default:
					}
				}
			}
			if !matched {
				logf("%s: %s", name, line)
			}
		}
		p.done <- cmd.Wait()
	}()
	return p, nil
}

// awaitPrefixed blocks until the daemon printed "<prefix><value>".
func (p *proc) awaitPrefixed(prefix string, deadline time.Time) (string, error) {
	for {
		p.mu.Lock()
		v, ok := p.prefixed[prefix]
		p.mu.Unlock()
		if ok {
			return v, nil
		}
		select {
		case <-p.linec:
		case err := <-p.done:
			p.done <- err
			return "", fmt.Errorf("%s exited early: %v", p.name, err)
		case <-time.After(time.Until(deadline)):
			return "", fmt.Errorf("timed out waiting for %s%q from %s", prefix, "...", p.name)
		}
	}
}

func (p *proc) wait(deadline time.Time) error {
	select {
	case err := <-p.done:
		p.done <- err
		return err
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("%s did not exit before the deadline", p.name)
	}
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	select {
	case err := <-p.done:
		p.done <- err
	case <-time.After(5 * time.Second):
	}
}

func (p *proc) terminate() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// scrape fetches a Prometheus endpoint's body.
func scrape(addr string) (string, error) {
	if addr == "" {
		return "", fmt.Errorf("no metrics address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// awaitCounter polls a metrics endpoint until the named counter
// reaches min.
func awaitCounter(addr, name string, min float64, deadline time.Time) error {
	for {
		if body, err := scrape(addr); err == nil {
			for _, line := range strings.Split(body, "\n") {
				if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
					continue
				}
				fields := strings.Fields(line)
				if len(fields) == 2 {
					if v, err := strconv.ParseFloat(fields[1], 64); err == nil && v >= min {
						return nil
					}
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("counter %s never reached %v", name, min)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// RSS sampling

// rssSampler polls /proc/<pid>/status for every watched process and
// keeps the peak resident set — the soak job's bounded-memory check.
type rssSampler struct {
	mu    sync.Mutex
	pids  map[string]int
	peak  map[string]uint64
	stopc chan struct{}
}

func newRSSSampler() *rssSampler {
	s := &rssSampler{pids: map[string]int{}, peak: map[string]uint64{}, stopc: make(chan struct{})}
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

func (s *rssSampler) watch(name string, pid int) {
	s.mu.Lock()
	s.pids[name] = pid
	s.mu.Unlock()
	s.sample()
}

func (s *rssSampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, pid := range s.pids {
		if kb, ok := readVmRSS(pid); ok && kb > s.peak[name] {
			s.peak[name] = kb
		}
	}
}

func (s *rssSampler) peaks() map[string]uint64 {
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.peak))
	for k, v := range s.peak {
		out[k] = v
	}
	return out
}

func (s *rssSampler) stop() { close(s.stopc) }

// readVmRSS parses VmRSS (in KB) from /proc/<pid>/status; ok is false
// when the process is gone or the platform has no procfs.
func readVmRSS(pid int) (uint64, bool) {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
