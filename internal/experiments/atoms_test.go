package experiments

import "testing"

// TestAtomsChurn runs a small E16 pass and asserts its contract: the
// fabric is clean before and after churn, every withdrawal raised a
// violation that its reinstall resolved, and no single update rechecked
// more than a small corner of the partition (the Delta-net
// partial-recheck property).
func TestAtomsChurn(t *testing.T) {
	cfg := AtomsConfig{K: 4, Updates: 200, Seed: 7}
	r, err := RunAtomsChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outstanding != 0 {
		t.Errorf("churn ended with %d outstanding violations", r.Outstanding)
	}
	if r.Raised == 0 || r.Raised != r.Resolved {
		t.Errorf("raised %d, resolved %d: every withdrawal must raise and every reinstall resolve", r.Raised, r.Resolved)
	}
	if r.ChurnUpdates != uint64(cfg.Updates) {
		t.Errorf("drove %d updates, want %d", r.ChurnUpdates, cfg.Updates)
	}
	if r.Atoms == 0 || r.Routes == 0 || r.ReplayUpdates == 0 {
		t.Errorf("fabric replay looks empty: %+v", r)
	}
	if r.MaxAffected == 0 || r.MaxAffected >= r.Atoms/2 {
		t.Errorf("single update rechecked %d of %d atoms; partial recheck should stay well below half", r.MaxAffected, r.Atoms)
	}

	// The deterministic counters must reproduce exactly.
	r2, err := RunAtomsChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Atoms != r.Atoms || r2.Raised != r.Raised || r2.Resolved != r.Resolved ||
		r2.MaxAffected != r.MaxAffected || r2.AvgAffected != r.AvgAffected {
		t.Errorf("churn counters not reproducible:\nfirst:  %+v\nsecond: %+v", r, r2)
	}
}
