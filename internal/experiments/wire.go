package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/trafficgen"
)

// WireReplayConfig parameterizes the wire-path replay: the campus trace
// pushed through the event-driven simulator with all corpus checkers
// attached, measuring the full per-hop wire path (pooled parse, header
// binding, telemetry rewrite, serialization) rather than just the
// checker engine.
type WireReplayConfig struct {
	// Packets to replay (default 50,000).
	Packets int
	Seed    int64
	// SimShards partitions the simulator into parallel shard loops
	// (<=1 = sequential fast path). Results are byte-identical at
	// every shard count; only wall-clock throughput changes.
	SimShards int
}

// WireReplayResult is one wire replay's outcome.
type WireReplayResult struct {
	// WallPktsPerSec is end-to-end packets delivered per wall-clock
	// second — the wire path's headline throughput number.
	WallPktsPerSec float64
	Delivered      uint64
	DeliveredRatio float64
	// Checked and Rejected sum the checker verdicts across every
	// attachment in the fabric; ParseErrors counts undecodable frames
	// and checker execution errors at switches.
	Checked     uint64
	Rejected    uint64
	ParseErrors uint64
	// TxFrames splits into the in-place rewrite fast path and full
	// re-serializations (inject, strip, and other shape changes).
	TxFrames     uint64
	FastTxFrames uint64
	SlowTxFrames uint64
	FastShare    float64
	// Sim snapshots the simulator's execution counters (shard count,
	// barriers, lookahead, per-shard balance).
	Sim netsim.SimStats
}

// RunWireReplay replays the campus trace end to end through the
// leaf-spine fabric with every corpus checker attached and benignly
// configured, and reports wall-clock throughput plus fast-path usage.
func RunWireReplay(cfg WireReplayConfig) (WireReplayResult, error) {
	if cfg.Packets == 0 {
		cfg.Packets = 50_000
	}
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		LinkBps: 100_000_000_000, // headroom: CPU-shaped, not line-blocked
	})
	replayHost, sink := ls.Host(0, 0), ls.Host(1, 0)
	for l, leaf := range ls.Leaves {
		p := &netsim.L3Program{}
		if l == 0 {
			p.AddRoute(0, 0, 1, 2) // ECMP to spines
		} else {
			p.AddRoute(0, 0, 3) // to the sink
		}
		leaf.Forwarding = p
	}
	for _, spine := range ls.Spines {
		p := &netsim.L3Program{}
		p.AddRoute(0, 0, 2) // toward leaf2
		spine.Forwarding = p
	}

	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: cfg.Seed})
	pkts := make([]trafficgen.Packet, cfg.Packets)
	seen := map[[2]uint32]bool{}
	var pairs [][2]uint32
	for i := range pkts {
		pkts[i] = gen.Next()
		key := [2]uint32{uint32(pkts[i].Src), uint32(pkts[i].Dst)}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}
	atts, err := AttachAllCheckers(ls)
	if err != nil {
		return WireReplayResult{}, err
	}
	if err := AllowFlows(atts, pairs); err != nil {
		return WireReplayResult{}, err
	}

	if cfg.SimShards > 1 {
		if err := sim.Partition(cfg.SimShards); err != nil {
			return WireReplayResult{}, err
		}
	}

	var at netsim.Time
	for i := range pkts {
		p := pkts[i]
		at += p.Gap
		sim.AtNode(replayHost, at, func() { replayHost.SendPacket(p.Decode()) })
	}

	start := time.Now()
	sim.RunAll()
	wall := time.Since(start)
	if wall <= 0 {
		return WireReplayResult{}, fmt.Errorf("experiments: empty wire replay")
	}

	res := WireReplayResult{
		WallPktsPerSec: float64(cfg.Packets) / wall.Seconds(),
		Delivered:      sink.RxUDP + sink.RxTCP,
	}
	res.DeliveredRatio = float64(res.Delivered) / float64(cfg.Packets)
	for _, sw := range ls.AllSwitches() {
		res.ParseErrors += sw.ParseErrors
		res.TxFrames += sw.TxFrames
		res.FastTxFrames += sw.FastTxFrames
		res.SlowTxFrames += sw.SlowTxFrames
	}
	for _, list := range atts {
		for _, att := range list {
			res.Checked += att.Checked
			res.Rejected += att.Rejected
		}
	}
	if res.TxFrames > 0 {
		res.FastShare = float64(res.FastTxFrames) / float64(res.FastTxFrames+res.SlowTxFrames)
	}
	res.Sim = sim.Stats()
	return res, nil
}

// FormatWireReplay renders one wire-replay result.
func FormatWireReplay(r WireReplayResult) string {
	var b strings.Builder
	b.WriteString("Wire: end-to-end campus-trace replay, all checkers benign\n")
	fmt.Fprintf(&b, "%-14s %12s %10s %10s %10s %10s %8s\n",
		"wire_pps", "delivered", "checked", "rejected", "fast_tx", "slow_tx", "errors")
	fmt.Fprintf(&b, "%-14.0f %11.1f%% %10d %10d %10d %10d %8d\n",
		r.WallPktsPerSec, r.DeliveredRatio*100, r.Checked, r.Rejected,
		r.FastTxFrames, r.SlowTxFrames, r.ParseErrors)
	if r.Sim.Shards > 1 {
		fmt.Fprintf(&b, "sim: shards=%d lookahead=%s barriers=%d events=%d balance=%v\n",
			r.Sim.Shards, r.Sim.Lookahead, r.Sim.Barriers, r.Sim.EventsRun, r.Sim.ShardEvents)
	}
	return b.String()
}
