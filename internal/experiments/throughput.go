package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/trafficgen"
)

// ThroughputConfig parameterizes the campus-replay throughput
// comparison (§6.2: the mirrored ~350 Kpps trace replayed towards
// leaf1; throughput "almost identical with around 20 Gb/s").
type ThroughputConfig struct {
	// Packets to replay (default 50,000).
	Packets int
	// PacketsPerSec offered (default 350,000, the paper's trace load).
	PacketsPerSec int
	Seed          int64
}

func (c *ThroughputConfig) fill() {
	if c.Packets == 0 {
		c.Packets = 50_000
	}
	if c.PacketsPerSec == 0 {
		c.PacketsPerSec = 350_000
	}
}

// ThroughputResult is one configuration's outcome.
type ThroughputResult struct {
	OfferedPps     float64
	DeliveredPps   float64
	DeliveredGbps  float64
	DeliveredRatio float64
	// WallPktsPerSec is the software pipeline's processing rate on this
	// machine (an honest software-substrate number; the paper's 6.5 Tb/s
	// switch obviously dwarfs it).
	WallPktsPerSec float64
}

// RunThroughput replays the same synthetic campus trace through the
// fabric twice — baseline and all-checkers — and reports both.
func RunThroughput(cfg ThroughputConfig) (baseline, withCheckers ThroughputResult, err error) {
	cfg.fill()
	baseline, err = runThroughput(cfg, false)
	if err != nil {
		return
	}
	withCheckers, err = runThroughput(cfg, true)
	return
}

func runThroughput(cfg ThroughputConfig, withCheckers bool) (ThroughputResult, error) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		LinkBps: 100_000_000_000, // headroom so the replay is CPU-shaped, not line-blocked
	})
	// Default routes: everything entering leaf1 crosses the fabric to a
	// sink host on leaf2 (the replay's "towards leaf1" direction).
	replayHost, sink := ls.Host(0, 0), ls.Host(1, 0)
	for l, leaf := range ls.Leaves {
		p := &netsim.L3Program{}
		if l == 0 {
			p.AddRoute(0, 0, 1, 2) // ECMP to spines
		} else {
			p.AddRoute(0, 0, 3) // to the sink
		}
		leaf.Forwarding = p
	}
	for _, spine := range ls.Spines {
		p := &netsim.L3Program{}
		p.AddRoute(0, 0, 2) // toward leaf2
		spine.Forwarding = p
	}

	// Pre-generate the trace so the firewall can be seeded with exactly
	// the flows that will appear (the control plane would otherwise
	// learn them via reports).
	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: cfg.Seed, PacketsPerSec: cfg.PacketsPerSec})
	pkts := make([]trafficgen.Packet, cfg.Packets)
	seen := map[[2]uint32]bool{}
	var pairs [][2]uint32
	for i := range pkts {
		pkts[i] = gen.Next()
		key := [2]uint32{uint32(pkts[i].Src), uint32(pkts[i].Dst)}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}

	if withCheckers {
		atts, err := AttachAllCheckers(ls)
		if err != nil {
			return ThroughputResult{}, err
		}
		if err := AllowFlows(atts, pairs); err != nil {
			return ThroughputResult{}, err
		}
	}

	// Schedule the replay.
	var at netsim.Time
	for i := range pkts {
		p := pkts[i]
		at += p.Gap
		sim.At(at, func() { replayHost.SendPacket(p.Decode()) })
	}
	offered := at

	start := time.Now()
	sim.RunAll()
	wall := time.Since(start)

	duration := sim.Now()
	if duration == 0 {
		return ThroughputResult{}, fmt.Errorf("experiments: empty replay")
	}
	delivered := float64(sink.RxUDP + sink.RxTCP)
	res := ThroughputResult{
		OfferedPps:     float64(cfg.Packets) / offered.Seconds(),
		DeliveredPps:   delivered / duration.Seconds(),
		DeliveredGbps:  float64(sink.RxBytes) * 8 / duration.Seconds() / 1e9,
		DeliveredRatio: delivered / float64(cfg.Packets),
		WallPktsPerSec: float64(cfg.Packets) / wall.Seconds(),
	}
	return res, nil
}

// FormatThroughput renders the comparison.
func FormatThroughput(base, chk ThroughputResult) string {
	var b strings.Builder
	b.WriteString("Throughput: campus-trace replay towards leaf1 (§6.2)\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %12s %16s\n", "config", "offered_pps", "delivered_pps", "gbps", "delivered", "sw_pkts_per_s")
	row := func(name string, r ThroughputResult) {
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %14.3f %11.1f%% %16.0f\n",
			name, r.OfferedPps, r.DeliveredPps, r.DeliveredGbps, r.DeliveredRatio*100, r.WallPktsPerSec)
	}
	row("baseline", base)
	row("all-checkers", chk)
	return b.String()
}
