package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/trafficgen"
)

// Fig12Config parameterizes the RTT experiment. The paper runs 30
// minutes of 10 Gb/s bidirectional background with a ping every 0.2 s;
// simulating that verbatim needs billions of events, so the defaults
// scale duration and background down while keeping the mechanism — the
// RTT jitter comes from sharing queues with background traffic, and the
// checker configuration only changes packet sizes by the telemetry
// bytes. EXPERIMENTS.md records the scaling.
type Fig12Config struct {
	// Duration of the measurement (default 5 s of simulated time).
	Duration netsim.Time
	// PingInterval between echo requests (default 10 ms; the paper's
	// 0.2 s cadence over 30 min yields a similar sample count).
	PingInterval netsim.Time
	// BackgroundBps per direction of iperf-like UDP load (default
	// 2 Gb/s on the 10 Gb/s fabric).
	BackgroundBps int64
}

func (c *Fig12Config) fill() {
	if c.Duration == 0 {
		c.Duration = 5 * netsim.Second
	}
	if c.PingInterval == 0 {
		c.PingInterval = 10 * netsim.Millisecond
	}
	if c.BackgroundBps == 0 {
		c.BackgroundBps = 2_000_000_000
	}
}

// RTTSeries is one measured curve of Figure 12a.
type RTTSeries struct {
	// T is the sample time in seconds, RTT the round-trip time in
	// milliseconds.
	T   []float64
	RTT []float64
}

// Fig12Result holds both curves and the statistics of Figure 12b.
type Fig12Result struct {
	Baseline RTTSeries
	Checkers RTTSeries
	// TTest compares the two RTT samples (the paper's criterion: no
	// statistically significant difference).
	TTest stats.TTestResult
}

// runRTT builds the fabric, optionally attaches all checkers, applies
// the background load, and collects ping RTTs.
func runRTT(cfg Fig12Config, withCheckers bool) (RTTSeries, error) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, WithRouting: true,
	})
	pingSrc, pingDst := ls.Host(0, 0), ls.Host(1, 0)
	loadA, loadB := ls.Host(0, 1), ls.Host(1, 1)

	// End-host stack latency dominates the RTT spread on the real
	// testbed (Figure 12's 0.1-0.3 ms band); model it on the hosts the
	// ping traverses, with independent noise per configuration (the two
	// curves on the paper's testbed are separate runs).
	seed := int64(100)
	if withCheckers {
		seed = 200
	}
	for i, h := range []*netsim.Host{pingSrc, pingDst} {
		h.StackBase = 40 * netsim.Microsecond
		h.StackJitter = 25 * netsim.Microsecond
		h.ReseedStack(seed + int64(i))
	}

	if withCheckers {
		atts, err := AttachAllCheckers(ls)
		if err != nil {
			return RTTSeries{}, err
		}
		pairs := [][2]uint32{
			{uint32(pingSrc.IP), uint32(pingDst.IP)},
			{uint32(loadA.IP), uint32(loadB.IP)},
		}
		if err := AllowFlows(atts, pairs); err != nil {
			return RTTSeries{}, err
		}
	}

	// Bidirectional background load across the fabric (the iperf3 setup
	// of §6.2, utilizing the leaf-spine links via ECMP). Poisson
	// arrivals give the queues realistic burstiness.
	up := &trafficgen.UDPLoad{Host: loadA, Dst: loadB.IP, Bps: cfg.BackgroundBps, Sport: 5001, Dport: 5201, Poisson: true, Seed: 1}
	down := &trafficgen.UDPLoad{Host: loadB, Dst: loadA.IP, Bps: cfg.BackgroundBps, Sport: 5002, Dport: 5202, Poisson: true, Seed: 2}
	up.Start(sim, cfg.Duration)
	down.Start(sim, cfg.Duration)

	trafficgen.StartPinger(sim, pingSrc, pingDst.IP, cfg.PingInterval, cfg.Duration)

	sim.Run(cfg.Duration + 100*netsim.Millisecond)

	var out RTTSeries
	for _, s := range pingSrc.RTTs {
		out.T = append(out.T, s.SentAt.Seconds())
		out.RTT = append(out.RTT, float64(s.RTT)/float64(netsim.Millisecond))
	}
	if len(out.RTT) == 0 {
		return out, fmt.Errorf("experiments: no RTT samples collected")
	}
	return out, nil
}

// RunFig12 runs the experiment twice — baseline forwarding and all
// checkers linked — and compares the RTT distributions.
func RunFig12(cfg Fig12Config) (Fig12Result, error) {
	cfg.fill()
	base, err := runRTT(cfg, false)
	if err != nil {
		return Fig12Result{}, err
	}
	chk, err := runRTT(cfg, true)
	if err != nil {
		return Fig12Result{}, err
	}
	tt, err := stats.WelchTTest(base.RTT, chk.RTT)
	if err != nil {
		return Fig12Result{}, err
	}
	return Fig12Result{Baseline: base, Checkers: chk, TTest: tt}, nil
}

// FormatFig12a renders the two RTT-over-time series as aligned columns
// (Figure 12a's data).
func FormatFig12a(r Fig12Result) string {
	var b strings.Builder
	b.WriteString("Figure 12a: RTT over time (ms)\n")
	b.WriteString("time_s baseline_ms all_checkers_ms\n")
	n := len(r.Baseline.T)
	if len(r.Checkers.T) < n {
		n = len(r.Checkers.T)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.3f %.5f %.5f\n", r.Baseline.T[i], r.Baseline.RTT[i], r.Checkers.RTT[i])
	}
	return b.String()
}

// FormatFig12b renders the CDFs plus summary statistics and the t-test
// verdict (Figure 12b's data).
func FormatFig12b(r Fig12Result) string {
	var b strings.Builder
	b.WriteString("Figure 12b: RTT CDF (ms)\n")
	sb, sc := stats.Summarize(r.Baseline.RTT), stats.Summarize(r.Checkers.RTT)
	fmt.Fprintf(&b, "baseline:     n=%d mean=%.5f ms p50=%.5f p99=%.5f\n",
		sb.N, sb.Mean, stats.Percentile(r.Baseline.RTT, 50), stats.Percentile(r.Baseline.RTT, 99))
	fmt.Fprintf(&b, "all checkers: n=%d mean=%.5f ms p50=%.5f p99=%.5f\n",
		sc.N, sc.Mean, stats.Percentile(r.Checkers.RTT, 50), stats.Percentile(r.Checkers.RTT, 99))
	fmt.Fprintf(&b, "welch t-test: %s -> significant at 0.05: %v\n", r.TTest, r.TTest.Significant(0.05))
	b.WriteString("rtt_ms baseline_p checkers_p\n")
	cb, cc := stats.CDF(r.Baseline.RTT), stats.CDF(r.Checkers.RTT)
	n := len(cb)
	if len(cc) < n {
		n = len(cc)
	}
	step := n / 50
	if step == 0 {
		step = 1
	}
	for i := 0; i < n; i += step {
		fmt.Fprintf(&b, "%.5f %.3f %.3f\n", cb[i].X, cb[i].P, cc[i].P)
	}
	return b.String()
}
