// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 1 (expressiveness + Tofino resource overheads),
// Figure 12a/12b (RTT over time and CDF, baseline vs all checkers, with
// the t-test), and the throughput comparison. The same harnesses back
// cmd/hydra-bench and the repository's testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/p4"
	"repro/internal/resources"
)

// Table1Row is one property row: measured values alongside the paper's.
type Table1Row struct {
	Key  string
	Name string

	IndusLoC int
	P4LoC    int
	Stages   int
	PHVPct   float64

	PaperIndusLoC int
	PaperP4LoC    int
	PaperStages   int
	PaperPHVPct   float64
}

// Table1 compiles the full corpus and produces the measured rows
// (excluding the valley-free case-study program, which Table 1 does not
// list).
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range checkers.All {
		if p.PaperIndusLoC == 0 {
			continue
		}
		info, err := p.Parse()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.Key, err)
		}
		prog, err := compiler.Compile(info, compiler.Options{Name: p.Key})
		if err != nil {
			return nil, fmt.Errorf("experiments: compiling %s: %w", p.Key, err)
		}
		rep := resources.Analyze(prog)
		rows = append(rows, Table1Row{
			Key:           p.Key,
			Name:          p.Name,
			IndusLoC:      p.IndusLoC(),
			P4LoC:         p4.LineCount(p4.Emit(prog)),
			Stages:        rep.MergedStages,
			PHVPct:        rep.PHVPct,
			PaperIndusLoC: p.PaperIndusLoC,
			PaperP4LoC:    p.PaperP4LoC,
			PaperStages:   p.PaperStages,
			PaperPHVPct:   p.PaperPHVPct,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows as an aligned text table, paper values
// in parentheses.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Hydra properties — measured (paper)\n")
	fmt.Fprintf(&b, "%-36s %15s %15s %12s %18s\n", "Property", "Indus LoC", "P4 Output LoC", "Stages", "PHV (%)")
	fmt.Fprintf(&b, "%-36s %15s %15s %12s %18s\n", "Baseline (fabric-upf)", "-", "-",
		fmt.Sprintf("%d (%d)", resources.BaselineStages, checkers.BaselineStages),
		fmt.Sprintf("%.2f (%.2f)", resources.BaselinePHVPct, checkers.BaselinePHVPct))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %15s %15s %12s %18s\n",
			r.Name,
			fmt.Sprintf("%d (%d)", r.IndusLoC, r.PaperIndusLoC),
			fmt.Sprintf("%d (%d)", r.P4LoC, r.PaperP4LoC),
			fmt.Sprintf("%d (%d)", r.Stages, r.PaperStages),
			fmt.Sprintf("%.2f (%.2f)", r.PHVPct, r.PaperPHVPct))
	}
	return b.String()
}
