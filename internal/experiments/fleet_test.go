package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/fleet"
)

// TestRunFleetReferenceNonVacuous pins the violation-injection knob:
// skipping every 16th firewall seed pair must raise a non-empty digest
// stream, otherwise the fleet's conservation checks are vacuously true.
func TestRunFleetReferenceNonVacuous(t *testing.T) {
	ref, err := RunFleetReference(8000, 1, 16, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Counts.Reports == 0 {
		t.Fatal("skip-seed-every=16 raised no reports; conservation would be vacuous")
	}
	if len(ref.DigestKeys) == 0 {
		t.Fatal("no aggregates reached the exporter")
	}
	if ref.Unaccounted != 0 {
		t.Fatalf("reference bus unaccounted = %d", ref.Unaccounted)
	}
	var digests uint64
	for _, c := range ref.DigestKeys {
		digests += c
	}
	if digests != ref.Counts.Reports {
		t.Fatalf("digest ledger %d != engine reports %d", digests, ref.Counts.Reports)
	}
}

// TestWriteCampusPcapRoundTrip proves the pcap rendering is lossless:
// reading the file back and parsing each frame recovers exactly the
// flow keys CampusEnginePackets models for the same (n, seed).
func TestWriteCampusPcapRoundTrip(t *testing.T) {
	const n, seed = 500, 3
	path := filepath.Join(t.TempDir(), "campus.pcap")
	if err := WriteCampusPcap(path, n, seed); err != nil {
		t.Fatal(err)
	}
	src, err := fleet.OpenPcap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	want, _ := CampusEnginePackets(n, seed)
	var dec dataplane.Decoded
	for i := 0; i < n; i++ {
		frame, err := src.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := dataplane.ParseInto(&dec, frame); err != nil {
			t.Fatalf("frame %d does not parse: %v", i, err)
		}
		if got := dataplane.FlowKeyOf(&dec); got != want[i].Key {
			t.Fatalf("frame %d key = %+v, want %+v", i, got, want[i].Key)
		}
		if uint32(len(frame)) != want[i].Len {
			t.Fatalf("frame %d len = %d, want %d", i, len(frame), want[i].Len)
		}
	}
	if _, err := src.Next(); err == nil {
		t.Fatal("capture has extra frames")
	}
}

// TestFleetExecParity is the end-to-end acceptance check: spawn the
// three daemons, replay a campus pcap through the process tree, and
// require exact verdict-multiset, counts, and digest parity with the
// in-process engine plus fleet-wide conservation.
func TestFleetExecParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process tree")
	}
	res, err := RunFleet(FleetConfig{Packets: 4000, Workers: 2, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(FormatFleet(res))
	if !res.VerdictParity || !res.CountsParity || !res.DigestParity {
		t.Fatalf("parity failed: verdicts=%v counts=%v digests=%v",
			res.VerdictParity, res.CountsParity, res.DigestParity)
	}
	if !res.Conserved || !res.IngestClean {
		t.Fatalf("conservation failed: conserved=%v ingestClean=%v ingest=%+v",
			res.Conserved, res.IngestClean, res.Ingest)
	}
	if res.Report.ReceivedDigests == 0 {
		t.Fatal("no digests crossed the wire; the parity check is vacuous")
	}
}

// TestFleetExecSoak kills worker 0 mid-stream and restarts it on the
// same address: the run must stay conserved for every summarized
// session, with the lost in-flight packets itemized by the ingest.
func TestFleetExecSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a process tree")
	}
	res, err := RunFleet(FleetConfig{Packets: 30_000, Workers: 2, Loops: 2, Seed: 1, Kill: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(FormatFleet(res))
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Kills)
	}
	if !res.Conserved {
		t.Fatalf("soak run not conserved: %+v", res.Report)
	}
	if res.Ingest.Reconnects == 0 {
		t.Fatal("ingest never reconnected after the kill")
	}
	var dropped uint64
	for _, v := range res.Ingest.Dropped {
		dropped += v
	}
	if res.Ingest.Acked+dropped != res.Ingest.Packets {
		t.Fatalf("ingest accounting leak: acked %d + dropped %d != assigned %d",
			res.Ingest.Acked, dropped, res.Ingest.Packets)
	}
}
