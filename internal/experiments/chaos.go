package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/atoms"
	"repro/internal/checkers"
	"repro/internal/controlplane"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
	"repro/internal/trafficgen"
)

// The chaos experiment replays the campus workload once per fault
// class (plus a healthy baseline) and scores every corpus checker as a
// detector: which checkers raise digests under which faults. The whole
// run is a pure function of (seed, config) — virtual-time bus, seeded
// injectors, deterministic simulator at every shard count — so the
// detection matrix is byte-reproducible (TestChaosDeterministic),
// shard-invariant (TestChaosShardInvariant), and CI can assert on it
// (TestChaosDetectionMatrix).

// ChaosConfig parameterizes the chaos replay.
type ChaosConfig struct {
	// Packets per scenario pass (default 20,000).
	Packets int
	// Seed drives the traffic generator and, via faults.SubSeed, every
	// fault injector (default 1).
	Seed int64
	// FaultRate is the per-packet/per-frame probability for the
	// probabilistic fault classes (default 0.02).
	FaultRate float64
	// Window is the bus aggregation window in virtual nanoseconds
	// (default 1ms of simulated time).
	Window time.Duration
	// Classes selects which fault classes to run (default all).
	Classes []faults.Class
	// SimShards partitions the simulator into parallel shard loops
	// (<=1 = sequential fast path). The detection matrix is
	// byte-identical at every shard count.
	SimShards int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Packets == 0 {
		c.Packets = 20_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultRate == 0 {
		c.FaultRate = 0.02
	}
	if c.Window <= 0 {
		c.Window = time.Duration(netsim.Millisecond)
	}
	if c.Classes == nil {
		c.Classes = faults.Classes()
	}
	return c
}

// ExpectedDetectors maps each fault class to the corpus checkers that
// must detect it (raise at least one digest) in the chaos replay. The
// wire-level classes — drop, duplicate, reorder, flap — are honestly
// absent: Hydra's per-packet path checkers verify properties of packets
// that arrive, so pure loss, duplication of a valid packet, and
// reordering are invisible to them (detecting absence needs the flow
// checkers of §4.4, future work). Corrupt is seed-dependent — which
// checker fires depends on which bits flip — so it carries no required
// detectors either; its firings are recorded as collateral.
var ExpectedDetectors = map[faults.Class][]string{
	faults.Misroute:       {"loop-freedom", "routing-validity"},
	faults.TeleRewrite:    {"routing-validity", "waypointing"},
	faults.Crash:          {"egress-validity", "stateful-firewall", "vlan-isolation"},
	faults.StaleTable:     {"vlan-isolation"},
	faults.PartialInstall: {"stateful-firewall"},
	faults.DelayedInstall: {"stateful-firewall"},
}

// ExpectedStatic maps each fault class to whether the static layer —
// the atoms route verifier plus the control-install audit — must flag
// it before a single packet flows. Misroute is mirrored into the
// verifier as the route-table state the fault emulates, so it surfaces
// as a forwarding loop; partial-install and delayed-install are
// withheld or late control installs the audit sees as missing intents.
// The remaining classes are invisible statically by design: the wire
// faults (drop, corrupt, duplicate, reorder, flap) and the runtime
// state faults (crash's register wipe, stale-table's direct mutation)
// never pass through the observed control plane, which is exactly why
// Hydra pairs static verification with runtime checking.
var ExpectedStatic = map[faults.Class]bool{
	faults.Misroute:       true,
	faults.PartialInstall: true,
	faults.DelayedInstall: true,
}

// ScenarioResult is one scenario's row of the detection matrix. Every
// field is virtual-time deterministic; wall-clock throughput lives
// outside the matrix (ChaosResult.WallPPS).
type ScenarioResult struct {
	// Class is the fault class, or "baseline" for the healthy run.
	Class string `json:"class"`
	// Injected counts the fault events actually applied, by kind
	// (e.g. "drops", "misroutes", "withheld_pairs").
	Injected map[string]uint64 `json:"injected,omitempty"`
	// Delivered is the sink host's received packet count.
	Delivered uint64 `json:"delivered"`
	// ParseErrors sums the switches' undecodable-frame and
	// checker-execution-error counters (corruption shows up here).
	ParseErrors uint64 `json:"parse_errors,omitempty"`
	// Digests counts raised digests per checker (bus tap).
	Digests map[string]uint64 `json:"digests,omitempty"`
	// Rejected counts checker-rejected packets per checker — recorded
	// for the reject-only checkers, though detection is scored on
	// digests.
	Rejected map[string]uint64 `json:"rejected,omitempty"`
	// Detected/Missed partition the class's expected detectors by
	// whether they raised a digest; Collateral lists unexpected
	// checkers that fired (legitimate cross-detections, not false
	// positives — a real fault was active).
	Detected   []string `json:"detected,omitempty"`
	Missed     []string `json:"missed,omitempty"`
	Collateral []string `json:"collateral,omitempty"`
}

// CheckerSummary aggregates one checker's detection record across the
// whole campaign.
type CheckerSummary struct {
	// TP counts fault scenarios where the checker was an expected
	// detector and raised a digest.
	TP int `json:"tp"`
	// FP counts digests the checker raised on the healthy baseline —
	// must be zero for every checker.
	FP uint64 `json:"fp"`
	// Missed counts fault scenarios where the checker was expected but
	// silent.
	Missed int `json:"missed"`
	// Collateral counts fault scenarios where the checker fired without
	// being the class's expected detector.
	Collateral int `json:"collateral"`
}

// ChaosMatrix is the serializable detection matrix: byte-identical
// across runs with the same seed and config (json.Marshal sorts map
// keys; slices are sorted explicitly; no wall-clock anywhere).
type ChaosMatrix struct {
	Seed      int64                     `json:"seed"`
	Packets   int                       `json:"packets"`
	FaultRate float64                   `json:"fault_rate"`
	Baseline  ScenarioResult            `json:"baseline"`
	Scenarios []ScenarioResult          `json:"scenarios"`
	Checkers  map[string]CheckerSummary `json:"checkers"`
}

// JSON renders the canonical byte-reproducible form of the matrix.
func (m ChaosMatrix) JSON() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// StaticScenario is the static-verification row of one chaos scenario:
// what the atoms route verifier and the control-install audit concluded
// from control-plane state alone, snapshotted after fault arming but
// before the first packet is replayed.
type StaticScenario struct {
	// Class is the fault class, or "baseline" for the healthy run.
	Class string `json:"class"`
	// RouteUpdates counts the route events replayed into the verifier
	// (the fabric FIBs plus, for misroute, the mirrored bad route).
	RouteUpdates uint64 `json:"route_updates"`
	// Atoms is the settled size of the destination-space partition.
	Atoms int `json:"atoms"`
	// Digests counts the atoms digests published on the static report
	// bus while the FIBs were replayed.
	Digests uint64 `json:"digests,omitempty"`
	// Violations is the verifier's outstanding set, rendered.
	Violations []string `json:"violations,omitempty"`
	// MissingInstalls counts declared control intents with no applied
	// install at snapshot time.
	MissingInstalls int `json:"missing_installs,omitempty"`
	// Expected and Detected say whether the class must be — and was —
	// flagged statically (any violation or missing install).
	Expected bool `json:"expected"`
	Detected bool `json:"detected"`
}

// StaticMatrix aggregates the static rows of a chaos campaign. It is
// byte-reproducible exactly like ChaosMatrix but serialized separately,
// so the runtime detection matrix golden stays byte-identical to its
// pre-static pinning.
type StaticMatrix struct {
	Seed      int64            `json:"seed"`
	Packets   int              `json:"packets"`
	FaultRate float64          `json:"fault_rate"`
	Baseline  StaticScenario   `json:"baseline"`
	Scenarios []StaticScenario `json:"scenarios"`
}

// JSON renders the canonical byte-reproducible form of the static
// matrix.
func (m StaticMatrix) JSON() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// ChaosResult pairs the matrix with the static verdicts and the
// wall-clock throughput of each scenario (kept out of both matrices so
// reproducibility is exact).
type ChaosResult struct {
	Config  ChaosConfig
	Matrix  ChaosMatrix
	Static  StaticMatrix
	WallPPS map[string]float64
}

// RunChaos replays the campus workload under every configured fault
// class and scores the corpus checkers.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	out := ChaosResult{Config: cfg, WallPPS: map[string]float64{}}

	base, baseStatic, pps, err := runChaosScenario(cfg, "")
	if err != nil {
		return out, fmt.Errorf("experiments: chaos baseline: %w", err)
	}
	out.WallPPS[base.Class] = pps

	m := ChaosMatrix{
		Seed:      cfg.Seed,
		Packets:   cfg.Packets,
		FaultRate: cfg.FaultRate,
		Baseline:  base,
		Checkers:  map[string]CheckerSummary{},
	}
	sm := StaticMatrix{
		Seed:      cfg.Seed,
		Packets:   cfg.Packets,
		FaultRate: cfg.FaultRate,
		Baseline:  baseStatic,
	}
	for _, class := range cfg.Classes {
		sc, st, pps, err := runChaosScenario(cfg, class)
		if err != nil {
			return out, fmt.Errorf("experiments: chaos %s: %w", class, err)
		}
		out.WallPPS[sc.Class] = pps
		m.Scenarios = append(m.Scenarios, sc)
		sm.Scenarios = append(sm.Scenarios, st)
	}

	in := func(list []string, name string) bool {
		for _, s := range list {
			if s == name {
				return true
			}
		}
		return false
	}
	for _, p := range checkers.All {
		s := CheckerSummary{FP: base.Digests[p.Key]}
		for _, sc := range m.Scenarios {
			if in(sc.Detected, p.Key) {
				s.TP++
			}
			if in(sc.Missed, p.Key) {
				s.Missed++
			}
			if in(sc.Collateral, p.Key) {
				s.Collateral++
			}
		}
		m.Checkers[p.Key] = s
	}
	out.Matrix = m
	out.Static = sm
	return out, nil
}

// runChaosScenario runs one replay pass with the given fault class
// injected ("" = healthy baseline) and scores the digests raised
// against the class's expected detectors. Alongside the runtime pass
// it runs the static layer — an atoms verifier over the fabric FIBs
// and an install audit on the controller — and snapshots its verdict
// before the first packet flows.
func runChaosScenario(cfg ChaosConfig, class faults.Class) (ScenarioResult, StaticScenario, float64, error) {
	res := ScenarioResult{
		Class:    string(class),
		Injected: map[string]uint64{},
		Digests:  map[string]uint64{},
		Rejected: map[string]uint64{},
	}
	if class == "" {
		res.Class = "baseline"
	}
	st := StaticScenario{Class: res.Class, Expected: ExpectedStatic[class]}

	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		LinkBps: 100_000_000_000,
	})
	replayHost, sink := ls.Host(0, 0), ls.Host(1, 0)
	for l, leaf := range ls.Leaves {
		p := &netsim.L3Program{}
		if l == 0 {
			p.AddRoute(0, 0, 1, 2)
		} else {
			p.AddRoute(0, 0, 3)
		}
		leaf.Forwarding = p
	}
	for _, spine := range ls.Spines {
		p := &netsim.L3Program{}
		p.AddRoute(0, 0, 2)
		spine.Forwarding = p
	}

	// Virtual-time bus; the tap counts every raised digest per checker.
	// Bus taps fire outside the bus mutex, and with a partitioned
	// simulator switches on different shards publish concurrently, so
	// the count map needs its own lock. The resulting counts are still
	// shard-invariant: each switch raises the same digests in the same
	// per-switch order at every shard count.
	bus := reportbus.New(reportbus.Config{
		Window: cfg.Window,
		Clock:  func() int64 { return int64(sim.Now()) },
	})
	var digestMu sync.Mutex
	bus.Tap(func(d reportbus.Digest) {
		digestMu.Lock()
		res.Digests[d.Checker]++
		digestMu.Unlock()
	})
	ctl := controlplane.NewControllerWith(controlplane.Config{Bus: bus, RetainPerChecker: -1})

	// Static layer, part 1: the install audit observes every control
	// mutation the controller actually applies, to cross-check against
	// the declared per-pair firewall intents — withheld and late
	// installs show up as missing. Attached before any install so it
	// sees them all.
	audit := atoms.NewAudit()
	ctl.Observer = audit

	all := ls.AllSwitches()
	for _, p := range checkers.All {
		info, err := p.Parse()
		if err != nil {
			return res, st, 0, err
		}
		if err := ctl.Deploy(p.Key, info, all...); err != nil {
			return res, st, 0, err
		}
	}
	sws := make([]SwitchInfo, len(all))
	for i, sw := range all {
		sws[i] = SwitchInfo{ID: sw.ID, IsLeaf: i < len(ls.Leaves)}
	}
	err := ConfigureBenign(sws, func(checker string, swIdx int, fn func(*pipeline.State) error) error {
		att, err := ctl.Attachment(checker, sws[swIdx].ID)
		if err != nil {
			return err
		}
		return fn(att.State)
	})
	if err != nil {
		return res, st, 0, err
	}

	// Static layer, part 2: an atoms verifier watches every fabric FIB
	// (Watch replays the already-installed routes) and checks loop
	// freedom and sink reachability from the route tables alone. Its
	// digests ride a private bus so the runtime detection matrix —
	// golden-pinned — is untouched. Wired before fault arming: WrapNode
	// swaps the forwarding program, so watching must come first.
	ver := atoms.New()
	var staticDigests uint64
	sbus := reportbus.New(reportbus.Config{
		Window: cfg.Window,
		Clock:  func() int64 { return int64(sim.Now()) },
	})
	sbus.Tap(func(reportbus.Digest) { staticDigests++ })
	atoms.Publish(ver, sbus.InlineProducer("static"), sbus.Now)
	atoms.WatchFabric(ver, all)
	ver.ExpectHost(sink.IP)

	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: cfg.Seed})
	pkts := make([]trafficgen.Packet, cfg.Packets)
	seen := map[[2]uint32]bool{}
	var pairs [][2]uint32
	var span netsim.Time
	for i := range pkts {
		pkts[i] = gen.Next()
		span += pkts[i].Gap
		key := [2]uint32{uint32(pkts[i].Src), uint32(pkts[i].Dst)}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, key)
		}
	}

	// Static layer, part 3: declare the control intents — every unique
	// flow pair, both directions, on every switch — before the seeding
	// fault site runs, so withheld installs are auditable.
	swIDs := make([]uint32, len(all))
	for i, sw := range all {
		swIDs[i] = sw.ID
	}
	for _, p := range pairs {
		audit.Expect("stateful-firewall", "allowed", []uint64{uint64(p[0]), uint64(p[1])}, swIDs...)
		audit.Expect("stateful-firewall", "allowed", []uint64{uint64(p[1]), uint64(p[0])}, swIDs...)
	}

	// deferredErr carries failures out of fault callbacks that fire
	// mid-simulation.
	var deferredErr error
	fail := func(err error) {
		if err != nil && deferredErr == nil {
			deferredErr = err
		}
	}

	// Firewall seeding is itself a fault site: the partial-install class
	// withholds a deterministic subset of pairs, the delayed-install
	// class installs everything only at mid-replay. Seeding goes through
	// the controller's typed install path so the audit observes what was
	// actually delivered; the installed entries are identical to
	// FirewallSeed's (a boolean true per direction).
	seedSwitches := func(pairs [][2]uint32) error {
		for _, sw := range all {
			for _, p := range pairs {
				for _, k := range [][]uint64{
					{uint64(p[0]), uint64(p[1])},
					{uint64(p[1]), uint64(p[0])},
				} {
					if err := ctl.PutDict("stateful-firewall", sw.ID, "allowed", k, 1); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	switch class {
	case faults.PartialInstall:
		withheld := faults.Withhold(faults.SubSeed(cfg.Seed, "partial-install"), len(pairs), cfg.FaultRate)
		any := false
		for _, w := range withheld {
			any = any || w
		}
		if !any && len(withheld) > 0 {
			// A tiny rate may select nothing; the scenario must not be
			// vacuous, so deterministically withhold the first pair.
			withheld[0] = true
		}
		kept := pairs[:0:0]
		for i, p := range pairs {
			if withheld[i] {
				res.Injected["withheld_pairs"]++
				continue
			}
			kept = append(kept, p)
		}
		if err := seedSwitches(kept); err != nil {
			return res, st, 0, err
		}
	case faults.DelayedInstall:
		res.Injected["delayed_pairs"] = uint64(len(pairs))
		sim.At(span/2, func() { fail(seedSwitches(pairs)) })
	default:
		if err := seedSwitches(pairs); err != nil {
			return res, st, 0, err
		}
	}

	// Fault placement. Link faults sit on both of leaf-1's uplinks (ECMP
	// splits flows across the spines, the fault must see them all); node
	// faults target spine 1 (mid-path misbehavior) except crash, which
	// takes down leaf 2 — the last hop, where the checker block runs.
	var lf *faults.LinkFaults
	var nf *faults.NodeFaults
	var linkCfg faults.LinkFaultConfig
	switch class {
	case faults.Drop:
		linkCfg.DropRate = cfg.FaultRate
	case faults.Corrupt:
		linkCfg.CorruptRate = cfg.FaultRate
	case faults.Duplicate:
		linkCfg.DupRate = cfg.FaultRate
		linkCfg.DupDelay = 10 * netsim.Microsecond
	case faults.Reorder:
		linkCfg.ReorderRate = cfg.FaultRate
		linkCfg.ReorderJitter = 20 * netsim.Microsecond
	case faults.Flap:
		// The link is down for the first 1/80 of every span/8 — eight
		// outages of 10% duty over the replay.
		linkCfg.FlapPeriod = span / 8
		linkCfg.FlapDown = span / 80
	}
	switch class {
	case faults.Drop, faults.Corrupt, faults.Duplicate, faults.Reorder, faults.Flap:
		lf = faults.NewLinkFaults(faults.SubSeed(cfg.Seed, "link:"+string(class)), linkCfg)
		ls.Up[0][0].Fault = lf
		ls.Up[0][1].Fault = lf
	case faults.Misroute:
		// Spine 1 bounces packets back out port 1 toward leaf 1: the
		// revisit shows up in the path telemetry.
		nf = faults.WrapNode(ls.Spines[0], faults.SubSeed(cfg.Seed, "node:misroute"), faults.NodeFaultConfig{
			MisrouteRate: cfg.FaultRate,
			MisroutePort: 1,
		})
		// Mirror the fault into the verifier as the route-table state it
		// emulates — the spine's default pointing back at leaf 1 — so the
		// static layer sees what a buggy controller would have installed:
		// a forwarding loop, caught before any packet flows.
		ver.Install(ls.Spines[0].ID, 0, 0, []int{1})
	case faults.TeleRewrite:
		nf = faults.WrapNode(ls.Spines[0], faults.SubSeed(cfg.Seed, "node:tele-rewrite"), faults.NodeFaultConfig{
			TeleRewriteRate: cfg.FaultRate,
		})
	case faults.Crash:
		// Leaf 2 is down for [30%, 50%) of the replay (blackhole), then
		// restarts with every checker's registers and tables wiped — the
		// control plane does not reinstall, so every post-restart packet
		// is checked against factory state.
		crashAt, crashUntil := span*3/10, span/2
		nf = faults.WrapNode(ls.Leaves[1], 0, faults.NodeFaultConfig{
			CrashAt: crashAt, CrashUntil: crashUntil,
		})
		id := ls.Leaves[1].ID
		sim.At(crashUntil, func() {
			res.Injected["wiped_attachments"] = uint64(ctl.WipeSwitch(id))
		})
	case faults.StaleTable:
		// Spine 1's VLAN membership table loses its entries at 40% of the
		// replay — the stale state a crashed controller connection leaves
		// behind.
		id := ls.Spines[0].ID
		sim.At(span*2/5, func() {
			att, err := ctl.Attachment("vlan-isolation", id)
			if err != nil {
				fail(err)
				return
			}
			tbl := att.State.Tables["vlan_members"]
			res.Injected["stale_cleared_entries"] = uint64(tbl.Len())
			tbl.Clear()
		})
	}

	// Static verdict: snapshotted before the first packet flows. For
	// delayed-install the seeding is still scheduled, so every declared
	// pair is missing here — exactly the pre-traffic gap the static
	// layer exists to flag.
	stats := ver.Stats()
	st.RouteUpdates = stats.Updates
	st.Atoms = stats.Atoms
	st.Digests = staticDigests
	for _, x := range ver.Outstanding() {
		st.Violations = append(st.Violations, x.String())
	}
	st.MissingInstalls = len(audit.Missing())
	st.Detected = len(st.Violations) > 0 || st.MissingInstalls > 0

	if cfg.SimShards > 1 {
		if err := sim.Partition(cfg.SimShards); err != nil {
			return res, st, 0, err
		}
	}

	var at netsim.Time
	for i := range pkts {
		p := pkts[i]
		at += p.Gap
		sim.AtNode(replayHost, at, func() { replayHost.SendPacket(p.Decode()) })
	}

	start := time.Now()
	sim.RunAll()
	wall := time.Since(start)
	ctl.Close()
	if deferredErr != nil {
		return res, st, 0, deferredErr
	}

	res.Delivered = sink.RxUDP + sink.RxTCP
	for _, sw := range all {
		res.ParseErrors += sw.ParseErrors
	}
	if lf != nil {
		inj := map[string]uint64{
			"drops": lf.Dropped, "corrupted": lf.Corrupted,
			"duplicated": lf.Duplicated, "reordered": lf.Reordered,
			"flap_drops": lf.FlapDropped,
		}
		for k, v := range inj {
			if v > 0 {
				res.Injected[k] = v
			}
		}
	}
	if nf != nil {
		inj := map[string]uint64{
			"misroutes": nf.Misrouted, "tele_rewrites": nf.Rewritten,
			"crash_drops": nf.CrashDropped,
		}
		for k, v := range inj {
			if v > 0 {
				res.Injected[k] = v
			}
		}
	}
	for _, p := range checkers.All {
		if n := ctl.Rejected(p.Key); n > 0 {
			res.Rejected[p.Key] = n
		}
	}

	expected := ExpectedDetectors[class]
	expSet := map[string]bool{}
	for _, e := range expected {
		expSet[e] = true
		if res.Digests[e] > 0 {
			res.Detected = append(res.Detected, e)
		} else {
			res.Missed = append(res.Missed, e)
		}
	}
	for name := range res.Digests {
		if !expSet[name] {
			res.Collateral = append(res.Collateral, name)
		}
	}
	sort.Strings(res.Detected)
	sort.Strings(res.Missed)
	sort.Strings(res.Collateral)

	pps := 0.0
	if wall > 0 {
		pps = float64(cfg.Packets) / wall.Seconds()
	}
	return res, st, pps, nil
}

// FormatChaos renders the chaos campaign for hydra-bench output.
func FormatChaos(r ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: campus replay under seeded faults (seed=%d rate=%g packets=%d)\n",
		r.Matrix.Seed, r.Matrix.FaultRate, r.Matrix.Packets)
	fmt.Fprintf(&b, "%-16s %9s %10s %8s %12s  %s\n",
		"class", "injected", "delivered", "digests", "pps", "detected (missed) [collateral]")
	row := func(sc ScenarioResult) {
		var injected, digests uint64
		for _, v := range sc.Injected {
			injected += v
		}
		for _, v := range sc.Digests {
			digests += v
		}
		var tail []string
		if len(sc.Detected) > 0 {
			tail = append(tail, strings.Join(sc.Detected, ","))
		}
		if len(sc.Missed) > 0 {
			tail = append(tail, "("+strings.Join(sc.Missed, ",")+")")
		}
		if len(sc.Collateral) > 0 {
			tail = append(tail, "["+strings.Join(sc.Collateral, ",")+"]")
		}
		if len(tail) == 0 {
			tail = append(tail, "-")
		}
		fmt.Fprintf(&b, "%-16s %9d %10d %8d %12.0f  %s\n",
			sc.Class, injected, sc.Delivered, digests, r.WallPPS[sc.Class], strings.Join(tail, " "))
	}
	row(r.Matrix.Baseline)
	for _, sc := range r.Matrix.Scenarios {
		row(sc)
	}

	b.WriteString("static (atoms route verifier + install audit), pre-traffic verdicts:\n")
	fmt.Fprintf(&b, "  %-16s %9s %6s %11s %8s  %s\n",
		"class", "updates", "atoms", "violations", "missing", "verdict")
	srow := func(s StaticScenario) {
		verdict := "silent"
		switch {
		case s.Expected && s.Detected:
			verdict = "detected"
		case s.Expected:
			verdict = "MISSED"
		case s.Detected:
			verdict = "FALSE POSITIVE"
		}
		fmt.Fprintf(&b, "  %-16s %9d %6d %11d %8d  %s\n",
			s.Class, s.RouteUpdates, s.Atoms, len(s.Violations), s.MissingInstalls, verdict)
	}
	srow(r.Static.Baseline)
	for _, s := range r.Static.Scenarios {
		srow(s)
	}

	b.WriteString("per-checker: tp/fp/missed/collateral\n")
	names := make([]string, 0, len(r.Matrix.Checkers))
	for name := range r.Matrix.Checkers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Matrix.Checkers[name]
		fmt.Fprintf(&b, "  %-18s %d/%d/%d/%d\n", name, s.TP, s.FP, s.Missed, s.Collateral)
	}
	return b.String()
}
