package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/checkers"
	"repro/internal/difftest"
	"repro/internal/symexec"
	"repro/internal/trafficgen"
)

// SymcheckConfig drives the symbolic backend-equivalence run: explore
// each corpus checker's modeled trace space symbolically, then replay
// every explored path and frontier witness through all three backends
// (reference interpreter, map pipeline, linked pipeline), checking the
// concrete outcome byte-for-byte against the symbolic prediction.
type SymcheckConfig struct {
	// Checkers selects corpus keys; empty means the whole corpus.
	Checkers []string
	// MaxPathsPerInstance / SolverNodes bound the exploration (zero
	// means the symexec defaults).
	MaxPathsPerInstance int
	SolverNodes         int
	// FrontierDir, when set, writes the violation-frontier corpus as
	// one JSON seed file per checker.
	FrontierDir string
	// FuzzSeedDir, when set, writes one FuzzParse seed per checker:
	// the first frontier-violating packet rendered onto the wire.
	FuzzSeedDir string
}

// SymcheckCounterexample is a backend divergence found by replay.
type SymcheckCounterexample struct {
	Detail    string        `json:"detail"`
	Trace     symexec.Trace `json:"trace"`
	Minimized symexec.Trace `json:"minimized"`
}

// SymcheckRow is one checker's verdict.
type SymcheckRow struct {
	Checker       string `json:"checker"`
	Instances     int    `json:"instances"`
	Paths         int    `json:"paths"`
	FrontierPairs int    `json:"frontier_pairs"`
	Replayed      int    `json:"replayed"`
	FlipsSolved   int    `json:"flips_solved"`
	FlipsUnsat    int    `json:"flips_unsat"`
	FlipsUnknown  int    `json:"flips_unknown"`
	// Complete: the bounded space was fully explored (no solver
	// give-ups, no path caps).
	Complete bool `json:"complete"`
	// Equivalent: no backend disagreed with another on any replay.
	Equivalent bool `json:"equivalent"`
	// ModelFaithful: the symbolic prediction (verdict, report args,
	// final blob) matched the backends on every replay.
	ModelFaithful bool     `json:"model_faithful"`
	Notes         []string `json:"notes,omitempty"`

	Counterexample *SymcheckCounterexample `json:"counterexample,omitempty"`
}

// Passed is the per-checker acceptance bar: equivalence proven over a
// completely explored space, with a non-empty violation frontier.
func (r SymcheckRow) Passed() bool {
	return r.Equivalent && r.ModelFaithful && r.Complete && r.FrontierPairs > 0
}

// SymcheckResult is the full run.
type SymcheckResult struct {
	Rows   []SymcheckRow `json:"rows"`
	Passed bool          `json:"passed"`
}

// RunSymcheck explores and replays every selected checker.
func RunSymcheck(cfg SymcheckConfig) (SymcheckResult, error) {
	keys := cfg.Checkers
	if len(keys) == 0 {
		for _, p := range checkers.All {
			keys = append(keys, p.Key)
		}
	}
	res := SymcheckResult{Passed: true}
	for _, key := range keys {
		row, frontier, err := symcheckOne(key, cfg)
		if err != nil {
			return SymcheckResult{}, fmt.Errorf("symcheck %s: %w", key, err)
		}
		if cfg.FrontierDir != "" && len(frontier) > 0 {
			if err := difftest.WriteFrontierFile(cfg.FrontierDir, difftest.FrontierFile{Checker: key, Pairs: frontier}); err != nil {
				return SymcheckResult{}, fmt.Errorf("symcheck %s: write frontier: %w", key, err)
			}
		}
		if cfg.FuzzSeedDir != "" && len(frontier) > 0 {
			if err := writeFuzzSeed(cfg.FuzzSeedDir, key, frontier[0].Violate); err != nil {
				return SymcheckResult{}, fmt.Errorf("symcheck %s: write fuzz seed: %w", key, err)
			}
		}
		res.Rows = append(res.Rows, row)
		if !row.Passed() {
			res.Passed = false
		}
	}
	return res, nil
}

func symcheckOne(key string, cfg SymcheckConfig) (SymcheckRow, []symexec.FrontierPair, error) {
	ex, err := symexec.ForChecker(key, symexec.Config{
		MaxPathsPerInstance: cfg.MaxPathsPerInstance,
		SolverNodes:         cfg.SolverNodes,
	})
	if err != nil {
		return SymcheckRow{}, nil, err
	}
	sym, err := ex.Explore()
	if err != nil {
		return SymcheckRow{}, nil, err
	}
	comp, err := difftest.CompileCorpus(key)
	if err != nil {
		return SymcheckRow{}, nil, err
	}
	model := checkers.SymModelFor(key)
	replay := func(tr symexec.Trace) (difftest.Outcome, error) {
		r := comp.NewRunner()
		if err := r.ApplyModel(model); err != nil {
			return difftest.Outcome{}, err
		}
		return r.RunTrace(difftest.HopSpecs(tr))
	}

	row := SymcheckRow{
		Checker:       key,
		Instances:     sym.Instances,
		Paths:         len(sym.Paths),
		FrontierPairs: len(sym.Frontier),
		FlipsSolved:   sym.FlipsSolved,
		FlipsUnsat:    sym.FlipsUnsat,
		FlipsUnknown:  sym.FlipsUnknown,
		Complete:      sym.Complete,
		Equivalent:    true,
		ModelFaithful: true,
		Notes:         sym.Notes,
	}
	note := func(format string, args ...any) {
		if len(row.Notes) < 8 {
			row.Notes = append(row.Notes, fmt.Sprintf(format, args...))
		}
	}
	diverged := func(tr symexec.Trace, err error) {
		row.Equivalent = false
		min := symexec.Minimize(tr, func(t symexec.Trace) bool {
			_, e := replay(t)
			var d *difftest.Divergence
			return errors.As(e, &d)
		})
		row.Counterexample = &SymcheckCounterexample{Detail: err.Error(), Trace: tr, Minimized: min}
	}

	for _, p := range sym.Paths {
		if row.Counterexample != nil {
			break
		}
		out, err := replay(p.Trace)
		var d *difftest.Divergence
		if errors.As(err, &d) {
			diverged(p.Trace, err)
			break
		}
		if err != nil {
			return SymcheckRow{}, nil, err
		}
		row.Replayed++
		if out.Reject != p.Verdict.Reject || len(out.Reports) != p.Verdict.Reports {
			row.ModelFaithful = false
			note("prediction mismatch on %v: predicted %+v, backends reject=%v reports=%d",
				p.Trace.Hops, p.Verdict, out.Reject, len(out.Reports))
			continue
		}
		for i := range out.Reports {
			if len(p.Reports) <= i || !equalU64(out.Reports[i], p.Reports[i]) {
				row.ModelFaithful = false
				note("report args mismatch on %v", p.Trace.Hops)
				break
			}
		}
		if !bytes.Equal(out.FinalBlob, p.FinalBlob) {
			row.ModelFaithful = false
			note("final blob mismatch on %v: predicted %x, backends %x", p.Trace.Hops, p.FinalBlob, out.FinalBlob)
		}
	}

	for _, fp := range sym.Frontier {
		if row.Counterexample != nil {
			break
		}
		for _, side := range []struct {
			tr   symexec.Trace
			want symexec.Verdict
		}{{fp.Conform, fp.ConformVerdict}, {fp.Violate, fp.ViolateVerdict}} {
			out, err := replay(side.tr)
			var d *difftest.Divergence
			if errors.As(err, &d) {
				diverged(side.tr, err)
				break
			}
			if err != nil {
				return SymcheckRow{}, nil, err
			}
			row.Replayed++
			if out.Reject != side.want.Reject || len(out.Reports) != side.want.Reports {
				row.ModelFaithful = false
				note("frontier verdict mismatch on %q", fp.Cond)
			}
		}
	}
	return row, sym.Frontier, nil
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeFuzzSeed renders the first hop of a frontier-violating trace
// onto the wire and writes it as a Go fuzz corpus seed for FuzzParse.
func writeFuzzSeed(dir, key string, tr symexec.Trace) error {
	ex, err := symexec.ForChecker(key, symexec.Config{})
	if err != nil {
		return err
	}
	paths := map[string]string{}
	for _, h := range ex.Headers() {
		paths[h.Name] = h.Path
	}
	hop := tr.Hops[0]
	ah := trafficgen.AdversarialHop{Headers: map[string]uint64{}, PktLen: hop.PktLen}
	for name, v := range hop.Headers {
		ah.Headers[paths[name]] = v
	}
	wire := trafficgen.AdversarialPacket(ah).Decode().Serialize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", string(wire))
	return os.WriteFile(filepath.Join(dir, "frontier_"+key), []byte(content), 0o644)
}

// FormatSymcheck renders the run as the E13 table.
func FormatSymcheck(r SymcheckResult) string {
	var b strings.Builder
	b.WriteString("E13 symcheck: symbolic backend equivalence over the modeled space\n")
	b.WriteString("checker              inst  paths  frontier  flips(sat/unsat/unk)  replayed  status\n")
	for _, row := range r.Rows {
		status := "PROVEN"
		switch {
		case !row.Equivalent:
			status = "DIVERGED"
		case !row.ModelFaithful:
			status = "MODEL-DRIFT"
		case !row.Complete:
			status = "INCOMPLETE"
		case row.FrontierPairs == 0:
			status = "NO-FRONTIER"
		}
		fmt.Fprintf(&b, "%-20s %4d  %5d  %8d  %9s  %8d  %s\n",
			row.Checker, row.Instances, row.Paths, row.FrontierPairs,
			fmt.Sprintf("%d/%d/%d", row.FlipsSolved, row.FlipsUnsat, row.FlipsUnknown),
			row.Replayed, status)
		if row.Counterexample != nil {
			fmt.Fprintf(&b, "  counterexample: %s\n  minimized: %+v\n",
				row.Counterexample.Detail, row.Counterexample.Minimized.Hops)
		}
		for _, n := range row.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
	}
	if r.Passed {
		b.WriteString("all checkers: interpreter = map pipeline = linked pipeline over the modeled space\n")
	} else {
		b.WriteString("FAILED: see rows above\n")
	}
	return b.String()
}
