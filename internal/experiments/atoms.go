package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/atoms"
	"repro/internal/netsim"
)

// E16: incremental control-plane verification under route churn. The
// experiment builds a k-ary fat-tree with its standard routing, replays
// the full FIB into an atoms verifier (the cold-start cost), then
// drives a seeded install/delete churn stream through the switches'
// L3Programs — withdrawing and re-installing host /32s and core pod
// /16s — and measures the per-rule-update verification latency. The
// point of the measurement is the Delta-net property: each update
// rechecks only the atoms its prefix covers (MaxAffected, AvgAffected),
// not the whole partition, so the per-update cost stays flat as the
// fabric grows. Every withdrawal raises a real violation (the discard
// aggregate blackholes the victim) and every reinstall resolves it, so
// the run also exercises the full raise/resolve path and must end
// clean.

// AtomsConfig parameterizes the churn run.
type AtomsConfig struct {
	// K is the fat-tree arity (default 8: 80 switches, 128 hosts).
	K int
	// Updates is the number of route mutations to drive (default 2000).
	// Mutations come in withdraw/reinstall pairs, so the fabric ends in
	// its initial state.
	Updates int
	// Seed drives the churn site selection (default 1).
	Seed int64
}

func (c AtomsConfig) withDefaults() AtomsConfig {
	if c.K == 0 {
		c.K = 8
	}
	if c.Updates == 0 {
		c.Updates = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// AtomsResult is the outcome of one churn run. The counters are a pure
// function of (K, Updates, Seed); only the wall-clock ns fields vary
// across runs.
type AtomsResult struct {
	Config AtomsConfig

	// Fabric shape after watching: switches, expected hosts, live
	// routes, and the settled atom count of the partition.
	Switches int
	Hosts    int
	Routes   int
	Atoms    int

	// ReplayUpdates is the route events replayed at watch time (the
	// whole FIB); ReplayNsPerUpdate is the cold-start cost per event.
	ReplayUpdates    uint64
	ReplayNsPerUpdate float64

	// ChurnUpdates is the mutations driven; ChurnNsPerUpdate is the
	// steady-state incremental verification cost per mutation.
	ChurnUpdates    uint64
	ChurnNsPerUpdate float64

	// MaxAffected/AvgAffected count the atoms rechecked by a single
	// mutation — the partial-recheck proof: both must stay far below
	// Atoms.
	MaxAffected int
	AvgAffected float64

	// Raised/Resolved count violations over the churn (each withdrawal
	// blackholes its victim; each reinstall clears it). Outstanding is
	// the verifier's final violation count and must be zero.
	Raised      uint64
	Resolved    uint64
	Outstanding int
}

// RunAtomsChurn builds the fabric, replays the FIB, and drives the
// churn stream.
func RunAtomsChurn(cfg AtomsConfig) (AtomsResult, error) {
	cfg = cfg.withDefaults()
	res := AtomsResult{Config: cfg}
	k := cfg.K
	half := k / 2

	sim := netsim.NewSimulator()
	ft := netsim.BuildFatTree(sim, netsim.FatTreeConfig{K: k, WithRouting: true})
	v := atoms.New()

	start := time.Now()
	atoms.WatchFabric(v, ft.AllSwitches())
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				v.ExpectHost(netsim.FatTreeHostIP(p, e, h))
				res.Hosts++
			}
		}
	}
	replayWall := time.Since(start)

	st := v.Stats()
	res.Switches = st.Switches
	res.Routes = st.Routes
	res.Atoms = st.Atoms
	res.ReplayUpdates = st.Updates
	if st.Updates > 0 {
		res.ReplayNsPerUpdate = float64(replayWall.Nanoseconds()) / float64(st.Updates)
	}
	if out := v.Outstanding(); len(out) != 0 {
		return res, fmt.Errorf("experiments: k=%d fat-tree routing is not clean before churn: %v", k, out[0])
	}

	// Churn: withdraw/reinstall pairs. Most pairs churn a host /32 on
	// its edge switch; every eighth pair churns a core's pod /16 — a
	// wide update whose recheck spans the pod's atoms, keeping the
	// MaxAffected measurement honest.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var affectedSum, churned uint64
	prevRechecks := v.Stats().Rechecks
	step := func(mutate func()) {
		mutate()
		now := v.Stats().Rechecks
		affected := int(now - prevRechecks)
		prevRechecks = now
		affectedSum += uint64(affected)
		churned++
		if affected > res.MaxAffected {
			res.MaxAffected = affected
		}
	}

	start = time.Now()
	for pair := 0; churned < uint64(cfg.Updates); pair++ {
		p, e, h := rng.Intn(k), rng.Intn(half), rng.Intn(half)
		if pair%8 == 7 {
			g, j := rng.Intn(half), rng.Intn(half)
			prog := ft.Core[g][j].Forwarding.(*netsim.L3Program)
			prefix := netsim.FatTreeHostIP(p, 0, 0) &^ 0xffff
			step(func() { prog.RemoveRoute(prefix, 16) })
			step(func() { prog.AddRoute(prefix, 16, p+1) })
			continue
		}
		prog := ft.Edge[p][e].Forwarding.(*netsim.L3Program)
		host := netsim.FatTreeHostIP(p, e, h)
		step(func() { prog.RemoveRoute(host, 32) })
		step(func() { prog.AddRoute(host, 32, h+1) })
	}
	churnWall := time.Since(start)

	res.ChurnUpdates = churned
	if churned > 0 {
		res.ChurnNsPerUpdate = float64(churnWall.Nanoseconds()) / float64(churned)
		res.AvgAffected = float64(affectedSum) / float64(churned)
	}
	final := v.Stats()
	res.Raised = final.Raised
	res.Resolved = final.Resolved
	res.Outstanding = final.Outstanding
	if res.Outstanding != 0 {
		return res, fmt.Errorf("experiments: churn ended with %d outstanding violations: %v",
			res.Outstanding, v.Outstanding()[0])
	}
	return res, nil
}

// FormatAtoms renders the churn run for hydra-bench output.
func FormatAtoms(r AtomsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Atoms: incremental control-plane verification, k=%d fat-tree (seed=%d)\n",
		r.Config.K, r.Config.Seed)
	fmt.Fprintf(&b, "  fabric: %d switches, %d hosts, %d routes -> %d atoms\n",
		r.Switches, r.Hosts, r.Routes, r.Atoms)
	fmt.Fprintf(&b, "  full-FIB replay: %d updates at %.0f ns/update\n",
		r.ReplayUpdates, r.ReplayNsPerUpdate)
	fmt.Fprintf(&b, "  churn: %d updates at %.0f ns/update; affected atoms avg %.1f, max %d (of %d)\n",
		r.ChurnUpdates, r.ChurnNsPerUpdate, r.AvgAffected, r.MaxAffected, r.Atoms)
	fmt.Fprintf(&b, "  violations: %d raised, %d resolved, %d outstanding\n",
		r.Raised, r.Resolved, r.Outstanding)
	return b.String()
}
