package aether

import (
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// AppEndpoint is one known edge application: the Hydra control-plane
// app expands operator intent over these concrete endpoints when
// populating the checker's exact-match filtering_actions dictionary.
type AppEndpoint struct {
	IP    dataplane.IP4
	Proto uint8
	Ports []uint16
}

// HydraApp is the "simple control plane application that runs atop ONOS"
// of §5.2: it holds the operator's filtering intent, listens for attach
// requests, and installs the corresponding entries in the
// filtering_actions table of the Figure 9 checker on every switch it is
// wired to. It is deliberately independent of ONOS's UPF rule
// translation — that independence is what lets the checker catch the
// Figure 11 bug.
type HydraApp struct {
	core *MobileCore
	apps []AppEndpoint

	attachments []*netsim.HydraAttachment
	ues         []*UE
	// Reports collects every digest raised by the checker.
	Reports []FilteringReport
}

// FilteringReport is a decoded Figure 9 report.
type FilteringReport struct {
	Switch  uint32
	UEAddr  dataplane.IP4
	Proto   uint8
	AppAddr dataplane.IP4
	L4Port  uint16
	Action  uint8
	At      netsim.Time
}

// NewHydraApp wires the app to the core's attach events.
func NewHydraApp(core *MobileCore, apps []AppEndpoint) *HydraApp {
	a := &HydraApp{core: core, apps: apps}
	core.OnAttach(a.onAttach)
	return a
}

// Wire registers the checker attachment of one switch; the report sink
// must also be pointed at OnReport.
func (a *HydraApp) Wire(att *netsim.HydraAttachment) {
	a.attachments = append(a.attachments, att)
}

// OnReport is the report sink to install as the switch's OnReport.
func (a *HydraApp) OnReport(sw *netsim.Switch, rep pipeline.Report) {
	if len(rep.Args) != 5 {
		return
	}
	a.Reports = append(a.Reports, FilteringReport{
		Switch:  sw.ID,
		UEAddr:  dataplane.IP4(rep.Args[0].V),
		Proto:   uint8(rep.Args[1].V),
		AppAddr: dataplane.IP4(rep.Args[2].V),
		L4Port:  uint16(rep.Args[3].V),
		Action:  uint8(rep.Args[4].V),
		At:      sw.Sim().Now(),
	})
}

func (a *HydraApp) onAttach(ue *UE) {
	a.ues = append(a.ues, ue)
	a.installFor(ue)
}

// Refresh re-derives every attached client's checker entries from the
// current operator intent; the deployment calls it after a portal
// update. (Unlike the PFCP path, the checker's dictionary CAN be updated
// for existing clients — it encodes intent, not per-client UPF state.)
func (a *HydraApp) Refresh() {
	for _, ue := range a.ues {
		a.installFor(ue)
	}
}

func (a *HydraApp) installFor(ue *UE) {
	s := a.core.Slice(ue.SliceID)
	if s == nil {
		return
	}
	for _, app := range a.apps {
		for _, port := range app.Ports {
			action := s.Evaluate(app.IP, app.Proto, port)
			entry := pipeline.Entry{
				Keys: []pipeline.KeyMatch{
					pipeline.ExactKey(uint64(ue.IP)),
					pipeline.ExactKey(uint64(app.Proto)),
					pipeline.ExactKey(uint64(app.IP)),
					pipeline.ExactKey(uint64(port)),
				},
				Action: []pipeline.Value{pipeline.B(8, uint64(action))},
			}
			for _, att := range a.attachments {
				// The corpus checker names its dictionary filtering_actions.
				if tbl, ok := att.State.Tables["filtering_actions"]; ok {
					_ = tbl.Insert(entry)
				}
			}
		}
	}
}
