package aether

import (
	"fmt"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// Well-known addresses of the deployment (Figure 10).
var (
	UPFAddr    = dataplane.MustIP4("140.0.100.254")
	EnbAddr    = dataplane.MustIP4("140.0.100.1")
	UEPrefix   = dataplane.MustIP4("10.250.0.0")
	ServerAddr = dataplane.MustIP4("192.168.5.5")
	InetAddr   = dataplane.MustIP4("1.1.1.1")
)

// UEPrefixBits is the size of the mobile-client address block.
const UEPrefixBits = 16

// Deployment is a built Aether edge site: a 2×2 leaf-spine fabric where
// leaf1 performs the UPF function and fronts the base station, and
// leaf2 fronts the edge application server and the internet uplink
// (Figure 10).
type Deployment struct {
	Sim *netsim.Simulator

	Leaf1, Leaf2     *netsim.Switch
	Spine1, Spine2   *netsim.Switch
	Enb, Server, Net *netsim.Host

	UPF  *UPF
	ONOS *ONOS
	Core *MobileCore

	// Hydra pieces (nil when built without the checker).
	HydraApp *HydraApp

	// enbSeen counts downlink tunnel deliveries per TEID.
	enbSeen map[uint32]int
	ipID    uint16
}

// Options configures the build.
type Options struct {
	// WithChecker attaches the Figure 9 application-filtering checker to
	// every switch and starts the Hydra control-plane app.
	WithChecker bool
	// KnownApps lists the application endpoints the Hydra app expands
	// intent over; defaults to the edge server on UDP ports 80-82 and
	// TCP 80.
	KnownApps []AppEndpoint
	// FixedONOS enables the repaired controller (no Figure 11 bug).
	FixedONOS bool
}

// Build constructs the deployment.
func Build(sim *netsim.Simulator, opts Options) *Deployment {
	d := &Deployment{Sim: sim, enbSeen: map[uint32]int{}}

	d.Leaf1 = netsim.NewSwitch(sim, 1, "leaf1")
	d.Leaf2 = netsim.NewSwitch(sim, 2, "leaf2")
	d.Spine1 = netsim.NewSwitch(sim, 101, "spine1")
	d.Spine2 = netsim.NewSwitch(sim, 102, "spine2")

	const bps = 10_000_000_000
	wire := func(a *netsim.Switch, ap int, b *netsim.Switch, bp int) {
		lk := netsim.Connect(sim, a, ap, b, bp, bps, netsim.Microsecond)
		lk.QueueBytes = 512 << 10
		a.AttachLink(ap, lk)
		b.AttachLink(bp, lk)
	}
	// Leaf ports 1,2 → spines; spine port 1 → leaf1, port 2 → leaf2.
	wire(d.Leaf1, 1, d.Spine1, 1)
	wire(d.Leaf1, 2, d.Spine2, 1)
	wire(d.Leaf2, 1, d.Spine1, 2)
	wire(d.Leaf2, 2, d.Spine2, 2)

	host := func(name string, ip dataplane.IP4, sw *netsim.Switch, port int, mac uint64) *netsim.Host {
		h := netsim.NewHost(sim, name, dataplane.MACFromUint64(mac), ip)
		h.GatewayMAC = dataplane.MACFromUint64(0xAA)
		lk := netsim.Connect(sim, sw, port, h, 0, bps, netsim.Microsecond)
		lk.QueueBytes = 512 << 10
		sw.AttachLink(port, lk)
		h.AttachLink(lk)
		sw.EdgePorts[port] = true
		return h
	}
	d.Enb = host("enb", EnbAddr, d.Leaf1, 3, 0xE1)
	d.Server = host("server", ServerAddr, d.Leaf2, 3, 0x51)
	d.Net = host("internet", InetAddr, d.Leaf2, 4, 0x52)

	// Track downlink deliveries per TEID at the base station.
	d.Enb.OnPacket = func(pkt *dataplane.Decoded) {
		if pkt.HasGTPU {
			d.enbSeen[pkt.GTPU.TEID]++
		}
	}

	// Forwarding: leaf1 runs the UPF; the rest route.
	d.UPF = NewUPF(UPFAddr, EnbAddr, UEPrefix, UEPrefixBits)
	d.UPF.Routes.AddRoute(EnbAddr, 32, 3)
	d.UPF.Routes.AddRoute(dataplane.MustIP4("192.168.5.0"), 24, 1, 2)
	d.UPF.Routes.AddRoute(InetAddr, 32, 1, 2)
	d.Leaf1.Forwarding = d.UPF

	leaf2 := &netsim.L3Program{}
	leaf2.AddRoute(ServerAddr, 32, 3)
	leaf2.AddRoute(InetAddr, 32, 4)
	leaf2.AddRoute(UEPrefix, UEPrefixBits, 1, 2)
	leaf2.AddRoute(dataplane.MustIP4("140.0.100.0"), 24, 1, 2)
	d.Leaf2.Forwarding = leaf2

	for _, spine := range []*netsim.Switch{d.Spine1, d.Spine2} {
		p := &netsim.L3Program{}
		p.AddRoute(UEPrefix, UEPrefixBits, 1)
		p.AddRoute(dataplane.MustIP4("140.0.100.0"), 24, 1)
		p.AddRoute(dataplane.MustIP4("192.168.5.0"), 24, 2)
		p.AddRoute(InetAddr, 32, 2)
		spine.Forwarding = p
	}

	d.ONOS = NewONOS(d.UPF)
	d.ONOS.FixedReconciliation = opts.FixedONOS
	d.Core = NewMobileCore(d.ONOS)

	if opts.WithChecker {
		apps := opts.KnownApps
		if apps == nil {
			apps = []AppEndpoint{
				{IP: ServerAddr, Proto: dataplane.ProtoUDP, Ports: []uint16{80, 81, 82}},
				{IP: ServerAddr, Proto: dataplane.ProtoTCP, Ports: []uint16{80}},
				{IP: InetAddr, Proto: dataplane.ProtoUDP, Ports: []uint16{53}},
			}
		}
		d.HydraApp = NewHydraApp(d.Core, apps)

		info := checkers.MustParse("app-filtering")
		prog := compiler.MustCompile(info, compiler.Options{Name: "app-filtering"})
		rt := &compiler.Runtime{Prog: prog}
		for _, sw := range d.Switches() {
			att := sw.AttachChecker(rt, d.HydraApp.OnReport)
			d.HydraApp.Wire(att)
		}
	}
	return d
}

// Switches returns all fabric switches.
func (d *Deployment) Switches() []*netsim.Switch {
	return []*netsim.Switch{d.Leaf1, d.Leaf2, d.Spine1, d.Spine2}
}

// UpdatePortal applies an operator rules update for a slice: the mobile
// core records it for future attaches, and the Hydra app refreshes the
// checker's intent for everyone immediately.
func (d *Deployment) UpdatePortal(sliceID uint8, rules []FilterRule) error {
	if err := d.Core.UpdateSliceRules(sliceID, rules); err != nil {
		return err
	}
	if d.HydraApp != nil {
		d.HydraApp.Refresh()
	}
	return nil
}

// SendUplink emits one uplink user packet for ue: the base station
// GTP-encapsulates it toward the UPF.
func (d *Deployment) SendUplink(ue *UE, dst dataplane.IP4, proto uint8, dport uint16, payloadLen int) {
	d.ipID++
	pkt := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Dst: d.Enb.GatewayMAC, Src: d.Enb.MAC, Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{ID: d.ipID, TTL: 64, Protocol: proto, Src: ue.IP, Dst: dst},
		Payload: make([]byte, payloadLen),
	}
	switch proto {
	case dataplane.ProtoUDP:
		pkt.HasUDP = true
		pkt.UDP = dataplane.UDP{SrcPort: 40000 + ue.ID, DstPort: dport}
	case dataplane.ProtoTCP:
		pkt.HasTCP = true
		pkt.TCP = dataplane.TCP{SrcPort: 40000 + ue.ID, DstPort: dport, Flags: dataplane.TCPSyn}
	}
	if err := pkt.EncapGTPU(EnbAddr, UPFAddr, ue.TEIDUp); err != nil {
		panic(fmt.Sprintf("aether: encap: %v", err))
	}
	d.Enb.SendPacket(pkt)
}

// SendDownlink emits one downlink packet from the edge server to ue.
func (d *Deployment) SendDownlink(ue *UE, proto uint8, sport uint16, payloadLen int) {
	switch proto {
	case dataplane.ProtoUDP:
		d.Server.SendUDP(ue.IP, sport, 40000+ue.ID, payloadLen)
	case dataplane.ProtoTCP:
		d.Server.SendTCP(ue.IP, sport, 40000+ue.ID, dataplane.TCPAck, payloadLen)
	}
}

// DownlinkDelivered reports how many tunneled packets reached the base
// station for the UE.
func (d *Deployment) DownlinkDelivered(ue *UE) int { return d.enbSeen[ue.TEIDDown] }
