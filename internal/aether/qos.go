package aether

import (
	"sync"

	"repro/internal/netsim"
)

// Counters is the per-UE accounting state the UPF maintains (§5.2 lists
// accounting among the UPF functions the switches implement).
type Counters struct {
	UpPkts, UpBytes     uint64
	DownPkts, DownBytes uint64
}

// meter is a token bucket enforcing a maximum bitrate.
type meter struct {
	rateBps int64
	tokens  float64 // bits
	burst   float64 // bits
	last    netsim.Time
}

func newMeter(rateBps int64, burstBits float64) *meter {
	return &meter{rateBps: rateBps, tokens: burstBits, burst: burstBits}
}

// allow consumes `bits` if available after refilling to now.
func (m *meter) allow(now netsim.Time, bits float64) bool {
	if m.rateBps <= 0 {
		return true
	}
	elapsed := (now - m.last).Seconds()
	m.last = now
	m.tokens += elapsed * float64(m.rateBps)
	if m.tokens > m.burst {
		m.tokens = m.burst
	}
	if m.tokens < bits {
		return false
	}
	m.tokens -= bits
	return true
}

// Accounting tracks per-UE traffic and enforces per-slice maximum
// bitrates ("give them bandwidth guarantees", §5.2).
type Accounting struct {
	mu sync.Mutex
	// byUE maps UE id -> counters.
	byUE map[uint64]*Counters
	// sliceMBR maps slice id -> maximum bitrate (0 = unlimited).
	sliceMBR map[uint64]int64
	// meters maps UE id -> token bucket (created on first packet).
	meters map[uint64]*meter
	// QoSDrops counts packets dropped by metering.
	QoSDrops uint64
}

// NewAccounting returns empty accounting state.
func NewAccounting() *Accounting {
	return &Accounting{
		byUE:     map[uint64]*Counters{},
		sliceMBR: map[uint64]int64{},
		meters:   map[uint64]*meter{},
	}
}

// SetSliceMBR configures the maximum bitrate of a slice; existing
// meters of that slice's UEs are rebuilt on their next packet.
func (a *Accounting) SetSliceMBR(sliceID uint8, bps int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sliceMBR[uint64(sliceID)] = bps
	a.meters = map[uint64]*meter{}
}

// UE returns (a copy of) a client's counters.
func (a *Accounting) UE(ueID uint16) Counters {
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok := a.byUE[uint64(ueID)]; ok {
		return *c
	}
	return Counters{}
}

// record accounts one packet and applies the slice meter; it reports
// whether the packet conforms (false = drop by QoS).
func (a *Accounting) record(now netsim.Time, ueID, sliceID uint64, bytes int, uplink bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.byUE[ueID]
	if !ok {
		c = &Counters{}
		a.byUE[ueID] = c
	}
	if uplink {
		c.UpPkts++
		c.UpBytes += uint64(bytes)
	} else {
		c.DownPkts++
		c.DownBytes += uint64(bytes)
	}
	rate := a.sliceMBR[sliceID]
	if rate <= 0 {
		return true
	}
	m, ok := a.meters[ueID]
	if !ok {
		// Allow a burst of one eighth of a second at the slice rate.
		m = newMeter(rate, float64(rate)/8)
		m.last = now
		a.meters[ueID] = m
	}
	if !m.allow(now, float64(bytes)*8) {
		a.QoSDrops++
		return false
	}
	return true
}
