package aether

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// sliceRulesV1 is the initial Figure 11 policy: deny all traffic by
// default, allow applications on UDP port 81.
func sliceRulesV1() []FilterRule {
	return []FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 20, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 81, Allow: true},
	}
}

// sliceRulesV2 is the portal update: the UDP port range expands to 81-82
// at a higher priority.
func sliceRulesV2() []FilterRule {
	return []FilterRule{
		{Priority: 10, Allow: false},
		{Priority: 25, Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 82, Allow: true},
	}
}

func buildWithSlice(t *testing.T, opts Options) (*Deployment, *netsim.Simulator) {
	t.Helper()
	sim := netsim.NewSimulator()
	d := Build(sim, opts)
	d.Core.DefineSlice(&Slice{ID: 1, Rules: sliceRulesV1()})
	return d, sim
}

func TestUplinkAllowedFlow(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ue, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SendUplink(ue, ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	if d.Server.RxUDP != 1 {
		t.Fatalf("server rx = %d, want 1", d.Server.RxUDP)
	}
	// The delivered packet must be decapsulated user traffic from the
	// UE's address.
	if d.UPF.UplinkPkts != 1 || d.UPF.FilteredDrops != 0 {
		t.Fatalf("upf: %s", d.UPF)
	}
}

func TestUplinkDeniedFlowDropped(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ue, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SendUplink(ue, ServerAddr, dataplane.ProtoUDP, 80, 100) // denied port
	d.SendUplink(ue, ServerAddr, dataplane.ProtoTCP, 80, 100) // denied proto
	sim.RunAll()
	if d.Server.RxUDP != 0 || d.Server.RxTCP != 0 {
		t.Fatalf("denied traffic delivered: udp=%d tcp=%d", d.Server.RxUDP, d.Server.RxTCP)
	}
	if d.UPF.FilteredDrops != 2 {
		t.Fatalf("filtered drops = %d, want 2", d.UPF.FilteredDrops)
	}
}

func TestDownlinkTunnel(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ue, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SendDownlink(ue, dataplane.ProtoUDP, 81, 200)
	sim.RunAll()
	if got := d.DownlinkDelivered(ue); got != 1 {
		t.Fatalf("downlink delivered = %d, want 1", got)
	}
	// Denied source port: dropped at the UPF.
	d.SendDownlink(ue, dataplane.ProtoUDP, 9999, 200)
	sim.RunAll()
	if got := d.DownlinkDelivered(ue); got != 1 {
		t.Fatalf("denied downlink leaked: %d", got)
	}
}

func TestUnknownTunnelDropped(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ghost := &UE{ID: 99, IP: dataplane.MustIP4("10.250.0.99"), TEIDUp: 0xdead, TEIDDown: 0xbeef}
	d.SendUplink(ghost, ServerAddr, dataplane.ProtoUDP, 81, 64)
	sim.RunAll()
	if d.Server.RxUDP != 0 {
		t.Fatal("packet with unknown TEID must be dropped")
	}
}

// TestFigure11AppIDAssignment asserts the exact table layout Figure 11
// shows: deny-all is app 1, the original allow rule app 2, and the
// post-update rule installed on the second attach becomes app 3.
func TestFigure11AppIDAssignment(t *testing.T) {
	d, _ := buildWithSlice(t, Options{})
	if _, err := d.Core.Attach("imsi-001", 1); err != nil {
		t.Fatal(err)
	}
	if id, ok := d.ONOS.AppID(1, sliceRulesV1()[0]); !ok || id != 1 {
		t.Fatalf("deny-all app id = %d (%v), want 1", id, ok)
	}
	if id, ok := d.ONOS.AppID(1, sliceRulesV1()[1]); !ok || id != 2 {
		t.Fatalf("allow-81 app id = %d (%v), want 2", id, ok)
	}

	if err := d.UpdatePortal(1, sliceRulesV2()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Core.Attach("imsi-002", 1); err != nil {
		t.Fatal(err)
	}
	if id, ok := d.ONOS.AppID(1, sliceRulesV2()[1]); !ok || id != 3 {
		t.Fatalf("allow-81-82 app id = %d (%v), want 3", id, ok)
	}
	// The Applications table now holds all three entries — the old
	// 81-81 entry is still installed, shadowed by the higher priority.
	if n := d.UPF.Applications.Len(); n != 3 {
		t.Fatalf("applications entries = %d, want 3", n)
	}
}

// TestFigure11BugReproduction replays the full §5.2 scenario: after the
// portal update and a second client's attach, client 1's previously
// allowed port-81 traffic is silently dropped by the UPF — and the
// Hydra checker reports exactly that packet as an intent violation.
func TestFigure11BugReproduction(t *testing.T) {
	d, sim := buildWithSlice(t, Options{WithChecker: true})

	c1, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: client 1's port-81 traffic flows.
	d.SendUplink(c1, ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	if d.Server.RxUDP != 1 {
		t.Fatalf("phase 1: rx = %d", d.Server.RxUDP)
	}
	if len(d.HydraApp.Reports) != 0 {
		t.Fatalf("phase 1: unexpected reports %+v", d.HydraApp.Reports)
	}

	// Phase 2: the operator expands the port range at higher priority;
	// client 2 attaches, causing ONOS to install the new shared entry.
	if err := d.UpdatePortal(1, sliceRulesV2()); err != nil {
		t.Fatal(err)
	}
	c2, err := d.Core.Attach("imsi-002", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Client 2 is fine on both ports.
	d.SendUplink(c2, ServerAddr, dataplane.ProtoUDP, 81, 100)
	d.SendUplink(c2, ServerAddr, dataplane.ProtoUDP, 82, 100)
	sim.RunAll()
	if d.Server.RxUDP != 3 {
		t.Fatalf("phase 2: rx = %d, want 3", d.Server.RxUDP)
	}
	if len(d.HydraApp.Reports) != 0 {
		t.Fatalf("phase 2: unexpected reports %+v", d.HydraApp.Reports)
	}

	// Phase 3: client 1's port-81 packet now classifies into app 3
	// (higher priority), has no (c1, app3) termination, and is dropped —
	// the bug. Hydra must report it: intent says allow, data plane drops.
	d.SendUplink(c1, ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()

	if d.Server.RxUDP != 3 {
		t.Fatalf("phase 3: the bug should drop the packet (rx=%d)", d.Server.RxUDP)
	}
	if d.UPF.FilteredDrops != 1 {
		t.Fatalf("phase 3: upf drops = %d, want 1", d.UPF.FilteredDrops)
	}
	if len(d.HydraApp.Reports) != 1 {
		t.Fatalf("phase 3: reports = %d, want 1 (%+v)", len(d.HydraApp.Reports), d.HydraApp.Reports)
	}
	rep := d.HydraApp.Reports[0]
	if rep.UEAddr != c1.IP || rep.AppAddr != ServerAddr || rep.L4Port != 81 || rep.Proto != dataplane.ProtoUDP {
		t.Fatalf("report misidentifies the flow: %+v", rep)
	}
	if rep.Action != ActionAllow {
		t.Fatalf("report action = %d, want %d (allow, i.e. wrongly dropped)", rep.Action, ActionAllow)
	}
	if rep.Switch != d.Leaf1.ID {
		t.Fatalf("report raised at switch %d, want leaf1 (%d) where the drop happened", rep.Switch, d.Leaf1.ID)
	}
}

// TestFigure11BugGoneWithFixedONOS is the counterfactual: with the
// repaired controller the same scenario delivers everything and Hydra
// stays silent.
func TestFigure11BugGoneWithFixedONOS(t *testing.T) {
	d, sim := buildWithSlice(t, Options{WithChecker: true, FixedONOS: true})

	c1, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.UpdatePortal(1, sliceRulesV2()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Core.Attach("imsi-002", 1); err != nil {
		t.Fatal(err)
	}
	d.SendUplink(c1, ServerAddr, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()

	if d.Server.RxUDP != 1 {
		t.Fatalf("fixed controller: rx = %d, want 1", d.Server.RxUDP)
	}
	if len(d.HydraApp.Reports) != 0 {
		t.Fatalf("fixed controller: unexpected reports %+v", d.HydraApp.Reports)
	}
}

// TestDownlinkBugAlsoCaught exercises the same bug on the downlink
// direction: after the update + second attach, the server's port-81
// replies to client 1 are dropped and reported.
func TestDownlinkBugAlsoCaught(t *testing.T) {
	d, sim := buildWithSlice(t, Options{WithChecker: true})
	c1, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SendDownlink(c1, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()
	if d.DownlinkDelivered(c1) != 1 {
		t.Fatal("downlink baseline failed")
	}

	if err := d.UpdatePortal(1, sliceRulesV2()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Core.Attach("imsi-002", 1); err != nil {
		t.Fatal(err)
	}
	d.SendDownlink(c1, dataplane.ProtoUDP, 81, 100)
	sim.RunAll()

	if d.DownlinkDelivered(c1) != 1 {
		t.Fatal("downlink packet should have been dropped by the bug")
	}
	if len(d.HydraApp.Reports) != 1 {
		t.Fatalf("downlink reports = %d, want 1", len(d.HydraApp.Reports))
	}
	rep := d.HydraApp.Reports[0]
	if rep.UEAddr != c1.IP || rep.L4Port != 81 || rep.Action != ActionAllow {
		t.Fatalf("downlink report wrong: %+v", rep)
	}
}

// TestSliceEvaluate pins the intent semantics: highest priority wins,
// no match denies.
func TestSliceEvaluate(t *testing.T) {
	s := &Slice{ID: 1, Rules: sliceRulesV2()}
	cases := []struct {
		proto uint8
		port  uint16
		want  uint8
	}{
		{dataplane.ProtoUDP, 81, ActionAllow},
		{dataplane.ProtoUDP, 82, ActionAllow},
		{dataplane.ProtoUDP, 80, ActionDeny},
		{dataplane.ProtoTCP, 81, ActionDeny},
		{dataplane.ProtoUDP, 83, ActionDeny},
	}
	for _, c := range cases {
		if got := s.Evaluate(ServerAddr, c.proto, c.port); got != c.want {
			t.Errorf("Evaluate(proto=%d port=%d) = %d, want %d", c.proto, c.port, got, c.want)
		}
	}
}

func TestFilterRuleMatches(t *testing.T) {
	r := FilterRule{Priority: 20, AppPrefix: dataplane.MustIP4("192.168.5.0"), PrefixBits: 24,
		Proto: dataplane.ProtoUDP, PortLo: 81, PortHi: 82, Allow: true}
	if !r.Matches(ServerAddr, dataplane.ProtoUDP, 81) {
		t.Fatal("should match")
	}
	if r.Matches(ServerAddr, dataplane.ProtoTCP, 81) {
		t.Fatal("proto mismatch")
	}
	if r.Matches(dataplane.MustIP4("10.0.0.1"), dataplane.ProtoUDP, 81) {
		t.Fatal("prefix mismatch")
	}
	if r.Matches(ServerAddr, dataplane.ProtoUDP, 83) {
		t.Fatal("port out of range")
	}
	anyRule := FilterRule{Priority: 10}
	if !anyRule.Matches(ServerAddr, dataplane.ProtoTCP, 1) {
		t.Fatal("wildcard rule must match everything")
	}
}

func TestAccountingCounters(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ue, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.SendUplink(ue, ServerAddr, dataplane.ProtoUDP, 81, 100)
	}
	d.SendDownlink(ue, dataplane.ProtoUDP, 81, 200)
	sim.RunAll()

	c := d.UPF.Accounting.UE(ue.ID)
	if c.UpPkts != 3 || c.DownPkts != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if c.UpBytes == 0 || c.DownBytes == 0 {
		t.Fatalf("byte counters empty: %+v", c)
	}
	// An unknown UE reads zero.
	if z := d.UPF.Accounting.UE(9999); z != (Counters{}) {
		t.Fatalf("ghost counters: %+v", z)
	}
}

func TestSliceQoSMetering(t *testing.T) {
	d, sim := buildWithSlice(t, Options{})
	ue, err := d.Core.Attach("imsi-001", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cap the slice at 1 Mb/s; a burst of 400 x 1000-byte packets in
	// ~zero time vastly exceeds the bucket (1 Mb/s / 8 = 125 kbit burst).
	d.UPF.Accounting.SetSliceMBR(1, 1_000_000)
	for i := 0; i < 400; i++ {
		d.SendUplink(ue, ServerAddr, dataplane.ProtoUDP, 81, 1000)
	}
	sim.RunAll()
	if d.UPF.Accounting.QoSDrops == 0 {
		t.Fatal("burst over the slice MBR must be metered")
	}
	if d.Server.RxUDP == 0 {
		t.Fatal("conforming prefix of the burst must pass")
	}
	if d.Server.RxUDP+d.UPF.Accounting.QoSDrops != 400 {
		t.Fatalf("conservation: %d delivered + %d dropped != 400", d.Server.RxUDP, d.UPF.Accounting.QoSDrops)
	}
}
