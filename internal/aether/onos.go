package aether

import (
	"fmt"
	"sort"

	"repro/internal/dataplane"
	"repro/internal/pipeline"
)

// FilterRule is one prioritized application-filtering rule of a slice,
// in the paper's "priority: ip-prefix : ip-proto : l4-port : action"
// form (§5.2). Zero PrefixBits, Proto, or PortHi mean "any".
type FilterRule struct {
	Priority   int
	AppPrefix  dataplane.IP4
	PrefixBits int
	Proto      uint8
	PortLo     uint16
	PortHi     uint16
	Allow      bool
}

// Matches reports whether the rule covers the given application flow.
func (r FilterRule) Matches(appIP dataplane.IP4, proto uint8, port uint16) bool {
	if r.PrefixBits > 0 && !appIP.InPrefix(r.AppPrefix, r.PrefixBits) {
		return false
	}
	if r.Proto != 0 && r.Proto != proto {
		return false
	}
	lo, hi := r.PortLo, r.PortHi
	if hi == 0 && lo == 0 {
		return true
	}
	return lo <= port && port <= hi
}

func (r FilterRule) String() string {
	act := "deny"
	if r.Allow {
		act = "allow"
	}
	return fmt.Sprintf("%d: %s/%d:%d:%d-%d:%s", r.Priority, r.AppPrefix, r.PrefixBits, r.Proto, r.PortLo, r.PortHi, act)
}

// signature identifies an Applications-table entry shared across the
// clients of a slice: the match portion of a rule.
func (r FilterRule) signature(sliceID uint8) string {
	return fmt.Sprintf("%d|%d/%d|%d|%d-%d|p%d", sliceID, uint32(r.AppPrefix), r.PrefixBits, r.Proto, r.PortLo, r.PortHi, r.Priority)
}

// Slice is an isolated group of clients plus its filtering rules.
type Slice struct {
	ID    uint8
	Rules []FilterRule
}

// Evaluate returns the operator-intended action for a flow: the highest-
// priority matching rule decides; no match means deny (slices are
// default-isolated).
func (s *Slice) Evaluate(appIP dataplane.IP4, proto uint8, port uint16) uint8 {
	best := -1
	action := ActionDeny
	for _, r := range s.Rules {
		if r.Priority > best && r.Matches(appIP, proto, port) {
			best = r.Priority
			if r.Allow {
				action = ActionAllow
			} else {
				action = ActionDeny
			}
		}
	}
	return action
}

// UE is a mobile client identified by its IMSI (§5.2).
type UE struct {
	IMSI     string
	ID       uint16
	IP       dataplane.IP4
	SliceID  uint8
	TEIDUp   uint32
	TEIDDown uint32
}

// ONOS models the SDN controller's UPF rule management, including the
// Figure 11 bug: Applications entries are shared per slice and created
// on demand when a client attaches, but clients that attached earlier
// are not reconciled against entries created later, so a higher-priority
// entry installed for a new client silently shadows the app IDs that
// older clients' Terminations entries reference.
type ONOS struct {
	upf *UPF

	appIDs    map[string]appEntry
	nextAppID uint8

	// FixedReconciliation enables the repaired behavior (used by tests
	// and the ablation bench to show the bug disappears): when a new
	// Applications entry is created, terminations are re-derived for
	// every attached client.
	FixedReconciliation bool

	attached []clientRules
}

type clientRules struct {
	ue    *UE
	rules []FilterRule
}

// appEntry records one shared Applications-table entry: its assigned ID
// and the rule it was derived from.
type appEntry struct {
	id   uint8
	rule FilterRule
}

// NewONOS returns a controller bound to the UPF tables.
func NewONOS(upf *UPF) *ONOS {
	return &ONOS{upf: upf, appIDs: map[string]appEntry{}}
}

// InstallSessions programs the GTP tunnel termination state for a UE.
func (o *ONOS) InstallSessions(ue *UE) error {
	if err := o.upf.SessUplink.Insert(pipeline.Entry{
		Keys:   []pipeline.KeyMatch{pipeline.ExactKey(uint64(ue.TEIDUp))},
		Action: []pipeline.Value{pipeline.B(16, uint64(ue.ID)), pipeline.B(8, uint64(ue.SliceID))},
	}); err != nil {
		return err
	}
	return o.upf.SessDownlink.Insert(pipeline.Entry{
		Keys: []pipeline.KeyMatch{pipeline.ExactKey(uint64(ue.IP))},
		Action: []pipeline.Value{
			pipeline.B(16, uint64(ue.ID)), pipeline.B(8, uint64(ue.SliceID)), pipeline.B(32, uint64(ue.TEIDDown)),
		},
	})
}

// InstallClientRules receives one client's filtering rules (the per-
// client granularity is forced by the PFCP interface, §5.2) and
// translates them into Applications and Terminations entries.
func (o *ONOS) InstallClientRules(ue *UE, rules []FilterRule) error {
	// Ascending priority order reproduces Figure 11's app-ID assignment
	// (deny-all → app 1, allow-81 → app 2, ...).
	sorted := append([]FilterRule(nil), rules...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Priority < sorted[j].Priority })

	createdNew := false
	for _, r := range sorted {
		sig := r.signature(ue.SliceID)
		entry, exists := o.appIDs[sig]
		if !exists {
			o.nextAppID++
			entry = appEntry{id: o.nextAppID, rule: r}
			o.appIDs[sig] = entry
			if err := o.installApplication(ue.SliceID, r, entry.id); err != nil {
				return err
			}
			createdNew = true
		}
		if err := o.installTerminations(ue.ID, entry.id, r.Allow); err != nil {
			return err
		}
	}
	o.attached = append(o.attached, clientRules{ue: ue, rules: rules})

	if o.FixedReconciliation && createdNew {
		// The repaired controller re-derives terminations for all
		// previously attached clients against the new entries.
		return o.reconcile()
	}
	// BUGGY PATH (the paper's Aether behavior): nothing is done for
	// previously attached clients, whose traffic can now classify into
	// a new app ID they have no Terminations entry for — and be dropped.
	return nil
}

func (o *ONOS) installApplication(sliceID uint8, r FilterRule, appID uint8) error {
	keys := []pipeline.KeyMatch{pipeline.ExactKey(uint64(sliceID))}
	if r.PrefixBits > 0 {
		keys = append(keys, pipeline.PrefixKey(uint64(r.AppPrefix), r.PrefixBits))
	} else {
		keys = append(keys, pipeline.AnyKey())
	}
	if r.PortLo == 0 && r.PortHi == 0 {
		keys = append(keys, pipeline.AnyKey())
	} else {
		keys = append(keys, pipeline.RangeKey(uint64(r.PortLo), uint64(r.PortHi)))
	}
	if r.Proto != 0 {
		keys = append(keys, pipeline.TernaryKey(uint64(r.Proto), 0xff))
	} else {
		keys = append(keys, pipeline.AnyKey())
	}
	return o.upf.Applications.Insert(pipeline.Entry{
		Keys:     keys,
		Priority: r.Priority,
		Action:   []pipeline.Value{pipeline.B(8, uint64(appID))},
		Name:     fmt.Sprintf("set_app_id(%d)", appID),
	})
}

func (o *ONOS) installTerminations(ueID uint16, appID uint8, allow bool) error {
	fwd := pipeline.B(1, 0)
	if allow {
		fwd = pipeline.B(1, 1)
	}
	e := pipeline.Entry{
		Keys:   []pipeline.KeyMatch{pipeline.ExactKey(uint64(ueID)), pipeline.ExactKey(uint64(appID))},
		Action: []pipeline.Value{fwd},
	}
	if err := o.upf.TermUplink.Insert(e); err != nil {
		return err
	}
	return o.upf.TermDownlink.Insert(e)
}

// reconcile recomputes every attached client's terminations against
// every known Applications entry (the fix the bug calls for): for each
// (client, entry) pair, the intended action is the client's own rule set
// evaluated at a flow the entry matches.
func (o *ONOS) reconcile() error {
	for _, cr := range o.attached {
		clientSlice := &Slice{Rules: cr.rules}
		for _, entry := range o.appIDs {
			rep := entry.rule.representative()
			action := clientSlice.Evaluate(rep.ip, rep.proto, rep.port)
			if err := o.installTerminations(cr.ue.ID, entry.id, action == ActionAllow); err != nil {
				return err
			}
		}
	}
	return nil
}

// representative returns a concrete flow the rule matches, used to ask
// a rule set what it intends for the scope of a shared entry.
func (r FilterRule) representative() (rep struct {
	ip    dataplane.IP4
	proto uint8
	port  uint16
}) {
	rep.ip = r.AppPrefix
	rep.proto = r.Proto
	rep.port = r.PortLo
	return rep
}

// AppID returns the Applications-table ID assigned to a rule signature,
// for tests that assert Figure 11's exact entry layout.
func (o *ONOS) AppID(sliceID uint8, r FilterRule) (uint8, bool) {
	e, ok := o.appIDs[r.signature(sliceID)]
	return e.id, ok
}

// MobileCore models the 3GPP dual-mode core: it owns slice definitions,
// allocates UE identity (IP, TEIDs) on attach, and — because PFCP has
// no slice-global rule scope — pushes each slice's filtering rules to
// ONOS once per attaching client (§5.2).
type MobileCore struct {
	onos   *ONOS
	slices map[uint8]*Slice

	nextUEID uint16
	nextTEID uint32
	uePool   uint32 // next host index in the UE prefix

	Attached []*UE
	// listeners are notified after each successful attach (the Hydra
	// control-plane app subscribes here).
	listeners []func(*UE)
}

// NewMobileCore returns a core bound to the given controller.
func NewMobileCore(onos *ONOS) *MobileCore {
	return &MobileCore{onos: onos, slices: map[uint8]*Slice{}, uePool: 1}
}

// DefineSlice registers (or replaces) a slice configuration.
func (mc *MobileCore) DefineSlice(s *Slice) { mc.slices[s.ID] = s }

// Slice returns a slice definition.
func (mc *MobileCore) Slice(id uint8) *Slice { return mc.slices[id] }

// UpdateSliceRules is the operator-portal update: it changes the slice's
// rules for *future* attaches. Per the PFCP interface there is no way to
// re-push rules for already-attached clients — the root condition the
// Figure 11 bug grows from.
func (mc *MobileCore) UpdateSliceRules(id uint8, rules []FilterRule) error {
	s, ok := mc.slices[id]
	if !ok {
		return fmt.Errorf("aether: unknown slice %d", id)
	}
	s.Rules = rules
	return nil
}

// OnAttach subscribes a listener to attach events.
func (mc *MobileCore) OnAttach(fn func(*UE)) { mc.listeners = append(mc.listeners, fn) }

// Attach admits a client into a slice: allocates identity, installs
// sessions, and sends the slice's *current* rules to ONOS for this
// client.
func (mc *MobileCore) Attach(imsi string, sliceID uint8) (*UE, error) {
	s, ok := mc.slices[sliceID]
	if !ok {
		return nil, fmt.Errorf("aether: unknown slice %d", sliceID)
	}
	mc.nextUEID++
	mc.nextTEID += 2
	ue := &UE{
		IMSI:     imsi,
		ID:       mc.nextUEID,
		IP:       dataplane.IP4(uint32(dataplane.MustIP4("10.250.0.0")) + mc.uePool),
		SliceID:  sliceID,
		TEIDUp:   mc.nextTEID - 1,
		TEIDDown: mc.nextTEID,
	}
	mc.uePool++
	if err := mc.onos.InstallSessions(ue); err != nil {
		return nil, err
	}
	if err := mc.onos.InstallClientRules(ue, s.Rules); err != nil {
		return nil, err
	}
	mc.Attached = append(mc.Attached, ue)
	for _, fn := range mc.listeners {
		fn(ue)
	}
	return ue, nil
}
