// Package aether models the Aether edge deployment of §5.2: a leaf-spine
// SDN fabric whose leaf switches implement the mobile core's User Plane
// Function (GTP-U tunnel termination, application filtering via shared
// Applications + per-client Terminations tables, Figure 11), an
// ONOS-like controller that translates per-client PFCP rules into table
// entries — including the shared-entry management bug the paper's
// checker caught — and the Hydra control-plane app that programs the
// Figure 9 checker's filtering_actions dictionary from operator intent.
package aether

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// Filtering actions carried in the checker's telemetry (Figure 9).
const (
	ActionNone  uint8 = 0
	ActionDeny  uint8 = 1
	ActionAllow uint8 = 2
)

// UPF is the leaf-switch User Plane Function: Sessions tables terminate
// GTP tunnels, the shared Applications table classifies traffic into
// app IDs, and the per-client Terminations tables decide forward/drop
// (Figure 11). After UPF processing the packet is routed by the
// embedded L3 program.
type UPF struct {
	// Applications is shared by the clients of a slice: keys are
	// (slice_id exact, app ipv4 LPM, l4 port range, proto ternary),
	// the action sets app_id. Entries carry priorities.
	Applications *pipeline.Table
	// TermUplink and TermDownlink map (ue_id, app_id) to forward (1) or
	// drop (0); a miss drops (Figure 11: "Default drop").
	TermUplink   *pipeline.Table
	TermDownlink *pipeline.Table
	// SessUplink maps TEID -> (ue_id, slice_id); SessDownlink maps
	// UE IPv4 -> (ue_id, slice_id, downlink TEID).
	SessUplink   *pipeline.Table
	SessDownlink *pipeline.Table

	// UPFAddr is the tunnel endpoint address of this UPF; EnbAddr is the
	// base station the downlink tunnels lead to.
	UPFAddr dataplane.IP4
	EnbAddr dataplane.IP4

	// UEPrefix/UEPrefixBits is the address block of mobile clients;
	// packets destined there take the downlink path.
	UEPrefix     dataplane.IP4
	UEPrefixBits int

	// Routes performs the post-UPF L3 forwarding.
	Routes *netsim.L3Program

	// Accounting tracks per-UE traffic and enforces slice bitrates.
	Accounting *Accounting

	// Counters for the experiments.
	UplinkPkts, DownlinkPkts, FilteredDrops uint64
}

// NewUPF builds the UPF tables.
func NewUPF(upfAddr, enbAddr, uePrefix dataplane.IP4, uePrefixBits int) *UPF {
	return &UPF{
		Applications: pipeline.NewTable("applications",
			[]pipeline.KeySpec{
				{Name: "slice_id", Width: 8, Kind: pipeline.MatchExact},
				{Name: "app_ipv4", Width: 32, Kind: pipeline.MatchLPM},
				{Name: "l4_port", Width: 16, Kind: pipeline.MatchRange},
				{Name: "ip_proto", Width: 8, Kind: pipeline.MatchTernary},
			},
			[]pipeline.FieldRef{"fabric.app_id"},
			[]pipeline.Value{pipeline.B(8, 0)}),
		TermUplink:   newTermTable("terminations_uplink"),
		TermDownlink: newTermTable("terminations_downlink"),
		SessUplink: pipeline.NewTable("sessions_uplink",
			[]pipeline.KeySpec{{Name: "teid", Width: 32, Kind: pipeline.MatchExact}},
			[]pipeline.FieldRef{"fabric.ue_id", "fabric.slice_id"},
			[]pipeline.Value{pipeline.B(16, 0), pipeline.B(8, 0)}),
		SessDownlink: pipeline.NewTable("sessions_downlink",
			[]pipeline.KeySpec{{Name: "ue_ipv4", Width: 32, Kind: pipeline.MatchExact}},
			[]pipeline.FieldRef{"fabric.ue_id", "fabric.slice_id", "fabric.teid"},
			[]pipeline.Value{pipeline.B(16, 0), pipeline.B(8, 0), pipeline.B(32, 0)}),
		UPFAddr:      upfAddr,
		EnbAddr:      enbAddr,
		UEPrefix:     uePrefix,
		UEPrefixBits: uePrefixBits,
		Routes:       &netsim.L3Program{},
		Accounting:   NewAccounting(),
	}
}

func newTermTable(name string) *pipeline.Table {
	return pipeline.NewTable(name,
		[]pipeline.KeySpec{
			{Name: "ue_id", Width: 16, Kind: pipeline.MatchExact},
			{Name: "app_id", Width: 8, Kind: pipeline.MatchExact},
		},
		[]pipeline.FieldRef{"fabric.term_fwd"},
		[]pipeline.Value{pipeline.B(1, 0)}) // default drop
}

// Process implements netsim.ForwardingProgram.
func (u *UPF) Process(sw *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	switch {
	case pkt.HasGTPU && pkt.HasInnerIPv4:
		return u.uplink(sw, pkt, meta)
	case pkt.HasIPv4 && pkt.IPv4.Dst.InPrefix(u.UEPrefix, u.UEPrefixBits):
		return u.downlink(sw, pkt, meta)
	default:
		return u.Routes.Process(sw, pkt, meta)
	}
}

func (u *UPF) uplink(sw *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	u.UplinkPkts++
	sess, hit := u.SessUplink.Lookup([]uint64{uint64(pkt.GTPU.TEID)})
	if !hit {
		meta.Drop = true
		return nil
	}
	ueID, sliceID := sess[0].V, sess[1].V

	// Classify on the *inner* (user) packet.
	proto := uint64(pkt.InnerIPv4.Protocol)
	dport := uint64(0)
	switch {
	case pkt.HasInnerUDP:
		dport = uint64(pkt.InnerUDP.DstPort)
	case pkt.HasInnerTCP:
		dport = uint64(pkt.InnerTCP.DstPort)
	}
	app, _ := u.Applications.Lookup([]uint64{sliceID, uint64(pkt.InnerIPv4.Dst), dport, proto})
	appID := app[0].V

	term, _ := u.TermUplink.Lookup([]uint64{ueID, appID})
	if !term[0].Bool() {
		u.FilteredDrops++
		meta.Drop = true
		return nil
	}

	if !u.Accounting.record(sw.Sim().Now(), ueID, sliceID, pkt.WireLen(), true) {
		meta.Drop = true // over the slice's maximum bitrate
		return nil
	}

	if err := pkt.DecapGTPU(); err != nil {
		meta.Drop = true
		return nil
	}
	return u.Routes.Process(sw, pkt, meta)
}

func (u *UPF) downlink(sw *netsim.Switch, pkt *dataplane.Decoded, meta *netsim.PacketMeta) []netsim.Egress {
	u.DownlinkPkts++
	sess, hit := u.SessDownlink.Lookup([]uint64{uint64(pkt.IPv4.Dst)})
	if !hit {
		meta.Drop = true
		return nil
	}
	ueID, sliceID, teid := sess[0].V, sess[1].V, sess[2].V

	proto := uint64(pkt.IPv4.Protocol)
	sport := uint64(0)
	switch {
	case pkt.HasUDP:
		sport = uint64(pkt.UDP.SrcPort)
	case pkt.HasTCP:
		sport = uint64(pkt.TCP.SrcPort)
	}
	app, _ := u.Applications.Lookup([]uint64{sliceID, uint64(pkt.IPv4.Src), sport, proto})
	appID := app[0].V

	term, _ := u.TermDownlink.Lookup([]uint64{ueID, appID})
	if !term[0].Bool() {
		u.FilteredDrops++
		meta.Drop = true
		return nil
	}

	if !u.Accounting.record(sw.Sim().Now(), ueID, sliceID, pkt.WireLen(), false) {
		meta.Drop = true // over the slice's maximum bitrate
		return nil
	}

	if err := pkt.EncapGTPU(u.UPFAddr, u.EnbAddr, uint32(teid)); err != nil {
		meta.Drop = true
		return nil
	}
	return u.Routes.Process(sw, pkt, meta)
}

// String summarizes table occupancy, for the hydra-sim tool.
func (u *UPF) String() string {
	return fmt.Sprintf("UPF{apps=%d termUL=%d termDL=%d sessUL=%d sessDL=%d drops=%d}",
		u.Applications.Len(), u.TermUplink.Len(), u.TermDownlink.Len(),
		u.SessUplink.Len(), u.SessDownlink.Len(), u.FilteredDrops)
}
