// Package pcapio reads and writes classic libpcap capture files — the
// interchange format between the fleet's ingest daemon and whatever
// produced the mirrored traffic (a tcpdump on the campus tap, or this
// repo's own trafficgen rendering). Only the classic format is
// implemented (magic 0xa1b2c3d4 / 0xa1b23c4d, both endiannesses,
// microsecond and nanosecond timestamps); pcapng is out of scope.
package pcapio

import (
	"encoding/binary"
	"fmt"
	"io"
)

// LinkEthernet is the only link type the fleet consumes.
const LinkEthernet = 1

const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d

	globalHeaderLen = 24
	recordHeaderLen = 16

	// MaxSnapLen bounds per-record lengths so a corrupt capture cannot
	// drive an allocation of arbitrary size.
	MaxSnapLen = 1 << 18
)

// Writer emits a classic pcap stream (little-endian, nanosecond
// timestamps, Ethernet link type).
type Writer struct {
	w    io.Writer
	hdr  [recordHeaderLen]byte
	snap uint32
}

// NewWriter writes the global header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var g [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(g[0:], magicNanos)
	binary.LittleEndian.PutUint16(g[4:], 2) // version major
	binary.LittleEndian.PutUint16(g[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(g[16:], MaxSnapLen)
	binary.LittleEndian.PutUint32(g[20:], LinkEthernet)
	if _, err := w.Write(g[:]); err != nil {
		return nil, fmt.Errorf("pcapio: writing global header: %w", err)
	}
	return &Writer{w: w, snap: MaxSnapLen}, nil
}

// WriteFrame appends one record. ts is nanoseconds since the epoch of
// the capture (any monotone origin works; the fleet only orders by it).
func (w *Writer) WriteFrame(ts int64, frame []byte) error {
	if len(frame) > int(w.snap) {
		return fmt.Errorf("pcapio: frame of %d bytes exceeds snaplen %d", len(frame), w.snap)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:], uint32(ts/1e9))
	binary.LittleEndian.PutUint32(w.hdr[4:], uint32(ts%1e9))
	binary.LittleEndian.PutUint32(w.hdr[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(w.hdr[12:], uint32(len(frame)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame)
	return err
}

// Reader iterates a classic pcap stream.
type Reader struct {
	r     io.Reader
	order binary.ByteOrder
	nanos bool
	snap  uint32
	link  uint32
	buf   []byte
	hdr   [recordHeaderLen]byte
}

// NewReader parses the global header. Both endiannesses and both
// timestamp resolutions are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	var g [globalHeaderLen]byte
	if _, err := io.ReadFull(r, g[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading global header: %w", err)
	}
	rd := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(g[0:])
	switch magicLE {
	case magicMicros, magicNanos:
		rd.order = binary.LittleEndian
		rd.nanos = magicLE == magicNanos
	default:
		magicBE := binary.BigEndian.Uint32(g[0:])
		switch magicBE {
		case magicMicros, magicNanos:
			rd.order = binary.BigEndian
			rd.nanos = magicBE == magicNanos
		default:
			return nil, fmt.Errorf("pcapio: bad magic %#08x", magicLE)
		}
	}
	rd.snap = rd.order.Uint32(g[16:])
	if rd.snap == 0 || rd.snap > MaxSnapLen {
		rd.snap = MaxSnapLen
	}
	rd.link = rd.order.Uint32(g[20:])
	return rd, nil
}

// LinkType returns the capture's link-layer type (LinkEthernet for
// frames this repo can parse).
func (r *Reader) LinkType() uint32 { return r.link }

// Next returns the next record. The frame slice is owned by the reader
// and valid only until the following Next call; io.EOF marks a clean
// end of stream.
func (r *Reader) Next() (ts int64, frame []byte, err error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("pcapio: truncated record header: %w", io.ErrUnexpectedEOF)
		}
		return 0, nil, err
	}
	sec := int64(r.order.Uint32(r.hdr[0:]))
	sub := int64(r.order.Uint32(r.hdr[4:]))
	if r.nanos {
		ts = sec*1e9 + sub
	} else {
		ts = sec*1e9 + sub*1e3
	}
	incl := r.order.Uint32(r.hdr[8:])
	if incl > r.snap {
		return 0, nil, fmt.Errorf("pcapio: record of %d bytes exceeds snaplen %d", incl, r.snap)
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return 0, nil, fmt.Errorf("pcapio: truncated record body: %w", err)
	}
	return ts, r.buf, nil
}
