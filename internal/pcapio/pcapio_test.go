package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		bytes.Repeat([]byte{0xaa}, 64),
		bytes.Repeat([]byte{0xbb}, 1500),
		{0x01},
	}
	times := []int64{0, 1_000_000_001, 3_999_999_999}
	for i, f := range frames {
		if err := w.WriteFrame(times[i], f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkEthernet {
		t.Fatalf("link type = %d, want %d", r.LinkType(), LinkEthernet)
	}
	for i := range frames {
		ts, frame, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ts != times[i] {
			t.Fatalf("record %d: ts = %d, want %d", i, ts, times[i])
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Fatalf("record %d: frame mismatch (%d vs %d bytes)", i, len(frame), len(frames[i]))
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
}

// TestReaderBigEndianMicros: a foreign-endian microsecond capture (the
// common tcpdump output on big-endian hosts) must read back with
// timestamps scaled to nanoseconds.
func TestReaderBigEndianMicros(t *testing.T) {
	var buf bytes.Buffer
	var g [globalHeaderLen]byte
	binary.BigEndian.PutUint32(g[0:], magicMicros)
	binary.BigEndian.PutUint16(g[4:], 2)
	binary.BigEndian.PutUint16(g[6:], 4)
	binary.BigEndian.PutUint32(g[16:], 65535)
	binary.BigEndian.PutUint32(g[20:], LinkEthernet)
	buf.Write(g[:])
	var h [recordHeaderLen]byte
	binary.BigEndian.PutUint32(h[0:], 7)  // sec
	binary.BigEndian.PutUint32(h[4:], 42) // usec
	binary.BigEndian.PutUint32(h[8:], 3)
	binary.BigEndian.PutUint32(h[12:], 3)
	buf.Write(h[:])
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, frame, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(7*1e9 + 42*1e3); ts != want {
		t.Fatalf("ts = %d, want %d", ts, want)
	}
	if !bytes.Equal(frame, []byte{1, 2, 3}) {
		t.Fatalf("frame = %v", frame)
	}
}

func TestReaderMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteFrame(1, []byte{9, 9, 9, 9}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] = 0x00
		if _, err := NewReader(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("err = %v, want bad magic", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(valid[:globalHeaderLen+4]))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Next(); err == nil {
			t.Fatal("want error on truncated record header")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(valid[:len(valid)-2]))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Next(); err == nil {
			t.Fatal("want error on truncated record body")
		}
	})
	t.Run("oversized record", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(b[globalHeaderLen+8:], MaxSnapLen+1)
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "snaplen") {
			t.Fatalf("err = %v, want snaplen error", err)
		}
	})
}

func TestWriterRejectsOversized(t *testing.T) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, make([]byte, MaxSnapLen+1)); err == nil {
		t.Fatal("want error writing oversized frame")
	}
}
