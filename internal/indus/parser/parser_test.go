package parser

import (
	"strings"
	"testing"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
)

// wrap builds a minimal program around a checker-block body.
func wrap(decls, initB, teleB, checkB string) string {
	return decls + "\n{" + initB + "}\n{" + teleB + "}\n{" + checkB + "}\n"
}

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.indus", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func TestEmptyProgram(t *testing.T) {
	prog := mustParse(t, "{}{}{}")
	if len(prog.Decls) != 0 || len(prog.Init.Stmts) != 0 || len(prog.Telemetry.Stmts) != 0 || len(prog.Checker.Stmts) != 0 {
		t.Fatalf("expected empty program, got %+v", prog)
	}
}

func TestDeclarations(t *testing.T) {
	src := wrap(`
		tele bit<8> tenant;
		tele bool violated = false;
		sensor bit<32> load = 0;
		header bit<8> in_port @ "standard_metadata.ingress_port";
		control dict<bit<8>,bit<8>> tenants;
		control dict<(bit<32>,bit<32>),bool> allowed;
		control set<bit<8>> ports;
		tele bit<32>[15] loads;
	`, "", "", "")
	prog := mustParse(t, src)
	if len(prog.Decls) != 8 {
		t.Fatalf("got %d decls, want 8", len(prog.Decls))
	}

	tests := []struct {
		name string
		kind ast.VarKind
		typ  string
	}{
		{"tenant", ast.KindTele, "bit<8>"},
		{"violated", ast.KindTele, "bool"},
		{"load", ast.KindSensor, "bit<32>"},
		{"in_port", ast.KindHeader, "bit<8>"},
		{"tenants", ast.KindControl, "dict<bit<8>,bit<8>>"},
		{"allowed", ast.KindControl, "dict<(bit<32>,bit<32>),bool>"},
		{"ports", ast.KindControl, "set<bit<8>>"},
		{"loads", ast.KindTele, "bit<32>[15]"},
	}
	for i, tt := range tests {
		d := prog.Decls[i]
		if d.Name != tt.name || d.Kind != tt.kind || d.Type.String() != tt.typ {
			t.Errorf("decl %d: got %s %s %s, want %s %s %s", i, d.Kind, d.Type, d.Name, tt.kind, tt.typ, tt.name)
		}
	}
	if prog.Decls[3].Annot != "standard_metadata.ingress_port" {
		t.Errorf("annotation not captured: %q", prog.Decls[3].Annot)
	}
	if prog.Decls[1].Init == nil || prog.Decls[2].Init == nil {
		t.Errorf("initializers not captured")
	}
}

func TestNestedDictClosingAngles(t *testing.T) {
	// dict<bit<8>,dict<...>> produces a >> token that the parser must split.
	src := wrap("control dict<bit<8>,bit<16>> t;", "", "", "")
	prog := mustParse(t, src)
	want := "dict<bit<8>,bit<16>>"
	if got := prog.Decls[0].Type.String(); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestStatements(t *testing.T) {
	src := wrap(
		"tele bit<8> x; tele bit<8>[4] xs; header bit<8> p;",
		"x = p; xs.push(x);",
		`if (x == 1) { x = 2; } elsif (x == 2) { x = 3; } else { pass; }
		 for (v in xs) { x = v; }
		 x += 1; x -= 1;`,
		"if (x != 0) { reject; report(x); report; }",
	)
	prog := mustParse(t, src)
	if n := len(prog.Init.Stmts); n != 2 {
		t.Fatalf("init: got %d stmts, want 2", n)
	}
	if _, ok := prog.Init.Stmts[1].(*ast.ExprStmt); !ok {
		t.Errorf("push should parse as ExprStmt, got %T", prog.Init.Stmts[1])
	}

	ifStmt, ok := prog.Telemetry.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("want *ast.If, got %T", prog.Telemetry.Stmts[0])
	}
	elsif, ok := ifStmt.Else.(*ast.If)
	if !ok {
		t.Fatalf("elsif should desugar to nested If, got %T", ifStmt.Else)
	}
	if _, ok := elsif.Else.(*ast.Block); !ok {
		t.Fatalf("final else should be a Block, got %T", elsif.Else)
	}

	forStmt, ok := prog.Telemetry.Stmts[1].(*ast.For)
	if !ok || len(forStmt.Vars) != 1 || forStmt.Vars[0] != "v" {
		t.Fatalf("for loop mis-parsed: %+v", prog.Telemetry.Stmts[1])
	}

	checker := prog.Checker.Stmts[0].(*ast.If)
	if len(checker.Then.Stmts) != 3 {
		t.Fatalf("checker then-block: got %d stmts", len(checker.Then.Stmts))
	}
	rep := checker.Then.Stmts[1].(*ast.Report)
	if len(rep.Args) != 1 {
		t.Errorf("report(x): got %d args", len(rep.Args))
	}
	bare := checker.Then.Stmts[2].(*ast.Report)
	if len(bare.Args) != 0 {
		t.Errorf("bare report: got %d args", len(bare.Args))
	}
}

func TestMultiVarFor(t *testing.T) {
	src := wrap(
		"tele bit<32>[15] ls; tele bit<32>[15] rs; control bit<32> thresh;",
		"", "",
		"for (l, r in ls, rs) { if (abs(l - r) > thresh) { report; } }",
	)
	prog := mustParse(t, src)
	f := prog.Checker.Stmts[0].(*ast.For)
	if len(f.Vars) != 2 || len(f.Seqs) != 2 {
		t.Fatalf("got %d vars %d seqs", len(f.Vars), len(f.Seqs))
	}
}

func TestExprPrecedence(t *testing.T) {
	tests := []struct{ src, want string }{
		{"a + b * c", "(a + (b * c))"},
		{"a * b + c", "((a * b) + c)"},
		{"a == b && c == d", "((a == b) && (c == d))"},
		{"a && b || c", "((a && b) || c)"},
		{"!a && b", "(!a && b)"},
		{"a - b - c", "((a - b) - c)"},
		{"a < b == true", "((a < b) == true)"},
		{"a & b | c ^ d", "((a & b) | (c ^ d))"},
		{"a << 2 + 1", "((a << 2) + 1)"},
		{"x in xs && y in ys", "((x in xs) && (y in ys))"},
		{"~a + b", "(~a + b)"},
		{"-a * b", "(-a * b)"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if got := e.String(); got != tt.want {
			t.Errorf("%q: got %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestTupleExprAndIndex(t *testing.T) {
	e, err := ParseExpr("allowed[(ipv4_src, ipv4_dst)]")
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := e.(*ast.Index)
	if !ok {
		t.Fatalf("want Index, got %T", e)
	}
	tup, ok := idx.Idx.(*ast.Tuple)
	if !ok || len(tup.Elems) != 2 {
		t.Fatalf("want 2-tuple index, got %v", idx.Idx)
	}
}

func TestParenIsNotTuple(t *testing.T) {
	e, err := ParseExpr("(a + b)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.Tuple); ok {
		t.Fatal("single parenthesized expression must not be a tuple")
	}
}

func TestMethodCalls(t *testing.T) {
	e, err := ParseExpr("xs.length")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := e.(*ast.Method)
	if !ok || m.Name != "length" {
		t.Fatalf("got %v", e)
	}
}

func TestHexAndBinaryLiterals(t *testing.T) {
	for _, tt := range []struct {
		src  string
		want uint64
	}{{"0x2A", 42}, {"0b1010", 10}, {"7", 7}} {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Fatal(err)
		}
		if lit := e.(*ast.IntLit); lit.Value != tt.want {
			t.Errorf("%q: got %d, want %d", tt.src, lit.Value, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, src, wantSub string }{
		{"missing block", "{}{}", "expected {"},
		{"four blocks", "{}{}{}{}", "exactly three blocks"},
		{"init on header", wrap("header bit<8> p = 1;", "", "", ""), "cannot have an initializer"},
		{"annot on tele", wrap(`tele bit<8> x @ "y";`, "", "", ""), "only valid on header"},
		{"bad width", wrap("tele bit<65> x;", "", "", ""), "bit width"},
		{"zero array", wrap("tele bit<8>[0] xs;", "", "", ""), "array length"},
		{"bad assign target", wrap("tele bit<8> x;", "1 = x;", "", ""), "assignment target"},
		{"stray expr stmt", wrap("tele bit<8> x;", "x;", "", ""), "push"},
		{"mismatched for", wrap("tele bit<8>[2] a; tele bit<8>[2] b;", "", "for (x in a, b) {}", ""), "1 variables but 2 sequences"},
		{"unknown method", wrap("tele bit<8>[2] a;", "a.pop();", "", ""), "unknown method"},
		{"reject no semi", "{}{}{reject}", "expected ;"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse("", tt.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestAssignOps(t *testing.T) {
	src := wrap("tele bit<8> x; tele bit<8>[4] xs;", "x += 1; x -= 2; xs[0] = 3; xs[1] += 4;", "", "")
	prog := mustParse(t, src)
	ops := []token.Kind{token.PLUSASSIGN, token.MINUSASSIGN, token.ASSIGN, token.PLUSASSIGN}
	for i, want := range ops {
		a := prog.Init.Stmts[i].(*ast.Assign)
		if a.Op != want {
			t.Errorf("stmt %d: op %s, want %s", i, a.Op, want)
		}
	}
	if _, ok := prog.Init.Stmts[2].(*ast.Assign).LHS.(*ast.Index); !ok {
		t.Errorf("xs[0] should be an Index lvalue")
	}
}

func TestPositionsSurviveParsing(t *testing.T) {
	prog := mustParse(t, "tele bit<8> x;\n{\nx = 1;\n}{}{}")
	a := prog.Init.Stmts[0].(*ast.Assign)
	if a.Pos.Line != 3 {
		t.Errorf("assign position line = %d, want 3", a.Pos.Line)
	}
}
