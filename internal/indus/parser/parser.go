// Package parser builds Indus abstract syntax trees from source text.
//
// The parser is a recursive-descent parser with precedence climbing for
// expressions. It follows the grammar of Figure 4 in the Hydra paper with
// the prototype extensions: elsif chains, multi-variable for loops,
// report(value) exceptions, tuple expressions/types, hex and binary
// literals, and the list methods push and length.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/indus/ast"
	"repro/internal/indus/lexer"
	"repro/internal/indus/token"
)

// Parser holds the token stream and accumulated diagnostics.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// bailout is used to abort parsing on an unrecoverable error; it is caught
// in Parse and reported with the accumulated diagnostics.
type bailout struct{}

// Parse parses a complete Indus program. file names the source for
// positions and may be empty.
func Parse(file, src string) (prog *ast.Program, err error) {
	toks, lexErrs := lexer.ScanAll(file, []byte(src))
	p := &Parser{toks: toks}
	p.errs = append(p.errs, lexErrs...)

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			prog, err = nil, errors.Join(p.errs...)
		}
	}()

	prog = p.parseProgram()
	if len(p.errs) > 0 {
		return nil, errors.Join(p.errs...)
	}
	return prog, nil
}

// ParseExpr parses a single expression, for tests and tools.
func ParseExpr(src string) (e ast.Expr, err error) {
	toks, lexErrs := lexer.ScanAll("", []byte(src))
	p := &Parser{toks: toks}
	p.errs = append(p.errs, lexErrs...)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			e, err = nil, errors.Join(p.errs...)
		}
	}()
	e = p.parseExpr()
	p.expect(token.EOF)
	if len(p.errs) > 0 {
		return nil, errors.Join(p.errs...)
	}
	return e, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	if len(p.errs) > 20 {
		panic(bailout{})
	}
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	panic(bailout{})
}

// ---------------------------------------------------------------------------
// Program structure

func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.LBRACE) && !p.at(token.EOF) {
		prog.Decls = append(prog.Decls, p.parseDecl())
	}
	prog.Init = p.parseBlock()
	prog.Telemetry = p.parseBlock()
	prog.Checker = p.parseBlock()
	if !p.at(token.EOF) {
		p.errorf(p.cur().Pos, "unexpected %s after checker block (an Indus program has exactly three blocks)", p.cur())
	}
	return prog
}

func (p *Parser) parseDecl() ast.Decl {
	start := p.cur().Pos
	var kind ast.VarKind
	switch p.cur().Kind {
	case token.TELE:
		kind = ast.KindTele
	case token.SENSOR:
		kind = ast.KindSensor
	case token.HEADER:
		kind = ast.KindHeader
	case token.CONTROL:
		kind = ast.KindControl
	default:
		p.errorf(start, "expected declaration modifier (tele/sensor/header/control), found %s", p.cur())
		panic(bailout{})
	}
	p.next()

	typ := p.parseType()
	name := p.expect(token.IDENT).Lit

	d := ast.Decl{Kind: kind, Type: typ, Name: name, Pos: start}

	if p.accept(token.AT) {
		d.Annot = p.expect(token.STRING).Lit
	}
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)

	if d.Init != nil && !kind.Writable() {
		p.errorf(start, "%s variable %q cannot have an initializer (read-only state supplied by the %s)", kind, name, sourceOf(kind))
	}
	if d.Annot != "" && kind != ast.KindHeader {
		p.errorf(start, "@-annotation is only valid on header variables, found on %s %q", kind, name)
	}
	return d
}

func sourceOf(k ast.VarKind) string {
	if k == ast.KindControl {
		return "control plane"
	}
	return "data plane"
}

// parseType parses a type, including array suffixes: bit<8>[15].
func (p *Parser) parseType() ast.Type {
	t := p.parseBaseType()
	for p.at(token.LBRACKET) {
		p.next()
		n := p.parseIntLit("array length")
		p.expect(token.RBRACKET)
		if n <= 0 {
			p.errorf(p.cur().Pos, "array length must be positive, got %d", n)
			n = 1
		}
		t = ast.ArrayType{Elem: t, Len: int(n)}
	}
	return t
}

func (p *Parser) parseBaseType() ast.Type {
	switch p.cur().Kind {
	case token.BIT:
		p.next()
		p.expect(token.LT)
		w := p.parseIntLit("bit width")
		p.expectGT()
		if w < 1 || w > 64 {
			p.errorf(p.cur().Pos, "bit width must be in 1..64, got %d", w)
			w = 1
		}
		return ast.BitType{Width: int(w)}
	case token.BOOL:
		p.next()
		return ast.BoolType{}
	case token.SET:
		p.next()
		p.expect(token.LT)
		elem := p.parseKeyType()
		p.expectGT()
		return ast.SetType{Elem: elem}
	case token.DICT:
		p.next()
		p.expect(token.LT)
		key := p.parseKeyType()
		p.expect(token.COMMA)
		val := p.parseType()
		p.expectGT()
		return ast.DictType{Key: key, Val: val}
	case token.LPAREN:
		return p.parseKeyType()
	}
	p.errorf(p.cur().Pos, "expected type, found %s", p.cur())
	panic(bailout{})
}

// parseKeyType parses a type usable as a dict key or set element: a base
// type or a parenthesized tuple of base types.
func (p *Parser) parseKeyType() ast.Type {
	if p.accept(token.LPAREN) {
		var elems []ast.Type
		elems = append(elems, p.parseType())
		for p.accept(token.COMMA) {
			elems = append(elems, p.parseType())
		}
		p.expect(token.RPAREN)
		if len(elems) == 1 {
			return elems[0]
		}
		return ast.TupleType{Elems: elems}
	}
	return p.parseType()
}

// expectGT consumes a closing > inside a type, splitting a >> token that
// the lexer produced from adjacent closing angles (e.g. dict<bit<8>,bool>
// ends with 8>> from the lexer's point of view).
func (p *Parser) expectGT() {
	if p.at(token.SHR) {
		// Split >> into two > tokens by rewriting the current token.
		p.toks[p.pos] = token.Token{Kind: token.GT, Pos: p.cur().Pos}
		return
	}
	p.expect(token.GT)
}

func (p *Parser) parseIntLit(what string) uint64 {
	t := p.expect(token.INT)
	v, err := parseUint(t.Lit)
	if err != nil {
		p.errorf(t.Pos, "invalid %s %q: %v", what, t.Lit, err)
		return 0
	}
	return v
}

func parseUint(lit string) (uint64, error) {
	switch {
	case strings.HasPrefix(lit, "0x"), strings.HasPrefix(lit, "0X"):
		return strconv.ParseUint(lit[2:], 16, 64)
	case strings.HasPrefix(lit, "0b"), strings.HasPrefix(lit, "0B"):
		return strconv.ParseUint(lit[2:], 2, 64)
	default:
		return strconv.ParseUint(lit, 10, 64)
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.Block {
	start := p.expect(token.LBRACE).Pos
	b := &ast.Block{Pos: start}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	start := p.cur().Pos
	switch p.cur().Kind {
	case token.PASS:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Pass{Pos: start}

	case token.REJECT:
		p.next()
		p.expect(token.SEMICOLON)
		return &ast.Reject{Pos: start}

	case token.REPORT:
		p.next()
		r := &ast.Report{Pos: start}
		if p.accept(token.LPAREN) {
			if !p.at(token.RPAREN) {
				r.Args = append(r.Args, p.parseExpr())
				for p.accept(token.COMMA) {
					r.Args = append(r.Args, p.parseExpr())
				}
			}
			p.expect(token.RPAREN)
		}
		p.expect(token.SEMICOLON)
		return r

	case token.IF:
		return p.parseIf()

	case token.FOR:
		return p.parseFor()

	case token.LBRACE:
		return p.parseBlock()
	}

	// Assignment or expression statement (push).
	lhs := p.parseExpr()
	switch p.cur().Kind {
	case token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN:
		op := p.next().Kind
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		switch lhs.(type) {
		case *ast.Ident, *ast.Index:
		default:
			p.errorf(start, "invalid assignment target %s", lhs)
		}
		return &ast.Assign{LHS: lhs, Op: op, RHS: rhs, Pos: start}
	default:
		p.expect(token.SEMICOLON)
		if m, ok := lhs.(*ast.Method); !ok || m.Name != "push" {
			p.errorf(start, "expression statement must be a push call, found %s", lhs)
		}
		return &ast.ExprStmt{X: lhs, Pos: start}
	}
}

func (p *Parser) parseIf() ast.Stmt {
	start := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	stmt := &ast.If{Cond: cond, Then: then, Pos: start}

	switch p.cur().Kind {
	case token.ELSIF:
		elsifPos := p.cur().Pos
		// Rewrite elsif into else { if ... } by reusing parseIf.
		p.toks[p.pos] = token.Token{Kind: token.IF, Pos: elsifPos}
		stmt.Else = p.parseIf()
	case token.ELSE:
		p.next()
		stmt.Else = p.parseBlock()
	}
	return stmt
}

func (p *Parser) parseFor() ast.Stmt {
	start := p.expect(token.FOR).Pos
	p.expect(token.LPAREN)
	f := &ast.For{Pos: start}
	f.Vars = append(f.Vars, p.expect(token.IDENT).Lit)
	for p.accept(token.COMMA) {
		f.Vars = append(f.Vars, p.expect(token.IDENT).Lit)
	}
	p.expect(token.IN)
	f.Seqs = append(f.Seqs, p.parseExpr())
	for p.accept(token.COMMA) {
		f.Seqs = append(f.Seqs, p.parseExpr())
	}
	p.expect(token.RPAREN)
	if len(f.Vars) != len(f.Seqs) {
		p.errorf(start, "for loop has %d variables but %d sequences", len(f.Vars), len(f.Seqs))
	}
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		pos := p.next().Pos
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.Binary{Op: op, X: lhs, Y: rhs, Pos: pos}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.NOT, token.TILDE, token.MINUS:
		t := p.next()
		x := p.parseUnary()
		return &ast.Unary{Op: t.Kind, X: x, Pos: t.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACKET:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.Index{X: x, Idx: idx, Pos: pos}
		case token.DOT:
			pos := p.next().Pos
			name := p.expect(token.IDENT).Lit
			var args []ast.Expr
			if p.accept(token.LPAREN) {
				if !p.at(token.RPAREN) {
					args = append(args, p.parseExpr())
					for p.accept(token.COMMA) {
						args = append(args, p.parseExpr())
					}
				}
				p.expect(token.RPAREN)
			}
			switch name {
			case "push", "length":
			default:
				p.errorf(pos, "unknown method %q (supported: push, length)", name)
			}
			x = &ast.Method{Recv: x, Name: name, Args: args, Pos: pos}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := parseUint(t.Lit)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q: %v", t.Lit, err)
		}
		return &ast.IntLit{Value: v, Pos: t.Pos}

	case token.TRUE, token.FALSE:
		p.next()
		return &ast.BoolLit{Value: t.Kind == token.TRUE, Pos: t.Pos}

	case token.IDENT:
		p.next()
		// Builtin function call: abs(x), max(a,b), min(a,b).
		if p.at(token.LPAREN) {
			switch t.Lit {
			case "abs", "max", "min":
				p.next()
				var args []ast.Expr
				if !p.at(token.RPAREN) {
					args = append(args, p.parseExpr())
					for p.accept(token.COMMA) {
						args = append(args, p.parseExpr())
					}
				}
				p.expect(token.RPAREN)
				return &ast.Call{Name: t.Lit, Args: args, Pos: t.Pos}
			}
		}
		return &ast.Ident{Name: t.Lit, Pos: t.Pos}

	case token.LPAREN:
		p.next()
		first := p.parseExpr()
		if p.at(token.COMMA) {
			tup := &ast.Tuple{Elems: []ast.Expr{first}, Pos: t.Pos}
			for p.accept(token.COMMA) {
				tup.Elems = append(tup.Elems, p.parseExpr())
			}
			p.expect(token.RPAREN)
			return tup
		}
		p.expect(token.RPAREN)
		return first
	}

	p.errorf(t.Pos, "expected expression, found %s", t)
	panic(bailout{})
}
