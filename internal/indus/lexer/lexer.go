// Package lexer converts Indus source text into a token stream.
//
// The lexer is a hand-written scanner in the style of the Go standard
// library's text/scanner: it operates on a byte slice, tracks line/column
// positions, and reports malformed input as ILLEGAL tokens rather than
// aborting, so the parser can produce positioned diagnostics.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/indus/token"
)

// Lexer scans an Indus source buffer.
type Lexer struct {
	src  []byte
	file string

	off  int // current read offset
	line int
	col  int

	errs []error
}

// New returns a lexer over src. file is used in positions and may be empty.
func New(file string, src []byte) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the scan errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

// peek returns the byte at offset off+n without consuming, or 0 at EOF.
func (l *Lexer) peek(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch c := l.src[l.off]; {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance()
			}
		case c == '/' && l.peek(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.src[l.off] == '*' && l.peek(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	c := l.src[l.off]
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.advance()
		}
		lit := string(l.src[start:l.off])
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: kind, Lit: lit, Pos: pos}

	case isDigit(c):
		return l.scanNumber(pos)

	case c == '"':
		return l.scanString(pos)
	}

	// Operators and punctuation.
	two := func(k token.Kind) token.Token {
		l.advance()
		l.advance()
		return token.Token{Kind: k, Pos: pos}
	}
	one := func(k token.Kind) token.Token {
		l.advance()
		return token.Token{Kind: k, Pos: pos}
	}
	switch c {
	case '+':
		if l.peek(1) == '=' {
			return two(token.PLUSASSIGN)
		}
		return one(token.PLUS)
	case '-':
		if l.peek(1) == '=' {
			return two(token.MINUSASSIGN)
		}
		return one(token.MINUS)
	case '*':
		return one(token.STAR)
	case '/':
		return one(token.SLASH)
	case '%':
		return one(token.PERCENT)
	case '~':
		return one(token.TILDE)
	case '&':
		if l.peek(1) == '&' {
			return two(token.LAND)
		}
		return one(token.AMP)
	case '|':
		if l.peek(1) == '|' {
			return two(token.LOR)
		}
		return one(token.PIPE)
	case '^':
		return one(token.CARET)
	case '=':
		if l.peek(1) == '=' {
			return two(token.EQ)
		}
		return one(token.ASSIGN)
	case '!':
		if l.peek(1) == '=' {
			return two(token.NEQ)
		}
		return one(token.NOT)
	case '<':
		switch l.peek(1) {
		case '=':
			return two(token.LEQ)
		case '<':
			return two(token.SHL)
		}
		return one(token.LT)
	case '>':
		switch l.peek(1) {
		case '=':
			return two(token.GEQ)
		case '>':
			return two(token.SHR)
		}
		return one(token.GT)
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '{':
		return one(token.LBRACE)
	case '}':
		return one(token.RBRACE)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMICOLON)
	case '.':
		return one(token.DOT)
	case '@':
		return one(token.AT)
	}

	l.advance()
	l.errorf(pos, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	if l.src[l.off] == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek(0)) {
			l.errorf(pos, "malformed hex literal")
			return token.Token{Kind: token.ILLEGAL, Lit: string(l.src[start:l.off]), Pos: pos}
		}
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.advance()
		}
	} else if l.src[l.off] == '0' && (l.peek(1) == 'b' || l.peek(1) == 'B') {
		l.advance()
		l.advance()
		if b := l.peek(0); b != '0' && b != '1' {
			l.errorf(pos, "malformed binary literal")
			return token.Token{Kind: token.ILLEGAL, Lit: string(l.src[start:l.off]), Pos: pos}
		}
		for l.off < len(l.src) && (l.src[l.off] == '0' || l.src[l.off] == '1') {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.advance()
		}
	}
	lit := string(l.src[start:l.off])
	if l.off < len(l.src) && isLetter(l.src[l.off]) {
		l.errorf(pos, "identifier immediately follows number %q", lit)
	}
	return token.Token{Kind: token.INT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\n' {
			break
		}
		l.advance()
		if c == '"' {
			return token.Token{Kind: token.STRING, Lit: sb.String(), Pos: pos}
		}
		if c == '\\' && l.off < len(l.src) {
			esc := l.advance()
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				l.errorf(pos, "unknown escape \\%c", esc)
				sb.WriteByte(esc)
			}
			continue
		}
		sb.WriteByte(c)
	}
	l.errorf(pos, "unterminated string literal")
	return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
}

// ScanAll lexes the entire buffer and returns all tokens up to and
// including EOF. It is a convenience for tests and the parser.
func ScanAll(file string, src []byte) ([]token.Token, []error) {
	l := New(file, src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
