package lexer

import (
	"strings"
	"testing"

	"repro/internal/indus/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll("test", []byte(src))
	for _, e := range errs {
		t.Fatalf("unexpected lex error: %v", e)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "tele sensor header control bit bool set dict tenant")
	want := []token.Kind{
		token.TELE, token.SENSOR, token.HEADER, token.CONTROL,
		token.BIT, token.BOOL, token.SET, token.DICT, token.IDENT, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []token.Kind
	}{
		{"a == b", []token.Kind{token.IDENT, token.EQ, token.IDENT, token.EOF}},
		{"a != b", []token.Kind{token.IDENT, token.NEQ, token.IDENT, token.EOF}},
		{"a <= b", []token.Kind{token.IDENT, token.LEQ, token.IDENT, token.EOF}},
		{"a >= b", []token.Kind{token.IDENT, token.GEQ, token.IDENT, token.EOF}},
		{"a && b", []token.Kind{token.IDENT, token.LAND, token.IDENT, token.EOF}},
		{"a || b", []token.Kind{token.IDENT, token.LOR, token.IDENT, token.EOF}},
		{"a += b", []token.Kind{token.IDENT, token.PLUSASSIGN, token.IDENT, token.EOF}},
		{"a -= b", []token.Kind{token.IDENT, token.MINUSASSIGN, token.IDENT, token.EOF}},
		{"a << 2", []token.Kind{token.IDENT, token.SHL, token.INT, token.EOF}},
		{"a >> 2", []token.Kind{token.IDENT, token.SHR, token.INT, token.EOF}},
		{"!a", []token.Kind{token.NOT, token.IDENT, token.EOF}},
		{"~a", []token.Kind{token.TILDE, token.IDENT, token.EOF}},
		{"a.push(b)", []token.Kind{token.IDENT, token.DOT, token.IDENT, token.LPAREN, token.IDENT, token.RPAREN, token.EOF}},
	}
	for _, tt := range tests {
		got := kinds(t, tt.src)
		if len(got) != len(tt.want) {
			t.Errorf("%q: got %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("%q token %d: got %s, want %s", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestNumberLiterals(t *testing.T) {
	tests := []struct{ src, lit string }{
		{"42", "42"},
		{"0", "0"},
		{"0x2A", "0x2A"},
		{"0b1010", "0b1010"},
	}
	for _, tt := range tests {
		toks, errs := ScanAll("", []byte(tt.src))
		if len(errs) > 0 {
			t.Errorf("%q: unexpected errors %v", tt.src, errs)
			continue
		}
		if toks[0].Kind != token.INT || toks[0].Lit != tt.lit {
			t.Errorf("%q: got %v, want INT(%q)", tt.src, toks[0], tt.lit)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	toks, errs := ScanAll("", []byte(`"hdr.ipv4.src_addr"`))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Kind != token.STRING || toks[0].Lit != "hdr.ipv4.src_addr" {
		t.Fatalf("got %v, want STRING", toks[0])
	}
}

func TestStringEscapes(t *testing.T) {
	toks, errs := ScanAll("", []byte(`"a\nb\t\"c\\"`))
	if len(errs) > 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Lit != "a\nb\t\"c\\" {
		t.Fatalf("got %q", toks[0].Lit)
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
a /* block
   spanning lines */ b
/* empty */c
`
	got := kinds(t, src)
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPositions(t *testing.T) {
	src := "a\n  bb\n"
	toks, _ := ScanAll("f.indus", []byte(src))
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "f.indus:2:3" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestErrors(t *testing.T) {
	tests := []struct{ src, wantSub string }{
		{"$", "illegal character"},
		{`"unterminated`, "unterminated string"},
		{"/* open", "unterminated block comment"},
		{"0x", "malformed hex"},
		{"0b2", "malformed binary"},
		{"12ab", "identifier immediately follows number"},
		{`"\q"`, "unknown escape"},
	}
	for _, tt := range tests {
		_, errs := ScanAll("", []byte(tt.src))
		if len(errs) == 0 {
			t.Errorf("%q: expected an error containing %q", tt.src, tt.wantSub)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tt.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: errors %v do not mention %q", tt.src, errs, tt.wantSub)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("", []byte("a"))
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d after end: got %v, want EOF", i, tk)
		}
	}
}
