// Package ast defines the abstract syntax tree of the Indus language,
// mirroring the core grammar of Figure 4 in the Hydra paper plus the
// prototype extensions the paper describes (multi-variable for loops,
// report exceptions that carry values, elsif chains, tuple-keyed
// dictionaries, and list push/length operations).
package ast

import (
	"fmt"
	"strings"

	"repro/internal/indus/token"
)

// ---------------------------------------------------------------------------
// Types

// Type is the interface implemented by all Indus types.
type Type interface {
	fmt.Stringer
	// Equal reports structural type equality.
	Equal(Type) bool
	// Bits returns the number of bits a value of this type occupies when
	// carried as telemetry; dictionary and set types return the bits of a
	// single stored element (their backing store lives on the switch).
	Bits() int
}

// BitType is bit<N>: an unsigned bitstring of width N (1..64 supported).
type BitType struct{ Width int }

// BoolType is the boolean type, carried as a single bit on the wire.
type BoolType struct{}

// ArrayType is t[N]: a fixed-capacity list with push semantics
// (implemented as a P4 header stack by the compiler).
type ArrayType struct {
	Elem Type
	Len  int
}

// SetType is set<t>: a switch-resident set with the `in` membership test.
type SetType struct{ Elem Type }

// DictType is dict<k,v>: a control-plane-managed dictionary, realized as a
// match-action table by the compiler.
type DictType struct {
	Key Type
	Val Type
}

// TupleType is (t1, t2, ...): used for compound dictionary keys and for
// report payloads.
type TupleType struct{ Elems []Type }

func (t BitType) String() string   { return fmt.Sprintf("bit<%d>", t.Width) }
func (BoolType) String() string    { return "bool" }
func (t ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Len) }
func (t SetType) String() string   { return fmt.Sprintf("set<%s>", t.Elem) }
func (t DictType) String() string  { return fmt.Sprintf("dict<%s,%s>", t.Key, t.Val) }
func (t TupleType) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (t BitType) Equal(o Type) bool {
	b, ok := o.(BitType)
	return ok && b.Width == t.Width
}
func (BoolType) Equal(o Type) bool { _, ok := o.(BoolType); return ok }
func (t ArrayType) Equal(o Type) bool {
	a, ok := o.(ArrayType)
	return ok && a.Len == t.Len && t.Elem.Equal(a.Elem)
}
func (t SetType) Equal(o Type) bool {
	s, ok := o.(SetType)
	return ok && t.Elem.Equal(s.Elem)
}
func (t DictType) Equal(o Type) bool {
	d, ok := o.(DictType)
	return ok && t.Key.Equal(d.Key) && t.Val.Equal(d.Val)
}
func (t TupleType) Equal(o Type) bool {
	u, ok := o.(TupleType)
	if !ok || len(u.Elems) != len(t.Elems) {
		return false
	}
	for i := range t.Elems {
		if !t.Elems[i].Equal(u.Elems[i]) {
			return false
		}
	}
	return true
}

func (t BitType) Bits() int   { return t.Width }
func (BoolType) Bits() int    { return 1 }
func (t ArrayType) Bits() int { return t.Len * t.Elem.Bits() }
func (t SetType) Bits() int   { return t.Elem.Bits() }
func (t DictType) Bits() int  { return t.Val.Bits() }
func (t TupleType) Bits() int {
	n := 0
	for _, e := range t.Elems {
		n += e.Bits()
	}
	return n
}

// ---------------------------------------------------------------------------
// Declarations

// VarKind classifies a declaration by where its state lives and who may
// write it (§3.2): tele variables ride on the packet, sensor variables are
// switch registers, header variables are read-only views of data-plane
// state, control variables are read-only views of control-plane state.
type VarKind int

const (
	KindTele VarKind = iota
	KindSensor
	KindHeader
	KindControl
)

func (k VarKind) String() string {
	switch k {
	case KindTele:
		return "tele"
	case KindSensor:
		return "sensor"
	case KindHeader:
		return "header"
	case KindControl:
		return "control"
	}
	return fmt.Sprintf("VarKind(%d)", int(k))
}

// Writable reports whether Indus code may assign to variables of this kind.
// Header and control variables are read-only by design so the checker
// cannot interfere with forwarding (§3.1, principle 2).
func (k VarKind) Writable() bool { return k == KindTele || k == KindSensor }

// Decl is a top-level variable declaration.
type Decl struct {
	Kind  VarKind
	Type  Type
	Name  string
	Init  Expr   // optional initializer (tele/sensor only)
	Annot string // optional @"..." annotation binding a header variable to a forwarding-program field
	Pos   token.Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	exprNode()
	Position() token.Pos
	String() string
}

// Ident references a declared variable or a builtin (last_hop,
// packet_length, switch_id, hop_count).
type Ident struct {
	Name string
	Pos  token.Pos
}

// IntLit is an unsigned integer literal.
type IntLit struct {
	Value uint64
	Pos   token.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Pos   token.Pos
}

// Unary is !x, ~x, or -x.
type Unary struct {
	Op  token.Kind
	X   Expr
	Pos token.Pos
}

// Binary is a binary operation, including the `in` membership test.
type Binary struct {
	Op   token.Kind
	X, Y Expr
	Pos  token.Pos
}

// Index is x[i]: array indexing or dictionary lookup.
type Index struct {
	X   Expr
	Idx Expr
	Pos token.Pos
}

// Tuple is (e1, e2, ...): a compound value for dict keys and reports.
type Tuple struct {
	Elems []Expr
	Pos   token.Pos
}

// Call is a builtin function application: abs(e), max(a,b), min(a,b).
type Call struct {
	Name string
	Args []Expr
	Pos  token.Pos
}

// Method is recv.name(args): list operations push and length.
type Method struct {
	Recv Expr
	Name string
	Args []Expr
	Pos  token.Pos
}

func (*Ident) exprNode()   {}
func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Index) exprNode()   {}
func (*Tuple) exprNode()   {}
func (*Call) exprNode()    {}
func (*Method) exprNode()  {}

func (e *Ident) Position() token.Pos   { return e.Pos }
func (e *IntLit) Position() token.Pos  { return e.Pos }
func (e *BoolLit) Position() token.Pos { return e.Pos }
func (e *Unary) Position() token.Pos   { return e.Pos }
func (e *Binary) Position() token.Pos  { return e.Pos }
func (e *Index) Position() token.Pos   { return e.Pos }
func (e *Tuple) Position() token.Pos   { return e.Pos }
func (e *Call) Position() token.Pos    { return e.Pos }
func (e *Method) Position() token.Pos  { return e.Pos }

func (e *Ident) String() string   { return e.Name }
func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e *BoolLit) String() string { return fmt.Sprintf("%t", e.Value) }
func (e *Unary) String() string   { return e.Op.String() + e.X.String() }
func (e *Binary) String() string {
	op := e.Op.String()
	if e.Op == token.IN {
		op = "in"
	}
	return fmt.Sprintf("(%s %s %s)", e.X, op, e.Y)
}
func (e *Index) String() string { return fmt.Sprintf("%s[%s]", e.X, e.Idx) }
func (e *Tuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, x := range e.Args {
		parts[i] = x.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}
func (e *Method) String() string {
	parts := make([]string, len(e.Args))
	for i, x := range e.Args {
		parts[i] = x.String()
	}
	return e.Recv.String() + "." + e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	Position() token.Pos
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Stmts []Stmt
	Pos   token.Pos
}

// Assign is lhs = rhs, lhs += rhs, or lhs -= rhs. LHS is an Ident or Index.
type Assign struct {
	LHS Expr
	Op  token.Kind // ASSIGN, PLUSASSIGN, MINUSASSIGN
	RHS Expr
	Pos token.Pos
}

// If is a conditional; elsif chains are represented as nested If in Else.
type If struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *If, or nil
	Pos  token.Pos
}

// For iterates one or more loop variables over equal-length arrays in
// lockstep: for (x, y in xs, ys) { ... }. Iteration covers the pushed
// (valid) prefix of the arrays.
type For struct {
	Vars []string
	Seqs []Expr
	Body *Block
	Pos  token.Pos
}

// Report raises the report exception: the packet proceeds but the carried
// values are delivered to the control plane.
type Report struct {
	Args []Expr
	Pos  token.Pos
}

// Reject raises the reject exception: the packet is dropped at the edge.
type Reject struct{ Pos token.Pos }

// Pass is the no-op statement.
type Pass struct{ Pos token.Pos }

// ExprStmt is an expression evaluated for effect (list push).
type ExprStmt struct {
	X   Expr
	Pos token.Pos
}

func (*Block) stmtNode()    {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*Report) stmtNode()   {}
func (*Reject) stmtNode()   {}
func (*Pass) stmtNode()     {}
func (*ExprStmt) stmtNode() {}

func (s *Block) Position() token.Pos    { return s.Pos }
func (s *Assign) Position() token.Pos   { return s.Pos }
func (s *If) Position() token.Pos       { return s.Pos }
func (s *For) Position() token.Pos      { return s.Pos }
func (s *Report) Position() token.Pos   { return s.Pos }
func (s *Reject) Position() token.Pos   { return s.Pos }
func (s *Pass) Position() token.Pos     { return s.Pos }
func (s *ExprStmt) Position() token.Pos { return s.Pos }

// ---------------------------------------------------------------------------
// Programs

// Program is a complete Indus program: declarations followed by the three
// code blocks. Init runs at the first hop before any other processing,
// Telemetry runs at every hop, Checker runs at the last hop (§2).
type Program struct {
	Decls     []Decl
	Init      *Block
	Telemetry *Block
	Checker   *Block
}

// Decl returns the declaration of name, or nil.
func (p *Program) Decl(name string) *Decl {
	for i := range p.Decls {
		if p.Decls[i].Name == name {
			return &p.Decls[i]
		}
	}
	return nil
}

// DeclsOfKind returns all declarations with the given kind, in order.
func (p *Program) DeclsOfKind(k VarKind) []Decl {
	var out []Decl
	for _, d := range p.Decls {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// Builtin names available as read-only idents in any block.
const (
	BuiltinLastHop      = "last_hop"      // bool: packet is at its final hop
	BuiltinFirstHop     = "first_hop"     // bool: packet is at its first hop
	BuiltinPacketLength = "packet_length" // bit<32>: wire length of the packet
	BuiltinSwitchID     = "switch_id"     // bit<32>: identifier of this switch
	BuiltinHopCount     = "hop_count"     // bit<8>: hops traversed so far
)

// BuiltinType returns the type of a builtin identifier and whether the
// name is a builtin.
func BuiltinType(name string) (Type, bool) {
	switch name {
	case BuiltinLastHop, BuiltinFirstHop:
		return BoolType{}, true
	case BuiltinPacketLength, BuiltinSwitchID:
		return BitType{Width: 32}, true
	case BuiltinHopCount:
		return BitType{Width: 8}, true
	}
	return nil, false
}
