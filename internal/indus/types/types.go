// Package types implements the Indus type checker (§3.2 of the Hydra
// paper). Beyond classic well-typedness it enforces the language's three
// design restrictions:
//
//  1. header and control variables are read-only, so a checker can never
//     interfere with forwarding;
//  2. all state is statically allocated (bit widths and array lengths are
//     compile-time constants), so programs map onto switch pipelines;
//  3. loops iterate over fixed-length arrays only, so termination is
//     guaranteed and the compiler can fully unroll them.
//
// It additionally restricts reject to the checker block and report to the
// telemetry and checker blocks, matching where the compiler can realize
// those exceptions, and records the resolved type of every expression for
// use by the interpreter and compiler.
package types

import (
	"errors"
	"fmt"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
)

// BlockKind identifies which of the three program blocks a statement
// belongs to; several rules depend on it.
type BlockKind int

const (
	BlockInit BlockKind = iota
	BlockTelemetry
	BlockChecker
)

func (b BlockKind) String() string {
	switch b {
	case BlockInit:
		return "init"
	case BlockTelemetry:
		return "telemetry"
	case BlockChecker:
		return "checker"
	}
	return fmt.Sprintf("BlockKind(%d)", int(b))
}

// Info is the result of a successful check: the symbol table and the
// resolved type of every expression node.
type Info struct {
	Prog *ast.Program
	// Decls maps variable names to their declarations.
	Decls map[string]*ast.Decl
	// ExprTypes records the type of every expression in the program.
	ExprTypes map[ast.Expr]ast.Type
	// MaxReportArity is the widest report(...) payload, used by the
	// compiler to size report digests.
	MaxReportArity int
	// UsesBuiltin records which builtins the program references.
	UsesBuiltin map[string]bool
}

// TypeOf returns the recorded type of e, or nil if e was not part of the
// checked program.
func (in *Info) TypeOf(e ast.Expr) ast.Type { return in.ExprTypes[e] }

type checker struct {
	info  *Info
	errs  []error
	block BlockKind
	// loopVars maps in-scope loop variables to their element types; loop
	// variables are read-only aliases of array slots.
	loopVars map[string]ast.Type
}

// Check type-checks prog and returns the typing information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:        prog,
			Decls:       make(map[string]*ast.Decl),
			ExprTypes:   make(map[ast.Expr]ast.Type),
			UsesBuiltin: make(map[string]bool),
		},
		loopVars: make(map[string]ast.Type),
	}

	c.checkDecls(prog)

	c.block = BlockInit
	c.checkBlock(prog.Init)
	c.block = BlockTelemetry
	c.checkBlock(prog.Telemetry)
	c.block = BlockChecker
	c.checkBlock(prog.Checker)

	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return c.info, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// ---------------------------------------------------------------------------
// Declarations

func (c *checker) checkDecls(prog *ast.Program) {
	for i := range prog.Decls {
		d := &prog.Decls[i]
		if _, isBuiltin := ast.BuiltinType(d.Name); isBuiltin {
			c.errorf(d.Pos, "declaration of %q shadows a builtin", d.Name)
			continue
		}
		if prev, dup := c.info.Decls[d.Name]; dup {
			c.errorf(d.Pos, "duplicate declaration of %q (previous at %s)", d.Name, prev.Pos)
			continue
		}
		c.info.Decls[d.Name] = d
		c.checkDeclType(d)
		if d.Init != nil {
			got := c.checkExpr(d.Init, d.Type)
			if got != nil && !got.Equal(d.Type) {
				c.errorf(d.Pos, "initializer for %q has type %s, want %s", d.Name, got, d.Type)
			}
		}
	}
}

// checkDeclType enforces which types each variable kind may carry:
// telemetry rides on packets (scalars and arrays), sensors are registers
// (scalars or register arrays), headers are packet fields (scalars), and
// control state is scalars, sets, or dictionaries.
func (c *checker) checkDeclType(d *ast.Decl) {
	scalar := func(t ast.Type) bool {
		switch t.(type) {
		case ast.BitType, ast.BoolType:
			return true
		}
		return false
	}
	keyable := func(t ast.Type) bool {
		if scalar(t) {
			return true
		}
		tt, ok := t.(ast.TupleType)
		if !ok {
			return false
		}
		for _, e := range tt.Elems {
			if !scalar(e) {
				return false
			}
		}
		return true
	}

	switch d.Kind {
	case ast.KindTele:
		switch t := d.Type.(type) {
		case ast.BitType, ast.BoolType:
		case ast.ArrayType:
			if !scalar(t.Elem) {
				c.errorf(d.Pos, "tele array %q must have scalar elements, got %s", d.Name, t.Elem)
			}
		default:
			c.errorf(d.Pos, "tele variable %q must be a scalar or fixed array, got %s", d.Name, d.Type)
		}
	case ast.KindSensor:
		switch t := d.Type.(type) {
		case ast.BitType, ast.BoolType:
		case ast.ArrayType:
			if !scalar(t.Elem) {
				c.errorf(d.Pos, "sensor array %q must have scalar elements, got %s", d.Name, t.Elem)
			}
		default:
			c.errorf(d.Pos, "sensor variable %q must be a scalar or register array, got %s", d.Name, d.Type)
		}
	case ast.KindHeader:
		if !scalar(d.Type) {
			c.errorf(d.Pos, "header variable %q must be a scalar packet field, got %s", d.Name, d.Type)
		}
	case ast.KindControl:
		switch t := d.Type.(type) {
		case ast.BitType, ast.BoolType:
		case ast.SetType:
			if !keyable(t.Elem) {
				c.errorf(d.Pos, "control set %q element type %s is not a valid match key", d.Name, t.Elem)
			}
		case ast.DictType:
			if !keyable(t.Key) {
				c.errorf(d.Pos, "control dict %q key type %s is not a valid match key", d.Name, t.Key)
			}
			if !scalar(t.Val) {
				c.errorf(d.Pos, "control dict %q value type must be scalar, got %s", d.Name, t.Val)
			}
		default:
			c.errorf(d.Pos, "control variable %q must be a scalar, set, or dict, got %s", d.Name, d.Type)
		}
	}
}

// ---------------------------------------------------------------------------
// Statements

func (c *checker) checkBlock(b *ast.Block) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)

	case *ast.Pass:

	case *ast.Reject:
		if c.block != BlockChecker {
			c.errorf(s.Pos, "reject is only allowed in the checker block (found in %s block)", c.block)
		}

	case *ast.Report:
		if c.block == BlockInit {
			c.errorf(s.Pos, "report is not allowed in the init block")
		}
		arity := 0
		for _, a := range s.Args {
			t := c.checkExpr(a, nil)
			if tt, ok := t.(ast.TupleType); ok {
				arity += len(tt.Elems)
			} else {
				arity++
			}
		}
		if arity > c.info.MaxReportArity {
			c.info.MaxReportArity = arity
		}

	case *ast.Assign:
		c.checkAssign(s)

	case *ast.If:
		got := c.checkExpr(s.Cond, ast.BoolType{})
		if got != nil {
			if _, ok := got.(ast.BoolType); !ok {
				c.errorf(s.Pos, "if condition has type %s, want bool", got)
			}
		}
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}

	case *ast.For:
		c.checkFor(s)

	case *ast.ExprStmt:
		m, ok := s.X.(*ast.Method)
		if !ok || m.Name != "push" {
			c.errorf(s.Pos, "expression statement must be a push call")
			return
		}
		c.checkExpr(s.X, nil)

	default:
		panic(fmt.Sprintf("types: unknown statement %T", s))
	}
}

func (c *checker) checkAssign(s *ast.Assign) {
	lhsType := c.checkLValue(s.LHS)
	rhs := c.checkExpr(s.RHS, lhsType)
	if lhsType == nil || rhs == nil {
		return
	}
	if !rhs.Equal(lhsType) {
		c.errorf(s.Pos, "cannot assign %s to %s target", rhs, lhsType)
		return
	}
	if s.Op == token.PLUSASSIGN || s.Op == token.MINUSASSIGN {
		if _, ok := lhsType.(ast.BitType); !ok {
			c.errorf(s.Pos, "%s requires a bit<n> target, got %s", s.Op, lhsType)
		}
	}
}

// checkLValue resolves the assignment target and enforces writability.
func (c *checker) checkLValue(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.Ident:
		if _, isLoop := c.loopVars[e.Name]; isLoop {
			c.errorf(e.Pos, "loop variable %q is read-only", e.Name)
			return nil
		}
		d, ok := c.info.Decls[e.Name]
		if !ok {
			if _, isBuiltin := ast.BuiltinType(e.Name); isBuiltin {
				c.errorf(e.Pos, "builtin %q is read-only", e.Name)
			} else {
				c.errorf(e.Pos, "assignment to undeclared variable %q", e.Name)
			}
			return nil
		}
		if !d.Kind.Writable() {
			c.errorf(e.Pos, "%s variable %q is read-only", d.Kind, e.Name)
			return nil
		}
		if d.Kind == ast.KindSensor && c.block == BlockChecker {
			c.errorf(e.Pos, "sensor variable %q cannot be written in the checker block (checks are predicates)", e.Name)
			return nil
		}
		c.info.ExprTypes[e] = d.Type
		return d.Type

	case *ast.Index:
		// Array element assignment: base must itself be a writable array.
		base := c.checkLValue(e.X)
		if base == nil {
			return nil
		}
		arr, ok := base.(ast.ArrayType)
		if !ok {
			c.errorf(e.Pos, "cannot assign through index of %s (only arrays)", base)
			return nil
		}
		idx := c.checkExpr(e.Idx, ast.BitType{Width: 32})
		if idx != nil {
			if _, ok := idx.(ast.BitType); !ok {
				c.errorf(e.Pos, "array index has type %s, want bit<n>", idx)
			}
		}
		c.info.ExprTypes[e] = arr.Elem
		return arr.Elem
	}
	c.errorf(e.Position(), "invalid assignment target %s", e)
	return nil
}

func (c *checker) checkFor(s *ast.For) {
	if len(s.Vars) != len(s.Seqs) {
		c.errorf(s.Pos, "for loop has %d variables but %d sequences", len(s.Vars), len(s.Seqs))
		return
	}
	saved := make(map[string]ast.Type, len(s.Vars))
	var firstLen = -1
	for i, name := range s.Vars {
		seqType := c.checkExpr(s.Seqs[i], nil)
		var elem ast.Type
		if seqType != nil {
			arr, ok := seqType.(ast.ArrayType)
			if !ok {
				c.errorf(s.Seqs[i].Position(), "for loop sequence has type %s, want a fixed array", seqType)
			} else {
				elem = arr.Elem
				if firstLen == -1 {
					firstLen = arr.Len
				} else if arr.Len != firstLen {
					c.errorf(s.Seqs[i].Position(), "lockstep for sequences have different lengths (%d vs %d)", firstLen, arr.Len)
				}
			}
		}
		if _, dup := c.info.Decls[name]; dup {
			c.errorf(s.Pos, "loop variable %q shadows a declaration", name)
		}
		if prev, inScope := c.loopVars[name]; inScope {
			saved[name] = prev
		}
		c.loopVars[name] = elem
	}
	c.checkBlock(s.Body)
	for _, name := range s.Vars {
		if prev, had := saved[name]; had {
			c.loopVars[name] = prev
		} else {
			delete(c.loopVars, name)
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions

// checkExpr type-checks e. expected, when non-nil, provides a context type
// used to give integer literals a width; it is a hint, not an obligation —
// callers still compare the result.
func (c *checker) checkExpr(e ast.Expr, expected ast.Type) ast.Type {
	t := c.exprType(e, expected)
	if t != nil {
		c.info.ExprTypes[e] = t
	}
	return t
}

func (c *checker) exprType(e ast.Expr, expected ast.Type) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		if bt, ok := expected.(ast.BitType); ok {
			if bt.Width < 64 && e.Value >= 1<<uint(bt.Width) {
				c.errorf(e.Pos, "literal %d does not fit in %s", e.Value, bt)
			}
			return bt
		}
		return ast.BitType{Width: 32}

	case *ast.BoolLit:
		return ast.BoolType{}

	case *ast.Ident:
		if t, inLoop := c.loopVars[e.Name]; inLoop {
			return t // may be nil if the sequence was ill-typed
		}
		if t, isBuiltin := ast.BuiltinType(e.Name); isBuiltin {
			c.info.UsesBuiltin[e.Name] = true
			return t
		}
		d, ok := c.info.Decls[e.Name]
		if !ok {
			c.errorf(e.Pos, "undeclared variable %q", e.Name)
			return nil
		}
		return d.Type

	case *ast.Unary:
		return c.unaryType(e, expected)

	case *ast.Binary:
		return c.binaryType(e, expected)

	case *ast.Index:
		return c.indexType(e)

	case *ast.Tuple:
		elems := make([]ast.Type, len(e.Elems))
		var expectedElems []ast.Type
		if tt, ok := expected.(ast.TupleType); ok && len(tt.Elems) == len(e.Elems) {
			expectedElems = tt.Elems
		}
		for i, x := range e.Elems {
			var exp ast.Type
			if expectedElems != nil {
				exp = expectedElems[i]
			}
			elems[i] = c.checkExpr(x, exp)
			if elems[i] == nil {
				return nil
			}
		}
		return ast.TupleType{Elems: elems}

	case *ast.Call:
		return c.callType(e, expected)

	case *ast.Method:
		return c.methodType(e)
	}
	panic(fmt.Sprintf("types: unknown expression %T", e))
}

func (c *checker) unaryType(e *ast.Unary, expected ast.Type) ast.Type {
	switch e.Op {
	case token.NOT:
		x := c.checkExpr(e.X, ast.BoolType{})
		if x != nil {
			if _, ok := x.(ast.BoolType); !ok {
				c.errorf(e.Pos, "operator ! requires bool, got %s", x)
				return nil
			}
		}
		return ast.BoolType{}
	case token.TILDE, token.MINUS:
		x := c.checkExpr(e.X, expected)
		if x == nil {
			return nil
		}
		if _, ok := x.(ast.BitType); !ok {
			c.errorf(e.Pos, "operator %s requires bit<n>, got %s", e.Op, x)
			return nil
		}
		return x
	}
	panic("types: unknown unary operator " + e.Op.String())
}

func (c *checker) binaryType(e *ast.Binary, expected ast.Type) ast.Type {
	switch e.Op {
	case token.LAND, token.LOR:
		x := c.checkExpr(e.X, ast.BoolType{})
		y := c.checkExpr(e.Y, ast.BoolType{})
		for _, t := range []ast.Type{x, y} {
			if t != nil {
				if _, ok := t.(ast.BoolType); !ok {
					c.errorf(e.Pos, "operator %s requires bool operands, got %s", e.Op, t)
				}
			}
		}
		return ast.BoolType{}

	case token.EQ, token.NEQ:
		x, y := c.inferPair(e)
		if x == nil || y == nil {
			return ast.BoolType{}
		}
		if !x.Equal(y) {
			c.errorf(e.Pos, "cannot compare %s with %s", x, y)
		}
		return ast.BoolType{}

	case token.LT, token.LEQ, token.GT, token.GEQ:
		x, y := c.inferPair(e)
		for _, t := range []ast.Type{x, y} {
			if t != nil {
				if _, ok := t.(ast.BitType); !ok {
					c.errorf(e.Pos, "operator %s requires bit<n> operands, got %s", e.Op, t)
					return ast.BoolType{}
				}
			}
		}
		if x != nil && y != nil && !x.Equal(y) {
			c.errorf(e.Pos, "mismatched operand widths: %s %s %s", x, e.Op, y)
		}
		return ast.BoolType{}

	case token.IN:
		y := c.checkExpr(e.Y, nil)
		var elem ast.Type
		switch yt := y.(type) {
		case ast.SetType:
			elem = yt.Elem
		case ast.ArrayType:
			elem = yt.Elem
		case nil:
		default:
			c.errorf(e.Pos, "right side of in must be a set or array, got %s", y)
		}
		x := c.checkExpr(e.X, elem)
		if x != nil && elem != nil && !x.Equal(elem) {
			c.errorf(e.Pos, "membership test of %s in collection of %s", x, elem)
		}
		return ast.BoolType{}

	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
		x, y := c.inferPairWith(e, expected)
		for _, t := range []ast.Type{x, y} {
			if t != nil {
				if _, ok := t.(ast.BitType); !ok {
					c.errorf(e.Pos, "operator %s requires bit<n> operands, got %s", e.Op, t)
					return nil
				}
			}
		}
		if x == nil || y == nil {
			return nil
		}
		if e.Op == token.SHL || e.Op == token.SHR {
			return x // shift amount width is independent
		}
		if !x.Equal(y) {
			c.errorf(e.Pos, "mismatched operand widths: %s %s %s", x, e.Op, y)
			return nil
		}
		return x
	}
	panic("types: unknown binary operator " + e.Op.String())
}

// inferPair types both operands of a binary expression, letting a literal
// on one side adopt the width of the other side.
func (c *checker) inferPair(e *ast.Binary) (ast.Type, ast.Type) {
	return c.inferPairWith(e, nil)
}

// inferPairWith additionally threads a contextual type, so that an
// all-literal expression like 200 + 100 adopts the width of the
// assignment target rather than the bit<32> default. When exactly one
// side contains variables, its type is inferred first and becomes the
// context for the literal-only side (so `x == 3 + 4` gives the sum x's
// width).
func (c *checker) inferPairWith(e *ast.Binary, expected ast.Type) (ast.Type, ast.Type) {
	xLit := literalOnly(e.X)
	yLit := literalOnly(e.Y)
	switch {
	case xLit && !yLit:
		y := c.checkExpr(e.Y, expected)
		hint := y
		if hint == nil {
			hint = expected
		}
		x := c.checkExpr(e.X, hint)
		return x, y
	case yLit && !xLit:
		x := c.checkExpr(e.X, expected)
		hint := x
		if hint == nil {
			hint = expected
		}
		y := c.checkExpr(e.Y, hint)
		return x, y
	default:
		return c.checkExpr(e.X, expected), c.checkExpr(e.Y, expected)
	}
}

// literalOnly reports whether the expression's leaves are all integer
// literals, i.e. its width is entirely context-determined.
func literalOnly(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.Unary:
		return e.Op != token.NOT && literalOnly(e.X)
	case *ast.Binary:
		switch e.Op {
		case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
			token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
			return literalOnly(e.X) && literalOnly(e.Y)
		}
		return false
	case *ast.Call:
		for _, a := range e.Args {
			if !literalOnly(a) {
				return false
			}
		}
		return true
	}
	return false
}

func (c *checker) indexType(e *ast.Index) ast.Type {
	base := c.checkExpr(e.X, nil)
	switch bt := base.(type) {
	case ast.ArrayType:
		idx := c.checkExpr(e.Idx, ast.BitType{Width: 32})
		if idx != nil {
			if _, ok := idx.(ast.BitType); !ok {
				c.errorf(e.Pos, "array index has type %s, want bit<n>", idx)
			}
		}
		if lit, ok := e.Idx.(*ast.IntLit); ok && lit.Value >= uint64(bt.Len) {
			c.errorf(e.Pos, "constant index %d out of range for %s", lit.Value, bt)
		}
		return bt.Elem
	case ast.DictType:
		key := c.checkExpr(e.Idx, bt.Key)
		if key != nil && !key.Equal(bt.Key) {
			c.errorf(e.Pos, "dict key has type %s, want %s", key, bt.Key)
		}
		return bt.Val
	case nil:
		c.checkExpr(e.Idx, nil)
		return nil
	default:
		c.errorf(e.Pos, "cannot index %s", base)
		c.checkExpr(e.Idx, nil)
		return nil
	}
}

func (c *checker) callType(e *ast.Call, expected ast.Type) ast.Type {
	switch e.Name {
	case "abs":
		if len(e.Args) != 1 {
			c.errorf(e.Pos, "abs takes 1 argument, got %d", len(e.Args))
			return nil
		}
		t := c.checkExpr(e.Args[0], expected)
		if t != nil {
			if _, ok := t.(ast.BitType); !ok {
				c.errorf(e.Pos, "abs requires bit<n>, got %s", t)
				return nil
			}
		}
		return t
	case "max", "min":
		if len(e.Args) != 2 {
			c.errorf(e.Pos, "%s takes 2 arguments, got %d", e.Name, len(e.Args))
			return nil
		}
		// Infer the variable-bearing argument first so a literal-only
		// partner adopts its width (as in binary operators).
		first, second := 0, 1
		if literalOnly(e.Args[0]) && !literalOnly(e.Args[1]) {
			first, second = 1, 0
		}
		a := c.checkExpr(e.Args[first], expected)
		hint := a
		if hint == nil {
			hint = expected
		}
		b := c.checkExpr(e.Args[second], hint)
		x, y := a, b
		if first == 1 {
			x, y = b, a
		}
		if x != nil && y != nil && !x.Equal(y) {
			c.errorf(e.Pos, "%s arguments have mismatched types %s and %s", e.Name, x, y)
		}
		if x != nil {
			if _, ok := x.(ast.BitType); !ok {
				c.errorf(e.Pos, "%s requires bit<n> arguments, got %s", e.Name, x)
				return nil
			}
		}
		return x
	}
	c.errorf(e.Pos, "unknown function %q", e.Name)
	return nil
}

func (c *checker) methodType(e *ast.Method) ast.Type {
	recv := c.checkExpr(e.Recv, nil)
	arr, isArr := recv.(ast.ArrayType)
	switch e.Name {
	case "push":
		if recv != nil && !isArr {
			c.errorf(e.Pos, "push requires an array receiver, got %s", recv)
			return nil
		}
		if len(e.Args) != 1 {
			c.errorf(e.Pos, "push takes 1 argument, got %d", len(e.Args))
			return nil
		}
		var elem ast.Type
		if isArr {
			elem = arr.Elem
		}
		got := c.checkExpr(e.Args[0], elem)
		if got != nil && elem != nil && !got.Equal(elem) {
			c.errorf(e.Pos, "cannot push %s onto %s", got, arr)
		}
		// Pushing is only meaningful on packet-carried telemetry arrays.
		if id, ok := e.Recv.(*ast.Ident); ok {
			if d := c.info.Decls[id.Name]; d != nil && d.Kind != ast.KindTele {
				c.errorf(e.Pos, "push target %q must be a tele array (got %s)", id.Name, d.Kind)
			}
		}
		return nil // unit: valid only as a statement
	case "length":
		if recv != nil && !isArr {
			c.errorf(e.Pos, "length requires an array receiver, got %s", recv)
			return nil
		}
		if len(e.Args) != 0 {
			c.errorf(e.Pos, "length takes no arguments")
		}
		return ast.BitType{Width: 32}
	}
	c.errorf(e.Pos, "unknown method %q", e.Name)
	return nil
}
