package types

import (
	"strings"
	"testing"

	"repro/internal/indus/ast"
	"repro/internal/indus/parser"
)

func wrap(decls, initB, teleB, checkB string) string {
	return decls + "\n{" + initB + "}\n{" + teleB + "}\n{" + checkB + "}\n"
}

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("type error: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error %q does not contain %q", err, sub)
	}
}

func TestWellTypedProgram(t *testing.T) {
	info := mustCheck(t, wrap(
		`control dict<bit<8>,bit<8>> tenants;
		 tele bit<8> tenant;
		 header bit<8> in_port;
		 header bit<8> eg_port;`,
		"tenant = tenants[in_port];",
		"",
		"if (tenant != tenants[eg_port]) { reject; }",
	))
	if len(info.Decls) != 4 {
		t.Fatalf("got %d decls", len(info.Decls))
	}
	d := info.Decls["tenant"]
	if !d.Type.Equal(ast.BitType{Width: 8}) {
		t.Fatalf("tenant type %s", d.Type)
	}
}

func TestReadOnlyEnforcement(t *testing.T) {
	wantErr(t, wrap("header bit<8> p;", "p = 1;", "", ""), "read-only")
	wantErr(t, wrap("control bit<8> c;", "c = 1;", "", ""), "read-only")
	wantErr(t, wrap("", "last_hop = true;", "", ""), "read-only")
	wantErr(t, wrap("tele bit<8>[2] xs;", "", "for (v in xs) { v = 1; }", ""), "read-only")
}

func TestBlockRestrictions(t *testing.T) {
	wantErr(t, wrap("", "reject;", "", ""), "only allowed in the checker")
	wantErr(t, wrap("", "", "reject;", ""), "only allowed in the checker")
	wantErr(t, wrap("", "report;", "", ""), "not allowed in the init block")
	// report is fine in telemetry and checker blocks.
	mustCheck(t, wrap("", "", "report;", "report; reject;"))
	// sensors cannot be written by the checker predicate.
	wantErr(t, wrap("sensor bit<8> s;", "", "", "s = 1;"), "cannot be written in the checker")
	mustCheck(t, wrap("sensor bit<8> s;", "s = 1;", "s += 2;", "if (s == 3) { reject; }"))
}

func TestDeclShapeRules(t *testing.T) {
	wantErr(t, wrap("tele dict<bit<8>,bit<8>> d;", "", "", ""), "tele variable")
	wantErr(t, wrap("header bit<8>[4] hs;", "", "", ""), "header variable")
	wantErr(t, wrap("control bit<8>[4] cs;", "", "", ""), "control variable")
	wantErr(t, wrap("control dict<bit<8>,bit<8>[3]> d;", "", "", ""), "value type must be scalar")
	wantErr(t, wrap("control dict<dict<bit<8>,bool>,bool> d;", "", "", ""), "not a valid match key")
	wantErr(t, wrap("tele bit<8> x; tele bit<8> x;", "", "", ""), "duplicate declaration")
	wantErr(t, wrap("tele bool last_hop;", "", "", ""), "shadows a builtin")
	mustCheck(t, wrap("control dict<(bit<32>,bit<8>,bit<32>,bit<16>),bit<8>> d;", "", "", ""))
}

func TestOperatorTyping(t *testing.T) {
	decls := "tele bit<8> x; tele bit<16> y; tele bool b;"
	wantErr(t, wrap(decls, "x = y;", "", ""), "cannot assign bit<16>")
	wantErr(t, wrap(decls, "x = x + y;", "", ""), "mismatched operand widths")
	wantErr(t, wrap(decls, "b = x;", "", ""), "cannot assign")
	wantErr(t, wrap(decls, "x = b + b;", "", ""), "requires bit<n>")
	wantErr(t, wrap(decls, "b = x && b;", "", ""), "requires bool")
	wantErr(t, wrap(decls, "b = !x;", "", ""), "requires bool")
	wantErr(t, wrap(decls, "x = ~b;", "", ""), "requires bit<n>")
	wantErr(t, wrap(decls, "b = x == y;", "", ""), "cannot compare bit<8> with bit<16>")
	wantErr(t, wrap(decls, "b = x < b;", "", ""), "requires bit<n> operands")
	wantErr(t, wrap(decls, "if (x) { }", "", ""), "want bool")
	wantErr(t, wrap(decls, "b += b;", "", ""), "requires a bit<n> target")

	mustCheck(t, wrap(decls, `
		x = x + 1; x = 255 - x; x = x * 2; x = x / 3; x = x % 4;
		x = x & 7; x = x | 8; x = x ^ 9; x = ~x; x = -x;
		x = x << 2; x = x >> 1;
		b = x == 5; b = x != 5; b = x < 5 && x >= 1 || !b;
		y = y + 1;`, "", ""))
}

func TestLiteralWidthInference(t *testing.T) {
	decls := "tele bit<8> x;"
	wantErr(t, wrap(decls, "x = 256;", "", ""), "does not fit")
	mustCheck(t, wrap(decls, "x = 255;", "", ""))
	// Literal on the left adopts the width of the right.
	mustCheck(t, wrap(decls, "if (255 == x) { }", "", ""))
	wantErr(t, wrap(decls, "if (256 == x) { }", "", ""), "does not fit")
}

func TestArraysAndLoops(t *testing.T) {
	decls := "tele bit<32>[4] xs; tele bit<32>[4] ys; tele bit<32>[3] zs; tele bit<32> acc; tele bool b;"
	mustCheck(t, wrap(decls, "", "xs.push(acc); acc = xs[0]; xs[1] = acc;",
		"for (x, y in xs, ys) { acc = x + y; } b = acc in xs; acc = xs.length;"))
	wantErr(t, wrap(decls, "", "for (x, z in xs, zs) { }", ""), "different lengths")
	wantErr(t, wrap(decls, "", "for (x in acc) { }", ""), "want a fixed array")
	wantErr(t, wrap(decls, "", "acc = xs[4];", ""), "out of range")
	wantErr(t, wrap(decls, "", "xs.push(b);", ""), "cannot push bool")
	wantErr(t, wrap(decls, "", "acc.push(1);", ""), "push requires an array")
	wantErr(t, wrap(decls, "", "b = b in xs;", ""), "membership test of bool")
	wantErr(t, wrap("sensor bit<8>[2] reg; tele bit<8> v;", "", "reg.push(v);", ""), "must be a tele array")
	wantErr(t, wrap("tele bit<8>[2][2] m;", "", "", ""), "scalar elements")
	wantErr(t, wrap(decls+"tele bit<8> xs2;", "", "for (xs in xs) {}", ""), "shadows a declaration")
}

func TestDictAndSetTyping(t *testing.T) {
	decls := `control dict<(bit<32>,bit<32>),bool> allowed;
	          control set<bit<8>> ports;
	          header bit<32> src; header bit<32> dst; header bit<8> p;
	          tele bool b;`
	mustCheck(t, wrap(decls, "b = allowed[(src,dst)]; b = p in ports;", "", ""))
	wantErr(t, wrap(decls, "b = allowed[src];", "", ""), "dict key has type")
	wantErr(t, wrap(decls, "b = allowed[(src,p)];", "", ""), "dict key has type")
	wantErr(t, wrap(decls, "b = src in ports;", "", ""), "membership test")
	wantErr(t, wrap(decls, "b = ports[p];", "", ""), "cannot index")
	wantErr(t, wrap(decls, "b = b in b;", "", ""), "right side of in")
}

func TestCallTyping(t *testing.T) {
	decls := "tele bit<32> x; tele bit<32> y; tele bool b;"
	mustCheck(t, wrap(decls, "x = abs(x - y); x = max(x, y); x = min(x, 4);", "", ""))
	wantErr(t, wrap(decls, "x = abs(b);", "", ""), "abs requires bit<n>")
	wantErr(t, wrap(decls, "x = abs(x, y);", "", ""), "abs takes 1 argument")
	wantErr(t, wrap(decls, "x = max(x);", "", ""), "max takes 2 arguments")
	wantErr(t, wrap("tele bit<8> w; tele bit<32> x;", "x = max(x, w);", "", ""), "mismatched types")
}

func TestBuiltins(t *testing.T) {
	info := mustCheck(t, wrap("tele bit<32> sid; tele bit<8> hc; tele bit<32> pl; tele bool l;",
		"", "sid = switch_id; hc = hop_count; pl = packet_length; l = last_hop || first_hop;", ""))
	for _, b := range []string{"switch_id", "hop_count", "packet_length", "last_hop", "first_hop"} {
		if !info.UsesBuiltin[b] {
			t.Errorf("builtin %s not recorded", b)
		}
	}
	wantErr(t, wrap("", "", "", "if (undeclared_thing) { }"), "undeclared variable")
}

func TestReportArity(t *testing.T) {
	info := mustCheck(t, wrap("tele bit<8> a; tele bit<8> b;",
		"", "report(a);", "report(a, b); report;"))
	if info.MaxReportArity != 2 {
		t.Fatalf("MaxReportArity = %d, want 2", info.MaxReportArity)
	}
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheck(t, wrap("tele bit<8> x;", "x = x + 1;", "", ""))
	found := false
	for e, typ := range info.ExprTypes {
		if _, ok := e.(*ast.Binary); ok {
			if !typ.Equal(ast.BitType{Width: 8}) {
				t.Errorf("x + 1 recorded as %s, want bit<8>", typ)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("binary expression type not recorded")
	}
}

func TestInitializerTyping(t *testing.T) {
	wantErr(t, wrap("tele bit<8> x = true;", "", "", ""), "initializer")
	mustCheck(t, wrap("tele bit<8> x = 3; sensor bit<32> s = 0; tele bool b = false;", "", "", ""))
}
