// Package token defines the lexical tokens of the Indus domain-specific
// language (Figure 4 of the Hydra paper) together with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are kept contiguous so IsKeyword is a range
// test; likewise for operators.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // tenant, eg_port
	INT    // 42, 0x2A, 0b1010
	STRING // "hdr.ipv4.src_addr" (annotation payloads)

	keywordBeg
	// Declaration modifiers (§3.2: variable kinds).
	TELE
	SENSOR
	HEADER
	CONTROL

	// Types.
	BIT
	BOOL
	SET
	DICT

	// Statements.
	IF
	ELSIF
	ELSE
	FOR
	IN
	PASS
	REPORT
	REJECT

	// Boolean literals.
	TRUE
	FALSE
	keywordEnd

	operatorBeg
	// Arithmetic.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	// Bitwise.
	TILDE // ~
	AMP   // &
	PIPE  // |
	CARET // ^
	SHL   // <<
	SHR   // >>

	// Comparison and logic.
	EQ   // ==
	NEQ  // !=
	LT   // <
	LEQ  // <=
	GT   // >
	GEQ  // >=
	NOT  // !
	LAND // &&
	LOR  // ||

	// Assignment.
	ASSIGN      // =
	PLUSASSIGN  // +=
	MINUSASSIGN // -=

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	DOT       // .
	AT        // @
	operatorEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT", STRING: "STRING",
	TELE: "tele", SENSOR: "sensor", HEADER: "header", CONTROL: "control",
	BIT: "bit", BOOL: "bool", SET: "set", DICT: "dict",
	IF: "if", ELSIF: "elsif", ELSE: "else", FOR: "for", IN: "in",
	PASS: "pass", REPORT: "report", REJECT: "reject", TRUE: "true", FALSE: "false",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	TILDE: "~", AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	EQ: "==", NEQ: "!=", LT: "<", LEQ: "<=", GT: ">", GEQ: ">=",
	NOT: "!", LAND: "&&", LOR: "||",
	ASSIGN: "=", PLUSASSIGN: "+=", MINUSASSIGN: "-=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";", DOT: ".", AT: "@",
}

// String returns the literal spelling for operators and keywords, or the
// class name for identifiers and literals.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

// IsOperator reports whether k is an operator or punctuation token.
func (k Kind) IsOperator() bool { return k > operatorBeg && k < operatorEnd }

var keywords = map[string]Kind{
	"tele": TELE, "sensor": SENSOR, "header": HEADER, "control": CONTROL,
	"bit": BIT, "bool": BOOL, "set": SET, "dict": DICT,
	"if": IF, "elsif": ELSIF, "else": ELSE, "for": FOR, "in": IN,
	"pass": PASS, "report": REPORT, "reject": REJECT,
	"true": TRUE, "false": FALSE,
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column plus the file name the
// source was loaded from (may be empty for inline programs).
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position in file:line:col form.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position carries real coordinates.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexeme with its position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, STRING
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL:
		return fmt.Sprintf("%s(%q)", kindNames[t.Kind], t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary-operator precedence for the parser:
// higher binds tighter; 0 means not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case PIPE:
		return 3
	case CARET:
		return 4
	case AMP:
		return 5
	case EQ, NEQ:
		return 6
	case LT, LEQ, GT, GEQ, IN:
		return 7
	case PLUS, MINUS:
		return 9
	case STAR, SLASH, PERCENT, SHL, SHR:
		return 10
	}
	return 0
}
