package format

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/ltlf"
)

// roundTrip asserts that formatting is parse-stable: the formatted
// output parses, type-checks, and re-formats to the same text.
func roundTrip(t *testing.T, label, src string) {
	t.Helper()
	prog1, err := parser.Parse(label, src)
	if err != nil {
		t.Fatalf("%s: original does not parse: %v", label, err)
	}
	out1 := Program(prog1)

	prog2, err := parser.Parse(label+".fmt", out1)
	if err != nil {
		t.Fatalf("%s: formatted output does not parse: %v\n%s", label, err, out1)
	}
	if _, err := types.Check(prog2); err != nil {
		t.Fatalf("%s: formatted output does not type-check: %v\n%s", label, err, out1)
	}
	out2 := Program(prog2)
	if out1 != out2 {
		t.Fatalf("%s: formatting is not idempotent:\n--- first ---\n%s\n--- second ---\n%s", label, out1, out2)
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	for _, p := range checkers.All {
		roundTrip(t, p.Key, p.Source)
	}
	roundTrip(t, "fig2", checkers.LoadBalanceFig2Src)
}

func TestGeneratedLTLfRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		f := ltlf.Random(rng, []string{"p", "q"}, 3)
		roundTrip(t, "ltlf", ltlf.ToIndus(f, 6))
	}
}

func TestSurfaceSyntax(t *testing.T) {
	src := `
tele bit<8> x;
header bit<8> p @ "hdr.p";
{ x = p; }
{
  if (x == 1) { x = 2; } elsif (x == 2) { x = 3; } else { pass; }
}
{ if (x != 0) { reject; } }
`
	prog, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	out := Program(prog)
	for _, want := range []string{
		`header bit<8> p @ "hdr.p";`,
		"} elsif ((x == 2)) {",
		"} else {",
		"reject;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyBlocks(t *testing.T) {
	prog, err := parser.Parse("t", "{ }{ }{ }")
	if err != nil {
		t.Fatal(err)
	}
	if got := Program(prog); got != "{ }\n{ }\n{ }\n" {
		t.Fatalf("empty program formats as %q", got)
	}
}
