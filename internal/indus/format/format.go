// Package format pretty-prints Indus ASTs back to canonical source.
// Formatting then re-parsing yields a structurally identical program
// (the round-trip property the tests pin), which makes the formatter
// safe for tooling like indusc -fmt.
package format

import (
	"fmt"
	"strings"

	"repro/internal/indus/ast"
)

// Program renders a full program in canonical style.
func Program(p *ast.Program) string {
	var f formatter
	for _, d := range p.Decls {
		f.decl(d)
	}
	if len(p.Decls) > 0 {
		f.b.WriteByte('\n')
	}
	f.block(p.Init)
	f.block(p.Telemetry)
	f.block(p.Checker)
	return f.b.String()
}

type formatter struct {
	b   strings.Builder
	ind int
}

func (f *formatter) pf(format string, args ...any) {
	f.b.WriteString(strings.Repeat("  ", f.ind))
	fmt.Fprintf(&f.b, format, args...)
	f.b.WriteByte('\n')
}

func (f *formatter) decl(d ast.Decl) {
	line := fmt.Sprintf("%s %s %s", d.Kind, d.Type, d.Name)
	if d.Annot != "" {
		line += fmt.Sprintf(" @ %q", d.Annot)
	}
	if d.Init != nil {
		line += " = " + Expr(d.Init)
	}
	f.pf("%s;", line)
}

func (f *formatter) block(b *ast.Block) {
	if b == nil || len(b.Stmts) == 0 {
		f.pf("{ }")
		return
	}
	f.pf("{")
	f.ind++
	for _, s := range b.Stmts {
		f.stmt(s)
	}
	f.ind--
	f.pf("}")
}

func (f *formatter) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		f.block(s)

	case *ast.Pass:
		f.pf("pass;")

	case *ast.Reject:
		f.pf("reject;")

	case *ast.Report:
		if len(s.Args) == 0 {
			f.pf("report;")
			return
		}
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = Expr(a)
		}
		f.pf("report(%s);", strings.Join(args, ", "))

	case *ast.Assign:
		f.pf("%s %s %s;", Expr(s.LHS), s.Op, Expr(s.RHS))

	case *ast.If:
		f.ifChain(s, "if")

	case *ast.For:
		seqs := make([]string, len(s.Seqs))
		for i, q := range s.Seqs {
			seqs[i] = Expr(q)
		}
		f.pf("for (%s in %s) {", strings.Join(s.Vars, ", "), strings.Join(seqs, ", "))
		f.ind++
		for _, t := range s.Body.Stmts {
			f.stmt(t)
		}
		f.ind--
		f.pf("}")

	case *ast.ExprStmt:
		f.pf("%s;", Expr(s.X))

	default:
		panic(fmt.Sprintf("format: unknown statement %T", s))
	}
}

// ifChain prints if/elsif/else chains flat (the parser desugars elsif
// into nested ifs; the formatter restores the surface syntax).
func (f *formatter) ifChain(s *ast.If, kw string) {
	f.pf("%s (%s) {", kw, Expr(s.Cond))
	f.ind++
	for _, t := range s.Then.Stmts {
		f.stmt(t)
	}
	f.ind--
	switch e := s.Else.(type) {
	case nil:
		f.pf("}")
	case *ast.If:
		f.b.WriteString(strings.Repeat("  ", f.ind))
		f.b.WriteString("} ")
		f.elsifChain(e)
	case *ast.Block:
		f.pf("} else {")
		f.ind++
		for _, t := range e.Stmts {
			f.stmt(t)
		}
		f.ind--
		f.pf("}")
	default:
		// An else branch holding a single non-if, non-block statement.
		f.pf("} else {")
		f.ind++
		f.stmt(s.Else)
		f.ind--
		f.pf("}")
	}
}

func (f *formatter) elsifChain(s *ast.If) {
	fmt.Fprintf(&f.b, "elsif (%s) {\n", Expr(s.Cond))
	f.ind++
	for _, t := range s.Then.Stmts {
		f.stmt(t)
	}
	f.ind--
	switch e := s.Else.(type) {
	case nil:
		f.pf("}")
	case *ast.If:
		f.b.WriteString(strings.Repeat("  ", f.ind))
		f.b.WriteString("} ")
		f.elsifChain(e)
	case *ast.Block:
		f.pf("} else {")
		f.ind++
		for _, t := range e.Stmts {
			f.stmt(t)
		}
		f.ind--
		f.pf("}")
	default:
		f.pf("} else {")
		f.ind++
		f.stmt(s.Else)
		f.ind--
		f.pf("}")
	}
}

// Expr renders an expression with minimal-but-safe parenthesization
// (binary operations are always parenthesized, so precedence survives
// the round trip regardless of the original spelling).
func Expr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *ast.BoolLit:
		return fmt.Sprintf("%t", e.Value)
	case *ast.Unary:
		return e.Op.String() + maybeParen(e.X)
	case *ast.Binary:
		op := e.Op.String()
		return fmt.Sprintf("(%s %s %s)", Expr(e.X), op, Expr(e.Y))
	case *ast.Index:
		return fmt.Sprintf("%s[%s]", Expr(e.X), Expr(e.Idx))
	case *ast.Tuple:
		parts := make([]string, len(e.Elems))
		for i, x := range e.Elems {
			parts[i] = Expr(x)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *ast.Call:
		parts := make([]string, len(e.Args))
		for i, x := range e.Args {
			parts[i] = Expr(x)
		}
		return e.Name + "(" + strings.Join(parts, ", ") + ")"
	case *ast.Method:
		if len(e.Args) == 0 {
			return Expr(e.Recv) + "." + e.Name
		}
		parts := make([]string, len(e.Args))
		for i, x := range e.Args {
			parts[i] = Expr(x)
		}
		return Expr(e.Recv) + "." + e.Name + "(" + strings.Join(parts, ", ") + ")"
	}
	panic(fmt.Sprintf("format: unknown expression %T", e))
}

func maybeParen(e ast.Expr) string {
	switch e.(type) {
	case *ast.Ident, *ast.IntLit, *ast.BoolLit, *ast.Index, *ast.Call, *ast.Tuple:
		return Expr(e)
	}
	return "(" + Expr(e) + ")"
}
