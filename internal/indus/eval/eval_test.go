package eval

import (
	"testing"

	"repro/internal/indus/ast"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
)

func compile(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("types: %v", err)
	}
	return New(info)
}

func bit(w int, v uint64) Value { return NewBit(w, v) }

func hop(sw *SwitchState, headers map[string]Value) Hop {
	return Hop{Switch: sw, Headers: headers, PacketLen: 100}
}

func TestMultiTenancyForwardAndReject(t *testing.T) {
	src := `
control dict<bit<8>,bit<8>> tenants;
tele bit<8> tenant;
header bit<8> in_port;
header bit<8> eg_port;
{ tenant = tenants[in_port]; }
{ }
{ if (tenant != tenants[eg_port]) { reject; } }
`
	m := compile(t, src)

	mkSwitch := func(id uint32) *SwitchState {
		sw := NewSwitchState(id)
		cv := NewControlDict()
		cv.Put(bit(8, 1), bit(8, 10)) // port 1 -> tenant 10
		cv.Put(bit(8, 2), bit(8, 20)) // port 2 -> tenant 20
		cv.Put(bit(8, 3), bit(8, 10)) // port 3 -> tenant 10
		sw.Controls["tenants"] = cv
		return sw
	}
	first, last := mkSwitch(1), mkSwitch(2)

	// Same tenant at ingress and egress: forward.
	out, err := m.RunTrace([]Hop{
		hop(first, map[string]Value{"in_port": bit(8, 1), "eg_port": bit(8, 9)}),
		hop(last, map[string]Value{"in_port": bit(8, 9), "eg_port": bit(8, 3)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("same-tenant packet: got %s, want forward", out.Verdict)
	}

	// Crossing tenants: reject.
	out, err = m.RunTrace([]Hop{
		hop(first, map[string]Value{"in_port": bit(8, 1), "eg_port": bit(8, 9)}),
		hop(last, map[string]Value{"in_port": bit(8, 9), "eg_port": bit(8, 2)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictReject {
		t.Fatalf("cross-tenant packet: got %s, want reject", out.Verdict)
	}
	if got := out.Tele["tenant"]; !got.Equal(bit(8, 10)) {
		t.Fatalf("tele tenant = %v, want 10", got)
	}
}

func TestValleyFreeStateMachine(t *testing.T) {
	src := `
control bool is_spine_switch;
tele bool visited_spine;
tele bool to_reject;
{ visited_spine = false; to_reject = false; }
{
  if (is_spine_switch) {
    if (visited_spine) { to_reject = true; }
    visited_spine = true;
  }
}
{ if (to_reject) { reject; } }
`
	m := compile(t, src)

	leaf := func(id uint32) *SwitchState {
		sw := NewSwitchState(id)
		sw.Controls["is_spine_switch"] = NewControlScalar(Bool(false))
		return sw
	}
	spine := func(id uint32) *SwitchState {
		sw := NewSwitchState(id)
		sw.Controls["is_spine_switch"] = NewControlScalar(Bool(true))
		return sw
	}

	valleyFree := []Hop{hop(leaf(1), nil), hop(spine(3), nil), hop(leaf(2), nil)}
	out, err := m.RunTrace(valleyFree)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("leaf-spine-leaf: got %s, want forward", out.Verdict)
	}

	valley := []Hop{hop(leaf(1), nil), hop(spine(3), nil), hop(leaf(2), nil), hop(spine(4), nil), hop(leaf(1), nil)}
	out, err = m.RunTrace(valley)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictReject {
		t.Fatalf("two-spine path: got %s, want reject", out.Verdict)
	}
}

func TestStatefulFirewallReports(t *testing.T) {
	src := `
control dict<(bit<32>,bit<32>),bool> allowed;
tele bool violated = false;
header bit<32> ipv4_src;
header bit<32> ipv4_dst;
{
  if (!allowed[(ipv4_src,ipv4_dst)]) { violated = true; }
}
{
  if (last_hop && !allowed[(ipv4_dst, ipv4_src)]) {
    report((ipv4_dst,ipv4_src));
  }
}
{
  if (violated) { reject; }
}
`
	m := compile(t, src)
	inside, outside := uint64(0x0a000001), uint64(0xc0a80101)

	sw1, sw2 := NewSwitchState(1), NewSwitchState(2)
	allow1, allow2 := NewControlDict(), NewControlDict()
	// Outbound flow inside->outside is allowed on both switches.
	key := Tuple{Elems: []Value{bit(32, inside), bit(32, outside)}}
	allow1.Put(key, Bool(true))
	allow2.Put(key, Bool(true))
	sw1.Controls["allowed"] = allow1
	sw2.Controls["allowed"] = allow2

	hdrsOut := map[string]Value{"ipv4_src": bit(32, inside), "ipv4_dst": bit(32, outside)}
	out, err := m.RunTrace([]Hop{hop(sw1, hdrsOut), hop(sw2, hdrsOut)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("outbound packet: got %s", out.Verdict)
	}
	// Reverse direction not yet installed: a report should request it.
	if len(out.Reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(out.Reports))
	}
	wantArg := Tuple{Elems: []Value{bit(32, outside), bit(32, inside)}}
	if !out.Reports[0].Args[0].Equal(wantArg) {
		t.Fatalf("report arg %v, want %v", out.Reports[0].Args[0], wantArg)
	}
	if out.Reports[0].Block != types.BlockTelemetry {
		t.Fatalf("report raised in %s, want telemetry", out.Reports[0].Block)
	}

	// Inbound packet with no allow rule: rejected at the edge.
	hdrsIn := map[string]Value{"ipv4_src": bit(32, outside), "ipv4_dst": bit(32, inside)}
	out, err = m.RunTrace([]Hop{hop(sw2, hdrsIn), hop(sw1, hdrsIn)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictReject {
		t.Fatalf("unsolicited inbound packet: got %s, want reject", out.Verdict)
	}

	// Control plane reacts to the report: install the reverse rule.
	revKey := Tuple{Elems: []Value{bit(32, outside), bit(32, inside)}}
	allow1.Put(revKey, Bool(true))
	allow2.Put(revKey, Bool(true))
	out, err = m.RunTrace([]Hop{hop(sw2, hdrsIn), hop(sw1, hdrsIn)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("return traffic after install: got %s, want forward", out.Verdict)
	}
}

func TestSensorPersistenceAcrossPackets(t *testing.T) {
	src := `
sensor bit<32> count = 0;
tele bit<32> seen;
{ }
{ count += 1; seen = count; }
{ }
`
	m := compile(t, src)
	sw := NewSwitchState(7)
	for i := 1; i <= 3; i++ {
		out, err := m.RunTrace([]Hop{hop(sw, nil)})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Tele["seen"]; !got.Equal(bit(32, uint64(i))) {
			t.Fatalf("packet %d: seen = %v", i, got)
		}
	}
	// A different switch has independent sensor state.
	out, _ := m.RunTrace([]Hop{hop(NewSwitchState(8), nil)})
	if got := out.Tele["seen"]; !got.Equal(bit(32, 1)) {
		t.Fatalf("fresh switch: seen = %v, want 1", got)
	}
}

func TestTelemetryArrayPushAndLoop(t *testing.T) {
	src := `
tele bit<32>[4] path;
tele bool revisited = false;
{ }
{
  if (switch_id in path) { revisited = true; }
  path.push(switch_id);
}
{ if (revisited) { reject; } }
`
	m := compile(t, src)
	sws := []*SwitchState{NewSwitchState(1), NewSwitchState(2), NewSwitchState(3)}
	out, err := m.RunTrace([]Hop{hop(sws[0], nil), hop(sws[1], nil), hop(sws[2], nil)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("loop-free path rejected")
	}
	arr := out.Tele["path"].(*Array)
	if arr.Len() != 3 {
		t.Fatalf("path has %d entries, want 3", arr.Len())
	}

	out, err = m.RunTrace([]Hop{hop(sws[0], nil), hop(sws[1], nil), hop(sws[0], nil)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictReject {
		t.Fatalf("looping path not rejected")
	}
}

func TestArrayEviction(t *testing.T) {
	a := NewArray(ast.BitType{Width: 8}, 2)
	a.Push(bit(8, 1))
	a.Push(bit(8, 2))
	a.Push(bit(8, 3)) // evicts 1
	if a.Len() != 2 || !a.Get(0).Equal(bit(8, 2)) || !a.Get(1).Equal(bit(8, 3)) {
		t.Fatalf("eviction wrong: %v", a)
	}
	if !a.Get(5).Equal(bit(8, 0)) {
		t.Fatalf("out-of-range read should be zero")
	}
}

func TestArithmeticSemantics(t *testing.T) {
	src := `
tele bit<8> x;
tele bit<8> y;
tele bit<8> z;
tele bit<8> d0;
tele bit<8> m0;
tele bit<8> a;
{
  x = 200 + 100;      // wraps to 44
  y = 3 - 5;          // wraps to 254
  z = 16 * 17;        // wraps to 16
  d0 = x / 0;         // division by zero yields 0
  m0 = x % 0;         // modulo by zero yields 0
  a = abs(3 - 5);     // |−2| = 2 under two's complement
}
{ }
{ }
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil)})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"x": 44, "y": 254, "z": 16, "d0": 0, "m0": 0, "a": 2}
	for name, w := range want {
		if got := out.Tele[name]; !got.Equal(bit(8, w)) {
			t.Errorf("%s = %v, want %d", name, got, w)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// `b && allowed[...]` must not fault when b is false even though the
	// dict lookup would be well-defined; short-circuiting also matters
	// for the common `valid && field == x` idiom.
	src := `
tele bool b = false;
tele bool r1;
tele bool r2;
{
  r1 = b && false;
  r2 = true || b;
}
{ }
{ }
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tele["r1"] != Bool(false) || out.Tele["r2"] != Bool(true) {
		t.Fatalf("short-circuit wrong: %v %v", out.Tele["r1"], out.Tele["r2"])
	}
}

func TestBuiltinsOverTrace(t *testing.T) {
	src := `
tele bit<8> hops;
tele bit<32> first_sw;
tele bit<32> last_sw;
tele bool saw_first;
tele bool saw_last;
{ }
{
  hops = hop_count;
  if (first_hop) { saw_first = true; first_sw = switch_id; }
  if (last_hop) { saw_last = true; last_sw = switch_id; }
}
{ }
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{
		hop(NewSwitchState(10), nil), hop(NewSwitchState(20), nil), hop(NewSwitchState(30), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tele["hops"].Equal(bit(8, 3)) {
		t.Errorf("hops = %v, want 3", out.Tele["hops"])
	}
	if !out.Tele["first_sw"].Equal(bit(32, 10)) || !out.Tele["last_sw"].Equal(bit(32, 30)) {
		t.Errorf("first/last = %v/%v", out.Tele["first_sw"], out.Tele["last_sw"])
	}
	if out.Tele["saw_first"] != Bool(true) || out.Tele["saw_last"] != Bool(true) {
		t.Errorf("first/last hop flags wrong")
	}
}

func TestRejectThenReportBothApply(t *testing.T) {
	// Figure 9 style: reject; report(...) in the same branch — both fire.
	src := `
tele bit<8> v = 1;
{ }
{ }
{
  if (v == 1) { reject; report(v); }
}
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != VerdictReject || len(out.Reports) != 1 {
		t.Fatalf("verdict=%s reports=%d, want reject with 1 report", out.Verdict, len(out.Reports))
	}
	if out.Reports[0].Block != types.BlockChecker {
		t.Fatalf("report block = %s", out.Reports[0].Block)
	}
}

func TestMultiVarForLockstep(t *testing.T) {
	src := `
tele bit<32>[4] ls;
tele bit<32>[4] rs;
tele bit<32> maxdiff = 0;
{ }
{
  ls.push(packet_length);
  rs.push(packet_length + 10);
}
{
  for (l, r in ls, rs) {
    maxdiff = max(maxdiff, abs(l - r));
  }
}
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil), hop(NewSwitchState(2), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tele["maxdiff"].Equal(bit(32, 10)) {
		t.Fatalf("maxdiff = %v, want 10", out.Tele["maxdiff"])
	}
}

func TestMissingHeaderBindingIsAnError(t *testing.T) {
	src := "header bit<8> p;\ntele bit<8> x;\n{ x = p; }{ }{ }"
	m := compile(t, src)
	_, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil)})
	if err == nil {
		t.Fatal("expected an error for unbound header variable")
	}
}

func TestUninstalledControlReadsZero(t *testing.T) {
	src := `
control dict<bit<8>,bit<8>> d;
control bit<8> scalar;
control set<bit<8>> s;
header bit<8> p;
tele bit<8> x;
tele bit<8> y;
tele bool b;
{ x = d[p]; y = scalar; b = p in s; }
{ }
{ if (b) { reject; } }
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), map[string]Value{"p": bit(8, 5)})})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Tele["x"].Equal(bit(8, 0)) || !out.Tele["y"].Equal(bit(8, 0)) {
		t.Fatalf("uninstalled control reads: %v %v, want zeros", out.Tele["x"], out.Tele["y"])
	}
	if out.Verdict != VerdictForward {
		t.Fatalf("empty set membership should be false")
	}
}

func TestEmptyTraceFails(t *testing.T) {
	m := compile(t, "{ }{ }{ }")
	if _, err := m.RunTrace(nil); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestStepwiseAPIMatchesRunTrace(t *testing.T) {
	src := `
tele bit<8>[4] ids;
{ }
{ ids.push(hop_count); }
{ if (ids.length == 2) { reject; } }
`
	m := compile(t, src)
	hops := []Hop{hop(NewSwitchState(1), nil), hop(NewSwitchState(2), nil)}

	ps := m.NewPacketState()
	if err := m.RunInit(ps, hops[0], 0, false); err != nil {
		t.Fatal(err)
	}
	for i, h := range hops {
		if err := m.RunTelemetry(ps, h, i, i == 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RunChecker(ps, hops[1], 1, true); err != nil {
		t.Fatal(err)
	}
	stepwise := m.Finish(ps)

	whole, err := m.RunTrace(hops)
	if err != nil {
		t.Fatal(err)
	}
	if stepwise.Verdict != whole.Verdict {
		t.Fatalf("stepwise %s != whole %s", stepwise.Verdict, whole.Verdict)
	}
	if stepwise.Verdict != VerdictReject {
		t.Fatalf("checker should reject on 2-hop path")
	}
}

func TestOutOfRangeIndexedWriteIsDropped(t *testing.T) {
	// Matching the compiled pipeline (and the hardware it models), a
	// write through an index beyond the array capacity is silently
	// dropped rather than faulting.
	src := `
tele bit<8>[2] xs;
tele bit<8> idx = 9;
{ xs[idx] = 7; xs[0] = 1; }
{ }
{ }
`
	m := compile(t, src)
	out, err := m.RunTrace([]Hop{hop(NewSwitchState(1), nil)})
	if err != nil {
		t.Fatal(err)
	}
	arr := out.Tele["xs"].(*Array)
	if arr.Len() != 1 || !arr.Get(0).Equal(bit(8, 1)) {
		t.Fatalf("xs = %v, want [1]", arr)
	}
}
