// Package eval implements the reference interpreter for Indus: the
// operational semantics of Figure 4, executed over a network-wide hop
// trace. The compiler's pipeline backend is differentially tested against
// this interpreter.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/indus/ast"
)

// Value is an Indus runtime value.
type Value interface {
	fmt.Stringer
	// Type returns the static type of the value.
	Type() ast.Type
	// Equal reports value equality (types must already match).
	Equal(Value) bool
	// key returns a canonical encoding usable as a dictionary key.
	key() string
}

// Bit is a bit<Width> value; V is always masked to Width bits.
type Bit struct {
	Width int
	V     uint64
}

// NewBit returns a bit<width> value, masking v to width bits.
func NewBit(width int, v uint64) Bit { return Bit{Width: width, V: maskTo(width, v)} }

func maskTo(width int, v uint64) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((1 << uint(width)) - 1)
}

func (b Bit) String() string { return fmt.Sprintf("%d", b.V) }
func (b Bit) Type() ast.Type { return ast.BitType{Width: b.Width} }
func (b Bit) key() string    { return fmt.Sprintf("b%d:%d", b.Width, b.V) }
func (b Bit) Equal(o Value) bool {
	ob, ok := o.(Bit)
	return ok && ob.V == b.V && ob.Width == b.Width
}

// Signed interprets the value as a two's-complement Width-bit integer.
func (b Bit) Signed() int64 {
	if b.Width < 64 && b.V&(1<<uint(b.Width-1)) != 0 {
		return int64(b.V) - (1 << uint(b.Width))
	}
	return int64(b.V)
}

// Bool is an Indus boolean.
type Bool bool

func (b Bool) String() string { return fmt.Sprintf("%t", bool(b)) }
func (Bool) Type() ast.Type   { return ast.BoolType{} }
func (b Bool) key() string {
	if b {
		return "t"
	}
	return "f"
}
func (b Bool) Equal(o Value) bool {
	ob, ok := o.(Bool)
	return ok && ob == b
}

// Array is a fixed-capacity list with push semantics, mirroring a P4
// header stack: Vals holds the valid (pushed) elements, oldest first.
// When a push would exceed the capacity the oldest element is evicted, so
// the array always retains the most recent Cap elements of the trace.
type Array struct {
	Elem ast.Type
	Cap  int
	Vals []Value
}

// NewArray returns an empty array of the given element type and capacity.
func NewArray(elem ast.Type, capacity int) *Array {
	return &Array{Elem: elem, Cap: capacity}
}

func (a *Array) String() string {
	parts := make([]string, len(a.Vals))
	for i, v := range a.Vals {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (a *Array) Type() ast.Type { return ast.ArrayType{Elem: a.Elem, Len: a.Cap} }

func (a *Array) key() string {
	parts := make([]string, len(a.Vals))
	for i, v := range a.Vals {
		parts[i] = v.key()
	}
	return "a[" + strings.Join(parts, ",") + "]"
}

func (a *Array) Equal(o Value) bool {
	oa, ok := o.(*Array)
	if !ok || len(oa.Vals) != len(a.Vals) || oa.Cap != a.Cap {
		return false
	}
	for i := range a.Vals {
		if !a.Vals[i].Equal(oa.Vals[i]) {
			return false
		}
	}
	return true
}

// Push appends v, evicting the oldest element if the array is full.
func (a *Array) Push(v Value) {
	if len(a.Vals) == a.Cap {
		copy(a.Vals, a.Vals[1:])
		a.Vals[len(a.Vals)-1] = v
		return
	}
	a.Vals = append(a.Vals, v)
}

// Len returns the number of valid (pushed) elements.
func (a *Array) Len() int { return len(a.Vals) }

// Get returns the i'th valid element; the zero value of the element type
// is returned for an index beyond the valid prefix (matching the
// compiled code, which reads an invalid header-stack entry as zeros).
func (a *Array) Get(i int) Value {
	if i < 0 || i >= len(a.Vals) {
		return Zero(a.Elem)
	}
	return a.Vals[i]
}

// Set writes the i'th element, extending the valid prefix with zeros as
// needed (bounded by capacity).
func (a *Array) Set(i int, v Value) error {
	if i < 0 || i >= a.Cap {
		return fmt.Errorf("index %d out of range for array of capacity %d", i, a.Cap)
	}
	for len(a.Vals) <= i {
		a.Vals = append(a.Vals, Zero(a.Elem))
	}
	a.Vals[i] = v
	return nil
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	vals := make([]Value, len(a.Vals))
	copy(vals, a.Vals) // Bit and Bool are immutable; nested arrays are disallowed by types
	return &Array{Elem: a.Elem, Cap: a.Cap, Vals: vals}
}

// Tuple is a compound value: dict key or report payload.
type Tuple struct{ Elems []Value }

func (t Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, v := range t.Elems {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (t Tuple) Type() ast.Type {
	elems := make([]ast.Type, len(t.Elems))
	for i, v := range t.Elems {
		elems[i] = v.Type()
	}
	return ast.TupleType{Elems: elems}
}

func (t Tuple) key() string {
	parts := make([]string, len(t.Elems))
	for i, v := range t.Elems {
		parts[i] = v.key()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (t Tuple) Equal(o Value) bool {
	ot, ok := o.(Tuple)
	if !ok || len(ot.Elems) != len(t.Elems) {
		return false
	}
	for i := range t.Elems {
		if !t.Elems[i].Equal(ot.Elems[i]) {
			return false
		}
	}
	return true
}

// Zero returns the zero value of t: 0 for bits, false for bool, an empty
// array for arrays, and a tuple of zeros for tuples.
func Zero(t ast.Type) Value {
	switch t := t.(type) {
	case ast.BitType:
		return Bit{Width: t.Width}
	case ast.BoolType:
		return Bool(false)
	case ast.ArrayType:
		return NewArray(t.Elem, t.Len)
	case ast.TupleType:
		elems := make([]Value, len(t.Elems))
		for i, e := range t.Elems {
			elems[i] = Zero(e)
		}
		return Tuple{Elems: elems}
	}
	panic(fmt.Sprintf("eval: no zero value for type %s", t))
}

// KeyOf returns the canonical dictionary-key encoding of v.
func KeyOf(v Value) string { return v.key() }

// Clone returns a deep copy of v.
func Clone(v Value) Value {
	if a, ok := v.(*Array); ok {
		return a.Clone()
	}
	return v // Bit, Bool, Tuple are immutable
}
