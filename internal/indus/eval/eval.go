package eval

import (
	"fmt"

	"repro/internal/indus/ast"
	"repro/internal/indus/token"
	"repro/internal/indus/types"
)

// ControlVar is the switch-local view of one control-plane variable.
// Exactly one of the three stores is used, matching the declared type.
// Dictionary lookups that miss return the zero value of the value type,
// mirroring the default action of the compiled match-action table.
type ControlVar struct {
	Scalar Value
	Dict   map[string]Value
	Set    map[string]bool
}

// NewControlDict returns an empty dictionary control variable.
func NewControlDict() *ControlVar { return &ControlVar{Dict: make(map[string]Value)} }

// NewControlSet returns an empty set control variable.
func NewControlSet() *ControlVar { return &ControlVar{Set: make(map[string]bool)} }

// NewControlScalar returns a scalar control variable with the given value.
func NewControlScalar(v Value) *ControlVar { return &ControlVar{Scalar: v} }

// Put installs key->val in a dictionary control variable.
func (cv *ControlVar) Put(key, val Value) { cv.Dict[KeyOf(key)] = val }

// Delete removes key from a dictionary control variable.
func (cv *ControlVar) Delete(key Value) { delete(cv.Dict, KeyOf(key)) }

// Add inserts key into a set control variable.
func (cv *ControlVar) Add(key Value) { cv.Set[KeyOf(key)] = true }

// SwitchState is the per-switch state visible to an Indus program: sensor
// registers (read-write, persistent across packets) and control variables
// (read-only, managed by the control plane).
type SwitchState struct {
	ID       uint32
	Sensors  map[string]Value
	Controls map[string]*ControlVar
}

// NewSwitchState returns an empty switch state with the given identifier.
func NewSwitchState(id uint32) *SwitchState {
	return &SwitchState{
		ID:       id,
		Sensors:  make(map[string]Value),
		Controls: make(map[string]*ControlVar),
	}
}

// Hop is one element of the network-wide trace a packet experiences: the
// switch it traversed and the header-variable bindings observed there.
type Hop struct {
	Switch    *SwitchState
	Headers   map[string]Value
	PacketLen uint32
}

// Verdict is the final disposition of a packet.
type Verdict int

const (
	VerdictForward Verdict = iota
	VerdictReject
)

func (v Verdict) String() string {
	if v == VerdictReject {
		return "reject"
	}
	return "forward"
}

// Report is one report(...) exception raised during execution.
type Report struct {
	Args     []Value
	SwitchID uint32
	HopIndex int
	Block    types.BlockKind
}

// Outcome is the result of running a program over a complete trace.
type Outcome struct {
	Verdict Verdict
	Reports []Report
	// Tele holds the final telemetry variable values, useful for tests
	// and for diffing against the compiled pipeline.
	Tele map[string]Value
}

// Machine executes a type-checked Indus program.
type Machine struct {
	prog *ast.Program
	info *types.Info
}

// New returns a machine for the checked program.
func New(info *types.Info) *Machine {
	return &Machine{prog: info.Prog, info: info}
}

// PacketState carries the telemetry variables between hops, playing the
// role of the Hydra telemetry header on the wire.
type PacketState struct {
	Tele map[string]Value
	// rejected records a reject raised by the checker block.
	rejected bool
	reports  []Report
}

// NewPacketState allocates telemetry storage with each tele variable set
// to its declared initializer (or zero). Initializer expressions that
// reference header or control state are re-evaluated in the init block;
// here only constant initializers apply, matching the compiled parser
// which zero-fills the telemetry header before the init table runs.
func (m *Machine) NewPacketState() *PacketState {
	ps := &PacketState{Tele: make(map[string]Value)}
	for _, d := range m.prog.DeclsOfKind(ast.KindTele) {
		ps.Tele[d.Name] = Zero(d.Type)
	}
	return ps
}

// frame is the mutable execution context for one block at one hop.
type frame struct {
	m        *Machine
	ps       *PacketState
	hop      Hop
	hopIndex int
	lastHop  bool
	block    types.BlockKind
	locals   map[string]Value // loop variables
}

// RunTrace executes the full program over a trace: init at the first hop,
// telemetry at every hop, checker at the last hop. It mutates sensor
// state on the switches in the trace.
func (m *Machine) RunTrace(hops []Hop) (Outcome, error) {
	if len(hops) == 0 {
		return Outcome{}, fmt.Errorf("eval: empty trace")
	}
	ps := m.NewPacketState()
	if err := m.RunInit(ps, hops[0], 0, len(hops) == 1); err != nil {
		return Outcome{}, err
	}
	for i, h := range hops {
		if err := m.RunTelemetry(ps, h, i, i == len(hops)-1); err != nil {
			return Outcome{}, err
		}
	}
	last := len(hops) - 1
	if err := m.RunChecker(ps, hops[last], last, true); err != nil {
		return Outcome{}, err
	}
	return m.Finish(ps), nil
}

// Finish assembles the outcome after the checker block has run.
func (m *Machine) Finish(ps *PacketState) Outcome {
	verdict := VerdictForward
	if ps.rejected {
		verdict = VerdictReject
	}
	tele := make(map[string]Value, len(ps.Tele))
	for k, v := range ps.Tele {
		tele[k] = Clone(v)
	}
	return Outcome{Verdict: verdict, Reports: ps.reports, Tele: tele}
}

// RunInit executes the init block and constant initializers at a hop.
func (m *Machine) RunInit(ps *PacketState, hop Hop, hopIndex int, lastHop bool) error {
	f := &frame{m: m, ps: ps, hop: hop, hopIndex: hopIndex, lastHop: lastHop, block: types.BlockInit, locals: map[string]Value{}}
	// Re-evaluate tele initializers that need hop context; sensor
	// initializers are applied lazily on first access instead (they
	// initialize switch-resident registers, not packet state).
	for _, d := range m.prog.DeclsOfKind(ast.KindTele) {
		if d.Init != nil {
			v, err := f.eval(d.Init, d.Type)
			if err != nil {
				return err
			}
			ps.Tele[d.Name] = v
		}
	}
	return f.execBlock(m.prog.Init)
}

// RunTelemetry executes the telemetry block at a hop.
func (m *Machine) RunTelemetry(ps *PacketState, hop Hop, hopIndex int, lastHop bool) error {
	f := &frame{m: m, ps: ps, hop: hop, hopIndex: hopIndex, lastHop: lastHop, block: types.BlockTelemetry, locals: map[string]Value{}}
	return f.execBlock(m.prog.Telemetry)
}

// RunChecker executes the checker block at the last hop.
func (m *Machine) RunChecker(ps *PacketState, hop Hop, hopIndex int, lastHop bool) error {
	f := &frame{m: m, ps: ps, hop: hop, hopIndex: hopIndex, lastHop: lastHop, block: types.BlockChecker, locals: map[string]Value{}}
	return f.execBlock(m.prog.Checker)
}

// Rejected reports whether the checker raised reject for this packet.
func (ps *PacketState) Rejected() bool { return ps.rejected }

// Reports returns the reports raised so far for this packet.
func (ps *PacketState) Reports() []Report { return ps.reports }

// ---------------------------------------------------------------------------
// Statement execution

func (f *frame) execBlock(b *ast.Block) error {
	if b == nil {
		return nil
	}
	for _, s := range b.Stmts {
		if err := f.exec(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) exec(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		return f.execBlock(s)

	case *ast.Pass:
		return nil

	case *ast.Reject:
		// Like the compiled code (Figure 6), reject sets a flag that is
		// applied when the packet leaves the checker; execution of the
		// rest of the block continues so that a following report(...)
		// still fires (as in the Figure 9 application-filtering checker).
		f.ps.rejected = true
		return nil

	case *ast.Report:
		args := make([]Value, len(s.Args))
		for i, a := range s.Args {
			v, err := f.eval(a, nil)
			if err != nil {
				return err
			}
			args[i] = Clone(v)
		}
		f.ps.reports = append(f.ps.reports, Report{
			Args:     args,
			SwitchID: f.hop.Switch.ID,
			HopIndex: f.hopIndex,
			Block:    f.block,
		})
		return nil

	case *ast.Assign:
		return f.execAssign(s)

	case *ast.If:
		cond, err := f.evalBool(s.Cond)
		if err != nil {
			return err
		}
		if cond {
			return f.execBlock(s.Then)
		}
		if s.Else != nil {
			return f.exec(s.Else)
		}
		return nil

	case *ast.For:
		return f.execFor(s)

	case *ast.ExprStmt:
		m := s.X.(*ast.Method) // parser guarantees push
		return f.execPush(m)

	default:
		return fmt.Errorf("%s: eval: unknown statement %T", s.Position(), s)
	}
}

func (f *frame) execAssign(s *ast.Assign) error {
	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		d := f.m.info.Decls[lhs.Name]
		rhs, err := f.eval(s.RHS, d.Type)
		if err != nil {
			return err
		}
		if s.Op != token.ASSIGN {
			old, err := f.readVar(lhs)
			if err != nil {
				return err
			}
			rhs, err = applyCompound(s.Op, old, rhs)
			if err != nil {
				return fmt.Errorf("%s: %v", s.Pos, err)
			}
		}
		return f.writeVar(d, rhs)

	case *ast.Index:
		// Array element assignment: a[i] = v.
		base, ok := lhs.X.(*ast.Ident)
		if !ok {
			return fmt.Errorf("%s: eval: unsupported nested assignment target", s.Pos)
		}
		d := f.m.info.Decls[base.Name]
		cur, err := f.readVar(base)
		if err != nil {
			return err
		}
		arr, ok := cur.(*Array)
		if !ok {
			return fmt.Errorf("%s: eval: indexed assignment to non-array %q", s.Pos, base.Name)
		}
		idxV, err := f.eval(lhs.Idx, nil)
		if err != nil {
			return err
		}
		idx := int(idxV.(Bit).V)
		rhs, err := f.eval(s.RHS, arr.Elem)
		if err != nil {
			return err
		}
		if s.Op != token.ASSIGN {
			rhs, err = applyCompound(s.Op, arr.Get(idx), rhs)
			if err != nil {
				return fmt.Errorf("%s: %v", s.Pos, err)
			}
		}
		arr = arr.Clone()
		// An out-of-range indexed write is dropped, matching the
		// compiled pipeline (a header-stack slot that does not exist
		// simply is not written on hardware).
		if err := arr.Set(idx, rhs); err != nil {
			return nil
		}
		return f.writeVar(d, arr)
	}
	return fmt.Errorf("%s: eval: invalid assignment target", s.Pos)
}

func applyCompound(op token.Kind, old, rhs Value) (Value, error) {
	a, okA := old.(Bit)
	b, okB := rhs.(Bit)
	if !okA || !okB {
		return nil, fmt.Errorf("compound assignment requires bit values")
	}
	switch op {
	case token.PLUSASSIGN:
		return NewBit(a.Width, a.V+b.V), nil
	case token.MINUSASSIGN:
		return NewBit(a.Width, a.V-b.V), nil
	}
	return nil, fmt.Errorf("unknown compound operator %s", op)
}

func (f *frame) execFor(s *ast.For) error {
	arrays := make([]*Array, len(s.Seqs))
	n := 0
	for i, seq := range s.Seqs {
		v, err := f.eval(seq, nil)
		if err != nil {
			return err
		}
		arr, ok := v.(*Array)
		if !ok {
			return fmt.Errorf("%s: eval: for over non-array value", s.Pos)
		}
		arrays[i] = arr
		if i == 0 || arr.Len() < n {
			n = arr.Len()
		}
	}
	saved := make(map[string]Value, len(s.Vars))
	for _, name := range s.Vars {
		if prev, ok := f.locals[name]; ok {
			saved[name] = prev
		}
	}
	defer func() {
		for _, name := range s.Vars {
			if prev, ok := saved[name]; ok {
				f.locals[name] = prev
			} else {
				delete(f.locals, name)
			}
		}
	}()
	for i := 0; i < n; i++ {
		for j, name := range s.Vars {
			f.locals[name] = arrays[j].Get(i)
		}
		if err := f.execBlock(s.Body); err != nil {
			return err
		}
	}
	return nil
}

func (f *frame) execPush(m *ast.Method) error {
	base, ok := m.Recv.(*ast.Ident)
	if !ok {
		return fmt.Errorf("%s: eval: push receiver must be a variable", m.Pos)
	}
	d := f.m.info.Decls[base.Name]
	cur, err := f.readVar(base)
	if err != nil {
		return err
	}
	arr, ok := cur.(*Array)
	if !ok {
		return fmt.Errorf("%s: eval: push on non-array %q", m.Pos, base.Name)
	}
	v, err := f.eval(m.Args[0], arr.Elem)
	if err != nil {
		return err
	}
	arr = arr.Clone()
	arr.Push(v)
	return f.writeVar(d, arr)
}

// ---------------------------------------------------------------------------
// Variable access

func (f *frame) readVar(id *ast.Ident) (Value, error) {
	if v, ok := f.locals[id.Name]; ok {
		return v, nil
	}
	if t, isBuiltin := ast.BuiltinType(id.Name); isBuiltin {
		return f.builtin(id.Name, t)
	}
	d, ok := f.m.info.Decls[id.Name]
	if !ok {
		return nil, fmt.Errorf("%s: eval: undeclared variable %q", id.Pos, id.Name)
	}
	switch d.Kind {
	case ast.KindTele:
		return f.ps.Tele[d.Name], nil

	case ast.KindSensor:
		if v, ok := f.hop.Switch.Sensors[d.Name]; ok {
			return v, nil
		}
		v := Zero(d.Type)
		if d.Init != nil {
			iv, err := f.eval(d.Init, d.Type)
			if err != nil {
				return nil, err
			}
			v = iv
		}
		f.hop.Switch.Sensors[d.Name] = v
		return v, nil

	case ast.KindHeader:
		v, ok := f.hop.Headers[d.Name]
		if !ok {
			return nil, fmt.Errorf("%s: eval: header variable %q not bound at switch %d", id.Pos, d.Name, f.hop.Switch.ID)
		}
		return v, nil

	case ast.KindControl:
		cv, ok := f.hop.Switch.Controls[d.Name]
		if !ok {
			// An uninstalled control variable reads as zero, matching a
			// match-action table whose default action returns zeros.
			return Zero(scalarOf(d.Type)), nil
		}
		if cv.Scalar == nil {
			return nil, fmt.Errorf("%s: eval: control variable %q is a %s and must be indexed", id.Pos, d.Name, d.Type)
		}
		return cv.Scalar, nil
	}
	return nil, fmt.Errorf("%s: eval: unhandled variable kind", id.Pos)
}

// scalarOf maps a control-variable type to the type its bare read yields.
func scalarOf(t ast.Type) ast.Type {
	switch t := t.(type) {
	case ast.DictType:
		return t.Val
	case ast.SetType:
		return ast.BoolType{}
	default:
		return t
	}
}

func (f *frame) writeVar(d *ast.Decl, v Value) error {
	switch d.Kind {
	case ast.KindTele:
		f.ps.Tele[d.Name] = v
		return nil
	case ast.KindSensor:
		f.hop.Switch.Sensors[d.Name] = v
		return nil
	}
	return fmt.Errorf("eval: write to read-only %s variable %q", d.Kind, d.Name)
}

func (f *frame) builtin(name string, t ast.Type) (Value, error) {
	switch name {
	case ast.BuiltinLastHop:
		return Bool(f.lastHop), nil
	case ast.BuiltinFirstHop:
		return Bool(f.hopIndex == 0), nil
	case ast.BuiltinPacketLength:
		return NewBit(32, uint64(f.hop.PacketLen)), nil
	case ast.BuiltinSwitchID:
		return NewBit(32, uint64(f.hop.Switch.ID)), nil
	case ast.BuiltinHopCount:
		return NewBit(8, uint64(f.hopIndex+1)), nil
	}
	return nil, fmt.Errorf("eval: unknown builtin %q", name)
}

// ---------------------------------------------------------------------------
// Expression evaluation

func (f *frame) evalBool(e ast.Expr) (bool, error) {
	v, err := f.eval(e, ast.BoolType{})
	if err != nil {
		return false, err
	}
	b, ok := v.(Bool)
	if !ok {
		return false, fmt.Errorf("%s: eval: condition is %s, not bool", e.Position(), v.Type())
	}
	return bool(b), nil
}

// eval evaluates e. expected provides the width for bare integer
// literals; the type checker has already guaranteed consistency.
func (f *frame) eval(e ast.Expr, expected ast.Type) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		if t := f.m.info.TypeOf(e); t != nil {
			if bt, ok := t.(ast.BitType); ok {
				return NewBit(bt.Width, e.Value), nil
			}
		}
		if bt, ok := expected.(ast.BitType); ok {
			return NewBit(bt.Width, e.Value), nil
		}
		return NewBit(32, e.Value), nil

	case *ast.BoolLit:
		return Bool(e.Value), nil

	case *ast.Ident:
		return f.readVar(e)

	case *ast.Unary:
		return f.evalUnary(e)

	case *ast.Binary:
		return f.evalBinary(e)

	case *ast.Index:
		return f.evalIndex(e)

	case *ast.Tuple:
		elems := make([]Value, len(e.Elems))
		for i, x := range e.Elems {
			v, err := f.eval(x, nil)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return Tuple{Elems: elems}, nil

	case *ast.Call:
		return f.evalCall(e)

	case *ast.Method:
		if e.Name == "length" {
			recv, err := f.eval(e.Recv, nil)
			if err != nil {
				return nil, err
			}
			arr, ok := recv.(*Array)
			if !ok {
				return nil, fmt.Errorf("%s: eval: length of non-array", e.Pos)
			}
			return NewBit(32, uint64(arr.Len())), nil
		}
		return nil, fmt.Errorf("%s: eval: method %q is not an expression", e.Pos, e.Name)
	}
	return nil, fmt.Errorf("%s: eval: unknown expression %T", e.Position(), e)
}

func (f *frame) evalUnary(e *ast.Unary) (Value, error) {
	x, err := f.eval(e.X, nil)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case token.NOT:
		return !x.(Bool), nil
	case token.TILDE:
		b := x.(Bit)
		return NewBit(b.Width, ^b.V), nil
	case token.MINUS:
		b := x.(Bit)
		return NewBit(b.Width, -b.V), nil
	}
	return nil, fmt.Errorf("%s: eval: unknown unary %s", e.Pos, e.Op)
}

func (f *frame) evalBinary(e *ast.Binary) (Value, error) {
	// Short-circuit boolean operators.
	switch e.Op {
	case token.LAND:
		x, err := f.evalBool(e.X)
		if err != nil || !x {
			return Bool(false), err
		}
		y, err := f.evalBool(e.Y)
		return Bool(y), err
	case token.LOR:
		x, err := f.evalBool(e.X)
		if err != nil || x {
			return Bool(true), err
		}
		y, err := f.evalBool(e.Y)
		return Bool(y), err
	case token.IN:
		return f.evalIn(e)
	}

	xType := f.m.info.TypeOf(e.X)
	yType := f.m.info.TypeOf(e.Y)
	x, err := f.eval(e.X, yType)
	if err != nil {
		return nil, err
	}
	y, err := f.eval(e.Y, xType)
	if err != nil {
		return nil, err
	}

	switch e.Op {
	case token.EQ:
		return Bool(x.Equal(y)), nil
	case token.NEQ:
		return Bool(!x.Equal(y)), nil
	}

	a, okA := x.(Bit)
	b, okB := y.(Bit)
	if !okA || !okB {
		return nil, fmt.Errorf("%s: eval: operator %s on non-bit values", e.Pos, e.Op)
	}
	switch e.Op {
	case token.LT:
		return Bool(a.V < b.V), nil
	case token.LEQ:
		return Bool(a.V <= b.V), nil
	case token.GT:
		return Bool(a.V > b.V), nil
	case token.GEQ:
		return Bool(a.V >= b.V), nil
	case token.PLUS:
		return NewBit(a.Width, a.V+b.V), nil
	case token.MINUS:
		return NewBit(a.Width, a.V-b.V), nil
	case token.STAR:
		return NewBit(a.Width, a.V*b.V), nil
	case token.SLASH:
		if b.V == 0 {
			// Division by zero yields zero: the compiled pipeline has no
			// trap mechanism, so the semantics are total by definition.
			return NewBit(a.Width, 0), nil
		}
		return NewBit(a.Width, a.V/b.V), nil
	case token.PERCENT:
		if b.V == 0 {
			return NewBit(a.Width, 0), nil
		}
		return NewBit(a.Width, a.V%b.V), nil
	case token.AMP:
		return NewBit(a.Width, a.V&b.V), nil
	case token.PIPE:
		return NewBit(a.Width, a.V|b.V), nil
	case token.CARET:
		return NewBit(a.Width, a.V^b.V), nil
	case token.SHL:
		if b.V >= 64 {
			return NewBit(a.Width, 0), nil
		}
		return NewBit(a.Width, a.V<<b.V), nil
	case token.SHR:
		if b.V >= 64 {
			return NewBit(a.Width, 0), nil
		}
		return NewBit(a.Width, a.V>>b.V), nil
	}
	return nil, fmt.Errorf("%s: eval: unknown binary %s", e.Pos, e.Op)
}

func (f *frame) evalIn(e *ast.Binary) (Value, error) {
	container, err := f.containerOf(e.Y)
	if err != nil {
		return nil, err
	}
	switch cont := container.(type) {
	case *ControlVar:
		x, err := f.eval(e.X, nil)
		if err != nil {
			return nil, err
		}
		return Bool(cont.Set[KeyOf(x)]), nil
	case *Array:
		x, err := f.eval(e.X, cont.Elem)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cont.Len(); i++ {
			if cont.Get(i).Equal(x) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	}
	return nil, fmt.Errorf("%s: eval: in over unsupported container", e.Pos)
}

// containerOf resolves the right operand of `in` or the base of an index:
// either a runtime Array value or a switch-resident ControlVar.
func (f *frame) containerOf(e ast.Expr) (any, error) {
	if id, ok := e.(*ast.Ident); ok {
		if d, isDecl := f.m.info.Decls[id.Name]; isDecl && d.Kind == ast.KindControl {
			switch d.Type.(type) {
			case ast.SetType, ast.DictType:
				cv, installed := f.hop.Switch.Controls[d.Name]
				if !installed {
					cv = &ControlVar{Dict: map[string]Value{}, Set: map[string]bool{}}
				}
				return cv, nil
			}
		}
	}
	v, err := f.eval(e, nil)
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (f *frame) evalIndex(e *ast.Index) (Value, error) {
	container, err := f.containerOf(e.X)
	if err != nil {
		return nil, err
	}
	switch cont := container.(type) {
	case *Array:
		idxV, err := f.eval(e.Idx, ast.BitType{Width: 32})
		if err != nil {
			return nil, err
		}
		idx, ok := idxV.(Bit)
		if !ok {
			return nil, fmt.Errorf("%s: eval: array index is not a bit value", e.Pos)
		}
		return cont.Get(int(idx.V)), nil

	case *ControlVar:
		// Dictionary lookup.
		d := f.m.info.Decls[e.X.(*ast.Ident).Name]
		dt, ok := d.Type.(ast.DictType)
		if !ok {
			return nil, fmt.Errorf("%s: eval: control variable %q is not a dict", e.Pos, d.Name)
		}
		keyV, err := f.eval(e.Idx, dt.Key)
		if err != nil {
			return nil, err
		}
		if v, hit := cont.Dict[KeyOf(keyV)]; hit {
			return v, nil
		}
		return Zero(dt.Val), nil
	}
	return nil, fmt.Errorf("%s: eval: cannot index value of type %T", e.Pos, container)
}

func (f *frame) evalCall(e *ast.Call) (Value, error) {
	args := make([]Bit, len(e.Args))
	var width int
	for i, a := range e.Args {
		v, err := f.eval(a, f.m.info.TypeOf(e))
		if err != nil {
			return nil, err
		}
		b, ok := v.(Bit)
		if !ok {
			return nil, fmt.Errorf("%s: eval: %s requires bit arguments", e.Pos, e.Name)
		}
		args[i] = b
		width = b.Width
	}
	switch e.Name {
	case "abs":
		s := args[0].Signed()
		if s < 0 {
			s = -s
		}
		return NewBit(width, uint64(s)), nil
	case "max":
		if args[0].V >= args[1].V {
			return args[0], nil
		}
		return args[1], nil
	case "min":
		if args[0].V <= args[1].V {
			return args[0], nil
		}
		return args[1], nil
	}
	return nil, fmt.Errorf("%s: eval: unknown function %q", e.Pos, e.Name)
}
