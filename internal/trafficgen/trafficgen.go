// Package trafficgen generates the workloads of the §6.2 evaluation:
//
//   - a campus-like packet trace standing in for the Princeton P4Campus
//     tap (Figure 13): two /16 subnets, prefix-preserving one-way hashed
//     addresses (the ONTAS anonymizer's transform), heavy-tailed flow
//     sizes, an empirical packet-size mix, and a ~350 Kpps offered load;
//   - an iperf3-like constant-bitrate UDP load between hosts;
//   - the "fast ping" (one echo every 0.2 s) whose RTTs Figure 12 plots.
package trafficgen

import (
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// AnonymizeIP applies a prefix-preserving one-way transform: the /16
// network part is kept (so subnet structure survives) and the host part
// is replaced by a salted hash, like the paper's line-rate anonymizer.
func AnonymizeIP(ip dataplane.IP4, salt uint64) dataplane.IP4 {
	h := fnv.New32a()
	var b [12]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(salt >> (8 * uint(i)))
	}
	b[8] = byte(ip >> 24)
	b[9] = byte(ip >> 16)
	b[10] = byte(ip >> 8)
	b[11] = byte(ip)
	h.Write(b[:])
	return ip&0xffff0000 | dataplane.IP4(h.Sum32()&0xffff)
}

// CampusConfig sizes the synthetic campus trace.
type CampusConfig struct {
	Seed int64
	// Subnets are the tapped /16s; defaults to two RFC-style blocks.
	Subnets []dataplane.IP4
	// PacketsPerSec is the offered load; the paper's replay is ~350K.
	PacketsPerSec int
	// Flows is the number of concurrent flows; defaults to 4096.
	Flows int
	// Salt feeds the address anonymizer.
	Salt uint64
}

// Packet is one generated trace record.
type Packet struct {
	Src, Dst     dataplane.IP4
	Proto        uint8
	Sport, Dport uint16
	Size         int // wire bytes
	// Gap is the inter-arrival time to the previous packet.
	Gap netsim.Time
}

type flow struct {
	src, dst     dataplane.IP4
	proto        uint8
	sport, dport uint16
	remaining    int
}

// Campus is a deterministic synthetic trace generator.
type Campus struct {
	cfg   CampusConfig
	rng   *rand.Rand
	flows []flow
}

// NewCampus builds a generator.
func NewCampus(cfg CampusConfig) *Campus {
	if cfg.PacketsPerSec == 0 {
		cfg.PacketsPerSec = 350_000
	}
	if cfg.Flows == 0 {
		cfg.Flows = 4096
	}
	if len(cfg.Subnets) == 0 {
		cfg.Subnets = []dataplane.IP4{
			dataplane.MustIP4("172.16.0.0"),
			dataplane.MustIP4("172.17.0.0"),
		}
	}
	g := &Campus{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.flows = make([]flow, cfg.Flows)
	for i := range g.flows {
		g.flows[i] = g.newFlow()
	}
	return g
}

// newFlow draws a flow with a Pareto-distributed size (heavy tail: most
// flows are mice, most bytes are in elephants).
func (g *Campus) newFlow() flow {
	inside := g.cfg.Subnets[g.rng.Intn(len(g.cfg.Subnets))]
	src := AnonymizeIP(inside|dataplane.IP4(g.rng.Intn(1<<16)), g.cfg.Salt)
	dst := AnonymizeIP(dataplane.IP4(g.rng.Uint32()), g.cfg.Salt)

	proto := dataplane.ProtoTCP
	if g.rng.Float64() < 0.25 {
		proto = dataplane.ProtoUDP
	}
	// Pareto(alpha=1.3) packet count, clamped.
	n := int(math.Pow(1-g.rng.Float64(), -1/1.3))
	if n < 1 {
		n = 1
	}
	if n > 10000 {
		n = 10000
	}
	return flow{
		src: src, dst: dst, proto: proto,
		sport:     uint16(1024 + g.rng.Intn(60000)),
		dport:     commonPorts[g.rng.Intn(len(commonPorts))],
		remaining: n,
	}
}

var commonPorts = []uint16{80, 443, 53, 22, 123, 8080, 3478, 5353}

// packetSizes is an empirical internet mix: smalls, mediums, MTU-sized.
var packetSizes = []struct {
	size   int
	weight float64
}{
	{64, 0.45},
	{215, 0.15},
	{576, 0.10},
	{1024, 0.05},
	{1500, 0.25},
}

func (g *Campus) drawSize() int {
	r := g.rng.Float64()
	for _, s := range packetSizes {
		if r < s.weight {
			return s.size
		}
		r -= s.weight
	}
	return 1500
}

// Next returns the next trace packet. Inter-arrivals are exponential at
// the configured rate (Poisson arrivals).
func (g *Campus) Next() Packet {
	i := g.rng.Intn(len(g.flows))
	f := &g.flows[i]
	pkt := Packet{
		Src: f.src, Dst: f.dst, Proto: f.proto,
		Sport: f.sport, Dport: f.dport,
		Size: g.drawSize(),
		Gap:  netsim.Time(g.rng.ExpFloat64() * float64(netsim.Second) / float64(g.cfg.PacketsPerSec)),
	}
	f.remaining--
	if f.remaining <= 0 {
		g.flows[i] = g.newFlow()
	}
	return pkt
}

// Decode builds the wire packet for a trace record (payload zeroed, as
// the anonymizer discards payloads).
func (p Packet) Decode() *dataplane.Decoded {
	d := &dataplane.Decoded{
		Eth:     dataplane.Ethernet{Type: dataplane.EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    dataplane.IPv4{TTL: 64, Protocol: p.Proto, Src: p.Src, Dst: p.Dst},
	}
	overhead := dataplane.EthernetLen + dataplane.IPv4Len
	switch p.Proto {
	case dataplane.ProtoUDP:
		d.HasUDP = true
		d.UDP = dataplane.UDP{SrcPort: p.Sport, DstPort: p.Dport}
		overhead += dataplane.UDPLen
	case dataplane.ProtoTCP:
		d.HasTCP = true
		d.TCP = dataplane.TCP{SrcPort: p.Sport, DstPort: p.Dport, Window: 65535}
		overhead += dataplane.TCPLen
	}
	if pay := p.Size - overhead; pay > 0 {
		d.Payload = make([]byte, pay)
	}
	return d
}

// FlowKey returns the record's 5-tuple — the shard-affinity unit the
// checker engine hashes for RSS-style dispatch.
func (p Packet) FlowKey() dataplane.FlowKey {
	return dataplane.FlowKey{Src: p.Src, Dst: p.Dst, Proto: p.Proto, Sport: p.Sport, Dport: p.Dport}
}

// UDPLoad is an iperf3-like UDP stream: constant bitrate by default,
// Poisson arrivals at the same average rate when Poisson is set.
type UDPLoad struct {
	Host    *netsim.Host
	Dst     dataplane.IP4
	Bps     int64
	PktSize int
	Sport   uint16
	Dport   uint16
	Poisson bool
	Seed    int64

	Sent uint64
}

// Start schedules the stream from now until the given time.
func (l *UDPLoad) Start(sim *netsim.Simulator, until netsim.Time) {
	if l.PktSize == 0 {
		l.PktSize = 1400
	}
	mean := float64(int64(l.PktSize) * 8 * int64(netsim.Second) / l.Bps)
	payload := l.PktSize - dataplane.EthernetLen - dataplane.IPv4Len - dataplane.UDPLen
	rng := rand.New(rand.NewSource(l.Seed + int64(l.Sport)))
	var tick func()
	tick = func() {
		if sim.Now() >= until {
			return
		}
		l.Host.SendUDP(l.Dst, l.Sport, l.Dport, payload)
		l.Sent++
		gap := netsim.Time(mean)
		if l.Poisson {
			gap = netsim.Time(rng.ExpFloat64() * mean)
		}
		sim.After(gap, tick)
	}
	sim.After(0, tick)
}

// StartPinger issues an echo request every interval until the given
// time, the Figure 12 measurement workload (0.2 s period in the paper).
func StartPinger(sim *netsim.Simulator, h *netsim.Host, dst dataplane.IP4, interval, until netsim.Time) {
	seq := uint16(0)
	var tick func()
	tick = func() {
		if sim.Now() >= until {
			return
		}
		seq++
		h.Ping(dst, seq)
		sim.After(interval, tick)
	}
	sim.After(0, tick)
}
