package trafficgen

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

func TestAnonymizePreservesPrefix(t *testing.T) {
	salt := uint64(0xfeed)
	ip := dataplane.MustIP4("172.16.42.9")
	anon := AnonymizeIP(ip, salt)
	if anon>>16 != ip>>16 {
		t.Fatalf("prefix not preserved: %s -> %s", ip, anon)
	}
	// Deterministic (consistent across packets of a flow).
	if AnonymizeIP(ip, salt) != anon {
		t.Fatal("anonymization must be deterministic")
	}
	// Salt-dependent (one-way without the salt).
	if AnonymizeIP(ip, salt+1) == anon {
		t.Fatal("different salts should give different mappings")
	}
}

func TestCampusDeterminism(t *testing.T) {
	a, b := NewCampus(CampusConfig{Seed: 7}), NewCampus(CampusConfig{Seed: 7})
	for i := 0; i < 1000; i++ {
		pa, pb := a.Next(), b.Next()
		if pa != pb {
			t.Fatalf("packet %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestCampusRate(t *testing.T) {
	g := NewCampus(CampusConfig{Seed: 1, PacketsPerSec: 350_000})
	var total netsim.Time
	const n = 200_000
	for i := 0; i < n; i++ {
		total += g.Next().Gap
	}
	gotPPS := float64(n) / total.Seconds()
	if gotPPS < 330_000 || gotPPS > 370_000 {
		t.Fatalf("offered load %.0f pps, want ≈350K", gotPPS)
	}
}

func TestCampusPacketsAreWellFormed(t *testing.T) {
	g := NewCampus(CampusConfig{Seed: 3})
	sawTCP, sawUDP := false, false
	for i := 0; i < 500; i++ {
		p := g.Next()
		wire := p.Decode().Serialize()
		if _, err := dataplane.Parse(wire); err != nil {
			t.Fatalf("packet %d does not parse: %v", i, err)
		}
		if p.Proto == dataplane.ProtoTCP {
			sawTCP = true
		}
		if p.Proto == dataplane.ProtoUDP {
			sawUDP = true
		}
		if p.Size < 64 || p.Size > 1500 {
			t.Fatalf("packet size %d out of mix", p.Size)
		}
		// All sources come from the tapped /16s.
		if p.Src>>16 != 0xac10 && p.Src>>16 != 0xac11 {
			t.Fatalf("source %s outside tapped subnets", p.Src)
		}
	}
	if !sawTCP || !sawUDP {
		t.Fatal("mix should include both TCP and UDP")
	}
}

func TestUDPLoadRate(t *testing.T) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	l := &UDPLoad{
		Host: ls.Host(0, 0), Dst: ls.Host(1, 0).IP,
		Bps: 1_000_000_000, PktSize: 1250, Sport: 9, Dport: 9,
	}
	l.Start(sim, 10*netsim.Millisecond)
	sim.RunAll()
	// 1 Gb/s at 1250 B = 100 kpps → 1000 packets in 10 ms.
	if l.Sent < 990 || l.Sent > 1010 {
		t.Fatalf("sent %d packets, want ≈1000", l.Sent)
	}
	if ls.Host(1, 0).RxUDP == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPingerCadence(t *testing.T) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	h := ls.Host(0, 0)
	StartPinger(sim, h, ls.Host(1, 0).IP, 200*netsim.Millisecond, 2*netsim.Second)
	sim.RunAll()
	if n := len(h.RTTs); n != 10 {
		t.Fatalf("got %d RTT samples in 2s at 0.2s cadence, want 10", n)
	}
}

func TestUDPLoadPoisson(t *testing.T) {
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	l := &UDPLoad{
		Host: ls.Host(0, 0), Dst: ls.Host(1, 0).IP,
		Bps: 1_000_000_000, PktSize: 1250, Sport: 9, Dport: 9,
		Poisson: true, Seed: 3,
	}
	l.Start(sim, 20*netsim.Millisecond)
	sim.RunAll()
	// Mean rate preserved: 100 kpps x 20 ms = 2000 +- sqrt-ish noise.
	if l.Sent < 1700 || l.Sent > 2300 {
		t.Fatalf("poisson stream sent %d packets, want ≈2000", l.Sent)
	}
	// Same seed, same sequence.
	sim2 := netsim.NewSimulator()
	ls2 := netsim.BuildLeafSpine(sim2, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	l2 := &UDPLoad{Host: ls2.Host(0, 0), Dst: ls2.Host(1, 0).IP, Bps: 1_000_000_000, PktSize: 1250, Sport: 9, Dport: 9, Poisson: true, Seed: 3}
	l2.Start(sim2, 20*netsim.Millisecond)
	sim2.RunAll()
	if l2.Sent != l.Sent {
		t.Fatalf("poisson stream not deterministic: %d vs %d", l.Sent, l2.Sent)
	}
}
