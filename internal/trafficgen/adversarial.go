package trafficgen

import (
	"sort"

	"repro/internal/dataplane"
	"repro/internal/netsim"
)

// AdversarialHop is one frontier-witness hop with its header bindings
// resolved to annotation paths (the symbolic explorer keys headers by
// Indus declaration name; callers translate via the compiled program's
// HeaderBindings before handing hops to this package).
type AdversarialHop struct {
	Headers map[string]uint64
	PktLen  uint32
}

// adversarialMTU caps the rendered frame size. Frontier witnesses probe
// the full 32-bit packet_length domain (the checker reads the length
// from the trace record, not the frame), so the wire rendering clamps
// to a standard MTU instead of materializing multi-gigabyte payloads.
const adversarialMTU = 1500

// AdversarialPacket renders a frontier hop as a wire-level trace
// record. Bindings onto the standard 5-tuple map directly; everything
// else (switch-local metadata, tunnel-inner fields) is folded into the
// source port so distinct frontier packets stay distinct flows on the
// wire.
func AdversarialPacket(h AdversarialHop) Packet {
	p := Packet{
		Src:   dataplane.MustIP4("172.16.0.1"),
		Dst:   dataplane.MustIP4("172.17.0.1"),
		Proto: dataplane.ProtoTCP,
		Sport: 1024,
		Dport: 80,
		Size:  int(h.PktLen),
	}
	paths := make([]string, 0, len(h.Headers))
	for path := range h.Headers {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var fold uint64
	for _, path := range paths {
		v := h.Headers[path]
		switch path {
		case "hdr.ipv4.src_addr":
			p.Src = dataplane.IP4(v)
		case "hdr.ipv4.dst_addr":
			p.Dst = dataplane.IP4(v)
		case "hdr.ipv4.protocol":
			p.Proto = uint8(v)
		case "hdr.tcp.sport", "hdr.udp.sport":
			p.Sport = uint16(v)
		case "hdr.tcp.dport", "hdr.udp.dport":
			p.Dport = uint16(v)
		default:
			// FNV-style fold keeps the mapping deterministic.
			fold = fold*1099511628211 + v + 1
		}
	}
	p.Sport ^= uint16(fold) ^ uint16(fold>>16) ^ uint16(fold>>32) ^ uint16(fold>>48)
	if p.Size < dataplane.EthernetLen+dataplane.IPv4Len {
		p.Size = dataplane.EthernetLen + dataplane.IPv4Len
	}
	if p.Size > adversarialMTU {
		p.Size = adversarialMTU
	}
	return p
}

// Adversarial is a deterministic corpus source that cycles through the
// violation-frontier packets, at a fixed inter-arrival gap — the
// adversarial counterpart to the Campus generator for engine replays
// and fuzz seeding.
type Adversarial struct {
	pkts []Packet
	gap  netsim.Time
	i    int
}

// NewAdversarial builds a source over the frontier hops. pps sizes the
// constant inter-arrival gap; zero means the campus default 350 Kpps.
func NewAdversarial(hops []AdversarialHop, pps int) *Adversarial {
	if pps == 0 {
		pps = 350_000
	}
	a := &Adversarial{
		pkts: make([]Packet, 0, len(hops)),
		gap:  netsim.Second / netsim.Time(pps),
	}
	for _, h := range hops {
		a.pkts = append(a.pkts, AdversarialPacket(h))
	}
	return a
}

// Len returns the corpus size.
func (a *Adversarial) Len() int { return len(a.pkts) }

// Next returns the next corpus packet, cycling.
func (a *Adversarial) Next() Packet {
	p := a.pkts[a.i%len(a.pkts)]
	p.Gap = a.gap
	a.i++
	return p
}
