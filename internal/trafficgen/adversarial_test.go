package trafficgen_test

import (
	"bytes"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/difftest"
	"repro/internal/symexec"
	"repro/internal/trafficgen"
)

func TestAdversarialPacketMapping(t *testing.T) {
	h := trafficgen.AdversarialHop{
		Headers: map[string]uint64{
			"hdr.ipv4.src_addr": 0x0a000001,
			"hdr.ipv4.dst_addr": 0x0a000002,
			"hdr.ipv4.protocol": uint64(dataplane.ProtoUDP),
			"hdr.udp.sport":     4242,
			"hdr.udp.dport":     53,
		},
		PktLen: 200,
	}
	p := trafficgen.AdversarialPacket(h)
	if p.Src != dataplane.IP4(0x0a000001) || p.Dst != dataplane.IP4(0x0a000002) {
		t.Errorf("addresses not mapped: %v -> %v", p.Src, p.Dst)
	}
	if p.Proto != dataplane.ProtoUDP || p.Sport != 4242 || p.Dport != 53 {
		t.Errorf("l4 fields not mapped: proto=%d %d->%d", p.Proto, p.Sport, p.Dport)
	}
	if p.Size != 200 {
		t.Errorf("size %d, want 200", p.Size)
	}
}

func TestAdversarialPacketFold(t *testing.T) {
	// Unmapped header paths must still distinguish packets on the wire:
	// two hops differing only in a metadata field get different flows.
	a := trafficgen.AdversarialPacket(trafficgen.AdversarialHop{
		Headers: map[string]uint64{"standard_metadata.egress_port": 1}, PktLen: 100,
	})
	b := trafficgen.AdversarialPacket(trafficgen.AdversarialHop{
		Headers: map[string]uint64{"standard_metadata.egress_port": 9}, PktLen: 100,
	})
	if a.FlowKey() == b.FlowKey() {
		t.Errorf("distinct metadata folded to the same flow: %v", a.FlowKey())
	}
	// And the fold is deterministic.
	a2 := trafficgen.AdversarialPacket(trafficgen.AdversarialHop{
		Headers: map[string]uint64{"standard_metadata.egress_port": 1}, PktLen: 100,
	})
	if a != a2 {
		t.Errorf("fold not deterministic: %+v vs %+v", a, a2)
	}
}

func TestAdversarialPacketMinSize(t *testing.T) {
	p := trafficgen.AdversarialPacket(trafficgen.AdversarialHop{PktLen: 1})
	if p.Size < dataplane.EthernetLen+dataplane.IPv4Len {
		t.Errorf("undersized frame: %d", p.Size)
	}
	if p.Decode().Serialize() == nil {
		t.Error("packet does not serialize")
	}
	// Width-max frontier probes must not materialize 4GB payloads.
	big := trafficgen.AdversarialPacket(trafficgen.AdversarialHop{PktLen: ^uint32(0)})
	if big.Size > 1500 {
		t.Errorf("frame size %d not clamped to MTU", big.Size)
	}
}

func TestAdversarialSourceCycles(t *testing.T) {
	hops := []trafficgen.AdversarialHop{
		{Headers: map[string]uint64{"hdr.ipv4.src_addr": 1}, PktLen: 100},
		{Headers: map[string]uint64{"hdr.ipv4.src_addr": 2}, PktLen: 200},
	}
	src := trafficgen.NewAdversarial(hops, 0)
	if src.Len() != 2 {
		t.Fatalf("len %d, want 2", src.Len())
	}
	p0, p1, p2 := src.Next(), src.Next(), src.Next()
	if p0.Gap == 0 || p0.Gap != p1.Gap {
		t.Errorf("inter-arrival gap not constant: %v vs %v", p0.Gap, p1.Gap)
	}
	p2.Gap = p0.Gap
	p0cmp := p0
	if p0cmp != p2 {
		t.Errorf("source does not cycle: %+v vs %+v", p0, p2)
	}
}

// TestAdversarialFromFrontier consumes the committed frontier corpus:
// every violating witness must render to a valid, serializable wire
// frame, and the whole corpus must fit an Adversarial replay source.
func TestAdversarialFromFrontier(t *testing.T) {
	files, err := difftest.LoadFrontierDir("../difftest/testdata/frontier")
	if err != nil {
		t.Fatalf("loading frontier corpus: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("empty frontier corpus")
	}
	var hops []trafficgen.AdversarialHop
	for _, f := range files {
		ex, err := symexec.ForChecker(f.Checker, symexec.Config{})
		if err != nil {
			t.Fatalf("%s: %v", f.Checker, err)
		}
		paths := map[string]string{}
		for _, hv := range ex.Headers() {
			paths[hv.Name] = hv.Path
		}
		for _, pair := range f.Pairs {
			for _, hop := range pair.Violate.Hops {
				ah := trafficgen.AdversarialHop{Headers: map[string]uint64{}, PktLen: hop.PktLen}
				for name, v := range hop.Headers {
					ah.Headers[paths[name]] = v
				}
				hops = append(hops, ah)
			}
		}
	}
	src := trafficgen.NewAdversarial(hops, 100_000)
	for i := 0; i < src.Len(); i++ {
		p := src.Next()
		wire := p.Decode().Serialize()
		if len(wire) == 0 {
			t.Fatalf("packet %d does not serialize", i)
		}
		again := p.Decode().Serialize()
		if !bytes.Equal(wire, again) {
			t.Fatalf("packet %d serialization unstable", i)
		}
	}
}
