package controlplane

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/checkers"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
)

func buildFabric(t *testing.T) (*netsim.Simulator, *netsim.LeafSpine, *Controller) {
	t.Helper()
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	return sim, ls, NewController()
}

func TestDeployAndConfigure(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("waypointing", checkers.MustParse("waypointing"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	// switchID 0 = everywhere.
	if err := ctl.SetScalar("waypointing", 0, "waypoint_id", uint64(ls.Spines[0].ID)); err != nil {
		t.Fatal(err)
	}

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	// Drive flows through both spines; the spine-2 flow must be
	// rejected, the spine-1 flow delivered.
	for p := uint16(1); p < 100; p++ {
		h1.SendUDP(h2.IP, 30000+p, 80, 64)
	}
	sim.RunAll()
	if ctl.Rejected("waypointing") == 0 {
		t.Fatal("flows bypassing the waypoint must be rejected")
	}
	if h2.RxUDP == 0 {
		t.Fatal("flows through the waypoint must be delivered")
	}
	if got := ctl.Rejected("waypointing") + h2.RxUDP; got != 99 {
		t.Fatalf("conservation: rejected+delivered = %d, want 99", got)
	}
}

func TestReportsCollected(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("fw", checkers.MustParse("stateful-firewall"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	if err := ctl.PutDict("fw", 0, "allowed", []uint64{uint64(h1.IP), uint64(h2.IP)}, 1); err != nil {
		t.Fatal(err)
	}

	var live int
	ctl.OnReport = func(Report) { live++ }

	h1.SendUDP(h2.IP, 555, 80, 64)
	sim.RunAll()
	reps := ctl.ReportsFor("fw")
	if len(reps) != 1 || live != 1 {
		t.Fatalf("reports = %d live = %d, want 1/1", len(reps), live)
	}
	r := reps[0]
	if r.Checker != "fw" || len(r.Args) != 2 || r.Args[0] != uint64(h2.IP) || r.Args[1] != uint64(h1.IP) {
		t.Fatalf("report = %+v", r)
	}
	if r.Switch == "" || r.SwitchID == 0 {
		t.Fatalf("provenance missing: %+v", r)
	}

	// Reacting to the report (install the reverse rule) stops further
	// reports and admits the return traffic.
	if err := ctl.PutDict("fw", 0, "allowed", []uint64{uint64(h2.IP), uint64(h1.IP)}, 1); err != nil {
		t.Fatal(err)
	}
	h2.SendUDP(h1.IP, 80, 555, 64)
	sim.RunAll()
	if h1.RxUDP != 1 {
		t.Fatal("return traffic must pass after the install")
	}
	if len(ctl.ReportsFor("fw")) != 1 {
		t.Fatalf("no further reports expected, got %d", len(ctl.ReportsFor("fw")))
	}
}

func TestSetAndDelete(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("egress", checkers.MustParse("egress-validity"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	for port := uint64(0); port <= 8; port++ {
		if err := ctl.AddSet("egress", 0, "allowed_eg_ports", port); err != nil {
			t.Fatal(err)
		}
	}
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	h1.SendUDP(h2.IP, 1, 80, 64)
	sim.RunAll()
	if h2.RxUDP != 1 {
		t.Fatal("allowed egress must pass")
	}
	if ctl.Rejected("egress") != 0 {
		t.Fatal("no rejections expected")
	}
}

func TestErrors(t *testing.T) {
	_, ls, ctl := buildFabric(t)
	if err := ctl.SetScalar("nope", 0, "x", 1); err == nil {
		t.Fatal("undeployed checker must error")
	}
	if err := ctl.Deploy("wp", checkers.MustParse("waypointing"), ls.Leaves[0]); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Deploy("wp", checkers.MustParse("waypointing"), ls.Leaves[1]); err == nil {
		t.Fatal("duplicate deploy must error")
	}
	if err := ctl.SetScalar("wp", 999, "waypoint_id", 1); err == nil {
		t.Fatal("unknown switch must error")
	}
	if err := ctl.SetScalar("wp", 0, "no_such_var", 1); err == nil {
		t.Fatal("unknown control variable must error")
	}
	if _, err := ctl.Attachment("wp", ls.Leaves[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Attachment("wp", 12345); err == nil {
		t.Fatal("unknown attachment must error")
	}
}

// TestSinkConcurrent audits the report sink's locking: the sink is the
// one controller path invoked from the data plane, so hammer it from
// several goroutines while readers snapshot Reports/ReportsFor. Under
// -race this fails on any unguarded access; without it, it still checks
// no report is lost.
func TestSinkConcurrent(t *testing.T) {
	_, ls, ctl := buildFabric(t)
	sw := ls.Leaves[0]
	var live atomic.Int64
	ctl.OnReport = func(Report) { live.Add(1) }

	const goroutines, perGoroutine = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				ctl.sink("fw", sw, pipeline.Report{Args: []pipeline.Value{pipeline.B(32, uint64(i))}})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ctl.Reports()
			_ = ctl.ReportsFor("fw")
		}
	}()
	wg.Wait()

	const want = goroutines * perGoroutine
	if got := len(ctl.Reports()); got != want || live.Load() != want {
		t.Fatalf("collected %d reports, %d live callbacks; want %d of each", got, live.Load(), want)
	}
}

// TestRetentionBounded pins the retention policy: the controller keeps
// at most RetainPerChecker reports per checker (oldest evicted first,
// eviction counted), ReportsFor indexes per checker without scanning
// others, and Reports merges rings back into global arrival order.
func TestRetentionBounded(t *testing.T) {
	_, ls, _ := buildFabric(t)
	sw := ls.Leaves[0]
	ctl := NewControllerWith(Config{RetainPerChecker: 8})
	defer ctl.Close()

	for i := 0; i < 20; i++ {
		ctl.sink("a", sw, pipeline.Report{Args: []pipeline.Value{pipeline.B(32, uint64(i))}})
		if i%2 == 0 {
			ctl.sink("b", sw, pipeline.Report{Args: []pipeline.Value{pipeline.B(32, uint64(100+i))}})
		}
	}

	aReps := ctl.ReportsFor("a")
	if len(aReps) != 8 {
		t.Fatalf("checker a retained %d reports, want 8", len(aReps))
	}
	// Oldest-first within the ring, and only the newest 8 survive.
	for i, r := range aReps {
		if want := uint64(12 + i); r.Args[0] != want {
			t.Fatalf("a[%d] = %d, want %d", i, r.Args[0], want)
		}
	}
	if got := ctl.Evicted("a"); got != 12 {
		t.Fatalf("a evicted = %d, want 12", got)
	}
	bReps := ctl.ReportsFor("b")
	if len(bReps) != 8 || ctl.Evicted("b") != 2 {
		t.Fatalf("checker b retained %d evicted %d, want 8/2", len(bReps), ctl.Evicted("b"))
	}

	// The merged snapshot is in arrival order across checkers.
	all := ctl.Reports()
	if len(all) != 16 {
		t.Fatalf("merged snapshot has %d reports, want 16", len(all))
	}
	lastA, lastB := -1, -1
	for i, r := range all {
		switch r.Checker {
		case "a":
			if lastA >= 0 && all[lastA].Args[0] >= r.Args[0] {
				t.Fatal("merged order broken within checker a")
			}
			lastA = i
		case "b":
			if lastB >= 0 && all[lastB].Args[0] >= r.Args[0] {
				t.Fatal("merged order broken within checker b")
			}
			lastB = i
		}
	}
	// a=15 arrived between b=114 and b=116; merged order must reflect it.
	idx := map[uint64]int{}
	for i, r := range all {
		idx[r.Args[0]] = i
	}
	if !(idx[114] < idx[15] && idx[15] < idx[116]) {
		t.Fatalf("interleave broken: positions b114=%d a15=%d b116=%d", idx[114], idx[15], idx[116])
	}
}

// TestRetentionDisabled: negative RetainPerChecker turns retention off
// entirely while the bus tap (OnReport) still sees every digest.
func TestRetentionDisabled(t *testing.T) {
	_, ls, _ := buildFabric(t)
	sw := ls.Leaves[0]
	ctl := NewControllerWith(Config{RetainPerChecker: -1})
	defer ctl.Close()
	var live int
	ctl.OnReport = func(Report) { live++ }
	for i := 0; i < 5; i++ {
		ctl.sink("fw", sw, pipeline.Report{Args: []pipeline.Value{pipeline.B(32, uint64(i))}})
	}
	if live != 5 {
		t.Fatalf("OnReport fired %d times, want 5", live)
	}
	if got := len(ctl.ReportsFor("fw")); got != 0 {
		t.Fatalf("retention disabled but kept %d reports", got)
	}
}

// TestControllerSharesBus: a caller-provided bus receives the
// controller's digests (aggregates on Close via Flush), and the
// controller does not close a bus it does not own.
func TestControllerSharesBus(t *testing.T) {
	sim, ls, _ := buildFabric(t)
	sink := &reportbus.CollectExporter{}
	bus := reportbus.New(reportbus.Config{
		Clock:     func() int64 { return int64(sim.Now()) },
		Exporters: []reportbus.Exporter{sink},
	})
	ctl := NewControllerWith(Config{Bus: bus})
	if err := ctl.Deploy("fw", checkers.MustParse("stateful-firewall"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	if err := ctl.PutDict("fw", 0, "allowed", []uint64{uint64(h1.IP), uint64(h2.IP)}, 1); err != nil {
		t.Fatal(err)
	}
	h1.SendUDP(h2.IP, 555, 80, 64)
	sim.RunAll()
	raised := len(ctl.ReportsFor("fw"))
	if raised == 0 {
		t.Fatal("expected firewall reports")
	}
	ctl.Close() // flushes, must not close the shared bus

	var total uint64
	for _, c := range sink.CountsByKey() {
		total += c
	}
	if total != uint64(raised) {
		t.Fatalf("bus aggregates sum to %d digests, controller saw %d", total, raised)
	}
	// The bus is still usable after the controller's Close.
	p := bus.InlineProducer("post")
	p.Publish(reportbus.DigestFrom("fw", 1, int64(sim.Now()), pipeline.Report{}))
	if m := bus.Metrics(); m.Unaccounted() < 0 {
		t.Fatalf("bus unusable after controller close: %+v", m)
	}
}
