package controlplane

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/checkers"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

func buildFabric(t *testing.T) (*netsim.Simulator, *netsim.LeafSpine, *Controller) {
	t.Helper()
	sim := netsim.NewSimulator()
	ls := netsim.BuildLeafSpine(sim, netsim.LeafSpineConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, WithRouting: true})
	return sim, ls, NewController()
}

func TestDeployAndConfigure(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("waypointing", checkers.MustParse("waypointing"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	// switchID 0 = everywhere.
	if err := ctl.SetScalar("waypointing", 0, "waypoint_id", uint64(ls.Spines[0].ID)); err != nil {
		t.Fatal(err)
	}

	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	// Drive flows through both spines; the spine-2 flow must be
	// rejected, the spine-1 flow delivered.
	for p := uint16(1); p < 100; p++ {
		h1.SendUDP(h2.IP, 30000+p, 80, 64)
	}
	sim.RunAll()
	if ctl.Rejected("waypointing") == 0 {
		t.Fatal("flows bypassing the waypoint must be rejected")
	}
	if h2.RxUDP == 0 {
		t.Fatal("flows through the waypoint must be delivered")
	}
	if got := ctl.Rejected("waypointing") + h2.RxUDP; got != 99 {
		t.Fatalf("conservation: rejected+delivered = %d, want 99", got)
	}
}

func TestReportsCollected(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("fw", checkers.MustParse("stateful-firewall"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	if err := ctl.PutDict("fw", 0, "allowed", []uint64{uint64(h1.IP), uint64(h2.IP)}, 1); err != nil {
		t.Fatal(err)
	}

	var live int
	ctl.OnReport = func(Report) { live++ }

	h1.SendUDP(h2.IP, 555, 80, 64)
	sim.RunAll()
	reps := ctl.ReportsFor("fw")
	if len(reps) != 1 || live != 1 {
		t.Fatalf("reports = %d live = %d, want 1/1", len(reps), live)
	}
	r := reps[0]
	if r.Checker != "fw" || len(r.Args) != 2 || r.Args[0] != uint64(h2.IP) || r.Args[1] != uint64(h1.IP) {
		t.Fatalf("report = %+v", r)
	}
	if r.Switch == "" || r.SwitchID == 0 {
		t.Fatalf("provenance missing: %+v", r)
	}

	// Reacting to the report (install the reverse rule) stops further
	// reports and admits the return traffic.
	if err := ctl.PutDict("fw", 0, "allowed", []uint64{uint64(h2.IP), uint64(h1.IP)}, 1); err != nil {
		t.Fatal(err)
	}
	h2.SendUDP(h1.IP, 80, 555, 64)
	sim.RunAll()
	if h1.RxUDP != 1 {
		t.Fatal("return traffic must pass after the install")
	}
	if len(ctl.ReportsFor("fw")) != 1 {
		t.Fatalf("no further reports expected, got %d", len(ctl.ReportsFor("fw")))
	}
}

func TestSetAndDelete(t *testing.T) {
	sim, ls, ctl := buildFabric(t)
	if err := ctl.Deploy("egress", checkers.MustParse("egress-validity"), ls.AllSwitches()...); err != nil {
		t.Fatal(err)
	}
	for port := uint64(0); port <= 8; port++ {
		if err := ctl.AddSet("egress", 0, "allowed_eg_ports", port); err != nil {
			t.Fatal(err)
		}
	}
	h1, h2 := ls.Host(0, 0), ls.Host(1, 0)
	h1.SendUDP(h2.IP, 1, 80, 64)
	sim.RunAll()
	if h2.RxUDP != 1 {
		t.Fatal("allowed egress must pass")
	}
	if ctl.Rejected("egress") != 0 {
		t.Fatal("no rejections expected")
	}
}

func TestErrors(t *testing.T) {
	_, ls, ctl := buildFabric(t)
	if err := ctl.SetScalar("nope", 0, "x", 1); err == nil {
		t.Fatal("undeployed checker must error")
	}
	if err := ctl.Deploy("wp", checkers.MustParse("waypointing"), ls.Leaves[0]); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Deploy("wp", checkers.MustParse("waypointing"), ls.Leaves[1]); err == nil {
		t.Fatal("duplicate deploy must error")
	}
	if err := ctl.SetScalar("wp", 999, "waypoint_id", 1); err == nil {
		t.Fatal("unknown switch must error")
	}
	if err := ctl.SetScalar("wp", 0, "no_such_var", 1); err == nil {
		t.Fatal("unknown control variable must error")
	}
	if _, err := ctl.Attachment("wp", ls.Leaves[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Attachment("wp", 12345); err == nil {
		t.Fatal("unknown attachment must error")
	}
}

// TestSinkConcurrent audits the report sink's locking: the sink is the
// one controller path invoked from the data plane, so hammer it from
// several goroutines while readers snapshot Reports/ReportsFor. Under
// -race this fails on any unguarded access; without it, it still checks
// no report is lost.
func TestSinkConcurrent(t *testing.T) {
	_, ls, ctl := buildFabric(t)
	sw := ls.Leaves[0]
	var live atomic.Int64
	ctl.OnReport = func(Report) { live.Add(1) }

	const goroutines, perGoroutine = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				ctl.sink("fw", sw, pipeline.Report{Args: []pipeline.Value{pipeline.B(32, uint64(i))}})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ctl.Reports()
			_ = ctl.ReportsFor("fw")
		}
	}()
	wg.Wait()

	const want = goroutines * perGoroutine
	if got := len(ctl.Reports()); got != want || live.Load() != want {
		t.Fatalf("collected %d reports, %d live callbacks; want %d of each", got, live.Load(), want)
	}
}
