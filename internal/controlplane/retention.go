package controlplane

import (
	"sort"
	"sync"
)

// defaultRetainPerChecker keeps enough recent digests for reactive
// control logic and tests without letting a report storm grow the
// controller's memory with the packet count — history belongs to the
// report bus's aggregates, not to this sample.
const defaultRetainPerChecker = 4096

// retention is the bounded per-checker report store: one ring per
// checker (the per-checker index), each entry stamped with a global
// sequence number so cross-checker snapshots can be merged back into
// arrival order.
type retention struct {
	mu         sync.Mutex
	perChecker int
	seq        uint64
	byChecker  map[string]*reportRing
}

type reportRing struct {
	buf     []seqReport
	start   int // index of the oldest entry once the ring is full
	evicted uint64
}

type seqReport struct {
	seq uint64
	r   Report
}

func (t *retention) add(r Report) {
	if t.perChecker < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	rr := t.byChecker[r.Checker]
	if rr == nil {
		rr = &reportRing{}
		t.byChecker[r.Checker] = rr
	}
	if len(rr.buf) < t.perChecker {
		rr.buf = append(rr.buf, seqReport{seq: t.seq, r: r})
		return
	}
	rr.buf[rr.start] = seqReport{seq: t.seq, r: r}
	rr.start = (rr.start + 1) % len(rr.buf)
	rr.evicted++
}

// snapshot copies one ring oldest-first.
func (rr *reportRing) snapshot(out []seqReport) []seqReport {
	n := len(rr.buf)
	for i := 0; i < n; i++ {
		out = append(out, rr.buf[(rr.start+i)%n])
	}
	return out
}

func (t *retention) forChecker(name string) []Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	rr := t.byChecker[name]
	if rr == nil {
		return nil
	}
	srs := rr.snapshot(make([]seqReport, 0, len(rr.buf)))
	out := make([]Report, len(srs))
	for i, sr := range srs {
		out[i] = sr.r
	}
	return out
}

func (t *retention) all() []Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	var srs []seqReport
	for _, rr := range t.byChecker {
		srs = rr.snapshot(srs)
	}
	sort.Slice(srs, func(i, j int) bool { return srs[i].seq < srs[j].seq })
	out := make([]Report, len(srs))
	for i, sr := range srs {
		out[i] = sr.r
	}
	return out
}

func (t *retention) evicted(name string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rr := t.byChecker[name]; rr != nil {
		return rr.evicted
	}
	return 0
}
