// Package controlplane provides the operator-side runtime for Hydra
// checkers: a Controller that owns the per-switch attachments of one or
// more compiled checkers, typed install/delete helpers for the three
// kinds of control variables (§3.2: scalars, dictionaries, sets — each
// realized as match-action tables by the compiler), and a report sink
// that collects the digests checkers raise (§2's "report" action).
//
// Reports ride the internal/reportbus digest pipeline: every raised
// digest is published into the bus (one inline producer per switch, so
// the single-threaded netsim event loop delivers synchronously), the
// bus's per-digest tap feeds the controller's reactive OnReport
// callback and its retention store, and the bus's windowed aggregation,
// storm control, and exporters are available to any consumer that
// shares the bus (see Config.Bus).
//
// Retention policy: the controller keeps the last RetainPerChecker
// reports per checker (default 4096) in per-checker rings — O(1)
// insertion, O(k) ReportsFor — and counts what it evicts (Evicted).
// The full, lossless record is the bus's aggregate stream, not the
// controller's sample: retention exists for reactive control logic and
// tests, which want recent individual digests, not history.
//
// The Aether-specific control logic (ONOS's UPF rule translation and
// the Hydra intent app) lives in internal/aether; this package is the
// generic layer both it and the experiment harnesses build on.
package controlplane

import (
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/indus/types"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
)

// Report is one collected digest with its provenance.
type Report struct {
	Checker  string
	SwitchID uint32
	Switch   string
	At       netsim.Time
	Args     []uint64
}

// Config parameterizes a Controller.
type Config struct {
	// Bus, when set, is the report bus the controller publishes into and
	// taps; the caller keeps ownership (Close never closes it). Nil
	// means a private inline bus with default settings.
	Bus *reportbus.Bus
	// RetainPerChecker bounds the per-checker report retention; default
	// 4096, negative disables retention entirely (the bus still sees
	// every digest).
	RetainPerChecker int
}

// InstallObserver observes the control-plane mutations a Controller
// actually applies, per target switch: the hook the static verification
// layer (internal/atoms Audit) uses to cross-check declared intents
// against delivered installs. Scalars report a nil key; set members
// report value 1. WipeSwitch is deliberately unobserved — a wipe is a
// runtime fault, not a control-plane decision.
type InstallObserver interface {
	ControlInstalled(checker string, switchID uint32, varName string, key []uint64, value uint64)
	ControlDeleted(checker string, switchID uint32, varName string, key []uint64)
}

// Controller deploys compiled checkers onto switches and manages their
// control-plane state.
type Controller struct {
	mu sync.Mutex
	// atts[checker][switchID] is the attachment on that switch.
	atts map[string]map[uint32]*netsim.HydraAttachment
	// infos keeps the type information for width-correct installs.
	runtimes map[string]*compiler.Runtime
	// producers is the per-switch inline bus producer; swNames resolves
	// digest provenance back to a switch name.
	producers map[uint32]*reportbus.Producer
	swNames   map[uint32]string

	bus    *reportbus.Bus
	ownBus bool
	ret    retention

	// OnReport, when set, is additionally invoked for every report, fed
	// synchronously from the bus's per-digest tap.
	OnReport func(Report)

	// Observer, when set, sees every applied install/delete. Set it
	// before issuing installs; it is read under the controller's mutex.
	Observer InstallObserver
}

// NewController returns an empty controller with a private report bus.
func NewController() *Controller { return NewControllerWith(Config{}) }

// NewControllerWith returns an empty controller on the given bus and
// retention settings.
func NewControllerWith(cfg Config) *Controller {
	c := &Controller{
		atts:      map[string]map[uint32]*netsim.HydraAttachment{},
		runtimes:  map[string]*compiler.Runtime{},
		producers: map[uint32]*reportbus.Producer{},
		swNames:   map[uint32]string{},
		bus:       cfg.Bus,
	}
	if c.bus == nil {
		c.bus = reportbus.New(reportbus.Config{})
		c.ownBus = true
	}
	c.ret.perChecker = cfg.RetainPerChecker
	if c.ret.perChecker == 0 {
		c.ret.perChecker = defaultRetainPerChecker
	}
	c.ret.byChecker = map[string]*reportRing{}
	c.bus.Tap(c.deliver)
	return c
}

// Bus returns the controller's report bus.
func (c *Controller) Bus() *reportbus.Bus { return c.bus }

// Close flushes the report bus (and closes it when the controller owns
// it), emitting every pending aggregate to the bus's exporters.
func (c *Controller) Close() {
	if c.ownBus {
		c.bus.Close()
		return
	}
	c.bus.Flush()
}

// Deploy compiles nothing — it attaches an already-compiled checker to
// the given switches under the given name and wires its reports into
// the controller's sink.
func (c *Controller) Deploy(name string, info *types.Info, switches ...*netsim.Switch) error {
	prog, err := compiler.Compile(info, compiler.Options{Name: name})
	if err != nil {
		return fmt.Errorf("controlplane: compiling %s: %w", name, err)
	}
	rt := &compiler.Runtime{Prog: prog}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.atts[name]; dup {
		return fmt.Errorf("controlplane: checker %q already deployed", name)
	}
	c.runtimes[name] = rt
	c.atts[name] = map[uint32]*netsim.HydraAttachment{}
	for _, sw := range switches {
		sw := sw
		// The producer is resolved once per attachment, so the per-digest
		// callback publishes without touching the controller's mutex.
		p := c.producerForLocked(sw)
		att := sw.AttachChecker(rt, func(s *netsim.Switch, rep pipeline.Report) {
			p.Publish(reportbus.DigestFrom(name, s.ID, int64(s.Sim().Now()), rep))
		})
		c.atts[name][sw.ID] = att
	}
	return nil
}

// sink publishes one raised digest into the report bus. The producer
// is inline, so the bus tap (deliver) runs before sink returns — the
// reactive path a simulation's control loop observes is synchronous.
func (c *Controller) sink(name string, sw *netsim.Switch, rep pipeline.Report) {
	c.producerFor(sw).Publish(reportbus.DigestFrom(name, sw.ID, int64(sw.Sim().Now()), rep))
}

// producerFor returns (creating on first use) the switch's inline bus
// producer.
func (c *Controller) producerFor(sw *netsim.Switch) *reportbus.Producer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.producerForLocked(sw)
}

// producerForLocked is producerFor with c.mu already held.
func (c *Controller) producerForLocked(sw *netsim.Switch) *reportbus.Producer {
	p, ok := c.producers[sw.ID]
	if !ok {
		p = c.bus.InlineProducer(fmt.Sprintf("switch:%s", sw.Name))
		c.producers[sw.ID] = p
		c.swNames[sw.ID] = sw.Name
	}
	return p
}

// deliver is the bus tap: it rebuilds the provenance-tagged Report,
// retains it, and runs the reactive callback. With retention disabled
// and no reactive callback there is no consumer, so it skips the
// per-digest Report construction entirely (the storm experiment's
// measured configuration).
func (c *Controller) deliver(d reportbus.Digest) {
	c.mu.Lock()
	name := c.swNames[d.SwitchID]
	cb := c.OnReport
	c.mu.Unlock()
	if cb == nil && c.ret.perChecker < 0 {
		return
	}
	r := Report{
		Checker:  d.Checker,
		SwitchID: d.SwitchID,
		Switch:   name,
		At:       netsim.Time(d.At),
		Args:     append([]uint64(nil), d.Args[:d.NArgs]...),
	}
	c.ret.add(r)
	if cb != nil {
		cb(r)
	}
}

// Reports returns a snapshot of the retained reports, oldest first
// across all checkers (bounded per checker; see the package comment's
// retention policy).
func (c *Controller) Reports() []Report { return c.ret.all() }

// ReportsFor returns the retained reports raised by one checker.
func (c *Controller) ReportsFor(name string) []Report { return c.ret.forChecker(name) }

// Evicted returns how many of a checker's reports the bounded retention
// has discarded (they remain visible in the bus's aggregate stream).
func (c *Controller) Evicted(name string) uint64 { return c.ret.evicted(name) }

// Attachment returns the per-switch attachment of a deployed checker.
func (c *Controller) Attachment(name string, switchID uint32) (*netsim.HydraAttachment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.atts[name]
	if !ok {
		return nil, fmt.Errorf("controlplane: checker %q not deployed", name)
	}
	att, ok := m[switchID]
	if !ok {
		return nil, fmt.Errorf("controlplane: checker %q not on switch %d", name, switchID)
	}
	return att, nil
}

// table resolves the realizing table of a control variable on one
// switch (or on all switches when switchID is 0 via forEach).
func (c *Controller) forEach(name string, switchID uint32, fn func(uint32, *pipeline.Table) error, varName string) error {
	c.mu.Lock()
	m, ok := c.atts[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controlplane: checker %q not deployed", name)
	}
	applied := 0
	for id, att := range m {
		if switchID != 0 && id != switchID {
			continue
		}
		tbl, ok := att.State.Tables[varName]
		if !ok {
			return fmt.Errorf("controlplane: checker %q has no control variable %q", name, varName)
		}
		if err := fn(id, tbl); err != nil {
			return err
		}
		applied++
	}
	if applied == 0 {
		return fmt.Errorf("controlplane: checker %q not on switch %d", name, switchID)
	}
	return nil
}

// SetScalar installs a scalar control variable's value. switchID 0
// means every switch the checker is deployed on.
func (c *Controller) SetScalar(name string, switchID uint32, varName string, value uint64) error {
	return c.forEach(name, switchID, func(id uint32, tbl *pipeline.Table) error {
		w := 1
		if len(tbl.Outputs) == 1 {
			// Width travels with the default action value.
			w = tbl.Default[0].W
		}
		if err := tbl.Insert(pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, value)}}); err != nil {
			return err
		}
		c.observeInstall(name, id, varName, nil, value)
		return nil
	}, varName)
}

// PutDict installs key -> value into a dictionary control variable.
// switchID 0 targets every switch.
func (c *Controller) PutDict(name string, switchID uint32, varName string, key []uint64, value uint64) error {
	return c.forEach(name, switchID, func(id uint32, tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		w := tbl.Default[0].W
		if err := tbl.Insert(pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, value)}}); err != nil {
			return err
		}
		c.observeInstall(name, id, varName, key, value)
		return nil
	}, varName)
}

// DeleteDict removes a dictionary entry.
func (c *Controller) DeleteDict(name string, switchID uint32, varName string, key []uint64) error {
	return c.forEach(name, switchID, func(id uint32, tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		tbl.Delete(keys)
		c.observeDelete(name, id, varName, key)
		return nil
	}, varName)
}

// AddSet inserts a member into a set control variable.
func (c *Controller) AddSet(name string, switchID uint32, varName string, key ...uint64) error {
	return c.forEach(name, switchID, func(id uint32, tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		if err := tbl.Insert(pipeline.Entry{Keys: keys}); err != nil {
			return err
		}
		c.observeInstall(name, id, varName, key, 1)
		return nil
	}, varName)
}

// observeInstall and observeDelete forward applied mutations to the
// install observer, when one is attached.
func (c *Controller) observeInstall(name string, id uint32, varName string, key []uint64, value uint64) {
	c.mu.Lock()
	obs := c.Observer
	c.mu.Unlock()
	if obs != nil {
		obs.ControlInstalled(name, id, varName, key, value)
	}
}

func (c *Controller) observeDelete(name string, id uint32, varName string, key []uint64) {
	c.mu.Lock()
	obs := c.Observer
	c.mu.Unlock()
	if obs != nil {
		obs.ControlDeleted(name, id, varName, key)
	}
}

// WipeSwitch resets every checker attachment on the given switch to
// factory state — the register wipe of a switch crash/restart: all
// installed table entries and register values are lost and must be
// reinstalled. Returns how many attachments were wiped. Call it only
// from the simulator thread (it swaps the state the switch reads per
// packet).
func (c *Controller) WipeSwitch(switchID uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for name, m := range c.atts {
		if att, ok := m[switchID]; ok {
			att.State = c.runtimes[name].Prog.NewState()
			n++
		}
	}
	return n
}

// Rejected sums the rejected-packet counters of one checker across
// switches.
func (c *Controller) Rejected(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, att := range c.atts[name] {
		n += att.Rejected
	}
	return n
}
