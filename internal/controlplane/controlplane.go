// Package controlplane provides the operator-side runtime for Hydra
// checkers: a Controller that owns the per-switch attachments of one or
// more compiled checkers, typed install/delete helpers for the three
// kinds of control variables (§3.2: scalars, dictionaries, sets — each
// realized as match-action tables by the compiler), and a report sink
// that collects the digests checkers raise (§2's "report" action).
//
// The Aether-specific control logic (ONOS's UPF rule translation and
// the Hydra intent app) lives in internal/aether; this package is the
// generic layer both it and the experiment harnesses build on.
package controlplane

import (
	"fmt"
	"sync"

	"repro/internal/compiler"
	"repro/internal/indus/types"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// Report is one collected digest with its provenance.
type Report struct {
	Checker  string
	SwitchID uint32
	Switch   string
	At       netsim.Time
	Args     []uint64
}

// Controller deploys compiled checkers onto switches and manages their
// control-plane state.
type Controller struct {
	mu sync.Mutex
	// atts[checker][switchID] is the attachment on that switch.
	atts map[string]map[uint32]*netsim.HydraAttachment
	// infos keeps the type information for width-correct installs.
	runtimes map[string]*compiler.Runtime
	reports  []Report
	// OnReport, when set, is additionally invoked for every report.
	OnReport func(Report)
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{
		atts:     map[string]map[uint32]*netsim.HydraAttachment{},
		runtimes: map[string]*compiler.Runtime{},
	}
}

// Deploy compiles nothing — it attaches an already-compiled checker to
// the given switches under the given name and wires its reports into
// the controller's sink.
func (c *Controller) Deploy(name string, info *types.Info, switches ...*netsim.Switch) error {
	prog, err := compiler.Compile(info, compiler.Options{Name: name})
	if err != nil {
		return fmt.Errorf("controlplane: compiling %s: %w", name, err)
	}
	rt := &compiler.Runtime{Prog: prog}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.atts[name]; dup {
		return fmt.Errorf("controlplane: checker %q already deployed", name)
	}
	c.runtimes[name] = rt
	c.atts[name] = map[uint32]*netsim.HydraAttachment{}
	for _, sw := range switches {
		sw := sw
		att := sw.AttachChecker(rt, func(s *netsim.Switch, rep pipeline.Report) {
			c.sink(name, s, rep)
		})
		c.atts[name][sw.ID] = att
	}
	return nil
}

func (c *Controller) sink(name string, sw *netsim.Switch, rep pipeline.Report) {
	args := make([]uint64, len(rep.Args))
	for i, a := range rep.Args {
		args[i] = a.V
	}
	r := Report{
		Checker:  name,
		SwitchID: sw.ID,
		Switch:   sw.Name,
		At:       sw.Sim().Now(),
		Args:     args,
	}
	c.mu.Lock()
	c.reports = append(c.reports, r)
	cb := c.OnReport
	c.mu.Unlock()
	if cb != nil {
		cb(r)
	}
}

// Reports returns a snapshot of all collected reports.
func (c *Controller) Reports() []Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Report(nil), c.reports...)
}

// ReportsFor returns the reports raised by one checker.
func (c *Controller) ReportsFor(name string) []Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Report
	for _, r := range c.reports {
		if r.Checker == name {
			out = append(out, r)
		}
	}
	return out
}

// Attachment returns the per-switch attachment of a deployed checker.
func (c *Controller) Attachment(name string, switchID uint32) (*netsim.HydraAttachment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.atts[name]
	if !ok {
		return nil, fmt.Errorf("controlplane: checker %q not deployed", name)
	}
	att, ok := m[switchID]
	if !ok {
		return nil, fmt.Errorf("controlplane: checker %q not on switch %d", name, switchID)
	}
	return att, nil
}

// table resolves the realizing table of a control variable on one
// switch (or on all switches when switchID is 0 via forEach).
func (c *Controller) forEach(name string, switchID uint32, fn func(*pipeline.Table) error, varName string) error {
	c.mu.Lock()
	m, ok := c.atts[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("controlplane: checker %q not deployed", name)
	}
	applied := 0
	for id, att := range m {
		if switchID != 0 && id != switchID {
			continue
		}
		tbl, ok := att.State.Tables[varName]
		if !ok {
			return fmt.Errorf("controlplane: checker %q has no control variable %q", name, varName)
		}
		if err := fn(tbl); err != nil {
			return err
		}
		applied++
	}
	if applied == 0 {
		return fmt.Errorf("controlplane: checker %q not on switch %d", name, switchID)
	}
	return nil
}

// SetScalar installs a scalar control variable's value. switchID 0
// means every switch the checker is deployed on.
func (c *Controller) SetScalar(name string, switchID uint32, varName string, value uint64) error {
	return c.forEach(name, switchID, func(tbl *pipeline.Table) error {
		w := 1
		if len(tbl.Outputs) == 1 {
			// Width travels with the default action value.
			w = tbl.Default[0].W
		}
		return tbl.Insert(pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, value)}})
	}, varName)
}

// PutDict installs key -> value into a dictionary control variable.
// switchID 0 targets every switch.
func (c *Controller) PutDict(name string, switchID uint32, varName string, key []uint64, value uint64) error {
	return c.forEach(name, switchID, func(tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		w := tbl.Default[0].W
		return tbl.Insert(pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, value)}})
	}, varName)
}

// DeleteDict removes a dictionary entry.
func (c *Controller) DeleteDict(name string, switchID uint32, varName string, key []uint64) error {
	return c.forEach(name, switchID, func(tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		tbl.Delete(keys)
		return nil
	}, varName)
}

// AddSet inserts a member into a set control variable.
func (c *Controller) AddSet(name string, switchID uint32, varName string, key ...uint64) error {
	return c.forEach(name, switchID, func(tbl *pipeline.Table) error {
		keys := make([]pipeline.KeyMatch, len(key))
		for i, k := range key {
			keys[i] = pipeline.ExactKey(k)
		}
		return tbl.Insert(pipeline.Entry{Keys: keys})
	}, varName)
}

// Rejected sums the rejected-packet counters of one checker across
// switches.
func (c *Controller) Rejected(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, att := range c.atts[name] {
		n += att.Rejected
	}
	return n
}
