package symexec

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/checkers"
	"repro/internal/pipeline"
)

// exprGen builds a random Expr tree and its mirroring Term at once, so
// the test can check Term evaluation against the pipeline's own
// semantics on arbitrary trees.
type exprGen struct {
	rng  *rand.Rand
	vars []varInfo
	refs []pipeline.FieldRef
}

func (g *exprGen) gen(depth int) (pipeline.Expr, *Term) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if g.rng.Intn(2) == 0 {
			i := g.rng.Intn(len(g.vars))
			return pipeline.Field{Ref: g.refs[i], Width: g.vars[i].width},
				varTerm(i, g.vars[i].name, g.vars[i].width)
		}
		ws := []int{1, 8, 16, 32, 64}
		w := ws[g.rng.Intn(len(ws))]
		v := g.rng.Uint64()
		return pipeline.C(w, v), constTerm(pipeline.B(w, v))
	}
	switch g.rng.Intn(6) {
	case 0:
		ops := []pipeline.OpCode{pipeline.OpNot, pipeline.OpBNot, pipeline.OpNeg, pipeline.OpAbs}
		op := ops[g.rng.Intn(len(ops))]
		xe, xt := g.gen(depth - 1)
		return pipeline.Unary{Op: op, X: xe}, unTerm(op, xt)
	case 1:
		ce, ct := g.gen(depth - 1)
		xe, xt := g.gen(depth - 1)
		ye, yt := g.gen(depth - 1)
		return pipeline.Mux{Cond: ce, X: xe, Y: ye}, muxTerm(ct, xt, yt)
	default:
		ops := []pipeline.OpCode{
			pipeline.OpAdd, pipeline.OpSub, pipeline.OpMul, pipeline.OpDiv, pipeline.OpMod,
			pipeline.OpBAnd, pipeline.OpBOr, pipeline.OpBXor, pipeline.OpShl, pipeline.OpShr,
			pipeline.OpEq, pipeline.OpNe, pipeline.OpLt, pipeline.OpLe, pipeline.OpGt,
			pipeline.OpGe, pipeline.OpLAnd, pipeline.OpLOr, pipeline.OpMax, pipeline.OpMin,
		}
		op := ops[g.rng.Intn(len(ops))]
		xe, xt := g.gen(depth - 1)
		ye, yt := g.gen(depth - 1)
		return pipeline.Bin{Op: op, X: xe, Y: ye}, binTerm(op, xt, yt)
	}
}

// TestTermMirrorsExpr pins the core soundness property: a term
// evaluates to exactly the Value its expression evaluates to, for
// random trees over random assignments.
func TestTermMirrorsExpr(t *testing.T) {
	g := &exprGen{
		rng: rand.New(rand.NewSource(1)),
		vars: []varInfo{
			{name: "a", width: 8},
			{name: "b", width: 16},
			{name: "c", width: 32},
			{name: "d", width: 1},
		},
		refs: []pipeline.FieldRef{"h.a", "h.b", "h.c", "h.d"},
	}
	for trial := 0; trial < 2000; trial++ {
		e, term := g.gen(4)
		for round := 0; round < 4; round++ {
			asn := make([]uint64, len(g.vars))
			phv := make(pipeline.PHV)
			for i, v := range g.vars {
				asn[i] = pipeline.Mask(v.width, g.rng.Uint64())
				phv.Set(g.refs[i], pipeline.B(v.width, asn[i]))
			}
			want := e.Eval(phv)
			got := term.Eval(asn)
			if got != want {
				t.Fatalf("trial %d: %s\n term %s\n got %v want %v (asn %v)", trial, e, term, got, want, asn)
			}
		}
	}
}

func TestSolverBasics(t *testing.T) {
	vars := []varInfo{{name: "x", width: 8}, {name: "y", width: 8, def: 7}}
	defaults := []uint64{0, 7}
	cfg := Config{}.withDefaults()
	x := varTerm(0, "x", 8)

	eq := func(t *Term, v uint64) constraint {
		return constraint{t: binTerm(pipeline.OpEq, t, constTerm(pipeline.B(8, v))), want: true}
	}
	asn, st := solve([]constraint{eq(x, 5)}, vars, defaults, cfg)
	if st != solveSat || asn[0] != 5 {
		t.Fatalf("x==5: status %v asn %v", st, asn)
	}
	if asn[1] != 7 {
		t.Fatalf("unconstrained var should keep default, got %d", asn[1])
	}
	_, st = solve([]constraint{eq(x, 5), eq(x, 6)}, vars, defaults, cfg)
	if st != solveUnsat {
		t.Fatalf("x==5&&x==6: want unsat, got %v", st)
	}
	// Inequality chains force neighbor mining: x > 200 && x < 202.
	gt := constraint{t: binTerm(pipeline.OpGt, x, constTerm(pipeline.B(8, 200))), want: true}
	lt := constraint{t: binTerm(pipeline.OpLt, x, constTerm(pipeline.B(8, 202))), want: true}
	asn, st = solve([]constraint{gt, lt}, vars, defaults, cfg)
	if st != solveSat || asn[0] != 201 {
		t.Fatalf("200<x<202: status %v asn %v", st, asn)
	}
}

// TestExploreCorpus sweeps every corpus checker: exploration must
// terminate, cover the modeled space completely, and find a non-empty
// violation frontier (both verdicts reachable).
func TestExploreCorpus(t *testing.T) {
	for _, p := range checkers.All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			ex, err := ForChecker(p.Key, Config{})
			if err != nil {
				t.Fatalf("ForChecker: %v", err)
			}
			res, err := ex.Explore()
			if err != nil {
				t.Fatalf("Explore: %v", err)
			}
			if !res.Complete {
				t.Errorf("exploration incomplete: %v", res.Notes)
			}
			if len(res.Frontier) == 0 {
				t.Fatalf("no frontier pairs (paths %d, flips sat/unsat/unknown %d/%d/%d)",
					len(res.Paths), res.FlipsSolved, res.FlipsUnsat, res.FlipsUnknown)
			}
			var conform, violate bool
			for _, pp := range res.Paths {
				if pp.Verdict.Violation() {
					violate = true
				} else {
					conform = true
				}
			}
			for _, fp := range res.Frontier {
				if fp.ConformVerdict.Violation() || !fp.ViolateVerdict.Violation() {
					t.Errorf("frontier pair %q has wrong orientation", fp.Cond)
				}
				if len(fp.Violate.Hops) == 0 || len(fp.Conform.Hops) == 0 {
					t.Errorf("frontier pair %q has empty trace", fp.Cond)
				}
				violate = true
				conform = true
			}
			if !conform || !violate {
				t.Errorf("modeled space misses a verdict: conform=%v violate=%v", conform, violate)
			}
			t.Logf("instances %d, paths %d, frontier %d, flips sat/unsat/unknown %d/%d/%d",
				res.Instances, len(res.Paths), len(res.Frontier),
				res.FlipsSolved, res.FlipsUnsat, res.FlipsUnknown)
		})
	}
}

// TestExploreDeterministic pins reproducibility: two explorations of
// the same checker must produce identical results, since the frontier
// corpus and fuzz seeds are committed artifacts.
func TestExploreDeterministic(t *testing.T) {
	run := func() *Result {
		ex, err := ForChecker("multi-tenancy", Config{})
		if err != nil {
			t.Fatalf("ForChecker: %v", err)
		}
		res, err := ex.Explore()
		if err != nil {
			t.Fatalf("Explore: %v", err)
		}
		return res
	}
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatalf("exploration is not deterministic")
	}
}
