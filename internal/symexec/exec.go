package symexec

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/pipeline"
)

// constraint is one recorded path condition: a boolean term plus the
// truth value the concrete execution observed for it.
type constraint struct {
	t    *Term
	want bool
	site string
}

func (c constraint) String() string {
	return c.site + ": " + c.t.String() + "=" + strconv.FormatBool(c.want)
}

// pathRun is the raw outcome of one concolic execution.
type pathRun struct {
	seq       []uint32
	asn       []uint64
	cons      []constraint
	reject    bool
	reports   [][]uint64
	finalBlob []byte
}

func (r *pathRun) violation() bool { return r.reject || len(r.reports) > 0 }

func (r *pathRun) verdict() Verdict { return Verdict{Reject: r.reject, Reports: len(r.reports)} }

// sig identifies the path by its condition sequence.
func (r *pathRun) sig() string {
	h := fnv.New64a()
	for _, c := range r.cons {
		h.Write([]byte(c.String()))
		h.Write([]byte{0})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// carrySlot is a telemetry field crossing a hop boundary: the raw
// (pre-wire) concrete value and its term. The wire roundtrip masks to
// the field width, applied at the next hop's decode.
type carrySlot struct {
	raw  uint64
	term *Term
}

// execState is one concolic run in flight.
type execState struct {
	ex   *Explorer
	seq  []uint32
	asn  []uint64
	hop  int
	sw   uint32
	last bool

	phv pipeline.PHV
	sym map[pipeline.FieldRef]*Term

	// Run-local register mirror, keyed per switch like the per-switch
	// pipeline State the backends use. Values are concrete; regSyms
	// shadows each cell with the term of its last write.
	regs    map[uint32]map[string][]uint64
	regSyms map[uint32]map[string][]*Term

	cons    []constraint
	reject  bool
	reports [][]uint64
}

// run executes the program concolically over one switch sequence under
// one assignment, recording the path conditions it takes.
func (ex *Explorer) run(seq []uint32, asn []uint64) (*pathRun, error) {
	s := &execState{
		ex: ex, seq: seq, asn: asn,
		regs:    map[uint32]map[string][]uint64{},
		regSyms: map[uint32]map[string][]*Term{},
	}
	var carry map[pipeline.FieldRef]carrySlot
	lastHop := len(seq) - 1
	for hop := 0; hop <= lastHop; hop++ {
		s.hop, s.sw, s.last = hop, seq[hop], hop == lastHop
		s.phv = make(pipeline.PHV, 32)
		s.sym = make(map[pipeline.FieldRef]*Term, 32)
		s.decodeTele(carry)

		// Builtins, mirroring compiler.Runtime.RunBlocks: switch_id,
		// packet_length, first/last hop flags, then header bindings.
		s.setConst(pipeline.FieldSwitch, pipeline.B(32, uint64(s.sw)))
		pv := ex.pktVar(hop)
		s.setField(pipeline.FieldPktLen, 32, asn[pv], varTerm(pv, fmt.Sprintf("hop%d.packet_length", hop), 32))
		s.setConst(pipeline.FieldLastHop, pipeline.BoolV(s.last))
		s.setConst(pipeline.FieldFirst, pipeline.BoolV(hop == 0))
		for j, h := range ex.headers {
			id := ex.headerVar(hop, j)
			s.setField(pipeline.FieldRef(h.Path), h.Width, asn[id],
				varTerm(id, fmt.Sprintf("hop%d.%s", hop, h.Name), h.Width))
		}

		if hop == 0 {
			if err := s.execBlock(ex.prog.Init); err != nil {
				return nil, err
			}
		}
		if err := s.execBlock(ex.prog.Telemetry); err != nil {
			return nil, err
		}
		if s.last {
			if err := s.execBlock(ex.prog.Checker); err != nil {
				return nil, err
			}
		}
		if s.phv.Get(pipeline.FieldReject).Bool() {
			s.reject = true
		}
		carry = s.encodeTele()
	}
	return &pathRun{
		seq:       seq,
		asn:       append([]uint64(nil), asn...),
		cons:      s.cons,
		reject:    s.reject,
		reports:   s.reports,
		finalBlob: ex.prog.EncodeTele(s.phv),
	}, nil
}

// setField writes a field masked to width, shadowing it with the term
// truncated the same way.
func (s *execState) setField(ref pipeline.FieldRef, width int, raw uint64, t *Term) {
	s.phv.Set(ref, pipeline.B(width, raw))
	s.sym[ref] = castTerm(width, t)
}

func (s *execState) setConst(ref pipeline.FieldRef, v pipeline.Value) {
	s.phv.Set(ref, v)
	s.sym[ref] = constTerm(v)
}

// symOf returns the term of a stored field for raw (.V) reads — the
// telemetry encoder and array-count reads use the value regardless of
// width, so unset fields read as constant zero.
func (s *execState) symOf(ref pipeline.FieldRef) *Term {
	if t, ok := s.sym[ref]; ok {
		return t
	}
	return constTerm(s.phv.Get(ref))
}

// decodeTele mirrors Program.DecodeTele: a nil carry is the first hop
// (zero-filled), otherwise each field is the previous hop's raw value
// masked by the wire roundtrip.
func (s *execState) decodeTele(carry map[pipeline.FieldRef]carrySlot) {
	set := func(ref pipeline.FieldRef, width int) {
		if carry == nil {
			s.setField(ref, width, 0, constTerm(pipeline.B(width, 0)))
			return
		}
		c := carry[ref]
		s.setField(ref, width, c.raw, c.term)
	}
	set(pipeline.FieldHops, 8)
	for _, f := range s.ex.prog.Tele {
		if f.IsArray {
			set(pipeline.ArrayCount(f.Name), 8)
			for i := 0; i < f.Cap; i++ {
				set(pipeline.ArraySlot(f.Name, i), f.Width)
			}
			continue
		}
		set(pipeline.FieldRef(f.Name), f.Width)
	}
}

// encodeTele mirrors Program.EncodeTele's field walk, capturing the raw
// values (and terms) that cross to the next hop.
func (s *execState) encodeTele() map[pipeline.FieldRef]carrySlot {
	carry := make(map[pipeline.FieldRef]carrySlot, len(s.ex.prog.Tele)+1)
	grab := func(ref pipeline.FieldRef) {
		carry[ref] = carrySlot{raw: s.phv.Get(ref).V, term: s.symOf(ref)}
	}
	grab(pipeline.FieldHops)
	for _, f := range s.ex.prog.Tele {
		if f.IsArray {
			grab(pipeline.ArrayCount(f.Name))
			for i := 0; i < f.Cap; i++ {
				grab(pipeline.ArraySlot(f.Name, i))
			}
			continue
		}
		grab(pipeline.FieldRef(f.Name))
	}
	return carry
}

// symbolize builds the term of an expression against the current
// symbolic store, mirroring Expr.Eval shape for shape.
func (s *execState) symbolize(e pipeline.Expr) (*Term, error) {
	switch e := e.(type) {
	case pipeline.Field:
		// Mirror Field.Eval: a stored width-0 value (unset field) reads
		// as a zero of the field's declared width.
		if v := s.phv.Get(e.Ref); v.W == 0 {
			return constTerm(pipeline.Value{W: e.Width}), nil
		}
		return s.symOf(e.Ref), nil
	case pipeline.Const:
		return constTerm(e.Val), nil
	case pipeline.Unary:
		x, err := s.symbolize(e.X)
		if err != nil {
			return nil, err
		}
		return unTerm(e.Op, x), nil
	case pipeline.Bin:
		x, err := s.symbolize(e.X)
		if err != nil {
			return nil, err
		}
		y, err := s.symbolize(e.Y)
		if err != nil {
			return nil, err
		}
		return binTerm(e.Op, x, y), nil
	case pipeline.Mux:
		c, err := s.symbolize(e.Cond)
		if err != nil {
			return nil, err
		}
		x, err := s.symbolize(e.X)
		if err != nil {
			return nil, err
		}
		y, err := s.symbolize(e.Y)
		if err != nil {
			return nil, err
		}
		return muxTerm(c, x, y), nil
	}
	return nil, fmt.Errorf("symexec: unmodeled expr type %T", e)
}

// eval computes an expression both ways and cross-checks them: the
// model-fidelity invariant is that the term under the assignment equals
// the concrete PHV evaluation at every site.
func (s *execState) eval(e pipeline.Expr) (pipeline.Value, *Term, error) {
	v := e.Eval(s.phv)
	t, err := s.symbolize(e)
	if err != nil {
		return pipeline.Value{}, nil, err
	}
	if !t.isConst() {
		if got := t.Eval(s.asn); got != v {
			return pipeline.Value{}, nil, fmt.Errorf(
				"symexec: model drift at hop %d: term %s = %v, concrete %v", s.hop, t, got, v)
		}
	} else if t.val != v {
		return pipeline.Value{}, nil, fmt.Errorf(
			"symexec: model drift at hop %d: folded %v, concrete %v", s.hop, t.val, v)
	}
	return v, t, nil
}

// branch records a non-constant path condition, checking it agrees with
// the concrete outcome.
func (s *execState) branch(t *Term, want bool, site string) error {
	if t.isConst() {
		if t.val.Bool() != want {
			return fmt.Errorf("symexec: constant condition at %s disagrees with execution", site)
		}
		return nil
	}
	if t.Eval(s.asn).Bool() != want {
		return fmt.Errorf("symexec: recorded condition at %s disagrees with execution", site)
	}
	s.cons = append(s.cons, constraint{t: t, want: want, site: site})
	return nil
}

// pin constrains a runtime index (register cell, array slot) to its
// concrete value, so solved siblings explore other indices explicitly.
func (s *execState) pin(t *Term, v pipeline.Value, site string) error {
	if t.isConst() {
		return nil
	}
	return s.branch(binTerm(pipeline.OpEq, t, constTerm(v)), true, site)
}

func (s *execState) site(what string) string {
	return fmt.Sprintf("hop%d %s", s.hop, what)
}

// regState returns the run-local mirror of one register on the current
// hop's switch.
func (s *execState) regState(name string) ([]uint64, []*Term, int, error) {
	swRegs, ok := s.regs[s.sw]
	if !ok {
		swRegs = map[string][]uint64{}
		s.regs[s.sw] = swRegs
		s.regSyms[s.sw] = map[string][]*Term{}
	}
	cells, ok := swRegs[name]
	if !ok {
		var spec *pipeline.RegisterSpec
		for i := range s.ex.prog.Registers {
			if s.ex.prog.Registers[i].Name == name {
				spec = &s.ex.prog.Registers[i]
				break
			}
		}
		if spec == nil {
			return nil, nil, 0, fmt.Errorf("symexec: undeclared register %q", name)
		}
		cells = make([]uint64, spec.Size)
		swRegs[name] = cells
		s.regSyms[s.sw][name] = make([]*Term, spec.Size)
	}
	width := 0
	for i := range s.ex.prog.Registers {
		if s.ex.prog.Registers[i].Name == name {
			width = s.ex.prog.Registers[i].Width
		}
	}
	return cells, s.regSyms[s.sw][name], width, nil
}

// execBlock mirrors pipeline.ExecContext.Exec op for op, maintaining
// the symbolic shadow alongside the concrete state.
func (s *execState) execBlock(ops []pipeline.Op) error {
	for _, op := range ops {
		switch op := op.(type) {
		case pipeline.AssignOp:
			v, t, err := s.eval(op.Src)
			if err != nil {
				return err
			}
			s.setField(op.Dst, op.DstWidth, v.V, t)

		case pipeline.ApplyOp:
			if err := s.execApply(op); err != nil {
				return err
			}

		case pipeline.RegReadOp:
			idxV, idxT, err := s.eval(op.Index)
			if err != nil {
				return err
			}
			if err := s.pin(idxT, idxV, s.site("reg "+op.Reg+" index")); err != nil {
				return err
			}
			cells, syms, _, err := s.regState(op.Reg)
			if err != nil {
				return err
			}
			idx := int(idxV.V)
			var raw uint64
			cellT := constTerm(pipeline.Value{})
			if idx >= 0 && idx < len(cells) {
				raw = cells[idx]
				if syms[idx] != nil {
					cellT = syms[idx]
				} else {
					cellT = constTerm(pipeline.B(64, raw))
				}
			}
			s.setField(op.Dst, op.Width, raw, cellT)

		case pipeline.RegWriteOp:
			idxV, idxT, err := s.eval(op.Index)
			if err != nil {
				return err
			}
			if err := s.pin(idxT, idxV, s.site("reg "+op.Reg+" index")); err != nil {
				return err
			}
			v, t, err := s.eval(op.Src)
			if err != nil {
				return err
			}
			cells, syms, width, err := s.regState(op.Reg)
			if err != nil {
				return err
			}
			idx := int(idxV.V)
			if idx >= 0 && idx < len(cells) {
				cells[idx] = pipeline.Mask(width, v.V)
				syms[idx] = castTerm(width, t)
			}

		case pipeline.IfOp:
			cv, ct, err := s.eval(op.Cond)
			if err != nil {
				return err
			}
			if err := s.branch(ct, cv.Bool(), s.site("if "+ct.String())); err != nil {
				return err
			}
			if cv.Bool() {
				if err := s.execBlock(op.Then); err != nil {
					return err
				}
			} else if err := s.execBlock(op.Else); err != nil {
				return err
			}

		case pipeline.PushOp:
			cntRef := pipeline.ArrayCount(op.Base)
			cntV := s.phv.Get(cntRef)
			if err := s.pin(s.symOf(cntRef), cntV, s.site("push "+op.Base+" count")); err != nil {
				return err
			}
			v, t, err := s.eval(op.Src)
			if err != nil {
				return err
			}
			cnt := int(cntV.V)
			if cnt < op.Cap {
				s.setField(pipeline.ArraySlot(op.Base, cnt), op.ElemWidth, v.V, t)
				s.setConst(cntRef, pipeline.B(8, uint64(cnt+1)))
				continue
			}
			// Full: shift out the oldest element (raw copies, like the
			// interpreter's PHV-to-PHV moves).
			for i := 0; i+1 < op.Cap; i++ {
				src := pipeline.ArraySlot(op.Base, i+1)
				dst := pipeline.ArraySlot(op.Base, i)
				s.phv.Set(dst, s.phv.Get(src))
				s.sym[dst] = s.symOf(src)
			}
			s.setField(pipeline.ArraySlot(op.Base, op.Cap-1), op.ElemWidth, v.V, t)

		case pipeline.SetSlotOp:
			idxV, idxT, err := s.eval(op.Index)
			if err != nil {
				return err
			}
			if err := s.pin(idxT, idxV, s.site("slot "+op.Base+" index")); err != nil {
				return err
			}
			idx := int(idxV.V)
			if idx < 0 || idx >= op.Cap {
				continue // out-of-range writes are dropped, as on hardware
			}
			v, t, err := s.eval(op.Src)
			if err != nil {
				return err
			}
			s.setField(pipeline.ArraySlot(op.Base, idx), op.ElemWidth, v.V, t)
			cntRef := pipeline.ArrayCount(op.Base)
			cntV := s.phv.Get(cntRef)
			if err := s.pin(s.symOf(cntRef), cntV, s.site("slot "+op.Base+" count")); err != nil {
				return err
			}
			if cnt := int(cntV.V); idx >= cnt {
				s.setConst(cntRef, pipeline.B(8, uint64(idx+1)))
			}

		case pipeline.ReportOp:
			args := make([]uint64, len(op.Args))
			for i, a := range op.Args {
				v, _, err := s.eval(a)
				if err != nil {
					return err
				}
				args[i] = v.V
			}
			s.reports = append(s.reports, args)

		default:
			return fmt.Errorf("symexec: unmodeled op %T", op)
		}
	}
	return nil
}

// execApply mirrors the table-apply op: key terms are constrained
// against the (deterministically ordered) entry snapshot — equality
// with the hit entry, or disequality with every entry on a miss — and
// the outcome is cross-checked against the real table.
func (s *execState) execApply(op pipeline.ApplyOp) error {
	snap := s.ex.tables[s.sw][op.Table]
	if snap == nil {
		return fmt.Errorf("symexec: apply of unmodeled table %q on switch %d", op.Table, s.sw)
	}
	tbl := snap.tbl
	vals := make([]uint64, len(op.Keys))
	terms := make([]*Term, len(op.Keys))
	for i, k := range op.Keys {
		v, t, err := s.eval(k)
		if err != nil {
			return err
		}
		vals[i] = v.V
		terms[i] = t
	}

	matched := -1
	for ei := range snap.entries {
		ok := true
		for i := range vals {
			if snap.entries[ei].Keys[i].Value != vals[i] {
				ok = false
				break
			}
		}
		if ok {
			matched = ei
			break
		}
	}

	site := s.site("apply " + op.Table)
	if matched >= 0 {
		if err := s.branch(s.entryMatchTerm(tbl, terms, snap.entries[matched]), true, site); err != nil {
			return err
		}
	} else {
		for ei := range snap.entries {
			if err := s.branch(s.entryMatchTerm(tbl, terms, snap.entries[ei]), false, site); err != nil {
				return err
			}
		}
	}

	hit := matched >= 0
	action := tbl.Default
	if hit {
		action = snap.entries[matched].Action
	}
	// Cross-check the snapshot decision against the live table.
	realAction, realHit := tbl.Lookup(vals)
	if realHit != hit || len(realAction) != len(action) {
		return fmt.Errorf("symexec: table %q snapshot drift (hit %v vs %v)", op.Table, hit, realHit)
	}
	for i := range action {
		if realAction[i] != action[i] {
			return fmt.Errorf("symexec: table %q snapshot drift at output %d", op.Table, i)
		}
	}
	// Mirror the interpreter: action values are written as-is.
	for i, out := range tbl.Outputs {
		s.setConst(out, action[i])
	}
	s.setConst(tbl.HitField(), pipeline.BoolV(hit))
	return nil
}

// entryMatchTerm is the conjunction "every key column equals this
// entry's exact value". Exact matching compares raw values, so the
// entry constant keeps the installed value unmasked.
func (s *execState) entryMatchTerm(tbl *pipeline.Table, terms []*Term, e pipeline.Entry) *Term {
	conj := constTerm(pipeline.BoolV(true))
	for i, t := range terms {
		eq := binTerm(pipeline.OpEq, t, constTerm(pipeline.Value{W: tbl.Keys[i].Width, V: e.Keys[i].Value}))
		if i == 0 {
			conj = eq
			continue
		}
		conj = binTerm(pipeline.OpLAnd, conj, eq)
	}
	return conj
}
