package symexec

import (
	"sort"

	"repro/internal/pipeline"
)

type solveStatus int

const (
	solveSat solveStatus = iota
	solveUnsat
	solveUnknown
)

// solve searches for an assignment satisfying the constraint set. It is
// a bounded DFS over per-variable candidate pools mined from the
// constraints' constants (each constant plus its neighbors, the
// variable's default, and the width extremes) — complete for the
// equality/ordering conditions compiled checkers produce, and honest
// about giving up: exhaustion within the pool is unsat, and blowing the
// node budget is unknown (the explorer then reports the space as not
// fully covered rather than silently proven).
//
// Variables not mentioned by any constraint keep their defaults, so
// witnesses stay minimal and stable across runs.
func solve(cons []constraint, vars []varInfo, defaults []uint64, cfg Config) ([]uint64, solveStatus) {
	// Normalize: a true conjunction (or false disjunction) splits into
	// its operands, and logical-not inverts the wanted truth value.
	// Splitting an entry-match conjunction into per-column equalities
	// lets the DFS check each column at its own variable's depth
	// instead of walking a blind cartesian product first.
	var norm []constraint
	var push func(c constraint)
	push = func(c constraint) {
		switch {
		case c.t.kind == tBin && c.t.op == pipeline.OpLAnd && c.want:
			push(constraint{t: c.t.x, want: true, site: c.site})
			push(constraint{t: c.t.y, want: true, site: c.site})
		case c.t.kind == tBin && c.t.op == pipeline.OpLOr && !c.want:
			push(constraint{t: c.t.x, want: false, site: c.site})
			push(constraint{t: c.t.y, want: false, site: c.site})
		case c.t.kind == tUn && c.t.op == pipeline.OpNot:
			push(constraint{t: c.t.x, want: !c.want, site: c.site})
		default:
			norm = append(norm, c)
		}
	}
	for _, c := range cons {
		push(c)
	}
	cons = norm

	used := map[int]bool{}
	pool := map[uint64]bool{}
	// Variables are ordered by first mention across the constraint
	// sequence, so early constraints become checkable (and prune) at
	// the shallowest possible DFS depth.
	var order []int
	for _, c := range cons {
		u := map[int]bool{}
		c.t.collectVars(u)
		ids := make([]int, 0, len(u))
		for id := range u {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if !used[id] {
				used[id] = true
				order = append(order, id)
			}
		}
		c.t.collectConsts(pool)
		// Constant constraints decide immediately.
		if len(u) == 0 && c.t.Eval(nil).Bool() != c.want {
			return nil, solveUnsat
		}
	}
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}

	// Candidate pools per variable.
	cands := make([][]uint64, len(order))
	for oi, vi := range order {
		v := vars[vi]
		set := map[uint64]bool{}
		add := func(x uint64) {
			x = maskW(v.width, x)
			if x >= v.min {
				set[x] = true
			}
		}
		add(defaults[vi])
		add(0)
		add(1)
		add(2)
		if v.width >= 64 {
			add(^uint64(0))
		} else {
			add(1<<uint(v.width) - 1)
		}
		for c := range pool {
			add(c)
			add(c - 1)
			add(c + 1)
		}
		list := make([]uint64, 0, len(set))
		for x := range set {
			list = append(list, x)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		if len(list) > cfg.MaxCandidatesPerVar {
			list = list[:cfg.MaxCandidatesPerVar]
		}
		cands[oi] = list
	}

	// Schedule each constraint at the deepest variable it mentions, so
	// partial assignments are checked as early as possible.
	consAt := make([][]int, len(order))
	for ci, c := range cons {
		u := map[int]bool{}
		c.t.collectVars(u)
		deepest := -1
		for id := range u {
			if p := pos[id]; p > deepest {
				deepest = p
			}
		}
		if deepest >= 0 {
			consAt[deepest] = append(consAt[deepest], ci)
		}
	}

	asn := append([]uint64(nil), defaults...)
	nodes := 0
	exceeded := false
	var dfs func(d int) bool
	dfs = func(d int) bool {
		if d == len(order) {
			return true
		}
		vi := order[d]
		for _, cv := range cands[d] {
			nodes++
			if nodes > cfg.SolverNodes {
				exceeded = true
				return false
			}
			asn[vi] = cv
			ok := true
			for _, ci := range consAt[d] {
				if cons[ci].t.Eval(asn).Bool() != cons[ci].want {
					ok = false
					break
				}
			}
			if ok && dfs(d+1) {
				return true
			}
			if exceeded {
				return false
			}
		}
		asn[vi] = defaults[vi]
		return false
	}
	if dfs(0) {
		return asn, solveSat
	}
	if exceeded {
		return nil, solveUnknown
	}
	return nil, solveUnsat
}

func maskW(w int, v uint64) uint64 {
	if w >= 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}
