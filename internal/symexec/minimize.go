package symexec

import "sort"

// Minimize shrinks a trace while pred keeps holding (pred is "still
// diverges" for counterexamples, "still violates" for frontier
// witnesses). The reduction is deterministic: drop hops back to front,
// then per hop walk header fields in name order pulling each value
// toward zero (zero first, then repeated halving), and finally pull
// packet lengths back to the 100-byte default. If pred does not hold on
// the input the trace is returned unchanged.
func Minimize(tr Trace, pred func(Trace) bool) Trace {
	cur := tr.Clone()
	if !pred(cur) {
		return cur
	}
	for changed := true; changed; {
		changed = false
		// Drop hops, back to front, keeping at least one.
		for i := len(cur.Hops) - 1; i >= 0 && len(cur.Hops) > 1; i-- {
			cand := cur.Clone()
			cand.Hops = append(cand.Hops[:i], cand.Hops[i+1:]...)
			if pred(cand) {
				cur = cand
				changed = true
			}
		}
		// Shrink header values toward zero.
		for i := range cur.Hops {
			names := make([]string, 0, len(cur.Hops[i].Headers))
			for name := range cur.Hops[i].Headers {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				for cur.Hops[i].Headers[name] != 0 {
					v := cur.Hops[i].Headers[name]
					cand := cur.Clone()
					cand.Hops[i].Headers[name] = 0
					if pred(cand) {
						cur = cand
						changed = true
						break
					}
					cand = cur.Clone()
					cand.Hops[i].Headers[name] = v / 2
					if !pred(cand) {
						break
					}
					cur = cand
					changed = true
				}
			}
		}
		// Pull packet lengths back to the default.
		for i := range cur.Hops {
			if cur.Hops[i].PktLen == 100 {
				continue
			}
			cand := cur.Clone()
			cand.Hops[i].PktLen = 100
			if pred(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
