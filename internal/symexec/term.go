// Package symexec is a concolic executor over the pipeline IR: it runs
// a compiled checker concretely while shadowing every PHV field with a
// symbolic bit-vector term over the trace's header variables, recording
// the path conditions taken at branches, table lookups, and
// runtime-indexed register/array accesses. A generational search
// (execute, negate one recorded condition, solve, re-execute) enumerates
// the reachable path space of a bounded trace model; every explored path
// carries a concrete witness trace that is directly replayable through
// internal/difftest against all three backends. The verdict-flipping
// pairs along the way form the checker's violation frontier.
//
// The solver is an in-repo bounded search over candidate values mined
// from the path conditions' constants — no external SMT dependency.
package symexec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pipeline"
)

type termKind uint8

const (
	tConst termKind = iota
	tVar
	tCast
	tUn
	tBin
	tMux
)

// Term is a symbolic bit-vector expression over trace variables. Term
// evaluation mirrors pipeline expression semantics exactly — evaluating
// a term under an assignment yields the same Value the corresponding
// Expr tree yields on the concrete PHV (pinned by TestTermMirrorsExpr
// and re-checked at every op during concolic execution).
type Term struct {
	kind termKind

	val pipeline.Value // tConst

	varID   int    // tVar
	varName string // tVar
	varW    int    // tVar

	castW int // tCast: truncate x to castW bits

	op      pipeline.OpCode // tUn, tBin
	x, y, z *Term           // operands; tMux uses x=cond, y=then, z=else
}

func constTerm(v pipeline.Value) *Term { return &Term{kind: tConst, val: v} }

func varTerm(id int, name string, w int) *Term {
	return &Term{kind: tVar, varID: id, varName: name, varW: w}
}

// castTerm truncates x to w bits, mirroring the masking a field write
// (AssignOp dst width, telemetry wire roundtrip) applies.
func castTerm(w int, x *Term) *Term {
	if x.kind == tConst {
		return constTerm(pipeline.B(w, x.val.V))
	}
	return &Term{kind: tCast, castW: w, x: x}
}

func unTerm(op pipeline.OpCode, x *Term) *Term {
	t := &Term{kind: tUn, op: op, x: x}
	if x.kind == tConst {
		return constTerm(t.Eval(nil))
	}
	return t
}

func binTerm(op pipeline.OpCode, x, y *Term) *Term {
	t := &Term{kind: tBin, op: op, x: x, y: y}
	if x.kind == tConst && y.kind == tConst {
		return constTerm(t.Eval(nil))
	}
	return t
}

// muxTerm folds a constant condition to the taken side, which is exact:
// Mux.Eval evaluates only that side.
func muxTerm(cond, x, y *Term) *Term {
	if cond.kind == tConst {
		if cond.val.Bool() {
			return x
		}
		return y
	}
	return &Term{kind: tMux, x: cond, y: x, z: y}
}

func (t *Term) isConst() bool { return t.kind == tConst }

// Eval computes the term under the assignment, mirroring
// pipeline.Expr.Eval semantics operator for operator.
func (t *Term) Eval(asn []uint64) pipeline.Value {
	switch t.kind {
	case tConst:
		return t.val
	case tVar:
		return pipeline.B(t.varW, asn[t.varID])
	case tCast:
		return pipeline.B(t.castW, t.x.Eval(asn).V)
	case tUn:
		x := t.x.Eval(asn)
		switch t.op {
		case pipeline.OpNot:
			return pipeline.BoolV(!x.Bool())
		case pipeline.OpBNot:
			return pipeline.B(x.W, ^x.V)
		case pipeline.OpNeg:
			return pipeline.B(x.W, -x.V)
		case pipeline.OpAbs:
			s := x.Signed()
			if s < 0 {
				s = -s
			}
			return pipeline.B(x.W, uint64(s))
		}
		panic("symexec: bad unary opcode " + t.op.String())
	case tBin:
		// The short-circuit logical operators are pure, so evaluating
		// both sides eagerly matches Bin.Eval.
		switch t.op {
		case pipeline.OpLAnd:
			return pipeline.BoolV(t.x.Eval(asn).Bool() && t.y.Eval(asn).Bool())
		case pipeline.OpLOr:
			return pipeline.BoolV(t.x.Eval(asn).Bool() || t.y.Eval(asn).Bool())
		}
		x, y := t.x.Eval(asn), t.y.Eval(asn)
		w := x.W
		if w == 0 {
			w = y.W
		}
		switch t.op {
		case pipeline.OpAdd:
			return pipeline.B(w, x.V+y.V)
		case pipeline.OpSub:
			return pipeline.B(w, x.V-y.V)
		case pipeline.OpMul:
			return pipeline.B(w, x.V*y.V)
		case pipeline.OpDiv:
			if y.V == 0 {
				return pipeline.B(w, 0)
			}
			return pipeline.B(w, x.V/y.V)
		case pipeline.OpMod:
			if y.V == 0 {
				return pipeline.B(w, 0)
			}
			return pipeline.B(w, x.V%y.V)
		case pipeline.OpBAnd:
			return pipeline.B(w, x.V&y.V)
		case pipeline.OpBOr:
			return pipeline.B(w, x.V|y.V)
		case pipeline.OpBXor:
			return pipeline.B(w, x.V^y.V)
		case pipeline.OpShl:
			if y.V >= 64 {
				return pipeline.B(w, 0)
			}
			return pipeline.B(w, x.V<<y.V)
		case pipeline.OpShr:
			if y.V >= 64 {
				return pipeline.B(w, 0)
			}
			return pipeline.B(w, x.V>>y.V)
		case pipeline.OpEq:
			return pipeline.BoolV(x.V == y.V)
		case pipeline.OpNe:
			return pipeline.BoolV(x.V != y.V)
		case pipeline.OpLt:
			return pipeline.BoolV(x.V < y.V)
		case pipeline.OpLe:
			return pipeline.BoolV(x.V <= y.V)
		case pipeline.OpGt:
			return pipeline.BoolV(x.V > y.V)
		case pipeline.OpGe:
			return pipeline.BoolV(x.V >= y.V)
		case pipeline.OpMax:
			if x.V >= y.V {
				return pipeline.B(w, x.V)
			}
			return pipeline.B(w, y.V)
		case pipeline.OpMin:
			if x.V <= y.V {
				return pipeline.B(w, x.V)
			}
			return pipeline.B(w, y.V)
		}
		panic("symexec: bad binary opcode " + t.op.String())
	case tMux:
		if t.x.Eval(asn).Bool() {
			return t.y.Eval(asn)
		}
		return t.z.Eval(asn)
	}
	panic("symexec: bad term kind")
}

// String renders the term; path signatures and frontier condition
// labels are built from it, so it must be deterministic.
func (t *Term) String() string {
	var b strings.Builder
	t.writeString(&b)
	return b.String()
}

func (t *Term) writeString(b *strings.Builder) {
	switch t.kind {
	case tConst:
		b.WriteString(strconv.FormatUint(t.val.V, 10))
	case tVar:
		b.WriteString(t.varName)
	case tCast:
		fmt.Fprintf(b, "trunc%d(", t.castW)
		t.x.writeString(b)
		b.WriteByte(')')
	case tUn:
		b.WriteString(t.op.String())
		b.WriteByte('(')
		t.x.writeString(b)
		b.WriteByte(')')
	case tBin:
		b.WriteByte('(')
		t.x.writeString(b)
		b.WriteByte(' ')
		b.WriteString(t.op.String())
		b.WriteByte(' ')
		t.y.writeString(b)
		b.WriteByte(')')
	case tMux:
		b.WriteByte('(')
		t.x.writeString(b)
		b.WriteString(" ? ")
		t.y.writeString(b)
		b.WriteString(" : ")
		t.z.writeString(b)
		b.WriteByte(')')
	}
}

// collectVars adds the IDs of all variables the term mentions.
func (t *Term) collectVars(set map[int]bool) {
	switch t.kind {
	case tVar:
		set[t.varID] = true
	case tCast, tUn:
		t.x.collectVars(set)
	case tBin:
		t.x.collectVars(set)
		t.y.collectVars(set)
	case tMux:
		t.x.collectVars(set)
		t.y.collectVars(set)
		t.z.collectVars(set)
	}
}

// collectConsts adds every literal the term mentions to the pool; the
// solver mines its candidate values from this.
func (t *Term) collectConsts(pool map[uint64]bool) {
	switch t.kind {
	case tConst:
		pool[t.val.V] = true
	case tCast, tUn:
		t.x.collectConsts(pool)
	case tBin:
		t.x.collectConsts(pool)
		t.y.collectConsts(pool)
	case tMux:
		t.x.collectConsts(pool)
		t.y.collectConsts(pool)
		t.z.collectConsts(pool)
	}
}
