package symexec

import (
	"reflect"
	"testing"
)

// TestMinimize drives the counterexample minimizer over synthetic
// divergence predicates that mimic real backend-divergence shapes: the
// predicate marks which traces still "reproduce", and the minimizer
// must shrink to the smallest fixture that does.
func TestMinimize(t *testing.T) {
	mkTrace := func(hops ...Hop) Trace { return Trace{Hops: hops} }
	cases := []struct {
		name string
		in   Trace
		pred func(Trace) bool
		want Trace
	}{
		{
			// Divergence triggered by a single header threshold on any
			// hop: hops without it drop, the field shrinks to the
			// smallest reproducing value via halving.
			name: "threshold header",
			in: mkTrace(
				Hop{Switch: 1, PktLen: 900, Headers: map[string]uint64{"x": 4096, "y": 77}},
				Hop{Switch: 2, PktLen: 64, Headers: map[string]uint64{"x": 3, "y": 5}},
			),
			pred: func(tr Trace) bool {
				for _, h := range tr.Hops {
					if h.Headers["x"] >= 1000 {
						return true
					}
				}
				return false
			},
			want: mkTrace(Hop{Switch: 1, PktLen: 100, Headers: map[string]uint64{"x": 1024, "y": 0}}),
		},
		{
			// Divergence needs two specific hops (a stateful pattern:
			// set on switch 1, trip on switch 2); middle hop is noise.
			name: "two-hop stateful",
			in: mkTrace(
				Hop{Switch: 1, PktLen: 100, Headers: map[string]uint64{"k": 9}},
				Hop{Switch: 3, PktLen: 1500, Headers: map[string]uint64{"k": 1}},
				Hop{Switch: 2, PktLen: 100, Headers: map[string]uint64{"k": 9}},
			),
			pred: func(tr Trace) bool {
				seen := false
				for _, h := range tr.Hops {
					if h.Switch == 1 && h.Headers["k"] == 9 {
						seen = true
					}
					if h.Switch == 2 && seen && h.Headers["k"] == 9 {
						return true
					}
				}
				return false
			},
			want: mkTrace(
				Hop{Switch: 1, PktLen: 100, Headers: map[string]uint64{"k": 9}},
				Hop{Switch: 2, PktLen: 100, Headers: map[string]uint64{"k": 9}},
			),
		},
		{
			// Divergence independent of everything: collapses to one
			// hop with all fields zeroed and the default packet length.
			name: "always diverges",
			in: mkTrace(
				Hop{Switch: 7, PktLen: 1500, Headers: map[string]uint64{"a": 1, "b": 2}},
				Hop{Switch: 8, PktLen: 1500, Headers: map[string]uint64{"a": 3, "b": 4}},
			),
			pred: func(Trace) bool { return true },
			want: mkTrace(Hop{Switch: 7, PktLen: 100, Headers: map[string]uint64{"a": 0, "b": 0}}),
		},
		{
			// Predicate never fires: the input must come back unchanged
			// (a minimizer must not invent a counterexample).
			name: "no divergence",
			in:   mkTrace(Hop{Switch: 1, PktLen: 333, Headers: map[string]uint64{"z": 42}}),
			pred: func(Trace) bool { return false },
			want: mkTrace(Hop{Switch: 1, PktLen: 333, Headers: map[string]uint64{"z": 42}}),
		},
		{
			// Packet-length-driven divergence: hops drop but the length
			// cannot be reset to the default.
			name: "pktlen sensitive",
			in: mkTrace(
				Hop{Switch: 1, PktLen: 1499, Headers: map[string]uint64{"q": 6}},
				Hop{Switch: 2, PktLen: 64, Headers: map[string]uint64{"q": 6}},
			),
			pred: func(tr Trace) bool {
				for _, h := range tr.Hops {
					if h.PktLen > 1400 {
						return true
					}
				}
				return false
			},
			want: mkTrace(Hop{Switch: 1, PktLen: 1499, Headers: map[string]uint64{"q": 0}}),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := Minimize(tc.in, tc.pred)
			if !tc.pred(got) && tc.pred(tc.in) {
				t.Fatalf("minimized trace no longer reproduces: %+v", got)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestMinimizeInvariants checks the contract the symcheck replay path
// relies on: the result always reproduces (when the input does), never
// grows, and minimization is idempotent.
func TestMinimizeInvariants(t *testing.T) {
	in := Trace{Hops: []Hop{
		{Switch: 1, PktLen: 800, Headers: map[string]uint64{"a": 500, "b": 12}},
		{Switch: 2, PktLen: 800, Headers: map[string]uint64{"a": 600, "b": 0}},
		{Switch: 1, PktLen: 800, Headers: map[string]uint64{"a": 700, "b": 9}},
	}}
	pred := func(tr Trace) bool {
		var sum uint64
		for _, h := range tr.Hops {
			sum += h.Headers["a"]
		}
		return sum >= 550
	}
	got := Minimize(in, pred)
	if !pred(got) {
		t.Fatalf("result does not reproduce: %+v", got)
	}
	if len(got.Hops) > len(in.Hops) {
		t.Fatalf("minimizer grew the trace")
	}
	again := Minimize(got, pred)
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("not idempotent:\n first %+v\n again %+v", got, again)
	}
}
