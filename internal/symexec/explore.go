package symexec

import (
	"fmt"
	"strings"
)

// Explore runs the generational search over every switch sequence of
// the model (lengths 1..MaxHops), then probes stored paths under
// single-switch perturbations for switch-driven verdict flips. The
// result is deterministic: sequences are enumerated lexicographically,
// table snapshots are sorted, and the solver is seeded from defaults.
func (ex *Explorer) Explore() (*Result, error) {
	res := &Result{Checker: ex.Key, Complete: true}
	type storedPath struct {
		run     *pathRun
		probeOK bool // within the per-instance cross-switch probe budget
	}
	var stored []storedPath
	pairSeen := map[string]bool{}
	addPair := func(p FrontierPair) {
		if pairSeen[p.Cond] {
			return
		}
		pairSeen[p.Cond] = true
		res.Frontier = append(res.Frontier, p)
	}

	maxHops := ex.model.MaxHops
	if ex.cfg.MaxHops > 0 {
		maxHops = ex.cfg.MaxHops
	}
	for L := 1; L <= maxHops; L++ {
		for _, seq := range sequences(ex.model.Switches, L) {
			res.Instances++
			paths, pairs, err := ex.exploreInstance(seq, res)
			if err != nil {
				return nil, err
			}
			for _, p := range pairs {
				addPair(p)
			}
			for i, r := range paths {
				stored = append(stored, storedPath{run: r, probeOK: i < ex.cfg.CrossSwitchPaths})
			}
		}
	}

	// Cross-instance frontier: re-execute a path's assignment under a
	// sequence that differs at exactly one hop. This is what flips
	// checkers whose verdict depends only on the switch sequence
	// (waypointing, service-chain, valley-free).
	for _, sp := range stored {
		if !sp.probeOK {
			continue
		}
		r := sp.run
		for k := range r.seq {
			for _, alt := range ex.model.Switches {
				if alt == r.seq[k] {
					continue
				}
				cond := fmt.Sprintf("hop%d switch %d->%d (len %d)", k, r.seq[k], alt, len(r.seq))
				if pairSeen[cond] {
					continue
				}
				seq2 := append([]uint32(nil), r.seq...)
				seq2[k] = alt
				r2, err := ex.run(seq2, r.asn)
				if err != nil {
					return nil, err
				}
				if r.violation() == r2.violation() {
					continue
				}
				conform, violate := r, r2
				if conform.violation() {
					conform, violate = r2, r
				}
				addPair(FrontierPair{
					Cond:           cond,
					Conform:        ex.witness(conform.seq, conform.asn),
					Violate:        ex.witness(violate.seq, violate.asn),
					ConformVerdict: conform.verdict(),
					ViolateVerdict: violate.verdict(),
				})
			}
		}
	}

	if len(res.Frontier) > ex.cfg.MaxFrontierPairs {
		res.Frontier = res.Frontier[:ex.cfg.MaxFrontierPairs]
	}
	for _, sp := range stored {
		r := sp.run
		conds := make([]string, len(r.cons))
		for i, c := range r.cons {
			conds[i] = c.String()
		}
		res.Paths = append(res.Paths, Path{
			Trace:     ex.witness(r.seq, r.asn),
			Verdict:   r.verdict(),
			Reports:   r.reports,
			FinalBlob: r.finalBlob,
			Conds:     conds,
		})
	}
	return res, nil
}

// exploreInstance runs the generational search for one switch sequence:
// execute, then for each recorded condition solve for the same prefix
// with that condition negated, enqueueing each satisfiable flip.
func (ex *Explorer) exploreInstance(seq []uint32, res *Result) ([]*pathRun, []FrontierPair, error) {
	vars := ex.varsFor(len(seq))
	defaults := make([]uint64, len(vars))
	for i := range vars {
		defaults[i] = vars[i].def
	}

	type cand struct {
		asn    []uint64
		parent int // index into paths; -1 for the seed
		flip   int // index of the negated condition in the parent
	}
	queue := []cand{{asn: defaults, parent: -1, flip: -1}}
	var paths []*pathRun
	seen := map[string]int{}
	flipSeen := map[string]bool{}
	var pairs []FrontierPair

	for qi := 0; qi < len(queue); qi++ {
		if len(paths) >= ex.cfg.MaxPathsPerInstance {
			res.Complete = false
			res.Notes = append(res.Notes, fmt.Sprintf("seq %v: path cap %d hit", seq, ex.cfg.MaxPathsPerInstance))
			break
		}
		c := queue[qi]
		r, err := ex.run(seq, c.asn)
		if err != nil {
			return nil, nil, err
		}
		idx, dup := seen[r.sig()]
		if !dup {
			idx = len(paths)
			paths = append(paths, r)
			seen[r.sig()] = idx
			for i := range r.cons {
				fkey := flipKey(r.cons, i)
				if flipSeen[fkey] {
					continue
				}
				flipSeen[fkey] = true
				target := make([]constraint, i+1)
				copy(target, r.cons[:i])
				target[i] = constraint{t: r.cons[i].t, want: !r.cons[i].want, site: r.cons[i].site}
				sol, status := solve(target, vars, defaults, ex.cfg)
				switch status {
				case solveSat:
					res.FlipsSolved++
					queue = append(queue, cand{asn: sol, parent: idx, flip: i})
				case solveUnsat:
					res.FlipsUnsat++
				default:
					res.FlipsUnknown++
					res.Complete = false
				}
			}
		}
		// A solved flip whose execution lands on the other side of the
		// verdict is a frontier pair with its parent.
		if c.parent >= 0 {
			p, child := paths[c.parent], paths[idx]
			if p.violation() != child.violation() {
				conform, violate := p, child
				if conform.violation() {
					conform, violate = child, p
				}
				pairs = append(pairs, FrontierPair{
					Cond:           p.cons[c.flip].String(),
					Conform:        ex.witness(conform.seq, conform.asn),
					Violate:        ex.witness(violate.seq, violate.asn),
					ConformVerdict: conform.verdict(),
					ViolateVerdict: violate.verdict(),
				})
			}
		}
	}
	return paths, pairs, nil
}

// flipKey identifies a flip target (prefix + negated condition) so the
// same branch is not re-solved from every path sharing the prefix.
func flipKey(cons []constraint, i int) string {
	var b strings.Builder
	for _, c := range cons[:i] {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	b.WriteByte('!')
	b.WriteString(cons[i].String())
	return b.String()
}
