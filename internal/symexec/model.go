package symexec

import (
	"fmt"
	"sort"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/ast"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// HeaderVar is one free header variable of the trace model.
type HeaderVar struct {
	// Name is the Indus declaration name; witness traces key header
	// values by it (the same keying difftest.HopSpec uses).
	Name string
	// Path is the annotation path bound into the PHV.
	Path string
	// Width in bits (bools are width 1).
	Width int
}

// Hop is one hop of a concrete witness trace.
type Hop struct {
	Switch  uint32            `json:"switch"`
	PktLen  uint32            `json:"pktlen"`
	Headers map[string]uint64 `json:"headers,omitempty"`
}

// Trace is a concrete witness: directly convertible to difftest hop
// specs for replay through all three backends.
type Trace struct {
	Hops []Hop `json:"hops"`
}

// Clone deep-copies the trace.
func (t Trace) Clone() Trace {
	out := Trace{Hops: make([]Hop, len(t.Hops))}
	for i, h := range t.Hops {
		hh := Hop{Switch: h.Switch, PktLen: h.PktLen}
		if h.Headers != nil {
			hh.Headers = make(map[string]uint64, len(h.Headers))
			for k, v := range h.Headers {
				hh.Headers[k] = v
			}
		}
		out.Hops[i] = hh
	}
	return out
}

// Verdict is the modeled outcome of a trace.
type Verdict struct {
	Reject  bool `json:"reject"`
	Reports int  `json:"reports"`
}

// Violation applies the repo-wide convention: a property is violated on
// an explicit reject or any report digest.
func (v Verdict) Violation() bool { return v.Reject || v.Reports > 0 }

// Path is one explored path: the witness trace plus the symbolic
// executor's predicted outcome, which replay checks against all three
// backends byte-for-byte.
type Path struct {
	Trace     Trace
	Verdict   Verdict
	Reports   [][]uint64
	FinalBlob []byte
	// Conds are the printable path conditions (debugging / reports).
	Conds []string
}

// FrontierPair is a verdict flip: two concrete traces on opposite sides
// of one path condition (or one differing switch hop).
type FrontierPair struct {
	Cond           string  `json:"cond"`
	Conform        Trace   `json:"conform"`
	Violate        Trace   `json:"violate"`
	ConformVerdict Verdict `json:"conform_verdict"`
	ViolateVerdict Verdict `json:"violate_verdict"`
}

// Result is the outcome of exploring one checker's modeled space.
type Result struct {
	Checker   string
	Paths     []Path
	Frontier  []FrontierPair
	Instances int
	// Complete is false if any flip went unsolved (solver budget) or a
	// path cap was hit — the equivalence claim then covers only the
	// explored subset.
	Complete bool
	Notes    []string

	FlipsSolved  int
	FlipsUnsat   int
	FlipsUnknown int
}

// Config bounds the exploration.
type Config struct {
	// MaxHops overrides the model's trace-length bound when nonzero.
	MaxHops int
	// MaxPathsPerInstance caps distinct paths per switch sequence.
	MaxPathsPerInstance int
	// SolverNodes is the per-flip search budget.
	SolverNodes int
	// MaxFrontierPairs caps the committed frontier per checker.
	MaxFrontierPairs int
	// MaxCandidatesPerVar caps the solver's per-variable value pool.
	MaxCandidatesPerVar int
	// CrossSwitchPaths is how many paths per instance are re-executed
	// under single-switch perturbations to find switch-driven flips.
	CrossSwitchPaths int
}

func (c Config) withDefaults() Config {
	if c.MaxPathsPerInstance == 0 {
		c.MaxPathsPerInstance = 256
	}
	if c.SolverNodes == 0 {
		c.SolverNodes = 20000
	}
	if c.MaxFrontierPairs == 0 {
		c.MaxFrontierPairs = 12
	}
	if c.MaxCandidatesPerVar == 0 {
		c.MaxCandidatesPerVar = 64
	}
	if c.CrossSwitchPaths == 0 {
		c.CrossSwitchPaths = 8
	}
	return c
}

// varInfo describes one solver variable.
type varInfo struct {
	name  string
	width int
	def   uint64
	// min filters candidates: packet length is >= 1 so witnesses stay
	// unambiguous under difftest's zero-means-default convention.
	min uint64
}

// tableSnap is a deterministic snapshot of one switch's table: sorted
// entries for stable miss-constraint order and reproducible runs.
type tableSnap struct {
	tbl     *pipeline.Table
	entries []pipeline.Entry
}

// Explorer explores one checker's bounded trace model.
type Explorer struct {
	Key     string
	prog    *pipeline.Program
	headers []HeaderVar
	model   checkers.SymModel
	cfg     Config

	states map[uint32]*pipeline.State
	tables map[uint32]map[string]*tableSnap
}

// New builds an explorer over an arbitrary compiled program. The model
// installs are applied to fresh per-switch states.
func New(key string, prog *pipeline.Program, headers []HeaderVar, model checkers.SymModel, cfg Config) (*Explorer, error) {
	if model.MaxHops <= 0 || len(model.Switches) == 0 {
		return nil, fmt.Errorf("symexec: model needs MaxHops >= 1 and a switch set")
	}
	states, err := BuildStates(prog, model)
	if err != nil {
		return nil, err
	}
	ex := &Explorer{
		Key:     key,
		prog:    prog,
		headers: headers,
		model:   model,
		cfg:     cfg.withDefaults(),
		states:  states,
		tables:  make(map[uint32]map[string]*tableSnap, len(states)),
	}
	for id, st := range states {
		snaps := make(map[string]*tableSnap, len(st.Tables))
		for name, tbl := range st.Tables {
			if !tbl.IsExact() {
				return nil, fmt.Errorf("symexec: table %q: only exact-match tables are modeled", name)
			}
			entries := tbl.Entries()
			sort.Slice(entries, func(i, j int) bool {
				a, b := entries[i].Keys, entries[j].Keys
				for k := range a {
					if a[k].Value != b[k].Value {
						return a[k].Value < b[k].Value
					}
				}
				return false
			})
			snaps[name] = &tableSnap{tbl: tbl, entries: entries}
		}
		ex.tables[id] = snaps
	}
	return ex, nil
}

// ForChecker compiles a corpus checker and builds its explorer using
// the checker's SymModel annotation.
func ForChecker(key string, cfg Config) (*Explorer, error) {
	p, ok := checkers.ByKey(key)
	if !ok {
		return nil, fmt.Errorf("symexec: unknown corpus key %q", key)
	}
	src, err := parser.Parse(key+".indus", p.Source)
	if err != nil {
		return nil, fmt.Errorf("symexec: parse %s: %w", key, err)
	}
	info, err := types.Check(src)
	if err != nil {
		return nil, fmt.Errorf("symexec: types %s: %w", key, err)
	}
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		return nil, fmt.Errorf("symexec: compile %s: %w", key, err)
	}
	var headers []HeaderVar
	for _, d := range info.Prog.DeclsOfKind(ast.KindHeader) {
		headers = append(headers, HeaderVar{
			Name:  d.Name,
			Path:  prog.HeaderBindings[d.Name],
			Width: scalarWidth(d.Type),
		})
	}
	return New(key, prog, headers, checkers.SymModelFor(key), cfg)
}

func scalarWidth(t ast.Type) int {
	switch t := t.(type) {
	case ast.BitType:
		return t.Width
	case ast.BoolType:
		return 1
	}
	return 0
}

// BuildStates instantiates per-switch pipeline state with the model's
// canonical control-plane installs. The linked-backend aliasing tests
// reuse it to get bit-identical state without a difftest Runner.
func BuildStates(prog *pipeline.Program, model checkers.SymModel) (map[uint32]*pipeline.State, error) {
	specs := make(map[string]pipeline.TableSpec, len(prog.Tables))
	for _, ts := range prog.Tables {
		specs[ts.Name] = ts
	}
	states := make(map[uint32]*pipeline.State, len(model.Switches))
	for _, id := range model.Switches {
		states[id] = prog.NewState()
	}
	for _, in := range model.Installs {
		spec, ok := specs[in.Name]
		if !ok {
			return nil, fmt.Errorf("symexec: model install %q: no such table", in.Name)
		}
		e := pipeline.Entry{}
		for _, k := range in.Key {
			e.Keys = append(e.Keys, pipeline.ExactKey(k))
		}
		if !in.Set {
			if len(spec.OutputWidths) != 1 {
				return nil, fmt.Errorf("symexec: model install %q: want 1 output, have %d", in.Name, len(spec.OutputWidths))
			}
			e.Action = []pipeline.Value{pipeline.B(spec.OutputWidths[0], in.Val)}
		}
		targets := model.Switches
		if in.Switch != 0 {
			targets = []uint32{in.Switch}
		}
		for _, id := range targets {
			st, ok := states[id]
			if !ok {
				return nil, fmt.Errorf("symexec: model install %q: switch %d not in model", in.Name, in.Switch)
			}
			if err := st.Tables[in.Name].Insert(e); err != nil {
				return nil, fmt.Errorf("symexec: model install %q: %w", in.Name, err)
			}
		}
	}
	return states, nil
}

// Headers exposes the model's free header variables (used by the
// adversarial corpus conversion to resolve names to paths).
func (ex *Explorer) Headers() []HeaderVar { return ex.headers }

// varsFor lays out the solver variables of an L-hop trace: per hop, the
// header variables in declaration order, then the packet length.
func (ex *Explorer) varsFor(L int) []varInfo {
	vars := make([]varInfo, 0, L*(len(ex.headers)+1))
	for hop := 0; hop < L; hop++ {
		for _, h := range ex.headers {
			vars = append(vars, varInfo{
				name:  fmt.Sprintf("hop%d.%s", hop, h.Name),
				width: h.Width,
			})
		}
		vars = append(vars, varInfo{
			name:  fmt.Sprintf("hop%d.packet_length", hop),
			width: 32,
			def:   100,
			min:   1,
		})
	}
	return vars
}

func (ex *Explorer) headerVar(hop, j int) int { return hop*(len(ex.headers)+1) + j }
func (ex *Explorer) pktVar(hop int) int       { return hop*(len(ex.headers)+1) + len(ex.headers) }

// witness converts an assignment under a switch sequence into a
// concrete replayable trace.
func (ex *Explorer) witness(seq []uint32, asn []uint64) Trace {
	tr := Trace{Hops: make([]Hop, len(seq))}
	for hop, sw := range seq {
		h := Hop{Switch: sw, PktLen: uint32(asn[ex.pktVar(hop)])}
		if len(ex.headers) > 0 {
			h.Headers = make(map[string]uint64, len(ex.headers))
			for j, hv := range ex.headers {
				h.Headers[hv.Name] = asn[ex.headerVar(hop, j)]
			}
		}
		tr.Hops[hop] = h
	}
	return tr
}

// sequences enumerates all switch sequences of length L over the model
// switches, in lexicographic order.
func sequences(switches []uint32, L int) [][]uint32 {
	total := 1
	for i := 0; i < L; i++ {
		total *= len(switches)
	}
	out := make([][]uint32, 0, total)
	seq := make([]uint32, L)
	var rec func(i int)
	rec = func(i int) {
		if i == L {
			out = append(out, append([]uint32(nil), seq...))
			return
		}
		for _, s := range switches {
			seq[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
