package engine_test

// Faulted live installs: the control-plane fault classes (partial and
// delayed table installs) exercised against the sharded engine while it
// is checking packets. The partial install withholds a deterministic
// subset of the firewall's flow pairs at setup; a repair goroutine then
// installs half of them live, racing the replay — the engine's
// per-shard state replication must absorb concurrent installs without
// data races (this file runs under the CI race job), and the
// never-repaired pairs must keep raising reports.

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
)

// replaySwitchIDs mirrors the experiments replay fabric: leaves 1-2,
// spines 3-4.
var replaySwitchIDs = []uint32{1, 2, 3, 4}

func TestEngineFaultedLiveInstalls(t *testing.T) {
	const packets = 8000
	const seed = 11

	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatalf("compiling corpus: %v", err)
	}
	pkts, pairs := experiments.CampusEnginePackets(packets, seed)

	// Partial install: withhold a deterministic ~20% of the firewall
	// pairs, then split the withheld set — half repaired live mid-replay
	// (the delayed install), half never installed (the lasting fault).
	withheld := faults.Withhold(faults.SubSeed(seed, "partial-install"), len(pairs), 0.2)
	var kept, repaired, broken [][2]uint32
	for i, p := range pairs {
		switch {
		case !withheld[i]:
			kept = append(kept, p)
		case len(repaired) <= len(broken):
			repaired = append(repaired, p)
		default:
			broken = append(broken, p)
		}
	}
	if len(repaired) == 0 || len(broken) == 0 {
		t.Fatalf("degenerate withhold split: %d repaired, %d broken (of %d pairs)",
			len(repaired), len(broken), len(pairs))
	}

	eng := engine.New(engine.Config{Shards: 4, Checkers: chks})
	if err := experiments.ConfigureReplayEngine(eng.Install, kept); err != nil {
		t.Fatalf("configuring engine: %v", err)
	}

	installErr := make(chan error, 1)
	go func() {
		seedFn := experiments.FirewallSeed(repaired)
		for _, id := range replaySwitchIDs {
			if err := eng.Install("stateful-firewall", id, seedFn); err != nil {
				installErr <- err
				return
			}
		}
		installErr <- nil
	}()

	for i := range pkts {
		eng.Submit(pkts[i])
	}
	if err := <-installErr; err != nil {
		t.Fatalf("live install during replay: %v", err)
	}
	counts := eng.Drain()

	if counts.Errors != 0 {
		t.Errorf("engine errors under faulted installs: %d", counts.Errors)
	}
	if counts.Packets != packets {
		t.Errorf("packets checked = %d, want %d", counts.Packets, packets)
	}
	if counts.Forwarded+counts.Rejected != counts.Packets {
		t.Errorf("forwarded (%d) + rejected (%d) != packets (%d)",
			counts.Forwarded, counts.Rejected, counts.Packets)
	}
	// The never-repaired flows violate the stateful firewall on every
	// packet; some of their traffic is guaranteed in an 8k replay.
	if counts.Reports == 0 {
		t.Errorf("no reports despite %d permanently withheld firewall pairs", len(broken))
	}
}
