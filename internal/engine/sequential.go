package engine

import (
	"repro/internal/bytecode"
	"repro/internal/pipeline"
)

// Sequential executes the exact per-packet code path the sharded
// workers run, inline on the caller's goroutine against a single
// (unsharded) state set. It is the ground-truth reference the parallel
// engine is differentially tested against — the same role the eval
// interpreter plays for the compiled pipeline.
type Sequential struct {
	cfg Config
	s   *shard
}

// NewSequential builds the single-state reference executor. Shards,
// BatchSize and QueueDepth in cfg are ignored.
func NewSequential(cfg Config) *Sequential {
	cfg.Shards = 1
	return &Sequential{cfg: cfg, s: newShard(0, &cfg)}
}

// Install applies fn to the named checker's state for switchID.
func (q *Sequential) Install(checker string, switchID uint32, fn func(*pipeline.State) error) error {
	for i, c := range q.cfg.Checkers {
		if c.Name == checker {
			return fn(q.s.state(i, switchID))
		}
	}
	return errUnknownChecker(checker)
}

// Warm eagerly rebuilds the lock-free table snapshots of every state
// replica created so far (see Engine.Warm).
func (q *Sequential) Warm() { q.s.warm() }

// Process runs all checkers over one packet.
func (q *Sequential) Process(p Packet) { q.s.process(&p) }

// ProcessBatch runs all checkers over a batch of packets through the
// same path the sharded workers use: the batched bytecode-VM path when
// every checker qualifies (see batch.go), otherwise the per-packet
// loop.
func (q *Sequential) ProcessBatch(pkts []Packet) {
	if q.s.batchVM {
		q.s.processBatch(pkts)
		return
	}
	for i := range pkts {
		q.s.process(&pkts[i])
	}
}

// Counts returns the aggregate outcome so far.
func (q *Sequential) Counts() Counts {
	c := q.s.counts
	c.PerChecker = make([]CheckerCounts, len(q.cfg.Checkers))
	for i, ck := range q.cfg.Checkers {
		c.PerChecker[i] = q.s.perChecker[i]
		c.PerChecker[i].Name = ck.Name
	}
	return c
}

// Reports returns the digests collected so far (requires KeepReports).
func (q *Sequential) Reports() []Report { return q.s.reports }

// VMContexts invokes f on each persistent batch-VM context and its
// program, in checker order; a no-op when the batched path is
// inactive. This exists for the arena-aliasing suite, which
// deliberately poisons the contexts between batches to prove no
// scratch value survives into the next packet's outcome.
func (q *Sequential) VMContexts(f func(*bytecode.Prog, *bytecode.Ctx)) {
	for i, c := range q.s.vmCtxs {
		f(q.s.vmProgs[i], c)
	}
}
