package engine

import "repro/internal/pipeline"

// Sequential executes the exact per-packet code path the sharded
// workers run, inline on the caller's goroutine against a single
// (unsharded) state set. It is the ground-truth reference the parallel
// engine is differentially tested against — the same role the eval
// interpreter plays for the compiled pipeline.
type Sequential struct {
	cfg Config
	s   *shard
}

// NewSequential builds the single-state reference executor. Shards,
// BatchSize and QueueDepth in cfg are ignored.
func NewSequential(cfg Config) *Sequential {
	cfg.Shards = 1
	return &Sequential{cfg: cfg, s: newShard(0, &cfg)}
}

// Install applies fn to the named checker's state for switchID.
func (q *Sequential) Install(checker string, switchID uint32, fn func(*pipeline.State) error) error {
	for i, c := range q.cfg.Checkers {
		if c.Name == checker {
			return fn(q.s.state(i, switchID))
		}
	}
	return errUnknownChecker(checker)
}

// Process runs all checkers over one packet.
func (q *Sequential) Process(p Packet) { q.s.process(&p) }

// Counts returns the aggregate outcome so far.
func (q *Sequential) Counts() Counts {
	c := q.s.counts
	c.PerChecker = make([]CheckerCounts, len(q.cfg.Checkers))
	for i, ck := range q.cfg.Checkers {
		c.PerChecker[i] = q.s.perChecker[i]
		c.PerChecker[i].Name = ck.Name
	}
	return c
}

// Reports returns the digests collected so far (requires KeepReports).
func (q *Sequential) Reports() []Report { return q.s.reports }
