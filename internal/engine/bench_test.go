package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// benchEngineBatch measures steady-state per-packet cost of the batched
// bytecode-VM path at a given batch size, through the same
// Sequential.ProcessBatch entry the sharded workers use. ns/op is
// nanoseconds per packet.
func benchEngineBatch(b *testing.B, batch int) {
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		b.Fatal(err)
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks})
	pkts, pairs := experiments.CampusEnginePackets(4096, 7)
	if err := experiments.ConfigureReplayEngine(seq.Install, pairs); err != nil {
		b.Fatal(err)
	}
	seq.Warm()
	for lo := 0; lo < len(pkts); lo += batch {
		seq.ProcessBatch(pkts[lo:min(lo+batch, len(pkts))])
	}
	b.ReportAllocs()
	b.ResetTimer()
	lo := 0
	for i := 0; i < b.N; i += batch {
		hi := lo + batch
		if hi > len(pkts) {
			lo, hi = 0, batch
		}
		seq.ProcessBatch(pkts[lo:hi])
		lo = hi
	}
}

func BenchmarkEngineBatch1(b *testing.B)  { benchEngineBatch(b, 1) }
func BenchmarkEngineBatch16(b *testing.B) { benchEngineBatch(b, 16) }
func BenchmarkEngineBatch64(b *testing.B) { benchEngineBatch(b, 64) }

// TestBatchAllocs is the batched path's allocation budget: steady-state
// batched checking must average at most 1 heap allocation per packet
// (the report-free benign workload is in practice allocation-free; the
// budget of 1 leaves room for rare pool refills).
func TestBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget is meaningless under -race")
	}
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks})
	pkts, pairs := experiments.CampusEnginePackets(512, 5)
	if err := experiments.ConfigureReplayEngine(seq.Install, pairs); err != nil {
		t.Fatal(err)
	}
	seq.Warm()
	const batch = 64
	for lo := 0; lo < len(pkts); lo += batch {
		seq.ProcessBatch(pkts[lo:min(lo+batch, len(pkts))])
	}
	lo := 0
	n := testing.AllocsPerRun(50, func() {
		hi := lo + batch
		if hi > len(pkts) {
			lo, hi = 0, batch
		}
		seq.ProcessBatch(pkts[lo:hi])
		lo = hi
	})
	if perPkt := n / batch; perPkt > 1 {
		t.Errorf("steady-state batched check: %.3f allocs/packet, budget 1", perPkt)
	}
}
