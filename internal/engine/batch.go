package engine

import (
	"repro/internal/bytecode"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
)

// Batched bytecode-VM execution.
//
// The per-packet path (process) is hop-major: every checker decodes its
// telemetry blob, executes one hop, and re-encodes, packet by packet.
// The batched path amortizes the per-packet fixed costs over a whole
// submission batch and drops the codec entirely:
//
//   - checker-major order: one checker runs over every packet in the
//     batch before the next checker starts, so its bytecode, side
//     tables, and persistent Ctx stay hot in cache;
//   - resident PHV: BeginTrace/BeginHop reset the PHV from the
//     program's template between hops instead of encode/decode through
//     the wire codec (byte-equivalent because every telemetry write is
//     width-masked on store);
//   - per-batch table-version check: BeginBatch revalidates the TCAM
//     memo caches once, and lookups inside the batch skip the version
//     poll (concurrent Install becomes visible with at most one batch
//     of delay);
//   - one persistent Ctx per checker with ephemeral report arenas, so
//     steady state allocates nothing per packet.
//
// Checker-major order changes when a reject can halt a trace: the
// hop-major path stops executing remaining hops once any checker
// rejects. The batched path is therefore only enabled when every
// checker (a) has a bytecode form, (b) checks only the last hop, and
// (c) can set hydra.reject exclusively in its checker block
// (Prog.RejectOnlyInChecker). Under those conditions a reject can first
// become observable after the final hop, where "halt remaining hops" is
// a no-op, so counts, verdicts, and report multisets are identical to
// the per-packet path; only the ordering of Engine.Reports() differs
// (checker-major within a batch rather than hop-major within a packet),
// and it remains deterministic for a given shard count.

// setupBatch decides whether this shard can use the batched VM path and
// builds the per-checker execution state if so.
func (s *shard) setupBatch() {
	if s.cfg.NoBatch || len(s.cfg.Checkers) == 0 {
		return
	}
	n := len(s.cfg.Checkers)
	progs := make([]*bytecode.Prog, n)
	for i, c := range s.cfg.Checkers {
		vp := c.RT.VM()
		if vp == nil || c.RT.CheckEveryHop || !vp.RejectOnlyInChecker() {
			return
		}
		progs[i] = vp
	}
	s.batchVM = true
	s.vmProgs = progs
	s.vmCtxs = make([]*bytecode.Ctx, n)
	s.vmBinds = make([][]bindPair, n)
	s.hot = make([][]swEnt, n)
	for i, vp := range progs {
		s.vmCtxs[i] = vp.AcquireCtx()
		slots := vp.BindSlots()
		for bi, path := range vp.Bindings() {
			for src, p := range stdHdrPaths {
				if p == path {
					s.vmBinds[i] = append(s.vmBinds[i], bindPair{src: src, dst: int(slots[bi])})
					break
				}
			}
		}
	}
}

// hotState resolves per-(checker, switch) state through a small
// linear-scan cache. Campus traces touch 3-4 switches, so the scan is
// 1-2 compares in practice — cheaper than the map hash in s.state, and
// safe to cache because the states maps only ever grow (a *State
// pointer, once created, is never replaced).
func (s *shard) hotState(ci int, switchID uint32) *pipeline.State {
	hot := s.hot[ci]
	for j := range hot {
		if hot[j].id == switchID {
			return hot[j].st
		}
	}
	st := s.state(ci, switchID)
	s.hot[ci] = append(hot, swEnt{id: switchID, st: st})
	return st
}

// processBatch runs every checker over every packet of the batch in
// checker-major order. See the package comment above for the parity
// argument.
func (s *shard) processBatch(batch []Packet) {
	n := len(batch)
	if cap(s.hvBuf) < n {
		s.hvBuf = make([][numStdHdrs]pipeline.Value, n)
		s.rejBuf = make([]bool, n)
		s.repBuf = make([]int32, n)
	}
	hv := s.hvBuf[:n]
	rej := s.rejBuf[:n]
	rep := s.repBuf[:n]
	for i := range batch {
		fillHvals(&batch[i], &hv[i])
		rej[i] = false
		rep[i] = 0
	}
	for ci := range s.vmProgs {
		vp := s.vmProgs[ci]
		c := s.vmCtxs[ci]
		vp.BeginBatch(c)
		for pi := range batch {
			s.runVMTrace(ci, &batch[pi], &hv[pi], pi)
		}
	}
	for pi := range batch {
		p := &batch[pi]
		s.counts.Packets++
		if rej[pi] {
			s.counts.Rejected++
		} else {
			s.counts.Forwarded++
		}
		if s.cfg.Verdicts != nil && p.Index >= 0 {
			s.cfg.Verdicts[p.Index] = Verdict{Reject: rej[pi], Reports: rep[pi]}
		}
	}
}

// runVMTrace executes one checker over one packet's full path with a
// resident PHV, publishing reports per hop as the per-packet path does.
func (s *shard) runVMTrace(ci int, p *Packet, hv *[numStdHdrs]pipeline.Value, pi int) {
	vp := s.vmProgs[ci]
	c := s.vmCtxs[ci]
	c.BeginEphemeralReports()
	vp.BeginTrace(c)
	binds := s.vmBinds[ci]
	reported := 0
	nHops := len(p.Hops)
	for h := 0; h < nHops; h++ {
		hop := &p.Hops[h]
		first, last := h == 0, h == nHops-1
		hv[hdrInPort] = pipeline.B(8, uint64(hop.InPort))
		hv[hdrEgPort] = pipeline.B(8, uint64(hop.OutPort))
		vp.BeginHop(c, s.hotState(ci, hop.SwitchID), hop.SwitchID, int(p.Len), first, last)
		for _, bp := range binds {
			c.PHV[bp.dst] = hv[bp.src]
		}
		if first {
			vp.ExecInit(c)
		}
		vp.ExecTelemetry(c)
		if last {
			vp.ExecChecker(c)
		}
		if nr := len(c.Reports) - reported; nr > 0 {
			s.counts.Reports += uint64(nr)
			s.perChecker[ci].Reports += uint64(nr)
			s.repBuf[pi] += int32(nr)
			name := s.cfg.Checkers[ci].Name
			if s.prod != nil {
				at := s.cfg.ReportBus.Now()
				for _, r := range c.Reports[reported:] {
					s.prod.Publish(reportbus.DigestFrom(name, hop.SwitchID, at, r))
				}
			}
			if s.cfg.KeepReports {
				for _, r := range c.Reports[reported:] {
					args := make([]uint64, len(r.Args))
					for j, a := range r.Args {
						args[j] = a.V
					}
					s.reports = append(s.reports, Report{
						Checker:  name,
						SwitchID: hop.SwitchID,
						Args:     args,
					})
				}
			}
			reported = len(c.Reports)
		}
	}
	// The checker block only runs at the last hop and the PHV is still
	// live, so the reject flag is read once after the loop.
	if vp.Reject(c) {
		s.rejBuf[pi] = true
		s.perChecker[ci].Rejected++
	}
}
