// Package engine is a flow-sharded, batched execution engine for
// compiled Hydra checkers — the software substrate's answer to the
// Tofino pipeline's inherent parallelism. The hardware checks every
// packet at line rate because packets stream through parallel pipeline
// stages; a software substrate gets its parallelism from cores instead,
// so the engine fans packets out across N worker shards.
//
// The sharding model preserves checker semantics:
//
//   - Assignment is by RSS-style symmetric Toeplitz hash of the 5-tuple
//     (dataplane.FlowKey.RSSHash), so every packet of a flow — in both
//     directions — executes on the same shard, in submission order.
//   - Each shard owns a private replica of every checker's per-switch
//     state (tables and registers). Control tables are replicated via
//     Install, so table lookups read identical state on every shard;
//     per-flow sensor writes stay shard-local, so there is no
//     cross-shard register contention and no locking on the hot path
//     beyond the pipeline's own table mutexes.
//   - Telemetry-carried state needs no care at all: it rides in the
//     per-packet blob exactly as on the wire.
//
// Checkers whose verdicts depend only on packet-carried telemetry and
// per-flow control/sensor state therefore produce byte-identical
// verdict and report totals at any shard count. Cross-flow aggregations
// (the load-balance checker's port-load sensors) are maintained
// per-shard — like per-pipe registers on a multi-pipe Tofino — and only
// their threshold behavior can observe the split.
//
// Packets move through bounded batches with backpressure: Submit blocks
// when a shard's queue is full, and Drain flushes partial batches,
// waits for all workers, and merges per-shard results into one
// deterministic verdict/report stream.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/compiler"
	"repro/internal/dataplane"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
)

// Checker is one compiled program the engine executes per packet.
type Checker struct {
	Name string
	RT   *compiler.Runtime
}

// Hop is one switch traversal of a packet's path.
type Hop struct {
	SwitchID uint32
	InPort   uint16
	OutPort  uint16
}

// Packet is one unit of work: a flow-identified packet and the path it
// takes through the fabric. Hops may be shared between packets (the
// engine never mutates it).
type Packet struct {
	Key  dataplane.FlowKey
	Len  uint32
	Hops []Hop
	// Index, when Config.Verdicts is set, selects the slot the packet's
	// verdict is recorded into; -1 records nothing.
	Index int32
}

// Verdict is the per-packet outcome when Config.Verdicts is enabled.
type Verdict struct {
	Reject  bool
	Reports int32
}

// Report is one digest raised during engine execution, tagged with its
// provenance.
type Report struct {
	Checker  string
	SwitchID uint32
	Args     []uint64
}

// CheckerCounts aggregates one checker's outcomes across all shards.
type CheckerCounts struct {
	Name     string
	Rejected uint64
	Reports  uint64
}

// Counts is the merged aggregate outcome of a drained engine. For a
// fixed packet set, every field is deterministic and independent of
// shard count, batch size, and scheduling (see the package comment for
// the per-flow-state caveat).
type Counts struct {
	Packets   uint64
	Forwarded uint64
	Rejected  uint64
	Reports   uint64
	// Errors counts checker executions that failed; like the netsim
	// switch, an execution error never halts the packet.
	Errors     uint64
	PerChecker []CheckerCounts
}

// Config sizes the engine.
type Config struct {
	// Shards is the worker count; <= 0 means GOMAXPROCS.
	Shards int
	// BatchSize is the packets per dispatch batch (default 64). Larger
	// batches amortize channel operations; smaller ones reduce latency.
	BatchSize int
	// QueueDepth is the batches buffered per shard before Submit blocks
	// (default 8) — the engine's backpressure bound.
	QueueDepth int
	// Checkers are executed in order at every hop.
	Checkers []Checker
	// Verdicts, when non-nil, records each packet's verdict at
	// Verdicts[Packet.Index].
	Verdicts []Verdict
	// KeepReports retains full report digests (returned by Reports).
	// Off, only counts are kept — the right choice for replay
	// benchmarks where reports would accumulate unboundedly.
	KeepReports bool
	// ReportBus, when set, receives every raised digest: each shard owns
	// one ring producer on the bus, so the hot path enqueues without a
	// shared lock and a full ring drops (with accounting) instead of
	// blocking the worker. Composable with KeepReports.
	ReportBus *reportbus.Bus
	// NoBatch disables the bytecode-VM batched execution path, forcing
	// hop-major per-packet execution through Checker.RT.RunHop. The
	// engine also falls back automatically when a checker has no
	// bytecode form, checks every hop, or can reject mid-trace.
	NoBatch bool
}

// Engine executes checkers over submitted packets on sharded workers.
type Engine struct {
	cfg    Config
	shards []*shard
	// pending accumulates each shard's next batch on the dispatcher
	// side; Submit is single-goroutine by contract (like a NIC's
	// dispatch stage).
	pending  [][]Packet
	batchLen int
	pool     sync.Pool
	wg       sync.WaitGroup
	drained  bool
}

// New builds an engine and starts its workers.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	e := &Engine{
		cfg:      cfg,
		batchLen: cfg.BatchSize,
		pending:  make([][]Packet, cfg.Shards),
	}
	e.pool.New = func() any { return make([]Packet, 0, cfg.BatchSize) }
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(i, &cfg)
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			s.run(&e.pool)
		}()
	}
	return e
}

// Shards returns the configured shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Install applies fn to the named checker's state for switchID on every
// shard, creating the per-shard replica if needed. It must be called
// before packets that touch that state are submitted (control-plane
// installs during a run go through the pipeline table mutexes and are
// safe, but replica creation is not).
func (e *Engine) Install(checker string, switchID uint32, fn func(*pipeline.State) error) error {
	idx := -1
	for i, c := range e.cfg.Checkers {
		if c.Name == checker {
			idx = i
			break
		}
	}
	if idx < 0 {
		return errUnknownChecker(checker)
	}
	for _, s := range e.shards {
		if err := fn(s.state(idx, switchID)); err != nil {
			return fmt.Errorf("engine: installing into %s on switch %d (shard %d): %w", checker, switchID, s.id, err)
		}
	}
	return nil
}

// Warm eagerly rebuilds the lock-free table snapshots of every state
// replica created so far (pipeline.State.Warm). Call it after a batch
// of Installs and before submitting traffic, so the first packets don't
// pay the O(n) snapshot rebuilds on the data path.
func (e *Engine) Warm() {
	for _, s := range e.shards {
		s.warm()
	}
}

func (s *shard) warm() {
	for _, states := range s.states {
		for _, st := range states {
			st.Warm()
		}
	}
}

func errUnknownChecker(name string) error {
	return fmt.Errorf("engine: unknown checker %q", name)
}

// ShardOf returns the shard index a flow key maps to.
func (e *Engine) ShardOf(k dataplane.FlowKey) int {
	return int(k.RSSHash() % uint32(len(e.shards)))
}

// Submit hands one packet to its flow's shard, blocking for
// backpressure when the shard's queue is full. Submit is not safe for
// concurrent use — it is the dispatcher stage.
func (e *Engine) Submit(p Packet) {
	si := 0
	if len(e.shards) > 1 {
		si = e.ShardOf(p.Key)
	}
	if e.pending[si] == nil {
		e.pending[si] = e.pool.Get().([]Packet)[:0]
	}
	e.pending[si] = append(e.pending[si], p)
	if len(e.pending[si]) >= e.batchLen {
		e.shards[si].in <- e.pending[si]
		e.pending[si] = nil
	}
}

// Flush pushes all partially filled batches to their shards.
func (e *Engine) Flush() {
	for si, b := range e.pending {
		if len(b) > 0 {
			e.shards[si].in <- b
			e.pending[si] = nil
		}
	}
}

// Drain flushes partial batches, waits for every worker to finish its
// queue (graceful drain), and returns the merged counts. The engine
// cannot accept packets afterwards.
func (e *Engine) Drain() Counts {
	if e.drained {
		return e.counts()
	}
	e.drained = true
	e.Flush()
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	return e.counts()
}

func (e *Engine) counts() Counts {
	total := Counts{PerChecker: make([]CheckerCounts, len(e.cfg.Checkers))}
	for i, c := range e.cfg.Checkers {
		total.PerChecker[i].Name = c.Name
	}
	for _, s := range e.shards {
		total.Packets += s.counts.Packets
		total.Forwarded += s.counts.Forwarded
		total.Rejected += s.counts.Rejected
		total.Reports += s.counts.Reports
		total.Errors += s.counts.Errors
		for i := range total.PerChecker {
			total.PerChecker[i].Rejected += s.perChecker[i].Rejected
			total.PerChecker[i].Reports += s.perChecker[i].Reports
		}
	}
	return total
}

// Reports returns the merged report stream of a drained engine
// (requires Config.KeepReports). The merge is deterministic: shard
// order, and submission order within a shard.
func (e *Engine) Reports() []Report {
	if !e.drained {
		panic("engine: Reports before Drain")
	}
	var out []Report
	for _, s := range e.shards {
		out = append(out, s.reports...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shard worker

// Header-binding paths the engine can provide, indexed by the hdr*
// constants below. Per-checker bind plans map these dense indices to
// HopEnv.SlotHeaders positions once at construction, so the per-packet
// path writes a fixed value array — no map, no string hashing.
const (
	hdrInPort = iota // per-hop
	hdrEgPort        // per-hop
	hdrSkipFwd
	hdrIPv4Valid
	hdrIPv4Src
	hdrIPv4Dst
	hdrIPv4Proto
	hdrTCPValid
	hdrTCPSport
	hdrTCPDport
	hdrUDPValid
	hdrUDPSport
	hdrUDPDport
	// Headers a 5-tuple trace record can never carry, bound invalid to
	// match netsim.BindPacketHeaders for a plain (untunneled, unrouted)
	// packet.
	hdrInnerIPv4Valid
	hdrInnerTCPValid
	hdrInnerUDPValid
	hdrSrcRoute0Valid

	numStdHdrs
)

var stdHdrPaths = [numStdHdrs]string{
	hdrInPort:         "standard_metadata.ingress_port",
	hdrEgPort:         "standard_metadata.egress_port",
	hdrSkipFwd:        "fabric_metadata.skip_forwarding",
	hdrIPv4Valid:      "hdr.ipv4.$valid$",
	hdrIPv4Src:        "hdr.ipv4.src_addr",
	hdrIPv4Dst:        "hdr.ipv4.dst_addr",
	hdrIPv4Proto:      "hdr.ipv4.protocol",
	hdrTCPValid:       "hdr.tcp.$valid$",
	hdrTCPSport:       "hdr.tcp.sport",
	hdrTCPDport:       "hdr.tcp.dport",
	hdrUDPValid:       "hdr.udp.$valid$",
	hdrUDPSport:       "hdr.udp.sport",
	hdrUDPDport:       "hdr.udp.dport",
	hdrInnerIPv4Valid: "hdr.inner_ipv4.$valid$",
	hdrInnerTCPValid:  "hdr.inner_tcp.$valid$",
	hdrInnerUDPValid:  "hdr.inner_udp.$valid$",
	hdrSrcRoute0Valid: "hdr.srcRoutes[0].$valid$",
}

// bindPair routes one engine-provided header value (hvals[src]) to one
// checker's SlotHeaders[dst].
type bindPair struct{ src, dst int }

type shard struct {
	id     int
	cfg    *Config
	in     chan []Packet
	states []map[uint32]*pipeline.State
	// hvals holds this packet/hop's engine-provided header values;
	// binds[i] scatters them into slotHeaders[i], which is laid out per
	// Checkers[i].RT.Bindings(). Binding paths the engine cannot supply
	// stay zero-width (absent), like a missing map key before.
	hvals       [numStdHdrs]pipeline.Value
	binds       [][]bindPair
	slotHeaders [][]pipeline.Value
	blobs       [][]byte
	counts      Counts
	perChecker  []CheckerCounts
	reports     []Report
	// prod is this shard's ring producer on Config.ReportBus (nil when
	// no bus is attached).
	prod *reportbus.Producer

	// Batched bytecode-VM execution state (see batch.go). batchVM is
	// true when every checker qualifies; the vm* slices then hold one
	// compiled program, one persistent context, and one direct PHV
	// scatter plan per checker.
	batchVM bool
	vmProgs []*bytecode.Prog
	vmCtxs  []*bytecode.Ctx
	vmBinds [][]bindPair
	// hot is a per-checker linear-scan cache over states: traces touch
	// a handful of switches, so a 2-3 entry scan beats a map hash per
	// checker-hop.
	hot [][]swEnt
	// Per-batch scratch, grown to the batch length.
	hvBuf  [][numStdHdrs]pipeline.Value
	rejBuf []bool
	repBuf []int32
}

// swEnt is one entry of the shard's hot state cache.
type swEnt struct {
	id uint32
	st *pipeline.State
}

func newShard(id int, cfg *Config) *shard {
	s := &shard{
		id:          id,
		cfg:         cfg,
		in:          make(chan []Packet, cfg.QueueDepth),
		states:      make([]map[uint32]*pipeline.State, len(cfg.Checkers)),
		binds:       make([][]bindPair, len(cfg.Checkers)),
		slotHeaders: make([][]pipeline.Value, len(cfg.Checkers)),
		blobs:       make([][]byte, len(cfg.Checkers)),
		perChecker:  make([]CheckerCounts, len(cfg.Checkers)),
	}
	for i := range s.states {
		s.states[i] = map[uint32]*pipeline.State{}
	}
	if cfg.ReportBus != nil {
		s.prod = cfg.ReportBus.RingProducer(fmt.Sprintf("engine-shard:%d", id))
	}
	for i, c := range cfg.Checkers {
		bindings := c.RT.Bindings()
		s.slotHeaders[i] = make([]pipeline.Value, len(bindings))
		for dst, path := range bindings {
			for src, p := range stdHdrPaths {
				if p == path {
					s.binds[i] = append(s.binds[i], bindPair{src: src, dst: dst})
					break
				}
			}
		}
	}
	s.setupBatch()
	return s
}

// state returns (creating on demand) this shard's replica of checker
// i's state on the given switch.
func (s *shard) state(i int, switchID uint32) *pipeline.State {
	st, ok := s.states[i][switchID]
	if !ok {
		st = s.cfg.Checkers[i].RT.Prog.NewState()
		s.states[i][switchID] = st
	}
	return st
}

func (s *shard) run(pool *sync.Pool) {
	for batch := range s.in {
		if s.batchVM {
			s.processBatch(batch)
		} else {
			for i := range batch {
				s.process(&batch[i])
			}
		}
		pool.Put(batch[:0])
	}
}

// bindBase sets the packet-constant header bindings (the subset of
// netsim.BindPacketHeaders derivable from a 5-tuple trace record).
func (s *shard) bindBase(p *Packet) {
	fillHvals(p, &s.hvals)
}

func fillHvals(p *Packet, h *[numStdHdrs]pipeline.Value) {
	isIPv4 := p.Key != (dataplane.FlowKey{})
	h[hdrIPv4Valid] = pipeline.BoolV(isIPv4)
	h[hdrIPv4Src] = pipeline.B(32, uint64(p.Key.Src))
	h[hdrIPv4Dst] = pipeline.B(32, uint64(p.Key.Dst))
	h[hdrIPv4Proto] = pipeline.B(8, uint64(p.Key.Proto))
	isTCP := p.Key.Proto == dataplane.ProtoTCP
	isUDP := p.Key.Proto == dataplane.ProtoUDP
	h[hdrTCPValid] = pipeline.BoolV(isTCP)
	h[hdrUDPValid] = pipeline.BoolV(isUDP)
	sport, dport := pipeline.B(16, uint64(p.Key.Sport)), pipeline.B(16, uint64(p.Key.Dport))
	if isTCP {
		h[hdrTCPSport], h[hdrTCPDport] = sport, dport
	} else {
		h[hdrTCPSport], h[hdrTCPDport] = pipeline.B(16, 0), pipeline.B(16, 0)
	}
	if isUDP {
		h[hdrUDPSport], h[hdrUDPDport] = sport, dport
	} else {
		h[hdrUDPSport], h[hdrUDPDport] = pipeline.B(16, 0), pipeline.B(16, 0)
	}
	h[hdrSkipFwd] = pipeline.BoolV(false)
	h[hdrInnerIPv4Valid] = pipeline.BoolV(false)
	h[hdrInnerTCPValid] = pipeline.BoolV(false)
	h[hdrInnerUDPValid] = pipeline.BoolV(false)
	h[hdrSrcRoute0Valid] = pipeline.BoolV(false)
}

// process runs every checker over the packet's path, hop-major like the
// netsim switch: at each hop all checkers execute; a reject halts the
// packet at that hop.
func (s *shard) process(p *Packet) {
	s.counts.Packets++
	s.bindBase(p)
	for i := range s.blobs {
		// Truncate, keeping capacity: the first hop decodes an empty
		// blob, and ReuseBlob re-encodes into the same storage.
		s.blobs[i] = s.blobs[i][:0]
	}
	reject := false
	var nReports int32
	for h := range p.Hops {
		hop := &p.Hops[h]
		first, last := h == 0, h == len(p.Hops)-1
		s.hvals[hdrInPort] = pipeline.B(8, uint64(hop.InPort))
		s.hvals[hdrEgPort] = pipeline.B(8, uint64(hop.OutPort))
		for i := range s.cfg.Checkers {
			c := &s.cfg.Checkers[i]
			sh := s.slotHeaders[i]
			for _, bp := range s.binds[i] {
				sh[bp.dst] = s.hvals[bp.src]
			}
			env := compiler.HopEnv{
				State:       s.state(i, hop.SwitchID),
				SwitchID:    hop.SwitchID,
				SlotHeaders: sh,
				PacketLen:   p.Len,
				ReuseBlob:   true,
			}
			hr, err := c.RT.RunHop(s.blobs[i], env, first, last)
			if err != nil {
				s.counts.Errors++
				continue
			}
			s.blobs[i] = hr.Blob
			if n := len(hr.Reports); n > 0 {
				s.counts.Reports += uint64(n)
				s.perChecker[i].Reports += uint64(n)
				nReports += int32(n)
				if s.prod != nil {
					at := s.cfg.ReportBus.Now()
					for _, rep := range hr.Reports {
						s.prod.Publish(reportbus.DigestFrom(c.Name, hop.SwitchID, at, rep))
					}
				}
				if s.cfg.KeepReports {
					for _, rep := range hr.Reports {
						args := make([]uint64, len(rep.Args))
						for j, a := range rep.Args {
							args[j] = a.V
						}
						s.reports = append(s.reports, Report{
							Checker:  c.Name,
							SwitchID: hop.SwitchID,
							Args:     args,
						})
					}
				}
			}
			if hr.Reject {
				reject = true
				s.perChecker[i].Rejected++
			}
		}
		if reject {
			break
		}
	}
	if reject {
		s.counts.Rejected++
	} else {
		s.counts.Forwarded++
	}
	if s.cfg.Verdicts != nil && p.Index >= 0 {
		s.cfg.Verdicts[p.Index] = Verdict{Reject: reject, Reports: nReports}
	}
}
