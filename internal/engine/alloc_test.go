package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// TestPacketAllocs is the engine's hot-path allocation budget: after
// warm-up (pools filled, per-switch states created, telemetry buffers
// grown, TCAM caches populated), checking one benign campus packet —
// all 12 corpus checkers across every hop of its path — must cost at
// most 2 heap allocations.
func TestPacketAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget is meaningless under -race")
	}
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks})
	pkts, pairs := experiments.CampusEnginePackets(512, 5)
	if err := experiments.ConfigureReplayEngine(seq.Install, pairs); err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		seq.Process(pkts[i])
	}

	i := 0
	n := testing.AllocsPerRun(400, func() {
		seq.Process(pkts[i%len(pkts)])
		i++
	})
	if n > 2 {
		t.Errorf("steady-state packet check: %.2f allocs/packet, budget 2", n)
	}
}
