package engine_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/reportbus"
)

// TestEngineMatchesSequential is the tentpole invariant: for the campus
// replay, the sharded engine's merged counts and per-packet verdicts
// are identical to the single-state sequential reference at every shard
// count.
func TestEngineMatchesSequential(t *testing.T) {
	const packets, seed = 4000, 7
	want, err := experiments.RunSequentialReplay(experiments.EngineReplayConfig{
		Packets: packets, Seed: seed, KeepVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want.Counts.Packets != packets {
		t.Fatalf("sequential processed %d packets, want %d", want.Counts.Packets, packets)
	}
	if want.Counts.Errors != 0 {
		t.Fatalf("sequential replay had %d checker errors", want.Counts.Errors)
	}
	if want.Counts.Forwarded != packets {
		t.Fatalf("benign replay forwarded %d of %d packets; rejections by checker: %+v",
			want.Counts.Forwarded, packets, want.Counts.PerChecker)
	}

	for _, shards := range []int{1, 2, 3, 8} {
		got, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
			Packets: packets, Seed: seed, Shards: shards, KeepVerdicts: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Shards != shards {
			t.Errorf("shards=%d: engine reports %d shards", shards, got.Shards)
		}
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Errorf("shards=%d: counts diverge\n got %+v\nwant %+v", shards, got.Counts, want.Counts)
		}
		if !reflect.DeepEqual(got.Verdicts, want.Verdicts) {
			for i := range got.Verdicts {
				if got.Verdicts[i] != want.Verdicts[i] {
					t.Errorf("shards=%d: packet %d verdict %+v, sequential %+v", shards, i, got.Verdicts[i], want.Verdicts[i])
					break
				}
			}
		}
	}
}

// TestLinkedMatchesNoLink pins the map-based interpreter as ground
// truth (NoLink) and checks the linked executor — the default for both
// the sequential reference and the sharded engine — against it on the
// campus replay: identical merged counts and per-packet verdicts at
// shard counts 1, 4 and 8.
func TestLinkedMatchesNoLink(t *testing.T) {
	const packets, seed = 4000, 9
	want, err := experiments.RunSequentialReplay(experiments.EngineReplayConfig{
		Packets: packets, Seed: seed, KeepVerdicts: true, NoLink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want.Counts.Errors != 0 {
		t.Fatalf("map-based replay had %d checker errors", want.Counts.Errors)
	}

	linkedSeq, err := experiments.RunSequentialReplay(experiments.EngineReplayConfig{
		Packets: packets, Seed: seed, KeepVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(linkedSeq.Counts, want.Counts) {
		t.Errorf("sequential linked counts diverge from map-based\n got %+v\nwant %+v", linkedSeq.Counts, want.Counts)
	}
	if !reflect.DeepEqual(linkedSeq.Verdicts, want.Verdicts) {
		t.Errorf("sequential linked per-packet verdicts diverge from map-based")
	}

	for _, shards := range []int{1, 4, 8} {
		got, err := experiments.RunEngineReplay(experiments.EngineReplayConfig{
			Packets: packets, Seed: seed, Shards: shards, KeepVerdicts: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Counts, want.Counts) {
			t.Errorf("shards=%d: linked counts diverge from map-based\n got %+v\nwant %+v", shards, got.Counts, want.Counts)
		}
		if !reflect.DeepEqual(got.Verdicts, want.Verdicts) {
			for i := range got.Verdicts {
				if got.Verdicts[i] != want.Verdicts[i] {
					t.Errorf("shards=%d: packet %d linked verdict %+v, map-based %+v", shards, i, got.Verdicts[i], want.Verdicts[i])
					break
				}
			}
		}
	}
}

// violationWorkload builds packets over a few flows whose paths violate
// checkers: egress through non-allow-listed port 13 (egress-validity
// reject + report, multi-tenancy reject) and a leaf-only path that
// skips the waypoint (waypointing, routing-validity, valley-free
// rejects). The stateful firewall is left unseeded, so every packet
// also trips it.
func violationWorkload(n int) []engine.Packet {
	badEgress := []engine.Hop{
		{SwitchID: 1, InPort: 3, OutPort: 1},
		{SwitchID: 3, InPort: 1, OutPort: 2},
		{SwitchID: 2, InPort: 1, OutPort: 13},
	}
	noWaypoint := []engine.Hop{
		{SwitchID: 2, InPort: 3, OutPort: 3},
	}
	pkts := make([]engine.Packet, n)
	for i := range pkts {
		key := dataplane.FlowKey{
			Src:   dataplane.IP4(0xac100000 + uint32(i%5)),
			Dst:   dataplane.IP4(0xac110000 + uint32(i%7)),
			Proto: dataplane.ProtoUDP,
			Sport: uint16(40000 + i%5), Dport: uint16(2000 + i%3),
		}
		hops := badEgress
		if i%2 == 1 {
			hops = noWaypoint
		}
		pkts[i] = engine.Packet{Key: key, Len: 512, Hops: hops, Index: int32(i)}
	}
	return pkts
}

type reportKey struct {
	checker  string
	switchID uint32
	args     string
}

func sortedReports(reps []engine.Report) []reportKey {
	out := make([]reportKey, len(reps))
	for i, r := range reps {
		k := reportKey{checker: r.Checker, switchID: r.SwitchID}
		for _, a := range r.Args {
			k.args += fmt.Sprintf("%d,", a)
		}
		out[i] = k
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.checker != b.checker {
			return a.checker < b.checker
		}
		if a.switchID != b.switchID {
			return a.switchID < b.switchID
		}
		return a.args < b.args
	})
	return out
}

// TestEngineViolations drives rejecting traffic through the engine and
// checks counts, per-packet verdicts and the merged report stream (as a
// multiset) against the sequential reference.
func TestEngineViolations(t *testing.T) {
	const n = 600
	pkts := violationWorkload(n)

	run := func(shards int, noLink bool) (engine.Counts, []engine.Verdict, []engine.Report) {
		chks, err := experiments.CorpusCheckersOpt(noLink)
		if err != nil {
			t.Fatal(err)
		}
		verdicts := make([]engine.Verdict, n)
		if shards == 0 {
			seq := engine.NewSequential(engine.Config{Checkers: chks, Verdicts: verdicts, KeepReports: true})
			if err := experiments.ConfigureReplayEngine(seq.Install, nil); err != nil {
				t.Fatal(err)
			}
			for i := range pkts {
				seq.Process(pkts[i])
			}
			return seq.Counts(), verdicts, seq.Reports()
		}
		eng := engine.New(engine.Config{Shards: shards, Checkers: chks, Verdicts: verdicts, KeepReports: true, BatchSize: 16})
		if err := experiments.ConfigureReplayEngine(eng.Install, nil); err != nil {
			t.Fatal(err)
		}
		for i := range pkts {
			eng.Submit(pkts[i])
		}
		counts := eng.Drain()
		return counts, verdicts, eng.Reports()
	}

	wantCounts, wantVerdicts, wantReports := run(0, false)
	if wantCounts.Rejected != n {
		t.Fatalf("violation workload rejected %d of %d packets: %+v", wantCounts.Rejected, n, wantCounts.PerChecker)
	}
	if wantCounts.Reports == 0 || uint64(len(wantReports)) != wantCounts.Reports {
		t.Fatalf("report count %d inconsistent with %d kept digests", wantCounts.Reports, len(wantReports))
	}

	// The map-based interpreter must agree with the linked executor on
	// rejecting traffic too, including the full report stream.
	refCounts, refVerdicts, refReports := run(0, true)
	if !reflect.DeepEqual(refCounts, wantCounts) {
		t.Errorf("map-based counts diverge from linked\n got %+v\nwant %+v", refCounts, wantCounts)
	}
	if !reflect.DeepEqual(refVerdicts, wantVerdicts) {
		t.Errorf("map-based per-packet verdicts diverge from linked")
	}
	if !reflect.DeepEqual(sortedReports(refReports), sortedReports(wantReports)) {
		t.Errorf("map-based report multiset diverges from linked")
	}

	for _, shards := range []int{1, 4} {
		gotCounts, gotVerdicts, gotReports := run(shards, false)
		if !reflect.DeepEqual(gotCounts, wantCounts) {
			t.Errorf("shards=%d: counts diverge\n got %+v\nwant %+v", shards, gotCounts, wantCounts)
		}
		if !reflect.DeepEqual(gotVerdicts, wantVerdicts) {
			t.Errorf("shards=%d: per-packet verdicts diverge from sequential", shards)
		}
		if !reflect.DeepEqual(sortedReports(gotReports), sortedReports(wantReports)) {
			t.Errorf("shards=%d: report multiset diverges from sequential", shards)
		}
	}
}

// TestEngineBackpressure squeezes a large submission through tiny
// batches and a depth-1 queue, so Submit must block on shard
// backpressure; graceful drain must still account for every packet.
func TestEngineBackpressure(t *testing.T) {
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 2, BatchSize: 4, QueueDepth: 1, Checkers: chks})
	if err := experiments.ConfigureReplayEngine(eng.Install, nil); err != nil {
		t.Fatal(err)
	}
	pkts, _ := experiments.CampusEnginePackets(5000, 3)
	for i := range pkts {
		eng.Submit(pkts[i])
	}
	counts := eng.Drain()
	if counts.Packets != 5000 || counts.Forwarded+counts.Rejected != 5000 {
		t.Fatalf("drain lost packets: %+v", counts)
	}
	// Drain is idempotent.
	if again := eng.Drain(); !reflect.DeepEqual(again, counts) {
		t.Fatalf("second Drain returned different counts: %+v vs %+v", again, counts)
	}
}

// TestShardAffinity: both directions of a flow must land on one shard
// (the stateful firewall correlates them), and the spread across shards
// must be genuine.
func TestShardAffinity(t *testing.T) {
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 8, Checkers: chks[:1]})
	defer eng.Drain()
	used := map[int]int{}
	for i := 0; i < 512; i++ {
		k := dataplane.FlowKey{
			Src:   dataplane.IP4(0x0a000000 + uint32(i*2654435761)),
			Dst:   dataplane.IP4(0x0a800000 + uint32(i*40503)),
			Proto: dataplane.ProtoTCP,
			Sport: uint16(1024 + i), Dport: 443,
		}
		rev := dataplane.FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto, Sport: k.Dport, Dport: k.Sport}
		if eng.ShardOf(k) != eng.ShardOf(rev) {
			t.Fatalf("flow %+v and its reverse map to shards %d and %d", k, eng.ShardOf(k), eng.ShardOf(rev))
		}
		used[eng.ShardOf(k)]++
	}
	if len(used) < 6 {
		t.Fatalf("512 flows landed on only %d of 8 shards: %v", len(used), used)
	}
}

// TestInstallUnknownChecker: installs against a checker the engine
// doesn't run must fail loudly on both executors.
func TestInstallUnknownChecker(t *testing.T) {
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 1, Checkers: chks[:1]})
	defer eng.Drain()
	if err := eng.Install("no-such-checker", 1, nil); err == nil {
		t.Error("engine Install accepted an unknown checker")
	}
	seq := engine.NewSequential(engine.Config{Checkers: chks[:1]})
	if err := seq.Install("no-such-checker", 1, nil); err == nil {
		t.Error("sequential Install accepted an unknown checker")
	}
}

// TestConcurrentInstallDuringRun hammers a running engine's tables from
// a control-plane goroutine while the workers process packets: after
// the initial configuration has created every per-shard state replica,
// Install calls go through the pipeline table mutexes and are safe
// concurrently with packet processing (engine.Install's contract). The
// extra firewall pairs allow flows that never appear in the trace, so
// verdicts are unaffected; the test is the race detector's target and a
// liveness check that installs can't wedge the dispatch path.
func TestConcurrentInstallDuringRun(t *testing.T) {
	chks, err := experiments.CorpusCheckers()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 2, BatchSize: 16, Checkers: chks})
	pkts, pairs := experiments.CampusEnginePackets(6000, 11)
	if err := experiments.ConfigureReplayEngine(eng.Install, pairs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			pair := [][2]uint32{{0xc0a80000 + uint32(i), 0xc0a90000 + uint32(i)}}
			for _, sw := range []uint32{1, 2, 3, 4} {
				if err := eng.Install("stateful-firewall", sw, experiments.FirewallSeed(pair)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for i := range pkts {
		eng.Submit(pkts[i])
	}
	close(stop)
	<-done
	counts := eng.Drain()
	if counts.Packets != uint64(len(pkts)) || counts.Errors != 0 {
		t.Fatalf("processed %d packets with %d errors, want %d and 0",
			counts.Packets, counts.Errors, len(pkts))
	}
	if counts.Forwarded != counts.Packets {
		t.Fatalf("concurrent installs changed verdicts: forwarded %d of %d; per-checker: %+v",
			counts.Forwarded, counts.Packets, counts.PerChecker)
	}
}

// TestEngineReportBusDeterministicAggregation wires the engine's shard
// producers to a report bus and requires the aggregated view to be
// shard-count independent: at 1, 4 and 8 shards, the per-key digest
// counts are identical and every raised digest is accounted. The clock
// is frozen so the whole run is one window (Close force-emits it) and
// the rings are sized so nothing drops — under those conditions
// aggregation is deterministic regardless of drain interleaving.
func TestEngineReportBusDeterministicAggregation(t *testing.T) {
	const n = 900
	pkts := violationWorkload(n)

	run := func(shards int) (engine.Counts, map[reportbus.Key]uint64, reportbus.Metrics) {
		chks, err := experiments.CorpusCheckers()
		if err != nil {
			t.Fatal(err)
		}
		sink := &reportbus.CollectExporter{}
		bus := reportbus.New(reportbus.Config{
			RingSize:  1 << 16,
			MaxKeys:   1 << 16,
			Clock:     func() int64 { return 0 },
			Exporters: []reportbus.Exporter{sink},
		})
		eng := engine.New(engine.Config{Shards: shards, Checkers: chks, BatchSize: 16, ReportBus: bus})
		if err := experiments.ConfigureReplayEngine(eng.Install, nil); err != nil {
			t.Fatal(err)
		}
		for i := range pkts {
			eng.Submit(pkts[i])
		}
		counts := eng.Drain()
		bus.Close()
		return counts, sink.CountsByKey(), bus.Metrics()
	}

	wantCounts, wantKeys, wantM := run(1)
	if wantCounts.Reports == 0 {
		t.Fatal("violation workload raised no reports")
	}
	if wantM.Dropped != 0 {
		t.Fatalf("rings dropped %d digests despite oversizing", wantM.Dropped)
	}
	if wantM.Published != wantCounts.Reports {
		t.Fatalf("bus published %d digests, engine raised %d", wantM.Published, wantCounts.Reports)
	}
	if wantM.Unaccounted() != 0 {
		t.Fatalf("unaccounted digests: %d", wantM.Unaccounted())
	}
	var exported uint64
	for _, c := range wantKeys {
		exported += c
	}
	if exported != wantCounts.Reports {
		t.Fatalf("aggregates sum to %d digests, engine raised %d", exported, wantCounts.Reports)
	}

	for _, shards := range []int{4, 8} {
		gotCounts, gotKeys, gotM := run(shards)
		if !reflect.DeepEqual(gotCounts, wantCounts) {
			t.Errorf("shards=%d: engine counts diverge\n got %+v\nwant %+v", shards, gotCounts, wantCounts)
		}
		if gotM.Dropped != 0 || gotM.Unaccounted() != 0 {
			t.Errorf("shards=%d: dropped=%d unaccounted=%d", shards, gotM.Dropped, gotM.Unaccounted())
		}
		if len(gotM.Producers) != shards {
			t.Errorf("shards=%d: %d ring producers registered", shards, len(gotM.Producers))
		}
		if !reflect.DeepEqual(gotKeys, wantKeys) {
			t.Errorf("shards=%d: per-key aggregate counts diverge from single-shard run (%d vs %d keys)",
				shards, len(gotKeys), len(wantKeys))
		}
	}
}
