package wireproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func encodeFrame(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteFrame(typ, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x01},
		bytes.Repeat([]byte{0xab}, 65536),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, p := range payloads {
		if err := w.WriteFrame(byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, p := range payloads {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != byte(i+1) {
			t.Fatalf("frame %d: type = %d, want %d", i, f.Type, i+1)
		}
		if !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(f.Payload), len(p))
		}
		f.Release()
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("at end: err = %v, want io.EOF", err)
	}
}

// TestFrameMalformed pins the typed error for every way a frame can be
// damaged: truncation at each boundary, corrupt CRC, oversized length,
// wrong magic, wrong version.
func TestFrameMalformed(t *testing.T) {
	valid := encodeFrame(t, TypePacketBatch, []byte{1, 2, 3, 4, 5})
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		max     int
		wantErr error
	}{
		{"truncated header", func(b []byte) []byte { return b[:headerLen-3] }, 0, ErrTruncated},
		{"truncated payload", func(b []byte) []byte { return b[:headerLen+2] }, 0, ErrTruncated},
		{"truncated crc", func(b []byte) []byte { return b[:len(b)-1] }, 0, ErrTruncated},
		{"corrupt crc", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, 0, ErrChecksum},
		{"corrupt payload", func(b []byte) []byte { b[headerLen] ^= 0x80; return b }, 0, ErrChecksum},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, 0, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[4] = Version + 1; return b }, 0, ErrBadVersion},
		{"oversized length field", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[6:], DefaultMaxPayload+1)
			return b
		}, 0, ErrOversized},
		{"over reader bound", func(b []byte) []byte { return b }, 4, ErrOversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			r := NewReader(bytes.NewReader(b))
			r.MaxPayload = tc.max
			_, err := r.ReadFrame()
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func samplePackets() []Packet {
	return []Packet{
		{Src: 0xac100001, Dst: 0xac110202, Sport: 40000, Dport: 443, Proto: 6, Len: 1500,
			Hops: []Hop{{Switch: 1, In: 3, Out: 1}, {Switch: 3, In: 1, Out: 2}, {Switch: 2, In: 1, Out: 3}}},
		{Src: 1, Dst: 2, Sport: 53, Dport: 53, Proto: 17, Len: 64, Hops: nil},
		{Src: 0xffffffff, Dst: 0, Sport: 0, Dport: 65535, Proto: 255, Len: 9000,
			Hops: []Hop{{Switch: 0xffffffff, In: 65535, Out: 65535}}},
	}
}

func TestPacketBatchRoundTrip(t *testing.T) {
	pkts := samplePackets()
	payload, err := AppendPacketBatch(nil, pkts)
	if err != nil {
		t.Fatal(err)
	}
	var d BatchDecoder
	if err := d.Reset(payload); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != len(pkts) {
		t.Fatalf("Remaining = %d, want %d", d.Remaining(), len(pkts))
	}
	for i := range pkts {
		p, err := d.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p == nil {
			t.Fatalf("packet %d: early end", i)
		}
		want := pkts[i]
		if p.Src != want.Src || p.Dst != want.Dst || p.Sport != want.Sport ||
			p.Dport != want.Dport || p.Proto != want.Proto || p.Len != want.Len {
			t.Fatalf("packet %d: %+v != %+v", i, *p, want)
		}
		if len(p.Hops) != len(want.Hops) {
			t.Fatalf("packet %d: %d hops, want %d", i, len(p.Hops), len(want.Hops))
		}
		for h := range p.Hops {
			if p.Hops[h] != want.Hops[h] {
				t.Fatalf("packet %d hop %d: %+v != %+v", i, h, p.Hops[h], want.Hops[h])
			}
		}
	}
	p, err := d.Next()
	if err != nil || p != nil {
		t.Fatalf("after last: (%v, %v), want (nil, nil)", p, err)
	}
}

func TestPacketBatchMalformed(t *testing.T) {
	payload, err := AppendPacketBatch(nil, samplePackets())
	if err != nil {
		t.Fatal(err)
	}
	drain := func(payload []byte) error {
		var d BatchDecoder
		if err := d.Reset(payload); err != nil {
			return err
		}
		for {
			p, err := d.Next()
			if err != nil {
				return err
			}
			if p == nil {
				return nil
			}
		}
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"short count", func(b []byte) []byte { return b[:3] }},
		{"huge count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, MaxBatchPackets+1)
			return b
		}},
		{"count over content", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, 100)
			return b
		}},
		{"truncated record", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0xee) }},
		{"hop count over content", func(b []byte) []byte {
			b[4+pktFixedLen-1] = MaxHops // first packet claims 64 hops
			return b
		}},
		{"hop count over bound", func(b []byte) []byte {
			b[4+pktFixedLen-1] = MaxHops + 1
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := drain(tc.mutate(append([]byte(nil), payload...))); err == nil {
				t.Fatal("want decode error")
			}
		})
	}
}

func TestPacketBatchBounds(t *testing.T) {
	if _, err := AppendPacketBatch(nil, make([]Packet, MaxBatchPackets+1)); err == nil {
		t.Fatal("want error encoding oversized batch")
	}
	if _, err := AppendPacketBatch(nil, []Packet{{Hops: make([]Hop, MaxHops+1)}}); err == nil {
		t.Fatal("want error encoding oversized hop list")
	}
}

func TestCredit(t *testing.T) {
	n, err := DecodeCredit(AppendCredit(nil, 7))
	if err != nil || n != 7 {
		t.Fatalf("round trip = (%d, %v), want (7, nil)", n, err)
	}
	if _, err := DecodeCredit([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error on short credit payload")
	}
}
