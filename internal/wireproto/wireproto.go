// Package wireproto is the fleet's length-prefixed, versioned binary
// framing: the protocol hydra-ingestd speaks to its engine workers and
// the workers speak to the central aggregator.
//
// Every frame is
//
//	magic (4B, "HYWP") | version (1B) | type (1B) | payload length (4B, BE)
//	| payload | CRC32-IEEE (4B, BE, over everything before it)
//
// The reader validates magic, version, length bound, and checksum
// before the payload is interpreted, so a corrupt or foreign byte
// stream fails at the framing layer with a typed error instead of
// poisoning a decoder. Payloads are read into pooled buffers sized to
// the frame (Frame.Release returns them), and the hot-path payload —
// the packet batch — has a fixed little-endian binary codec that
// decodes by reslicing, no per-packet allocation. Control payloads
// (hello, seed, stats, summaries) are JSON inside the same framing;
// they run once per connection or per stats tick, where schema
// evolution matters more than nanoseconds.
package wireproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Frame types. The framing layer treats the type as opaque; these
// constants are the fleet's assignment.
const (
	// TypeHello opens every connection: JSON Hello payload.
	TypeHello = byte(iota + 1)
	// TypeSeed carries a chunk of firewall seed pairs: JSON Seed payload.
	TypeSeed
	// TypePacketBatch is the hot path: binary packet batch (see
	// AppendPacketBatch / BatchDecoder).
	TypePacketBatch
	// TypeCredit is the worker's flow-control grant: binary, one uint32
	// count of processed batch frames.
	TypeCredit
	// TypeAggBatch federates closed-window aggregates upstream: JSON.
	TypeAggBatch
	// TypeStats is a periodic worker snapshot: JSON.
	TypeStats
	// TypeSummary is a worker's end-of-session ledger: JSON.
	TypeSummary
	// TypeFin asks the worker to finish its stream; no payload.
	TypeFin
	// TypeFinAck confirms a drained worker: JSON.
	TypeFinAck
)

const (
	// Version is the protocol version this build speaks. A reader
	// rejects frames from any other version.
	Version = 1

	headerLen  = 10
	trailerLen = 4

	// DefaultMaxPayload bounds frames a Reader will accept unless
	// configured otherwise. Seed chunks and aggregate batches stay far
	// below it by construction.
	DefaultMaxPayload = 4 << 20
)

var magic = [4]byte{'H', 'Y', 'W', 'P'}

// Typed framing errors, wrapped with detail by the reader.
var (
	ErrBadMagic   = errors.New("wireproto: bad magic")
	ErrBadVersion = errors.New("wireproto: unsupported version")
	ErrOversized  = errors.New("wireproto: frame exceeds payload bound")
	ErrChecksum   = errors.New("wireproto: checksum mismatch")
	ErrTruncated  = errors.New("wireproto: truncated frame")
)

// bufPool recycles payload buffers across frames; Frame.Release feeds
// it. Buffers grow to the largest frame seen and are reused as-is.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Frame is one decoded frame. Payload aliases a pooled buffer: call
// Release once the payload is no longer referenced.
type Frame struct {
	Type    byte
	Payload []byte
	buf     *[]byte
}

// Release returns the payload buffer to the pool. The Frame must not
// be used afterwards. Safe on the zero Frame.
func (f *Frame) Release() {
	if f.buf != nil {
		bufPool.Put(f.buf)
		f.buf = nil
		f.Payload = nil
	}
}

// Writer frames payloads onto w. Not safe for concurrent use.
type Writer struct {
	w   io.Writer
	hdr [headerLen]byte
	tr  [trailerLen]byte
}

// NewWriter builds a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	nw := &Writer{w: w}
	copy(nw.hdr[:4], magic[:])
	nw.hdr[4] = Version
	return nw
}

// WriteFrame emits one frame of the given type.
func (w *Writer) WriteFrame(typ byte, payload []byte) error {
	w.hdr[5] = typ
	binary.BigEndian.PutUint32(w.hdr[6:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(w.hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(w.tr[:], crc)
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.w.Write(payload); err != nil {
			return err
		}
	}
	_, err := w.w.Write(w.tr[:])
	return err
}

// Reader decodes frames from r.
type Reader struct {
	r io.Reader
	// MaxPayload overrides DefaultMaxPayload when > 0.
	MaxPayload int
	hdr        [headerLen]byte
}

// NewReader builds a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads and validates the next frame. io.EOF is returned
// only at a clean frame boundary; a partial frame is ErrTruncated.
func (r *Reader) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return Frame{}, err
	}
	if [4]byte(r.hdr[:4]) != magic {
		return Frame{}, fmt.Errorf("%w: %x", ErrBadMagic, r.hdr[:4])
	}
	if r.hdr[4] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, r.hdr[4], Version)
	}
	n := binary.BigEndian.Uint32(r.hdr[6:])
	maxPayload := r.MaxPayload
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if n > uint32(maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrOversized, n, maxPayload)
	}
	bp := bufPool.Get().(*[]byte)
	need := int(n) + trailerLen
	if cap(*bp) < need {
		*bp = make([]byte, need)
	}
	buf := (*bp)[:need]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		bufPool.Put(bp)
		return Frame{}, fmt.Errorf("%w: partial payload (%v)", ErrTruncated, err)
	}
	crc := crc32.ChecksumIEEE(r.hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
	if got := binary.BigEndian.Uint32(buf[n:]); got != crc {
		bufPool.Put(bp)
		return Frame{}, fmt.Errorf("%w: got %08x, want %08x", ErrChecksum, got, crc)
	}
	return Frame{Type: r.hdr[5], Payload: buf[:n], buf: bp}, nil
}
