package wireproto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireFrame hammers the framing layer with arbitrary bytes. The
// invariants:
//
//   - ReadFrame never panics and never allocates past the payload
//     bound;
//   - every accepted frame survives a re-encode/re-decode round trip
//     byte-exactly (the codec is canonical);
//   - an accepted TypePacketBatch payload drains through the batch
//     decoder without panicking, and if it drains cleanly it re-encodes
//     to the identical payload.
func FuzzWireFrame(f *testing.F) {
	valid := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := NewWriter(&buf).WriteFrame(typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	batch, err := AppendPacketBatch(nil, []Packet{
		{Src: 1, Dst: 2, Sport: 3, Dport: 4, Proto: 6, Len: 64,
			Hops: []Hop{{Switch: 1, In: 3, Out: 1}, {Switch: 2, In: 1, Out: 3}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid(TypeHello, []byte(`{"role":"ingest"}`)))
	f.Add(valid(TypePacketBatch, batch))
	f.Add(valid(TypeFin, nil))
	f.Add(valid(TypeCredit, AppendCredit(nil, 1)))
	f.Add(valid(TypePacketBatch, batch)[:headerLen+3]) // truncated
	corrupt := valid(TypePacketBatch, batch)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt) // bad CRC
	f.Add([]byte("HYWP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		r.MaxPayload = 1 << 16 // keep fuzz memory small
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
					!errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrOversized) && !errors.Is(err, ErrChecksum) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			var buf bytes.Buffer
			if err := NewWriter(&buf).WriteFrame(fr.Type, fr.Payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			re, err := NewReader(&buf).ReadFrame()
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if re.Type != fr.Type || !bytes.Equal(re.Payload, fr.Payload) {
				t.Fatalf("round trip changed frame: type %d->%d, %d->%d payload bytes",
					fr.Type, re.Type, len(fr.Payload), len(re.Payload))
			}
			if fr.Type == TypePacketBatch {
				fuzzDrainBatch(t, fr.Payload)
			}
			re.Release()
			fr.Release()
		}
	})
}

// fuzzDrainBatch decodes a batch payload; if it decodes cleanly, the
// packets must re-encode to the identical bytes.
func fuzzDrainBatch(t *testing.T, payload []byte) {
	var d BatchDecoder
	if err := d.Reset(payload); err != nil {
		return
	}
	var pkts []Packet
	for {
		p, err := d.Next()
		if err != nil {
			return
		}
		if p == nil {
			break
		}
		cp := *p
		cp.Hops = append([]Hop(nil), p.Hops...)
		pkts = append(pkts, cp)
	}
	re, err := AppendPacketBatch(nil, pkts)
	if err != nil {
		t.Fatalf("re-encoding decoded batch: %v", err)
	}
	if !bytes.Equal(re, payload) {
		t.Fatalf("batch codec not canonical: %d vs %d bytes", len(re), len(payload))
	}
}
