package wireproto

import (
	"encoding/binary"
	"fmt"
)

// MaxBatchPackets bounds the packets one TypePacketBatch frame may
// carry — the protocol-level contract workers size their verdict
// scratch against.
const MaxBatchPackets = 4096

// MaxHops bounds one packet's path length on the wire.
const MaxHops = 64

// Hop is one switch traversal in wire form.
type Hop struct {
	Switch  uint32
	In, Out uint16
}

// Packet is one unit of checking work in wire form: the flow 5-tuple,
// the wire length, and the path the fabric would carry it over. The
// ingest daemon resolves paths (it owns the topology model); workers
// just execute.
type Packet struct {
	Src, Dst     uint32
	Sport, Dport uint16
	Proto        uint8
	Len          uint32
	Hops         []Hop
}

const pktFixedLen = 4 + 4 + 2 + 2 + 1 + 4 + 1 // + 8 bytes per hop

// AppendPacketBatch appends the binary encoding of a packet batch:
// count (uint32 LE) then each record as fixed little-endian fields
// with an explicit hop count.
func AppendPacketBatch(buf []byte, pkts []Packet) ([]byte, error) {
	if len(pkts) > MaxBatchPackets {
		return buf, fmt.Errorf("wireproto: batch of %d packets exceeds %d", len(pkts), MaxBatchPackets)
	}
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(len(pkts)))
	buf = append(buf, w[:]...)
	for i := range pkts {
		p := &pkts[i]
		if len(p.Hops) > MaxHops {
			return buf, fmt.Errorf("wireproto: packet with %d hops exceeds %d", len(p.Hops), MaxHops)
		}
		binary.LittleEndian.PutUint32(w[:], p.Src)
		buf = append(buf, w[:]...)
		binary.LittleEndian.PutUint32(w[:], p.Dst)
		buf = append(buf, w[:]...)
		binary.LittleEndian.PutUint16(w[:], p.Sport)
		buf = append(buf, w[:2]...)
		binary.LittleEndian.PutUint16(w[:], p.Dport)
		buf = append(buf, w[:2]...)
		buf = append(buf, p.Proto)
		binary.LittleEndian.PutUint32(w[:], p.Len)
		buf = append(buf, w[:]...)
		buf = append(buf, byte(len(p.Hops)))
		for _, h := range p.Hops {
			binary.LittleEndian.PutUint32(w[:], h.Switch)
			buf = append(buf, w[:]...)
			binary.LittleEndian.PutUint16(w[:], h.In)
			buf = append(buf, w[:2]...)
			binary.LittleEndian.PutUint16(w[:], h.Out)
			buf = append(buf, w[:2]...)
		}
	}
	return buf, nil
}

// BatchDecoder iterates a packet-batch payload. The decoder owns one
// Packet and one hop slice, reused across Next calls — copy anything
// that must outlive the iteration.
type BatchDecoder struct {
	buf  []byte
	n    int
	i    int
	pkt  Packet
	hops []Hop
}

// Reset points the decoder at a payload and validates the count.
func (d *BatchDecoder) Reset(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("wireproto: packet batch shorter than its count field")
	}
	n := binary.LittleEndian.Uint32(payload)
	if n > MaxBatchPackets {
		return fmt.Errorf("wireproto: batch count %d exceeds %d", n, MaxBatchPackets)
	}
	d.buf = payload[4:]
	d.n = int(n)
	d.i = 0
	return nil
}

// Remaining reports how many packets are left to decode.
func (d *BatchDecoder) Remaining() int { return d.n - d.i }

// Next decodes the next packet, or returns (nil, nil) when the batch
// is exhausted exactly at the payload end.
func (d *BatchDecoder) Next() (*Packet, error) {
	if d.i >= d.n {
		if len(d.buf) != 0 {
			return nil, fmt.Errorf("wireproto: %d trailing bytes after packet batch", len(d.buf))
		}
		return nil, nil
	}
	if len(d.buf) < pktFixedLen {
		return nil, fmt.Errorf("wireproto: truncated packet record (%d of %d)", d.i, d.n)
	}
	b := d.buf
	d.pkt.Src = binary.LittleEndian.Uint32(b[0:])
	d.pkt.Dst = binary.LittleEndian.Uint32(b[4:])
	d.pkt.Sport = binary.LittleEndian.Uint16(b[8:])
	d.pkt.Dport = binary.LittleEndian.Uint16(b[10:])
	d.pkt.Proto = b[12]
	d.pkt.Len = binary.LittleEndian.Uint32(b[13:])
	nh := int(b[17])
	if nh > MaxHops {
		return nil, fmt.Errorf("wireproto: packet record with %d hops exceeds %d", nh, MaxHops)
	}
	b = b[pktFixedLen:]
	if len(b) < nh*8 {
		return nil, fmt.Errorf("wireproto: truncated hop list (%d of %d)", d.i, d.n)
	}
	if cap(d.hops) < nh {
		d.hops = make([]Hop, nh)
	}
	d.hops = d.hops[:nh]
	for h := 0; h < nh; h++ {
		d.hops[h] = Hop{
			Switch: binary.LittleEndian.Uint32(b[0:]),
			In:     binary.LittleEndian.Uint16(b[4:]),
			Out:    binary.LittleEndian.Uint16(b[6:]),
		}
		b = b[8:]
	}
	d.pkt.Hops = d.hops
	d.buf = b
	d.i++
	return &d.pkt, nil
}

// AppendCredit appends the binary TypeCredit payload: a uint32 count
// of batch frames the worker has fully processed.
func AppendCredit(buf []byte, frames uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], frames)
	return append(buf, w[:]...)
}

// DecodeCredit parses a TypeCredit payload.
func DecodeCredit(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("wireproto: credit payload of %d bytes, want 4", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}
