package bytecode

import (
	"fmt"

	"repro/internal/pipeline"
)

// Ctx is the pooled per-execution state of a bytecode program: the flat
// PHV, the switch state, and the per-context TCAM lookup caches. It
// mirrors pipeline.LCtx field-for-field so embedders treat the two
// executors interchangeably.
type Ctx struct {
	PHV     []pipeline.Value
	State   *pipeline.State
	Reports []pipeline.Report
	// TableApplies and OpsExecuted mirror the interpreter's counters.
	TableApplies int
	OpsExecuted  int

	caches []tcamCache
	// wide is the reusable key buffer for applies of tables with more
	// than MaxPackedKeys columns.
	wide []uint64

	// trustCaches suppresses the per-lookup Table.Version check after
	// BeginBatch has validated every cache entry: for the rest of the
	// batch, lookups trust the memoized results. Concurrent control
	// plane installs are then observed with at most one batch of delay
	// instead of at the next version poll — the same freshness contract
	// batching already implies.
	trustCaches bool

	// Ephemeral-report mode (BeginEphemeralReports): reports and their
	// Args are carved from context-owned buffers that survive release
	// instead of being heap-allocated per report.
	ephemeral  bool
	ephReports []pipeline.Report
	argArena   []pipeline.Value
}

// BeginEphemeralReports arms arena-backed report storage for the
// current execution, with the same contract as LCtx: every report
// raised until the context is released (or this is called again on a
// persistent context) must be fully consumed before the next
// execution. Calling it again on an already-ephemeral context recycles
// the previous execution's report buffer, so persistent per-shard
// contexts reach zero allocations per packet at steady state.
func (c *Ctx) BeginEphemeralReports() {
	if c.ephemeral {
		c.ephReports = c.Reports[:0]
	}
	c.ephemeral = true
	c.Reports = c.ephReports[:0]
	c.argArena = c.argArena[:0]
}

// tcamWays is the associativity of each TCAM apply site's lookup cache.
// A trace touches one *Table per switch it visits, so a single-entry
// cache (the linked executor's choice) thrashes when a context runs a
// whole multi-switch trace; four ways cover the topologies the corpus
// replays without a per-lookup map.
const tcamWays = 4

// maxCacheEntries bounds each per-site memo map; beyond it, lookups
// fall through uncached rather than growing the map unboundedly.
const maxCacheEntries = 1024

// tcamEnt memoizes TCAM lookups against one table, invalidated by
// version change.
type tcamEnt struct {
	table   *pipeline.Table
	version uint64
	m       map[pipeline.PackedKey]cacheEnt
}

type cacheEnt struct {
	action []pipeline.Value
	hit    bool
}

// tcamCache is the per-site set of memo entries.
type tcamCache struct {
	ents [tcamWays]tcamEnt
	rr   uint8
}

// ent returns the memo entry for t, revalidating (or evicting) as
// needed. With trust set, a hit skips the version poll — BeginBatch
// has already validated it this batch.
func (sc *tcamCache) ent(t *pipeline.Table, trust bool) *tcamEnt {
	for i := range sc.ents {
		e := &sc.ents[i]
		if e.table == t {
			if !trust {
				if v := t.Version(); v != e.version {
					e.version = v
					clear(e.m)
				}
			}
			return e
		}
	}
	var e *tcamEnt
	for i := range sc.ents {
		if sc.ents[i].table == nil {
			e = &sc.ents[i]
			break
		}
	}
	if e == nil {
		e = &sc.ents[sc.rr]
		sc.rr = (sc.rr + 1) % tcamWays
	}
	e.table, e.version = t, t.Version()
	if e.m == nil {
		e.m = make(map[pipeline.PackedKey]cacheEnt, 16)
	} else {
		clear(e.m)
	}
	return e
}

// AcquireCtx returns an execution context from the pool, its PHV reset
// to the program template (decode-empty telemetry, width-defaulted
// fields, constants).
func (p *Prog) AcquireCtx() *Ctx {
	c := p.ctxPool.Get().(*Ctx)
	copy(c.PHV, p.template)
	return c
}

// ReleaseCtx resets a context and returns it to the pool, with the same
// report-detachment contract as Linked.ReleaseCtx: Reports escape with
// the caller unless the execution was ephemeral.
func (p *Prog) ReleaseCtx(c *Ctx) {
	c.State = nil
	c.OpsExecuted, c.TableApplies = 0, 0
	c.trustCaches = false
	if c.ephemeral {
		c.ephemeral = false
		c.ephReports = c.Reports[:0]
	}
	c.Reports = nil
	p.ctxPool.Put(c)
}

// BeginTrace resets the telemetry region to its decode-empty image —
// the whole-trace (resident-PHV) entry point: telemetry then stays in
// the slots across hops with no intermediate blob codec, which is
// byte-equivalent to the per-hop roundtrip because every telemetry
// slot write is already masked to its wire width.
func (p *Prog) BeginTrace(c *Ctx) {
	copy(c.PHV[:p.nTele], p.template[:p.nTele])
}

// BeginHop resets the writable scratch slots to the template (the
// compile-time resetRuns — constants, read-only fields, and
// statement-scoped temps can't diverge, so they are skipped) and
// installs the per-hop builtin metadata. Telemetry slots are left
// untouched: they carry across hops in resident mode. The PHV is owned
// by the VM between BeginTrace and the end of the trace; external
// writes to non-bind slots between hops are not restored.
func (p *Prog) BeginHop(c *Ctx, st *pipeline.State, switchID uint32, pktLen int, first, last bool) {
	c.State = st
	phv := c.PHV
	for _, r := range p.resetRuns {
		copy(phv[r[0]:r[1]], p.template[r[0]:r[1]])
	}
	p.SetHopMeta(phv, switchID, pktLen, first, last)
}

// SetHopMeta installs the builtin per-hop metadata slots (the same
// widths the compiler runtime feeds the other executors).
func (p *Prog) SetHopMeta(phv []pipeline.Value, switchID uint32, pktLen int, first, last bool) {
	phv[p.slotSwitch] = pipeline.B(32, uint64(switchID))
	phv[p.slotPktLen] = pipeline.B(32, uint64(pktLen))
	phv[p.slotLast] = pipeline.BoolV(last)
	phv[p.slotFirst] = pipeline.BoolV(first)
}

// BeginBatch revalidates every TCAM cache entry once and arms
// trust-caches mode: until the context is released or the next
// BeginBatch, apply sites skip the per-lookup version poll.
func (p *Prog) BeginBatch(c *Ctx) {
	for i := range c.caches {
		for j := range c.caches[i].ents {
			e := &c.caches[i].ents[j]
			if e.table == nil {
				continue
			}
			if v := e.table.Version(); v != e.version {
				e.version = v
				clear(e.m)
			}
		}
	}
	c.trustCaches = true
}

// Reject reads the checker's reject verdict from the PHV.
func (p *Prog) Reject(c *Ctx) bool { return c.PHV[p.slotReject].Bool() }

// BindHeaderSlots copies bound header values into the PHV: vals[i]
// corresponds to Bindings()[i], and a zero-width Value marks an absent
// binding (matching a missing key in the map-based Headers env).
func (p *Prog) BindHeaderSlots(phv []pipeline.Value, vals []pipeline.Value) {
	for i, s := range p.bindSlots {
		if i >= len(vals) {
			return
		}
		if v := vals[i]; v.W != 0 {
			phv[s] = v
		}
	}
}

// BindHeaderMap copies bound header values from a path-keyed map.
func (p *Prog) BindHeaderMap(phv []pipeline.Value, headers map[string]pipeline.Value) {
	for i, path := range p.bindings {
		if v, ok := headers[path]; ok {
			phv[p.bindSlots[i]] = v
		}
	}
}

// ExecInit runs the init block.
func (p *Prog) ExecInit(c *Ctx) { p.run(c, p.init) }

// ExecTelemetry runs the telemetry block.
func (p *Prog) ExecTelemetry(c *Ctx) { p.run(c, p.tele) }

// ExecChecker runs the checker block.
func (p *Prog) ExecChecker(c *Ctx) { p.run(c, p.check) }

// run is the dispatch loop: one flat instruction array, one switch, no
// closures, no interface values. Ops that correspond to IR ops bump
// OpsExecuted exactly as the other executors do; the count accumulates
// in a local so the loop isn't forced to reload the Ctx field after
// every PHV store (the compiler can't prove phv doesn't alias c).
func (p *Prog) run(c *Ctx, code []Instr) {
	phv := c.PHV
	ops := 0
	for pc := 0; pc < len(code); {
		in := &code[pc]
		pc++
		switch in.Op {
		case opAssign:
			ops++
			phv[in.A] = pipeline.B(int(in.W), phv[in.B].V)

		case opJz:
			ops++
			if phv[in.A].V == 0 {
				pc = int(in.B)
			}

		case opJzEq:
			ops++
			if phv[in.B].V != phv[in.C].V {
				pc = int(in.D)
			}
		case opJzNe:
			ops++
			if phv[in.B].V == phv[in.C].V {
				pc = int(in.D)
			}
		case opJzLt:
			ops++
			if phv[in.B].V >= phv[in.C].V {
				pc = int(in.D)
			}
		case opJzLe:
			ops++
			if phv[in.B].V > phv[in.C].V {
				pc = int(in.D)
			}
		case opJzGt:
			ops++
			if phv[in.B].V <= phv[in.C].V {
				pc = int(in.D)
			}
		case opJzGe:
			ops++
			if phv[in.B].V < phv[in.C].V {
				pc = int(in.D)
			}
		case opJzAnd:
			ops++
			if phv[in.B].V == 0 || phv[in.C].V == 0 {
				pc = int(in.D)
			}
		case opJzOr:
			ops++
			if phv[in.B].V == 0 && phv[in.C].V == 0 {
				pc = int(in.D)
			}
		case opJnz:
			ops++
			if phv[in.A].V != 0 {
				pc = int(in.B)
			}

		case opJmp:
			pc = int(in.A)

		case opLoadF:
			v := phv[in.B]
			if v.W == 0 {
				v = pipeline.Value{W: int(in.W)}
			}
			phv[in.A] = v

		case opNot:
			phv[in.A] = pipeline.BoolV(phv[in.B].V == 0)
		case opBNot:
			x := phv[in.B]
			phv[in.A] = pipeline.B(x.W, ^x.V)
		case opNeg:
			x := phv[in.B]
			phv[in.A] = pipeline.B(x.W, -x.V)
		case opAbs:
			x := phv[in.B]
			s := x.Signed()
			if s < 0 {
				s = -s
			}
			phv[in.A] = pipeline.B(x.W, uint64(s))

		case opBoolAnd:
			phv[in.A] = pipeline.BoolV(phv[in.B].V != 0 && phv[in.C].V != 0)
		case opBoolOr:
			phv[in.A] = pipeline.BoolV(phv[in.B].V != 0 || phv[in.C].V != 0)
		case opSelect:
			if phv[in.B].V != 0 {
				phv[in.A] = phv[in.C]
			} else {
				phv[in.A] = phv[in.D]
			}

		case opAdd:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V+y.V)
		case opSub:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V-y.V)
		case opMul:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V*y.V)
		case opDiv:
			x, y := phv[in.B], phv[in.C]
			if y.V == 0 {
				phv[in.A] = pipeline.B(binWidth(x, y), 0)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V/y.V)
			}
		case opMod:
			x, y := phv[in.B], phv[in.C]
			if y.V == 0 {
				phv[in.A] = pipeline.B(binWidth(x, y), 0)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V%y.V)
			}
		case opBAnd:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V&y.V)
		case opBOr:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V|y.V)
		case opBXor:
			x, y := phv[in.B], phv[in.C]
			phv[in.A] = pipeline.B(binWidth(x, y), x.V^y.V)
		case opShl:
			x, y := phv[in.B], phv[in.C]
			if y.V >= 64 {
				phv[in.A] = pipeline.B(binWidth(x, y), 0)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V<<y.V)
			}
		case opShr:
			x, y := phv[in.B], phv[in.C]
			if y.V >= 64 {
				phv[in.A] = pipeline.B(binWidth(x, y), 0)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V>>y.V)
			}
		case opMax:
			x, y := phv[in.B], phv[in.C]
			if x.V >= y.V {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), y.V)
			}
		case opMin:
			x, y := phv[in.B], phv[in.C]
			if x.V <= y.V {
				phv[in.A] = pipeline.B(binWidth(x, y), x.V)
			} else {
				phv[in.A] = pipeline.B(binWidth(x, y), y.V)
			}

		case opEq:
			phv[in.A] = pipeline.BoolV(phv[in.B].V == phv[in.C].V)
		case opNe:
			phv[in.A] = pipeline.BoolV(phv[in.B].V != phv[in.C].V)
		case opLt:
			phv[in.A] = pipeline.BoolV(phv[in.B].V < phv[in.C].V)
		case opLe:
			phv[in.A] = pipeline.BoolV(phv[in.B].V <= phv[in.C].V)
		case opGt:
			phv[in.A] = pipeline.BoolV(phv[in.B].V > phv[in.C].V)
		case opGe:
			phv[in.A] = pipeline.BoolV(phv[in.B].V >= phv[in.C].V)

		case opApply:
			ops++
			p.runApply(c, &p.applies[in.A])

		case opRegRead:
			ops++
			rs := &p.regs[in.B]
			r := c.State.RegisterAt(rs.idx, rs.name)
			phv[in.A] = pipeline.B(int(in.W), r.Read(int(phv[in.C].V)))

		case opRegWrite:
			ops++
			rs := &p.regs[in.A]
			r := c.State.RegisterAt(rs.idx, rs.name)
			r.Write(int(phv[in.B].V), phv[in.C].V)

		case opPush:
			ops++
			site := &p.arrays[in.A]
			n := int32(phv[site.cnt].V)
			v := phv[in.B].V
			if n < site.capN {
				phv[site.start+n] = pipeline.B(int(site.ew), v)
				phv[site.cnt] = pipeline.B(8, uint64(n+1))
			} else {
				// Full: shift out the oldest element.
				for i := int32(0); i+1 < site.capN; i++ {
					phv[site.start+i] = phv[site.start+i+1]
				}
				phv[site.start+site.capN-1] = pipeline.B(int(site.ew), v)
			}

		case opSetSlot:
			ops++
			site := &p.arrays[in.A]
			i := int64(phv[in.B].V)
			if i < 0 || i >= int64(site.capN) {
				break // out-of-range writes are dropped, as on hardware
			}
			phv[site.start+int32(i)] = pipeline.B(int(site.ew), phv[in.C].V)
			if n := int64(phv[site.cnt].V); i >= n {
				phv[site.cnt] = pipeline.B(8, uint64(i+1))
			}

		case opReport:
			ops++
			p.runReport(c, &p.reports[in.A])

		default:
			panic(fmt.Sprintf("bytecode: bad opcode %d", in.Op))
		}
	}
	c.OpsExecuted += ops
}

// binWidth reconciles binary operand widths: a width-0 (unset/weak)
// left side adopts the right side's width.
func binWidth(x, y pipeline.Value) int {
	if x.W == 0 {
		return y.W
	}
	return x.W
}

// runApply executes one apply site. Exact-packed tables go straight to
// the table's lock-free snapshot; TCAM sites memoize through the
// per-context set-associative cache; wide tables take the generic
// slice path.
func (p *Prog) runApply(c *Ctx, site *applySite) {
	t := c.State.TableAt(site.table, site.name)
	if site.wide {
		nk := len(site.keys)
		if cap(c.wide) < nk {
			c.wide = make([]uint64, nk)
		}
		kv := c.wide[:nk]
		for i, s := range site.keys {
			kv[i] = c.PHV[s].V
		}
		action, hit := t.Lookup(kv)
		p.writeOut(c, site, action, hit)
		return
	}
	var k pipeline.PackedKey
	for i, s := range site.keys {
		k[i] = c.PHV[s].V
	}
	if site.cache < 0 {
		action, hit := t.LookupPacked(k)
		p.writeOut(c, site, action, hit)
		return
	}
	e := c.caches[site.cache].ent(t, c.trustCaches)
	ce, ok := e.m[k]
	if !ok {
		ce.action, ce.hit = t.LookupPacked(k)
		if len(e.m) < maxCacheEntries {
			e.m[k] = ce
		}
	}
	p.writeOut(c, site, ce.action, ce.hit)
}

func (p *Prog) writeOut(c *Ctx, site *applySite, action []pipeline.Value, hit bool) {
	for i, s := range site.outs {
		c.PHV[s] = action[i]
	}
	c.PHV[site.hit] = pipeline.BoolV(hit)
	c.TableApplies++
}

func (p *Prog) runReport(c *Ctx, site *reportSite) {
	var vals []pipeline.Value
	if c.ephemeral {
		// Arena growth may move earlier reports' Args to a stale
		// array — their values stay intact, so reads remain correct;
		// the arena converges after warmup.
		off := len(c.argArena)
		for _, s := range site.args {
			c.argArena = append(c.argArena, c.PHV[s])
		}
		vals = c.argArena[off:len(c.argArena):len(c.argArena)]
	} else {
		vals = make([]pipeline.Value, len(site.args))
		for i, s := range site.args {
			vals[i] = c.PHV[s]
		}
	}
	c.Reports = append(c.Reports, pipeline.Report{Args: vals})
}

// ---------------------------------------------------------------------------
// Telemetry wire codec over slots

// TeleWireBytes is the serialized telemetry blob size.
func (p *Prog) TeleWireBytes() int { return (p.teleBits + 7) / 8 }

// DecodeTele unpacks a telemetry blob into the slot PHV. An empty blob
// (first hop) zero-fills the telemetry slots at their declared widths.
func (p *Prog) DecodeTele(blob []byte, phv []pipeline.Value) error {
	if len(blob) == 0 {
		copy(phv[:p.nTele], p.template[:p.nTele])
		return nil
	}
	if len(blob)*8 < p.teleBits {
		return fmt.Errorf("pipeline: telemetry blob: bit read past end: need %d bits, have %d", p.teleBits, len(blob)*8)
	}
	for _, st := range p.teleSteps {
		phv[st.slot] = pipeline.Value{W: int(st.width), V: getBits(blob, int(st.off), int(st.width))}
	}
	return nil
}

// EncodeTele packs the slot PHV's telemetry fields into dst's storage
// (grown only if too small) and returns the blob. Callers that own dst
// get an allocation-free encode; pass nil for a fresh blob.
func (p *Prog) EncodeTele(dst []byte, phv []pipeline.Value) []byte {
	n := p.TeleWireBytes()
	if cap(dst) >= n {
		dst = dst[:n]
		clear(dst)
	} else {
		dst = make([]byte, n)
	}
	for _, st := range p.teleSteps {
		putBits(dst, int(st.off), int(st.width), phv[st.slot].V)
	}
	return dst
}

// putBits writes the low `width` bits of v MSB-first at static bit
// offset off. The buffer must be pre-zeroed; byte-aligned whole-byte
// writes take a store-only fast path. (Private duplicate of the linked
// executor's codec — both pinned by the cross-backend blob equality
// checks in difftest.)
func putBits(buf []byte, off, width int, v uint64) {
	if width <= 0 {
		return
	}
	v = pipeline.Mask(width, v)
	if off%8 == 0 && width%8 == 0 {
		for i := width - 8; i >= 0; i -= 8 {
			buf[off>>3] = byte(v >> uint(i))
			off += 8
		}
		return
	}
	for i := width - 1; i >= 0; i-- {
		buf[off>>3] |= byte(v>>uint(i)&1) << uint(7-off%8)
		off++
	}
}

// getBits reads `width` bits MSB-first from static bit offset off.
func getBits(buf []byte, off, width int) uint64 {
	var v uint64
	if off%8 == 0 && width%8 == 0 {
		for i := 0; i < width; i += 8 {
			v = v<<8 | uint64(buf[off>>3])
			off += 8
		}
		return v
	}
	for i := 0; i < width; i++ {
		v = v<<1 | uint64(buf[off>>3]>>uint(7-off%8)&1)
		off++
	}
	return v
}
