// Package bytecode compiles the pipeline IR into flat bytecode and
// executes it in a register-machine VM: one contiguous []Instr per
// block with slot-indexed operands, dispatched by a single
// `for { switch op }` loop — no per-op closures, no interface values,
// no allocation on the per-packet path.
//
// The compile pass is a second backend over the same IR the linking
// pass (pipeline.Link) consumes, and it must stay bit-identical to the
// map interpreter and the linked closures on every input — the difftest
// conformance suite replays the corpus, the frontier counterexamples,
// and randomized programs across all four backends and demands
// byte-exact verdicts, report payloads, and telemetry blobs.
//
// Layout decisions that make the VM fast:
//
//   - Telemetry slots come first, in wire order, so a whole-trace
//     (resident-PHV) execution can skip the per-hop blob encode/decode
//     entirely: tele state simply stays in the slots between hops,
//     which is equivalent because every write into a tele slot is
//     already masked to its declared wire width (encode∘decode is the
//     identity). Per-hop scratch reset is then one copy of the
//     non-tele template region.
//   - Every slot's "unwritten" value is precomputed into a template:
//     slot widths are mined from the program's Field reads, so a read
//     of a never-written field sees Value{W: declared} exactly as the
//     interpreters' width-defaulting read would produce. Expression
//     code can therefore reference field slots directly, with no
//     per-read width fixup instruction.
//   - Constants are materialized into read-only template slots;
//     loading a constant costs zero instructions.
//   - Expressions flatten to three-address code over temp slots. This
//     evaluates both sides of &&/||/mux eagerly, which is sound
//     because pipeline expressions are pure and total (no state reads,
//     no traps: division by zero yields zero, oversized shifts yield
//     zero).
package bytecode

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pipeline"
)

// OpKind is the VM opcode.
type OpKind uint8

// Opcodes. Operand meaning per op is documented on the dispatch loop.
// Ops marked [ir] correspond 1:1 to an IR op and bump Ctx.OpsExecuted,
// keeping the performance-model counters identical to the other
// executors.
const (
	opNop   OpKind = iota
	opLoadF        // A=dst, B=src, W: width-defaulting field read
	opAssign       // A=dst, B=src, W: dst = B(W, src.V) [ir]
	opJmp          // A=target
	opJz           // A=cond, B=target: jump if cond is false [ir: IfOp]

	opNot  // A=dst, B=src
	opBNot //
	opNeg  //
	opAbs  //

	opBoolAnd // A=dst, B, C: BoolV(B && C)
	opBoolOr  //
	opSelect  // A=dst, B=cond, C=then, D=else

	opAdd // A=dst, B, C (binary arithmetic at reconciled width)
	opSub
	opMul
	opDiv
	opMod
	opBAnd
	opBOr
	opBXor
	opShl
	opShr
	opMax
	opMin

	opEq // A=dst, B, C (comparisons produce BoolV)
	opNe
	opLt
	opLe
	opGt
	opGe

	// Fused conditional branches: an IfOp whose condition is a single
	// comparison (or !x, or x&&y / x||y) collapses the compare and the
	// opJz into one instruction — tele blocks are branch-heavy, so this
	// trims both dispatches and temp traffic. The six comparison forms
	// must stay in opEq..opGe order. Operands B, C; jump target D; the
	// jump is taken when the condition is FALSE (same sense as opJz).
	// [ir: IfOp]
	opJzEq
	opJzNe
	opJzLt
	opJzLe
	opJzGt
	opJzGe
	opJzAnd // taken unless B and C are both truthy
	opJzOr  // taken unless B or C is truthy
	opJnz   // A=cond, B=target: fused !x — taken when cond is TRUE [ir: IfOp]

	opApply    // A=apply-site [ir]
	opRegRead  // A=dst, B=reg-site, C=idx slot, W=width [ir]
	opRegWrite // A=reg-site, B=idx slot, C=src slot [ir]
	opPush     // A=array-site, B=src slot [ir]
	opSetSlot  // A=array-site, B=idx slot, C=src slot [ir]
	opReport   // A=report-site [ir]
)

// Instr is one VM instruction. Operands are PHV slot indices, jump
// targets, or side-table indices depending on the opcode; W carries a
// bit width where one is needed.
type Instr struct {
	Op OpKind
	W  int32
	A  int32
	B  int32
	C  int32
	D  int32
}

// tempBase is the virtual slot index space for expression temporaries
// during compilation; a relocation pass rebases them past the last
// field/const slot once the full slot count is known. Real slot
// indices and jump targets stay far below it.
const tempBase int32 = 1 << 24

// teleStep is one field of the telemetry wire layout: slot, width, and
// static bit offset (mirrors the linked executor's layout exactly).
type teleStep struct {
	slot  int32
	width int32
	off   int32
}

// applySite is the side table for one ApplyOp.
type applySite struct {
	table int // declaration index
	name  string
	keys  []int32
	outs  []int32
	hit   int32
	wide  bool  // more key columns than PackedKey holds
	cache int32 // TCAM cache index; -1 for exact/wide sites
}

// regSite resolves one register access.
type regSite struct {
	idx  int
	name string
}

// arraySite is the side table for header-stack ops.
type arraySite struct {
	start int32
	cnt   int32
	capN  int32
	ew    int32
}

// reportSite is the side table for one ReportOp.
type reportSite struct {
	args []int32
}

// Prog is the compiled bytecode form of a pipeline Program. One Prog is
// built per program at install time and is safe for concurrent use; all
// mutable execution state lives in Ctx.
type Prog struct {
	P *pipeline.Program

	nSlots int // PHV length: fields + consts + temps
	nTele  int // telemetry region is slots [0, nTele)

	init, tele, check []Instr

	teleSteps []teleStep
	teleBits  int

	// template is the trace-start PHV image: decode-empty telemetry
	// values, width-defaulted field slots, and constant values. The
	// scratch (non-tele) region doubles as the per-hop reset image.
	template []pipeline.Value

	applies []applySite
	regs    []regSite
	arrays  []arraySite
	reports []reportSite

	slots     map[pipeline.FieldRef]int32
	bindings  []string
	bindSlots []int32

	slotHops, slotReject, slotSwitch, slotPktLen, slotLast, slotFirst int32

	nTCAM   int
	ctxPool sync.Pool

	// resetRuns are the [lo, hi) scratch slot ranges BeginHop restores
	// from the template — the statically writable slots plus bind
	// slots; see computeResetRuns.
	resetRuns [][2]int32

	// dirtySlots is every PHV slot some execution can write: telemetry,
	// instruction destinations, binds, per-hop metadata, and expression
	// temporaries. Constants and read-only field slots are absent — the
	// VM never writes them, so a pooled context can never carry dirt
	// there. The arena-aliasing suite poisons exactly this set.
	dirtySlots []int32

	// rejectOutsideChecker is true when the init or telemetry block can
	// write the reject flag — those blocks run at every hop, so a
	// batched (checker-major) executor could not reproduce the
	// hop-major reject-halt and must fall back to per-packet order.
	rejectOutsideChecker bool
}

// comp is the transient compilation state.
type comp struct {
	p    *Prog
	prog *pipeline.Program

	// widths holds the Field read width per ref (-1 on conflicting
	// widths, which forces an explicit opLoadF at each read site).
	widths map[pipeline.FieldRef]int
	consts map[pipeline.Value]int32
	arrays map[string]int32 // base -> first element slot

	tempNext, tempMax int32
}

// Compile builds the bytecode form of prog. Like pipeline.Link it fails
// only on programs the map interpreter would also reject at execution
// time (ops referencing undeclared tables or registers).
func Compile(prog *pipeline.Program) (*Prog, error) {
	p := &Prog{P: prog, slots: make(map[pipeline.FieldRef]int32, 64)}
	cp := &comp{
		p:      p,
		prog:   prog,
		widths: map[pipeline.FieldRef]int{},
		consts: map[pipeline.Value]int32{},
		arrays: map[string]int32{},
	}

	cp.scanWidths()
	if err := cp.layout(); err != nil {
		return nil, err
	}

	var err error
	if p.init, err = cp.block(prog.Init); err != nil {
		return nil, err
	}
	if p.tele, err = cp.block(prog.Telemetry); err != nil {
		return nil, err
	}
	if p.check, err = cp.block(prog.Checker); err != nil {
		return nil, err
	}

	cp.relocate()
	p.rejectOutsideChecker = writesReject(prog, prog.Init) || writesReject(prog, prog.Telemetry)

	p.ctxPool.New = func() any {
		return &Ctx{
			PHV:    make([]pipeline.Value, p.nSlots),
			caches: make([]tcamCache, p.nTCAM),
		}
	}
	return p, nil
}

// MustCompile compiles prog, panicking on error; for programs already
// validated by the compiler.
func MustCompile(prog *pipeline.Program) *Prog {
	p, err := Compile(prog)
	if err != nil {
		panic(err)
	}
	return p
}

// scanWidths mines every Field read's width so slot templates can bake
// the width-defaulting semantics of an unwritten field.
func (cp *comp) scanWidths() {
	note := func(e pipeline.Expr) {
		walkExpr(e, func(x pipeline.Expr) {
			if f, ok := x.(pipeline.Field); ok {
				if w, seen := cp.widths[f.Ref]; seen && w != f.Width {
					cp.widths[f.Ref] = -1
				} else if !seen {
					cp.widths[f.Ref] = f.Width
				}
			}
		})
	}
	for _, blk := range [][]pipeline.Op{cp.prog.Init, cp.prog.Telemetry, cp.prog.Checker} {
		pipeline.WalkOps(blk, func(op pipeline.Op) {
			switch op := op.(type) {
			case pipeline.AssignOp:
				note(op.Src)
			case pipeline.ApplyOp:
				for _, k := range op.Keys {
					note(k)
				}
			case pipeline.RegReadOp:
				note(op.Index)
			case pipeline.RegWriteOp:
				note(op.Index)
				note(op.Src)
			case pipeline.IfOp:
				note(op.Cond)
			case pipeline.PushOp:
				note(op.Src)
			case pipeline.SetSlotOp:
				note(op.Index)
				note(op.Src)
			case pipeline.ReportOp:
				for _, a := range op.Args {
					note(a)
				}
			}
		})
	}
}

func walkExpr(e pipeline.Expr, visit func(pipeline.Expr)) {
	visit(e)
	switch e := e.(type) {
	case pipeline.Unary:
		walkExpr(e.X, visit)
	case pipeline.Bin:
		walkExpr(e.X, visit)
		walkExpr(e.Y, visit)
	case pipeline.Mux:
		walkExpr(e.Cond, visit)
		walkExpr(e.X, visit)
		walkExpr(e.Y, visit)
	}
}

// layout assigns the telemetry region (wire order, slot 0 = hop
// counter), the builtin metadata slots, array blocks, and header
// binding slots, and seeds the PHV template.
func (cp *comp) layout() error {
	p := cp.p

	// Telemetry region first, mirroring the sequential wire layout of
	// Program.EncodeTele (and pipeline.Linked.layoutTele).
	off := int32(0)
	addTele := func(slot int32, width int) {
		p.teleSteps = append(p.teleSteps, teleStep{slot: slot, width: int32(width), off: off})
		p.template[slot] = pipeline.Value{W: width}
		off += int32(width)
	}
	align := func() {
		if p.P.AlignedTele {
			off = (off + 7) &^ 7
		}
	}
	p.slotHops = cp.intern(pipeline.FieldHops)
	addTele(p.slotHops, 8)
	for _, f := range p.P.Tele {
		if f.IsArray {
			addTele(cp.intern(pipeline.ArrayCount(f.Name)), 8)
			start := int32(len(p.template))
			for i := 0; i < f.Cap; i++ {
				if s := cp.intern(pipeline.ArraySlot(f.Name, i)); s != start+int32(i) {
					return fmt.Errorf("bytecode: tele array %s slots not contiguous", f.Name)
				}
				addTele(start+int32(i), f.Width)
				align()
			}
			cp.arrays[f.Name] = start
			continue
		}
		addTele(cp.intern(pipeline.FieldRef(f.Name)), f.Width)
		align()
	}
	p.teleBits = int(off)
	p.nTele = len(p.template)

	// Builtin metadata slots (hops already sits in the tele region).
	p.slotReject = cp.intern(pipeline.FieldReject)
	p.slotSwitch = cp.intern(pipeline.FieldSwitch)
	p.slotPktLen = cp.intern(pipeline.FieldPktLen)
	p.slotLast = cp.intern(pipeline.FieldLastHop)
	p.slotFirst = cp.intern(pipeline.FieldFirst)

	// Non-telemetry arrays referenced by header-stack ops get
	// contiguous blocks too.
	caps := map[string]int{}
	for _, blk := range [][]pipeline.Op{p.P.Init, p.P.Telemetry, p.P.Checker} {
		pipeline.WalkOps(blk, func(op pipeline.Op) {
			switch op := op.(type) {
			case pipeline.PushOp:
				if op.Cap > caps[op.Base] {
					caps[op.Base] = op.Cap
				}
			case pipeline.SetSlotOp:
				if op.Cap > caps[op.Base] {
					caps[op.Base] = op.Cap
				}
			}
		})
	}
	bases := make([]string, 0, len(caps))
	for b := range caps {
		if _, done := cp.arrays[b]; !done {
			bases = append(bases, b)
		}
	}
	sort.Strings(bases)
	for _, b := range bases {
		cp.intern(pipeline.ArrayCount(b))
		start := int32(len(p.template))
		for i := 0; i < caps[b]; i++ {
			if s := cp.intern(pipeline.ArraySlot(b, i)); s != start+int32(i) {
				return fmt.Errorf("bytecode: array %s slots not contiguous", b)
			}
		}
		cp.arrays[b] = start
	}

	// Header bindings, in the sorted path order shared with the other
	// executors (the HopEnv.SlotHeaders contract).
	seen := map[string]bool{}
	for _, path := range p.P.HeaderBindings {
		if !seen[path] {
			seen[path] = true
			p.bindings = append(p.bindings, path)
		}
	}
	sort.Strings(p.bindings)
	p.bindSlots = make([]int32, len(p.bindings))
	for i, path := range p.bindings {
		p.bindSlots[i] = cp.intern(pipeline.FieldRef(path))
	}
	return nil
}

// intern assigns (or returns) the slot of a field, seeding its template
// value with the mined read width so unwritten reads width-default
// without an instruction.
func (cp *comp) intern(f pipeline.FieldRef) int32 {
	p := cp.p
	if s, ok := p.slots[f]; ok {
		return s
	}
	s := int32(len(p.template))
	p.slots[f] = s
	var tv pipeline.Value
	if w := cp.widths[f]; w > 0 {
		tv = pipeline.Value{W: w}
	}
	p.template = append(p.template, tv)
	return s
}

// constSlot materializes a constant into a read-only template slot.
func (cp *comp) constSlot(v pipeline.Value) int32 {
	if s, ok := cp.consts[v]; ok {
		return s
	}
	s := int32(len(cp.p.template))
	cp.p.template = append(cp.p.template, v)
	cp.consts[v] = s
	return s
}

func (cp *comp) temp() int32 {
	t := cp.tempNext
	cp.tempNext++
	if cp.tempNext > cp.tempMax {
		cp.tempMax = cp.tempNext
	}
	return tempBase + t
}

// expr emits code computing e and returns the slot holding the result.
// Fields and constants cost zero instructions: they are slot
// references into the templated PHV.
func (cp *comp) expr(e pipeline.Expr, code *[]Instr) (int32, error) {
	switch e := e.(type) {
	case pipeline.Field:
		s := cp.intern(e.Ref)
		if cp.widths[e.Ref] == -1 {
			// Conflicting read widths: the template cannot bake a
			// single default, so width-default explicitly.
			t := cp.temp()
			*code = append(*code, Instr{Op: opLoadF, A: t, B: s, W: int32(e.Width)})
			return t, nil
		}
		return s, nil

	case pipeline.Const:
		return cp.constSlot(e.Val), nil

	case pipeline.Unary:
		x, err := cp.expr(e.X, code)
		if err != nil {
			return 0, err
		}
		var op OpKind
		switch e.Op {
		case pipeline.OpNot:
			op = opNot
		case pipeline.OpBNot:
			op = opBNot
		case pipeline.OpNeg:
			op = opNeg
		case pipeline.OpAbs:
			op = opAbs
		default:
			return 0, fmt.Errorf("bytecode: bad unary opcode %s", e.Op)
		}
		t := cp.temp()
		*code = append(*code, Instr{Op: op, A: t, B: x})
		return t, nil

	case pipeline.Bin:
		x, err := cp.expr(e.X, code)
		if err != nil {
			return 0, err
		}
		y, err := cp.expr(e.Y, code)
		if err != nil {
			return 0, err
		}
		op, ok := binOp[e.Op]
		if !ok {
			return 0, fmt.Errorf("bytecode: bad binary opcode %s", e.Op)
		}
		t := cp.temp()
		*code = append(*code, Instr{Op: op, A: t, B: x, C: y})
		return t, nil

	case pipeline.Mux:
		cond, err := cp.expr(e.Cond, code)
		if err != nil {
			return 0, err
		}
		x, err := cp.expr(e.X, code)
		if err != nil {
			return 0, err
		}
		y, err := cp.expr(e.Y, code)
		if err != nil {
			return 0, err
		}
		t := cp.temp()
		*code = append(*code, Instr{Op: opSelect, A: t, B: cond, C: x, D: y})
		return t, nil
	}
	return 0, fmt.Errorf("bytecode: unknown expr %T", e)
}

// binOp maps IR binary opcodes to VM opcodes. Logical and/or compile
// to their eager boolean forms (sound on pure, total expressions).
var binOp = map[pipeline.OpCode]OpKind{
	pipeline.OpAdd: opAdd, pipeline.OpSub: opSub, pipeline.OpMul: opMul,
	pipeline.OpDiv: opDiv, pipeline.OpMod: opMod,
	pipeline.OpBAnd: opBAnd, pipeline.OpBOr: opBOr, pipeline.OpBXor: opBXor,
	pipeline.OpShl: opShl, pipeline.OpShr: opShr,
	pipeline.OpEq: opEq, pipeline.OpNe: opNe,
	pipeline.OpLt: opLt, pipeline.OpLe: opLe, pipeline.OpGt: opGt, pipeline.OpGe: opGe,
	pipeline.OpLAnd: opBoolAnd, pipeline.OpLOr: opBoolOr,
	pipeline.OpMax: opMax, pipeline.OpMin: opMin,
}

// block compiles a list of IR ops into straight-line bytecode with
// conditional jumps for IfOp.
func (cp *comp) block(ops []pipeline.Op) ([]Instr, error) {
	var code []Instr
	if err := cp.emitOps(ops, &code); err != nil {
		return nil, err
	}
	return code, nil
}

func (cp *comp) emitOps(ops []pipeline.Op, code *[]Instr) error {
	p := cp.p
	for _, op := range ops {
		// Temps are statement-scoped: nothing outlives the IR op that
		// computed it, so every op reuses the same temp slots.
		cp.tempNext = 0
		switch op := op.(type) {
		case pipeline.AssignOp:
			src, err := cp.expr(op.Src, code)
			if err != nil {
				return err
			}
			*code = append(*code, Instr{Op: opAssign, A: cp.intern(op.Dst), B: src, W: int32(op.DstWidth)})

		case pipeline.ApplyOp:
			if err := cp.emitApply(op, code); err != nil {
				return err
			}

		case pipeline.RegReadOp:
			ri, err := regIndex(p.P, op.Reg)
			if err != nil {
				return err
			}
			idx, err := cp.expr(op.Index, code)
			if err != nil {
				return err
			}
			site := int32(len(p.regs))
			p.regs = append(p.regs, regSite{idx: ri, name: op.Reg})
			*code = append(*code, Instr{Op: opRegRead, A: cp.intern(op.Dst), B: site, C: idx, W: int32(op.Width)})

		case pipeline.RegWriteOp:
			ri, err := regIndex(p.P, op.Reg)
			if err != nil {
				return err
			}
			idx, err := cp.expr(op.Index, code)
			if err != nil {
				return err
			}
			src, err := cp.expr(op.Src, code)
			if err != nil {
				return err
			}
			site := int32(len(p.regs))
			p.regs = append(p.regs, regSite{idx: ri, name: op.Reg})
			*code = append(*code, Instr{Op: opRegWrite, A: site, B: idx, C: src})

		case pipeline.IfOp:
			cond, err := cp.expr(op.Cond, code)
			if err != nil {
				return err
			}
			jz := emitBranch(code, cond)
			if err := cp.emitOps(op.Then, code); err != nil {
				return err
			}
			if len(op.Else) > 0 {
				jmp := len(*code)
				*code = append(*code, Instr{Op: opJmp})
				setBranchTarget(code, jz, len(*code))
				if err := cp.emitOps(op.Else, code); err != nil {
					return err
				}
				(*code)[jmp].A = int32(len(*code))
			} else {
				setBranchTarget(code, jz, len(*code))
			}

		case pipeline.PushOp:
			src, err := cp.expr(op.Src, code)
			if err != nil {
				return err
			}
			site := int32(len(p.arrays))
			p.arrays = append(p.arrays, arraySite{
				start: cp.arrays[op.Base],
				cnt:   cp.intern(pipeline.ArrayCount(op.Base)),
				capN:  int32(op.Cap),
				ew:    int32(op.ElemWidth),
			})
			*code = append(*code, Instr{Op: opPush, A: site, B: src})

		case pipeline.SetSlotOp:
			idx, err := cp.expr(op.Index, code)
			if err != nil {
				return err
			}
			src, err := cp.expr(op.Src, code)
			if err != nil {
				return err
			}
			site := int32(len(p.arrays))
			p.arrays = append(p.arrays, arraySite{
				start: cp.arrays[op.Base],
				cnt:   cp.intern(pipeline.ArrayCount(op.Base)),
				capN:  int32(op.Cap),
				ew:    int32(op.ElemWidth),
			})
			*code = append(*code, Instr{Op: opSetSlot, A: site, B: idx, C: src})

		case pipeline.ReportOp:
			args := make([]int32, len(op.Args))
			for i, a := range op.Args {
				s, err := cp.expr(a, code)
				if err != nil {
					return err
				}
				args[i] = s
			}
			site := int32(len(p.reports))
			p.reports = append(p.reports, reportSite{args: args})
			*code = append(*code, Instr{Op: opReport, A: site})

		default:
			return fmt.Errorf("bytecode: unknown op %T", op)
		}
	}
	return nil
}

func (cp *comp) emitApply(op pipeline.ApplyOp, code *[]Instr) error {
	p := cp.p
	ti, spec, err := tableIndex(p.P, op.Table)
	if err != nil {
		return err
	}
	keys := make([]int32, len(op.Keys))
	for i, k := range op.Keys {
		s, err := cp.expr(k, code)
		if err != nil {
			return err
		}
		keys[i] = s
	}
	outs := make([]int32, len(spec.Outputs))
	for i, o := range spec.Outputs {
		outs[i] = cp.intern(o)
	}
	site := applySite{
		table: ti,
		name:  op.Table,
		keys:  keys,
		outs:  outs,
		hit:   cp.intern(pipeline.FieldRef(spec.Name + ".$hit")),
		cache: -1,
	}
	allExact := true
	for _, k := range spec.Keys {
		if k.Kind != pipeline.MatchExact {
			allExact = false
		}
	}
	if len(op.Keys) > pipeline.MaxPackedKeys || len(spec.Keys) > pipeline.MaxPackedKeys {
		site.wide = true
	} else if !allExact {
		// TCAM sites get a per-context memo cache; exact sites read
		// the table's lock-free snapshot directly.
		site.cache = int32(p.nTCAM)
		p.nTCAM++
	}
	idx := int32(len(p.applies))
	p.applies = append(p.applies, site)
	*code = append(*code, Instr{Op: opApply, A: idx})
	return nil
}

func tableIndex(prog *pipeline.Program, name string) (int, *pipeline.TableSpec, error) {
	for i := range prog.Tables {
		if prog.Tables[i].Name == name {
			return i, &prog.Tables[i], nil
		}
	}
	return 0, nil, fmt.Errorf("pipeline: apply of undeclared table %q", name)
}

func regIndex(prog *pipeline.Program, name string) (int, error) {
	for i := range prog.Registers {
		if prog.Registers[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pipeline: access to undeclared register %q", name)
}

// emitBranch emits the jump-if-false for an IfOp condition, fusing the
// condition's final comparison / not / bool-combine instruction into
// the branch when the condition slot is a temp produced by the
// immediately preceding instruction (it can have no other reader: expr
// temps are single-use by construction). Returns the branch's index for
// setBranchTarget. The fused instruction counts one OpsExecuted at run
// time, exactly like the opJz it replaces; the popped comparison was an
// uncounted expression instruction.
func emitBranch(code *[]Instr, cond int32) int {
	if n := len(*code); n > 0 && cond >= tempBase {
		last := (*code)[n-1]
		if last.A == cond {
			switch last.Op {
			case opEq, opNe, opLt, opLe, opGt, opGe:
				*code = append((*code)[:n-1],
					Instr{Op: opJzEq + (last.Op - opEq), B: last.B, C: last.C})
				return n - 1
			case opBoolAnd:
				*code = append((*code)[:n-1], Instr{Op: opJzAnd, B: last.B, C: last.C})
				return n - 1
			case opBoolOr:
				*code = append((*code)[:n-1], Instr{Op: opJzOr, B: last.B, C: last.C})
				return n - 1
			case opNot:
				*code = append((*code)[:n-1], Instr{Op: opJnz, A: last.B})
				return n - 1
			}
		}
	}
	*code = append(*code, Instr{Op: opJz, A: cond})
	return len(*code) - 1
}

// setBranchTarget patches the jump target of a branch emitted by
// emitBranch: fused comparisons carry it in D, opJz/opJnz in B.
func setBranchTarget(code *[]Instr, idx, target int) {
	in := &(*code)[idx]
	if in.Op >= opJzEq && in.Op <= opJzOr {
		in.D = int32(target)
	} else {
		in.B = int32(target)
	}
}

// relocate rebases virtual temp slots past the last field/const slot
// and finalizes the PHV size. Jump targets, side-table indices, and
// widths all sit far below tempBase, so any operand at or above it is
// a temp by construction.
func (cp *comp) relocate() {
	p := cp.p
	base := int32(len(p.template))
	fix := func(v int32) int32 {
		if v >= tempBase {
			return base + (v - tempBase)
		}
		return v
	}
	for _, code := range [][]Instr{p.init, p.tele, p.check} {
		for i := range code {
			code[i].A = fix(code[i].A)
			code[i].B = fix(code[i].B)
			code[i].C = fix(code[i].C)
			code[i].D = fix(code[i].D)
		}
	}
	for i := range p.applies {
		for j := range p.applies[i].keys {
			p.applies[i].keys[j] = fix(p.applies[i].keys[j])
		}
	}
	for i := range p.reports {
		for j := range p.reports[i].args {
			p.reports[i].args[j] = fix(p.reports[i].args[j])
		}
	}
	p.nSlots = len(p.template) + int(cp.tempMax)
	// Temps join the template as zero values so whole-template copies
	// cover the full PHV.
	p.template = append(p.template, make([]pipeline.Value, cp.tempMax)...)
	p.computeResetRuns(base)
}

// computeResetRuns decides which scratch slots BeginHop must restore
// to the template, coalesced into copy runs. Telemetry slots are
// resident by design, constant and read-only field slots can never
// diverge from the template, and expression temporaries are
// statement-scoped (every read is dominated by a write in the same IR
// op), so the candidates are only the slots some writer can dirty:
// instruction destinations plus the header binds (a sparse binder may
// skip absent headers, leaving the previous hop's value).
//
// A candidate is then dropped when every hop execution is guaranteed
// to overwrite it before reading it — a stale value nothing can
// observe needs no restore. A hop runs (init?) tele (check?) with tele
// always preceding check, so a slot stays in the reset set iff it is
// read-before-written in init, in tele, or in check without an
// unconditional tele write covering it. The reject flag is force-kept
// (Reject reads it from outside the bytecode after the trace), as are
// array regions (their element stores index dynamically, which the
// linear read/write scan does not track).
func (p *Prog) computeResetRuns(tempStart int32) {
	scratch := func(si int32) bool {
		return si >= int32(p.nTele) && si < tempStart
	}
	writable := make(map[int32]bool)
	add := func(si int32) {
		if scratch(si) {
			writable[si] = true
		}
	}
	for _, code := range [][]Instr{p.init, p.tele, p.check} {
		for i := range code {
			switch code[i].Op {
			case opAssign, opLoadF:
				add(code[i].A)
			case opRegRead:
				add(code[i].A)
			case opApply:
				site := &p.applies[code[i].A]
				for _, o := range site.outs {
					add(o)
				}
				add(site.hit)
			case opPush, opSetSlot:
				site := &p.arrays[code[i].A]
				for s := site.start; s < site.start+site.capN; s++ {
					add(s)
				}
				add(site.cnt)
			default:
				// Expression ops write only statement-scoped temps.
			}
		}
	}
	for _, si := range p.bindSlots {
		add(si)
	}

	rbwInit, _ := p.blockFlow(p.init, scratch)
	rbwTele, mustTele := p.blockFlow(p.tele, scratch)
	rbwCheck, _ := p.blockFlow(p.check, scratch)
	need := make(map[int32]bool, len(writable))
	for si := range rbwInit {
		need[si] = true
	}
	for si := range rbwTele {
		need[si] = true
	}
	for si := range rbwCheck {
		if !mustTele[si] {
			need[si] = true
		}
	}
	need[p.slotReject] = true
	for i := range p.arrays {
		site := &p.arrays[i]
		for s := site.start; s < site.start+site.capN; s++ {
			need[s] = true
		}
		need[site.cnt] = true
	}

	for si := int32(0); si < int32(p.nTele); si++ {
		p.dirtySlots = append(p.dirtySlots, si)
	}
	for si := range writable {
		p.dirtySlots = append(p.dirtySlots, si)
	}
	for _, si := range []int32{p.slotSwitch, p.slotPktLen, p.slotLast, p.slotFirst} {
		if scratch(si) && !writable[si] {
			p.dirtySlots = append(p.dirtySlots, si)
		}
	}
	for si := tempStart; si < int32(p.nSlots); si++ {
		p.dirtySlots = append(p.dirtySlots, si)
	}
	sort.Slice(p.dirtySlots, func(i, j int) bool { return p.dirtySlots[i] < p.dirtySlots[j] })

	slots := make([]int32, 0, len(writable))
	for si := range writable {
		if need[si] {
			slots = append(slots, si)
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	// Coalesce, bridging gaps of up to 4 slots: one slightly longer
	// copy beats two loop iterations.
	for _, si := range slots {
		if n := len(p.resetRuns); n > 0 && si-p.resetRuns[n-1][1] <= 4 {
			p.resetRuns[n-1][1] = si + 1
			continue
		}
		p.resetRuns = append(p.resetRuns, [2]int32{si, si + 1})
	}
}

// blockFlow scans one block for the scratch slots it may read before
// writing (rbw) and the slots it definitely writes (mustW). The
// structured IR compiles to forward jumps only, so an instruction is
// unconditionally executed iff no earlier jump can land past it; only
// unconditional writes count as definite, while reads count wherever
// they appear. The analysis is conservative: over-approximating rbw or
// under-approximating mustW merely keeps a slot in the reset set.
func (p *Prog) blockFlow(code []Instr, scratch func(int32) bool) (rbw, mustW map[int32]bool) {
	rbw = make(map[int32]bool)
	mustW = make(map[int32]bool)
	condUntil := 0
	read := func(si int32) {
		if scratch(si) && !mustW[si] {
			rbw[si] = true
		}
	}
	for i := range code {
		in := &code[i]
		uncond := i >= condUntil
		dst := int32(-1)
		jmp := -1
		switch in.Op {
		case opAssign, opLoadF, opNot, opBNot, opNeg, opAbs:
			read(in.B)
			dst = in.A
		case opBoolAnd, opBoolOr, opAdd, opSub, opMul, opDiv, opMod,
			opBAnd, opBOr, opBXor, opShl, opShr, opMax, opMin,
			opEq, opNe, opLt, opLe, opGt, opGe:
			read(in.B)
			read(in.C)
			dst = in.A
		case opSelect:
			read(in.B)
			read(in.C)
			read(in.D)
			dst = in.A
		case opJmp:
			jmp = int(in.A)
		case opJz, opJnz:
			read(in.A)
			jmp = int(in.B)
		case opJzEq, opJzNe, opJzLt, opJzLe, opJzGt, opJzGe, opJzAnd, opJzOr:
			read(in.B)
			read(in.C)
			jmp = int(in.D)
		case opApply:
			site := &p.applies[in.A]
			for _, k := range site.keys {
				read(k)
			}
			if uncond {
				for _, o := range site.outs {
					mustW[o] = true
				}
				mustW[site.hit] = true
			}
		case opRegRead:
			read(in.C)
			dst = in.A
		case opRegWrite:
			read(in.B)
			read(in.C)
		case opPush:
			site := &p.arrays[in.A]
			read(site.cnt)
			read(in.B)
		case opSetSlot:
			site := &p.arrays[in.A]
			read(site.cnt)
			read(in.B)
			read(in.C)
		case opReport:
			site := &p.reports[in.A]
			for _, a := range site.args {
				read(a)
			}
		}
		if jmp > condUntil {
			condUntil = jmp
		}
		if dst >= 0 && uncond {
			mustW[dst] = true
		}
	}
	return rbw, mustW
}

// ---------------------------------------------------------------------------
// Introspection

// NumSlots returns the PHV vector length.
func (p *Prog) NumSlots() int { return p.nSlots }

// NumInstrs returns the total instruction count across all blocks.
func (p *Prog) NumInstrs() int { return len(p.init) + len(p.tele) + len(p.check) }

// BlockSizes renders the per-block instruction counts for diagnostics.
func (p *Prog) BlockSizes() string {
	return fmt.Sprintf("init=%d tele=%d check=%d", len(p.init), len(p.tele), len(p.check))
}

// Bindings returns the header-binding paths the program reads, in the
// order HopEnv.SlotHeaders must be laid out (sorted, deduplicated).
func (p *Prog) Bindings() []string { return p.bindings }

// BindSlots returns the PHV slot for each Bindings() entry, so
// embedders can precompute direct header scatter plans.
func (p *Prog) BindSlots() []int32 { return p.bindSlots }

// SlotOf resolves a field to its slot index, if the program references
// it anywhere.
func (p *Prog) SlotOf(f pipeline.FieldRef) (int, bool) {
	s, ok := p.slots[f]
	return int(s), ok
}

// RejectOnlyInChecker reports whether the reject flag can only be
// written by the checker block. When true (every corpus checker), and
// checking runs at the last hop only, a packet's reject verdict cannot
// arise mid-trace — so checker-major batched execution is
// verdict-identical to hop-major per-packet execution.
func (p *Prog) RejectOnlyInChecker() bool { return !p.rejectOutsideChecker }

// writesReject reports whether any op in the block (conservatively)
// writes the reject flag.
func writesReject(prog *pipeline.Program, ops []pipeline.Op) bool {
	found := false
	pipeline.WalkOps(ops, func(op pipeline.Op) {
		switch op := op.(type) {
		case pipeline.AssignOp:
			if op.Dst == pipeline.FieldReject {
				found = true
			}
		case pipeline.RegReadOp:
			if op.Dst == pipeline.FieldReject {
				found = true
			}
		case pipeline.ApplyOp:
			if _, spec, err := tableIndex(prog, op.Table); err == nil {
				for _, o := range spec.Outputs {
					if o == pipeline.FieldReject {
						found = true
					}
				}
			}
		}
	})
	return found
}

// ResetRuns exposes the per-hop restore ranges for diagnostics and
// tests (shared backing; callers must not mutate).
func (p *Prog) ResetRuns() [][2]int32 { return p.resetRuns }

// DirtySlots returns every PHV slot index some execution can write —
// the largest set of slots a reused context can carry stale values in
// (shared backing; callers must not mutate). The aliasing suite
// poisons exactly these between packets; constants and read-only field
// slots stay pristine by construction, which is what makes skipping
// their restore sound.
func (p *Prog) DirtySlots() []int32 { return p.dirtySlots }
