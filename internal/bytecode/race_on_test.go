//go:build race

package bytecode_test

// raceEnabled reports whether the race detector is instrumenting this
// build; its shadow-memory bookkeeping allocates, which breaks
// allocation-count assertions.
const raceEnabled = true
