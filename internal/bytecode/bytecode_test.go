package bytecode_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// f is a width-annotated field read.
func f(ref string, w int) pipeline.Field {
	return pipeline.Field{Ref: pipeline.FieldRef(ref), Width: w}
}

func c(w int, v uint64) pipeline.Const { return pipeline.C(w, v) }

func bin(op pipeline.OpCode, x, y pipeline.Expr) pipeline.Expr {
	return pipeline.Bin{Op: op, X: x, Y: y}
}

// tortureProgram exercises every IR construct and the semantic edge
// cases the VM must preserve bit-for-bit: telemetry scalars and
// arrays, scratch arrays with shift-eviction and out-of-range slot
// writes, width-defaulted reads of never-written fields, eager
// compilation of short-circuit operators over division by zero,
// oversized shifts, two's-complement abs/neg, mux, exact and TCAM
// tables, registers, and nested control flow.
func tortureProgram() *pipeline.Program {
	hopsF := pipeline.Field{Ref: pipeline.FieldHops, Width: 8}
	h0 := f("hdr.x.h0", 8)
	return &pipeline.Program{
		Name: "torture",
		Tables: []pipeline.TableSpec{
			{
				Name:         "exact_t",
				Keys:         []pipeline.KeySpec{{Name: "k", Width: 8, Kind: pipeline.MatchExact}},
				Outputs:      []pipeline.FieldRef{"exact_t.out"},
				OutputWidths: []int{16},
				Default:      []pipeline.Value{pipeline.B(16, 7)},
			},
			{
				Name:         "tcam_t",
				Keys:         []pipeline.KeySpec{{Name: "k", Width: 8, Kind: pipeline.MatchTernary}},
				Outputs:      []pipeline.FieldRef{"tcam_t.out"},
				OutputWidths: []int{8},
				Default:      []pipeline.Value{pipeline.B(8, 9)},
			},
		},
		Registers: []pipeline.RegisterSpec{{Name: "reg", Width: 16, Size: 4}},
		Tele: []pipeline.TeleField{
			{Name: "t_scalar", Width: 12},
			{Name: "t_arr", Width: 5, IsArray: true, Cap: 3},
		},
		HeaderBindings: map[string]string{"h0": "hdr.x.h0"},
		Init: []pipeline.Op{
			pipeline.AssignOp{Dst: "t_scalar", DstWidth: 12, Src: c(12, 1)},
		},
		Telemetry: []pipeline.Op{
			// Accumulating telemetry scalar (wraps at 12 bits).
			pipeline.AssignOp{Dst: "t_scalar", DstWidth: 12, Src: bin(pipeline.OpAdd,
				f("t_scalar", 12), bin(pipeline.OpMul, h0, c(12, 3)))},
			// Telemetry array: evicts oldest once 3 hops have pushed.
			pipeline.PushOp{Base: "t_arr", ElemWidth: 5, Cap: 3, Src: hopsF},
			// Scratch array, reset every hop.
			pipeline.PushOp{Base: "s_arr", ElemWidth: 7, Cap: 2, Src: h0},
			pipeline.PushOp{Base: "s_arr", ElemWidth: 7, Cap: 2, Src: bin(pipeline.OpBXor, h0, c(7, 0x55))},
			pipeline.PushOp{Base: "s_arr", ElemWidth: 7, Cap: 2, Src: c(7, 1)}, // evicts
			// Slot write, out of range when h0 >= 4.
			pipeline.SetSlotOp{Base: "s2", ElemWidth: 9, Cap: 4, Index: h0, Src: bin(pipeline.OpAdd, h0, c(9, 100))},
			// TCAM apply keyed by the header.
			pipeline.ApplyOp{Table: "tcam_t", Keys: []pipeline.Expr{h0}},
			// Register accumulation: reg[1] += h0 + tcam hit flag.
			pipeline.RegReadOp{Reg: "reg", Index: c(2, 1), Dst: "regv", Width: 16},
			pipeline.RegWriteOp{Reg: "reg", Index: c(2, 1), Src: bin(pipeline.OpAdd,
				f("regv", 16), bin(pipeline.OpAdd, h0, f("tcam_t.$hit", 1)))},
		},
		Checker: []pipeline.Op{
			// Exact apply keyed by the scalar's low byte.
			pipeline.ApplyOp{Table: "exact_t", Keys: []pipeline.Expr{bin(pipeline.OpBAnd, f("t_scalar", 12), c(12, 0xFF))}},
			// Eager || and && over division by a possibly-zero header.
			pipeline.AssignOp{Dst: "lazy", DstWidth: 1, Src: bin(pipeline.OpLOr,
				bin(pipeline.OpEq, h0, c(8, 0)),
				bin(pipeline.OpEq, bin(pipeline.OpDiv, c(8, 8), h0), c(8, 2)))},
			pipeline.AssignOp{Dst: "lazy2", DstWidth: 1, Src: bin(pipeline.OpLAnd,
				bin(pipeline.OpNe, h0, c(8, 0)),
				bin(pipeline.OpGt, bin(pipeline.OpMod, c(8, 200), h0), c(8, 1)))},
			// Oversized shift amounts yield zero.
			pipeline.AssignOp{Dst: "bigshift", DstWidth: 8, Src: c(8, 200)},
			pipeline.AssignOp{Dst: "sh", DstWidth: 16, Src: bin(pipeline.OpShl, c(16, 3), f("bigshift", 8))},
			// Two's-complement abs/neg, max/min, mux on the TCAM hit.
			pipeline.AssignOp{Dst: "absv", DstWidth: 8, Src: pipeline.Unary{Op: pipeline.OpAbs,
				X: bin(pipeline.OpSub, h0, c(8, 9))}},
			pipeline.AssignOp{Dst: "mm", DstWidth: 12, Src: bin(pipeline.OpMax,
				f("t_scalar", 12), bin(pipeline.OpMin, f("absv", 8), c(12, 6)))},
			pipeline.AssignOp{Dst: "muxv", DstWidth: 8, Src: pipeline.Mux{
				Cond: f("tcam_t.$hit", 1),
				X:    f("tcam_t.out", 8),
				Y:    pipeline.Unary{Op: pipeline.OpNeg, X: h0},
			}},
			// Nested control flow raising width-sensitive reports:
			// "unwritten.field" is never assigned, so its report arg must
			// carry the declared 9-bit width with value zero.
			pipeline.IfOp{
				Cond: bin(pipeline.OpGt, f("regv", 16), c(16, 3)),
				Then: []pipeline.Op{
					pipeline.IfOp{
						Cond: f("lazy", 1),
						Then: []pipeline.Op{pipeline.ReportOp{Args: []pipeline.Expr{
							f("regv", 16), f("unwritten.field", 9), f("t_arr.$count", 8),
							f("s_arr.1", 7), f("mm", 12),
						}}},
						Else: []pipeline.Op{pipeline.ReportOp{Args: []pipeline.Expr{f("muxv", 8), f("sh", 16)}}},
					},
				},
				Else: []pipeline.Op{
					pipeline.AssignOp{Dst: "mm", DstWidth: 12, Src: c(12, 0xFFF)},
				},
			},
			// Reject when the trace ran 3+ hops and the exact table hit.
			pipeline.AssignOp{Dst: pipeline.FieldReject, DstWidth: 1, Src: bin(pipeline.OpLAnd,
				bin(pipeline.OpGe, hopsF, c(8, 3)), f("exact_t.$hit", 1))},
		},
	}
}

// installTorture populates one switch state with table entries for the
// torture program.
func installTorture(t *testing.T, st *pipeline.State) {
	t.Helper()
	// 1*… accumulations land on a few of these exact keys depending on
	// the header sequence; cover hit and miss.
	for _, k := range []uint64{1, 13, 25, 52, 61, 97} {
		if err := st.Tables["exact_t"].Insert(pipeline.Entry{
			Keys:   []pipeline.KeyMatch{pipeline.ExactKey(k)},
			Action: []pipeline.Value{pipeline.B(16, 1000 + k)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Ternary: match any key with low bit set, higher priority for 0x03.
	if err := st.Tables["tcam_t"].Insert(pipeline.Entry{
		Keys:     []pipeline.KeyMatch{pipeline.TernaryKey(0x01, 0x01)},
		Priority: 1,
		Action:   []pipeline.Value{pipeline.B(8, 21)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Tables["tcam_t"].Insert(pipeline.Entry{
		Keys:     []pipeline.KeyMatch{pipeline.TernaryKey(0x03, 0x03)},
		Priority: 2,
		Action:   []pipeline.Value{pipeline.B(8, 42)},
	}); err != nil {
		t.Fatal(err)
	}
}

// tortureTraces covers one-hop, mid-length and eviction-length traces
// with header values hitting the div-by-zero, out-of-range-slot, and
// TCAM priority paths.
func tortureTraces() [][]uint64 {
	return [][]uint64{
		{0},
		{4},
		{1, 0},
		{3, 7, 2},
		{0, 1, 2, 3, 4},
		{9, 5, 250, 0, 1, 6, 7},
	}
}

// TestVMPerHopParity threads the per-hop blob roundtrip through the
// linked closures and the bytecode VM and demands identical HopResults
// — blob bytes, verdicts, reports, and performance counters — at every
// hop.
func TestVMPerHopParity(t *testing.T) {
	prog := tortureProgram()
	rtLk := &compiler.Runtime{Prog: prog}
	rtVM := &compiler.Runtime{Prog: prog, UseVM: true}
	if rtVM.VM() == nil {
		t.Fatal("bytecode backend unavailable")
	}

	for ti, headers := range tortureTraces() {
		stLk, stVM := prog.NewState(), prog.NewState()
		installTorture(t, stLk)
		installTorture(t, stVM)

		var blobLk, blobVM []byte
		for i, hv := range headers {
			first, last := i == 0, i == len(headers)-1
			hdr := map[string]pipeline.Value{"hdr.x.h0": pipeline.B(8, hv)}
			hrLk, err := rtLk.RunHop(blobLk, compiler.HopEnv{State: stLk, SwitchID: uint32(i%3 + 1), Headers: hdr, PacketLen: 100}, first, last)
			if err != nil {
				t.Fatalf("trace %d hop %d linked: %v", ti, i, err)
			}
			hrVM, err := rtVM.RunHop(blobVM, compiler.HopEnv{State: stVM, SwitchID: uint32(i%3 + 1), Headers: hdr, PacketLen: 100}, first, last)
			if err != nil {
				t.Fatalf("trace %d hop %d vm: %v", ti, i, err)
			}
			if !bytes.Equal(hrLk.Blob, hrVM.Blob) {
				t.Fatalf("trace %d hop %d blob: linked %x vm %x", ti, i, hrLk.Blob, hrVM.Blob)
			}
			if hrLk.Reject != hrVM.Reject {
				t.Fatalf("trace %d hop %d reject: linked %v vm %v", ti, i, hrLk.Reject, hrVM.Reject)
			}
			if !reflect.DeepEqual(hrLk.Reports, hrVM.Reports) {
				t.Fatalf("trace %d hop %d reports: linked %+v vm %+v", ti, i, hrLk.Reports, hrVM.Reports)
			}
			if hrLk.TableApplies != hrVM.TableApplies || hrLk.OpsExecuted != hrVM.OpsExecuted {
				t.Fatalf("trace %d hop %d counters: linked (%d,%d) vm (%d,%d)", ti, i,
					hrLk.TableApplies, hrLk.OpsExecuted, hrVM.TableApplies, hrVM.OpsExecuted)
			}
			blobLk, blobVM = hrLk.Blob, hrVM.Blob
		}

		// Register state converged identically.
		for i := 0; i < 4; i++ {
			if a, b := stLk.Registers["reg"].Read(i), stVM.Registers["reg"].Read(i); a != b {
				t.Fatalf("trace %d reg[%d]: linked %d vm %d", ti, i, a, b)
			}
		}
	}
}

// TestVMResidentTraceParity pins the key batching lemma: whole-trace
// resident-PHV execution (no per-hop codec) is byte-equivalent to the
// per-hop blob roundtrip.
func TestVMResidentTraceParity(t *testing.T) {
	prog := tortureProgram()
	rt := &compiler.Runtime{Prog: prog}
	for ti, headers := range tortureTraces() {
		stLk, stVM := prog.NewState(), prog.NewState()
		installTorture(t, stLk)
		installTorture(t, stVM)

		lkEnvs := make([]compiler.HopEnv, len(headers))
		vmEnvs := make([]compiler.HopEnv, len(headers))
		for i, hv := range headers {
			hdr := map[string]pipeline.Value{"hdr.x.h0": pipeline.B(8, hv)}
			lkEnvs[i] = compiler.HopEnv{State: stLk, SwitchID: uint32(i%3 + 1), Headers: hdr, PacketLen: 64}
			vmEnvs[i] = compiler.HopEnv{State: stVM, SwitchID: uint32(i%3 + 1), Headers: hdr, PacketLen: 64}
		}
		want, err := rt.RunTrace(lkEnvs)
		if err != nil {
			t.Fatalf("trace %d linked: %v", ti, err)
		}
		got, err := rt.RunTraceVM(vmEnvs)
		if err != nil {
			t.Fatalf("trace %d vm: %v", ti, err)
		}
		if want.Reject != got.Reject {
			t.Fatalf("trace %d reject: linked %v vm %v", ti, want.Reject, got.Reject)
		}
		if !bytes.Equal(want.FinalBlob, got.FinalBlob) {
			t.Fatalf("trace %d final blob: linked %x vm %x", ti, want.FinalBlob, got.FinalBlob)
		}
		if !reflect.DeepEqual(want.Reports, got.Reports) {
			t.Fatalf("trace %d reports: linked %+v vm %+v", ti, want.Reports, got.Reports)
		}
	}
}

// TestCorpusCompiles compiles every corpus checker to bytecode.
func TestCorpusCompiles(t *testing.T) {
	for _, p := range checkers.All {
		prog, err := parser.Parse(p.Key, p.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Key, err)
		}
		info, err := types.Check(prog)
		if err != nil {
			t.Fatalf("%s: types: %v", p.Key, err)
		}
		compiled, err := compiler.Compile(info, compiler.Options{Name: p.Key})
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Key, err)
		}
		vp, err := bytecode.Compile(compiled)
		if err != nil {
			t.Fatalf("%s: bytecode: %v", p.Key, err)
		}
		if vp.NumInstrs() == 0 {
			t.Fatalf("%s: empty bytecode", p.Key)
		}
		if vp.NumSlots() == 0 {
			t.Fatalf("%s: empty PHV", p.Key)
		}
	}
}

// TestBatchCacheRevalidation pins the TCAM cache freshness contract:
// within a trust-caches window (BeginBatch) installs may be invisible,
// but the next BeginBatch must observe them.
func TestBatchCacheRevalidation(t *testing.T) {
	prog := tortureProgram()
	vp, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installTorture(t, st)

	slot, ok := vp.SlotOf("tcam_t.out")
	if !ok {
		t.Fatal("tcam_t.out not interned")
	}
	run := func(c *bytecode.Ctx, h0 uint64) uint64 {
		vp.BeginHop(c, st, 1, 100, true, true)
		vp.BindHeaderMap(c.PHV, map[string]pipeline.Value{"hdr.x.h0": pipeline.B(8, h0)})
		vp.ExecInit(c)
		vp.ExecTelemetry(c)
		return c.PHV[slot].V
	}

	c := vp.AcquireCtx()
	defer vp.ReleaseCtx(c)

	vp.BeginBatch(c)
	if got := run(c, 0x04); got != 9 { // miss -> default
		t.Fatalf("pre-install lookup = %d, want default 9", got)
	}
	// Install a higher-priority entry matching 0x04 mid-batch: the
	// trusted cache may serve the stale default…
	if err := st.Tables["tcam_t"].Insert(pipeline.Entry{
		Keys:     []pipeline.KeyMatch{pipeline.TernaryKey(0x04, 0x04)},
		Priority: 3,
		Action:   []pipeline.Value{pipeline.B(8, 77)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := run(c, 0x04); got != 9 {
		t.Fatalf("mid-batch lookup = %d, want stale 9 (trusted cache)", got)
	}
	// …but the next batch boundary must see it.
	vp.BeginBatch(c)
	if got := run(c, 0x04); got != 77 {
		t.Fatalf("post-BeginBatch lookup = %d, want 77", got)
	}
}

// TestVMSteadyStateAllocs drives whole-trace executions with ephemeral
// reports through a persistent context and requires zero allocations
// per trace at steady state — the property the engine's batch path is
// built on.
func TestVMSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	prog := tortureProgram()
	vp, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.NewState()
	installTorture(t, st)

	headers := []pipeline.Value{
		pipeline.B(8, 9), pipeline.B(8, 5), pipeline.B(8, 250), pipeline.B(8, 1),
	}
	c := vp.AcquireCtx()
	defer vp.ReleaseCtx(c)

	var sink int
	trace := func() {
		c.BeginEphemeralReports()
		vp.BeginTrace(c)
		for i, hv := range headers {
			vp.BeginHop(c, st, uint32(i%3+1), 100, i == 0, i == len(headers)-1)
			vp.BindHeaderSlots(c.PHV, headers[i:i+1])
			_ = hv
			if i == 0 {
				vp.ExecInit(c)
			}
			vp.ExecTelemetry(c)
			if i == len(headers)-1 {
				vp.ExecChecker(c)
			}
		}
		sink += len(c.Reports)
		if vp.Reject(c) {
			sink++
		}
	}
	vp.BeginBatch(c)
	for i := 0; i < 10; i++ { // warmup: caches, arena, report buffer
		trace()
	}
	if n := testing.AllocsPerRun(200, trace); n > 0 {
		t.Fatalf("steady-state trace allocates %v times, want 0 (sink %d)", n, sink)
	}
}

// TestDecodeErrors pins the truncated-blob error parity with the
// linked codec.
func TestDecodeErrors(t *testing.T) {
	prog := tortureProgram()
	vp, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	lk := pipeline.MustLink(prog)
	if got, want := vp.TeleWireBytes(), lk.TeleWireBytes(); got != want {
		t.Fatalf("TeleWireBytes: vm %d linked %d", got, want)
	}
	phv := make([]pipeline.Value, vp.NumSlots())
	short := make([]byte, vp.TeleWireBytes()-1)
	if err := vp.DecodeTele(short, phv); err == nil {
		t.Fatal("short blob: want error")
	}
	if err := vp.DecodeTele(nil, phv); err != nil {
		t.Fatalf("empty blob: %v", err)
	}
}

// TestCompileUndeclaredResources mirrors the link-time rejection of
// programs touching undeclared state.
func TestCompileUndeclaredResources(t *testing.T) {
	bad := &pipeline.Program{
		Name:    "bad",
		Checker: []pipeline.Op{pipeline.ApplyOp{Table: "nope"}},
	}
	if _, err := bytecode.Compile(bad); err == nil {
		t.Fatal("undeclared table: want error")
	}
	bad2 := &pipeline.Program{
		Name:    "bad2",
		Checker: []pipeline.Op{pipeline.RegReadOp{Reg: "nope", Index: c(1, 0), Dst: "d", Width: 8}},
	}
	if _, err := bytecode.Compile(bad2); err == nil {
		t.Fatal("undeclared register: want error")
	}
}

var benchSink uint64

// BenchmarkBytecodeDispatch measures raw dispatch-loop throughput on
// the torture program's telemetry block (hot per-hop shape: scratch
// reset, bind, exec).
func BenchmarkBytecodeDispatch(b *testing.B) {
	prog := tortureProgram()
	vp, err := bytecode.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	st := prog.NewState()
	for _, k := range []uint64{1, 13, 25} {
		if err := st.Tables["exact_t"].Insert(pipeline.Entry{
			Keys:   []pipeline.KeyMatch{pipeline.ExactKey(k)},
			Action: []pipeline.Value{pipeline.B(16, 1000 + k)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Tables["tcam_t"].Insert(pipeline.Entry{
		Keys:     []pipeline.KeyMatch{pipeline.TernaryKey(0x01, 0x01)},
		Priority: 1,
		Action:   []pipeline.Value{pipeline.B(8, 21)},
	}); err != nil {
		b.Fatal(err)
	}
	hdr := []pipeline.Value{pipeline.B(8, 9)}
	c := vp.AcquireCtx()
	defer vp.ReleaseCtx(c)
	c.BeginEphemeralReports()
	vp.BeginBatch(c)
	vp.BeginTrace(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp.BeginHop(c, st, 1, 100, false, false)
		vp.BindHeaderSlots(c.PHV, hdr)
		vp.ExecTelemetry(c)
		benchSink += c.PHV[0].V
	}
}

func ExampleProg_NumInstrs() {
	prog := tortureProgram()
	vp := bytecode.MustCompile(prog)
	fmt.Println(vp.NumInstrs() > 0)
	// Output: true
}
