//go:build !race

package bytecode_test

const raceEnabled = false
