package fleet

import (
	"fmt"
	"os"

	"repro/internal/pcapio"
)

// Source yields link-layer frames for the ingest daemon. Next returns
// io.EOF at a clean end of stream; the frame slice may be reused by the
// next call.
type Source interface {
	Next() ([]byte, error)
	Close() error
}

// PcapSource replays frames from a classic libpcap capture file.
type PcapSource struct {
	f *os.File
	r *pcapio.Reader
}

// OpenPcap opens a capture file as a frame source.
func OpenPcap(path string) (*PcapSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := pcapio.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if lt := r.LinkType(); lt != pcapio.LinkEthernet {
		f.Close()
		return nil, fmt.Errorf("fleet: capture link type %d, want Ethernet (%d)", lt, pcapio.LinkEthernet)
	}
	return &PcapSource{f: f, r: r}, nil
}

// Next implements Source.
func (s *PcapSource) Next() ([]byte, error) {
	_, frame, err := s.r.Next()
	return frame, err
}

// Close implements Source.
func (s *PcapSource) Close() error { return s.f.Close() }
