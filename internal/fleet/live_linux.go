//go:build hydralive && linux

package fleet

import (
	"fmt"
	"syscall"
	"unsafe"
)

// liveSource reads frames from an AF_PACKET raw socket bound to one
// interface. It is the minimal blocking-recv capture path — no mmap
// ring, no BPF filter — enough to point the ingest daemon at a real
// mirror port.
type liveSource struct {
	fd  int
	buf []byte
}

// htons converts a short to network byte order for the socket bind.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// OpenLive attaches to iface for live capture (requires CAP_NET_RAW).
func OpenLive(iface string) (Source, error) {
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(syscall.ETH_P_ALL)))
	if err != nil {
		return nil, fmt.Errorf("fleet: AF_PACKET socket: %w", err)
	}
	ifi, err := interfaceIndex(iface)
	if err != nil {
		syscall.Close(fd)
		return nil, err
	}
	sll := &syscall.SockaddrLinklayer{
		Protocol: htons(syscall.ETH_P_ALL),
		Ifindex:  ifi,
	}
	if err := syscall.Bind(fd, sll); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("fleet: binding to %s: %w", iface, err)
	}
	return &liveSource{fd: fd, buf: make([]byte, 1<<16)}, nil
}

// ifreq mirrors struct ifreq for SIOCGIFINDEX: the interface name
// followed by a union, of which we only read the int32 index.
type ifreq struct {
	Name  [16]byte
	Index int32
	_     [20]byte
}

func interfaceIndex(name string) (int, error) {
	if len(name) >= 16 {
		return 0, fmt.Errorf("fleet: interface name %q too long", name)
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return 0, err
	}
	defer syscall.Close(fd)
	var req ifreq
	copy(req.Name[:], name)
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd),
		uintptr(syscall.SIOCGIFINDEX), uintptr(unsafe.Pointer(&req)))
	if errno != 0 {
		return 0, fmt.Errorf("fleet: resolving interface %s: %w", name, errno)
	}
	return int(req.Index), nil
}

// Next implements Source, blocking until one frame arrives.
func (s *liveSource) Next() ([]byte, error) {
	for {
		n, _, err := syscall.Recvfrom(s.fd, s.buf, 0)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return nil, err
		}
		return s.buf[:n], nil
	}
}

// Close implements Source.
func (s *liveSource) Close() error { return syscall.Close(s.fd) }
