// Package fleet is the multi-process verification topology: an ingest
// daemon reading mirrored frames from a capture, N engine worker
// processes each wrapping the batched bytecode engine, and a central
// aggregator federating every worker's report-bus output.
//
//	capture ──▶ hydra-ingestd ──(wireproto: packet batches)──▶ hydra-workerd ×N
//	                                                               │
//	                                      (wireproto: aggregates, stats, summaries)
//	                                                               ▼
//	                                                          hydra-aggd
//
// The package implements the daemons as libraries (Ingest, Worker,
// Agg) so the same code runs in-process under `go test`, wrapped by
// thin cmd/ binaries, and spawned via exec by the `hydra-bench -fleet`
// harness.
package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/engine"
	"repro/internal/reportbus"
	"repro/internal/wireproto"
)

// Hello opens every fleet connection.
type Hello struct {
	Role string `json:"role"` // "ingest" or "worker"
	Node string `json:"node"`
	// Session distinguishes incarnations of the same worker across
	// crash/restart cycles; the aggregator ledgers per session.
	Session uint64 `json:"session,omitempty"`
	PID     int    `json:"pid,omitempty"`
}

// Seed is one chunk of the stateful-firewall seed set — the flow pairs
// the replay's control plane allowed before traffic started. The
// ingest daemon derives it from a pre-scan of the capture and replays
// it to a worker on every (re)connect, so a restarted worker rebuilds
// the same control state.
type Seed struct {
	Pairs [][2]uint32 `json:"pairs"`
	// Done marks the final chunk; the worker builds its engine when it
	// arrives.
	Done bool `json:"done,omitempty"`
	// Packets is the total the ingest expects to stream (informational).
	Packets uint64 `json:"packets,omitempty"`
}

// VerdictCount is one equivalence class of per-packet verdicts with
// its multiplicity — the unit of the fleet's parity check against the
// in-process engine.
type VerdictCount struct {
	Reject  bool   `json:"reject"`
	Reports int32  `json:"reports"`
	Count   uint64 `json:"count"`
}

// EngineCounts mirrors engine.Counts in wire form.
type EngineCounts struct {
	Packets   uint64 `json:"packets"`
	Forwarded uint64 `json:"forwarded"`
	Rejected  uint64 `json:"rejected"`
	Reports   uint64 `json:"reports"`
	Errors    uint64 `json:"errors"`
}

func countsFromEngine(c engine.Counts) EngineCounts {
	return EngineCounts{
		Packets:   c.Packets,
		Forwarded: c.Forwarded,
		Rejected:  c.Rejected,
		Reports:   c.Reports,
		Errors:    c.Errors,
	}
}

// Add accumulates o into c.
func (c *EngineCounts) Add(o EngineCounts) {
	c.Packets += o.Packets
	c.Forwarded += o.Forwarded
	c.Rejected += o.Rejected
	c.Reports += o.Reports
	c.Errors += o.Errors
}

// BusCounts is a worker report-bus snapshot in wire form. Every
// snapshot is internally consistent (taken under the bus mutex), so
// the aggregator can sum Unaccounted across sessions and trust the
// fleet-wide ledger.
type BusCounts struct {
	Published      uint64 `json:"published"`
	Dropped        uint64 `json:"dropped"`
	EmittedDigests uint64 `json:"emitted_digests"`
	LiveDigests    uint64 `json:"live_digests"`
	Unaccounted    int64  `json:"unaccounted"`
}

func busCountsFrom(m reportbus.Metrics) BusCounts {
	return BusCounts{
		Published:      m.Published,
		Dropped:        m.Dropped,
		EmittedDigests: m.EmittedDigests,
		LiveDigests:    m.LiveDigests,
		Unaccounted:    m.Unaccounted(),
	}
}

// Stats is a worker's periodic snapshot: how much it has processed and
// where its digests stand. Mid-run, Unaccounted counts digests queued
// in ingest rings (published, not yet collected) — it returns to 0 at
// every bus flush and stays 0 in the final Summary.
type Stats struct {
	Session uint64       `json:"session"`
	Node    string       `json:"node"`
	Counts  EngineCounts `json:"counts"`
	Bus     BusCounts    `json:"bus"`
}

// Summary is a worker's end-of-session ledger, sent after the engine
// drained and the bus closed.
type Summary struct {
	Session uint64       `json:"session"`
	Node    string       `json:"node"`
	Counts  EngineCounts `json:"counts"`
	Bus     BusCounts    `json:"bus"`
	// Verdicts is the per-packet verdict multiset, sorted by (reject,
	// reports).
	Verdicts []VerdictCount `json:"verdicts"`
	// Clean is false when the session ended by a broken ingest
	// connection rather than an orderly Fin.
	Clean bool `json:"clean"`
}

// AggBatch federates one closed report-bus window upstream.
type AggBatch struct {
	Session uint64                `json:"session"`
	Aggs    []reportbus.Aggregate `json:"aggs"`
}

// FinAck confirms a drained worker back to the ingest daemon.
type FinAck struct {
	Processed uint64 `json:"processed"`
}

// writeJSON marshals msg and frames it as typ.
func writeJSON(w *wireproto.Writer, typ byte, msg any) error {
	data, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("fleet: marshaling frame type %d: %w", typ, err)
	}
	return w.WriteFrame(typ, data)
}

// decodeJSON unmarshals a frame payload into msg.
func decodeJSON(f *wireproto.Frame, msg any) error {
	if err := json.Unmarshal(f.Payload, msg); err != nil {
		return fmt.Errorf("fleet: decoding frame type %d: %w", f.Type, err)
	}
	return nil
}
