package fleet

import (
	"io"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
	"repro/internal/trafficgen"
	"repro/internal/wireproto"
)

// ---------------------------------------------------------------------------
// Helpers

// campusFrames renders n campus-trace packets to wire form.
func campusFrames(n int) [][]byte {
	gen := trafficgen.NewCampus(trafficgen.CampusConfig{Seed: 7})
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = gen.Next().Decode().AppendTo(nil)
	}
	return frames
}

// memSource replays in-memory frames as a capture Source.
type memSource struct {
	frames [][]byte
	i      int
}

func (m *memSource) Next() ([]byte, error) {
	if m.i >= len(m.frames) {
		return nil, io.EOF
	}
	f := m.frames[m.i]
	m.i++
	return f, nil
}

func (m *memSource) Close() error { return nil }

var testHops = []engine.Hop{{SwitchID: 1, InPort: 1, OutPort: 2}}

func testPath(dataplane.FlowKey) []engine.Hop { return testHops }

// noopWorkerConfig runs a worker with zero checkers: every packet
// forwards, no digests — the plumbing is exercised, the verdicts are
// trivial.
func noopWorkerConfig(node, aggAddr string) WorkerConfig {
	return WorkerConfig{
		Node:          node,
		AggAddr:       aggAddr,
		BuildCheckers: func() ([]engine.Checker, error) { return nil, nil },
		Configure: func(install func(checker string, switchID uint32, fn func(*pipeline.State) error) error, pairs [][2]uint32) error {
			return nil
		},
	}
}

// ---------------------------------------------------------------------------
// Pure helpers

func TestFilterSeedPairs(t *testing.T) {
	pairs := [][2]uint32{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}
	kept, skipped := FilterSeedPairs(pairs, 2)
	want := [][2]uint32{{1, 1}, {3, 3}, {5, 5}}
	if !reflect.DeepEqual(kept, want) || skipped != 2 {
		t.Fatalf("FilterSeedPairs(skip 2) = %v skipped %d, want %v skipped 2", kept, skipped, want)
	}
	kept, skipped = FilterSeedPairs(pairs, 0)
	if !reflect.DeepEqual(kept, pairs) || skipped != 0 {
		t.Fatalf("FilterSeedPairs(skip 0) = %v skipped %d, want identity", kept, skipped)
	}
	kept, skipped = FilterSeedPairs(pairs, 1)
	if len(kept) != 0 || skipped != 5 {
		t.Fatalf("FilterSeedPairs(skip 1) = %v skipped %d, want empty skipped 5", kept, skipped)
	}
}

func TestAggKeyOf(t *testing.T) {
	a := reportbus.Aggregate{Checker: "path", SwitchID: 3, Args: []uint64{1, 2}}
	b := reportbus.Aggregate{Checker: "path", SwitchID: 3, Args: []uint64{1, 3}}
	c := reportbus.Aggregate{Checker: "path", SwitchID: 4, Args: []uint64{1, 2}}
	o := reportbus.Aggregate{Checker: "path", SwitchID: 3, Overflow: true}
	keys := map[string]bool{}
	for _, agg := range []reportbus.Aggregate{a, b, c, o} {
		keys[AggKeyOf(&agg)] = true
	}
	if len(keys) != 4 {
		t.Fatalf("expected 4 distinct content keys, got %d", len(keys))
	}
	if got := AggKeyOf(&o); got != "path|3|overflow" {
		t.Fatalf("overflow key = %q", got)
	}
	if got := AggKeyOf(&a); got != "path|3|1|2" {
		t.Fatalf("args key = %q", got)
	}
}

func TestVerdictCounts(t *testing.T) {
	vs := []engine.Verdict{
		{Reject: false, Reports: 0},
		{Reject: true, Reports: 2},
		{Reject: false, Reports: 0},
		{Reject: false, Reports: 1},
	}
	got := VerdictCountsOf(vs)
	want := []VerdictCount{
		{Reject: false, Reports: 0, Count: 2},
		{Reject: false, Reports: 1, Count: 1},
		{Reject: true, Reports: 2, Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("VerdictCountsOf = %+v, want %+v", got, want)
	}
	merged := MergeVerdictCounts(got, got)
	if merged[0].Count != 4 || merged[2].Count != 2 {
		t.Fatalf("MergeVerdictCounts doubled = %+v", merged)
	}
}

func TestNewIngestValidation(t *testing.T) {
	if _, err := NewIngest(IngestConfig{PathFor: testPath}); err == nil {
		t.Fatal("NewIngest without workers should fail")
	}
	if _, err := NewIngest(IngestConfig{Workers: []string{"x"}}); err == nil {
		t.Fatal("NewIngest without PathFor should fail")
	}
}

// ---------------------------------------------------------------------------
// In-process fleet (real Agg + Workers + Ingest over loopback)

func TestFleetInProcessClean(t *testing.T) {
	aggLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aggLn.Close()
	agg := NewAgg(AggConfig{Node: "agg", Logf: t.Logf})
	go agg.Serve(aggLn)

	const workers = 2
	addrs := make([]string, workers)
	for i := 0; i < workers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		w, err := NewWorker(noopWorkerConfig("w", aggLn.Addr().String()))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Connect(); err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		go w.Serve(ln)
		addrs[i] = ln.Addr().String()
	}

	const n = 3000
	ing, err := NewIngest(IngestConfig{
		Workers: addrs, PathFor: testPath, BatchSize: 64, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ing.Run(&memSource{frames: campusFrames(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != n || stats.Acked != n {
		t.Fatalf("packets/acked = %d/%d, want %d/%d", stats.Packets, stats.Acked, n, n)
	}
	if stats.Reconnects != 0 || stats.Dropped != nil {
		t.Fatalf("clean run saw reconnects=%d dropped=%v", stats.Reconnects, stats.Dropped)
	}
	if !agg.WaitSummaries(workers, 10*time.Second) {
		t.Fatalf("only %d summaries arrived", agg.Summaries())
	}
	rep := agg.Report()
	if !rep.Conserved {
		t.Fatalf("report not conserved: %+v", rep)
	}
	if rep.CleanSessions != workers || rep.Counts.Packets != n {
		t.Fatalf("clean=%d packets=%d, want %d/%d", rep.CleanSessions, rep.Counts.Packets, workers, n)
	}
	// Zero checkers: the verdict multiset is all-forward, no digests.
	if rep.ReceivedDigests != 0 || rep.SummarizedEmitted != 0 {
		t.Fatalf("checker-free run emitted digests: %+v", rep)
	}
	want := []VerdictCount{{Reject: false, Reports: 0, Count: n}}
	if !reflect.DeepEqual(rep.Verdicts, want) {
		t.Fatalf("verdicts = %+v, want %+v", rep.Verdicts, want)
	}
}

// ---------------------------------------------------------------------------
// Fake worker: exact drop-accounting scenarios

// fakeWorker accepts ingest sessions and misbehaves to order:
// creditGate delays the first credit of a session, closeAfterBatches
// hangs up mid-session without crediting (first session only).
type fakeWorker struct {
	ln       net.Listener
	sessions atomic.Int64

	creditGate        time.Duration
	closeAfterBatches int
}

func (fw *fakeWorker) serve() {
	for {
		conn, err := fw.ln.Accept()
		if err != nil {
			return
		}
		first := fw.sessions.Add(1) == 1
		go fw.session(conn, first)
	}
}

func (fw *fakeWorker) session(conn net.Conn, first bool) {
	defer conn.Close()
	r := wireproto.NewReader(conn)
	w := wireproto.NewWriter(conn)
	batches := 0
	gated := fw.creditGate > 0
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return
		}
		switch f.Type {
		case wireproto.TypePacketBatch:
			var d wireproto.BatchDecoder
			if err := d.Reset(f.Payload); err != nil {
				f.Release()
				return
			}
			n := 0
			for {
				p, err := d.Next()
				if err != nil || p == nil {
					break
				}
				n++
			}
			batches++
			if first && fw.closeAfterBatches > 0 && batches >= fw.closeAfterBatches {
				f.Release()
				return // hang up without crediting: in-flight packets die
			}
			if gated {
				time.Sleep(fw.creditGate)
				gated = false
			}
			w.WriteFrame(wireproto.TypeCredit, wireproto.AppendCredit(nil, uint32(n)))
		case wireproto.TypeFin:
			writeJSON(w, wireproto.TypeFinAck, FinAck{})
			f.Release()
			return
		}
		f.Release()
	}
}

func TestIngestBackpressureDrops(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fw := &fakeWorker{ln: ln, creditGate: 400 * time.Millisecond}
	go fw.serve()

	const n = 2000
	ing, err := NewIngest(IngestConfig{
		Workers:   []string{ln.Addr().String()},
		PathFor:   testPath,
		BatchSize: 16, Window: 1, QueueDepth: 1,
		DropAfter: 10 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ing.Run(&memSource{frames: campusFrames(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped["backpressure"] == 0 {
		t.Fatalf("expected backpressure drops, got %+v", stats.Dropped)
	}
	var droppedTotal uint64
	for _, v := range stats.Dropped {
		droppedTotal += v
	}
	if stats.Acked+droppedTotal != stats.Packets {
		t.Fatalf("accounting leak: acked %d + dropped %d != packets %d",
			stats.Acked, droppedTotal, stats.Packets)
	}
	if stats.Reconnects != 0 {
		t.Fatalf("backpressure must not reconnect, got %d", stats.Reconnects)
	}
}

func TestIngestReconnectDrops(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fw := &fakeWorker{ln: ln, closeAfterBatches: 1}
	go fw.serve()

	const n, batch = 2000, 32
	ing, err := NewIngest(IngestConfig{
		Workers:   []string{ln.Addr().String()},
		PathFor:   testPath,
		BatchSize: batch, Window: 1,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ing.Run(&memSource{frames: campusFrames(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", stats.Reconnects)
	}
	// At-most-once: exactly the one in-flight batch died with the
	// connection; everything else was delivered on the new session.
	if got := stats.Dropped["reconnect"]; got != batch {
		t.Fatalf("reconnect drops = %d, want %d (%+v)", got, batch, stats.Dropped)
	}
	if stats.Acked != n-batch {
		t.Fatalf("acked = %d, want %d", stats.Acked, n-batch)
	}
	if fw.sessions.Load() != 2 {
		t.Fatalf("fake worker saw %d sessions, want 2", fw.sessions.Load())
	}
}

// TestIngestWorkerUnreachable covers the terminal failure path: a
// worker address nobody listens on burns the dial retries and the
// batches are accounted "failed".
func TestIngestWorkerUnreachable(t *testing.T) {
	// Grab a port and close it so the dial reliably fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	const n = 200
	ing, err := NewIngest(IngestConfig{
		Workers:     []string{addr},
		PathFor:     testPath,
		BatchSize:   64,
		DialRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ing.Run(&memSource{frames: campusFrames(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Acked != 0 || stats.Dropped["failed"] != n {
		t.Fatalf("unreachable worker: acked=%d dropped=%+v, want 0/%d failed", stats.Acked, stats.Dropped, n)
	}
	if stats.Workers[0].Error == "" {
		t.Fatal("link error not surfaced")
	}
}

// TestIngestStop verifies SIGTERM semantics: Stop ends the dispatch
// loop early but the senders still drain and close cleanly, so
// everything dispatched is still accounted.
func TestIngestStop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fw := &fakeWorker{ln: ln}
	go fw.serve()

	ing, err := NewIngest(IngestConfig{
		Workers: []string{ln.Addr().String()}, PathFor: testPath,
		BatchSize: 8, Loops: 1000, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		ing.Stop()
	}()
	stats, err := ing.Run(&memSource{frames: campusFrames(500)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets == 0 || stats.Packets >= 500*1000 {
		t.Fatalf("stop did not truncate the replay: %d packets", stats.Packets)
	}
	if stats.Acked != stats.Packets {
		t.Fatalf("drained run: acked %d != packets %d", stats.Acked, stats.Packets)
	}
}

func TestOpenPcapRejectsNonEthernet(t *testing.T) {
	if _, err := OpenPcap("/dev/null"); err == nil {
		t.Fatal("OpenPcap(/dev/null) should fail")
	}
}

func TestOpenLiveStub(t *testing.T) {
	if _, err := OpenLive("eth0"); err == nil {
		t.Skip("built with hydralive; stub not in effect")
	}
}
