package fleet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/reportbus"
	"repro/internal/wireproto"
)

// WorkerConfig parameterizes one engine worker process.
type WorkerConfig struct {
	// Node names this worker in Hello and Summary frames.
	Node string
	// AggAddr is the aggregator to federate digests to; empty runs the
	// worker standalone (digests aggregate locally and are dropped at
	// the exporter boundary, but conservation accounting still holds).
	AggAddr string
	// BuildCheckers compiles the checker set for a new session's engine.
	BuildCheckers func() ([]engine.Checker, error)
	// Configure installs control state into a fresh engine: the benign
	// fabric tables plus the firewall seed pairs the ingest replayed.
	Configure func(install func(checker string, switchID uint32, fn func(*pipeline.State) error) error, pairs [][2]uint32) error
	// BusWindow is the report-bus aggregation window (default 5ms).
	BusWindow time.Duration
	// StatsEvery is the upstream Stats cadence (default 500ms).
	StatsEvery time.Duration
	// DialRetries/BackoffBase bound the aggregator dial (defaults 40,
	// 50ms).
	DialRetries int
	BackoffBase time.Duration
	// Metrics, when set, receives the worker instrumentation.
	Metrics *metrics.Registry
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Worker is the engine daemon: it accepts one ingest session at a
// time, wraps the batched bytecode engine around each, and federates
// every digest window plus a final conservation Summary to the
// aggregator.
type Worker struct {
	cfg    WorkerConfig
	agg    *aggLink
	active atomic.Int64

	mSessions *metrics.Counter
	mBatches  *metrics.Counter
	mPackets  *metrics.Counter
	mBatchLen *metrics.Histogram
	mBatchSec *metrics.Histogram
	mDigests  *metrics.Counter
}

// NewWorker validates the config and builds the daemon.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.BuildCheckers == nil || cfg.Configure == nil {
		return nil, errors.New("fleet: worker needs BuildCheckers and Configure")
	}
	if cfg.BusWindow <= 0 {
		cfg.BusWindow = 5 * time.Millisecond
	}
	if cfg.StatsEvery <= 0 {
		cfg.StatsEvery = 500 * time.Millisecond
	}
	if cfg.DialRetries <= 0 {
		cfg.DialRetries = 40
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	w := &Worker{cfg: cfg}
	reg := cfg.Metrics
	w.mSessions = reg.Counter("hydra_worker_sessions_total", "Ingest sessions accepted.", nil)
	w.mBatches = reg.Counter("hydra_worker_batches_total", "Packet batches checked.", nil)
	w.mPackets = reg.Counter("hydra_worker_packets_total", "Packets checked.", nil)
	w.mBatchLen = reg.Histogram("hydra_worker_batch_packets", "Packets per received batch.",
		[]float64{1, 16, 64, 256, 1024, 4096}, nil)
	w.mBatchSec = reg.Histogram("hydra_worker_batch_seconds", "Wall time checking one batch.", nil, nil)
	w.mDigests = reg.Counter("hydra_worker_digests_published_total", "Violation digests raised into the report bus.", nil)
	reg.GaugeFunc("hydra_worker_session_active", "Whether an ingest session is live.", nil,
		func() float64 { return float64(w.active.Load()) })
	return w, nil
}

// Connect dials the aggregator (when configured) with backoff and
// identifies this worker. Call before Serve.
func (w *Worker) Connect() error {
	if w.cfg.AggAddr == "" {
		return nil
	}
	backoff := w.cfg.BackoffBase
	var lastErr error
	for attempt := 0; attempt < w.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		conn, err := net.Dial("tcp", w.cfg.AggAddr)
		if err != nil {
			lastErr = err
			continue
		}
		link := &aggLink{conn: conn, w: wireproto.NewWriter(conn), logf: w.cfg.Logf}
		hello := Hello{Role: "worker", Node: w.cfg.Node, PID: os.Getpid()}
		if err := link.send(wireproto.TypeHello, hello); err != nil {
			lastErr = err
			conn.Close()
			continue
		}
		w.agg = link
		return nil
	}
	return fmt.Errorf("fleet: aggregator %s unreachable: %w", w.cfg.AggAddr, lastErr)
}

// Close tears down the aggregator link.
func (w *Worker) Close() {
	if w.agg != nil {
		w.agg.close()
	}
}

// Serve accepts ingest sessions until the listener closes. Sessions
// are handled sequentially — each owns the process's engine capacity.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := w.handle(conn); err != nil {
			w.cfg.Logf("worker: session ended with error: %v", err)
		}
		conn.Close()
	}
}

// sessionCtr is process-global so multiple Workers embedded in one
// process (tests, single-binary deployments) never mint the same ID.
var sessionCtr atomic.Uint64

// newSessionID mints a fleet-unique session identifier: the PID keys
// the incarnation (a restarted worker must not collide with its
// predecessor's sessions at the aggregator), the counter keys the
// session within it.
func (w *Worker) newSessionID() uint64 {
	return uint64(os.Getpid())<<20 | sessionCtr.Add(1)
}

// session is the per-connection engine wrapper.
type session struct {
	w        *Worker
	id       uint64
	seq      *engine.Sequential
	bus      *reportbus.Bus
	verdicts []engine.Verdict // scratch, indexed per batch
	multiset map[engine.Verdict]uint64
	// decode scratch, reused across batches
	pkts  []engine.Packet
	arena []engine.Hop
	offs  [][2]int
}

func (w *Worker) handle(conn net.Conn) error {
	w.mSessions.Inc()
	w.active.Store(1)
	defer w.active.Store(0)
	r := wireproto.NewReader(conn)
	wr := wireproto.NewWriter(conn)

	var hello Hello
	f, err := r.ReadFrame()
	if err != nil {
		return fmt.Errorf("fleet: reading hello: %w", err)
	}
	if f.Type != wireproto.TypeHello {
		f.Release()
		return fmt.Errorf("fleet: expected hello, got frame type %d", f.Type)
	}
	err = decodeJSON(&f, &hello)
	f.Release()
	if err != nil {
		return err
	}

	pairs, err := readSeed(r)
	if err != nil {
		return err
	}
	s, err := w.newSession(pairs)
	if err != nil {
		return err
	}
	w.cfg.Logf("worker: session %d from %s (%s): %d seed pairs", s.id, hello.Node, conn.RemoteAddr(), len(pairs))

	clean, runErr := s.run(r, wr)
	s.bus.Close()
	summary := s.summary(clean)
	if w.agg != nil {
		if err := w.agg.send(wireproto.TypeSummary, summary); err != nil {
			w.cfg.Logf("worker: summary upload failed: %v", err)
		}
	}
	if clean {
		if err := writeJSON(wr, wireproto.TypeFinAck, FinAck{Processed: summary.Counts.Packets}); err != nil {
			return err
		}
	}
	return runErr
}

// readSeed accumulates the chunked firewall seed until the Done chunk.
func readSeed(r *wireproto.Reader) ([][2]uint32, error) {
	var pairs [][2]uint32
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return nil, fmt.Errorf("fleet: reading seed: %w", err)
		}
		if f.Type != wireproto.TypeSeed {
			f.Release()
			return nil, fmt.Errorf("fleet: expected seed, got frame type %d", f.Type)
		}
		var seed Seed
		err = decodeJSON(&f, &seed)
		f.Release()
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, seed.Pairs...)
		if seed.Done {
			return pairs, nil
		}
	}
}

// newSession builds a fresh engine + report bus seeded with the
// session's control state.
func (w *Worker) newSession(pairs [][2]uint32) (*session, error) {
	chks, err := w.cfg.BuildCheckers()
	if err != nil {
		return nil, err
	}
	s := &session{
		w:        w,
		id:       w.newSessionID(),
		verdicts: make([]engine.Verdict, wireproto.MaxBatchPackets),
		multiset: map[engine.Verdict]uint64{},
	}
	var exporters []reportbus.Exporter
	if w.agg != nil {
		exporters = append(exporters, &aggForwarder{link: w.agg, session: s.id})
	}
	s.bus = reportbus.New(reportbus.Config{Window: w.cfg.BusWindow, Exporters: exporters})
	s.seq = engine.NewSequential(engine.Config{
		Checkers:  chks,
		Verdicts:  s.verdicts,
		ReportBus: s.bus,
	})
	if err := w.cfg.Configure(s.seq.Install, pairs); err != nil {
		return nil, err
	}
	s.seq.Warm()
	s.bus.Start()
	return s, nil
}

// run is the session hot loop: batches in, credits out, Stats upstream.
// clean reports whether the session ended with an orderly Fin.
func (s *session) run(r *wireproto.Reader, wr *wireproto.Writer) (clean bool, err error) {
	lastStats := time.Now()
	for {
		f, err := r.ReadFrame()
		if err != nil {
			return false, fmt.Errorf("fleet: session %d stream broke: %w", s.id, err)
		}
		switch f.Type {
		case wireproto.TypePacketBatch:
			n, perr := s.processBatch(f.Payload)
			f.Release()
			if perr != nil {
				return false, perr
			}
			if cerr := wr.WriteFrame(wireproto.TypeCredit, wireproto.AppendCredit(nil, uint32(n))); cerr != nil {
				return false, fmt.Errorf("fleet: session %d credit: %w", s.id, cerr)
			}
			if s.w.agg != nil && time.Since(lastStats) >= s.w.cfg.StatsEvery {
				lastStats = time.Now()
				if serr := s.w.agg.send(wireproto.TypeStats, s.stats()); serr != nil {
					s.w.cfg.Logf("worker: stats upload failed: %v", serr)
				}
			}
		case wireproto.TypeFin:
			f.Release()
			return true, nil
		default:
			typ := f.Type
			f.Release()
			return false, fmt.Errorf("fleet: session %d: unexpected frame type %d", s.id, typ)
		}
	}
}

// processBatch decodes one wire batch into engine packets (hop storage
// in a per-batch arena) and runs it through the batched engine path.
func (s *session) processBatch(payload []byte) (int, error) {
	var d wireproto.BatchDecoder
	if err := d.Reset(payload); err != nil {
		return 0, err
	}
	s.pkts = s.pkts[:0]
	s.arena = s.arena[:0]
	s.offs = s.offs[:0]
	for {
		p, err := d.Next()
		if err != nil {
			return 0, err
		}
		if p == nil {
			break
		}
		i := len(s.pkts)
		if i >= len(s.verdicts) {
			return 0, fmt.Errorf("fleet: batch exceeds %d packets", len(s.verdicts))
		}
		off := len(s.arena)
		for _, h := range p.Hops {
			s.arena = append(s.arena, engine.Hop{SwitchID: h.Switch, InPort: h.In, OutPort: h.Out})
		}
		s.offs = append(s.offs, [2]int{off, len(s.arena)})
		s.pkts = append(s.pkts, engine.Packet{
			Key: dataplane.FlowKey{
				Src: dataplane.IP4(p.Src), Dst: dataplane.IP4(p.Dst),
				Proto: p.Proto, Sport: p.Sport, Dport: p.Dport,
			},
			Len:   p.Len,
			Index: int32(i),
		})
	}
	// Hop slices are taken only after the arena stopped growing — an
	// append-time subslice could alias a stale backing array.
	for i := range s.pkts {
		s.pkts[i].Hops = s.arena[s.offs[i][0]:s.offs[i][1]]
	}
	start := time.Now()
	s.seq.ProcessBatch(s.pkts)
	s.w.mBatchSec.Observe(time.Since(start).Seconds())
	for i := range s.pkts {
		s.multiset[s.verdicts[i]]++
		if n := s.verdicts[i].Reports; n > 0 {
			s.w.mDigests.Add(uint64(n))
		}
	}
	s.w.mBatches.Inc()
	s.w.mPackets.Add(uint64(len(s.pkts)))
	s.w.mBatchLen.Observe(float64(len(s.pkts)))
	return len(s.pkts), nil
}

func (s *session) stats() Stats {
	return Stats{
		Session: s.id,
		Node:    s.w.cfg.Node,
		Counts:  countsFromEngine(s.seq.Counts()),
		Bus:     busCountsFrom(s.bus.Metrics()),
	}
}

func (s *session) summary(clean bool) Summary {
	return Summary{
		Session:  s.id,
		Node:     s.w.cfg.Node,
		Counts:   countsFromEngine(s.seq.Counts()),
		Bus:      busCountsFrom(s.bus.Metrics()),
		Verdicts: verdictCountsOf(s.multiset),
		Clean:    clean,
	}
}

// verdictCountsOf renders a verdict multiset in canonical sorted form.
func verdictCountsOf(m map[engine.Verdict]uint64) []VerdictCount {
	out := make([]VerdictCount, 0, len(m))
	for v, n := range m {
		out = append(out, VerdictCount{Reject: v.Reject, Reports: v.Reports, Count: n})
	}
	sortVerdictCounts(out)
	return out
}

func sortVerdictCounts(vs []VerdictCount) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Reject != vs[j].Reject {
			return !vs[i].Reject
		}
		return vs[i].Reports < vs[j].Reports
	})
}

// VerdictCountsOf folds per-packet verdicts into the canonical sorted
// multiset form the fleet compares across processes.
func VerdictCountsOf(vs []engine.Verdict) []VerdictCount {
	m := make(map[engine.Verdict]uint64, 8)
	for _, v := range vs {
		m[v]++
	}
	return verdictCountsOf(m)
}

// MergeVerdictCounts merges multisets into one canonical multiset.
func MergeVerdictCounts(sets ...[]VerdictCount) []VerdictCount {
	m := map[engine.Verdict]uint64{}
	for _, set := range sets {
		for _, vc := range set {
			m[engine.Verdict{Reject: vc.Reject, Reports: vc.Reports}] += vc.Count
		}
	}
	return verdictCountsOf(m)
}

// ---------------------------------------------------------------------------
// Aggregator uplink

// aggLink is the process-wide connection to the aggregator. Sends come
// from the session goroutine (Stats, Summary) and the report-bus
// collector goroutine (AggBatch) concurrently, so the writer is
// mutex-guarded.
type aggLink struct {
	mu     sync.Mutex
	conn   net.Conn
	w      *wireproto.Writer
	broken bool
	logf   func(string, ...any)
}

func (a *aggLink) send(typ byte, msg any) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.broken {
		return errors.New("fleet: aggregator link broken")
	}
	if err := writeJSON(a.w, typ, msg); err != nil {
		a.broken = true
		return err
	}
	return nil
}

func (a *aggLink) close() {
	a.mu.Lock()
	a.broken = true
	a.mu.Unlock()
	a.conn.Close()
}

// aggForwarder bridges the report bus to the aggregator: every closed
// window's aggregates ship upstream tagged with the session.
type aggForwarder struct {
	link    *aggLink
	session uint64
}

// ExportAggregates implements reportbus.Exporter.
func (f *aggForwarder) ExportAggregates(aggs []reportbus.Aggregate) {
	if err := f.link.send(wireproto.TypeAggBatch, AggBatch{Session: f.session, Aggs: aggs}); err != nil {
		f.link.logf("worker: aggregate upload failed: %v", err)
	}
}
