package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/wireproto"
)

// IngestConfig parameterizes the ingest daemon: where the workers are,
// how packets are batched and flow-controlled, and how the capture is
// turned into verification work.
type IngestConfig struct {
	// Workers are the engine worker addresses. Packets are assigned by
	// RSS hash of the 5-tuple, so both directions of a flow — which the
	// stateful firewall correlates — always land on one worker.
	Workers []string
	// Node names this ingest point in Hello frames.
	Node string
	// PathFor maps a flow to the hop sequence it takes through the
	// fabric (the ECMP choice). Required.
	PathFor func(dataplane.FlowKey) []engine.Hop
	// BatchSize is packets per wire batch (default 256, capped at
	// wireproto.MaxBatchPackets).
	BatchSize int
	// Window is the per-worker send window in unacknowledged batches
	// (default 8): the explicit backpressure bound between ingest and a
	// slow worker.
	Window int
	// QueueDepth is the batches buffered between the dispatcher and each
	// worker sender (default 4).
	QueueDepth int
	// Loops replays the capture this many times (default 1).
	Loops int
	// SkipSeedEvery, when > 0, omits every SkipSeedEvery-th unique flow
	// pair from the firewall seed — deterministic violation injection, so
	// fleet runs raise a non-trivial digest stream to conserve.
	SkipSeedEvery int
	// DialRetries bounds connection attempts per (re)connect (default
	// 40); BackoffBase is the initial retry delay (default 50ms),
	// doubling up to BackoffMax (default 2s).
	DialRetries int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DropAfter, when > 0, bounds how long a sender blocks on a full
	// credit window before dropping the batch (accounted as
	// "backpressure"). 0 blocks indefinitely — lossless mode.
	DropAfter time.Duration
	// Metrics, when set, receives the ingest instrumentation.
	Metrics *metrics.Registry
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// WorkerLink is one worker connection's final accounting.
type WorkerLink struct {
	Addr       string            `json:"addr"`
	Assigned   uint64            `json:"assigned"`
	Acked      uint64            `json:"acked"`
	Dropped    map[string]uint64 `json:"dropped,omitempty"`
	Reconnects uint64            `json:"reconnects"`
	Error      string            `json:"error,omitempty"`
}

// IngestStats is the ingest daemon's end-of-run report. In a clean run
// (no reconnects, no drops) Assigned == Acked on every link; every
// shortfall is itemized under Dropped.
type IngestStats struct {
	FramesRead   uint64            `json:"frames_read"`
	ParseErrors  uint64            `json:"parse_errors"`
	Loops        int               `json:"loops"`
	SeededPairs  int               `json:"seeded_pairs"`
	SkippedPairs int               `json:"skipped_pairs"`
	Packets      uint64            `json:"packets"`
	Acked        uint64            `json:"acked"`
	Dropped      map[string]uint64 `json:"dropped,omitempty"`
	Reconnects   uint64            `json:"reconnects"`
	Workers      []WorkerLink      `json:"workers"`
}

// FilterSeedPairs returns pairs with every skipEvery-th entry omitted
// (skipEvery <= 0 keeps everything). Ingest and the in-process
// reference both run it, so fleet and reference seed identical state.
func FilterSeedPairs(pairs [][2]uint32, skipEvery int) (kept [][2]uint32, skipped int) {
	if skipEvery <= 0 {
		return pairs, 0
	}
	kept = make([][2]uint32, 0, len(pairs))
	for i, p := range pairs {
		if (i+1)%skipEvery == 0 {
			skipped++
			continue
		}
		kept = append(kept, p)
	}
	return kept, skipped
}

// Ingest is the fan-out daemon: it pre-scans a capture for the firewall
// seed set, then streams the frames as binary packet batches to the
// worker fleet under per-worker credit windows.
type Ingest struct {
	cfg     IngestConfig
	stop    atomic.Bool
	acked   atomic.Uint64
	started time.Time

	mFrames *metrics.Counter
	mPPS    *metrics.Gauge
	mSend   *metrics.Histogram
}

// NewIngest validates the config and builds the daemon.
func NewIngest(cfg IngestConfig) (*Ingest, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: ingest needs at least one worker")
	}
	if cfg.PathFor == nil {
		return nil, errors.New("fleet: ingest needs a PathFor fabric model")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.BatchSize > wireproto.MaxBatchPackets {
		cfg.BatchSize = wireproto.MaxBatchPackets
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4
	}
	if cfg.Loops <= 0 {
		cfg.Loops = 1
	}
	if cfg.DialRetries <= 0 {
		cfg.DialRetries = 40
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	in := &Ingest{cfg: cfg}
	reg := cfg.Metrics
	in.mFrames = reg.Counter("hydra_ingest_frames_total", "Frames read from the capture source.", nil)
	in.mPPS = reg.Gauge("hydra_ingest_pps", "Smoothed acknowledged packets per second.", nil)
	in.mSend = reg.Histogram("hydra_ingest_send_seconds", "Wall time writing one batch frame.", nil, nil)
	return in, nil
}

// Stop asks a running Run to finish early: the dispatcher stops after
// the current batch and the senders drain and Fin normally.
func (in *Ingest) Stop() { in.stop.Store(true) }

// rec is one pre-parsed capture record: the wire-form packet and the
// worker its flow is pinned to.
type rec struct {
	pkt    wireproto.Packet
	worker int
}

// Run replays the source through the fleet and returns the accounting.
func (in *Ingest) Run(src Source) (IngestStats, error) {
	stats := IngestStats{Loops: in.cfg.Loops, Dropped: map[string]uint64{}}
	recs, pairs, err := in.load(src, &stats)
	if err != nil {
		return stats, err
	}
	seedPairs, skipped := FilterSeedPairs(pairs, in.cfg.SkipSeedEvery)
	stats.SeededPairs = len(seedPairs)
	stats.SkippedPairs = skipped
	in.cfg.Logf("ingest: %d frames, %d flows seeded (%d skipped), %d workers",
		len(recs), len(seedPairs), skipped, len(in.cfg.Workers))

	in.started = time.Now()
	senders := make([]*sender, len(in.cfg.Workers))
	var wg sync.WaitGroup
	for i, addr := range in.cfg.Workers {
		senders[i] = newSender(in, i, addr, seedPairs, uint64(len(recs)*in.cfg.Loops))
		wg.Add(1)
		go func(s *sender) {
			defer wg.Done()
			s.run()
		}(senders[i])
	}
	ppsDone := make(chan struct{})
	go in.trackPPS(ppsDone)

	pending := make([][]wireproto.Packet, len(senders))
dispatch:
	for loop := 0; loop < in.cfg.Loops; loop++ {
		for i := range recs {
			if in.stop.Load() {
				break dispatch
			}
			r := &recs[i]
			pending[r.worker] = append(pending[r.worker], r.pkt)
			if len(pending[r.worker]) >= in.cfg.BatchSize {
				senders[r.worker].queue <- pending[r.worker]
				pending[r.worker] = nil
				stats.Packets += uint64(in.cfg.BatchSize)
			}
		}
	}
	for i, b := range pending {
		if len(b) > 0 {
			senders[i].queue <- b
			stats.Packets += uint64(len(b))
		}
	}
	for _, s := range senders {
		close(s.queue)
	}
	wg.Wait()
	close(ppsDone)

	for _, s := range senders {
		link := s.link()
		stats.Acked += link.Acked
		stats.Reconnects += link.Reconnects
		for k, v := range link.Dropped {
			stats.Dropped[k] += v
		}
		stats.Workers = append(stats.Workers, link)
	}
	if len(stats.Dropped) == 0 {
		stats.Dropped = nil
	}
	return stats, nil
}

// load pre-scans the capture: every frame is parsed to its 5-tuple,
// pinned to a path and a worker, and the unique (src, dst) pairs are
// collected in first-occurrence order for the firewall seed.
func (in *Ingest) load(src Source, stats *IngestStats) ([]rec, [][2]uint32, error) {
	var (
		recs  []rec
		pairs [][2]uint32
		seen  = map[[2]uint32]bool{}
		dec   dataplane.Decoded
	)
	nWorkers := uint32(len(in.cfg.Workers))
	for {
		frame, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: reading capture: %w", err)
		}
		stats.FramesRead++
		in.mFrames.Inc()
		if err := dataplane.ParseInto(&dec, frame); err != nil {
			stats.ParseErrors++
			continue
		}
		key := dataplane.FlowKeyOf(&dec)
		hops := in.cfg.PathFor(key)
		wp := wireproto.Packet{
			Src: uint32(key.Src), Dst: uint32(key.Dst),
			Sport: key.Sport, Dport: key.Dport, Proto: key.Proto,
			Len:  uint32(len(frame)),
			Hops: make([]wireproto.Hop, len(hops)),
		}
		for i, h := range hops {
			wp.Hops[i] = wireproto.Hop{Switch: h.SwitchID, In: h.InPort, Out: h.OutPort}
		}
		recs = append(recs, rec{pkt: wp, worker: int(key.RSSHash() % nWorkers)})
		pair := [2]uint32{uint32(key.Src), uint32(key.Dst)}
		if !seen[pair] {
			seen[pair] = true
			pairs = append(pairs, pair)
		}
	}
	return recs, pairs, nil
}

// trackPPS refreshes the smoothed throughput gauge once a second.
func (in *Ingest) trackPPS(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	var last uint64
	for {
		select {
		case <-done:
			return
		case <-t.C:
			cur := in.acked.Load()
			in.mPPS.Set(float64(cur - last))
			last = cur
		}
	}
}

// ---------------------------------------------------------------------------
// Per-worker sender

// connState is one live connection to a worker; each (re)connect gets a
// fresh channel set so stale credits from a dead connection can never
// open the new connection's window.
type connState struct {
	conn    net.Conn
	w       *wireproto.Writer
	creditc chan uint64
	finackc chan FinAck
	errc    chan error
}

// sender owns one worker link: connection lifecycle (dial, seed replay,
// reconnect with backoff), the bounded credit window, and the drop
// ledger. All mutable state is confined to the sender goroutine.
type sender struct {
	in    *Ingest
	idx   int
	addr  string
	queue chan []wireproto.Packet
	seed  [][2]uint32

	cs              *connState
	outstanding     int
	outstandingPkts uint64
	// outGauge mirrors outstandingPkts for the scrape-time gauge (the
	// canonical value is sender-goroutine-confined).
	outGauge atomic.Uint64
	scratch  []byte

	assigned   atomic.Uint64
	acked      atomic.Uint64
	reconnects atomic.Uint64
	dropped    map[string]uint64
	dropTotal  atomic.Uint64
	err        error

	mSent   *metrics.Counter
	mAcked  *metrics.Counter
	mDrops  map[string]*metrics.Counter
	mReconn *metrics.Counter
}

const finTimeout = 60 * time.Second

var errCreditTimeout = errors.New("fleet: timed out waiting for worker credits")

func newSender(in *Ingest, idx int, addr string, seed [][2]uint32, expect uint64) *sender {
	s := &sender{
		in:      in,
		idx:     idx,
		addr:    addr,
		queue:   make(chan []wireproto.Packet, in.cfg.QueueDepth),
		seed:    seed,
		dropped: map[string]uint64{},
		mDrops:  map[string]*metrics.Counter{},
	}
	w := fmt.Sprintf("%d", idx)
	reg := in.cfg.Metrics
	s.mSent = reg.Counter("hydra_ingest_packets_sent_total", "Packets fanned out to engine workers.", metrics.Labels{"worker": w})
	s.mAcked = reg.Counter("hydra_ingest_packets_acked_total", "Packets acknowledged by worker credits.", metrics.Labels{"worker": w})
	s.mReconn = reg.Counter("hydra_ingest_reconnects_total", "Worker connection re-establishments.", metrics.Labels{"worker": w})
	for _, reason := range []string{"backpressure", "reconnect", "failed"} {
		s.mDrops[reason] = reg.Counter("hydra_ingest_drops_total", "Packets dropped instead of delivered.", metrics.Labels{"reason": reason, "worker": w})
	}
	reg.GaugeFunc("hydra_ingest_queue_depth", "Batches queued per worker sender.", metrics.Labels{"worker": w},
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("hydra_ingest_window_outstanding", "Unacknowledged packets in the credit window.", metrics.Labels{"worker": w},
		func() float64 { return float64(s.outGauge.Load()) })
	return s
}

func (s *sender) run() {
	for b := range s.queue {
		s.assigned.Add(uint64(len(b)))
		s.sendBatch(b)
	}
	s.finish()
	if s.cs != nil {
		s.cs.conn.Close()
		s.cs = nil
	}
}

func (s *sender) drop(reason string, n uint64) {
	s.dropped[reason] += n
	s.dropTotal.Add(n)
	if c := s.mDrops[reason]; c != nil {
		c.Add(n)
	}
}

func (s *sender) sendBatch(pkts []wireproto.Packet) {
	n := uint64(len(pkts))
	if s.err != nil {
		s.drop("failed", n)
		return
	}
	if s.cs == nil && !s.connect() {
		s.drop("failed", n)
		return
	}
	if !s.waitWindow() {
		if s.cs == nil {
			// Connection died while waiting; the batch rides to the next
			// session if we can reconnect.
			if !s.connect() {
				s.drop("failed", n)
				return
			}
		} else {
			// DropAfter expired with the window still full.
			s.drop("backpressure", n)
			return
		}
	}
	payload, err := wireproto.AppendPacketBatch(s.scratch[:0], pkts)
	if err != nil {
		s.drop("failed", n)
		return
	}
	s.scratch = payload
	start := time.Now()
	if err := s.cs.w.WriteFrame(wireproto.TypePacketBatch, payload); err != nil {
		// At-most-once: the batch is not retried on a fresh session, it is
		// accounted lost alongside the window's in-flight packets.
		s.onConnError(err)
		s.drop("reconnect", n)
		return
	}
	s.in.mSend.Observe(time.Since(start).Seconds())
	s.outstanding++
	s.outstandingPkts += n
	s.outGauge.Store(s.outstandingPkts)
	s.mSent.Add(n)
}

// waitWindow blocks until the credit window has room. It returns false
// when the wait ended without room: either the connection died
// (s.cs == nil afterwards) or DropAfter expired (s.cs still set).
func (s *sender) waitWindow() bool {
	if s.outstanding < s.in.cfg.Window {
		return true
	}
	var timeout <-chan time.Time
	if s.in.cfg.DropAfter > 0 {
		t := time.NewTimer(s.in.cfg.DropAfter)
		defer t.Stop()
		timeout = t.C
	}
	for s.outstanding >= s.in.cfg.Window {
		select {
		case n := <-s.cs.creditc:
			s.credit(n)
		case err := <-s.cs.errc:
			s.onConnError(err)
			return false
		case <-timeout:
			return false
		}
	}
	return true
}

func (s *sender) credit(n uint64) {
	s.outstanding--
	if n > s.outstandingPkts {
		n = s.outstandingPkts
	}
	s.outstandingPkts -= n
	s.outGauge.Store(s.outstandingPkts)
	s.acked.Add(n)
	s.in.acked.Add(n)
	s.mAcked.Add(n)
}

// onConnError tears the connection down and accounts every in-flight
// packet as lost to the reconnect.
func (s *sender) onConnError(err error) {
	s.in.cfg.Logf("ingest: worker %d (%s) connection lost: %v", s.idx, s.addr, err)
	if s.cs != nil {
		s.cs.conn.Close()
		s.cs = nil
	}
	if s.outstandingPkts > 0 {
		s.drop("reconnect", s.outstandingPkts)
	}
	s.outstanding = 0
	s.outstandingPkts = 0
	s.outGauge.Store(0)
	s.reconnects.Add(1)
	s.mReconn.Inc()
}

// connect dials the worker with exponential backoff and replays the
// handshake: Hello, then the firewall seed in bounded chunks. A worker
// that restarts rebuilds identical control state from the re-sent seed.
func (s *sender) connect() bool {
	backoff := s.in.cfg.BackoffBase
	var lastErr error
	for attempt := 0; attempt < s.in.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > s.in.cfg.BackoffMax {
				backoff = s.in.cfg.BackoffMax
			}
		}
		conn, err := net.Dial("tcp", s.addr)
		if err != nil {
			lastErr = err
			continue
		}
		cs := &connState{
			conn:    conn,
			w:       wireproto.NewWriter(conn),
			creditc: make(chan uint64, 2*s.in.cfg.Window+16),
			finackc: make(chan FinAck, 1),
			errc:    make(chan error, 1),
		}
		if err := s.handshake(cs); err != nil {
			lastErr = err
			conn.Close()
			continue
		}
		go readLoop(cs)
		s.cs = cs
		return true
	}
	s.err = fmt.Errorf("fleet: worker %d (%s) unreachable after %d attempts: %w",
		s.idx, s.addr, s.in.cfg.DialRetries, lastErr)
	s.in.cfg.Logf("ingest: %v", s.err)
	return false
}

// seedChunk bounds pairs per Seed frame so the JSON payload stays well
// under the wire protocol's frame cap.
const seedChunk = 8192

func (s *sender) handshake(cs *connState) error {
	hello := Hello{Role: "ingest", Node: s.in.cfg.Node, PID: os.Getpid()}
	if err := writeJSON(cs.w, wireproto.TypeHello, hello); err != nil {
		return err
	}
	pairs := s.seed
	for {
		chunk := pairs
		if len(chunk) > seedChunk {
			chunk = chunk[:seedChunk]
		}
		pairs = pairs[len(chunk):]
		msg := Seed{Pairs: chunk, Done: len(pairs) == 0}
		if err := writeJSON(cs.w, wireproto.TypeSeed, msg); err != nil {
			return err
		}
		if msg.Done {
			return nil
		}
	}
}

// readLoop is the per-connection reader: credits and the final FinAck
// route to the sender; the first error ends the loop.
func readLoop(cs *connState) {
	r := wireproto.NewReader(cs.conn)
	for {
		f, err := r.ReadFrame()
		if err != nil {
			cs.errc <- err
			return
		}
		switch f.Type {
		case wireproto.TypeCredit:
			n, err := wireproto.DecodeCredit(f.Payload)
			if err != nil {
				f.Release()
				cs.errc <- err
				return
			}
			cs.creditc <- uint64(n)
		case wireproto.TypeFinAck:
			var ack FinAck
			if err := decodeJSON(&f, &ack); err == nil {
				cs.finackc <- ack
			}
		}
		f.Release()
	}
}

// finish drains the window, sends Fin, and waits for the worker's
// FinAck — the orderly end of a session.
func (s *sender) finish() {
	if s.cs == nil || s.err != nil {
		return
	}
	deadline := time.NewTimer(finTimeout)
	defer deadline.Stop()
	for s.outstanding > 0 {
		select {
		case n := <-s.cs.creditc:
			s.credit(n)
		case err := <-s.cs.errc:
			s.onConnError(err)
			return
		case <-deadline.C:
			s.onConnError(errCreditTimeout)
			return
		}
	}
	if err := s.cs.w.WriteFrame(wireproto.TypeFin, nil); err != nil {
		s.onConnError(err)
		return
	}
	for {
		select {
		case n := <-s.cs.creditc:
			s.credit(n)
		case <-s.cs.finackc:
			return
		case err := <-s.cs.errc:
			s.onConnError(err)
			return
		case <-deadline.C:
			s.onConnError(errCreditTimeout)
			return
		}
	}
}

// link snapshots the sender's accounting after run returns.
func (s *sender) link() WorkerLink {
	l := WorkerLink{
		Addr:       s.addr,
		Assigned:   s.assigned.Load(),
		Acked:      s.acked.Load(),
		Reconnects: s.reconnects.Load(),
	}
	if len(s.dropped) > 0 {
		l.Dropped = make(map[string]uint64, len(s.dropped))
		for k, v := range s.dropped {
			l.Dropped[k] = v
		}
	}
	if s.err != nil {
		l.Error = s.err.Error()
	}
	return l
}
