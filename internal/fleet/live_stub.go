//go:build !hydralive

package fleet

import "errors"

// ErrNoLiveCapture is returned by OpenLive in builds without the
// hydralive tag.
var ErrNoLiveCapture = errors.New("fleet: live capture requires building with -tags hydralive on linux")

// OpenLive attaches to a network interface for live AF_PACKET capture.
// The default build carries only this stub; `go build -tags hydralive`
// on linux compiles the real socket path (live_linux.go). Everything
// downstream of Source is identical, so the pcap-replay harness
// exercises the full daemon pipeline.
func OpenLive(iface string) (Source, error) {
	return nil, ErrNoLiveCapture
}
