package fleet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/reportbus"
	"repro/internal/wireproto"
)

// AggConfig parameterizes the aggregator daemon.
type AggConfig struct {
	// Node names this aggregator.
	Node string
	// Metrics, when set, receives the aggregator instrumentation.
	Metrics *metrics.Registry
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// AggKeyOf is the cross-process aggregate identity: checker, switch,
// and the argument words themselves. reportbus.Key hashes args with a
// per-process seed, so merging windows from different worker processes
// — or comparing a fleet run against an in-process reference — must
// key on content, not hash.
func AggKeyOf(a *reportbus.Aggregate) string {
	var b strings.Builder
	b.WriteString(a.Checker)
	fmt.Fprintf(&b, "|%d", a.SwitchID)
	if a.Overflow {
		b.WriteString("|overflow")
		return b.String()
	}
	for _, arg := range a.Args {
		fmt.Fprintf(&b, "|%d", arg)
	}
	return b.String()
}

// sessionLedger tracks one worker session's federated state.
type sessionLedger struct {
	node     string
	received uint64 // digests received via AggBatch windows
	last     *Stats
	summary  *Summary
}

// Agg is the aggregation daemon: it merges every worker's windowed
// aggregates into one fleet-wide violation table and ledgers
// per-session conservation from the workers' summaries.
type Agg struct {
	cfg AggConfig

	mu        sync.Mutex
	aggs      map[string]*reportbus.Aggregate
	sessions  map[uint64]*sessionLedger
	summaries int
	received  uint64

	mDigests   *metrics.Counter
	mBatches   *metrics.Counter
	mSummaries *metrics.Counter
}

// NewAgg builds the daemon.
func NewAgg(cfg AggConfig) *Agg {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agg{
		cfg:      cfg,
		aggs:     map[string]*reportbus.Aggregate{},
		sessions: map[uint64]*sessionLedger{},
	}
	reg := cfg.Metrics
	a.mDigests = reg.Counter("hydra_agg_digests_total", "Digests received inside aggregate windows.", nil)
	a.mBatches = reg.Counter("hydra_agg_windows_total", "Aggregate windows received from workers.", nil)
	a.mSummaries = reg.Counter("hydra_agg_summaries_total", "Session summaries received.", nil)
	reg.GaugeFunc("hydra_agg_sessions", "Worker sessions seen.", nil, func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.sessions))
	})
	reg.GaugeFunc("hydra_agg_live_aggregates", "Distinct violation keys in the merged table.", nil, func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(len(a.aggs))
	})
	return a
}

// Serve accepts worker uplinks until the listener closes. Each uplink
// runs on its own goroutine; frames within an uplink are processed in
// order, so a session's final windows always land before its Summary.
func (a *Agg) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := a.handle(c); err != nil {
				a.cfg.Logf("agg: uplink from %s ended: %v", c.RemoteAddr(), err)
			}
		}(conn)
	}
}

func (a *Agg) handle(conn net.Conn) error {
	r := wireproto.NewReader(conn)
	node := conn.RemoteAddr().String()
	for {
		f, err := r.ReadFrame()
		if err != nil {
			// EOF is the normal end of a worker process.
			return nil
		}
		switch f.Type {
		case wireproto.TypeHello:
			var h Hello
			if err := decodeJSON(&f, &h); err == nil && h.Node != "" {
				node = h.Node
			}
		case wireproto.TypeAggBatch:
			var batch AggBatch
			if err := decodeJSON(&f, &batch); err != nil {
				f.Release()
				return err
			}
			a.merge(node, &batch)
		case wireproto.TypeStats:
			var st Stats
			if err := decodeJSON(&f, &st); err == nil {
				a.note(st.Session, st.Node, func(l *sessionLedger) { cp := st; l.last = &cp })
			}
		case wireproto.TypeSummary:
			var sum Summary
			if err := decodeJSON(&f, &sum); err != nil {
				f.Release()
				return err
			}
			a.note(sum.Session, sum.Node, func(l *sessionLedger) {
				if l.summary == nil {
					a.summaries++
				}
				cp := sum
				l.summary = &cp
			})
			a.mSummaries.Inc()
			a.cfg.Logf("agg: summary from %s session %d: %d packets, unaccounted %d, clean %t",
				sum.Node, sum.Session, sum.Counts.Packets, sum.Bus.Unaccounted, sum.Clean)
		}
		f.Release()
	}
}

// note applies fn to the session's ledger under the lock.
func (a *Agg) note(session uint64, node string, fn func(*sessionLedger)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l := a.sessions[session]
	if l == nil {
		l = &sessionLedger{}
		a.sessions[session] = l
	}
	if node != "" {
		l.node = node
	}
	fn(l)
}

// merge folds one federated window into the fleet table.
func (a *Agg) merge(node string, batch *AggBatch) {
	var digests uint64
	a.mu.Lock()
	l := a.sessions[batch.Session]
	if l == nil {
		l = &sessionLedger{node: node}
		a.sessions[batch.Session] = l
	}
	for i := range batch.Aggs {
		in := &batch.Aggs[i]
		key := AggKeyOf(in)
		if cur, ok := a.aggs[key]; ok {
			cur.Count += in.Count
			if in.FirstAt < cur.FirstAt {
				cur.FirstAt = in.FirstAt
			}
			if in.LastAt > cur.LastAt {
				cur.LastAt = in.LastAt
			}
			cur.Deferred += in.Deferred
		} else {
			cp := *in
			cp.Args = append([]uint64(nil), in.Args...)
			a.aggs[key] = &cp
		}
		digests += in.Count
	}
	l.received += digests
	a.received += digests
	a.mu.Unlock()
	a.mDigests.Add(digests)
	a.mBatches.Inc()
}

// Summaries reports how many session summaries have arrived.
func (a *Agg) Summaries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.summaries
}

// WaitSummaries blocks until n session summaries arrived or the
// timeout elapsed.
func (a *Agg) WaitSummaries(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if a.Summaries() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// FleetReport is the aggregator's final fleet-wide view.
type FleetReport struct {
	// Sessions counts every session the aggregator heard from;
	// CleanSessions those whose summary reported an orderly Fin. A
	// killed worker's sessions appear in Sessions but never summarize.
	Sessions      int `json:"sessions"`
	Summarized    int `json:"summarized"`
	CleanSessions int `json:"clean_sessions"`
	// Summaries are the per-session ledgers, sorted by node then session.
	Summaries []Summary `json:"summaries"`
	// Counts sums engine counts over all summarized sessions; Verdicts
	// merges the verdict multisets of clean sessions (the parity view).
	Counts   EngineCounts   `json:"counts"`
	Verdicts []VerdictCount `json:"verdicts"`
	// Aggregates is the merged fleet-wide violation table, sorted by
	// content key.
	Aggregates []reportbus.Aggregate `json:"aggregates"`
	// Conservation: every summarized session must satisfy
	// Bus.Unaccounted == 0 (nothing lost inside the worker) and its
	// received digest count must equal its emitted count (nothing lost
	// on the wire). Unaccounted sums the per-session residuals;
	// Conserved is the fleet-wide verdict.
	ReceivedDigests    uint64            `json:"received_digests"`
	SummarizedEmitted  uint64            `json:"summarized_emitted"`
	SummarizedReceived uint64            `json:"summarized_received"`
	ReceivedBySession  map[uint64]uint64 `json:"received_by_session,omitempty"`
	Unaccounted        int64             `json:"unaccounted"`
	Conserved          bool              `json:"conserved"`
}

// Report snapshots the fleet-wide view.
func (a *Agg) Report() FleetReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := FleetReport{
		Sessions:          len(a.sessions),
		ReceivedDigests:   a.received,
		ReceivedBySession: map[uint64]uint64{},
		Conserved:         true,
	}
	var cleanSets [][]VerdictCount
	ids := make([]uint64, 0, len(a.sessions))
	for id := range a.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		li, lj := a.sessions[ids[i]], a.sessions[ids[j]]
		if li.node != lj.node {
			return li.node < lj.node
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		l := a.sessions[id]
		rep.ReceivedBySession[id] = l.received
		if l.summary == nil {
			continue
		}
		s := *l.summary
		rep.Summarized++
		rep.Summaries = append(rep.Summaries, s)
		rep.Counts.Add(s.Counts)
		rep.SummarizedEmitted += s.Bus.EmittedDigests
		rep.SummarizedReceived += l.received
		rep.Unaccounted += s.Bus.Unaccounted
		if s.Bus.Unaccounted != 0 || l.received != s.Bus.EmittedDigests {
			rep.Conserved = false
		}
		if s.Clean {
			rep.CleanSessions++
			cleanSets = append(cleanSets, s.Verdicts)
		}
	}
	rep.Verdicts = MergeVerdictCounts(cleanSets...)
	keys := make([]string, 0, len(a.aggs))
	for k := range a.aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Aggregates = append(rep.Aggregates, *a.aggs[k])
	}
	if len(rep.ReceivedBySession) == 0 {
		rep.ReceivedBySession = nil
	}
	return rep
}
