package dataplane

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers used by the substrate.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// IPv4 is a 20-byte IPv4 header (no options).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      IP4
	Dst      IP4
}

// IPv4Len is the serialized length of an optionless IPv4 header.
const IPv4Len = 20

// Decode parses the header from b and returns the remaining payload,
// verifying version, IHL, and the header checksum.
func (ip *IPv4) Decode(b []byte) ([]byte, error) {
	if len(b) < IPv4Len {
		return nil, fmt.Errorf("ipv4: short header: %d bytes", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("ipv4: bad version %d", v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != IPv4Len {
		return nil, fmt.Errorf("ipv4: options unsupported (ihl=%d)", ihl)
	}
	if Checksum(b[:IPv4Len]) != 0 {
		return nil, fmt.Errorf("ipv4: bad header checksum")
	}
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	ip.Src = IP4(binary.BigEndian.Uint32(b[12:16]))
	ip.Dst = IP4(binary.BigEndian.Uint32(b[16:20]))
	return b[IPv4Len:], nil
}

// Append serializes the header onto buf with a freshly computed checksum.
// TotalLen must already be set (header + payload bytes).
func (ip *IPv4) Append(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0x45, ip.TOS)
	buf = binary.BigEndian.AppendUint16(buf, ip.TotalLen)
	buf = binary.BigEndian.AppendUint16(buf, ip.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	buf = append(buf, ip.TTL, ip.Protocol, 0, 0) // checksum placeholder
	buf = binary.BigEndian.AppendUint32(buf, uint32(ip.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ip.Dst))
	ck := Checksum(buf[start : start+IPv4Len])
	binary.BigEndian.PutUint16(buf[start+10:start+12], ck)
	ip.Checksum = ck
	return buf
}

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is an 8-byte UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16 // 0 means not computed (legal in IPv4)
}

// UDPLen is the serialized length of a UDP header.
const UDPLen = 8

// Decode parses the header from b and returns the remaining payload.
func (u *UDP) Decode(b []byte) ([]byte, error) {
	if len(b) < UDPLen {
		return nil, fmt.Errorf("udp: short header: %d bytes", len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return b[UDPLen:], nil
}

// Append serializes the header onto buf. Length must already be set.
func (u *UDP) Append(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, u.Length)
	return binary.BigEndian.AppendUint16(buf, u.Checksum)
}

// TCP is a 20-byte TCP header (no options).
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8 // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
	Window   uint16
	Checksum uint16
	Urgent   uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// TCPLen is the serialized length of an optionless TCP header.
const TCPLen = 20

// Decode parses the header from b and returns the remaining payload.
func (t *TCP) Decode(b []byte) ([]byte, error) {
	if len(b) < TCPLen {
		return nil, fmt.Errorf("tcp: short header: %d bytes", len(b))
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPLen || dataOff > len(b) {
		return nil, fmt.Errorf("tcp: bad data offset %d", dataOff)
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	return b[dataOff:], nil
}

// Append serializes the header onto buf.
func (t *TCP) Append(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	buf = append(buf, 5<<4, t.Flags) // data offset = 5 words
	buf = binary.BigEndian.AppendUint16(buf, t.Window)
	buf = binary.BigEndian.AppendUint16(buf, t.Checksum)
	return binary.BigEndian.AppendUint16(buf, t.Urgent)
}

// ICMPEcho is an ICMP echo request/reply header (8 bytes).
type ICMPEcho struct {
	Type     uint8 // 8 = request, 0 = reply
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16
}

// ICMP echo type values.
const (
	ICMPEchoRequest uint8 = 8
	ICMPEchoReply   uint8 = 0
)

// ICMPEchoLen is the serialized length of an ICMP echo header.
const ICMPEchoLen = 8

// Decode parses the header from b and returns the remaining payload.
func (ic *ICMPEcho) Decode(b []byte) ([]byte, error) {
	if len(b) < ICMPEchoLen {
		return nil, fmt.Errorf("icmp: short header: %d bytes", len(b))
	}
	ic.Type = b[0]
	ic.Code = b[1]
	ic.Checksum = binary.BigEndian.Uint16(b[2:4])
	ic.ID = binary.BigEndian.Uint16(b[4:6])
	ic.Seq = binary.BigEndian.Uint16(b[6:8])
	return b[ICMPEchoLen:], nil
}

// Append serializes the header onto buf.
func (ic *ICMPEcho) Append(buf []byte) []byte {
	buf = append(buf, ic.Type, ic.Code)
	buf = binary.BigEndian.AppendUint16(buf, ic.Checksum)
	buf = binary.BigEndian.AppendUint16(buf, ic.ID)
	return binary.BigEndian.AppendUint16(buf, ic.Seq)
}

// GTPU is a minimal GTP-U header (8 bytes, no extension headers): the
// encapsulation Aether's UPF applies to user traffic between the base
// station and the fabric (§5.2).
type GTPU struct {
	MsgType uint8 // 255 = G-PDU (encapsulated user packet)
	Length  uint16
	TEID    uint32
}

// GTPUGPDU is the message type for encapsulated user traffic.
const GTPUGPDU uint8 = 255

// GTPULen is the serialized length of the minimal GTP-U header.
const GTPULen = 8

// GTPUPort is the well-known UDP port for GTP-U.
const GTPUPort uint16 = 2152

// Decode parses the header from b and returns the remaining payload.
func (g *GTPU) Decode(b []byte) ([]byte, error) {
	if len(b) < GTPULen {
		return nil, fmt.Errorf("gtpu: short header: %d bytes", len(b))
	}
	if v := b[0] >> 5; v != 1 {
		return nil, fmt.Errorf("gtpu: bad version %d", v)
	}
	g.MsgType = b[1]
	g.Length = binary.BigEndian.Uint16(b[2:4])
	g.TEID = binary.BigEndian.Uint32(b[4:8])
	return b[GTPULen:], nil
}

// Append serializes the header onto buf. Length must already be set (the
// payload length in bytes).
func (g *GTPU) Append(buf []byte) []byte {
	buf = append(buf, 1<<5|1<<4, g.MsgType) // version 1, protocol type GTP
	buf = binary.BigEndian.AppendUint16(buf, g.Length)
	return binary.BigEndian.AppendUint32(buf, g.TEID)
}
