package dataplane

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MACFromUint64(0xaabbccddeeff), Src: MACFromUint64(0x112233445566), Type: EtherTypeIPv4}
	buf := e.Append(nil)
	if len(buf) != EthernetLen {
		t.Fatalf("len = %d", len(buf))
	}
	var got Ethernet
	rest, err := got.Decode(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if got != e {
		t.Fatalf("got %+v want %+v", got, e)
	}
}

func TestMACConversion(t *testing.T) {
	for _, v := range []uint64{0, 7, 0xffffffffffff, 0x0102030405060} {
		v &= 0xffffffffffff
		if got := MACFromUint64(v).Uint64(); got != v {
			t.Errorf("MAC round trip %x -> %x", v, got)
		}
	}
	if s := MACFromUint64(7).String(); s != "00:00:00:00:00:07" {
		t.Errorf("MAC string = %s", s)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{TOS: 0x10, TotalLen: 40, ID: 7, TTL: 64, Protocol: ProtoUDP,
		Src: MustIP4("10.0.1.1"), Dst: MustIP4("10.0.2.2")}
	buf := ip.Append(nil)
	if Checksum(buf) != 0 {
		t.Fatal("serialized header checksum must verify")
	}
	var got IPv4
	if _, err := got.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if got.Src != ip.Src || got.Dst != ip.Dst || got.TTL != 64 || got.Protocol != ProtoUDP {
		t.Fatalf("got %+v", got)
	}
	// Corrupt a byte: checksum must catch it.
	buf[8] ^= 0xff
	if _, err := got.Decode(buf); err == nil {
		t.Fatal("corrupted header should fail checksum")
	}
}

func TestIP4Helpers(t *testing.T) {
	ip := MustIP4("192.168.1.5")
	if ip.String() != "192.168.1.5" {
		t.Fatalf("String = %s", ip.String())
	}
	if !ip.InPrefix(MustIP4("192.168.0.0"), 16) {
		t.Fatal("should match /16")
	}
	if ip.InPrefix(MustIP4("10.0.0.0"), 8) {
		t.Fatal("should not match 10/8")
	}
	if !ip.InPrefix(0, 0) {
		t.Fatal("every address matches /0")
	}
	if !ip.InPrefix(ip, 32) {
		t.Fatal("address matches itself at /32")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIP4 should panic on bad input")
		}
	}()
	MustIP4("not-an-ip")
}

func TestSourceRouteStack(t *testing.T) {
	hops := SourceRouteFromPorts(2, 3, 1)
	if !hops[2].BOS || hops[0].BOS || hops[1].BOS {
		t.Fatalf("BOS placement wrong: %+v", hops)
	}
	buf := AppendSourceRoute(nil, hops)
	got, rest, err := DecodeSourceRoute(append(buf, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Port != 2 || got[1].Port != 3 || got[2].Port != 1 {
		t.Fatalf("got %+v", got)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes", len(rest))
	}

	// Truncated stack (no BOS) must error.
	if _, _, err := DecodeSourceRoute([]byte{0x00, 0x05}); err == nil {
		t.Fatal("expected truncation error")
	}
}

func buildUDPPacket(payload []byte) *Decoded {
	d := &Decoded{
		Eth:     Ethernet{Dst: MACFromUint64(2), Src: MACFromUint64(1), Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 64, Protocol: ProtoUDP, Src: MustIP4("10.0.1.1"), Dst: MustIP4("10.0.2.2")},
		HasUDP:  true,
		UDP:     UDP{SrcPort: 5555, DstPort: 6666},
		Payload: payload,
	}
	return d
}

func TestParseSerializeUDP(t *testing.T) {
	d := buildUDPPacket([]byte("hello"))
	wire := d.Serialize()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasIPv4 || !got.HasUDP || got.HasTCP || got.HasHydra {
		t.Fatalf("layer flags wrong: %+v", got)
	}
	if got.UDP.DstPort != 6666 || string(got.Payload) != "hello" {
		t.Fatalf("payload wrong: %+v %q", got.UDP, got.Payload)
	}
	if got.IPv4.TotalLen != uint16(IPv4Len+UDPLen+5) {
		t.Fatalf("TotalLen = %d", got.IPv4.TotalLen)
	}
	if got.UDP.Length != uint16(UDPLen+5) {
		t.Fatalf("UDP length = %d", got.UDP.Length)
	}
}

func TestHydraInsertStripRestoresWire(t *testing.T) {
	d := buildUDPPacket([]byte("payload"))
	orig := d.Serialize()

	// First hop: inject telemetry.
	p, err := Parse(orig)
	if err != nil {
		t.Fatal(err)
	}
	p.InsertHydra([]byte{0xca, 0xfe, 0x01})
	withTele := p.Serialize()
	if len(withTele) != len(orig)+hydraFixedLen+3 {
		t.Fatalf("telemetry added %d bytes, want %d", len(withTele)-len(orig), hydraFixedLen+3)
	}

	// Middle hop: parse keeps the blob visible.
	mid, err := Parse(withTele)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.HasHydra || !bytes.Equal(mid.Hydra.Blob, []byte{0xca, 0xfe, 0x01}) {
		t.Fatalf("hydra header lost: %+v", mid.Hydra)
	}
	if !mid.HasUDP || mid.UDP.DstPort != 6666 {
		t.Fatal("inner layers must still parse under the hydra header")
	}

	// Last hop: strip restores the original bytes exactly (§4.1).
	blob := mid.StripHydra()
	if !bytes.Equal(blob, []byte{0xca, 0xfe, 0x01}) {
		t.Fatalf("stripped blob = %x", blob)
	}
	restored := mid.Serialize()
	if !bytes.Equal(restored, orig) {
		t.Fatalf("strip did not restore original wire bytes\n got %x\nwant %x", restored, orig)
	}
}

func TestHydraOverVLAN(t *testing.T) {
	d := buildUDPPacket([]byte("x"))
	d.HasVLAN = true
	d.VLAN = VLAN{PCP: 3, VID: 100}
	orig := d.Serialize()

	p, err := Parse(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasVLAN || p.VLAN.VID != 100 {
		t.Fatalf("vlan lost: %+v", p.VLAN)
	}
	p.InsertHydra([]byte{1, 2})
	q, err := Parse(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasHydra || !q.HasVLAN || q.VLAN.VID != 100 || !q.HasUDP {
		t.Fatal("hydra+vlan chain broken")
	}
	q.StripHydra()
	if !bytes.Equal(q.Serialize(), orig) {
		t.Fatal("strip over vlan did not restore original")
	}
}

func TestSourceRoutePacketRoundTrip(t *testing.T) {
	d := buildUDPPacket([]byte("sr"))
	d.HasSourceRoute = true
	d.SourceRoute = SourceRouteFromPorts(2, 3, 1)
	wire := d.Serialize()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasSourceRoute || len(got.SourceRoute) != 3 {
		t.Fatalf("source route lost: %+v", got.SourceRoute)
	}
	if got.Eth.Type != EtherTypeSourceRoute {
		t.Fatalf("ethertype = %s", got.Eth.Type)
	}
	if !got.HasIPv4 || !got.HasUDP {
		t.Fatal("payload under source route must parse")
	}

	// Popping one hop and re-serializing mimics a source-routing switch.
	got.SourceRoute = got.SourceRoute[1:]
	reparsed, err := Parse(got.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if len(reparsed.SourceRoute) != 2 || reparsed.SourceRoute[0].Port != 3 {
		t.Fatalf("pop failed: %+v", reparsed.SourceRoute)
	}
}

func TestGTPUEncapRoundTrip(t *testing.T) {
	// Downlink Aether packet: outer IPv4/UDP/GTP-U around an inner
	// IPv4/TCP user packet.
	d := &Decoded{
		Eth:     Ethernet{Dst: MACFromUint64(2), Src: MACFromUint64(1), Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 64, Protocol: ProtoUDP, Src: MustIP4("140.0.100.1"), Dst: MustIP4("140.0.100.254")},
		HasUDP:  true,
		UDP:     UDP{SrcPort: GTPUPort, DstPort: GTPUPort},
		HasGTPU: true,
		GTPU:    GTPU{MsgType: GTPUGPDU, TEID: 0xbeef},

		HasInnerIPv4: true,
		InnerIPv4:    IPv4{TTL: 63, Protocol: ProtoTCP, Src: MustIP4("10.250.0.1"), Dst: MustIP4("192.168.5.5")},
		HasInnerTCP:  true,
		InnerTCP:     TCP{SrcPort: 43210, DstPort: 81, Flags: TCPSyn},
		Payload:      []byte("user data"),
	}
	wire := d.Serialize()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasGTPU || got.GTPU.TEID != 0xbeef {
		t.Fatalf("gtpu lost: %+v", got.GTPU)
	}
	if !got.HasInnerIPv4 || got.InnerIPv4.Dst != MustIP4("192.168.5.5") {
		t.Fatalf("inner ipv4: %+v", got.InnerIPv4)
	}
	if !got.HasInnerTCP || got.InnerTCP.DstPort != 81 || got.InnerTCP.Flags&TCPSyn == 0 {
		t.Fatalf("inner tcp: %+v", got.InnerTCP)
	}
	if string(got.Payload) != "user data" {
		t.Fatalf("payload %q", got.Payload)
	}
	if got.GTPU.Length != uint16(IPv4Len+TCPLen+9) {
		t.Fatalf("gtpu length = %d", got.GTPU.Length)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	d := &Decoded{
		Eth:     Ethernet{Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 64, Protocol: ProtoICMP, Src: MustIP4("10.0.1.1"), Dst: MustIP4("10.0.4.4")},
		HasICMP: true,
		ICMP:    ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 3},
	}
	got, err := Parse(d.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasICMP || got.ICMP.ID != 77 || got.ICMP.Seq != 3 || got.ICMP.Type != ICMPEchoRequest {
		t.Fatalf("icmp: %+v", got.ICMP)
	}
}

func TestParseErrors(t *testing.T) {
	cases := [][]byte{
		{},        // empty
		{1, 2, 3}, // short ethernet
		func() []byte { // hydra header truncated
			e := Ethernet{Type: EtherTypeHydra}
			return e.Append(nil)
		}(),
		func() []byte { // hydra blob truncated
			e := Ethernet{Type: EtherTypeHydra}
			b := e.Append(nil)
			return append(b, 0x08, 0x00, 0x00, 0x09, 1, 2) // claims 9-byte blob
		}(),
		func() []byte { // short ipv4
			e := Ethernet{Type: EtherTypeIPv4}
			return append(e.Append(nil), 0x45, 0)
		}(),
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Example from RFC 1071 §3: the checksum of this data is 0xddf2
	// (complement of 0x220d).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %04x, want %04x", got, ^uint16(0xddf2))
	}
	// Odd-length input uses an implicit zero pad byte.
	if got, want := Checksum([]byte{0xab}), ^uint16(0xab00); got != want {
		t.Fatalf("odd checksum = %04x, want %04x", got, want)
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0x5, 3)
	w.WriteBool(true)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(1, 1)
	w.Align()
	w.WriteBits(0xFF, 8)
	buf := w.Bytes()

	r := NewBitReader(buf)
	if v, _ := r.ReadBits(3); v != 0x5 {
		t.Fatalf("3-bit read = %x", v)
	}
	if b, _ := r.ReadBool(); !b {
		t.Fatal("bool read")
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("16-bit read = %x", v)
	}
	if v, _ := r.ReadBits(1); v != 1 {
		t.Fatal("1-bit read")
	}
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Fatal("aligned read")
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Fatal("read past end should fail")
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	// Property: any sequence of (width, value) writes reads back
	// identically.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%24) + 1
		widths := make([]int, count)
		vals := make([]uint64, count)
		w := NewBitWriter()
		for i := range widths {
			widths[i] = rng.Intn(64) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= 1<<uint(widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := range widths {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeParseProperty(t *testing.T) {
	// Property: Serialize then Parse is the identity on the fields the
	// simulator depends on, for random UDP packets with random hydra
	// blobs and vlan tags.
	f := func(srcIP, dstIP uint32, sport, dport uint16, vid uint16, blobLen uint8, withVLAN, withHydra bool) bool {
		d := buildUDPPacket(bytes.Repeat([]byte{0xaa}, int(blobLen%32)))
		d.IPv4.Src, d.IPv4.Dst = IP4(srcIP), IP4(dstIP)
		d.UDP.SrcPort, d.UDP.DstPort = sport, dport
		if d.UDP.DstPort == GTPUPort || d.UDP.SrcPort == GTPUPort {
			return true // GTP parsing path tested separately
		}
		if withVLAN {
			d.HasVLAN = true
			d.VLAN = VLAN{VID: vid & 0x0fff}
		}
		if withHydra {
			d.InsertHydra(bytes.Repeat([]byte{0x7e}, int(blobLen%16)))
		}
		got, err := Parse(d.Serialize())
		if err != nil {
			return false
		}
		if got.IPv4.Src != IP4(srcIP) || got.IPv4.Dst != IP4(dstIP) {
			return false
		}
		if got.UDP.SrcPort != sport || got.UDP.DstPort != dport {
			return false
		}
		if got.HasVLAN != withVLAN || got.HasHydra != withHydra {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGTPUPortFallback(t *testing.T) {
	// A UDP packet using port 2152 without a GTP-U header must parse as
	// plain UDP (port-based tunnel detection is only a heuristic).
	d := buildUDPPacket([]byte{0x00, 0x01, 0x02}) // version nibble 0: not GTP
	d.UDP.SrcPort = GTPUPort
	got, err := Parse(d.Serialize())
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if got.HasGTPU || !got.HasUDP {
		t.Fatalf("flags: gtpu=%v udp=%v", got.HasGTPU, got.HasUDP)
	}
	if len(got.Payload) != 3 {
		t.Fatalf("payload = %d bytes", len(got.Payload))
	}
}
