package dataplane

import (
	"encoding/binary"
	"fmt"
)

// HydraRaw is the on-wire Hydra telemetry header: when present it sits
// directly after Ethernet, announced by EtherTypeHydra. It stores the
// displaced EtherType (so stripping restores the original packet exactly,
// as §4.1 requires) and the program-specific telemetry blob, whose layout
// only the compiled checker knows.
type HydraRaw struct {
	OrigType EtherType
	Blob     []byte
}

// hydraFixedLen is the fixed part of the Hydra header: orig ethertype (2)
// plus blob length (2).
const hydraFixedLen = 4

// WireLen returns the serialized length of the Hydra header.
func (h *HydraRaw) WireLen() int { return hydraFixedLen + len(h.Blob) }

// Decode parses the header from b and returns the remaining payload.
func (h *HydraRaw) Decode(b []byte) ([]byte, error) {
	if len(b) < hydraFixedLen {
		return nil, fmt.Errorf("hydra: short header: %d bytes", len(b))
	}
	h.OrigType = EtherType(binary.BigEndian.Uint16(b[0:2]))
	n := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < hydraFixedLen+n {
		return nil, fmt.Errorf("hydra: blob truncated: want %d bytes, have %d", n, len(b)-hydraFixedLen)
	}
	h.Blob = b[hydraFixedLen : hydraFixedLen+n]
	return b[hydraFixedLen+n:], nil
}

// Append serializes the header onto buf.
func (h *HydraRaw) Append(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.OrigType))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Blob)))
	return append(buf, h.Blob...)
}

// Decoded is a fully parsed packet. The Has* flags mirror P4 header
// validity bits; the Aether UPF checkers match on them directly.
type Decoded struct {
	Eth Ethernet

	HasHydra bool
	Hydra    HydraRaw

	HasVLAN bool
	VLAN    VLAN

	HasSourceRoute bool
	SourceRoute    []SourceRouteHop

	HasIPv4 bool
	IPv4    IPv4
	HasUDP  bool
	UDP     UDP
	HasTCP  bool
	TCP     TCP
	HasICMP bool
	ICMP    ICMPEcho

	HasGTPU bool
	GTPU    GTPU

	// Inner headers when the packet is GTP-U encapsulated.
	HasInnerIPv4 bool
	InnerIPv4    IPv4
	HasInnerUDP  bool
	InnerUDP     UDP
	HasInnerTCP  bool
	InnerTCP     TCP
	HasInnerICMP bool
	InnerICMP    ICMPEcho

	Payload []byte
}

// Parse decodes a full packet from wire bytes. It never fails on an
// unknown inner protocol — parsing just stops and the rest lands in
// Payload — but it does fail on structurally broken headers.
//
// Parse allocates a fresh Decoded per call; hot paths should hold a
// Decoded of their own and use ParseInto.
func Parse(data []byte) (*Decoded, error) {
	d := &Decoded{}
	if err := ParseInto(d, data); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseInto decodes a full packet from wire bytes into a caller-owned
// Decoded, reusing its SourceRoute capacity so steady-state parsing does
// not allocate. All fields are reset first, so d may be dirty from a
// previous packet. On error the contents of d are unspecified.
//
// The Hydra blob and Payload alias data: d is only valid while the
// caller owns the frame. Retain a packet past that with Clone.
func ParseInto(d *Decoded, data []byte) error {
	*d = Decoded{SourceRoute: d.SourceRoute[:0]}
	rest, err := d.Eth.Decode(data)
	if err != nil {
		return err
	}
	next := d.Eth.Type

	if next == EtherTypeHydra {
		d.HasHydra = true
		rest, err = d.Hydra.Decode(rest)
		if err != nil {
			return err
		}
		next = d.Hydra.OrigType
	}

	if next == EtherTypeVLAN {
		d.HasVLAN = true
		rest, err = d.VLAN.Decode(rest)
		if err != nil {
			return err
		}
		next = d.VLAN.Type
	}

	if next == EtherTypeSourceRoute {
		d.HasSourceRoute = true
		d.SourceRoute, rest, err = decodeSourceRouteInto(d.SourceRoute, rest)
		if err != nil {
			return err
		}
		next = EtherTypeIPv4 // the tutorial protocol always carries IPv4
	}

	if next != EtherTypeIPv4 {
		d.Payload = rest
		return nil
	}

	d.HasIPv4 = true
	rest, err = d.IPv4.Decode(rest)
	if err != nil {
		return err
	}

	switch d.IPv4.Protocol {
	case ProtoUDP:
		d.HasUDP = true
		rest, err = d.UDP.Decode(rest)
		if err != nil {
			return err
		}
		if d.UDP.DstPort == GTPUPort || d.UDP.SrcPort == GTPUPort {
			// Port 2152 suggests GTP-U, but the port alone is only a
			// heuristic: traffic that happens to use it without a valid
			// GTP header falls back to opaque UDP payload.
			if err := d.parseGTPU(rest); err == nil {
				return nil
			}
			// parseGTPU may have set tunnel flags before hitting the
			// broken framing; clear them so the fallback really is a
			// plain UDP packet (a half-valid tunnel would re-serialize
			// as garbage).
			d.HasGTPU, d.GTPU = false, GTPU{}
			d.HasInnerIPv4, d.InnerIPv4 = false, IPv4{}
			d.HasInnerUDP, d.InnerUDP = false, UDP{}
			d.HasInnerTCP, d.InnerTCP = false, TCP{}
			d.HasInnerICMP, d.InnerICMP = false, ICMPEcho{}
			d.Payload = rest
			return nil
		}
	case ProtoTCP:
		d.HasTCP = true
		rest, err = d.TCP.Decode(rest)
		if err != nil {
			return err
		}
	case ProtoICMP:
		d.HasICMP = true
		rest, err = d.ICMP.Decode(rest)
		if err != nil {
			return err
		}
	}
	d.Payload = rest
	return nil
}

func (d *Decoded) parseGTPU(b []byte) error {
	rest, err := d.GTPU.Decode(b)
	if err != nil {
		return err
	}
	d.HasGTPU = true
	if len(rest) == 0 {
		d.Payload = rest
		return nil
	}
	d.HasInnerIPv4 = true
	rest, err = d.InnerIPv4.Decode(rest)
	if err != nil {
		return err
	}
	switch d.InnerIPv4.Protocol {
	case ProtoUDP:
		d.HasInnerUDP = true
		rest, err = d.InnerUDP.Decode(rest)
	case ProtoTCP:
		d.HasInnerTCP = true
		rest, err = d.InnerTCP.Decode(rest)
	case ProtoICMP:
		d.HasInnerICMP = true
		rest, err = d.InnerICMP.Decode(rest)
	}
	if err != nil {
		return err
	}
	d.Payload = rest
	return nil
}

// Serialize re-encodes the packet to wire bytes, fixing up chained
// EtherTypes, IPv4 total lengths, UDP lengths, and GTP-U lengths so a
// mutated Decoded (e.g. telemetry inserted, tunnel stripped) re-encodes
// consistently. It is a convenience wrapper over AppendTo and, unlike
// the historical implementation, does NOT mutate the receiver — a shared
// *Decoded may be serialized from multiple goroutines concurrently.
func (d *Decoded) Serialize() []byte { return d.AppendTo(nil) }

// WireLen returns the serialized packet length, computed arithmetically
// from the layer validity flags — no serialization happens.
//
// One legacy quirk is preserved deliberately: a GTP-U header with no
// inner IPv4 serializes without its payload (the tunnel carries the
// inner packet, and there is none), so Payload does not count there.
func (d *Decoded) WireLen() int {
	n := EthernetLen
	if d.HasHydra {
		n += hydraFixedLen + len(d.Hydra.Blob)
	}
	if d.HasVLAN {
		n += VLANLen
	}
	if d.HasSourceRoute {
		n += len(d.SourceRoute) * SourceRouteHopLen
	}
	if !d.HasIPv4 {
		return n + len(d.Payload)
	}
	n += IPv4Len
	switch {
	case d.HasGTPU:
		n += UDPLen + GTPULen + d.gtpuInnerLen()
	case d.HasUDP:
		n += UDPLen + len(d.Payload)
	case d.HasTCP:
		n += TCPLen + len(d.Payload)
	case d.HasICMP:
		n += ICMPEchoLen + len(d.Payload)
	default:
		n += len(d.Payload)
	}
	return n
}

// gtpuInnerLen is the byte length of everything inside the GTP-U header:
// inner IPv4 + inner L4 + payload, or 0 when there is no inner packet.
func (d *Decoded) gtpuInnerLen() int {
	if !d.HasInnerIPv4 {
		return 0
	}
	n := IPv4Len + len(d.Payload)
	switch {
	case d.HasInnerUDP:
		n += UDPLen
	case d.HasInnerTCP:
		n += TCPLen
	case d.HasInnerICMP:
		n += ICMPEchoLen
	}
	return n
}

// AppendTo serializes the packet onto buf in a single front-to-back pass
// and returns the extended slice. The total length comes from WireLen,
// so buf grows at most once; all length fix-ups (IPv4 TotalLen, UDP
// Length, GTP-U Length, the EtherType chain) are computed into stack
// copies of the headers — AppendTo never writes to d.
//
// AppendTo is safe for in-place rewrite: if buf is frame[:0] and
// d.Hydra.Blob / d.Payload alias frame at their already-serialized
// offsets (i.e. the wire shape is unchanged since ParseInto), the copies
// of those slices are identity memmoves and the result is a correct
// rewrite of the original frame.
func (d *Decoded) AppendTo(buf []byte) []byte {
	if need := d.WireLen(); cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}

	// Resolve the EtherType chain outside-in before writing anything.
	// innermost is what the layer *after* VLAN announces.
	innermost := EtherTypeIPv4
	if d.HasSourceRoute {
		innermost = EtherTypeSourceRoute
	} else if !d.HasIPv4 {
		innermost = d.Eth.Type // opaque payload: preserve as parsed
		if d.HasHydra {
			innermost = d.Hydra.OrigType
		}
		if d.HasVLAN {
			innermost = d.VLAN.Type
		}
	}
	vlanType := innermost
	if d.HasVLAN {
		innermost = EtherTypeVLAN
	}
	hydraOrig := innermost
	if d.HasHydra {
		innermost = EtherTypeHydra
	}

	eth := d.Eth
	eth.Type = innermost
	buf = eth.Append(buf)
	if d.HasHydra {
		h := d.Hydra
		h.OrigType = hydraOrig
		buf = h.Append(buf)
	}
	if d.HasVLAN {
		v := d.VLAN
		v.Type = vlanType
		buf = v.Append(buf)
	}
	if d.HasSourceRoute {
		buf = AppendSourceRoute(buf, d.SourceRoute)
	}
	if !d.HasIPv4 {
		return append(buf, d.Payload...)
	}

	// Explicit length arithmetic replaces the old serialize-to-count.
	var l4Len int
	switch {
	case d.HasGTPU:
		l4Len = UDPLen + GTPULen + d.gtpuInnerLen()
	case d.HasUDP:
		l4Len = UDPLen + len(d.Payload)
	case d.HasTCP:
		l4Len = TCPLen + len(d.Payload)
	case d.HasICMP:
		l4Len = ICMPEchoLen + len(d.Payload)
	default:
		l4Len = len(d.Payload)
	}
	ip := d.IPv4
	ip.TotalLen = uint16(IPv4Len + l4Len)
	buf = ip.Append(buf)

	switch {
	case d.HasGTPU:
		innerLen := d.gtpuInnerLen()
		u := d.UDP
		u.Length = uint16(UDPLen + GTPULen + innerLen)
		buf = u.Append(buf)
		g := d.GTPU
		g.Length = uint16(innerLen)
		buf = g.Append(buf)
		if d.HasInnerIPv4 {
			iip := d.InnerIPv4
			iip.TotalLen = uint16(innerLen)
			buf = iip.Append(buf)
			switch {
			case d.HasInnerUDP:
				iu := d.InnerUDP
				iu.Length = uint16(UDPLen + len(d.Payload))
				buf = iu.Append(buf)
			case d.HasInnerTCP:
				buf = d.InnerTCP.Append(buf)
			case d.HasInnerICMP:
				buf = d.InnerICMP.Append(buf)
			}
			buf = append(buf, d.Payload...)
		}
	case d.HasUDP:
		u := d.UDP
		u.Length = uint16(UDPLen + len(d.Payload))
		buf = u.Append(buf)
		buf = append(buf, d.Payload...)
	case d.HasTCP:
		buf = d.TCP.Append(buf)
		buf = append(buf, d.Payload...)
	case d.HasICMP:
		buf = d.ICMP.Append(buf)
		buf = append(buf, d.Payload...)
	default:
		buf = append(buf, d.Payload...)
	}
	return buf
}

// Clone returns a deep copy of d that is safe to retain after the frame
// backing d is released, rewritten, or pooled: SourceRoute, the Hydra
// blob, and Payload get their own storage.
func (d *Decoded) Clone() *Decoded {
	c := *d
	if d.SourceRoute != nil {
		c.SourceRoute = append([]SourceRouteHop(nil), d.SourceRoute...)
	}
	if d.Hydra.Blob != nil {
		c.Hydra.Blob = append([]byte(nil), d.Hydra.Blob...)
	}
	if d.Payload != nil {
		c.Payload = append([]byte(nil), d.Payload...)
	}
	return &c
}

// InsertHydra adds an empty Hydra header (first-hop injection, §4.1).
// It is a no-op if the header is already present.
func (d *Decoded) InsertHydra(blob []byte) {
	if d.HasHydra {
		d.Hydra.Blob = blob
		return
	}
	d.HasHydra = true
	d.Hydra = HydraRaw{Blob: blob}
}

// StripHydra removes the Hydra header (last-hop strip, §4.1), restoring
// the original EtherType chain. Returns the blob that was carried.
func (d *Decoded) StripHydra() []byte {
	if !d.HasHydra {
		return nil
	}
	blob := d.Hydra.Blob
	d.HasHydra = false
	d.Hydra = HydraRaw{}
	return blob
}
