package dataplane

import (
	"encoding/binary"
	"fmt"
)

// HydraRaw is the on-wire Hydra telemetry header: when present it sits
// directly after Ethernet, announced by EtherTypeHydra. It stores the
// displaced EtherType (so stripping restores the original packet exactly,
// as §4.1 requires) and the program-specific telemetry blob, whose layout
// only the compiled checker knows.
type HydraRaw struct {
	OrigType EtherType
	Blob     []byte
}

// hydraFixedLen is the fixed part of the Hydra header: orig ethertype (2)
// plus blob length (2).
const hydraFixedLen = 4

// WireLen returns the serialized length of the Hydra header.
func (h *HydraRaw) WireLen() int { return hydraFixedLen + len(h.Blob) }

// Decode parses the header from b and returns the remaining payload.
func (h *HydraRaw) Decode(b []byte) ([]byte, error) {
	if len(b) < hydraFixedLen {
		return nil, fmt.Errorf("hydra: short header: %d bytes", len(b))
	}
	h.OrigType = EtherType(binary.BigEndian.Uint16(b[0:2]))
	n := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < hydraFixedLen+n {
		return nil, fmt.Errorf("hydra: blob truncated: want %d bytes, have %d", n, len(b)-hydraFixedLen)
	}
	h.Blob = b[hydraFixedLen : hydraFixedLen+n]
	return b[hydraFixedLen+n:], nil
}

// Append serializes the header onto buf.
func (h *HydraRaw) Append(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.OrigType))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Blob)))
	return append(buf, h.Blob...)
}

// Decoded is a fully parsed packet. The Has* flags mirror P4 header
// validity bits; the Aether UPF checkers match on them directly.
type Decoded struct {
	Eth Ethernet

	HasHydra bool
	Hydra    HydraRaw

	HasVLAN bool
	VLAN    VLAN

	HasSourceRoute bool
	SourceRoute    []SourceRouteHop

	HasIPv4 bool
	IPv4    IPv4
	HasUDP  bool
	UDP     UDP
	HasTCP  bool
	TCP     TCP
	HasICMP bool
	ICMP    ICMPEcho

	HasGTPU bool
	GTPU    GTPU

	// Inner headers when the packet is GTP-U encapsulated.
	HasInnerIPv4 bool
	InnerIPv4    IPv4
	HasInnerUDP  bool
	InnerUDP     UDP
	HasInnerTCP  bool
	InnerTCP     TCP
	HasInnerICMP bool
	InnerICMP    ICMPEcho

	Payload []byte
}

// Parse decodes a full packet from wire bytes. It never fails on an
// unknown inner protocol — parsing just stops and the rest lands in
// Payload — but it does fail on structurally broken headers.
func Parse(data []byte) (*Decoded, error) {
	d := &Decoded{}
	rest, err := d.Eth.Decode(data)
	if err != nil {
		return nil, err
	}
	next := d.Eth.Type

	if next == EtherTypeHydra {
		d.HasHydra = true
		rest, err = d.Hydra.Decode(rest)
		if err != nil {
			return nil, err
		}
		next = d.Hydra.OrigType
	}

	if next == EtherTypeVLAN {
		d.HasVLAN = true
		rest, err = d.VLAN.Decode(rest)
		if err != nil {
			return nil, err
		}
		next = d.VLAN.Type
	}

	if next == EtherTypeSourceRoute {
		d.HasSourceRoute = true
		d.SourceRoute, rest, err = DecodeSourceRoute(rest)
		if err != nil {
			return nil, err
		}
		next = EtherTypeIPv4 // the tutorial protocol always carries IPv4
	}

	if next != EtherTypeIPv4 {
		d.Payload = rest
		return d, nil
	}

	d.HasIPv4 = true
	rest, err = d.IPv4.Decode(rest)
	if err != nil {
		return nil, err
	}

	switch d.IPv4.Protocol {
	case ProtoUDP:
		d.HasUDP = true
		rest, err = d.UDP.Decode(rest)
		if err != nil {
			return nil, err
		}
		if d.UDP.DstPort == GTPUPort || d.UDP.SrcPort == GTPUPort {
			// Port 2152 suggests GTP-U, but the port alone is only a
			// heuristic: traffic that happens to use it without a valid
			// GTP header falls back to opaque UDP payload.
			if err := d.parseGTPU(rest); err == nil {
				return d, nil
			}
			// parseGTPU may have set tunnel flags before hitting the
			// broken framing; clear them so the fallback really is a
			// plain UDP packet (a half-valid tunnel would re-serialize
			// as garbage).
			d.HasGTPU, d.GTPU = false, GTPU{}
			d.HasInnerIPv4, d.InnerIPv4 = false, IPv4{}
			d.HasInnerUDP, d.InnerUDP = false, UDP{}
			d.HasInnerTCP, d.InnerTCP = false, TCP{}
			d.HasInnerICMP, d.InnerICMP = false, ICMPEcho{}
			d.Payload = rest
			return d, nil
		}
	case ProtoTCP:
		d.HasTCP = true
		rest, err = d.TCP.Decode(rest)
		if err != nil {
			return nil, err
		}
	case ProtoICMP:
		d.HasICMP = true
		rest, err = d.ICMP.Decode(rest)
		if err != nil {
			return nil, err
		}
	}
	d.Payload = rest
	return d, nil
}

func (d *Decoded) parseGTPU(b []byte) error {
	rest, err := d.GTPU.Decode(b)
	if err != nil {
		return err
	}
	d.HasGTPU = true
	if len(rest) == 0 {
		d.Payload = rest
		return nil
	}
	d.HasInnerIPv4 = true
	rest, err = d.InnerIPv4.Decode(rest)
	if err != nil {
		return err
	}
	switch d.InnerIPv4.Protocol {
	case ProtoUDP:
		d.HasInnerUDP = true
		rest, err = d.InnerUDP.Decode(rest)
	case ProtoTCP:
		d.HasInnerTCP = true
		rest, err = d.InnerTCP.Decode(rest)
	case ProtoICMP:
		d.HasInnerICMP = true
		rest, err = d.InnerICMP.Decode(rest)
	}
	if err != nil {
		return err
	}
	d.Payload = rest
	return nil
}

// Serialize re-encodes the packet to wire bytes, fixing up chained
// EtherTypes, IPv4 total lengths, UDP lengths, and GTP-U lengths so a
// mutated Decoded (e.g. telemetry inserted, tunnel stripped) re-encodes
// consistently.
func (d *Decoded) Serialize() []byte {
	// Build from the inside out so lengths are known.
	var inner []byte
	if d.HasInnerIPv4 {
		var l4 []byte
		switch {
		case d.HasInnerUDP:
			d.InnerUDP.Length = uint16(UDPLen + len(d.Payload))
			l4 = d.InnerUDP.Append(nil)
		case d.HasInnerTCP:
			l4 = d.InnerTCP.Append(nil)
		case d.HasInnerICMP:
			l4 = d.InnerICMP.Append(nil)
		}
		d.InnerIPv4.TotalLen = uint16(IPv4Len + len(l4) + len(d.Payload))
		inner = d.InnerIPv4.Append(nil)
		inner = append(inner, l4...)
		inner = append(inner, d.Payload...)
	}

	var l3 []byte
	if d.HasIPv4 {
		var l4 []byte
		switch {
		case d.HasGTPU:
			d.GTPU.Length = uint16(len(inner))
			g := d.GTPU.Append(nil)
			g = append(g, inner...)
			d.UDP.Length = uint16(UDPLen + len(g))
			l4 = d.UDP.Append(nil)
			l4 = append(l4, g...)
		case d.HasUDP:
			d.UDP.Length = uint16(UDPLen + len(d.Payload))
			l4 = d.UDP.Append(nil)
			l4 = append(l4, d.Payload...)
		case d.HasTCP:
			l4 = d.TCP.Append(nil)
			l4 = append(l4, d.Payload...)
		case d.HasICMP:
			l4 = d.ICMP.Append(nil)
			l4 = append(l4, d.Payload...)
		default:
			l4 = d.Payload
		}
		d.IPv4.TotalLen = uint16(IPv4Len + len(l4))
		l3 = d.IPv4.Append(nil)
		l3 = append(l3, l4...)
	} else {
		l3 = d.Payload
	}

	if d.HasSourceRoute {
		sr := AppendSourceRoute(nil, d.SourceRoute)
		l3 = append(sr, l3...)
	}

	// Chain the EtherTypes from the outside in.
	innermostType := EtherTypeIPv4
	if d.HasSourceRoute {
		innermostType = EtherTypeSourceRoute
	} else if !d.HasIPv4 {
		innermostType = d.Eth.Type // opaque payload: preserve as parsed
		if d.HasHydra {
			innermostType = d.Hydra.OrigType
		}
		if d.HasVLAN {
			innermostType = d.VLAN.Type
		}
	}

	if d.HasVLAN {
		d.VLAN.Type = innermostType
		l3 = append(d.VLAN.Append(nil), l3...)
		innermostType = EtherTypeVLAN
	}
	if d.HasHydra {
		d.Hydra.OrigType = innermostType
		l3 = append(d.Hydra.Append(nil), l3...)
		innermostType = EtherTypeHydra
	}
	d.Eth.Type = innermostType
	return append(d.Eth.Append(nil), l3...)
}

// WireLen returns the serialized packet length without building it.
func (d *Decoded) WireLen() int { return len(d.Serialize()) }

// InsertHydra adds an empty Hydra header (first-hop injection, §4.1).
// It is a no-op if the header is already present.
func (d *Decoded) InsertHydra(blob []byte) {
	if d.HasHydra {
		d.Hydra.Blob = blob
		return
	}
	d.HasHydra = true
	d.Hydra = HydraRaw{Blob: blob}
}

// StripHydra removes the Hydra header (last-hop strip, §4.1), restoring
// the original EtherType chain. Returns the blob that was carried.
func (d *Decoded) StripHydra() []byte {
	if !d.HasHydra {
		return nil
	}
	blob := d.Hydra.Blob
	d.HasHydra = false
	d.Hydra = HydraRaw{}
	return blob
}
