package dataplane

import (
	"bytes"
	"testing"
)

// roundTripCases builds one representative packet per wire shape the
// simulator produces: every combination of Hydra telemetry, VLAN,
// source-route stacks, and GTP-U tunnels that Parse has a path for.
// Shared between the round-trip table test and the fuzz seed corpus.
func roundTripCases() []struct {
	name  string
	build func() *Decoded
} {
	return []struct {
		name  string
		build func() *Decoded
	}{
		{"udp", func() *Decoded { return buildUDPPacket([]byte("hello")) }},
		{"udp-empty-payload", func() *Decoded { return buildUDPPacket(nil) }},
		{"tcp", func() *Decoded {
			d := buildUDPPacket([]byte("tcp data"))
			d.HasUDP, d.HasTCP = false, true
			d.IPv4.Protocol = ProtoTCP
			d.TCP = TCP{SrcPort: 43210, DstPort: 80, Seq: 7, Flags: TCPSyn | TCPAck, Window: 1024}
			return d
		}},
		{"icmp", func() *Decoded {
			d := buildUDPPacket([]byte("ping"))
			d.HasUDP, d.HasICMP = false, true
			d.IPv4.Protocol = ProtoICMP
			d.ICMP = ICMPEcho{Type: ICMPEchoRequest, ID: 9, Seq: 2}
			return d
		}},
		{"udp-vlan", func() *Decoded {
			d := buildUDPPacket([]byte("tagged"))
			d.HasVLAN = true
			d.VLAN = VLAN{PCP: 5, VID: 300}
			return d
		}},
		{"hydra-udp", func() *Decoded {
			d := buildUDPPacket([]byte("telemetry"))
			d.InsertHydra([]byte{0xca, 0xfe, 0x01, 0x02})
			return d
		}},
		{"hydra-empty-blob", func() *Decoded {
			d := buildUDPPacket([]byte("x"))
			d.InsertHydra(nil)
			return d
		}},
		{"hydra-vlan-udp", func() *Decoded {
			d := buildUDPPacket([]byte("both"))
			d.HasVLAN = true
			d.VLAN = VLAN{VID: 42}
			d.InsertHydra([]byte{1, 2, 3})
			return d
		}},
		{"source-route", func() *Decoded {
			d := buildUDPPacket([]byte("sr"))
			d.HasSourceRoute = true
			d.SourceRoute = SourceRouteFromPorts(2, 3, 1)
			return d
		}},
		{"hydra-source-route", func() *Decoded {
			d := buildUDPPacket([]byte("sr+tele"))
			d.HasSourceRoute = true
			d.SourceRoute = []SourceRouteHop{{Port: 4, SwitchID: 10}, {Port: 1, SwitchID: 20, BOS: true}}
			d.InsertHydra([]byte{0x7e})
			return d
		}},
		{"gtpu-inner-tcp", func() *Decoded {
			d := buildUDPPacket([]byte("user"))
			d.UDP = UDP{SrcPort: GTPUPort, DstPort: GTPUPort}
			d.HasGTPU = true
			d.GTPU = GTPU{MsgType: GTPUGPDU, TEID: 0xbeef}
			d.HasInnerIPv4 = true
			d.InnerIPv4 = IPv4{TTL: 63, Protocol: ProtoTCP, Src: MustIP4("10.250.0.1"), Dst: MustIP4("192.168.5.5")}
			d.HasInnerTCP = true
			d.InnerTCP = TCP{SrcPort: 50000, DstPort: 443, Flags: TCPSyn}
			return d
		}},
		{"gtpu-inner-udp", func() *Decoded {
			d := buildUDPPacket([]byte("dns"))
			d.UDP = UDP{SrcPort: GTPUPort, DstPort: GTPUPort}
			d.HasGTPU = true
			d.GTPU = GTPU{MsgType: GTPUGPDU, TEID: 1}
			d.HasInnerIPv4 = true
			d.InnerIPv4 = IPv4{TTL: 64, Protocol: ProtoUDP, Src: MustIP4("10.250.0.2"), Dst: MustIP4("8.8.8.8")}
			d.HasInnerUDP = true
			d.InnerUDP = UDP{SrcPort: 40000, DstPort: 53}
			return d
		}},
		{"gtpu-inner-icmp", func() *Decoded {
			d := buildUDPPacket(nil)
			d.UDP = UDP{SrcPort: GTPUPort, DstPort: GTPUPort}
			d.HasGTPU = true
			d.GTPU = GTPU{MsgType: GTPUGPDU, TEID: 2}
			d.HasInnerIPv4 = true
			d.InnerIPv4 = IPv4{TTL: 64, Protocol: ProtoICMP, Src: MustIP4("10.250.0.3"), Dst: MustIP4("1.1.1.1")}
			d.HasInnerICMP = true
			d.InnerICMP = ICMPEcho{Type: ICMPEchoRequest, ID: 1, Seq: 1}
			return d
		}},
		{"hydra-over-gtpu", func() *Decoded {
			d := buildUDPPacket([]byte("u"))
			d.UDP = UDP{SrcPort: GTPUPort, DstPort: GTPUPort}
			d.HasGTPU = true
			d.GTPU = GTPU{MsgType: GTPUGPDU, TEID: 3}
			d.HasInnerIPv4 = true
			d.InnerIPv4 = IPv4{TTL: 60, Protocol: ProtoUDP, Src: MustIP4("10.0.0.9"), Dst: MustIP4("10.0.0.10")}
			d.HasInnerUDP = true
			d.InnerUDP = UDP{SrcPort: 1000, DstPort: 2000}
			d.InsertHydra([]byte{9, 8, 7})
			return d
		}},
		{"opaque-ethertype", func() *Decoded {
			return &Decoded{
				Eth:     Ethernet{Dst: MACFromUint64(2), Src: MACFromUint64(1), Type: EtherType(0x86dd)},
				Payload: []byte{0xde, 0xad, 0xbe, 0xef},
			}
		}},
		{"hydra-opaque", func() *Decoded {
			d := &Decoded{
				Eth:     Ethernet{Dst: MACFromUint64(2), Src: MACFromUint64(1), Type: EtherType(0x86dd)},
				Payload: []byte{0x01},
			}
			d.InsertHydra([]byte{0xaa})
			return d
		}},
	}
}

// TestWireRoundTrip pins the codec invariant every layer combination
// must satisfy: Serialize ∘ Parse is the identity on wire bytes. The
// first Serialize normalizes lengths and checksums; from then on
// parse → re-serialize must reproduce the exact bytes, or telemetry
// insertion/stripping at intermediate hops would corrupt packets.
func TestWireRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases() {
		t.Run(tc.name, func(t *testing.T) {
			wire := tc.build().Serialize()
			p1, err := Parse(wire)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			w1 := p1.Serialize()
			if !bytes.Equal(w1, wire) {
				t.Fatalf("first re-serialize diverged\n got %x\nwant %x", w1, wire)
			}
			p2, err := Parse(w1)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if w2 := p2.Serialize(); !bytes.Equal(w2, wire) {
				t.Fatalf("second re-serialize diverged\n got %x\nwant %x", w2, wire)
			}
		})
	}
}

// malformedCases are wire fragments that must make Parse return an
// error — or, for the GTP-U heuristic, fall back to opaque UDP — but
// never panic. They double as fuzz seeds.
func malformedCases() []struct {
	name string
	wire []byte
	// fallback marks GTP-U-port packets whose broken tunnel framing is
	// legal as plain UDP: Parse succeeds with HasGTPU false.
	fallback bool
} {
	eth := func(t EtherType) []byte {
		e := Ethernet{Type: t}
		return e.Append(nil)
	}
	udpTo2152 := func(payload []byte) []byte {
		d := buildUDPPacket(payload)
		d.UDP.DstPort = GTPUPort
		return d.Serialize()
	}
	gtpuHeader := GTPU{MsgType: GTPUGPDU, TEID: 5}
	return []struct {
		name     string
		wire     []byte
		fallback bool
	}{
		{"empty", nil, false},
		{"short-ethernet", []byte{1, 2, 3}, false},
		{"hydra-fixed-truncated", append(eth(EtherTypeHydra), 0x08), false},
		{"hydra-blob-overruns", append(eth(EtherTypeHydra), 0x08, 0x00, 0x00, 0x10, 1, 2, 3), false},
		{"vlan-truncated", append(eth(EtherTypeVLAN), 0x00, 0x64), false},
		{"srcroute-no-bos", append(eth(EtherTypeSourceRoute), 0x00, 0x05, 0, 0, 0, 1), false},
		{"srcroute-partial-hop", append(eth(EtherTypeSourceRoute), 0x80, 0x05, 0, 0), false},
		{"ipv4-truncated", append(eth(EtherTypeIPv4), 0x45, 0x00, 0x00), false},
		{"ipv4-bad-checksum", func() []byte {
			w := buildUDPPacket([]byte("x")).Serialize()
			w[EthernetLen+10] ^= 0xff
			return w
		}(), false},
		{"udp-truncated", func() []byte {
			w := buildUDPPacket(nil).Serialize()
			return w[:EthernetLen+IPv4Len+3]
		}(), false},
		{"tcp-truncated", func() []byte {
			d := buildUDPPacket(nil)
			d.HasUDP, d.HasTCP = false, true
			d.IPv4.Protocol = ProtoTCP
			d.TCP = TCP{SrcPort: 1, DstPort: 2}
			w := d.Serialize()
			return w[:EthernetLen+IPv4Len+TCPLen-5]
		}(), false},
		{"gtpu-header-truncated", udpTo2152([]byte{0x30, GTPUGPDU, 0x00}), true},
		{"gtpu-bad-version", udpTo2152([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07}), true},
		{"gtpu-inner-ipv4-truncated", udpTo2152(append(gtpuHeader.Append(nil), 0x45, 0x00)), true},
		{"gtpu-inner-tcp-truncated", udpTo2152(func() []byte {
			ip := IPv4{TTL: 1, Protocol: ProtoTCP, TotalLen: IPv4Len + TCPLen}
			inner := ip.Append(nil)
			inner = append(inner, 0x01, 0x02) // 2 of 20 TCP bytes
			g := gtpuHeader
			g.Length = uint16(len(inner))
			return append(g.Append(nil), inner...)
		}()), true},
	}
}

// TestMalformedInputs drives every malformed fragment through Parse:
// structurally broken headers must error, GTP-U heuristic misses must
// fall back to opaque UDP, and nothing may panic (a panic in the parse
// path would let one crafted packet kill a verification switch).
func TestMalformedInputs(t *testing.T) {
	for _, tc := range malformedCases() {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(tc.wire)
			if tc.fallback {
				if err != nil {
					t.Fatalf("GTP-U fallback case must parse as plain UDP, got error: %v", err)
				}
				if d.HasGTPU || d.HasInnerIPv4 {
					t.Fatalf("broken tunnel framing must not set tunnel flags: %+v", d)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected a parse error, got %+v", d)
			}
		})
	}
}

// TestGTPUDecapEncapWire checks the UPF tunnel operations at the wire
// level: decap of an encapsulated packet restores the exact original
// user packet bytes, and encap round-trips through the parser.
func TestGTPUDecapEncapWire(t *testing.T) {
	user := buildUDPPacket([]byte("user payload"))
	userWire := user.Serialize()

	up, err := Parse(userWire)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.EncapGTPU(MustIP4("140.0.100.1"), MustIP4("140.0.100.254"), 0x1234); err != nil {
		t.Fatal(err)
	}
	tunneled, err := Parse(up.Serialize())
	if err != nil {
		t.Fatalf("encapsulated packet failed to parse: %v", err)
	}
	if !tunneled.HasGTPU || tunneled.GTPU.TEID != 0x1234 || !tunneled.HasInnerIPv4 {
		t.Fatalf("tunnel layers wrong: %+v", tunneled)
	}
	if err := tunneled.DecapGTPU(); err != nil {
		t.Fatal(err)
	}
	if got := tunneled.Serialize(); !bytes.Equal(got, userWire) {
		t.Fatalf("decap did not restore the user packet\n got %x\nwant %x", got, userWire)
	}

	// Error paths must stay errors, not panics.
	plain, _ := Parse(userWire)
	if err := plain.DecapGTPU(); err == nil {
		t.Fatal("decap of an untunneled packet must error")
	}
	opaque := &Decoded{Eth: Ethernet{Type: EtherType(0x86dd)}}
	if err := opaque.EncapGTPU(1, 2, 3); err == nil {
		t.Fatal("encap of a non-IPv4 packet must error")
	}
}

// FuzzParse seeds the fuzzer with every valid wire shape and every
// known-tricky malformed fragment, and checks the two codec safety
// properties on arbitrary bytes: Parse never panics, and whenever it
// succeeds, one Serialize normalizes the packet to a fixpoint
// (parse → serialize → parse → serialize is stable).
func FuzzParse(f *testing.F) {
	for _, tc := range roundTripCases() {
		f.Add(tc.build().Serialize())
	}
	for _, tc := range malformedCases() {
		f.Add(tc.wire)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkCodecDifferential(t, data)
		d, err := Parse(data)
		if err != nil {
			return
		}
		wire := d.Serialize()
		d2, err := Parse(wire)
		if err != nil {
			t.Fatalf("re-serialized packet failed to parse: %v\nwire %x", err, wire)
		}
		if w2 := d2.Serialize(); !bytes.Equal(w2, wire) {
			t.Fatalf("serialize is not a fixpoint\nfirst  %x\nsecond %x", wire, w2)
		}
	})
}
