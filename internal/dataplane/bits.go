package dataplane

import "fmt"

// BitWriter packs values of arbitrary bit widths into a byte slice,
// MSB-first, the layout P4 deparsers emit. The telemetry codec uses it
// for the packed encoding of tele variables.
type BitWriter struct {
	buf  []byte
	nbit int // bits written so far
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits appends the low `width` bits of v, MSB-first. Byte-aligned
// writes of whole bytes take a fast path; the general path packs bit by
// bit.
func (w *BitWriter) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("dataplane: bad bit width %d", width))
	}
	if w.nbit%8 == 0 && width%8 == 0 {
		for i := width - 8; i >= 0; i -= 8 {
			w.buf = append(w.buf, byte(v>>uint(i)))
		}
		w.nbit += width
		return
	}
	for i := width - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		bit := byte(v>>uint(i)) & 1
		w.buf[w.nbit/8] |= bit << uint(7-w.nbit%8)
		w.nbit++
	}
}

// Grow pre-allocates capacity for n more bits.
func (w *BitWriter) Grow(nbits int) {
	need := (w.nbit+nbits+7)/8 - len(w.buf)
	if need <= 0 {
		return
	}
	if cap(w.buf)-len(w.buf) < need {
		buf := make([]byte, len(w.buf), len(w.buf)+need)
		copy(buf, w.buf)
		w.buf = buf
	}
}

// WriteBool appends a single bit.
func (w *BitWriter) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Align pads with zero bits to the next byte boundary.
func (w *BitWriter) Align() {
	for w.nbit%8 != 0 {
		w.WriteBits(0, 1)
	}
}

// Bytes returns the packed buffer (padded to a whole byte).
func (w *BitWriter) Bytes() []byte {
	w.Align()
	return w.buf
}

// BitLen returns the number of bits written (before final padding).
func (w *BitWriter) BitLen() int { return w.nbit }

// BitReader reads values of arbitrary bit widths from a byte slice,
// MSB-first, mirroring BitWriter.
type BitReader struct {
	buf  []byte
	nbit int
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits consumes `width` bits and returns them right-aligned.
func (r *BitReader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("dataplane: bad bit width %d", width)
	}
	if r.nbit+width > len(r.buf)*8 {
		return 0, fmt.Errorf("dataplane: bit read past end: need %d bits, have %d", width, len(r.buf)*8-r.nbit)
	}
	var v uint64
	if r.nbit%8 == 0 && width%8 == 0 {
		for i := 0; i < width; i += 8 {
			v = v<<8 | uint64(r.buf[r.nbit/8])
			r.nbit += 8
		}
		return v, nil
	}
	for i := 0; i < width; i++ {
		bit := r.buf[r.nbit/8] >> uint(7-r.nbit%8) & 1
		v = v<<1 | uint64(bit)
		r.nbit++
	}
	return v, nil
}

// ReadBool consumes a single bit.
func (r *BitReader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Align skips to the next byte boundary.
func (r *BitReader) Align() {
	if rem := r.nbit % 8; rem != 0 {
		r.nbit += 8 - rem
	}
}

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.nbit }
