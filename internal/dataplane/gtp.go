package dataplane

import "fmt"

// DecapGTPU strips the outer IPv4/UDP/GTP-U headers, promoting the inner
// user packet to the top level — the UPF's uplink tunnel termination.
func (d *Decoded) DecapGTPU() error {
	if !d.HasGTPU || !d.HasInnerIPv4 {
		return fmt.Errorf("dataplane: decap on a packet without a GTP-U tunnel")
	}
	d.IPv4 = d.InnerIPv4
	d.HasUDP, d.HasTCP, d.HasICMP = d.HasInnerUDP, d.HasInnerTCP, d.HasInnerICMP
	d.UDP, d.TCP, d.ICMP = d.InnerUDP, d.InnerTCP, d.InnerICMP
	d.HasGTPU = false
	d.GTPU = GTPU{}
	d.HasInnerIPv4, d.HasInnerUDP, d.HasInnerTCP, d.HasInnerICMP = false, false, false, false
	d.InnerIPv4, d.InnerUDP, d.InnerTCP, d.InnerICMP = IPv4{}, UDP{}, TCP{}, ICMPEcho{}
	return nil
}

// EncapGTPU wraps the current IPv4 packet in an outer IPv4/UDP/GTP-U
// tunnel from src to dst with the given TEID — the UPF's downlink
// encapsulation toward the base station.
func (d *Decoded) EncapGTPU(src, dst IP4, teid uint32) error {
	if !d.HasIPv4 {
		return fmt.Errorf("dataplane: encap of a non-IPv4 packet")
	}
	if d.HasGTPU {
		return fmt.Errorf("dataplane: packet is already GTP-U encapsulated")
	}
	d.InnerIPv4 = d.IPv4
	d.HasInnerIPv4 = true
	d.HasInnerUDP, d.HasInnerTCP, d.HasInnerICMP = d.HasUDP, d.HasTCP, d.HasICMP
	d.InnerUDP, d.InnerTCP, d.InnerICMP = d.UDP, d.TCP, d.ICMP

	d.IPv4 = IPv4{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst}
	d.HasUDP = true
	d.UDP = UDP{SrcPort: GTPUPort, DstPort: GTPUPort}
	d.HasTCP, d.HasICMP = false, false
	d.TCP, d.ICMP = TCP{}, ICMPEcho{}
	d.HasGTPU = true
	d.GTPU = GTPU{MsgType: GTPUGPDU, TEID: teid}
	return nil
}
