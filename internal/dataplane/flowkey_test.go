package dataplane

import (
	"math/rand"
	"testing"
)

func randKey(rng *rand.Rand) FlowKey {
	proto := ProtoTCP
	if rng.Intn(2) == 0 {
		proto = ProtoUDP
	}
	return FlowKey{
		Src:   IP4(rng.Uint32()),
		Dst:   IP4(rng.Uint32()),
		Proto: proto,
		Sport: uint16(rng.Uint32()),
		Dport: uint16(rng.Uint32()),
	}
}

// TestRSSHashSymmetry: the repeating-0x6d5a Toeplitz key must make the
// hash invariant under direction reversal, so both halves of a
// connection share a shard.
func TestRSSHashSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		k := randKey(rng)
		rev := FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto, Sport: k.Dport, Dport: k.Sport}
		if k.RSSHash() != rev.RSSHash() {
			t.Fatalf("asymmetric hash: %+v -> %08x, reverse -> %08x", k, k.RSSHash(), rev.RSSHash())
		}
	}
}

// TestRSSHashSpread: distinct flows must spread across buckets; a
// degenerate hash would serialize the engine onto one shard.
func TestRSSHashSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const flows, buckets = 4096, 8
	var counts [buckets]int
	for i := 0; i < flows; i++ {
		counts[randKey(rng).RSSHash()%buckets]++
	}
	for b, c := range counts {
		if c < flows/buckets/2 || c > flows/buckets*2 {
			t.Fatalf("bucket %d holds %d of %d flows (counts %v)", b, c, flows, counts)
		}
	}
}

// TestRSSHashZeroKey: all-zero input hashes to 0 — the Toeplitz hash
// has no constant term, so non-IPv4 traffic lands deterministically on
// shard 0.
func TestRSSHashZeroKey(t *testing.T) {
	if h := (FlowKey{}).RSSHash(); h != 0 {
		t.Fatalf("zero key hashed to %08x", h)
	}
}

func TestFlowKeyOf(t *testing.T) {
	udp := &Decoded{
		HasIPv4: true,
		IPv4:    IPv4{Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2"), Protocol: ProtoUDP},
		HasUDP:  true,
		UDP:     UDP{SrcPort: 1234, DstPort: 53},
	}
	want := FlowKey{Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2"), Proto: ProtoUDP, Sport: 1234, Dport: 53}
	if got := FlowKeyOf(udp); got != want {
		t.Errorf("udp key %+v, want %+v", got, want)
	}

	tcp := &Decoded{
		HasIPv4: true,
		IPv4:    IPv4{Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2"), Protocol: ProtoTCP},
		HasTCP:  true,
		TCP:     TCP{SrcPort: 1234, DstPort: 80},
	}
	wantTCP := FlowKey{Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2"), Proto: ProtoTCP, Sport: 1234, Dport: 80}
	if got := FlowKeyOf(tcp); got != wantTCP {
		t.Errorf("tcp key %+v, want %+v", got, wantTCP)
	}

	if got := FlowKeyOf(&Decoded{}); got != (FlowKey{}) {
		t.Errorf("non-IPv4 packet yielded non-zero key %+v", got)
	}
}
