// Package dataplane implements byte-level packet layers for the software
// switch substrate: Ethernet, VLAN, the P4-tutorial source-routing stack,
// IPv4, UDP, TCP, ICMP echo, GTP-U, and the Hydra telemetry header.
//
// The design follows gopacket's DecodingLayer idiom: each layer decodes
// from and serializes to byte slices without hidden allocation, so the
// simulator's hot path can reuse buffers.
package dataplane

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EtherType identifies the protocol carried in an Ethernet frame.
type EtherType uint16

// EtherTypes used by the substrate. EtherTypeHydra marks a Hydra
// telemetry header inserted directly after Ethernet (the compiled
// hydra_eth_type of Figure 6); EtherTypeSourceRoute is the P4-tutorial
// source-routing protocol the §5.1 case study generalizes.
const (
	EtherTypeIPv4        EtherType = 0x0800
	EtherTypeVLAN        EtherType = 0x8100
	EtherTypeSourceRoute EtherType = 0x1234
	EtherTypeHydra       EtherType = 0x88B5 // IEEE 802 local experimental
)

func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeVLAN:
		return "VLAN"
	case EtherTypeSourceRoute:
		return "SourceRoute"
	case EtherTypeHydra:
		return "Hydra"
	}
	return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v, useful for
// synthetic hosts ("host 7" gets 00:00:00:00:00:07).
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// Uint64 returns the address as an integer.
func (m MAC) Uint64() uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// EthernetLen is the serialized length of an Ethernet header.
const EthernetLen = 14

// Decode parses the header from b and returns the remaining payload.
func (e *Ethernet) Decode(b []byte) ([]byte, error) {
	if len(b) < EthernetLen {
		return nil, fmt.Errorf("ethernet: short header: %d bytes", len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return b[EthernetLen:], nil
}

// Append serializes the header onto buf.
func (e *Ethernet) Append(buf []byte) []byte {
	buf = append(buf, e.Dst[:]...)
	buf = append(buf, e.Src[:]...)
	return binary.BigEndian.AppendUint16(buf, uint16(e.Type))
}

// VLAN is an 802.1Q tag.
type VLAN struct {
	PCP  uint8  // priority code point (3 bits)
	VID  uint16 // VLAN identifier (12 bits)
	Type EtherType
}

// VLANLen is the serialized length of a VLAN tag.
const VLANLen = 4

// Decode parses the tag from b and returns the remaining payload.
func (v *VLAN) Decode(b []byte) ([]byte, error) {
	if len(b) < VLANLen {
		return nil, fmt.Errorf("vlan: short tag: %d bytes", len(b))
	}
	tci := binary.BigEndian.Uint16(b[0:2])
	v.PCP = uint8(tci >> 13)
	v.VID = tci & 0x0fff
	v.Type = EtherType(binary.BigEndian.Uint16(b[2:4]))
	return b[VLANLen:], nil
}

// Append serializes the tag onto buf.
func (v *VLAN) Append(buf []byte) []byte {
	tci := uint16(v.PCP)<<13 | v.VID&0x0fff
	buf = binary.BigEndian.AppendUint16(buf, tci)
	return binary.BigEndian.AppendUint16(buf, uint16(v.Type))
}

// SourceRouteHop is one entry of the source-routing header stack,
// generalizing the P4 tutorial's format (§5.1): a bottom-of-stack bit, a
// 15-bit egress port the switch should forward through, and the 32-bit
// identifier of the switch expected to process this entry — the field
// the Hydra path-validation checker compares against switch_id.
type SourceRouteHop struct {
	BOS      bool
	Port     uint16
	SwitchID uint32
}

// SourceRouteHopLen is the serialized length of one stack entry.
const SourceRouteHopLen = 6

// DecodeSourceRoute parses the full header stack (entries up to and
// including the bottom-of-stack entry) and returns the remaining payload.
func DecodeSourceRoute(b []byte) ([]SourceRouteHop, []byte, error) {
	return decodeSourceRouteInto(nil, b)
}

// decodeSourceRouteInto is DecodeSourceRoute appending into a
// caller-owned slice (normally sliced to length 0), so steady-state
// parsing reuses its capacity.
func decodeSourceRouteInto(hops []SourceRouteHop, b []byte) ([]SourceRouteHop, []byte, error) {
	for {
		if len(b) < SourceRouteHopLen {
			return nil, nil, fmt.Errorf("source route: truncated stack after %d hops", len(hops))
		}
		v := binary.BigEndian.Uint16(b[0:2])
		h := SourceRouteHop{
			BOS:      v&0x8000 != 0,
			Port:     v & 0x7fff,
			SwitchID: binary.BigEndian.Uint32(b[2:6]),
		}
		hops = append(hops, h)
		b = b[SourceRouteHopLen:]
		if h.BOS {
			return hops, b, nil
		}
		if len(hops) > 64 {
			return nil, nil, fmt.Errorf("source route: stack exceeds 64 hops without bottom-of-stack")
		}
	}
}

// AppendSourceRoute serializes hops onto buf, forcing the bottom-of-stack
// bit on the final entry.
func AppendSourceRoute(buf []byte, hops []SourceRouteHop) []byte {
	for i, h := range hops {
		v := h.Port & 0x7fff
		if h.BOS || i == len(hops)-1 {
			v |= 0x8000
		}
		buf = binary.BigEndian.AppendUint16(buf, v)
		buf = binary.BigEndian.AppendUint32(buf, h.SwitchID)
	}
	return buf
}

// SourceRouteFromPorts builds a stack from a list of egress ports (with
// zero switch IDs, for callers that do not use path validation).
func SourceRouteFromPorts(ports ...uint16) []SourceRouteHop {
	hops := make([]SourceRouteHop, len(ports))
	for i, p := range ports {
		hops[i] = SourceRouteHop{Port: p, BOS: i == len(ports)-1}
	}
	return hops
}

// IP4 is a 32-bit IPv4 address in host byte order helpers.
type IP4 uint32

// IP4FromAddr converts a netip.Addr (must be IPv4) to IP4.
func IP4FromAddr(a netip.Addr) IP4 {
	b := a.As4()
	return IP4(binary.BigEndian.Uint32(b[:]))
}

// MustIP4 parses a dotted-quad string, panicking on error (for tests and
// topology fixtures).
func MustIP4(s string) IP4 {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		panic(fmt.Sprintf("dataplane: bad IPv4 address %q", s))
	}
	return IP4FromAddr(a)
}

func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// InPrefix reports whether ip falls inside prefix/bits.
func (ip IP4) InPrefix(prefix IP4, bits int) bool {
	if bits <= 0 {
		return true
	}
	if bits >= 32 {
		return ip == prefix
	}
	mask := ^IP4(0) << (32 - uint(bits))
	return ip&mask == prefix&mask
}
