package dataplane

import "encoding/binary"

// FlowKey is the canonical 5-tuple identifying a transport flow. It is
// the unit of affinity for RSS-style receive-side scaling: all packets
// of a flow — in both directions — must hash to the same value so that
// per-flow checker state stays on one shard.
type FlowKey struct {
	Src, Dst     IP4
	Proto        uint8
	Sport, Dport uint16
}

// FlowKeyOf extracts the 5-tuple from a decoded packet. Non-IPv4
// packets yield the zero key (they all land on one shard, like
// non-RSS-hashable traffic landing on queue 0 of a NIC).
func FlowKeyOf(d *Decoded) FlowKey {
	if !d.HasIPv4 {
		return FlowKey{}
	}
	k := FlowKey{Src: d.IPv4.Src, Dst: d.IPv4.Dst, Proto: d.IPv4.Protocol}
	switch {
	case d.HasUDP:
		k.Sport, k.Dport = d.UDP.SrcPort, d.UDP.DstPort
	case d.HasTCP:
		k.Sport, k.Dport = d.TCP.SrcPort, d.TCP.DstPort
	}
	return k
}

// rssKey is the symmetric Toeplitz key (0x6d5a repeating, Woo &
// Zhang's choice): its 16-bit period makes the hash invariant under
// (src,sport) <-> (dst,dport) exchange, so both directions of a flow —
// which the stateful-firewall checker correlates — land on one shard.
var rssKey = func() [40]byte {
	var k [40]byte
	for i := 0; i < len(k); i += 2 {
		k[i], k[i+1] = 0x6d, 0x5a
	}
	return k
}()

// RSSHash is the Toeplitz hash of the flow key over the standard RSS
// input layout (src, dst, sport, dport — plus the protocol byte, which
// hardware RSS folds into the queue-indirection table instead).
func (k FlowKey) RSSHash() uint32 {
	var in [13]byte
	binary.BigEndian.PutUint32(in[0:4], uint32(k.Src))
	binary.BigEndian.PutUint32(in[4:8], uint32(k.Dst))
	binary.BigEndian.PutUint16(in[8:10], k.Sport)
	binary.BigEndian.PutUint16(in[10:12], k.Dport)
	in[12] = k.Proto
	return toeplitz(in[:])
}

// toeplitz computes the Toeplitz hash of data under rssKey: for every
// set bit of the input, XOR in the 32-bit key window starting at that
// bit position.
func toeplitz(data []byte) uint32 {
	var h uint32
	w := binary.BigEndian.Uint32(rssKey[0:4])
	for i, b := range data {
		for bit := 0; bit < 8; bit++ {
			if b&(0x80>>uint(bit)) != 0 {
				h ^= w
			}
			next := rssKey[i+4] >> uint(7-bit) & 1
			w = w<<1 | uint32(next)
		}
	}
	return h
}
