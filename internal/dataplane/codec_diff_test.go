package dataplane

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// legacySerialize is the pre-AppendTo serializer, kept verbatim as the
// differential reference: inside-out build with one Append(nil) per
// layer and cascading copies. It mutates the receiver (length and
// EtherType fix-ups are written back), so callers pass a Clone.
func legacySerialize(d *Decoded) []byte {
	var inner []byte
	if d.HasInnerIPv4 {
		var l4 []byte
		switch {
		case d.HasInnerUDP:
			d.InnerUDP.Length = uint16(UDPLen + len(d.Payload))
			l4 = d.InnerUDP.Append(nil)
		case d.HasInnerTCP:
			l4 = d.InnerTCP.Append(nil)
		case d.HasInnerICMP:
			l4 = d.InnerICMP.Append(nil)
		}
		d.InnerIPv4.TotalLen = uint16(IPv4Len + len(l4) + len(d.Payload))
		inner = d.InnerIPv4.Append(nil)
		inner = append(inner, l4...)
		inner = append(inner, d.Payload...)
	}

	var l3 []byte
	if d.HasIPv4 {
		var l4 []byte
		switch {
		case d.HasGTPU:
			d.GTPU.Length = uint16(len(inner))
			g := d.GTPU.Append(nil)
			g = append(g, inner...)
			d.UDP.Length = uint16(UDPLen + len(g))
			l4 = d.UDP.Append(nil)
			l4 = append(l4, g...)
		case d.HasUDP:
			d.UDP.Length = uint16(UDPLen + len(d.Payload))
			l4 = d.UDP.Append(nil)
			l4 = append(l4, d.Payload...)
		case d.HasTCP:
			l4 = d.TCP.Append(nil)
			l4 = append(l4, d.Payload...)
		case d.HasICMP:
			l4 = d.ICMP.Append(nil)
			l4 = append(l4, d.Payload...)
		default:
			l4 = d.Payload
		}
		d.IPv4.TotalLen = uint16(IPv4Len + len(l4))
		l3 = d.IPv4.Append(nil)
		l3 = append(l3, l4...)
	} else {
		l3 = d.Payload
	}

	if d.HasSourceRoute {
		sr := AppendSourceRoute(nil, d.SourceRoute)
		l3 = append(sr, l3...)
	}

	innermostType := EtherTypeIPv4
	if d.HasSourceRoute {
		innermostType = EtherTypeSourceRoute
	} else if !d.HasIPv4 {
		innermostType = d.Eth.Type
		if d.HasHydra {
			innermostType = d.Hydra.OrigType
		}
		if d.HasVLAN {
			innermostType = d.VLAN.Type
		}
	}

	if d.HasVLAN {
		d.VLAN.Type = innermostType
		l3 = append(d.VLAN.Append(nil), l3...)
		innermostType = EtherTypeVLAN
	}
	if d.HasHydra {
		d.Hydra.OrigType = innermostType
		l3 = append(d.Hydra.Append(nil), l3...)
		innermostType = EtherTypeHydra
	}
	d.Eth.Type = innermostType
	return append(d.Eth.Append(nil), l3...)
}

// dirtyDecoded returns a Decoded full of stale state from a "previous
// packet" — every flag set, slices non-empty — so reuse tests prove
// ParseInto really resets everything.
func dirtyDecoded() *Decoded {
	d := buildUDPPacket([]byte("stale payload from the previous packet"))
	d.HasVLAN = true
	d.VLAN = VLAN{PCP: 7, VID: 4095}
	d.InsertHydra([]byte{0xde, 0xad, 0xbe, 0xef, 0x99})
	d.HasSourceRoute = true
	d.SourceRoute = SourceRouteFromPorts(9, 8, 7, 6)
	d.HasGTPU = true
	d.GTPU = GTPU{MsgType: GTPUGPDU, Length: 77, TEID: 0xffff}
	d.HasInnerIPv4 = true
	d.InnerIPv4 = IPv4{TTL: 9, Protocol: ProtoTCP, Src: 1, Dst: 2}
	d.HasInnerTCP = true
	d.InnerTCP = TCP{SrcPort: 5, DstPort: 6}
	d.HasICMP = true
	d.ICMP = ICMPEcho{Type: ICMPEchoRequest, ID: 3, Seq: 4}
	return d
}

// normalizedDecoded flattens the nil-vs-empty slice distinction so a
// fresh Parse (nil SourceRoute) compares equal to a ParseInto reuse
// (length-0 slice with retained capacity).
func normalizedDecoded(d *Decoded) Decoded {
	c := *d
	if len(c.SourceRoute) == 0 {
		c.SourceRoute = nil
	}
	if len(c.Hydra.Blob) == 0 {
		c.Hydra.Blob = nil
	}
	if len(c.Payload) == 0 {
		c.Payload = nil
	}
	return c
}

// checkCodecDifferential is the shared oracle for the table test and the
// fuzzer: on any input bytes,
//
//  1. ParseInto into a dirty reused Decoded agrees with fresh Parse —
//     same error, or semantically equal result;
//  2. AppendTo reproduces legacy Serialize byte-for-byte;
//  3. WireLen equals the serialized length without serializing.
func checkCodecDifferential(t *testing.T, data []byte) {
	t.Helper()
	fresh, freshErr := Parse(data)
	reused := dirtyDecoded()
	reusedErr := ParseInto(reused, data)
	if (freshErr == nil) != (reusedErr == nil) {
		t.Fatalf("Parse err %v but ParseInto err %v", freshErr, reusedErr)
	}
	if freshErr != nil {
		return
	}
	if !reflect.DeepEqual(normalizedDecoded(fresh), normalizedDecoded(reused)) {
		t.Fatalf("ParseInto into dirty Decoded diverged from fresh Parse\nfresh  %+v\nreused %+v", fresh, reused)
	}

	legacy := legacySerialize(fresh.Clone())
	got := fresh.AppendTo(nil)
	if !bytes.Equal(got, legacy) {
		t.Fatalf("AppendTo diverged from legacy Serialize\n got %x\nwant %x", got, legacy)
	}
	if n := fresh.WireLen(); n != len(legacy) {
		t.Fatalf("WireLen = %d, serialized length = %d", n, len(legacy))
	}

	// In-place rewrite: serializing over the input frame (same shape,
	// aliased blob/payload) must produce the same bytes too.
	frame := append([]byte(nil), data...)
	aliased := &Decoded{}
	if err := ParseInto(aliased, frame); err != nil {
		t.Fatalf("re-parse of own input: %v", err)
	}
	if aliased.WireLen() == len(frame) {
		inPlace := aliased.AppendTo(frame[:0])
		if !bytes.Equal(inPlace, legacySerialize(fresh.Clone())) {
			t.Fatalf("in-place AppendTo over the source frame diverged\n got %x\nwant %x", inPlace, legacy)
		}
	}
}

// TestCodecDifferential runs the differential oracle over every corpus
// wire shape and every malformed fragment.
func TestCodecDifferential(t *testing.T) {
	for _, tc := range roundTripCases() {
		t.Run(tc.name, func(t *testing.T) {
			checkCodecDifferential(t, tc.build().Serialize())
		})
	}
	for _, tc := range malformedCases() {
		t.Run("malformed-"+tc.name, func(t *testing.T) {
			checkCodecDifferential(t, tc.wire)
		})
	}
}

// TestAppendToDoesNotMutate pins the fix for the legacy hazard: Serialize
// used to write Length/TotalLen/EtherType fix-ups back into the
// receiver. AppendTo must leave the Decoded bit-identical.
func TestAppendToDoesNotMutate(t *testing.T) {
	for _, tc := range roundTripCases() {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(tc.build().Serialize())
			if err != nil {
				t.Fatal(err)
			}
			before := *p
			_ = p.AppendTo(nil)
			_ = p.WireLen()
			if !reflect.DeepEqual(before, *p) {
				t.Fatalf("AppendTo mutated the receiver\nbefore %+v\nafter  %+v", before, *p)
			}
		})
	}
}

// TestSerializeSharedDecodedRace serializes one shared *Decoded from
// several goroutines. Run under -race this proves the serializer is
// read-only; the byte comparison proves the outputs are stable.
func TestSerializeSharedDecodedRace(t *testing.T) {
	for _, tc := range roundTripCases() {
		p, err := Parse(tc.build().Serialize())
		if err != nil {
			t.Fatal(err)
		}
		want := p.Serialize()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 0, p.WireLen())
				for i := 0; i < 50; i++ {
					buf = p.AppendTo(buf[:0])
					if !bytes.Equal(buf, want) {
						t.Errorf("%s: concurrent AppendTo diverged", tc.name)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestCloneIndependence: mutating a clone's owned slices must not touch
// the original's, and vice versa.
func TestCloneIndependence(t *testing.T) {
	d := buildUDPPacket([]byte("payload"))
	d.InsertHydra([]byte{1, 2, 3})
	d.HasSourceRoute = true
	d.SourceRoute = SourceRouteFromPorts(1, 2)
	c := d.Clone()
	if !reflect.DeepEqual(normalizedDecoded(d), normalizedDecoded(c)) {
		t.Fatalf("clone differs from original")
	}
	c.Hydra.Blob[0] = 0xff
	c.Payload[0] = 0xff
	c.SourceRoute[0].Port = 99
	if d.Hydra.Blob[0] == 0xff || d.Payload[0] == 0xff || d.SourceRoute[0].Port == 99 {
		t.Fatal("clone shares storage with the original")
	}
}

func BenchmarkParseInto(b *testing.B) {
	d := buildUDPPacket([]byte("benchmark payload bytes"))
	d.HasVLAN = true
	d.VLAN = VLAN{VID: 42}
	d.InsertHydra(make([]byte, 24))
	wire := d.Serialize()
	var dec Decoded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParseInto(&dec, wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendTo(b *testing.B) {
	d := buildUDPPacket([]byte("benchmark payload bytes"))
	d.HasVLAN = true
	d.VLAN = VLAN{VID: 42}
	d.InsertHydra(make([]byte, 24))
	p, err := Parse(d.Serialize())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, p.WireLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.AppendTo(buf[:0])
	}
}
