package metrics

import "net"

func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
