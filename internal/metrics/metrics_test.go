package metrics

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden scrape")

func buildRegistry() *Registry {
	r := NewRegistry()
	frames := r.Counter("hydra_ingest_frames_total", "Frames read from the capture source.", nil)
	frames.Add(12345)
	for _, w := range []string{"0", "1"} {
		c := r.Counter("hydra_ingest_packets_sent_total", "Packets fanned out to engine workers.", Labels{"worker": w})
		c.Add(500)
		c.Inc()
	}
	r.Counter("hydra_ingest_drops_total", "Packets dropped instead of sent.", Labels{"reason": "backpressure", "worker": "0"}).Add(3)
	g := r.Gauge("hydra_ingest_pps", "Smoothed packets per second over the last tick.", nil)
	g.Set(350_000.5)
	r.GaugeFunc("hydra_ingest_queue_depth", "Batches queued per worker sender.", Labels{"worker": "0"}, func() float64 { return 4 })
	h := r.Histogram("hydra_worker_batch_seconds", "Wall time checking one received batch.", []float64{0.001, 0.01, 0.1}, nil)
	for _, v := range []float64{0.0004, 0.002, 0.002, 0.05, 2} {
		h.Observe(v)
	}
	return r
}

// TestScrapeGolden pins the full text-format rendering, scraped over
// HTTP like Prometheus would.
func TestScrapeGolden(t *testing.T) {
	srv := httptest.NewServer(buildRegistry().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "scrape.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("scrape drifted from golden (run with -update to rewrite):\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 10}, nil)
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`, // le is inclusive
		`h_bucket{le="10"} 3`,
		`h_bucket{le="+Inf"} 4`,
		`h_sum 106.5`,
		`h_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

// TestConcurrentUpdates exercises the lock-free update paths under the
// race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h", nil)
	g := r.Gauge("g", "h", nil)
	h := r.Histogram("hist", "h", nil, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "h", nil).Inc()
	addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("scrape = %q", body)
	}
}
