// Package metrics is a dependency-free Prometheus text-format exporter
// for the verification fleet: counters, gauges, and cumulative
// histograms registered on a Registry and rendered at /metrics in the
// exposition format (text/plain; version=0.0.4). It deliberately
// implements only what the fleet daemons need — constant labels per
// series, lock-free hot-path updates, deterministic rendering — so the
// scrape output is stable enough to golden-test.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant labels attached to one series at registration.
type Labels map[string]string

// DefBuckets is the default latency histogram layout: exponential from
// 1µs to ~10s, the span between a batch dispatch and a stalled peer.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Registry holds registered series and renders them.
type Registry struct {
	mu     sync.Mutex
	series []*series
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

type series struct {
	name   string
	help   string
	kind   kind
	labels string // pre-rendered {k="v",...} or ""

	c *Counter
	g *Gauge
	h *Histogram
	// fn, when set, is a gauge sampled at scrape time.
	fn func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(s *series) {
	r.mu.Lock()
	r.series = append(r.series, s)
	r.mu.Unlock()
}

// Counter is a monotonically increasing series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(&series{name: name, help: help, kind: kindCounter, labels: renderLabels(labels), c: c})
	return c
}

// Gauge is a series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(&series{name: name, help: help, kind: kindGauge, labels: renderLabels(labels), g: g})
	return g
}

// GaugeFunc registers a gauge whose value is sampled at scrape time —
// the idiom for queue depths and other state owned elsewhere.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(&series{name: name, help: help, kind: kindGauge, labels: renderLabels(labels), fn: fn})
}

// Histogram is a cumulative-bucket histogram (Prometheus layout:
// per-bucket `le` counts plus _sum and _count).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64   // float64 bits, CAS-updated
	n      atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count reads the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Histogram registers a histogram series with the given bucket upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	h := &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
	r.add(&series{name: name, help: help, kind: kindHistogram, labels: renderLabels(labels), h: h})
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the text
// exposition format. Series are grouped by name (one HELP/TYPE block
// per name) and ordered by name, then label string — deterministic for
// a fixed registration set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ss := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].name != ss[j].name {
			return ss[i].name < ss[j].name
		}
		return ss[i].labels < ss[j].labels
	})
	var b strings.Builder
	prev := ""
	for _, s := range ss {
		if s.name != prev {
			typ := "counter"
			switch s.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", s.name, s.help, s.name, typ)
			prev = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.c.Value())
		case kindGauge:
			v := 0.0
			if s.fn != nil {
				v = s.fn()
			} else {
				v = s.g.Value()
			}
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(v))
		case kindHistogram:
			writeHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, s *series) {
	h := s.h
	// Render bucket labels by splicing le into the constant label set.
	open := "{"
	if s.labels != "" {
		open = s.labels[:len(s.labels)-1] + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", s.name, open, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", s.name, open, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, s.labels, h.n.Load())
}

// Handler serves the registry at any path — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Serve starts an HTTP server for the registry on addr (host:port,
// :0 for ephemeral) and returns the bound address. The server runs
// until the process exits; errors after bind are dropped (metrics are
// best-effort observability, never a reason to kill a daemon).
func (r *Registry) Serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := &http.Server{Handler: mux}
	ln, err := newListener(addr)
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
