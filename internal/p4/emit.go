// Package p4 renders compiled pipeline IR as tna-style P4-16 source, the
// textual backend of the Indus compiler (§4.2, Figure 6). The emitted
// program has the same structure the paper describes: a generated
// telemetry header and parser, one control block per Indus block, one
// match-action table per dictionary lookup site, registers for sensors,
// and the strip_telemetry step at the last hop.
//
// The pipeline interpreter executes the same IR this package prints, so
// simulation results and emitted code cannot drift apart.
package p4

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
)

// Emitter renders one program.
type Emitter struct {
	prog *pipeline.Program
	b    strings.Builder
	ind  int

	// siteNames[block] holds Figure 6-style per-site table instance
	// names (tenants_in_port, tenants_eg_port), one per ApplyOp in
	// WalkOps order, for each of the three blocks.
	siteNames map[int][]string
	seen      map[string]bool
	siteCount map[string]int
}

// Emit renders the program as P4-16 source text.
func Emit(prog *pipeline.Program) string {
	e := &Emitter{prog: prog, siteNames: map[int][]string{}, seen: map[string]bool{}, siteCount: map[string]int{}}
	e.collectApplySites()
	e.header()
	e.headers()
	e.parser()
	e.stripInject()
	e.controls()
	e.pipelineDecl()
	return e.b.String()
}

// LineCount returns the non-blank, non-comment line count of src, the
// measure used for Table 1's "P4 Output" column.
func LineCount(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

func (e *Emitter) pf(format string, args ...any) {
	e.b.WriteString(strings.Repeat("    ", e.ind))
	fmt.Fprintf(&e.b, format, args...)
	e.b.WriteByte('\n')
}

func (e *Emitter) blank() { e.b.WriteByte('\n') }

func (e *Emitter) open(format string, args ...any) {
	e.pf(format+" {", args...)
	e.ind++
}

func (e *Emitter) close(suffix string) {
	e.ind--
	e.pf("}%s", suffix)
}

// ---------------------------------------------------------------------------
// Site naming

// collectApplySites walks all blocks and assigns each ApplyOp of a table
// a distinct instance name, hinted by its first key expression when that
// is a simple field (mirroring Figure 6's tenants_in_port).
func (e *Emitter) collectApplySites() {
	// Reverse the header bindings so a key like
	// "standard_metadata.ingress_port" is hinted by its Indus name
	// ("in_port"), reproducing Figure 6's tenants_in_port.
	indusName := map[string]string{}
	for name, path := range e.prog.HeaderBindings {
		indusName[path] = name
	}
	walk := func(block int, ops []pipeline.Op) {
		pipeline.WalkOps(ops, func(op pipeline.Op) {
			ap, ok := op.(pipeline.ApplyOp)
			if !ok {
				return
			}
			hint := ""
			if len(ap.Keys) > 0 {
				if f, ok := ap.Keys[0].(pipeline.Field); ok {
					if name, ok := indusName[string(f.Ref)]; ok {
						hint = sanitize(name)
					} else {
						parts := strings.Split(string(f.Ref), ".")
						hint = sanitize(parts[len(parts)-1])
					}
				}
			}
			name := ap.Table
			if hint != "" {
				name = ap.Table + "_" + hint
			}
			if e.seen[name] {
				e.siteCount[ap.Table]++
				name = fmt.Sprintf("%s_%d", name, e.siteCount[ap.Table])
			}
			e.seen[name] = true
			e.siteNames[block] = append(e.siteNames[block], name)
		})
	}
	walk(0, e.prog.Init)
	walk(1, e.prog.Telemetry)
	walk(2, e.prog.Checker)
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// fieldName rewrites an IR FieldRef into the emitted P4 name.
func fieldName(ref pipeline.FieldRef) string {
	s := string(ref)
	switch {
	case strings.HasPrefix(s, "local."):
		return "hydra_metadata." + s[len("local."):]
	case strings.HasPrefix(s, "ctrl."):
		return "hydra_metadata.ctrl_" + sanitize(s[len("ctrl."):])
	case strings.HasSuffix(s, ".$count"):
		return strings.TrimSuffix(s, ".$count") + "_count"
	case strings.HasSuffix(s, ".$hit"):
		return "hydra_metadata." + sanitize(strings.TrimSuffix(s, ".$hit")) + "_hit"
	}
	// Array slots keep header-stack syntax: base.N -> base[N].value.
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		if idx := s[i+1:]; isDigits(idx) {
			return fmt.Sprintf("%s[%s].value", s[:i], idx)
		}
	}
	return s
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// exprString renders an IR expression in P4 syntax.
func exprString(x pipeline.Expr) string {
	switch x := x.(type) {
	case pipeline.Field:
		return fieldName(x.Ref)
	case pipeline.Const:
		return fmt.Sprintf("%d", x.Val.V)
	case pipeline.Unary:
		inner := exprString(x.X)
		switch x.Op {
		case pipeline.OpAbs:
			// P4 has no abs(); emit the two's-complement idiom.
			return fmt.Sprintf("(((int<32>)%s < 0) ? (-%s) : %s)", inner, inner, inner)
		case pipeline.OpNot:
			return "!(" + inner + ")"
		case pipeline.OpBNot:
			return "~(" + inner + ")"
		case pipeline.OpNeg:
			return "-(" + inner + ")"
		}
	case pipeline.Bin:
		switch x.Op {
		case pipeline.OpMax:
			a, b := exprString(x.X), exprString(x.Y)
			return fmt.Sprintf("((%s >= %s) ? %s : %s)", a, b, a, b)
		case pipeline.OpMin:
			a, b := exprString(x.X), exprString(x.Y)
			return fmt.Sprintf("((%s <= %s) ? %s : %s)", a, b, a, b)
		}
		return fmt.Sprintf("(%s %s %s)", exprString(x.X), x.Op, exprString(x.Y))
	case pipeline.Mux:
		return fmt.Sprintf("(%s ? %s : %s)", exprString(x.Cond), exprString(x.X), exprString(x.Y))
	}
	panic(fmt.Sprintf("p4: unknown expression %T", x))
}

// ---------------------------------------------------------------------------
// Sections

func (e *Emitter) header() {
	e.pf("// Hydra checker %q — generated by indusc; do not edit.", e.prog.Name)
	e.pf("#include <core.p4>")
	e.pf("#include <tna.p4>")
	e.blank()
	e.pf("const bit<16> ETHERTYPE_HYDRA = 0x88B5;")
	e.blank()
	e.open("header ethernet_t")
	e.pf("bit<48> dst_addr;")
	e.pf("bit<48> src_addr;")
	e.pf("bit<16> ether_type;")
	e.close("")
	e.blank()
	e.open("struct headers_t")
	e.pf("ethernet_t ethernet;")
	e.close("")
	e.blank()
}

func (e *Emitter) headers() {
	e.pf("// Hydra Headers")
	e.open("header hydra_header_t")
	e.pf("eth_type2_t hydra_eth_type;")
	e.pf("bit<8> hop_count;")
	for _, f := range e.prog.Tele {
		name := strings.TrimPrefix(f.Name, "hydra_header.")
		if f.IsArray {
			e.pf("bit<8> %s_count;", name)
			continue
		}
		e.pf("bit<%d> %s;", f.Width, name)
	}
	e.close("")
	e.blank()

	for _, f := range e.prog.Tele {
		if !f.IsArray {
			continue
		}
		name := strings.TrimPrefix(f.Name, "hydra_header.")
		e.open("header %s_t", name)
		e.pf("bit<%d> value;", f.Width)
		e.close("")
		e.blank()
	}

	e.open("struct hydra_metadata_t")
	e.pf("bool reject0;")
	e.pf("bool last_hop;")
	e.pf("bool first_hop;")
	e.pf("bit<32> switch_id;")
	for _, t := range e.prog.Tables {
		for i, out := range t.Outputs {
			e.pf("bit<%d> %s;", t.OutputWidths[i], strings.TrimPrefix(fieldName(out), "hydra_metadata."))
		}
		e.pf("bool %s_hit;", sanitize(t.Name))
	}
	e.close("")
	e.blank()
}

func (e *Emitter) parser() {
	e.pf("// Generated telemetry parser")
	e.open("parser HydraParser(packet_in pkt, out headers_t hdr, out hydra_header_t hydra_header)")
	e.open("state start")
	e.pf("pkt.extract(hdr.ethernet);")
	e.open("transition select(hdr.ethernet.ether_type)")
	e.pf("ETHERTYPE_HYDRA : parse_hydra;")
	e.pf("default : accept;")
	e.close("")
	e.close("")
	e.open("state parse_hydra")
	e.pf("pkt.extract(hydra_header);")
	for _, f := range e.prog.Tele {
		if !f.IsArray {
			continue
		}
		name := strings.TrimPrefix(f.Name, "hydra_header.")
		for i := 0; i < f.Cap; i++ {
			e.pf("pkt.extract(hydra_header.%s[%d]);", name, i)
		}
	}
	e.pf("transition accept;")
	e.close("")
	e.close("")
	e.blank()

	e.pf("// Generated telemetry deparser")
	e.open("control HydraDeparser(packet_out pkt, in headers_t hdr, in hydra_header_t hydra_header)")
	e.open("apply")
	e.pf("pkt.emit(hdr.ethernet);")
	e.pf("pkt.emit(hydra_header);")
	for _, f := range e.prog.Tele {
		if !f.IsArray {
			continue
		}
		name := strings.TrimPrefix(f.Name, "hydra_header.")
		for i := 0; i < f.Cap; i++ {
			e.pf("pkt.emit(hydra_header.%s[%d]);", name, i)
		}
	}
	e.close("")
	e.close("")
	e.blank()
}

// stripInject emits the edge-port tables of §4.1: injecting the Hydra
// header at first-hop ingress ports and stripping it at last-hop egress
// ports, so end hosts never see the extra headers.
func (e *Emitter) stripInject() {
	e.pf("// First-hop injection / last-hop strip (§4.1)")
	e.open("control HydraEdge(inout headers_t hdr, inout hydra_header_t hydra_header, in bit<9> eg_port)")
	e.open("action inject_telemetry()")
	e.pf("hydra_header.setValid();")
	e.pf("hydra_header.hydra_eth_type = hdr.ethernet.ether_type;")
	e.pf("hdr.ethernet.ether_type = ETHERTYPE_HYDRA;")
	e.close("")
	e.open("action do_strip_telemetry()")
	e.pf("hdr.ethernet.ether_type = hydra_header.hydra_eth_type;")
	e.pf("hydra_header.setInvalid();")
	for _, f := range e.prog.Tele {
		if !f.IsArray {
			continue
		}
		name := strings.TrimPrefix(f.Name, "hydra_header.")
		e.pf("hydra_header.%s.pop_front(%d);", name, f.Cap)
	}
	e.close("")
	e.open("table edge_ports")
	e.open("key =")
	e.pf("eg_port : exact;")
	e.close("")
	e.pf("actions = { inject_telemetry; do_strip_telemetry; NoAction; }")
	e.pf("const default_action = NoAction();")
	e.close("")
	e.open("apply")
	e.pf("edge_ports.apply();")
	e.close("")
	e.close("")
	e.blank()
}

func (e *Emitter) controls() {
	e.emitControl(0, "HydraInit", "// Generated Init Code", e.prog.Init, false)
	e.emitControl(1, "HydraTelemetry", "// Generated Telemetry Code", e.prog.Telemetry, false)
	e.emitControl(2, "HydraChecker", "// Generated Checker Code", e.prog.Checker, true)
}

func (e *Emitter) emitControl(block int, name, comment string, ops []pipeline.Op, strip bool) {
	e.pf(comment)
	e.open("control %s(inout hydra_header_t hydra_header, inout hydra_metadata_t hydra_metadata)", name)

	// Registers referenced by this control.
	regs := map[string]bool{}
	pipeline.WalkOps(ops, func(op pipeline.Op) {
		switch op := op.(type) {
		case pipeline.RegReadOp:
			regs[op.Reg] = true
		case pipeline.RegWriteOp:
			regs[op.Reg] = true
		}
	})
	for _, r := range e.prog.Registers {
		if regs[r.Name] {
			e.pf("Register<bit<%d>, bit<32>>(%d) %s;", r.Width, r.Size, r.Name)
		}
	}

	// Table declarations for the applies inside this control, in site
	// order.
	site := 0
	pipeline.WalkOps(ops, func(op pipeline.Op) {
		ap, ok := op.(pipeline.ApplyOp)
		if !ok {
			return
		}
		e.emitTable(e.siteNames[block][site], ap)
		site++
	})

	e.open("apply")
	site = 0
	e.emitOps(ops, block, &site)
	if strip {
		e.pf("strip_telemetry(); // strip telemetry at last hop")
	}
	e.close("")
	e.close("")
	e.blank()
}

func (e *Emitter) emitTable(inst string, ap pipeline.ApplyOp) {
	spec := e.tableSpec(ap.Table)
	action := "set_" + sanitize(inst)
	var params, body []string
	for i, out := range spec.Outputs {
		params = append(params, fmt.Sprintf("bit<%d> v%d", spec.OutputWidths[i], i))
		body = append(body, fmt.Sprintf("%s = v%d;", fieldName(out), i))
	}
	e.open("action %s(%s)", action, strings.Join(params, ", "))
	for _, line := range body {
		e.pf("%s", line)
	}
	e.close("")
	e.open("table %s", inst)
	if len(ap.Keys) > 0 {
		e.open("key =")
		for i, k := range ap.Keys {
			kind := "exact"
			if i < len(spec.Keys) {
				kind = spec.Keys[i].Kind.String()
			}
			e.pf("%s : %s;", exprString(k), kind)
		}
		e.close("")
	}
	e.pf("actions = { %s; NoAction; }", action)
	e.pf("const default_action = NoAction();")
	e.close("")
}

func (e *Emitter) tableSpec(name string) pipeline.TableSpec {
	for _, t := range e.prog.Tables {
		if t.Name == name {
			return t
		}
	}
	panic("p4: unknown table " + name)
}

func (e *Emitter) emitOps(ops []pipeline.Op, block int, site *int) {
	for _, op := range ops {
		switch op := op.(type) {
		case pipeline.AssignOp:
			e.pf("%s = %s;", fieldName(op.Dst), exprString(op.Src))

		case pipeline.ApplyOp:
			e.pf("%s.apply();", e.siteNames[block][*site])
			*site++

		case pipeline.RegReadOp:
			e.pf("%s = %s.read(%s);", fieldName(op.Dst), op.Reg, exprString(op.Index))

		case pipeline.RegWriteOp:
			e.pf("%s.write(%s, %s);", op.Reg, exprString(op.Index), exprString(op.Src))

		case pipeline.IfOp:
			e.open("if (%s)", exprString(op.Cond))
			e.emitOps(op.Then, block, site)
			if len(op.Else) > 0 {
				e.ind--
				e.pf("} else {")
				e.ind++
				e.emitOps(op.Else, block, site)
			}
			e.close("")

		case pipeline.PushOp:
			cnt := fieldName(pipeline.ArrayCount(op.Base))
			e.open("if (%s < %d)", cnt, op.Cap)
			e.emitSlotSwitch(op.Base, op.Cap, cnt, exprString(op.Src))
			e.pf("%s = %s + 1;", cnt, cnt)
			e.ind--
			e.pf("} else {")
			e.ind++
			for i := 0; i+1 < op.Cap; i++ {
				e.pf("%s = %s;",
					fieldName(pipeline.ArraySlot(op.Base, i)),
					fieldName(pipeline.ArraySlot(op.Base, i+1)))
			}
			e.pf("%s = %s;", fieldName(pipeline.ArraySlot(op.Base, op.Cap-1)), exprString(op.Src))
			e.close("")

		case pipeline.SetSlotOp:
			idx := exprString(op.Index)
			for i := 0; i < op.Cap; i++ {
				e.open("if (%s == %d)", idx, i)
				e.pf("%s = %s;", fieldName(pipeline.ArraySlot(op.Base, i)), exprString(op.Src))
				e.close("")
			}
			cnt := fieldName(pipeline.ArrayCount(op.Base))
			e.open("if (%s >= %s)", idx, cnt)
			e.pf("%s = (bit<8>)%s + 1;", cnt, idx)
			e.close("")

		case pipeline.ReportOp:
			args := make([]string, len(op.Args))
			for i, a := range op.Args {
				args[i] = exprString(a)
			}
			e.pf("hydra_report.emit({%s});", strings.Join(args, ", "))

		default:
			panic(fmt.Sprintf("p4: unknown op %T", op))
		}
	}
}

// emitSlotSwitch writes src into slot `cnt` via an unrolled if chain
// (header stacks cannot be indexed by a runtime value on tna).
func (e *Emitter) emitSlotSwitch(base string, capacity int, cnt, src string) {
	for i := 0; i < capacity; i++ {
		e.open("if (%s == %d)", cnt, i)
		e.pf("%s = %s;", fieldName(pipeline.ArraySlot(base, i)), src)
		e.close("")
	}
}

func (e *Emitter) pipelineDecl() {
	e.pf("// Linking: init at first-hop ingress, telemetry at every egress,")
	e.pf("// checker at last-hop egress (see §4.2).")
	e.pf("Pipeline(HydraParser(), HydraInit(), HydraTelemetry(), HydraChecker(), HydraEdge(), HydraDeparser()) main;")
}
