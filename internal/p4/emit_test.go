package p4

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
)

func emitCorpus(t *testing.T, key string) string {
	t.Helper()
	info := checkers.MustParse(key)
	prog, err := compiler.Compile(info, compiler.Options{Name: key})
	if err != nil {
		t.Fatalf("compile %s: %v", key, err)
	}
	return Emit(prog)
}

// TestFigure6MultiTenancy checks the generated multi-tenancy code for
// the structural elements Figure 6 of the paper shows: the telemetry
// header with a tenant field, a reject flag in metadata, per-lookup-site
// tables named after their key (tenants_in_port / tenants_eg_port), the
// mismatch check, and the last-hop strip.
func TestFigure6MultiTenancy(t *testing.T) {
	src := emitCorpus(t, "multi-tenancy")

	for _, want := range []string{
		"header hydra_header_t",
		"eth_type2_t hydra_eth_type;",
		"bit<8> tenant;",
		"struct hydra_metadata_t",
		"bool reject0;",
		"// Generated Init Code",
		"tenants_in_port.apply();",
		"hydra_header.tenant = hydra_metadata.",
		"// Generated Checker Code",
		"tenants_eg_port.apply();",
		"hydra_metadata.reject0 = 1;",
		"strip_telemetry(); // strip telemetry at last hop",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing %q\n----\n%s", want, src)
		}
	}
	// The two lookup sites must be distinct table instances.
	if strings.Count(src, "table tenants_in_port") != 1 || strings.Count(src, "table tenants_eg_port") != 1 {
		t.Errorf("per-site tables not generated:\n%s", src)
	}
}

func TestEmitCorpusStructure(t *testing.T) {
	for _, p := range checkers.All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			src := emitCorpus(t, p.Key)
			for _, want := range []string{
				"header hydra_header_t",
				"control HydraInit",
				"control HydraTelemetry",
				"control HydraChecker",
				"strip_telemetry();",
				"Pipeline(HydraParser(), HydraInit(), HydraTelemetry(), HydraChecker(), HydraEdge(), HydraDeparser()) main;",
				"control HydraEdge",
				"control HydraDeparser",
				"inject_telemetry",
			} {
				if !strings.Contains(src, want) {
					t.Errorf("%s: missing %q", p.Key, want)
				}
			}
			// Balanced braces.
			if strings.Count(src, "{") != strings.Count(src, "}") {
				t.Errorf("%s: unbalanced braces", p.Key)
			}
		})
	}
}

// TestP4LoCNearPaper checks the Table 1 claim that generated P4 is
// roughly an order of magnitude larger than the Indus source; we accept
// a factor-2 band around the paper's reported line counts.
func TestP4LoCNearPaper(t *testing.T) {
	for _, p := range checkers.All {
		if p.PaperP4LoC == 0 {
			continue
		}
		src := emitCorpus(t, p.Key)
		got := LineCount(src)
		lo, hi := p.PaperP4LoC/2, p.PaperP4LoC*2
		if got < lo || got > hi {
			t.Errorf("%s: generated P4 LoC %d far from paper's %d (allowed %d..%d)", p.Key, got, p.PaperP4LoC, lo, hi)
		}
		// The conciseness claim: Indus is much smaller than the P4.
		if got < p.IndusLoC() {
			t.Errorf("%s: P4 output (%d) smaller than Indus source (%d)?", p.Key, got, p.IndusLoC())
		}
	}
}

func TestRegistersEmitted(t *testing.T) {
	src := emitCorpus(t, "load-balance")
	for _, want := range []string{
		"Register<bit<32>, bit<32>>(1) left_load;",
		"Register<bit<32>, bit<32>>(1) right_load;",
		".read(",
		".write(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("load-balance: missing %q", want)
		}
	}
}

func TestHeaderStacksEmitted(t *testing.T) {
	src := emitCorpus(t, "loop-freedom")
	for _, want := range []string{
		"header path_t",
		"bit<8> path_count;",
		"hydra_header.path[0].value",
		"hydra_header.path[3].value",
		"hydra_report.emit(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("loop-freedom: missing %q\n%s", want, src)
		}
	}
}

func TestLineCount(t *testing.T) {
	src := "// comment\n\ncode();\n{\n}\n  // indented comment\nx = 1;\n"
	if got := LineCount(src); got != 4 {
		t.Fatalf("LineCount = %d, want 4", got)
	}
}

// TestGoldenFiles pins the emitted P4 of two corpus programs byte for
// byte, so unintended emitter changes surface in review. Regenerate
// with: go test ./internal/p4 -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenFiles(t *testing.T) {
	for _, key := range []string{"multi-tenancy", "valley-free"} {
		key := key
		t.Run(key, func(t *testing.T) {
			got := emitCorpus(t, key)
			path := filepath.Join("testdata", key+".golden.p4")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("emitted P4 for %s differs from golden file (run with -update to refresh)", key)
			}
		})
	}
}
