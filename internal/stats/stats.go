// Package stats provides the statistics the §6.2 evaluation uses: sample
// summaries, empirical CDFs (Figure 12b), and the t-test the paper runs
// to show there is no significant latency difference between the
// baseline and the all-checkers configuration (it cites Student's 1908
// paper; we implement Welch's unequal-variance form, the safe default).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // sample variance (n-1 denominator)
	Min, Max float64
}

// Summarize computes the sample summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// Stddev returns the sample standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// Percentile returns the p-th percentile (0..100) by linear
// interpolation on the sorted sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical distribution function of the sample, one
// point per observation (Figure 12b's curves).
func CDF(xs []float64) []CDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, x := range sorted {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// TTestResult is the outcome of a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// Significant reports whether the difference is significant at level
// alpha (e.g. 0.05).
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

func (r TTestResult) String() string {
	return fmt.Sprintf("t=%.4f df=%.1f p=%.4f", r.T, r.DF, r.P)
}

// WelchTTest runs the two-sided unequal-variance t-test on two samples.
func WelchTTest(a, b []float64) (TTestResult, error) {
	sa, sb := Summarize(a), Summarize(b)
	if sa.N < 2 || sb.N < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs at least 2 observations per sample (have %d, %d)", sa.N, sb.N)
	}
	va := sa.Variance / float64(sa.N)
	vb := sb.Variance / float64(sb.N)
	if va+vb == 0 {
		// Identical constant samples: no difference at all.
		return TTestResult{T: 0, DF: float64(sa.N + sb.N - 2), P: 1}, nil
	}
	t := (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function:
// P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2.
func studentTCDFUpper(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
