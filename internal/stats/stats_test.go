package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	if !almost(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("len")
	}
	if pts[0].X != 1 || !almost(pts[0].P, 1.0/3, 1e-12) {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Fatalf("last point %+v", pts[2])
	}
}

// TestRegIncBetaKnownValues checks I_x(a,b) against independently known
// values: I_x(1,1) = x, I_x(2,1)=x², and symmetry I_x(a,b)=1-I_{1-x}(b,a).
func TestRegIncBetaKnownValues(t *testing.T) {
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
		if got := regIncBeta(2, 1, x); !almost(got, x*x, 1e-10) {
			t.Errorf("I_%v(2,1) = %v, want %v", x, got, x*x)
		}
	}
	f := func(a8, b8, x8 uint8) bool {
		a := 0.5 + float64(a8%40)/4
		b := 0.5 + float64(b8%40)/4
		x := (float64(x8) + 0.5) / 256
		return almost(regIncBeta(a, b, x), 1-regIncBeta(b, a, 1-x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStudentTKnownQuantiles pins the t distribution against standard
// table values: P(T>t) for known critical points.
func TestStudentTKnownQuantiles(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{2.776, 4, 0.025},  // t_{0.975,4}
		{2.228, 10, 0.025}, // t_{0.975,10}
		{1.812, 10, 0.05},  // t_{0.95,10}
		{1.96, 1e6, 0.025}, // normal limit
		{0, 10, 0.5},
	}
	for _, c := range cases {
		if got := studentTCDFUpper(c.t, c.df); !almost(got, c.want, 2e-3) {
			t.Errorf("P(T>%v; df=%v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestWelchTTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.01) {
		t.Fatalf("same-distribution samples flagged significant: %v", r)
	}
}

func TestWelchTTestDifferentMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.0
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Fatalf("shifted samples not flagged: %v", r)
	}
}

func TestWelchTTestKnownExample(t *testing.T) {
	// Classic Welch example (e.g. Wikipedia's A1/B1 variant): two small
	// samples with clearly different means.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.5}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently (same data, Welch formula):
	// t = -2.8586, df = 27.890, p = 0.0080.
	if !almost(r.T, -2.8586, 0.001) {
		t.Errorf("t = %v, want ≈ -2.8586", r.T)
	}
	if !almost(r.DF, 27.890, 0.01) {
		t.Errorf("df = %v, want ≈ 27.890", r.DF)
	}
	if !almost(r.P, 0.00796, 0.0005) {
		t.Errorf("p = %v, want ≈ 0.00796", r.P)
	}
}

func TestWelchTTestEdgeCases(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("tiny sample must error")
	}
	r, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 {
		t.Fatalf("identical constant samples: p = %v, want 1", r.P)
	}
}
