package difftest

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/checkers"
	"repro/internal/indus/ast"
)

// randomConfig draws values for a program's control state and header
// bindings from shared per-width pools, so randomly installed dict keys
// and randomly bound header values actually collide and both the hit
// and miss paths of every lookup get exercised.
type randomConfig struct {
	rng   *rand.Rand
	pools map[int][]uint64
}

func newRandomConfig(rng *rand.Rand) *randomConfig {
	return &randomConfig{rng: rng, pools: map[int][]uint64{}}
}

func (c *randomConfig) pool(w int) []uint64 {
	if p, ok := c.pools[w]; ok {
		return p
	}
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<uint(w) - 1
	}
	p := []uint64{0, 1 & mask}
	for i := 0; i < 4; i++ {
		p = append(p, uint64(c.rng.Intn(8))&mask)
	}
	for i := 0; i < 3; i++ {
		p = append(p, c.rng.Uint64()&mask)
	}
	c.pools[w] = p
	return p
}

func (c *randomConfig) value(w int) uint64 {
	p := c.pool(w)
	return p[c.rng.Intn(len(p))]
}

func widthOf(t ast.Type) int {
	switch t := t.(type) {
	case ast.BitType:
		return t.Width
	case ast.BoolType:
		return 1
	}
	return 0
}

// keyWidths flattens a dict/set key type into scalar widths.
func keyWidths(t ast.Type) []int {
	if tt, ok := t.(ast.TupleType); ok {
		ws := make([]int, len(tt.Elems))
		for i, et := range tt.Elems {
			ws[i] = widthOf(et)
		}
		return ws
	}
	return []int{widthOf(t)}
}

// installRandomState installs random control-plane state — scalars,
// dict entries, set members — on every switch, mirrored across both
// backends, driven purely by the program's declarations.
func installRandomState(h *Harness, cfg *randomConfig, switches uint32) {
	for _, d := range h.Info().Prog.DeclsOfKind(ast.KindControl) {
		for id := uint32(1); id <= switches; id++ {
			switch tt := d.Type.(type) {
			case ast.DictType:
				kws := keyWidths(tt.Key)
				vw := widthOf(tt.Val)
				for i := 0; i < 1+cfg.rng.Intn(4); i++ {
					key := make([]uint64, len(kws))
					for j, w := range kws {
						key[j] = cfg.value(w)
					}
					h.InstallDict(id, d.Name, key, cfg.value(vw))
				}
			case ast.SetType:
				kws := keyWidths(tt.Elem)
				for i := 0; i < 1+cfg.rng.Intn(4); i++ {
					key := make([]uint64, len(kws))
					for j, w := range kws {
						key[j] = cfg.value(w)
					}
					h.InstallSet(id, d.Name, key...)
				}
			default:
				h.InstallScalar(id, d.Name, cfg.value(widthOf(d.Type)))
			}
		}
	}
}

// TestConformanceCorpus is the differential conformance suite: every
// corpus checker runs over randomized hop traces — random control
// state, random header bindings, random paths, repeated traces against
// persistent sensor state — through both the reference interpreter and
// the compiled pipeline, and the harness fails on any divergence in
// verdict or report payloads.
func TestConformanceCorpus(t *testing.T) {
	const switches = 4
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for _, p := range checkers.All {
		p := p
		t.Run(p.Key, func(t *testing.T) {
			t.Parallel()
			base := fnv.New64a()
			base.Write([]byte(p.Key))
			for s := 0; s < seeds; s++ {
				rng := rand.New(rand.NewSource(int64(base.Sum64()) + int64(s)*7919))
				h := CorpusHarness(t, p.Key)
				cfg := newRandomConfig(rng)
				installRandomState(h, cfg, switches)
				headerDecls := h.Info().Prog.DeclsOfKind(ast.KindHeader)
				for trace := 0; trace < 3; trace++ {
					n := 1 + rng.Intn(5)
					hops := make([]HopSpec, n)
					for i := range hops {
						hdrs := make(map[string]uint64, len(headerDecls))
						for _, d := range headerDecls {
							hdrs[d.Name] = cfg.value(widthOf(d.Type))
						}
						hops[i] = HopSpec{
							SW:      uint32(1 + rng.Intn(switches)),
							Headers: hdrs,
							PktLen:  uint32(64 + rng.Intn(1400)),
						}
					}
					h.RunBoth(hops)
				}
			}
		})
	}
}

// TestConformanceCoversCorpus pins the suite's coverage: the corpus
// must contain the 11 Table 1 checkers (plus the §5.1 valley-free case
// study), and a conformance subtest runs for each.
func TestConformanceCoversCorpus(t *testing.T) {
	if len(checkers.All) < 11 {
		t.Fatalf("corpus has %d checkers, expected at least the 11 of Table 1", len(checkers.All))
	}
	seen := map[string]bool{}
	for _, p := range checkers.All {
		if seen[p.Key] {
			t.Fatalf("duplicate corpus key %s", p.Key)
		}
		seen[p.Key] = true
	}
}
