package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/symexec"
)

// FrontierFile is one checker's committed violation frontier: the
// verdict-flipping trace pairs the symbolic explorer found, pinned with
// the verdicts all three backends must reproduce.
type FrontierFile struct {
	Checker string                 `json:"checker"`
	Pairs   []symexec.FrontierPair `json:"pairs"`
}

// FrontierSeedDir is the in-repo frontier corpus location, relative to
// this package.
const FrontierSeedDir = "testdata/frontier"

// LoadFrontierDir reads every frontier seed file in dir, sorted by
// checker key.
func LoadFrontierDir(dir string) ([]FrontierFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []FrontierFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var f FrontierFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("frontier seed %s: %w", e.Name(), err)
		}
		if f.Checker == "" || len(f.Pairs) == 0 {
			return nil, fmt.Errorf("frontier seed %s: empty", e.Name())
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Checker < out[j].Checker })
	return out, nil
}

// WriteFrontierFile writes one checker's frontier seeds into dir as
// <checker>.json (pretty-printed, trailing newline, stable ordering —
// the file is committed).
func WriteFrontierFile(dir string, f FrontierFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, f.Checker+".json"), append(data, '\n'), 0o644)
}

// HopSpecs converts a symbolic witness trace to difftest hops.
func HopSpecs(tr symexec.Trace) []HopSpec {
	hops := make([]HopSpec, len(tr.Hops))
	for i, h := range tr.Hops {
		hops[i] = HopSpec{SW: h.Switch, Headers: h.Headers, PktLen: h.PktLen}
	}
	return hops
}
