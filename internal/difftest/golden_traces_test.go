package difftest_test

import "repro/internal/difftest"

// goldenTrace is one checker's canonical scenario pair: a conforming
// trace and a violating trace, both chosen to exercise the property's
// intended semantics (not edge cases — those live in the frontier
// corpus). The golden tests pin their verdicts and telemetry blobs; the
// scratch-aliasing tests replay the same pairs through a deliberately
// dirtied linked runtime.
type goldenTrace struct {
	key     string
	conform []difftest.HopSpec
	violate []difftest.HopSpec
}

// h builds a header map from alternating name/value pairs, keeping the
// trace table compact.
func h(pairs ...any) map[string]uint64 {
	m := make(map[string]uint64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		var v uint64
		switch x := pairs[i+1].(type) {
		case int:
			v = uint64(x)
		case uint64:
			v = x
		}
		m[pairs[i].(string)] = v
	}
	return m
}

var goldenTraces = []goldenTrace{
	{
		// Packet enters at a tenant-10 port; exiting at the other
		// tenant-10 port conforms, exiting at the tenant-20 port leaks.
		key: "multi-tenancy",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("in_port", 1, "eg_port", 1)},
			{SW: 2, Headers: h("in_port", 3, "eg_port", 2)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("in_port", 1, "eg_port", 1)},
			{SW: 2, Headers: h("in_port", 3, "eg_port", 3)},
		},
	},
	{
		// Balanced traffic keeps |left-right| under the threshold; two
		// max-size packets down the left uplink trip it.
		key: "load-balance",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("eg_port", 1), PktLen: 100},
			{SW: 1, Headers: h("eg_port", 2), PktLen: 100},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("eg_port", 1), PktLen: 1500},
			{SW: 1, Headers: h("eg_port", 1), PktLen: 1500},
		},
	},
	{
		// The allowed flow (100<->200) passes both direction checks; an
		// uninitiated flow is rejected and its reverse tuple reported.
		key: "stateful-firewall",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("ipv4_src", 100, "ipv4_dst", 200)},
			{SW: 1, Headers: h("ipv4_src", 100, "ipv4_dst", 200)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("ipv4_src", 150, "ipv4_dst", 250)},
			{SW: 1, Headers: h("ipv4_src", 150, "ipv4_dst", 250)},
		},
	},
	{
		// Uplink flow matching the deny rule: conforming when the
		// fabric drops it, violating when it slips through.
		key: "app-filtering",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h(
				"inner_ipv4_is_valid", 1, "inner_ipv4_src", 10, "inner_ipv4_proto", 6,
				"inner_ipv4_dst", 20, "inner_tcp_is_valid", 1, "inner_tcp_dport", 80)},
			{SW: 1, Headers: h("to_be_dropped", 1)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h(
				"inner_ipv4_is_valid", 1, "inner_ipv4_src", 10, "inner_ipv4_proto", 6,
				"inner_ipv4_dst", 20, "inner_tcp_is_valid", 1, "inner_tcp_dport", 80)},
			{SW: 1, Headers: h("to_be_dropped", 0)},
		},
	},
	{
		// Staying in VLAN 5 conforms; hopping to VLAN 7 mid-path (a
		// member VLAN, but not the packet's own) is isolation breakage.
		key: "vlan-isolation",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("vlan_id", 5)},
			{SW: 1, Headers: h("vlan_id", 5)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("vlan_id", 5)},
			{SW: 1, Headers: h("vlan_id", 7)},
		},
	},
	{
		// Ports 1 and 2 are allow-listed; egressing at 9 is flagged
		// with the offending switch and port.
		key: "egress-validity",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("eg_port", 1)},
			{SW: 1, Headers: h("eg_port", 2)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("eg_port", 1)},
			{SW: 1, Headers: h("eg_port", 9)},
		},
	},
	{
		// Leaf-spine-leaf conforms; terminating on the spine does not.
		key:     "routing-validity",
		conform: []difftest.HopSpec{{SW: 1}, {SW: 2}, {SW: 3}},
		violate: []difftest.HopSpec{{SW: 1}, {SW: 2}},
	},
	{
		// A simple path conforms; revisiting switch 1 is a loop.
		key:     "loop-freedom",
		conform: []difftest.HopSpec{{SW: 1}, {SW: 2}, {SW: 3}},
		violate: []difftest.HopSpec{{SW: 1}, {SW: 2}, {SW: 1}},
	},
	{
		// Passing through the waypoint (switch 2) conforms; bypassing
		// it is reported.
		key:     "waypointing",
		conform: []difftest.HopSpec{{SW: 1}, {SW: 2}},
		violate: []difftest.HopSpec{{SW: 1}, {SW: 1}},
	},
	{
		// src(1) -> waypoint(2) -> dst(3) completes the chain; skipping
		// the waypoint leaves it unfinished at the destination.
		key:     "service-chain",
		conform: []difftest.HopSpec{{SW: 1}, {SW: 2}, {SW: 3}},
		violate: []difftest.HopSpec{{SW: 1}, {SW: 3}},
	},
	{
		// The source-route stack names each switch correctly; a stale
		// top-of-stack entry at switch 2 marks the divergence point.
		key: "source-routing",
		conform: []difftest.HopSpec{
			{SW: 1, Headers: h("sr_valid", 1, "sr_next", 1)},
			{SW: 2, Headers: h("sr_valid", 1, "sr_next", 2)},
		},
		violate: []difftest.HopSpec{
			{SW: 1, Headers: h("sr_valid", 1, "sr_next", 1)},
			{SW: 2, Headers: h("sr_valid", 1, "sr_next", 7)},
		},
	},
	{
		// Up-and-over through the spine once is valley-free; hitting
		// the spine twice means the path went down and back up.
		key:     "valley-free",
		conform: []difftest.HopSpec{{SW: 1}, {SW: 2}},
		violate: []difftest.HopSpec{{SW: 2}, {SW: 2}},
	},
}
