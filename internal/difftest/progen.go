package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random well-typed Indus program. Together
// with the Harness it fuzzes the whole chain: parser → type checker →
// (interpreter | compiler → pipeline) must agree on every program and
// trace. The emitted declarations are stable so callers can install
// state and bind headers by name: tele scalars t{8,16,32}_{0,1}, bools
// f0/f1, arrays arr0/arr1, sensors s0/s1, headers h0 (8-bit) and h1
// (16-bit), scalar control c0, dicts d0 (bit<8> key) and d1
// ((bit<8>,bit<16>) key), and set0 (bit<8> members).
func RandomProgram(rng *rand.Rand) string {
	return newProgGen(rng).generate()
}

type progGen struct {
	rng *rand.Rand
	b   strings.Builder

	// Variable pools by (what they are, their width); "b" is bool.
	teleBits map[int][]string // width -> names
	teleBool []string
	sensors  map[int][]string
	arrays   []genArray
	headers  map[int][]string
	ctrlBits map[int][]string // scalar control
	dicts    []genDict
	sets     []genSet

	loopVars map[int][]string // in-scope loop variables by width

	block int // 0 init, 1 telemetry, 2 checker
}

type genArray struct {
	name  string
	width int
	cap   int
}

type genDict struct {
	name      string
	keyWidths []int
	valWidth  int
}

type genSet struct {
	name      string
	keyWidths []int
}

var genWidths = []int{8, 16, 32}

func newProgGen(rng *rand.Rand) *progGen {
	return &progGen{
		rng:      rng,
		teleBits: map[int][]string{},
		sensors:  map[int][]string{},
		headers:  map[int][]string{},
		ctrlBits: map[int][]string{},
		loopVars: map[int][]string{},
	}
}

func (g *progGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }
func (g *progGen) width() int              { return genWidths[g.rng.Intn(len(genWidths))] }

// generate emits a full program plus the metadata the harness needs.
func (g *progGen) generate() string {
	n := 0
	decl := func(format string, args ...any) {
		fmt.Fprintf(&g.b, format+"\n", args...)
		n++
	}

	for _, w := range genWidths {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("t%d_%d", w, i)
			decl("tele bit<%d> %s = %d;", w, name, g.rng.Intn(1<<uint(minInt(w, 8))))
			g.teleBits[w] = append(g.teleBits[w], name)
		}
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("f%d", i)
		decl("tele bool %s = %t;", name, g.rng.Intn(2) == 0)
		g.teleBool = append(g.teleBool, name)
	}
	for i := 0; i < 2; i++ {
		w := g.width()
		capacity := 2 + g.rng.Intn(3)
		name := fmt.Sprintf("arr%d", i)
		decl("tele bit<%d>[%d] %s;", w, capacity, name)
		g.arrays = append(g.arrays, genArray{name: name, width: w, cap: capacity})
	}
	for i := 0; i < 2; i++ {
		w := g.width()
		name := fmt.Sprintf("s%d", i)
		decl("sensor bit<%d> %s = 0;", w, name)
		g.sensors[w] = append(g.sensors[w], name)
	}
	for i := 0; i < 2; i++ {
		w := genWidths[i%len(genWidths)]
		name := fmt.Sprintf("h%d", i)
		decl("header bit<%d> %s;", w, name)
		g.headers[w] = append(g.headers[w], name)
	}
	decl("control bit<8> c0;")
	g.ctrlBits[8] = append(g.ctrlBits[8], "c0")
	decl("control dict<bit<8>,bit<8>> d0;")
	g.dicts = append(g.dicts, genDict{name: "d0", keyWidths: []int{8}, valWidth: 8})
	decl("control dict<(bit<8>,bit<16>),bit<8>> d1;")
	g.dicts = append(g.dicts, genDict{name: "d1", keyWidths: []int{8, 16}, valWidth: 8})
	decl("control set<bit<8>> set0;")
	g.sets = append(g.sets, genSet{name: "set0", keyWidths: []int{8}})

	for blk := 0; blk < 3; blk++ {
		g.block = blk
		g.b.WriteString("{\n")
		for i := 0; i < 2+g.rng.Intn(4); i++ {
			g.stmt(2)
		}
		g.b.WriteString("}\n")
	}
	return g.b.String()
}

func (g *progGen) stmt(depth int) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 4: // assignment to a tele/sensor scalar
		w := g.width()
		targets := g.teleBits[w]
		if g.block != 2 { // sensors are read-only in the checker
			targets = append(append([]string{}, targets...), g.sensors[w]...)
		}
		dst := g.pick(targets)
		op := "="
		if g.rng.Intn(3) == 0 {
			op = []string{"+=", "-="}[g.rng.Intn(2)]
		}
		fmt.Fprintf(&g.b, "%s %s %s;\n", dst, op, g.bitExpr(w, depth))

	case choice == 4: // bool assignment
		fmt.Fprintf(&g.b, "%s = %s;\n", g.pick(g.teleBool), g.boolExpr(depth))

	case choice == 5 && depth > 0: // if
		fmt.Fprintf(&g.b, "if (%s) {\n", g.boolExpr(depth-1))
		g.stmt(depth - 1)
		if g.rng.Intn(2) == 0 {
			g.b.WriteString("} else {\n")
			g.stmt(depth - 1)
		}
		g.b.WriteString("}\n")

	case choice == 6: // push
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		fmt.Fprintf(&g.b, "%s.push(%s);\n", a.name, g.bitExpr(a.width, depth-1))

	case choice == 7 && depth > 0: // for loop
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		lv := fmt.Sprintf("v%d", g.rng.Intn(1000))
		fmt.Fprintf(&g.b, "for (%s in %s) {\n", lv, a.name)
		g.loopVars[a.width] = append(g.loopVars[a.width], lv)
		g.stmt(depth - 1)
		g.loopVars[a.width] = g.loopVars[a.width][:len(g.loopVars[a.width])-1]
		g.b.WriteString("}\n")

	case choice == 8 && g.block > 0: // report
		fmt.Fprintf(&g.b, "report(%s);\n", g.bitExpr(8, 0))

	case choice == 9 && g.block == 2: // reject
		fmt.Fprintf(&g.b, "if (%s) { reject; }\n", g.boolExpr(depth-1))

	default:
		g.b.WriteString("pass;\n")
	}
}

// bitExpr emits an expression of type bit<w>.
func (g *progGen) bitExpr(w, depth int) string {
	if depth <= 0 {
		return g.bitLeaf(w)
	}
	switch g.rng.Intn(8) {
	case 0:
		op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.bitExpr(w, depth-1), op, g.bitExpr(w, depth-1))
	case 1:
		return fmt.Sprintf("abs(%s - %s)", g.bitExpr(w, depth-1), g.bitExpr(w, depth-1))
	case 2:
		fn := []string{"max", "min"}[g.rng.Intn(2)]
		return fmt.Sprintf("%s(%s, %s)", fn, g.bitExpr(w, depth-1), g.bitExpr(w, depth-1))
	case 3:
		return "~" + g.bitLeaf(w)
	case 4:
		if w == 8 { // dict lookup with matching value width
			d := g.dicts[g.rng.Intn(len(g.dicts))]
			keys := make([]string, len(d.keyWidths))
			for i, kw := range d.keyWidths {
				keys[i] = g.bitExpr(kw, 0)
			}
			if len(keys) == 1 {
				return fmt.Sprintf("%s[%s]", d.name, keys[0])
			}
			return fmt.Sprintf("%s[(%s)]", d.name, strings.Join(keys, ", "))
		}
		return g.bitLeaf(w)
	case 5:
		// Constant-index array read of a matching-width array.
		for _, a := range g.arrays {
			if a.width == w {
				return fmt.Sprintf("%s[%d]", a.name, g.rng.Intn(a.cap))
			}
		}
		return g.bitLeaf(w)
	default:
		return g.bitLeaf(w)
	}
}

func (g *progGen) bitLeaf(w int) string {
	pools := [][]string{g.teleBits[w], g.headers[w], g.sensors[w], g.ctrlBits[w], g.loopVars[w]}
	var candidates []string
	for _, p := range pools {
		candidates = append(candidates, p...)
	}
	// Builtins by width.
	switch w {
	case 32:
		candidates = append(candidates, "switch_id", "packet_length")
	case 8:
		candidates = append(candidates, "hop_count")
	}
	if g.rng.Intn(4) == 0 || len(candidates) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(200))
	}
	return g.pick(candidates)
}

func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return g.pick(g.teleBool)
		case 1:
			return []string{"true", "false"}[g.rng.Intn(2)]
		case 2:
			return "last_hop"
		default:
			return "first_hop"
		}
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return "!" + g.boolExpr(depth-1)
	case 3:
		w := g.width()
		op := []string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.bitExpr(w, depth-1), op, g.bitExpr(w, depth-1))
	case 4:
		s := g.sets[g.rng.Intn(len(g.sets))]
		return fmt.Sprintf("(%s in %s)", g.bitExpr(s.keyWidths[0], 0), s.name)
	case 5:
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return fmt.Sprintf("(%s in %s)", g.bitExpr(a.width, 0), a.name)
	default:
		return g.boolExpr(0)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
