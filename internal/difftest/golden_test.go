package difftest_test

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkers"
	"repro/internal/difftest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden verdict files")

// goldenOutcome is the pinned result of one canonical trace.
type goldenOutcome struct {
	Reject    bool       `json:"reject"`
	Reports   [][]uint64 `json:"reports"`
	FinalBlob string     `json:"final_blob"` // hex
}

type goldenFile struct {
	Checker string        `json:"checker"`
	Conform goldenOutcome `json:"conform"`
	Violate goldenOutcome `json:"violate"`
}

func toGolden(o difftest.Outcome) goldenOutcome {
	g := goldenOutcome{Reject: o.Reject, Reports: o.Reports, FinalBlob: hex.EncodeToString(o.FinalBlob)}
	if g.Reports == nil {
		g.Reports = [][]uint64{}
	}
	return g
}

// TestGoldenVerdicts replays each checker's canonical conforming and
// violating trace and pins the full agreed outcome — verdict, report
// payloads, and the final telemetry blob — against committed golden
// files. Any semantic change to a checker, the compiler, or a runtime
// shows up here as a readable diff. Refresh with:
//
//	go test ./internal/difftest/ -run TestGoldenVerdicts -update
func TestGoldenVerdicts(t *testing.T) {
	covered := map[string]bool{}
	for _, gt := range goldenTraces {
		gt := gt
		covered[gt.key] = true
		t.Run(gt.key, func(t *testing.T) {
			comp, err := difftest.CompileCorpus(gt.key)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model := checkers.SymModelFor(gt.key)
			run := func(trace []difftest.HopSpec) difftest.Outcome {
				r := comp.NewRunner()
				if err := r.ApplyModel(model); err != nil {
					t.Fatalf("install model: %v", err)
				}
				out, err := r.RunTrace(trace)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return out
			}
			conform := run(gt.conform)
			violate := run(gt.violate)
			if conform.Violation() {
				t.Errorf("canonical conforming trace violates: %+v", conform)
			}
			if !violate.Violation() {
				t.Errorf("canonical violating trace conforms: %+v", violate)
			}

			got := goldenFile{Checker: gt.key, Conform: toGolden(conform), Violate: toGolden(violate)}
			path := filepath.Join("testdata", "golden", gt.key+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("bad golden file: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				t.Errorf("outcome drifted from golden %s:\n got %s\nwant %s", path, gotJSON, data)
			}
		})
	}
	for _, p := range checkers.All {
		if !covered[p.Key] {
			t.Errorf("corpus checker %s has no canonical golden traces", p.Key)
		}
	}
}
