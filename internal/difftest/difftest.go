// Package difftest is the reusable differential-testing harness: it
// runs an Indus program on every backend — the reference interpreter
// (internal/indus/eval), the map-based pipeline interpreter, and the
// slot-resolved linked executor (pipeline.Link) — with identical
// switch state, and fails the test on any divergence in verdicts,
// report payloads, or (between the two pipeline executors) the
// byte-exact telemetry blob. The conformance suite in this package
// sweeps the whole checker corpus through randomized traces; other
// packages import the harness for targeted scenarios.
package difftest

import (
	"bytes"
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/ast"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// Harness holds one program compiled for both backends plus mirrored
// per-switch state.
type Harness struct {
	tb   testing.TB
	info *types.Info
	m    *eval.Machine
	// rt executes through the linked (slot-resolved) path; rtRef pins
	// the map-based interpreter. Each needs its own per-switch state —
	// register writes would otherwise cross-contaminate the backends.
	rt    *compiler.Runtime
	rtRef *compiler.Runtime

	evalSw    map[uint32]*eval.SwitchState
	pipeSw    map[uint32]*pipeline.State
	pipeSwRef map[uint32]*pipeline.State
}

// NewHarness parses, checks and compiles src for both backends.
func NewHarness(tb testing.TB, src string) *Harness {
	tb.Helper()
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		tb.Fatalf("types: %v", err)
	}
	compiled, err := compiler.Compile(info, compiler.Options{Name: "test"})
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return &Harness{
		tb:        tb,
		info:      info,
		m:         eval.New(info),
		rt:        &compiler.Runtime{Prog: compiled},
		rtRef:     &compiler.Runtime{Prog: compiled, NoLink: true},
		evalSw:    map[uint32]*eval.SwitchState{},
		pipeSw:    map[uint32]*pipeline.State{},
		pipeSwRef: map[uint32]*pipeline.State{},
	}
}

// CorpusHarness builds a harness for a checker from the corpus.
func CorpusHarness(tb testing.TB, key string) *Harness {
	tb.Helper()
	p, ok := checkers.ByKey(key)
	if !ok {
		tb.Fatalf("unknown corpus key %s", key)
	}
	return NewHarness(tb, p.Source)
}

// Info exposes the type-checked program (decl table etc.).
func (h *Harness) Info() *types.Info { return h.info }

func (h *Harness) sw(id uint32) (*eval.SwitchState, *pipeline.State) {
	if _, ok := h.evalSw[id]; !ok {
		h.evalSw[id] = eval.NewSwitchState(id)
		h.pipeSw[id] = h.rt.Prog.NewState()
		h.pipeSwRef[id] = h.rt.Prog.NewState()
	}
	return h.evalSw[id], h.pipeSw[id]
}

// insert mirrors a table install into both pipeline backends' states.
func (h *Harness) insert(id uint32, name string, e pipeline.Entry) {
	h.tb.Helper()
	if err := h.pipeSw[id].Tables[name].Insert(e); err != nil {
		h.tb.Fatalf("install %s: %v", name, err)
	}
	if err := h.pipeSwRef[id].Tables[name].Insert(e); err != nil {
		h.tb.Fatalf("install %s (ref): %v", name, err)
	}
}

// valueFor builds an eval value of the declared scalar type.
func valueFor(t ast.Type, v uint64) eval.Value {
	switch t := t.(type) {
	case ast.BitType:
		return eval.NewBit(t.Width, v)
	case ast.BoolType:
		return eval.Bool(v != 0)
	}
	panic("valueFor: non-scalar")
}

func keyValues(keyType ast.Type, vals []uint64) eval.Value {
	if tt, ok := keyType.(ast.TupleType); ok {
		elems := make([]eval.Value, len(tt.Elems))
		for i, et := range tt.Elems {
			elems[i] = valueFor(et, vals[i])
		}
		return eval.Tuple{Elems: elems}
	}
	return valueFor(keyType, vals[0])
}

// InstallDict installs key->val into dict `name` on switch id, on all
// backends.
func (h *Harness) InstallDict(id uint32, name string, key []uint64, val uint64) {
	es, _ := h.sw(id)
	d := h.info.Decls[name]
	dt := d.Type.(ast.DictType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlDict()
		es.Controls[name] = cv
	}
	cv.Put(keyValues(dt.Key, key), valueFor(dt.Val, val))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	w := 1
	if bt, ok := dt.Val.(ast.BitType); ok {
		w = bt.Width
	}
	h.insert(id, name, pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, val)}})
}

// InstallScalar sets scalar control `name` on switch id on all backends.
func (h *Harness) InstallScalar(id uint32, name string, val uint64) {
	es, _ := h.sw(id)
	d := h.info.Decls[name]
	es.Controls[name] = eval.NewControlScalar(valueFor(d.Type, val))
	w := 1
	if bt, ok := d.Type.(ast.BitType); ok {
		w = bt.Width
	}
	h.insert(id, name, pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, val)}})
}

// InstallSet adds a member to control set `name` on switch id.
func (h *Harness) InstallSet(id uint32, name string, key ...uint64) {
	es, _ := h.sw(id)
	d := h.info.Decls[name]
	st := d.Type.(ast.SetType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlSet()
		es.Controls[name] = cv
	}
	cv.Add(keyValues(st.Elem, key))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	h.insert(id, name, pipeline.Entry{Keys: keys})
}

// HopSpec is one hop of a differential trace: the switch it crosses and
// the header-variable values (by Indus declaration name) bound there.
type HopSpec struct {
	SW      uint32
	Headers map[string]uint64
	PktLen  uint32
}

// flattenEvalArgs flattens tuples in report args to scalars, matching
// the pipeline's digest layout.
func flattenEvalArgs(args []eval.Value) []uint64 {
	var out []uint64
	var flat func(v eval.Value)
	flat = func(v eval.Value) {
		switch v := v.(type) {
		case eval.Bit:
			out = append(out, v.V)
		case eval.Bool:
			if v {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case eval.Tuple:
			for _, e := range v.Elems {
				flat(e)
			}
		default:
			panic("unexpected report arg type")
		}
	}
	for _, a := range args {
		flat(a)
	}
	return out
}

// RunBoth executes the trace on every backend — the eval interpreter,
// the map-based pipeline, and the linked pipeline — and compares
// verdicts and report payloads across all three, plus byte-exact final
// telemetry blobs between the two pipeline executors; it returns
// (rejected, reports).
func (h *Harness) RunBoth(trace []HopSpec) (bool, [][]uint64) {
	h.tb.Helper()

	evalHops := make([]eval.Hop, len(trace))
	pipeEnvs := make([]compiler.HopEnv, len(trace))
	refEnvs := make([]compiler.HopEnv, len(trace))
	for i, hs := range trace {
		es, ps := h.sw(hs.SW)
		pktLen := hs.PktLen
		if pktLen == 0 {
			pktLen = 100
		}
		headers := map[string]eval.Value{}
		pipeHeaders := map[string]pipeline.Value{}
		for name, v := range hs.Headers {
			d := h.info.Decls[name]
			headers[name] = valueFor(d.Type, v)
			w := 1
			if bt, ok := d.Type.(ast.BitType); ok {
				w = bt.Width
			}
			pipeHeaders[h.rt.Prog.HeaderBindings[name]] = pipeline.B(w, v)
		}
		evalHops[i] = eval.Hop{Switch: es, Headers: headers, PacketLen: pktLen}
		pipeEnvs[i] = compiler.HopEnv{State: ps, SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
		refEnvs[i] = compiler.HopEnv{State: h.pipeSwRef[hs.SW], SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
	}

	want, err := h.m.RunTrace(evalHops)
	if err != nil {
		h.tb.Fatalf("interpreter: %v", err)
	}
	got, err := h.rt.RunTrace(pipeEnvs)
	if err != nil {
		h.tb.Fatalf("linked pipeline: %v", err)
	}
	ref, err := h.rtRef.RunTrace(refEnvs)
	if err != nil {
		h.tb.Fatalf("map pipeline: %v", err)
	}

	// Linked vs map-based pipeline: bit-identical, including the wire
	// blob that left the last hop.
	if got.Reject != ref.Reject {
		h.tb.Fatalf("verdict mismatch: linked reject=%v, map-based reject=%v", got.Reject, ref.Reject)
	}
	if !bytes.Equal(got.FinalBlob, ref.FinalBlob) {
		h.tb.Fatalf("final blob mismatch:\n linked    %x\n map-based %x", got.FinalBlob, ref.FinalBlob)
	}
	if len(got.Reports) != len(ref.Reports) {
		h.tb.Fatalf("report count mismatch: linked %d, map-based %d", len(got.Reports), len(ref.Reports))
	}
	for i := range got.Reports {
		ga, ra := got.Reports[i].Args, ref.Reports[i].Args
		if len(ga) != len(ra) {
			h.tb.Fatalf("report %d arity mismatch: linked %v, map-based %v", i, ga, ra)
		}
		for j := range ga {
			if ga[j] != ra[j] {
				h.tb.Fatalf("report %d arg %d: linked %v, map-based %v", i, j, ga[j], ra[j])
			}
		}
	}

	// Pipeline vs the reference interpreter.
	if got.Reject != (want.Verdict == eval.VerdictReject) {
		h.tb.Fatalf("verdict mismatch: pipeline reject=%v, interpreter %s", got.Reject, want.Verdict)
	}
	if len(got.Reports) != len(want.Reports) {
		h.tb.Fatalf("report count mismatch: pipeline %d, interpreter %d", len(got.Reports), len(want.Reports))
	}
	var reports [][]uint64
	for i := range got.Reports {
		wantArgs := flattenEvalArgs(want.Reports[i].Args)
		gotArgs := make([]uint64, len(got.Reports[i].Args))
		for j, v := range got.Reports[i].Args {
			gotArgs[j] = v.V
		}
		if len(gotArgs) != len(wantArgs) {
			h.tb.Fatalf("report %d arity mismatch: %v vs %v", i, gotArgs, wantArgs)
		}
		for j := range gotArgs {
			if gotArgs[j] != wantArgs[j] {
				h.tb.Fatalf("report %d arg %d: pipeline %d, interpreter %d", i, j, gotArgs[j], wantArgs[j])
			}
		}
		reports = append(reports, gotArgs)
	}
	return got.Reject, reports
}
