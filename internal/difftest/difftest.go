// Package difftest is the reusable differential-testing harness: it
// runs an Indus program on both backends — the reference interpreter
// (internal/indus/eval) and the compiled pipeline (internal/compiler →
// internal/pipeline) — with identical switch state, and fails the test
// on any divergence in verdicts or report payloads. The conformance
// suite in this package sweeps the whole checker corpus through
// randomized traces; other packages import the harness for targeted
// scenarios.
package difftest

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/ast"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// Harness holds one program compiled for both backends plus mirrored
// per-switch state.
type Harness struct {
	tb   testing.TB
	info *types.Info
	m    *eval.Machine
	rt   *compiler.Runtime

	evalSw map[uint32]*eval.SwitchState
	pipeSw map[uint32]*pipeline.State
}

// NewHarness parses, checks and compiles src for both backends.
func NewHarness(tb testing.TB, src string) *Harness {
	tb.Helper()
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		tb.Fatalf("types: %v", err)
	}
	compiled, err := compiler.Compile(info, compiler.Options{Name: "test"})
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return &Harness{
		tb:     tb,
		info:   info,
		m:      eval.New(info),
		rt:     &compiler.Runtime{Prog: compiled},
		evalSw: map[uint32]*eval.SwitchState{},
		pipeSw: map[uint32]*pipeline.State{},
	}
}

// CorpusHarness builds a harness for a checker from the corpus.
func CorpusHarness(tb testing.TB, key string) *Harness {
	tb.Helper()
	p, ok := checkers.ByKey(key)
	if !ok {
		tb.Fatalf("unknown corpus key %s", key)
	}
	return NewHarness(tb, p.Source)
}

// Info exposes the type-checked program (decl table etc.).
func (h *Harness) Info() *types.Info { return h.info }

func (h *Harness) sw(id uint32) (*eval.SwitchState, *pipeline.State) {
	if _, ok := h.evalSw[id]; !ok {
		h.evalSw[id] = eval.NewSwitchState(id)
		h.pipeSw[id] = h.rt.Prog.NewState()
	}
	return h.evalSw[id], h.pipeSw[id]
}

// valueFor builds an eval value of the declared scalar type.
func valueFor(t ast.Type, v uint64) eval.Value {
	switch t := t.(type) {
	case ast.BitType:
		return eval.NewBit(t.Width, v)
	case ast.BoolType:
		return eval.Bool(v != 0)
	}
	panic("valueFor: non-scalar")
}

func keyValues(keyType ast.Type, vals []uint64) eval.Value {
	if tt, ok := keyType.(ast.TupleType); ok {
		elems := make([]eval.Value, len(tt.Elems))
		for i, et := range tt.Elems {
			elems[i] = valueFor(et, vals[i])
		}
		return eval.Tuple{Elems: elems}
	}
	return valueFor(keyType, vals[0])
}

// InstallDict installs key->val into dict `name` on switch id, on both
// backends.
func (h *Harness) InstallDict(id uint32, name string, key []uint64, val uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	dt := d.Type.(ast.DictType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlDict()
		es.Controls[name] = cv
	}
	cv.Put(keyValues(dt.Key, key), valueFor(dt.Val, val))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	w := 1
	if bt, ok := dt.Val.(ast.BitType); ok {
		w = bt.Width
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, val)}}); err != nil {
		h.tb.Fatalf("install %s: %v", name, err)
	}
}

// InstallScalar sets scalar control `name` on switch id on both backends.
func (h *Harness) InstallScalar(id uint32, name string, val uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	es.Controls[name] = eval.NewControlScalar(valueFor(d.Type, val))
	w := 1
	if bt, ok := d.Type.(ast.BitType); ok {
		w = bt.Width
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, val)}}); err != nil {
		h.tb.Fatalf("install %s: %v", name, err)
	}
}

// InstallSet adds a member to control set `name` on switch id.
func (h *Harness) InstallSet(id uint32, name string, key ...uint64) {
	es, ps := h.sw(id)
	d := h.info.Decls[name]
	st := d.Type.(ast.SetType)

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlSet()
		es.Controls[name] = cv
	}
	cv.Add(keyValues(st.Elem, key))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	if err := ps.Tables[name].Insert(pipeline.Entry{Keys: keys}); err != nil {
		h.tb.Fatalf("install %s: %v", name, err)
	}
}

// HopSpec is one hop of a differential trace: the switch it crosses and
// the header-variable values (by Indus declaration name) bound there.
type HopSpec struct {
	SW      uint32
	Headers map[string]uint64
	PktLen  uint32
}

// flattenEvalArgs flattens tuples in report args to scalars, matching
// the pipeline's digest layout.
func flattenEvalArgs(args []eval.Value) []uint64 {
	var out []uint64
	var flat func(v eval.Value)
	flat = func(v eval.Value) {
		switch v := v.(type) {
		case eval.Bit:
			out = append(out, v.V)
		case eval.Bool:
			if v {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case eval.Tuple:
			for _, e := range v.Elems {
				flat(e)
			}
		default:
			panic("unexpected report arg type")
		}
	}
	for _, a := range args {
		flat(a)
	}
	return out
}

// RunBoth executes the trace on both backends and compares verdicts and
// report payloads; it returns (rejected, reports).
func (h *Harness) RunBoth(trace []HopSpec) (bool, [][]uint64) {
	h.tb.Helper()

	evalHops := make([]eval.Hop, len(trace))
	pipeEnvs := make([]compiler.HopEnv, len(trace))
	for i, hs := range trace {
		es, ps := h.sw(hs.SW)
		pktLen := hs.PktLen
		if pktLen == 0 {
			pktLen = 100
		}
		headers := map[string]eval.Value{}
		pipeHeaders := map[string]pipeline.Value{}
		for name, v := range hs.Headers {
			d := h.info.Decls[name]
			headers[name] = valueFor(d.Type, v)
			w := 1
			if bt, ok := d.Type.(ast.BitType); ok {
				w = bt.Width
			}
			pipeHeaders[h.rt.Prog.HeaderBindings[name]] = pipeline.B(w, v)
		}
		evalHops[i] = eval.Hop{Switch: es, Headers: headers, PacketLen: pktLen}
		pipeEnvs[i] = compiler.HopEnv{State: ps, SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
	}

	want, err := h.m.RunTrace(evalHops)
	if err != nil {
		h.tb.Fatalf("interpreter: %v", err)
	}
	got, err := h.rt.RunTrace(pipeEnvs)
	if err != nil {
		h.tb.Fatalf("pipeline: %v", err)
	}

	if got.Reject != (want.Verdict == eval.VerdictReject) {
		h.tb.Fatalf("verdict mismatch: pipeline reject=%v, interpreter %s", got.Reject, want.Verdict)
	}
	if len(got.Reports) != len(want.Reports) {
		h.tb.Fatalf("report count mismatch: pipeline %d, interpreter %d", len(got.Reports), len(want.Reports))
	}
	var reports [][]uint64
	for i := range got.Reports {
		wantArgs := flattenEvalArgs(want.Reports[i].Args)
		gotArgs := make([]uint64, len(got.Reports[i].Args))
		for j, v := range got.Reports[i].Args {
			gotArgs[j] = v.V
		}
		if len(gotArgs) != len(wantArgs) {
			h.tb.Fatalf("report %d arity mismatch: %v vs %v", i, gotArgs, wantArgs)
		}
		for j := range gotArgs {
			if gotArgs[j] != wantArgs[j] {
				h.tb.Fatalf("report %d arg %d: pipeline %d, interpreter %d", i, j, gotArgs[j], wantArgs[j])
			}
		}
		reports = append(reports, gotArgs)
	}
	return got.Reject, reports
}
