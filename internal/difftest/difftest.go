// Package difftest is the reusable differential-testing harness: it
// runs an Indus program on every backend — the reference interpreter
// (internal/indus/eval), the map-based pipeline interpreter, and the
// slot-resolved linked executor (pipeline.Link) — with identical
// switch state, and fails the test on any divergence in verdicts,
// report payloads, or (between the two pipeline executors) the
// byte-exact telemetry blob. The conformance suite in this package
// sweeps the whole checker corpus through randomized traces; the
// symbolic suite (internal/symexec) replays its witnesses and frontier
// corpus through the same Runner core; other packages import the
// harness for targeted scenarios.
package difftest

import (
	"testing"

	"repro/internal/checkers"
	"repro/internal/indus/types"
)

// Harness wraps a Runner with testing.TB failure plumbing: any backend
// divergence or install error fails the test immediately.
type Harness struct {
	tb testing.TB
	r  *Runner
}

// NewHarness parses, checks and compiles src for both backends.
func NewHarness(tb testing.TB, src string) *Harness {
	tb.Helper()
	c, err := CompileSource(src)
	if err != nil {
		tb.Fatalf("%v", err)
	}
	return &Harness{tb: tb, r: c.NewRunner()}
}

// CorpusHarness builds a harness for a checker from the corpus.
func CorpusHarness(tb testing.TB, key string) *Harness {
	tb.Helper()
	p, ok := checkers.ByKey(key)
	if !ok {
		tb.Fatalf("unknown corpus key %s", key)
	}
	return NewHarness(tb, p.Source)
}

// Info exposes the type-checked program (decl table etc.).
func (h *Harness) Info() *types.Info { return h.r.c.Info }

// InstallDict installs key->val into dict `name` on switch id, on all
// backends.
func (h *Harness) InstallDict(id uint32, name string, key []uint64, val uint64) {
	h.tb.Helper()
	if err := h.r.InstallDict(id, name, key, val); err != nil {
		h.tb.Fatalf("%v", err)
	}
}

// InstallScalar sets scalar control `name` on switch id on all backends.
func (h *Harness) InstallScalar(id uint32, name string, val uint64) {
	h.tb.Helper()
	if err := h.r.InstallScalar(id, name, val); err != nil {
		h.tb.Fatalf("%v", err)
	}
}

// InstallSet adds a member to control set `name` on switch id.
func (h *Harness) InstallSet(id uint32, name string, key ...uint64) {
	h.tb.Helper()
	if err := h.r.InstallSet(id, name, key...); err != nil {
		h.tb.Fatalf("%v", err)
	}
}

// RunBoth executes the trace on every backend and compares verdicts,
// report payloads, and (between the two pipeline executors) the final
// telemetry blob; it returns (rejected, reports).
func (h *Harness) RunBoth(trace []HopSpec) (bool, [][]uint64) {
	h.tb.Helper()
	out, err := h.r.RunTrace(trace)
	if err != nil {
		h.tb.Fatalf("%v", err)
	}
	return out.Reject, out.Reports
}
