package difftest

import (
	"bytes"
	"fmt"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/indus/ast"
	"repro/internal/indus/eval"
	"repro/internal/indus/parser"
	"repro/internal/indus/types"
	"repro/internal/pipeline"
)

// Compiled is one Indus program prepared for three-way differential
// execution. It is immutable and shared: the eval machine and the two
// runtimes carry no per-switch state, so many Runners (one per
// independent trace) can be built from one Compiled cheaply.
type Compiled struct {
	Info *types.Info
	Prog *pipeline.Program

	m *eval.Machine
	// rt executes through the linked (slot-resolved) path; rtRef pins
	// the map-based interpreter.
	rt    *compiler.Runtime
	rtRef *compiler.Runtime
}

// CompileSource parses, checks, and compiles src for all backends.
func CompileSource(src string) (*Compiled, error) {
	prog, err := parser.Parse("test.indus", src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("types: %w", err)
	}
	compiled, err := compiler.Compile(info, compiler.Options{Name: "test"})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	return &Compiled{
		Info:  info,
		Prog:  compiled,
		m:     eval.New(info),
		rt:    &compiler.Runtime{Prog: compiled},
		rtRef: &compiler.Runtime{Prog: compiled, NoLink: true},
	}, nil
}

// CompileCorpus compiles a checker from the corpus by key.
func CompileCorpus(key string) (*Compiled, error) {
	p, ok := checkers.ByKey(key)
	if !ok {
		return nil, fmt.Errorf("unknown corpus key %q", key)
	}
	return CompileSource(p.Source)
}

// Runner executes traces against all four backends with mirrored
// per-switch state. A Runner is single-use per state history: every
// trace it runs mutates its registers and firewall-style dict state.
type Runner struct {
	c *Compiled

	evalSw    map[uint32]*eval.SwitchState
	pipeSw    map[uint32]*pipeline.State
	pipeSwRef map[uint32]*pipeline.State
	pipeSwVM  map[uint32]*pipeline.State
}

// NewRunner builds a fresh mirrored state set over the compiled program.
func (c *Compiled) NewRunner() *Runner {
	return &Runner{
		c:         c,
		evalSw:    map[uint32]*eval.SwitchState{},
		pipeSw:    map[uint32]*pipeline.State{},
		pipeSwRef: map[uint32]*pipeline.State{},
		pipeSwVM:  map[uint32]*pipeline.State{},
	}
}

func (r *Runner) sw(id uint32) (*eval.SwitchState, *pipeline.State) {
	if _, ok := r.evalSw[id]; !ok {
		r.evalSw[id] = eval.NewSwitchState(id)
		r.pipeSw[id] = r.c.Prog.NewState()
		r.pipeSwRef[id] = r.c.Prog.NewState()
		r.pipeSwVM[id] = r.c.Prog.NewState()
	}
	return r.evalSw[id], r.pipeSw[id]
}

// insert mirrors a table install into every pipeline backend's state.
func (r *Runner) insert(id uint32, name string, e pipeline.Entry) error {
	r.sw(id)
	if err := r.pipeSw[id].Tables[name].Insert(e); err != nil {
		return fmt.Errorf("install %s: %w", name, err)
	}
	if err := r.pipeSwRef[id].Tables[name].Insert(e); err != nil {
		return fmt.Errorf("install %s (ref): %w", name, err)
	}
	if err := r.pipeSwVM[id].Tables[name].Insert(e); err != nil {
		return fmt.Errorf("install %s (vm): %w", name, err)
	}
	return nil
}

// InstallDict installs key->val into dict `name` on switch id, on all
// backends.
func (r *Runner) InstallDict(id uint32, name string, key []uint64, val uint64) error {
	es, _ := r.sw(id)
	d, ok := r.c.Info.Decls[name]
	if !ok {
		return fmt.Errorf("install %s: undeclared", name)
	}
	dt, ok := d.Type.(ast.DictType)
	if !ok {
		return fmt.Errorf("install %s: not a dict", name)
	}

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlDict()
		es.Controls[name] = cv
	}
	cv.Put(keyValues(dt.Key, key), valueFor(dt.Val, val))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	w := 1
	if bt, ok := dt.Val.(ast.BitType); ok {
		w = bt.Width
	}
	return r.insert(id, name, pipeline.Entry{Keys: keys, Action: []pipeline.Value{pipeline.B(w, val)}})
}

// InstallScalar sets scalar control `name` on switch id on all backends.
func (r *Runner) InstallScalar(id uint32, name string, val uint64) error {
	es, _ := r.sw(id)
	d, ok := r.c.Info.Decls[name]
	if !ok {
		return fmt.Errorf("install %s: undeclared", name)
	}
	es.Controls[name] = eval.NewControlScalar(valueFor(d.Type, val))
	w := 1
	if bt, ok := d.Type.(ast.BitType); ok {
		w = bt.Width
	}
	return r.insert(id, name, pipeline.Entry{Action: []pipeline.Value{pipeline.B(w, val)}})
}

// InstallSet adds a member to control set `name` on switch id.
func (r *Runner) InstallSet(id uint32, name string, key ...uint64) error {
	es, _ := r.sw(id)
	d, ok := r.c.Info.Decls[name]
	if !ok {
		return fmt.Errorf("install %s: undeclared", name)
	}
	st, ok := d.Type.(ast.SetType)
	if !ok {
		return fmt.Errorf("install %s: not a set", name)
	}

	cv, ok := es.Controls[name]
	if !ok {
		cv = eval.NewControlSet()
		es.Controls[name] = cv
	}
	cv.Add(keyValues(st.Elem, key))

	keys := make([]pipeline.KeyMatch, len(key))
	for i, k := range key {
		keys[i] = pipeline.ExactKey(k)
	}
	return r.insert(id, name, pipeline.Entry{Keys: keys})
}

// ApplyModel installs a checker's canonical symbolic-model state on
// every model switch, dispatching on the declared control type.
func (r *Runner) ApplyModel(m checkers.SymModel) error {
	for _, in := range m.Installs {
		targets := m.Switches
		if in.Switch != 0 {
			targets = []uint32{in.Switch}
		}
		for _, id := range targets {
			d, ok := r.c.Info.Decls[in.Name]
			if !ok {
				return fmt.Errorf("model install %s: undeclared", in.Name)
			}
			var err error
			switch {
			case in.Set:
				err = r.InstallSet(id, in.Name, in.Key...)
			case in.Key != nil:
				err = r.InstallDict(id, in.Name, in.Key, in.Val)
			default:
				if _, isDict := d.Type.(ast.DictType); isDict {
					return fmt.Errorf("model install %s: dict install without key", in.Name)
				}
				err = r.InstallScalar(id, in.Name, in.Val)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Outcome is the agreed result of a trace across all backends.
type Outcome struct {
	Reject    bool
	Reports   [][]uint64
	FinalBlob []byte
}

// Violation reports whether the trace trips the property under the
// repo-wide convention: an explicit reject or any report digest.
func (o Outcome) Violation() bool { return o.Reject || len(o.Reports) > 0 }

// Divergence is a backend disagreement: the counterexample the symbolic
// suite exists to surface. It carries which pair of backends split and
// a human-readable detail of the first mismatching artifact.
type Divergence struct {
	Backends string // e.g. "linked vs map-based"
	Detail   string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("backend divergence (%s): %s", d.Backends, d.Detail)
}

// HopSpec is one hop of a differential trace: the switch it crosses and
// the header-variable values (by Indus declaration name) bound there.
// A zero PktLen means the default 100-byte packet.
type HopSpec struct {
	SW      uint32
	Headers map[string]uint64
	PktLen  uint32
}

// RunTrace executes the trace on every backend — the eval interpreter,
// the map-based pipeline, the linked pipeline, and the bytecode VM —
// and compares verdicts and report payloads across all four, plus
// byte-exact final telemetry blobs between the pipeline executors. A
// disagreement returns a *Divergence error.
func (r *Runner) RunTrace(trace []HopSpec) (Outcome, error) {
	evalHops := make([]eval.Hop, len(trace))
	pipeEnvs := make([]compiler.HopEnv, len(trace))
	refEnvs := make([]compiler.HopEnv, len(trace))
	vmEnvs := make([]compiler.HopEnv, len(trace))
	for i, hs := range trace {
		es, ps := r.sw(hs.SW)
		pktLen := hs.PktLen
		if pktLen == 0 {
			pktLen = 100
		}
		headers := map[string]eval.Value{}
		pipeHeaders := map[string]pipeline.Value{}
		for name, v := range hs.Headers {
			d, ok := r.c.Info.Decls[name]
			if !ok {
				return Outcome{}, fmt.Errorf("hop %d: undeclared header %q", i, name)
			}
			headers[name] = valueFor(d.Type, v)
			w := 1
			if bt, ok := d.Type.(ast.BitType); ok {
				w = bt.Width
			}
			pipeHeaders[r.c.Prog.HeaderBindings[name]] = pipeline.B(w, v)
		}
		evalHops[i] = eval.Hop{Switch: es, Headers: headers, PacketLen: pktLen}
		pipeEnvs[i] = compiler.HopEnv{State: ps, SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
		refEnvs[i] = compiler.HopEnv{State: r.pipeSwRef[hs.SW], SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
		vmEnvs[i] = compiler.HopEnv{State: r.pipeSwVM[hs.SW], SwitchID: hs.SW, Headers: pipeHeaders, PacketLen: pktLen}
	}

	want, err := r.c.m.RunTrace(evalHops)
	if err != nil {
		return Outcome{}, fmt.Errorf("interpreter: %w", err)
	}
	got, err := r.c.rt.RunTrace(pipeEnvs)
	if err != nil {
		return Outcome{}, fmt.Errorf("linked pipeline: %w", err)
	}
	ref, err := r.c.rtRef.RunTrace(refEnvs)
	if err != nil {
		return Outcome{}, fmt.Errorf("map pipeline: %w", err)
	}
	vm, err := r.c.rt.RunTraceVM(vmEnvs)
	if err != nil {
		return Outcome{}, fmt.Errorf("bytecode vm: %w", err)
	}

	// Bytecode VM (resident-PHV, whole-trace) vs linked (per-hop blob
	// roundtrip): bit-identical, including the final wire blob.
	pair := "vm vs linked"
	if vm.Reject != got.Reject {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("vm reject=%v, linked reject=%v", vm.Reject, got.Reject)}
	}
	if !bytes.Equal(vm.FinalBlob, got.FinalBlob) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("final blob mismatch: vm %x, linked %x", vm.FinalBlob, got.FinalBlob)}
	}
	if len(vm.Reports) != len(got.Reports) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("report count: vm %d, linked %d", len(vm.Reports), len(got.Reports))}
	}
	for i := range vm.Reports {
		va, ga := vm.Reports[i].Args, got.Reports[i].Args
		if len(va) != len(ga) {
			return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arity: vm %v, linked %v", i, va, ga)}
		}
		for j := range va {
			if va[j] != ga[j] {
				return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arg %d: vm %v, linked %v", i, j, va[j], ga[j])}
			}
		}
	}

	// Linked vs map-based pipeline: bit-identical, including the wire
	// blob that left the last hop.
	pair = "linked vs map-based"
	if got.Reject != ref.Reject {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("linked reject=%v, map-based reject=%v", got.Reject, ref.Reject)}
	}
	if !bytes.Equal(got.FinalBlob, ref.FinalBlob) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("final blob mismatch: linked %x, map-based %x", got.FinalBlob, ref.FinalBlob)}
	}
	if len(got.Reports) != len(ref.Reports) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("report count: linked %d, map-based %d", len(got.Reports), len(ref.Reports))}
	}
	for i := range got.Reports {
		ga, ra := got.Reports[i].Args, ref.Reports[i].Args
		if len(ga) != len(ra) {
			return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arity: linked %v, map-based %v", i, ga, ra)}
		}
		for j := range ga {
			if ga[j] != ra[j] {
				return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arg %d: linked %v, map-based %v", i, j, ga[j], ra[j])}
			}
		}
	}

	// Pipeline vs the reference interpreter.
	pair = "pipeline vs interpreter"
	if got.Reject != (want.Verdict == eval.VerdictReject) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("pipeline reject=%v, interpreter %v", got.Reject, want.Verdict)}
	}
	if len(got.Reports) != len(want.Reports) {
		return Outcome{}, &Divergence{pair, fmt.Sprintf("report count: pipeline %d, interpreter %d", len(got.Reports), len(want.Reports))}
	}
	var reports [][]uint64
	for i := range got.Reports {
		wantArgs := flattenEvalArgs(want.Reports[i].Args)
		gotArgs := make([]uint64, len(got.Reports[i].Args))
		for j, v := range got.Reports[i].Args {
			gotArgs[j] = v.V
		}
		if len(gotArgs) != len(wantArgs) {
			return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arity: %v vs %v", i, gotArgs, wantArgs)}
		}
		for j := range gotArgs {
			if gotArgs[j] != wantArgs[j] {
				return Outcome{}, &Divergence{pair, fmt.Sprintf("report %d arg %d: pipeline %d, interpreter %d", i, j, gotArgs[j], wantArgs[j])}
			}
		}
		reports = append(reports, gotArgs)
	}
	return Outcome{Reject: got.Reject, Reports: reports, FinalBlob: got.FinalBlob}, nil
}

// valueFor builds an eval value of the declared scalar type.
func valueFor(t ast.Type, v uint64) eval.Value {
	switch t := t.(type) {
	case ast.BitType:
		return eval.NewBit(t.Width, v)
	case ast.BoolType:
		return eval.Bool(v != 0)
	}
	panic("valueFor: non-scalar")
}

func keyValues(keyType ast.Type, vals []uint64) eval.Value {
	if tt, ok := keyType.(ast.TupleType); ok {
		elems := make([]eval.Value, len(tt.Elems))
		for i, et := range tt.Elems {
			elems[i] = valueFor(et, vals[i])
		}
		return eval.Tuple{Elems: elems}
	}
	return valueFor(keyType, vals[0])
}

// flattenEvalArgs flattens tuples in report args to scalars, matching
// the pipeline's digest layout.
func flattenEvalArgs(args []eval.Value) []uint64 {
	var out []uint64
	var flat func(v eval.Value)
	flat = func(v eval.Value) {
		switch v := v.(type) {
		case eval.Bit:
			out = append(out, v.V)
		case eval.Bool:
			if v {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case eval.Tuple:
			for _, e := range v.Elems {
				flat(e)
			}
		default:
			panic("unexpected report arg type")
		}
	}
	for _, a := range args {
		flat(a)
	}
	return out
}
