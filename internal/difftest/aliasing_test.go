package difftest_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/indus/ast"
	"repro/internal/pipeline"
	"repro/internal/symexec"
)

// TestLinkedScratchAliasing runs every corpus checker through the
// linked backend twice: once on a pristine runtime, and once on a
// runtime whose pooled contexts have been deliberately dirtied between
// packets — PHV slots scribbled with all-ones garbage, stale reports
// attached, ephemeral report arenas churned, and unrelated dirt traces
// executed so table-apply caches hold another packet's entries. The
// outcomes must be byte-identical: any scratch value leaking from one
// packet into the next shows up as a verdict, report, or blob diff.
func TestLinkedScratchAliasing(t *testing.T) {
	for _, gt := range goldenTraces {
		gt := gt
		t.Run(gt.key, func(t *testing.T) {
			comp, err := difftest.CompileCorpus(gt.key)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model := checkers.SymModelFor(gt.key)

			envs := func(trace []difftest.HopSpec, states map[uint32]*pipeline.State, dirt bool) []compiler.HopEnv {
				out := make([]compiler.HopEnv, len(trace))
				for i, hs := range trace {
					pktLen := hs.PktLen
					if pktLen == 0 {
						pktLen = 100
					}
					headers := map[string]pipeline.Value{}
					for name, v := range hs.Headers {
						w := 1
						if bt, ok := comp.Info.Decls[name].Type.(ast.BitType); ok {
							w = bt.Width
						}
						if dirt {
							v = ^v // different flow, same shape
						}
						headers[comp.Prog.HeaderBindings[name]] = pipeline.B(w, v)
					}
					out[i] = compiler.HopEnv{
						State:            states[hs.SW],
						SwitchID:         hs.SW,
						Headers:          headers,
						PacketLen:        pktLen,
						EphemeralReports: dirt,
					}
				}
				return out
			}

			run := func(rt *compiler.Runtime, trace []difftest.HopSpec) compiler.TraceResult {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				res, err := rt.RunTrace(envs(trace, states, false))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}

			// scribble poisons pooled contexts: all slots set to 64-bit
			// all-ones, counters bumped, stale report digests attached.
			// Acquiring several at once poisons multiple pool entries.
			scribble := func(lk *pipeline.Linked) {
				ctxs := make([]*pipeline.LCtx, 4)
				for i := range ctxs {
					c := lk.AcquireCtx()
					for s := range c.PHV {
						c.PHV[s] = pipeline.B(64, ^uint64(0))
					}
					c.Reports = append(c.Reports, pipeline.Report{
						Args: []pipeline.Value{pipeline.B(64, 0xbadbadbadbad)},
					})
					c.OpsExecuted += 997
					c.TableApplies += 31
					ctxs[i] = c
				}
				for _, c := range ctxs {
					lk.ReleaseCtx(c)
				}
			}
			// dirtTrace pushes a real foreign packet through the same
			// runtime (ephemeral reports on, different header values, its
			// own states) so caches and arenas carry another flow.
			dirtTrace := func(rt *compiler.Runtime, trace []difftest.HopSpec) {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				if _, err := rt.RunTrace(envs(trace, states, true)); err != nil {
					t.Fatalf("dirt trace: %v", err)
				}
			}

			clean := &compiler.Runtime{Prog: comp.Prog}
			dirty := &compiler.Runtime{Prog: comp.Prog}
			lk := dirty.Linked()
			if lk == nil {
				t.Fatal("program failed to link")
			}

			for _, tc := range []struct {
				label string
				trace []difftest.HopSpec
			}{{"conform", gt.conform}, {"violate", gt.violate}} {
				want := run(clean, tc.trace)
				scribble(lk)
				dirtTrace(dirty, gt.violate)
				scribble(lk)
				dirtTrace(dirty, gt.conform)
				scribble(lk)
				got := run(dirty, tc.trace)

				if got.Reject != want.Reject {
					t.Errorf("%s: reject %v on dirty runtime, %v on clean", tc.label, got.Reject, want.Reject)
				}
				if !bytes.Equal(got.FinalBlob, want.FinalBlob) {
					t.Errorf("%s: final blob %x on dirty runtime, %x on clean", tc.label, got.FinalBlob, want.FinalBlob)
				}
				if !reflect.DeepEqual(got.Reports, want.Reports) {
					t.Errorf("%s: reports %+v on dirty runtime, %+v on clean", tc.label, got.Reports, want.Reports)
				}
			}
		})
	}
}

// TestVMScratchAliasing is the bytecode-VM twin of the linked suite:
// every corpus checker runs its golden traces through RunTraceVM (the
// whole-trace resident-PHV path) on a runtime whose pooled VM contexts
// are scribbled with all-ones slots, stale reports, and bumped
// counters between traces, with foreign dirt traces interleaved so the
// per-site table caches hold another packet's entries. Outcomes must
// be byte-identical to a pristine runtime: the per-trace template
// restore plus the per-hop reset runs must erase every poisoned slot
// an execution could observe.
func TestVMScratchAliasing(t *testing.T) {
	for _, gt := range goldenTraces {
		gt := gt
		t.Run(gt.key, func(t *testing.T) {
			comp, err := difftest.CompileCorpus(gt.key)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model := checkers.SymModelFor(gt.key)

			envs := func(trace []difftest.HopSpec, states map[uint32]*pipeline.State, dirt bool) []compiler.HopEnv {
				out := make([]compiler.HopEnv, len(trace))
				for i, hs := range trace {
					pktLen := hs.PktLen
					if pktLen == 0 {
						pktLen = 100
					}
					headers := map[string]pipeline.Value{}
					for name, v := range hs.Headers {
						w := 1
						if bt, ok := comp.Info.Decls[name].Type.(ast.BitType); ok {
							w = bt.Width
						}
						if dirt {
							v = ^v
						}
						headers[comp.Prog.HeaderBindings[name]] = pipeline.B(w, v)
					}
					out[i] = compiler.HopEnv{
						State:     states[hs.SW],
						SwitchID:  hs.SW,
						Headers:   headers,
						PacketLen: pktLen,
					}
				}
				return out
			}

			run := func(rt *compiler.Runtime, trace []difftest.HopSpec) compiler.TraceResult {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				res, err := rt.RunTraceVM(envs(trace, states, false))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}

			scribble := func(vp *bytecode.Prog) {
				ctxs := make([]*bytecode.Ctx, 4)
				for i := range ctxs {
					c := vp.AcquireCtx()
					for s := range c.PHV {
						c.PHV[s] = pipeline.B(64, ^uint64(0))
					}
					c.Reports = append(c.Reports, pipeline.Report{
						Args: []pipeline.Value{pipeline.B(64, 0xbadbadbadbad)},
					})
					c.OpsExecuted += 997
					c.TableApplies += 31
					ctxs[i] = c
				}
				for _, c := range ctxs {
					vp.ReleaseCtx(c)
				}
			}
			dirtTrace := func(rt *compiler.Runtime, trace []difftest.HopSpec) {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				if _, err := rt.RunTraceVM(envs(trace, states, true)); err != nil {
					t.Fatalf("dirt trace: %v", err)
				}
			}

			clean := &compiler.Runtime{Prog: comp.Prog}
			dirty := &compiler.Runtime{Prog: comp.Prog}
			vp := dirty.VM()
			if vp == nil {
				t.Fatal("program failed to compile to bytecode")
			}

			for _, tc := range []struct {
				label string
				trace []difftest.HopSpec
			}{{"conform", gt.conform}, {"violate", gt.violate}} {
				want := run(clean, tc.trace)
				scribble(vp)
				dirtTrace(dirty, gt.violate)
				scribble(vp)
				dirtTrace(dirty, gt.conform)
				scribble(vp)
				got := run(dirty, tc.trace)

				if got.Reject != want.Reject {
					t.Errorf("%s: reject %v on dirty runtime, %v on clean", tc.label, got.Reject, want.Reject)
				}
				if !bytes.Equal(got.FinalBlob, want.FinalBlob) {
					t.Errorf("%s: final blob %x on dirty runtime, %x on clean", tc.label, got.FinalBlob, want.FinalBlob)
				}
				if !reflect.DeepEqual(got.Reports, want.Reports) {
					t.Errorf("%s: reports %+v on dirty runtime, %+v on clean", tc.label, got.Reports, want.Reports)
				}
			}
		})
	}
}

// TestVMBatchArenaAliasing poisons the engine's persistent batch-VM
// arenas between every packet. The batched path acquires one context
// per checker at construction and reuses it for every packet — there
// is no per-trace template copy, only BeginTrace's telemetry reset and
// BeginHop's reset runs — so this is the strongest aliasing surface in
// the system: any slot the reset analysis wrongly prunes leaks a
// poisoned value straight into the next packet's verdict. A clean and
// a poisoned engine replay the same campus mix (with looped paths
// spliced in so real rejects and reports are at stake) and must agree
// on every verdict, count, and report byte.
func TestVMBatchArenaAliasing(t *testing.T) {
	build := func() (*engine.Sequential, []engine.Verdict, []engine.Packet, error) {
		chks, err := experiments.CorpusCheckers()
		if err != nil {
			return nil, nil, nil, err
		}
		pkts, pairs := experiments.CampusEnginePackets(192, 13)
		// Every 8th packet revisits its ingress switch: a forwarding
		// loop the loop-freedom checker must flag.
		for i := 0; i < len(pkts); i += 8 {
			h := pkts[i].Hops
			pkts[i].Hops = append(append([]engine.Hop{}, h...), h[0])
		}
		verdicts := make([]engine.Verdict, len(pkts))
		seq := engine.NewSequential(engine.Config{
			Checkers:    chks,
			Verdicts:    verdicts,
			KeepReports: true,
		})
		if err := experiments.ConfigureReplayEngine(seq.Install, pairs); err != nil {
			return nil, nil, nil, err
		}
		return seq, verdicts, pkts, nil
	}

	clean, cleanV, pkts, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts {
		clean.ProcessBatch(pkts[i : i+1])
	}

	dirty, dirtyV, pkts2, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkts2 {
		// Poison every slot the VM can write — the worst dirt a previous
		// packet could leave. Constant and read-only field slots are
		// excluded: nothing writes them, so a context can never carry
		// stale values there (DirtySlots documents this contract).
		dirty.VMContexts(func(vp *bytecode.Prog, c *bytecode.Ctx) {
			for _, s := range vp.DirtySlots() {
				c.PHV[s] = pipeline.B(64, ^uint64(0))
			}
			c.Reports = append(c.Reports, pipeline.Report{
				Args: []pipeline.Value{pipeline.B(64, 0xbadbadbadbad)},
			})
			c.OpsExecuted += 997
			c.TableApplies += 31
		})
		dirty.ProcessBatch(pkts2[i : i+1])
	}

	if c := clean.Counts(); c.Rejected == 0 || c.Reports == 0 {
		t.Fatalf("vacuous workload: counts %+v must include rejects and reports", c)
	}
	if !reflect.DeepEqual(clean.Counts(), dirty.Counts()) {
		t.Errorf("counts diverge:\nclean %+v\ndirty %+v", clean.Counts(), dirty.Counts())
	}
	if !reflect.DeepEqual(cleanV, dirtyV) {
		for i := range cleanV {
			if cleanV[i] != dirtyV[i] {
				t.Errorf("packet %d verdict: clean %+v dirty %+v", i, cleanV[i], dirtyV[i])
			}
		}
	}
	if !reflect.DeepEqual(clean.Reports(), dirty.Reports()) {
		t.Errorf("reports diverge: clean %d dirty %d", len(clean.Reports()), len(dirty.Reports()))
	}
}
