package difftest_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/checkers"
	"repro/internal/compiler"
	"repro/internal/difftest"
	"repro/internal/indus/ast"
	"repro/internal/pipeline"
	"repro/internal/symexec"
)

// TestLinkedScratchAliasing runs every corpus checker through the
// linked backend twice: once on a pristine runtime, and once on a
// runtime whose pooled contexts have been deliberately dirtied between
// packets — PHV slots scribbled with all-ones garbage, stale reports
// attached, ephemeral report arenas churned, and unrelated dirt traces
// executed so table-apply caches hold another packet's entries. The
// outcomes must be byte-identical: any scratch value leaking from one
// packet into the next shows up as a verdict, report, or blob diff.
func TestLinkedScratchAliasing(t *testing.T) {
	for _, gt := range goldenTraces {
		gt := gt
		t.Run(gt.key, func(t *testing.T) {
			comp, err := difftest.CompileCorpus(gt.key)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			model := checkers.SymModelFor(gt.key)

			envs := func(trace []difftest.HopSpec, states map[uint32]*pipeline.State, dirt bool) []compiler.HopEnv {
				out := make([]compiler.HopEnv, len(trace))
				for i, hs := range trace {
					pktLen := hs.PktLen
					if pktLen == 0 {
						pktLen = 100
					}
					headers := map[string]pipeline.Value{}
					for name, v := range hs.Headers {
						w := 1
						if bt, ok := comp.Info.Decls[name].Type.(ast.BitType); ok {
							w = bt.Width
						}
						if dirt {
							v = ^v // different flow, same shape
						}
						headers[comp.Prog.HeaderBindings[name]] = pipeline.B(w, v)
					}
					out[i] = compiler.HopEnv{
						State:            states[hs.SW],
						SwitchID:         hs.SW,
						Headers:          headers,
						PacketLen:        pktLen,
						EphemeralReports: dirt,
					}
				}
				return out
			}

			run := func(rt *compiler.Runtime, trace []difftest.HopSpec) compiler.TraceResult {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				res, err := rt.RunTrace(envs(trace, states, false))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}

			// scribble poisons pooled contexts: all slots set to 64-bit
			// all-ones, counters bumped, stale report digests attached.
			// Acquiring several at once poisons multiple pool entries.
			scribble := func(lk *pipeline.Linked) {
				ctxs := make([]*pipeline.LCtx, 4)
				for i := range ctxs {
					c := lk.AcquireCtx()
					for s := range c.PHV {
						c.PHV[s] = pipeline.B(64, ^uint64(0))
					}
					c.Reports = append(c.Reports, pipeline.Report{
						Args: []pipeline.Value{pipeline.B(64, 0xbadbadbadbad)},
					})
					c.OpsExecuted += 997
					c.TableApplies += 31
					ctxs[i] = c
				}
				for _, c := range ctxs {
					lk.ReleaseCtx(c)
				}
			}
			// dirtTrace pushes a real foreign packet through the same
			// runtime (ephemeral reports on, different header values, its
			// own states) so caches and arenas carry another flow.
			dirtTrace := func(rt *compiler.Runtime, trace []difftest.HopSpec) {
				states, err := symexec.BuildStates(comp.Prog, model)
				if err != nil {
					t.Fatalf("build states: %v", err)
				}
				if _, err := rt.RunTrace(envs(trace, states, true)); err != nil {
					t.Fatalf("dirt trace: %v", err)
				}
			}

			clean := &compiler.Runtime{Prog: comp.Prog}
			dirty := &compiler.Runtime{Prog: comp.Prog}
			lk := dirty.Linked()
			if lk == nil {
				t.Fatal("program failed to link")
			}

			for _, tc := range []struct {
				label string
				trace []difftest.HopSpec
			}{{"conform", gt.conform}, {"violate", gt.violate}} {
				want := run(clean, tc.trace)
				scribble(lk)
				dirtTrace(dirty, gt.violate)
				scribble(lk)
				dirtTrace(dirty, gt.conform)
				scribble(lk)
				got := run(dirty, tc.trace)

				if got.Reject != want.Reject {
					t.Errorf("%s: reject %v on dirty runtime, %v on clean", tc.label, got.Reject, want.Reject)
				}
				if !bytes.Equal(got.FinalBlob, want.FinalBlob) {
					t.Errorf("%s: final blob %x on dirty runtime, %x on clean", tc.label, got.FinalBlob, want.FinalBlob)
				}
				if !reflect.DeepEqual(got.Reports, want.Reports) {
					t.Errorf("%s: reports %+v on dirty runtime, %+v on clean", tc.label, got.Reports, want.Reports)
				}
			}
		})
	}
}
